# Convenience targets; the project itself is plain dune.

BENCH := bin/dpa_bench.exe

.PHONY: all build test fmt fmt-check smoke clean

all: build

build:
	dune build

test:
	dune runtest

# ocamlformat is not pinned in this environment, so formatting is enabled
# for dune files only (see dune-project); these targets keep those clean.
fmt:
	dune fmt

fmt-check:
	dune build @fmt

# End-to-end observability smoke test: run a small experiment with the
# trace/metrics exporters on and make sure the artifacts appear and are
# non-trivial. The test suite validates the JSON itself (test/test_obs.ml).
smoke: build
	dune exec $(BENCH) -- f1 --scale small \
	  --trace /tmp/dpa_trace.json --metrics /tmp/dpa_metrics.json --profile
	@test -s /tmp/dpa_trace.json && test -s /tmp/dpa_metrics.json \
	  && echo "smoke: trace + metrics written"

clean:
	dune clean

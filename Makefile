# Convenience targets; the project itself is plain dune.

BENCH := bin/dpa_bench.exe

.PHONY: all build test fmt fmt-check smoke chaos-smoke adaptive-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# ocamlformat is not pinned in this environment, so formatting is enabled
# for dune files only (see dune-project); these targets keep those clean.
fmt:
	dune fmt

fmt-check:
	dune build @fmt

# End-to-end observability smoke test: run a small experiment with the
# trace/metrics exporters on and make sure the artifacts appear and are
# non-trivial. The test suite validates the JSON itself (test/test_obs.ml).
smoke: build chaos-smoke adaptive-smoke
	dune exec $(BENCH) -- f1 --scale small \
	  --trace /tmp/dpa_trace.json --metrics /tmp/dpa_metrics.json --profile
	@test -s /tmp/dpa_trace.json && test -s /tmp/dpa_metrics.json \
	  && echo "smoke: trace + metrics written"

# Chaos smoke test: the a11 sweep at reduced scale with a fixed fault seed.
# Every row (including 10% drop and the heavy preset) must report forces
# bit-identical to the fault-free reference; any divergence prints DIVERGED
# and fails the target.
chaos-smoke: build
	dune exec $(BENCH) -- a11 --scale small --bodies 512 | tee /tmp/dpa_chaos.txt
	@! grep -q DIVERGED /tmp/dpa_chaos.txt \
	  && grep -cq bit-identical /tmp/dpa_chaos.txt \
	  && echo "chaos-smoke: forces bit-identical under all fault plans"

# Adaptive-control smoke test: the a12 sweep at reduced scale. Both RTO
# rows must report forces bit-identical to the fault-free reference, and
# the adaptive strip controller must actually run (the auto row exists).
adaptive-smoke: build
	dune exec $(BENCH) -- a12 --scale small --bodies 512 | tee /tmp/dpa_adaptive.txt
	@! grep -q DIVERGED /tmp/dpa_adaptive.txt \
	  && grep -cq bit-identical /tmp/dpa_adaptive.txt \
	  && grep -q "^auto" /tmp/dpa_adaptive.txt \
	  && echo "adaptive-smoke: auto strip ran; forces bit-identical under both RTO policies"

clean:
	dune clean

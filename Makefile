# Convenience targets; the project itself is plain dune.

BENCH := bin/dpa_bench.exe

.PHONY: all build test fmt fmt-check smoke chaos-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# ocamlformat is not pinned in this environment, so formatting is enabled
# for dune files only (see dune-project); these targets keep those clean.
fmt:
	dune fmt

fmt-check:
	dune build @fmt

# End-to-end observability smoke test: run a small experiment with the
# trace/metrics exporters on and make sure the artifacts appear and are
# non-trivial. The test suite validates the JSON itself (test/test_obs.ml).
smoke: build chaos-smoke
	dune exec $(BENCH) -- f1 --scale small \
	  --trace /tmp/dpa_trace.json --metrics /tmp/dpa_metrics.json --profile
	@test -s /tmp/dpa_trace.json && test -s /tmp/dpa_metrics.json \
	  && echo "smoke: trace + metrics written"

# Chaos smoke test: the a11 sweep at reduced scale with a fixed fault seed.
# Every row (including 10% drop and the heavy preset) must report forces
# bit-identical to the fault-free reference; any divergence prints DIVERGED
# and fails the target.
chaos-smoke: build
	dune exec $(BENCH) -- a11 --scale small --bodies 512 | tee /tmp/dpa_chaos.txt
	@! grep -q DIVERGED /tmp/dpa_chaos.txt \
	  && grep -cq bit-identical /tmp/dpa_chaos.txt \
	  && echo "chaos-smoke: forces bit-identical under all fault plans"

clean:
	dune clean

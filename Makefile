# Convenience targets; the project itself is plain dune.

BENCH := bin/dpa_bench.exe

.PHONY: all build test fmt fmt-check smoke obs-smoke chaos-smoke adaptive-smoke critpath-smoke integrity-smoke optimality-smoke route-crash-smoke scale-smoke bench-obs-overhead clean

all: build

build:
	dune build

test:
	dune runtest

# ocamlformat is not pinned in this environment, so formatting is enabled
# for dune files only (see dune-project); these targets keep those clean.
fmt:
	dune fmt

# Also gates the API docs: every .mli must render through odoc without
# warnings (broken references, ambiguous doc comments).
fmt-check:
	dune build @fmt
	dune build @doc 2>&1 | tee /tmp/dpa_doc.log
	@! grep -qi warning /tmp/dpa_doc.log && echo "fmt-check: docs build warning-free"

# End-to-end observability smoke test: run a small experiment with the
# trace/metrics exporters on and make sure the artifacts appear and are
# non-trivial. The test suite validates the JSON itself (test/test_obs.ml).
smoke: build obs-smoke chaos-smoke adaptive-smoke critpath-smoke integrity-smoke optimality-smoke route-crash-smoke scale-smoke
	dune exec $(BENCH) -- f1 --scale small \
	  --trace /tmp/dpa_trace.json --metrics /tmp/dpa_metrics.json --profile
	@test -s /tmp/dpa_trace.json && test -s /tmp/dpa_metrics.json \
	  && echo "smoke: trace + metrics written"

# Streaming-observability smoke test: a small BH workload with --events
# streaming through a deliberately tiny ring (512 entries). The streamed
# file must hold far more events than the ring with none reported dropped
# (the writer captures each event at emission; the ring is only the
# in-memory flight recorder), every JSONL line must parse and stay
# time-ordered, and the per-node skew table must sum back to the global
# per-phase row — all validated by bin/obs_check.
obs-smoke: build
	dune exec $(BENCH) -- f1 --scale small --bodies 512 --ring 512 \
	  --events /tmp/dpa_events.jsonl --profile | tee /tmp/dpa_obs.txt
	@grep -q "wrote event log" /tmp/dpa_obs.txt \
	  && ! grep -q "overwritten in the ring" /tmp/dpa_obs.txt \
	  || { echo "obs-smoke: events dropped or log missing"; exit 1; }
	dune exec bin/obs_check.exe -- --min-lines 513 \
	  /tmp/dpa_events.jsonl /tmp/dpa_obs.txt
	@echo "obs-smoke: streamed events exceed the ring with zero drops; skew table consistent"

# Chaos smoke test: the a11 sweep and the a13 crash matrix at reduced
# scale with a fixed fault seed. Every row (including 10% drop, the heavy
# preset, and the crash-restart schedules) must report results
# bit-identical to the fault-free reference; any divergence prints
# DIVERGED and fails the target. The a13 summary line must also show that
# crash-restarts actually executed.
chaos-smoke: build
	dune exec $(BENCH) -- a11 --scale small --bodies 512 | tee /tmp/dpa_chaos.txt
	@! grep -q DIVERGED /tmp/dpa_chaos.txt \
	  && grep -cq bit-identical /tmp/dpa_chaos.txt \
	  && echo "chaos-smoke: forces bit-identical under all fault plans"
	dune exec $(BENCH) -- a13 --scale small --bodies 512 | tee /tmp/dpa_crash.txt
	@! grep -q DIVERGED /tmp/dpa_crash.txt \
	  && grep -q "a13 summary" /tmp/dpa_crash.txt \
	  && ! grep -q "a13 summary: 0 crash-restarts" /tmp/dpa_crash.txt \
	  && grep -q "0 schedule(s) diverged" /tmp/dpa_crash.txt \
	  && echo "chaos-smoke: crash-restart schedules reproduce fault-free results bit for bit"

# Adaptive-control smoke test: the a12 sweep at reduced scale. Both RTO
# rows must report forces bit-identical to the fault-free reference, and
# the adaptive strip controller must actually run (the auto row exists).
adaptive-smoke: build
	dune exec $(BENCH) -- a12 --scale small --bodies 512 | tee /tmp/dpa_adaptive.txt
	@! grep -q DIVERGED /tmp/dpa_adaptive.txt \
	  && grep -cq bit-identical /tmp/dpa_adaptive.txt \
	  && grep -q "^auto" /tmp/dpa_adaptive.txt \
	  && echo "adaptive-smoke: auto strip ran; forces bit-identical under both RTO policies"

# Causal-tracing smoke test: the BH sweep under the heavy fault preset
# plus two crash windows, with --critical-path on, so every decomposition
# bucket (retransmit and refetch included) can appear. obs_check then
# validates the full chain: each causal parent arg in the event stream
# resolves to an emitted span_id no later than its child, the report's
# segments sum exactly to the path length, 0 <= max span <= path <= phase
# wall, and actual bytes >= the communication lower bound in both the
# report and the profile's optimality table. No --trace-cats/--spans-only
# here: filters may drop the instants that define flight ids (see
# docs/OBSERVABILITY.md).
critpath-smoke: build
	dune exec $(BENCH) -- t2 --scale small --bodies 512 \
	  --faults heavy,crashes=2 --critical-path /tmp/dpa_critpath.json \
	  --events /tmp/dpa_cp_events.jsonl --profile | tee /tmp/dpa_cp.txt
	@grep -q "wrote critical-path report" /tmp/dpa_cp.txt \
	  || { echo "critpath-smoke: report missing"; exit 1; }
	dune exec bin/obs_check.exe -- --min-lines 1000 \
	  --critpath /tmp/dpa_critpath.json \
	  /tmp/dpa_cp_events.jsonl /tmp/dpa_cp.txt
	@echo "critpath-smoke: causal edges resolve; path decomposition exact; comm ratio >= 1"

# End-to-end integrity smoke test: the a14 matrix at reduced scale. Wire
# corruption must actually fire (nonzero corruptions dropped) and torn
# WAL tails must actually be cut and recovered, with every schedule
# still bit-identical to the fault-free reference. Then a BH run under
# the full fault cocktail streams its events so obs_check can validate
# the per-phase integrity tables (per-node rows summing to the "=" line,
# no negative counters) alongside the usual stream invariants.
integrity-smoke: build
	dune exec $(BENCH) -- a14 --scale small --bodies 512 | tee /tmp/dpa_integrity.txt
	@! grep -q DIVERGED /tmp/dpa_integrity.txt \
	  && grep -q "a14 summary" /tmp/dpa_integrity.txt \
	  && ! grep -q "a14 summary: 0 corruptions" /tmp/dpa_integrity.txt \
	  && ! grep -q "0 wal records truncated" /tmp/dpa_integrity.txt \
	  && grep -q "0 schedule(s) diverged" /tmp/dpa_integrity.txt \
	  && echo "integrity-smoke: corruption fenced and torn tails recovered bit for bit"
	dune exec $(BENCH) -- t2 --scale small --bodies 512 \
	  --faults heavy,crashes=2,corrupt=0.05,torn-wal=1 \
	  --events /tmp/dpa_integ_events.jsonl --profile | tee /tmp/dpa_integ.txt
	dune exec bin/obs_check.exe -- --min-lines 1000 \
	  /tmp/dpa_integ_events.jsonl /tmp/dpa_integ.txt
	@grep -q "Per-phase integrity" /tmp/dpa_integ.txt \
	  && echo "integrity-smoke: integrity tables consistent across nodes"

# Communication-optimality smoke test: the a15 matrix at reduced scale.
# Tree-routed aggregation and Morton repartitioning must both strictly
# lower the measured-volume / optimality-bound ratio of their workload
# (improved=yes in the summary line), with every cell — including the
# fault schedules — bit-identical to the flat/static reference.
optimality-smoke: build
	dune exec $(BENCH) -- a15 --scale small --bodies 512 | tee /tmp/dpa_optimality.txt
	@! grep -q DIVERGED /tmp/dpa_optimality.txt \
	  && grep -q "a15 summary" /tmp/dpa_optimality.txt \
	  && grep -q "improved=yes" /tmp/dpa_optimality.txt \
	  && grep -q "0 cell(s) diverged" /tmp/dpa_optimality.txt \
	  && echo "optimality-smoke: routed + repartitioned ratios strictly improved, results bit-identical"

# Route-crash smoke test: the routed fan-in cells of the a15 matrix under
# crash-restart schedules. The origin-anchored end-to-end ack must keep
# every crashed routed cell bit-identical to the flat fault-free
# reference (zero divergence), and the custody machinery must actually
# fire: the summary's route-crash re-issue count has to be non-zero, or
# the crash windows never hit a batch in flight.
route-crash-smoke: build
	dune exec $(BENCH) -- a15 --scale small --bodies 512 | tee /tmp/dpa_route_crash.txt
	@! grep -q DIVERGED /tmp/dpa_route_crash.txt \
	  && grep -q "0 cell(s) diverged" /tmp/dpa_route_crash.txt \
	  && grep -Eq " [1-9][0-9]* route-crash re-issue" /tmp/dpa_route_crash.txt \
	  && echo "route-crash-smoke: routed crash cells bit-identical with live origin re-issues"

# Flat-heap scale smoke test: the a16 sweep at reduced scale. The
# allocation gate must pass (every boxed-baseline config re-run on the
# flat heap clears the committed words-per-body-step reduction
# threshold), and bin/scale_check must accept the JSON artifact — field
# presence, reduction-factor arithmetic, non-negative counters — and
# then re-measure the strip hot path directly, failing if a phase of
# local reads allocates beyond the per-poll-quantum simulator residue
# (docs/PERFORMANCE.md). The committed BENCH_scale.json is the same
# artifact produced by `a16 --scale full`.
scale-smoke: build
	dune exec $(BENCH) -- a16 --scale small --json /tmp/dpa_scale.json \
	  | tee /tmp/dpa_scale.txt
	@grep -q "a16 summary: gate=ok" /tmp/dpa_scale.txt \
	  && echo "scale-smoke: allocation gate passed on all boxed-baseline configs"
	dune exec bin/scale_check.exe -- /tmp/dpa_scale.json
	@echo "scale-smoke: artifact valid; strip hot path allocation-free"

# Observability-overhead benchmark: wall-clock time of t2 and f1 with
# observability off, with event streaming only, and with causal tracing +
# critical-path analysis on top. Writes BENCH_obs_overhead.json (the
# committed copy documents the overhead on the reference machine).
bench-obs-overhead: build
	dune exec bin/bench_obs_overhead.exe -- BENCH_obs_overhead.json

clean:
	dune clean

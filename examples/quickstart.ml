(* Quickstart: the smallest complete DPA program.

   We build a 4-node simulated machine, scatter 1000 value objects across
   its global heap, and run one parallel phase in which every node sums 200
   pseudo-random remote values. The runtime batches requests per owner,
   overlaps them with ready threads, and reuses fetched objects.

     dune exec examples/quickstart.exe *)

open Dpa_sim
open Dpa_heap

let nnodes = 4
let nobjs = 250 (* per node *)
let items_per_node = 20
let reads_per_item = 10

let () =
  (* 1. A simulated machine and its global heap. *)
  let engine = Engine.create (Machine.t3d ~nodes:nnodes) in
  let heaps = Heap.cluster ~nnodes in
  let ptrs =
    Array.init nnodes (fun node ->
        Array.init nobjs (fun slot ->
            Heap.alloc heaps.(node)
              ~floats:[| float_of_int ((node * nobjs) + slot) |]
              ~ptrs:[||]))
  in

  (* 2. Work items: each reads a deterministic scatter of global pointers
     and accumulates the values it finds. *)
  let sums = Array.make nnodes 0. in
  let items node =
    Array.init items_per_node (fun item ->
        fun ctx ->
          for r = 0 to reads_per_item - 1 do
            let h = (node * 7919) + (item * 104729) + (r * 1299721) in
            let p = ptrs.(h mod nnodes).((h / 31) mod nobjs) in
            Dpa.Runtime.read ctx p (fun ctx view ->
                Dpa.Runtime.charge ctx 500 (* 500 ns of "work" per value *);
                sums.(Dpa.Runtime.node_id ctx) <-
                  sums.(Dpa.Runtime.node_id ctx)
                  +. Heap.view_float (Dpa.Runtime.heaps ctx) view 0)
          done)
  in

  (* 3. Run the phase under DPA (strip 16, aggregation up to 32/message). *)
  let breakdown, stats =
    Dpa.Runtime.run_phase ~engine ~heaps
      ~config:(Dpa.Config.dpa ~strip_size:16 ~agg_max:32 ())
      ~items
  in

  Format.printf "phase: %a@." Breakdown.pp breakdown;
  Format.printf "%a@." Dpa.Dpa_stats.pp stats;
  Array.iteri (fun node s -> Format.printf "node %d sum = %.0f@." node s) sums

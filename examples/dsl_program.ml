(* The compiler pipeline end-to-end from *source text*: parse an ICC++-like
   conc program, show its thread partitioning (spawn sites, hoisting), and
   run it on the DPA runtime over a distributed structure.

   The program walks a binary tree where each node also carries a pointer
   to a "twin" record holding its weight. The twin pointer comes out of the
   node's own object, so it is a *second* alignment point (it cannot be
   hoisted into the first — a data dependence, which Partition's output
   shows as a separate spawn site labeled "w"); DPA still aggregates the
   twin fetches of all the concurrently walking subtree threads into bulk
   messages.

     dune exec examples/dsl_program.exe *)

open Dpa_compiler
open Dpa_sim

let source =
  {|
  // weighted tree sum: value = node->f[0] * twin->f[0]
  func walk(t: global ptr<0>) {
    if is_nil(t) {
    } else {
      w = t->ptr[2];            // the twin (same alias class)
      v = t->f[0];
      scale = w->f[0];          // second alignment point: w depends on t
      sum += v * scale;
      l = t->ptr[0];
      r = t->ptr[1];
      conc {
        walk(l);
        walk(r);
      }
    }
  }
  |}

let nnodes = 8
let depth = 10

(* Build the tree: node i on node (i mod nnodes); its twin on the SAME
   simulated node, so hoisting can batch the pair into one request. *)
let build heaps =
  let rec alloc i level =
    if level >= depth then Dpa_heap.Gptr.nil
    else begin
      let owner = i mod nnodes in
      let l = alloc ((2 * i) + 1) (level + 1) in
      let r = alloc ((2 * i) + 2) (level + 1) in
      let twin =
        Dpa_heap.Heap.alloc heaps.(owner)
          ~floats:[| float_of_int (1 + (i mod 3)) |]
          ~ptrs:[||]
      in
      Dpa_heap.Heap.alloc heaps.(owner)
        ~floats:[| float_of_int (i mod 7) |]
        ~ptrs:[| l; r; twin |]
    end
  in
  alloc 0 0

let () =
  let program = Parser.program source in
  Format.printf "parsed program:@.%a@.@." Pretty.pp_program program;
  List.iter
    (fun info -> Format.printf "%a@.@." Pretty.pp_info info)
    (Partition.analyze_program program);

  let module I = Interp.Make (Dpa.Runtime) in
  let heaps = Dpa_heap.Heap.cluster ~nnodes in
  let root = build heaps in
  let c = I.compile program in
  let engine = Engine.create (Machine.t3d ~nodes:nnodes) in
  let items node =
    if node = 0 then [| I.item c ~entry:"walk" ~args:[ Value.Ptr root ] |]
    else [||]
  in
  let breakdown, stats =
    Dpa.Runtime.run_phase ~engine ~heaps ~config:(Dpa.Config.dpa ()) ~items
  in
  Format.printf "DPA: %a@.%a@." Breakdown.pp breakdown Dpa.Dpa_stats.pp stats;
  Format.printf "weighted sum = %.0f@." (I.accumulator c "sum");

  (* Reference: direct recursive walk over the heap. *)
  let rec ref_sum (p : Dpa_heap.Gptr.t) =
    if Dpa_heap.Gptr.is_nil p then 0.
    else begin
      let v = Dpa_heap.Heap.deref heaps p in
      let twin = Dpa_heap.Heap.deref heaps v.Dpa_heap.Obj_repr.ptrs.(2) in
      (v.Dpa_heap.Obj_repr.floats.(0) *. twin.Dpa_heap.Obj_repr.floats.(0))
      +. ref_sum v.Dpa_heap.Obj_repr.ptrs.(0)
      +. ref_sum v.Dpa_heap.Obj_repr.ptrs.(1)
    end
  in
  Format.printf "reference    = %.0f@." (ref_sum root)

(* FMM demo: the paper's second application.

   Runs the force-evaluation phase of a 4096-particle 2-D fast multipole
   method (order 13) on 8 simulated nodes under DPA and the baselines, and
   verifies the fields against direct O(n^2) summation.

     dune exec examples/fmm_demo.exe *)

open Dpa_fmm

let nparticles = 4096
let nnodes = 8

let () =
  let params = Fmm_force.default_params in
  let run variant =
    let r = Fmm_run.run ~params ~nnodes ~nparticles ~seed:42 variant in
    Format.printf "%-14s %a@."
      (Dpa_baselines.Variant.name variant)
      Dpa_sim.Breakdown.pp r.Fmm_run.phase.Fmm_run.breakdown;
    r
  in
  let dpa = run (Dpa_baselines.Variant.dpa ~strip_size:50 ()) in
  let _ = run (Dpa_baselines.Variant.Caching { capacity = 4096 }) in
  let _ = run Dpa_baselines.Variant.Blocking in

  let tree = dpa.Fmm_run.tree in
  Format.printf "quadtree: depth %d, %d leaves@." (Quadtree.depth tree)
    (Quadtree.nleaves tree);

  let parts = Quadtree.particles tree in
  let exact = Fmm_direct.compute parts in
  let err =
    Fmm_direct.max_field_error dpa.Fmm_run.phase.Fmm_run.result
      ~reference:exact
  in
  Format.printf "max field error vs direct summation (p=%d): %.3e@."
    params.Fmm_force.p err;
  match dpa.Fmm_run.phase.Fmm_run.dpa_stats with
  | Some s -> Format.printf "%a@." Dpa.Dpa_stats.pp s
  | None -> ()

(* List traversal: the paper's motivating example shape — a conc loop whose
   iterations each chase a linked list through the global heap.

   Each node owns many list heads; the lists thread through remote nodes.
   DPA aligns the per-iteration threads so same-owner fetches aggregate;
   blocking pays a round trip per hop.

     dune exec examples/list_traversal.exe *)

open Dpa_compiler
open Dpa_sim

let nnodes = 8
let lists_per_node = 32
let list_length = 24

module I = Interp.Make (Dpa.Runtime)

let build_lists heaps =
  (* List l starts on node (l mod nnodes) and strides across the machine. *)
  Array.init (nnodes * lists_per_node) (fun l ->
      Programs.build_list heaps ~length:list_length
        ~value:(fun i -> float_of_int ((l + i) mod 10))
        ~owner:(fun i -> (l + i) mod nnodes))

let () =
  let heaps = Dpa_heap.Heap.cluster ~nnodes in
  let heads = build_lists heaps in
  let c = I.compile Programs.list_sum in
  let engine = Engine.create (Machine.t3d ~nodes:nnodes) in
  let items node =
    Array.init lists_per_node (fun i ->
        let head = heads.((node * lists_per_node) + i) in
        I.item c ~entry:"sum_list" ~args:[ Value.Ptr head ])
  in
  let breakdown, stats =
    Dpa.Runtime.run_phase ~engine ~heaps
      ~config:(Dpa.Config.dpa ~strip_size:16 ())
      ~items
  in
  Format.printf "DPA:      %a@." Breakdown.pp breakdown;
  Format.printf "  %a@." Dpa.Dpa_stats.pp stats;
  Format.printf "  total sum = %.0f@." (I.accumulator c "sum");

  (* Same workload, blocking remote reads. *)
  let module BI = Interp.Make (Dpa_baselines.Blocking) in
  let heaps = Dpa_heap.Heap.cluster ~nnodes in
  let heads = build_lists heaps in
  let cb = BI.compile Programs.list_sum in
  let engine = Engine.create (Machine.t3d ~nodes:nnodes) in
  let items node =
    Array.init lists_per_node (fun i ->
        let head = heads.((node * lists_per_node) + i) in
        BI.item cb ~entry:"sum_list" ~args:[ Value.Ptr head ])
  in
  let b_blk, _ = Dpa_baselines.Blocking.run_phase ~engine ~heaps ~items in
  Format.printf "Blocking: %a@." Breakdown.pp b_blk;
  Format.printf "  total sum = %.0f@." (BI.accumulator cb "sum");
  Format.printf "DPA is %.1fx faster@."
    (float_of_int b_blk.Breakdown.elapsed_ns
    /. float_of_int breakdown.Breakdown.elapsed_ns)

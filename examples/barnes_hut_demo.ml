(* Barnes-Hut demo: the paper's first application.

   Runs the force-computation phase of a 4096-body Plummer system on 8
   simulated nodes under all four runtimes, prints the time/overhead/idle
   breakdowns, and checks the computed accelerations against direct
   summation.

     dune exec examples/barnes_hut_demo.exe *)

open Dpa_bh

let nbodies = 4096
let nnodes = 8

let () =
  let bodies = Plummer.generate ~n:nbodies ~seed:42 in
  let octree = Octree.build bodies in
  let tree = Bh_global.distribute octree ~nnodes in
  Format.printf "tree: %d cells, depth %d, %d bodies@." (Octree.ncells octree)
    (Octree.depth octree) nbodies;

  let params = Bh_force.default_params in
  let run variant =
    let engine = Dpa_sim.Engine.create (Dpa_sim.Machine.t3d ~nodes:nnodes) in
    let r = Bh_run.force_phase ~engine ~tree ~bodies ~params variant in
    Format.printf "%-14s %a@."
      (Dpa_baselines.Variant.name variant)
      Dpa_sim.Breakdown.pp r.Bh_run.breakdown;
    r
  in
  let dpa = run (Dpa_baselines.Variant.dpa ~strip_size:50 ()) in
  let _ = run (Dpa_baselines.Variant.Caching { capacity = 4096 }) in
  let _ = run (Dpa_baselines.Variant.Prefetch { strip_size = 50 }) in
  let _ = run Dpa_baselines.Variant.Blocking in

  (* Accuracy: distributed DPA result vs direct O(n^2) summation. *)
  Bh_direct.compute_forces ~eps:params.Bh_force.eps bodies;
  let worst = ref 0. in
  Array.iteri
    (fun i b ->
      let exact = b.Body.acc in
      let n = Vec3.norm exact in
      if n > 0. then
        worst := Float.max !worst (Vec3.dist dpa.Bh_run.accs.(i) exact /. n))
    bodies;
  Format.printf "max relative error vs direct summation (theta=%.1f): %.3e@."
    params.Bh_force.theta !worst;
  (match dpa.Bh_run.dpa_stats with
  | Some s -> Format.printf "%a@." Dpa.Dpa_stats.pp s
  | None -> ())

(* Compiler demo: the paper's §3.4/§4 pipeline on the mini IR.

   Shows the thread partitioning (spawn sites labeled with pointers, and
   access hoisting of same-alias-class pointers) for three programs, then
   executes the tree traversal under DPA and blocking runtimes and compares
   the phase times.

     dune exec examples/compiler_demo.exe *)

open Dpa_compiler
open Dpa_sim

let show name program =
  Format.printf "=== %s ===@.%a@.@." name Pretty.pp_program program;
  List.iter
    (fun info -> Format.printf "%a@.@." Pretty.pp_info info)
    (Partition.analyze_program program)

module I = Interp.Make (Dpa.Runtime)
module B = Interp.Make (Dpa_baselines.Blocking)

let nnodes = 8
let depth = 12 (* 4095-node binary tree *)

let () =
  show "list_sum" Programs.list_sum;
  show "tree_sum" Programs.tree_sum;
  show "pair_sum" Programs.pair_sum;

  (* Execute tree_sum over a distributed binary tree. *)
  let build () =
    let heaps = Dpa_heap.Heap.cluster ~nnodes in
    let root =
      Programs.build_tree heaps ~depth
        ~value:(fun i -> float_of_int (i mod 100))
        ~owner:(fun i -> i mod nnodes)
    in
    (heaps, root)
  in
  let heaps, root = build () in
  let c = I.compile Programs.tree_sum in
  let engine = Engine.create (Machine.t3d ~nodes:nnodes) in
  let items node =
    if node = 0 then [| I.item c ~entry:"sum_tree" ~args:[ Value.Ptr root ] |]
    else [||]
  in
  let b_dpa, stats =
    Dpa.Runtime.run_phase ~engine ~heaps ~config:(Dpa.Config.dpa ()) ~items
  in
  Format.printf "tree_sum under DPA:      %a@." Breakdown.pp b_dpa;
  Format.printf "  %a@." Dpa.Dpa_stats.pp stats;
  Format.printf "  sum = %.0f@." (I.accumulator c "sum");

  let heaps, root = build () in
  let cb = B.compile Programs.tree_sum in
  let engine = Engine.create (Machine.t3d ~nodes:nnodes) in
  let items node =
    if node = 0 then [| B.item cb ~entry:"sum_tree" ~args:[ Value.Ptr root ] |]
    else [||]
  in
  let b_blk, _ =
    Dpa_baselines.Blocking.run_phase ~engine ~heaps ~items
  in
  Format.printf "tree_sum under blocking: %a@." Breakdown.pp b_blk;
  Format.printf "  sum = %.0f@." (B.accumulator cb "sum");
  Format.printf "DPA is %.1fx faster on this traversal@."
    (float_of_int b_blk.Breakdown.elapsed_ns
    /. float_of_int b_dpa.Breakdown.elapsed_ns)

(** The access interface shared by the DPA runtime and every baseline
    runtime. Application force-computation phases are written once as
    functors over this signature, so the same application code runs under
    DPA, software caching, and blocking remote reads — as the paper's
    compiler-generated code would. *)

module type S = sig
  type ctx
  (** Per-node execution context. *)

  val node_id : ctx -> int

  val heaps : ctx -> Dpa_heap.Heap.cluster
  (** The cluster's stores — how a continuation resolves the fields of a
      delivered {!Dpa_heap.Heap.view} (e.g. [Heap.view_float (A.heaps
      ctx) view 0]). Reading objects other than delivered views must go
      through {!read}, which models the communication. *)

  val charge : ctx -> int -> unit
  (** Account [ns] of local application computation. *)

  val read :
    ctx ->
    Dpa_heap.Gptr.t ->
    (ctx -> Dpa_heap.Heap.view -> unit) ->
    unit
  (** [read ctx p k] — dereference a global pointer and continue with [k].
      The continuation may run immediately (local or reused data) or later
      (suspended thread); the runtime decides. The delivered view is
      read-only and valid for the current phase; resolve its fields with
      {!Dpa_heap.Heap.view_float} and friends over [heaps ctx]. *)

  val accumulate : ctx -> Dpa_heap.Gptr.t -> idx:int -> float -> unit
  (** [accumulate ctx p ~idx v] — add [v] to float field [idx] of the
      object at [p]: a commutative remote reduction. Applied immediately
      for local objects; buffered, possibly combined, and delivered in
      bulk for remote ones. All updates of a phase are applied by the time
      the phase returns; ordering within a phase is unspecified (the
      [conc] contract). *)
end

(* Checksummed write-ahead log with a doublewrite slot.

   The log is a byte image of records [len:4 LE][payload][crc:4 LE], the
   CRC-32 taken over the payload alone. Every append first writes the
   complete record image to a single doublewrite slot, then appends it to
   the main image — so a crash tearing the write in progress damages at
   most one of the two copies (the fault plan draws exactly one tear per
   log per crash, hitting either the slot or the main tail, mirroring a
   real torn sector). [scan] walks the image front to back, truncates at
   the first record that fails its length or checksum check, and repairs
   the lost tail from the slot when the slot holds a valid record the
   scanned log no longer ends with. Recovery is therefore lossless for
   every single-tear schedule — provided the scan runs before the next
   append, which would overwrite the slot's copy of the torn record
   (the runtime anchors the scan to the crash event for exactly this
   reason). *)

let len_bytes = 4
let crc_bytes = 4

type t = {
  mutable data : Bytes.t;  (* main log image, a concatenation of records *)
  mutable used : int;  (* live prefix of [data] *)
  mutable slot : Bytes.t;  (* doublewrite copy of the last appended record *)
  mutable slot_used : int;
  mutable count : int;  (* records in the live prefix *)
}

let create () =
  {
    data = Bytes.create 256;
    used = 0;
    slot = Bytes.create 64;
    slot_used = 0;
    count = 0;
  }

let size t = t.used
let count t = t.count

let reset t =
  t.used <- 0;
  t.slot_used <- 0;
  t.count <- 0

let put_u32 b ~pos v =
  for i = 0 to 3 do
    Bytes.set b (pos + i) (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let get_u32 b ~pos =
  let byte i = Char.code (Bytes.get b (pos + i)) in
  byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)

(* One record's full image: length prefix, payload, payload CRC. *)
let record_image payload =
  let n = Bytes.length payload in
  let img = Bytes.create (len_bytes + n + crc_bytes) in
  put_u32 img ~pos:0 n;
  Bytes.blit payload 0 img len_bytes n;
  put_u32 img ~pos:(len_bytes + n) (Dpa_util.Crc.digest payload);
  img

let ensure b used extra =
  let cap = Bytes.length b in
  if used + extra <= cap then b
  else begin
    let b' = Bytes.create (max (used + extra) (2 * cap)) in
    Bytes.blit b 0 b' 0 used;
    b'
  end

let append t payload =
  let img = record_image payload in
  let n = Bytes.length img in
  (* Doublewrite order: the slot is durable before the main image is
     touched, so the torn main tail is always recoverable from it. *)
  t.slot <- ensure t.slot 0 n;
  Bytes.blit img 0 t.slot 0 n;
  t.slot_used <- n;
  t.data <- ensure t.data t.used n;
  Bytes.blit img 0 t.data t.used n;
  t.used <- t.used + n;
  t.count <- t.count + 1

(* Offset of the last record in the live image, or None when empty.
   Walks the whole image — only called on the tear path, never in the
   append fast path. *)
let last_record_off t =
  let rec walk off last =
    if off >= t.used then last
    else
      let n = get_u32 t.data ~pos:off in
      walk (off + len_bytes + n + crc_bytes) (Some off)
  in
  walk 0 None

let flip_bit b ~base ~len ~pos =
  let bit = pos mod (8 * len) in
  let off = base + (bit / 8) in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor (1 lsl (bit mod 8))))

(* Apply one crash's torn-write damage. [slot] picks the doublewrite slot
   over the main tail; [flip] a bit-flip over a truncation; [pos] seeds
   where. Returns whether anything was actually damaged (an empty log or
   slot absorbs the tear harmlessly). *)
let tear t ~slot ~flip ~pos =
  if slot then
    if t.slot_used = 0 then false
    else if flip then begin
      flip_bit t.slot ~base:0 ~len:t.slot_used ~pos;
      true
    end
    else begin
      (* Torn slot write: lose between one byte and the whole slot. *)
      t.slot_used <- t.slot_used - 1 - (pos mod t.slot_used);
      true
    end
  else
    match last_record_off t with
    | None -> false
    | Some off ->
      let rec_len = t.used - off in
      if flip then begin
        flip_bit t.data ~base:off ~len:rec_len ~pos;
        true
      end
      else begin
        (* Torn tail write: the last record loses between one byte and
           its whole image. *)
        t.used <- t.used - 1 - (pos mod rec_len);
        (* The record count no longer matches the image; scan rebuilds
           it, and nothing reads [count] between crash and scan. *)
        true
      end

(* Parse the record at [off]; [Some (payload, next_off)] iff the length
   is sane and the checksum verifies. *)
let parse t ~off =
  if off + len_bytes + crc_bytes > t.used then None
  else
    let n = get_u32 t.data ~pos:off in
    let next = off + len_bytes + n + crc_bytes in
    if n < 0 || next > t.used then None
    else
      let stored = get_u32 t.data ~pos:(off + len_bytes + n) in
      if Dpa_util.Crc.digest_sub t.data ~pos:(off + len_bytes) ~len:n <> stored
      then None
      else Some (Bytes.sub t.data (off + len_bytes) n, next)

(* Does the slot hold one complete, checksum-valid record? *)
let slot_record t =
  if t.slot_used < len_bytes + crc_bytes then None
  else
    let n = get_u32 t.slot ~pos:0 in
    if n < 0 || len_bytes + n + crc_bytes <> t.slot_used then None
    else
      let stored = get_u32 t.slot ~pos:(len_bytes + n) in
      if Dpa_util.Crc.digest_sub t.slot ~pos:len_bytes ~len:n <> stored then
        None
      else Some (Bytes.sub t.slot len_bytes n)

let records t =
  let rec walk off acc =
    match parse t ~off with
    | Some (payload, next) -> walk next (payload :: acc)
    | None -> List.rev acc
  in
  walk 0 []

type scan_result = {
  records : Bytes.t list;
  truncated : int;
  repaired : int;
}

let scan t =
  let rec walk off acc n =
    match parse t ~off with
    | Some (payload, next) -> walk next (payload :: acc) (n + 1)
    | None -> (off, acc, n)
  in
  let good_end, rev_records, n = walk 0 [] 0 in
  let truncated = if good_end < t.used then 1 else 0 in
  t.used <- good_end;
  t.count <- n;
  let last = match rev_records with [] -> None | r :: _ -> Some r in
  let repaired =
    match slot_record t with
    | Some payload when last <> Some payload ->
      (* The slot's record never made it (or was torn back out): the
         doublewrite copy is the durable truth — re-append it. *)
      append t payload;
      1
    | _ -> 0
  in
  { records = records t; truncated; repaired }

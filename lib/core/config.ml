type t = { name : string; strip_size : int; agg_max : int; reuse : bool }

let check t =
  if t.strip_size <= 0 then invalid_arg "Config: strip_size must be positive";
  if t.agg_max <= 0 then invalid_arg "Config: agg_max must be positive";
  t

let dpa ?(strip_size = 50) ?(agg_max = 64) () =
  check
    { name = Printf.sprintf "DPA(%d)" strip_size; strip_size; agg_max; reuse = true }

let pipeline_only ?(strip_size = 50) () =
  check { name = "pipeline"; strip_size; agg_max = 1; reuse = false }

let pipeline_aggregate ?(strip_size = 50) ?(agg_max = 64) () =
  check { name = "pipeline+agg"; strip_size; agg_max; reuse = false }

let pp ppf t =
  Format.fprintf ppf "%s{strip=%d; agg=%d; reuse=%b}" t.name t.strip_size
    t.agg_max t.reuse

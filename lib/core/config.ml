type auto_strip = { min_strip : int; max_strip : int; d_target : int }

type route = Off | All_dsts | Hot of int list

type t = {
  name : string;
  strip_size : int;
  agg_max : int;
  reuse : bool;
  auto : auto_strip option;
  route : route;
}

let check t =
  if t.strip_size <= 0 then invalid_arg "Config: strip_size must be positive";
  if t.agg_max <= 0 then invalid_arg "Config: agg_max must be positive";
  (match t.auto with
  | None -> ()
  | Some a ->
    if a.min_strip <= 0 then invalid_arg "Config: min_strip must be positive";
    if a.min_strip > a.max_strip then
      invalid_arg "Config: min_strip must not exceed max_strip";
    if t.strip_size < a.min_strip || t.strip_size > a.max_strip then
      invalid_arg "Config: initial strip_size outside [min_strip, max_strip]";
    if a.d_target <= 0 then invalid_arg "Config: d_target must be positive");
  (match t.route with
  | Off -> ()
  | All_dsts | Hot _ ->
    (* Routed aggregation holds a destination's updates across the whole
       phase so they combine before the tree hop; without [reuse] there is
       no combining map and routing would only add latency. *)
    if not t.reuse then invalid_arg "Config: route requires reuse";
    (match t.route with
    | Hot dsts ->
      if dsts = [] then invalid_arg "Config: Hot route needs destinations";
      List.iter
        (fun d ->
          if d < 0 then invalid_arg "Config: Hot route destination < 0")
        dsts
    | _ -> ()));
  t

let dpa ?(strip_size = 50) ?(agg_max = 64) ?(route = Off) () =
  check
    {
      name = Printf.sprintf "DPA(%d)" strip_size;
      strip_size;
      agg_max;
      reuse = true;
      auto = None;
      route;
    }

let dpa_auto ?(strip_size = 50) ?(min_strip = 10) ?(max_strip = 1000)
    ?(d_target = 2048) ?(agg_max = 64) ?(route = Off) () =
  check
    {
      name = Printf.sprintf "DPA(auto %d..%d)" min_strip max_strip;
      strip_size;
      agg_max;
      reuse = true;
      auto = Some { min_strip; max_strip; d_target };
      route;
    }

let pipeline_only ?(strip_size = 50) () =
  check
    {
      name = "pipeline";
      strip_size;
      agg_max = 1;
      reuse = false;
      auto = None;
      route = Off;
    }

let pipeline_aggregate ?(strip_size = 50) ?(agg_max = 64) () =
  check
    {
      name = "pipeline+agg";
      strip_size;
      agg_max;
      reuse = false;
      auto = None;
      route = Off;
    }

let pp_route ppf = function
  | Off -> ()
  | All_dsts -> Format.fprintf ppf "; route=all"
  | Hot dsts ->
    Format.fprintf ppf "; route=hot[%s]"
      (String.concat "," (List.map string_of_int dsts))

let pp ppf t =
  match t.auto with
  | None ->
    Format.fprintf ppf "%s{strip=%d; agg=%d; reuse=%b%a}" t.name t.strip_size
      t.agg_max t.reuse pp_route t.route
  | Some a ->
    Format.fprintf ppf
      "%s{strip=auto(%d..%d, init %d, D<=%d); agg=%d; reuse=%b%a}" t.name
      a.min_strip a.max_strip t.strip_size a.d_target t.agg_max t.reuse
      pp_route t.route

type auto_strip = { min_strip : int; max_strip : int; d_target : int }

type t = {
  name : string;
  strip_size : int;
  agg_max : int;
  reuse : bool;
  auto : auto_strip option;
}

let check t =
  if t.strip_size <= 0 then invalid_arg "Config: strip_size must be positive";
  if t.agg_max <= 0 then invalid_arg "Config: agg_max must be positive";
  (match t.auto with
  | None -> ()
  | Some a ->
    if a.min_strip <= 0 then invalid_arg "Config: min_strip must be positive";
    if a.min_strip > a.max_strip then
      invalid_arg "Config: min_strip must not exceed max_strip";
    if t.strip_size < a.min_strip || t.strip_size > a.max_strip then
      invalid_arg "Config: initial strip_size outside [min_strip, max_strip]";
    if a.d_target <= 0 then invalid_arg "Config: d_target must be positive");
  t

let dpa ?(strip_size = 50) ?(agg_max = 64) () =
  check
    {
      name = Printf.sprintf "DPA(%d)" strip_size;
      strip_size;
      agg_max;
      reuse = true;
      auto = None;
    }

let dpa_auto ?(strip_size = 50) ?(min_strip = 10) ?(max_strip = 1000)
    ?(d_target = 2048) ?(agg_max = 64) () =
  check
    {
      name = Printf.sprintf "DPA(auto %d..%d)" min_strip max_strip;
      strip_size;
      agg_max;
      reuse = true;
      auto = Some { min_strip; max_strip; d_target };
    }

let pipeline_only ?(strip_size = 50) () =
  check
    { name = "pipeline"; strip_size; agg_max = 1; reuse = false; auto = None }

let pipeline_aggregate ?(strip_size = 50) ?(agg_max = 64) () =
  check
    {
      name = "pipeline+agg";
      strip_size;
      agg_max;
      reuse = false;
      auto = None;
    }

let pp ppf t =
  match t.auto with
  | None ->
    Format.fprintf ppf "%s{strip=%d; agg=%d; reuse=%b}" t.name t.strip_size
      t.agg_max t.reuse
  | Some a ->
    Format.fprintf ppf
      "%s{strip=auto(%d..%d, init %d, D<=%d); agg=%d; reuse=%b}" t.name
      a.min_strip a.max_strip t.strip_size a.d_target t.agg_max t.reuse

(** The DPA runtime: dynamic pointer alignment.

    A phase executes, on every node, an array of independent work items (the
    iterations of a top-level [conc] loop). Items are strip-mined by
    {!Config.strip_size}. Within a strip, each remote read creates a
    non-blocking thread labeled by the pointer it needs:

    - the pointer→threads map [M] merges threads waiting on the same pointer
      onto one outstanding fetch;
    - fetched copies are renamed into the alignment buffer [D] and reused by
      later reads in the strip (tiling);
    - requests are aggregated per owner node and flushed either when a batch
      fills or when the node runs out of ready threads (pipelining:
      communication overlaps the execution of ready threads);
    - a bulk reply wakes all threads waiting on its pointers, which then run
      consecutively.

    Between strips [D] and the thread state are discarded, bounding memory
    as the paper's k-bounded strip-mining does. *)

type ctx

include Access.S with type ctx := ctx

val heaps : ctx -> Dpa_heap.Heap.cluster
(** The cluster's heaps (for reading co-located metadata; communication to
    other nodes must go through {!read}). *)

val run_phase :
  engine:Dpa_sim.Engine.t ->
  heaps:Dpa_heap.Heap.cluster ->
  config:Config.t ->
  items:(int -> (ctx -> unit) array) ->
  Dpa_sim.Breakdown.t * Dpa_stats.t
(** [run_phase ~engine ~heaps ~config ~items] runs one parallel phase.
    [items node] gives the work items of [node]; each item is run once and
    may issue {!read}s and {!charge}s. Returns the phase breakdown (elapsed
    time, local/comm/idle split) and merged runtime statistics.

    The engine's queue must be empty. The phase ends with a barrier.

    Equivalent to {!run_phase_labeled} with label ["phase"]. *)

val run_phase_labeled :
  label:string ->
  engine:Dpa_sim.Engine.t ->
  heaps:Dpa_heap.Heap.cluster ->
  config:Config.t ->
  items:(int -> (ctx -> unit) array) ->
  Dpa_sim.Breakdown.t * Dpa_stats.t
(** Like {!run_phase}, with a phase label for the observability layer.

    When the engine carries a {!Dpa_sim.Engine.sink}, the runtime emits
    structured events into it — per-node phase and strip spans; spawn,
    wake, alignment-buffer hit/evict, request/update send and bulk-reply
    instants — and feeds per-phase metrics (request batch sizes, thread
    wait latency in sim-ns, outstanding threads, D-buffer occupancy,
    per-destination message volume) into the sink's registry under names
    suffixed [".label"]. The phase's merged {!Dpa_stats} are attached as a
    meta document ["dpa_stats.label"] (last run wins per label).

    With no sink attached every hook is a cheap [None] match: no closure
    is allocated on the hot path and results are bit-identical. *)

(** The DPA runtime: dynamic pointer alignment.

    A phase executes, on every node, an array of independent work items (the
    iterations of a top-level [conc] loop). Items are strip-mined by
    {!Config.strip_size}. Within a strip, each remote read creates a
    non-blocking thread labeled by the pointer it needs:

    - the pointer→threads map [M] merges threads waiting on the same pointer
      onto one outstanding fetch;
    - fetched copies are renamed into the alignment buffer [D] and reused by
      later reads in the strip (tiling);
    - requests are aggregated per owner node and flushed either when a batch
      fills or when the node runs out of ready threads (pipelining:
      communication overlaps the execution of ready threads);
    - a bulk reply wakes all threads waiting on its pointers, which then run
      consecutively.

    Between strips [D] and the thread state are discarded, bounding memory
    as the paper's k-bounded strip-mining does.

    {2 Adaptive strip size}

    Under {!Config.dpa_auto} the strip bound is not static: at each strip
    boundary a per-node controller halves the next strip when [D]'s
    closing occupancy exceeded the configured target, doubles it while
    the occupancy is at or below half the target (so a doubling cannot
    overshoot even if the footprint scales with the strip), and holds
    inside the hysteresis band between — always within
    [min_strip, max_strip]. The decision reads only state the runtime
    already maintains and charges no simulated time, so pinning the
    bounds ([min_strip = max_strip]) reproduces the static configuration
    bit for bit. Resizes are counted in {!Dpa_stats} ([strip_grows],
    [strip_shrinks], [strip_size_final]) and, under a sink, emitted as
    ["ctrl"]-category [strip_resize] instants plus a [strip_size] counter
    track.

    {2 Timeouts under a fault plan}

    With a fault plan active each aggregated request also arms an
    end-to-end timer that re-issues still-unanswered tokens
    ([Dpa_stats.rt_retries]); its base timeout uses the transport's
    round-trip estimator when {!Dpa_sim.Machine.adaptive_rto} is set
    (see {!Dpa_msg.Am.e2e_rto}), falling back to a constant worst-case
    formula until samples exist. The phase barrier certifies transport
    quiescence and then prunes the receiver dedup tables
    ({!Dpa_msg.Am.prune_seen}), which would otherwise grow for the life
    of the engine.

    {2 Crash-restart}

    When the fault plan schedules crash windows ([crashes > 0]), the
    runtime posts one background event per window. At the crash instant
    the node fail-stops {e between} engine events — no handler is ever
    interrupted midway — and loses exactly its volatile state: the
    alignment buffer [D], the aggregator's unsent request batches, the
    ready ring's remote renamed copies, and the transport's per-node state
    (unacked envelopes, dedup entries, link RTT filters —
    {!Dpa_msg.Am.on_crash}). The node's incarnation number is bumped, so
    every message copy stamped for the old incarnation is fenced at
    delivery: counted, but no handler runs and no ack is sent.

    Durable by contract: the heap, result arrays, the pointer map [M]
    (thread records register before any partial execution), the
    unacked-batch write-ahead log and the owner-side applied-batch
    journal that together make remote accumulates exactly-once across
    crashes on either end. The two logs are checksummed record images
    with a doublewrite slot ({!Wal}): the torn-write fault class
    ([torn-wal]) may damage one tail copy per crash, so recovery starts
    with an integrity scan ({!Wal.scan}) that truncates the damage and
    repairs the lost record from the slot — counted by
    [Dpa_stats.wal_truncated] / [wal_repaired]. The scan and the rebuild
    of the in-memory log images run atomically at the crash event,
    before the new incarnation can append (each append overwrites the
    slot) or accept a delivery (the journal image must already dedup) —
    in wall-clock terms this is the first thing restart-time recovery
    does.

    At the restart instant the node rejoins cold: it idles until then,
    and every token still outstanding in [M] is pushed back through the
    normal aggregation/alignment path — the transparent re-fetch counted
    by [Dpa_stats.crash_refetches]. Update batches rebuilt from the
    scanned WAL re-send off their own (deliberately unfenced) timers.

    Tree-routed aggregation ({!Config.route}) survives crashes through
    origin custody: under a fault plan every routed batch is journaled
    at its origin and kept in its outstanding set until the {e final
    owner}'s end-to-end ack releases it — relay hops are best-effort
    combiners whose parked batches are volatile by design. A relay
    crash wipes them ([Dpa_stats.relay_wiped]) and the covering origins
    re-issue straight-line through the flat exactly-once path
    ([Dpa_stats.routed_reissues]), deduped by the owner's journal; an
    origin's own end-to-end timer (RTO scaled by tree depth) is the
    fallback for lost acks or notifies.

    Results remain bit-identical to the fault-free run; DESIGN.md §13
    states the full per-fault-class contract and §15 the routed custody
    protocol. *)

type ctx

include Access.S with type ctx := ctx

val run_phase :
  engine:Dpa_sim.Engine.t ->
  heaps:Dpa_heap.Heap.cluster ->
  config:Config.t ->
  items:(int -> (ctx -> unit) array) ->
  Dpa_sim.Breakdown.t * Dpa_stats.t
(** [run_phase ~engine ~heaps ~config ~items] runs one parallel phase.
    [items node] gives the work items of [node]; each item is run once and
    may issue {!read}s and {!charge}s. Returns the phase breakdown (elapsed
    time, local/comm/idle split) and merged runtime statistics.

    The engine's queue must be empty. The phase ends with a barrier.

    Equivalent to {!run_phase_labeled} with label ["phase"]. *)

val run_phase_labeled :
  label:string ->
  engine:Dpa_sim.Engine.t ->
  heaps:Dpa_heap.Heap.cluster ->
  config:Config.t ->
  items:(int -> (ctx -> unit) array) ->
  Dpa_sim.Breakdown.t * Dpa_stats.t
(** Like {!run_phase}, with a phase label for the observability layer.

    When the engine carries a {!Dpa_sim.Engine.sink}, the runtime emits
    structured events into it — per-node phase and strip spans; spawn,
    wake, alignment-buffer hit/evict, request/update send and bulk-reply
    instants — and feeds per-phase metrics (request batch sizes, thread
    wait latency in sim-ns, outstanding threads, D-buffer occupancy,
    per-destination message volume) into the sink's registry under names
    suffixed [".label"]. The phase's merged {!Dpa_stats} are attached as a
    meta document ["dpa_stats.label"] (last run wins per label).

    With no sink attached every hook is a cheap [None] match: no closure
    is allocated on the hot path and results are bit-identical. *)

(** The DPA runtime: dynamic pointer alignment.

    A phase executes, on every node, an array of independent work items (the
    iterations of a top-level [conc] loop). Items are strip-mined by
    {!Config.strip_size}. Within a strip, each remote read creates a
    non-blocking thread labeled by the pointer it needs:

    - the pointer→threads map [M] merges threads waiting on the same pointer
      onto one outstanding fetch;
    - fetched copies are renamed into the alignment buffer [D] and reused by
      later reads in the strip (tiling);
    - requests are aggregated per owner node and flushed either when a batch
      fills or when the node runs out of ready threads (pipelining:
      communication overlaps the execution of ready threads);
    - a bulk reply wakes all threads waiting on its pointers, which then run
      consecutively.

    Between strips [D] and the thread state are discarded, bounding memory
    as the paper's k-bounded strip-mining does. *)

type ctx

include Access.S with type ctx := ctx

val heaps : ctx -> Dpa_heap.Heap.cluster
(** The cluster's heaps (for reading co-located metadata; communication to
    other nodes must go through {!read}). *)

val run_phase :
  engine:Dpa_sim.Engine.t ->
  heaps:Dpa_heap.Heap.cluster ->
  config:Config.t ->
  items:(int -> (ctx -> unit) array) ->
  Dpa_sim.Breakdown.t * Dpa_stats.t
(** [run_phase ~engine ~heaps ~config ~items] runs one parallel phase.
    [items node] gives the work items of [node]; each item is run once and
    may issue {!read}s and {!charge}s. Returns the phase breakdown (elapsed
    time, local/comm/idle split) and merged runtime statistics.

    The engine's queue must be empty. The phase ends with a barrier. *)

open Dpa_heap

(* With the flat heap a renamed copy is just the object's handle (views
   alias the owner store — see {!Heap.view}), so D degenerates to a
   membership set over pointers. Its size and peak still measure exactly
   what the paper's D does: how many distinct remote objects the strip
   holds at once. *)
type t = { table : unit Gptr.Tbl.t; mutable peak : int }

let create () = { table = Gptr.Tbl.create 256; peak = 0 }

let mem t ptr = Gptr.Tbl.mem t.table ptr

let add t ptr =
  Gptr.Tbl.replace t.table ptr ();
  let n = Gptr.Tbl.length t.table in
  if n > t.peak then t.peak <- n

let size t = Gptr.Tbl.length t.table
let peak t = t.peak
let clear t = Gptr.Tbl.reset t.table

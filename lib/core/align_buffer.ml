open Dpa_heap

type t = { table : Obj_repr.t Gptr.Tbl.t; mutable peak : int }

let create () = { table = Gptr.Tbl.create 256; peak = 0 }

let find t ptr = Gptr.Tbl.find_opt t.table ptr

let add t ptr view =
  Gptr.Tbl.replace t.table ptr view;
  let n = Gptr.Tbl.length t.table in
  if n > t.peak then t.peak <- n

let size t = Gptr.Tbl.length t.table
let peak t = t.peak
let clear t = Gptr.Tbl.reset t.table

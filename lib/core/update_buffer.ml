open Dpa_heap

type entry = { ptr : Gptr.t; idx : int; value : float }

type slot = { mutable acc : float }

(* Per destination: combining map keyed by (ptr, idx), plus insertion order
   so flushed batches are deterministic. Each [order] element carries its
   own slot: the map holds only the most recent slot per key (enough for
   combining and for collision detection), so aliased keys can coexist in
   a held bucket without clobbering each other. *)
type bucket = {
  combine_map : (Gptr.t * int, slot) Hashtbl.t;
  mutable order : ((Gptr.t * int) * slot) list;  (* reversed *)
  mutable count : int;
}

type t = {
  buckets : bucket array;
  combine : bool;
  max_batch : int;
  hold : int -> bool;
      (* held destinations are exempt from the eager max_batch flush and
         from [flush_if]'s strip-boundary pass: their entries keep
         combining across strips until an explicit [flush_all] /
         [flush_dst] — the whole-phase merge window of routed
         aggregation *)
  flush : dst:int -> entry list -> unit;
  mutable pending : int;
  mutable sent_entries : int;
  mutable combined : int;
  mutable messages : int;
}

let create ?(hold = fun _ -> false) ~ndest ~combine ~max_batch ~flush () =
  if ndest <= 0 then invalid_arg "Update_buffer.create: ndest must be positive";
  if max_batch <= 0 then
    invalid_arg "Update_buffer.create: max_batch must be positive";
  {
    buckets =
      Array.init ndest (fun _ ->
          { combine_map = Hashtbl.create 32; order = []; count = 0 });
    combine;
    max_batch;
    hold;
    flush;
    pending = 0;
    sent_entries = 0;
    combined = 0;
    messages = 0;
  }

let flush_dst t dst =
  let b = t.buckets.(dst) in
  if b.count > 0 then begin
    let batch =
      List.rev_map (fun ((ptr, idx), s) -> { ptr; idx; value = s.acc }) b.order
    in
    Hashtbl.reset b.combine_map;
    b.order <- [];
    t.pending <- t.pending - b.count;
    t.sent_entries <- t.sent_entries + b.count;
    b.count <- 0;
    t.messages <- t.messages + 1;
    t.flush ~dst batch
  end

let add t ~dst ptr ~idx value =
  let b = t.buckets.(dst) in
  let key = (ptr, idx) in
  (match if t.combine then Hashtbl.find_opt b.combine_map key else None with
  | Some s ->
    s.acc <- s.acc +. value;
    t.combined <- t.combined + 1
  | None ->
    (* Without combining, aliased keys must still land as distinct
       entries. Unheld buckets flush eagerly on collision (one batch per
       alias run, preserving per-message entry uniqueness); held (routed)
       destinations must NOT flush mid-strip — their phase-long merge
       window is the point — so there the aliased entries simply coexist,
       each with its own slot in [order]. *)
    if (not t.combine) && Hashtbl.mem b.combine_map key && not (t.hold dst)
    then flush_dst t dst;
    let s = { acc = value } in
    Hashtbl.replace b.combine_map key s;
    b.order <- (key, s) :: b.order;
    b.count <- b.count + 1;
    t.pending <- t.pending + 1);
  if b.count >= t.max_batch && not (t.hold dst) then flush_dst t dst

(* Bulk ingest for relay nodes: a routed batch merges into the bucket of
   its final destination entry by entry, so [combined]/[pending] account
   en-route merged entries exactly like locally-accumulated ones. *)
let add_entries t ~dst entries =
  List.iter (fun { ptr; idx; value } -> add t ~dst ptr ~idx value) entries

let flush_all t =
  Array.iteri (fun dst _ -> flush_dst t dst) t.buckets

let flush_if t pred =
  Array.iteri (fun dst _ -> if pred dst then flush_dst t dst) t.buckets

(* Wipe all buffered entries without flushing — a crashing node losing its
   volatile relay state. Returns how many entries were dropped so the
   caller can account for them (they must be recovered end-to-end). *)
let clear t =
  let wiped = t.pending in
  Array.iter
    (fun b ->
      Hashtbl.reset b.combine_map;
      b.order <- [];
      b.count <- 0)
    t.buckets;
  t.pending <- 0;
  wiped

let pending t = t.pending
let sent_entries t = t.sent_entries
let combined t = t.combined
let messages t = t.messages

type t = {
  mutable spawns : int;
  mutable inline_local : int;
  mutable align_hits : int;
  mutable merge_hits : int;
  mutable requests : int;
  mutable request_msgs : int;
  mutable max_outstanding : int;
  mutable max_batch : int;
  mutable strips : int;
  mutable align_peak : int;
  mutable updates : int;
  mutable updates_combined : int;
  mutable update_msgs : int;
  mutable strip_grows : int;
  mutable strip_shrinks : int;
  mutable strip_size_final : int;
  mutable rt_retries : int;
  mutable crashes : int;
  mutable crash_refetches : int;
  mutable upd_reissues : int;
  mutable routed_reissues : int;
  mutable relay_wiped : int;
  mutable wal_truncated : int;
  mutable wal_repaired : int;
}

let create () =
  {
    spawns = 0;
    inline_local = 0;
    align_hits = 0;
    merge_hits = 0;
    requests = 0;
    request_msgs = 0;
    max_outstanding = 0;
    max_batch = 0;
    strips = 0;
    align_peak = 0;
    updates = 0;
    updates_combined = 0;
    update_msgs = 0;
    strip_grows = 0;
    strip_shrinks = 0;
    strip_size_final = 0;
    rt_retries = 0;
    crashes = 0;
    crash_refetches = 0;
    upd_reissues = 0;
    routed_reissues = 0;
    relay_wiped = 0;
    wal_truncated = 0;
    wal_repaired = 0;
  }

let merge ts =
  let acc = create () in
  List.iter
    (fun t ->
      acc.spawns <- acc.spawns + t.spawns;
      acc.inline_local <- acc.inline_local + t.inline_local;
      acc.align_hits <- acc.align_hits + t.align_hits;
      acc.merge_hits <- acc.merge_hits + t.merge_hits;
      acc.requests <- acc.requests + t.requests;
      acc.request_msgs <- acc.request_msgs + t.request_msgs;
      acc.max_outstanding <- max acc.max_outstanding t.max_outstanding;
      acc.max_batch <- max acc.max_batch t.max_batch;
      acc.strips <- acc.strips + t.strips;
      acc.align_peak <- max acc.align_peak t.align_peak;
      acc.updates <- acc.updates + t.updates;
      acc.updates_combined <- acc.updates_combined + t.updates_combined;
      acc.update_msgs <- acc.update_msgs + t.update_msgs;
      acc.strip_grows <- acc.strip_grows + t.strip_grows;
      acc.strip_shrinks <- acc.strip_shrinks + t.strip_shrinks;
      acc.strip_size_final <- max acc.strip_size_final t.strip_size_final;
      acc.rt_retries <- acc.rt_retries + t.rt_retries;
      acc.crashes <- acc.crashes + t.crashes;
      acc.crash_refetches <- acc.crash_refetches + t.crash_refetches;
      acc.upd_reissues <- acc.upd_reissues + t.upd_reissues;
      acc.routed_reissues <- acc.routed_reissues + t.routed_reissues;
      acc.relay_wiped <- acc.relay_wiped + t.relay_wiped;
      acc.wal_truncated <- acc.wal_truncated + t.wal_truncated;
      acc.wal_repaired <- acc.wal_repaired + t.wal_repaired)
    ts;
  acc

let total_reads t = t.spawns + t.inline_local + t.align_hits + t.merge_hits

let to_json t =
  Dpa_obs.Json.Obj
    (List.map
       (fun (k, v) -> (k, Dpa_obs.Json.Int v))
       [
         ("spawns", t.spawns);
         ("inline_local", t.inline_local);
         ("align_hits", t.align_hits);
         ("merge_hits", t.merge_hits);
         ("requests", t.requests);
         ("request_msgs", t.request_msgs);
         ("max_outstanding", t.max_outstanding);
         ("max_batch", t.max_batch);
         ("strips", t.strips);
         ("align_peak", t.align_peak);
         ("updates", t.updates);
         ("updates_combined", t.updates_combined);
         ("update_msgs", t.update_msgs);
         ("strip_grows", t.strip_grows);
         ("strip_shrinks", t.strip_shrinks);
         ("strip_size_final", t.strip_size_final);
         ("rt_retries", t.rt_retries);
         ("crashes", t.crashes);
         ("crash_refetches", t.crash_refetches);
         ("upd_reissues", t.upd_reissues);
         ("routed_reissues", t.routed_reissues);
         ("relay_wiped", t.relay_wiped);
         ("wal_truncated", t.wal_truncated);
         ("wal_repaired", t.wal_repaired);
         ("total_reads", total_reads t);
       ])

let pp ppf t =
  Format.fprintf ppf
    "@[<v>reads: %d (local %d, D hits %d, M merges %d, fetched %d)@ request \
     msgs: %d carrying %d entries (max batch %d)@ max outstanding threads: \
     %d; peak D size: %d; strips: %d@]"
    (total_reads t) t.inline_local t.align_hits t.merge_hits t.spawns
    t.request_msgs t.requests t.max_batch t.max_outstanding t.align_peak
    t.strips;
  if t.updates > 0 then
    Format.fprintf ppf
      "@ @[updates: %d (%d combined away, %d messages)@]" t.updates
      t.updates_combined t.update_msgs;
  if t.strip_grows + t.strip_shrinks > 0 then
    Format.fprintf ppf
      "@ @[strip controller: %d grows, %d shrinks, final size %d@]"
      t.strip_grows t.strip_shrinks t.strip_size_final;
  if t.rt_retries > 0 then
    Format.fprintf ppf "@ @[request timer retries: %d@]" t.rt_retries;
  if t.crashes > 0 then
    Format.fprintf ppf
      "@ @[crash-restarts: %d (%d requests re-fetched, %d update batches \
       re-sent)@]"
      t.crashes t.crash_refetches t.upd_reissues;
  if t.routed_reissues + t.relay_wiped > 0 then
    Format.fprintf ppf
      "@ @[routed recovery: %d relay entr(ies) wiped by crashes, %d batches \
       re-issued straight-line@]"
      t.relay_wiped t.routed_reissues;
  if t.wal_truncated + t.wal_repaired > 0 then
    Format.fprintf ppf
      "@ @[wal integrity: %d record(s) truncated, %d repaired from the \
       doublewrite slot@]"
      t.wal_truncated t.wal_repaired

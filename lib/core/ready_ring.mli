(** Flat circular buffer of ready threads: parallel (pointer,
    continuation) arrays, FIFO like the queue it replaces, but a push or
    pop writes pre-sized slots instead of allocating cells — the
    scheduler's per-access dispatch path stays allocation-free. *)

type 'k t

val create : dummy:'k -> 'k t
(** [dummy] fills vacated continuation slots so popped closures are not
    retained by the buffer. *)

val length : 'k t -> int
val is_empty : 'k t -> bool
val push : 'k t -> Dpa_heap.Gptr.t -> 'k -> unit

val head_ptr : 'k t -> Dpa_heap.Gptr.t
(** Pointer of the oldest entry. Raises [Invalid_argument] when empty. *)

val head_k : 'k t -> 'k
val drop : 'k t -> unit
(** Discard the oldest entry (pop = [head_ptr]/[head_k] then [drop] —
    split so no tuple is built). *)

open Dpa_sim
open Dpa_heap

type request = { token : int; ptr : Gptr.t }

(* Observability state, allocated once per node per phase and only when the
   engine carries a sink. Every hot-path hook below is a match on
   [ctx.obs]: with no sink attached nothing is allocated, no time is
   charged, and the phase is bit-identical to an unobserved run. *)
type obs = {
  sink : Dpa_obs.Sink.t;
  label : string;  (* phase label; also the metric-name suffix *)
  h_batch : Dpa_obs.Metrics.histogram;  (* request batch sizes *)
  h_wait : Dpa_obs.Metrics.histogram;  (* thread wait latency, sim-ns *)
  h_out : Dpa_obs.Metrics.histogram;  (* outstanding threads at spawn *)
  h_dbuf : Dpa_obs.Metrics.histogram;  (* D-buffer occupancy at delivery *)
  c_vol : Dpa_obs.Metrics.counter array;  (* request bytes per destination *)
  c_reply : Dpa_obs.Metrics.counter;  (* bulk-reply bytes *)
  c_retry : Dpa_obs.Metrics.counter;  (* timeout-driven request re-issues *)
  issued : (int, int) Hashtbl.t;  (* token -> issue timestamp *)
  mutable strip_open : bool;
  mutable strip_start : int;
  mutable strip_id : int;
  mutable strip_items : int;
  (* Communication-optimality accounting (Export.profile): bytes the node
     actually put on the wire for this phase vs. the surface/volume-style
     lower bound — each unique remote object it touched, fetched exactly
     once at its footprint, plus each unique accumulation target, sent
     exactly once at one update-entry. *)
  touched : int Gptr.Tbl.t;  (* unique remote objects -> footprint bytes *)
  upd_touched : (Gptr.t * int, unit) Hashtbl.t;  (* unique update targets *)
  mutable opt_actual : int;  (* request+update+reply+app-ack bytes *)
  (* Causal tracing (Sink.set_causal): the per-ctx cursor state linking
     scheduler activities into the happens-before DAG. *)
  cau : Dpa_obs.Causal.t option;
  mutable last_act : int;  (* previous quantum/marker on this node, -1 *)
  mutable wake_parents : int list;  (* wake markers awaiting the next quantum *)
  mutable strip_span : int;  (* causal span id of the open strip, -1 *)
  mutable prev_strip_span : int;
}

(* Adaptive strip-size controller, allocated only under [Config.auto].
   It reads quantities the runtime already maintains — the alignment
   buffer's occupancy at the strip boundary and the node's idle-time
   delta over the strip — and charges no simulated time, so a clamped
   controller ([min_strip = max_strip]) never resizes and the run is
   bit-identical to the static configuration. *)
type ctrl = {
  auto : Config.auto_strip;
  mutable size : int;  (* strip size in force for the next strip *)
  mutable primed : bool;  (* a strip has completed; the deltas are valid *)
  mutable clock_at_start : int;
  mutable idle_at_start : int;
}

type ctx = {
  engine : Engine.t;
  machine : Machine.t;
  heaps : Heap.cluster;
  heap : Heap.t;
  node : Node.t;
  cfg : Config.t;
  stats : Dpa_stats.t;
  ready : k Ready_ring.t;
      (* flat (pointer, continuation) ring — the view IS the pointer
         ({!Heap.view}), so dispatch allocates nothing. A crash must
         re-register remote entries (the renamed copy is volatile) while
         local entries re-run against the durable heap. *)
  map : k Pointer_map.t;
  buffer : Align_buffer.t;
  mutable agg : request Dpa_msg.Aggregator.t;
  mutable updates : Update_buffer.t;
  mutable relay : Update_buffer.t;
      (* routed aggregation only: per-final-destination parking buffer for
         update batches this node relays on their way down the binomial
         tree ({!Dpa_msg.Route}). Entries combine here (the grids make the
         merge order-independent) until this node finishes its own items,
         then leave as one merged message per destination; arrivals after
         that forward immediately. Volatile: under a fault plan every
         parked batch stays under its origin's end-to-end custody
         ([out_updates] + [relay_cover]), so a crash here only delays it —
         the origin re-issues straight-line through the WAL path. *)
  relay_cover : (int, (int * int) list) Hashtbl.t;
      (* fault plans × routing: per final destination, the (origin, batch
         id) pairs whose batches are merged into the relay bucket — the
         custody manifest that travels with every relay hop so the final
         owner can journal and ack each covered batch back to its origin.
         As volatile as the relay buffer itself; wiped together at a
         crash. *)
  mutable routing_done : bool;
      (* this node ran its finish-time routing flush; later relay arrivals
         must flush through instead of parking *)
  mutable peers : ctx array;
      (* every ctx of the phase, indexed by node id — how a hop delivery
         reaches the relay state of the receiving node. Set once by
         [run_phase_labeled]; empty while routing is off. *)
  mutable pending : int;  (* threads suspended in M or queued in [ready] *)
  mutable scheduled : bool;
  mutable items : (ctx -> unit) array;
  mutable next_item : int;
  mutable finished : bool;
  rel : bool;
      (* fault plan active: arm end-to-end request timeouts and accept
         duplicate bulk replies (idempotent wakes) *)
  mutable down_until : int;
      (* end of the node's current crash window; 0 when never crashed.
         The scheduler idles up to it before touching ready work, so no
         computation is charged inside a down window. *)
  mutable upd_next_id : int;
  out_updates : (int, int * Update_buffer.entry list) Hashtbl.t;
      (* update batches sent but not yet application-acked, by batch id —
         the durable WAL pointer the update timer re-sends from *)
  upd_journal : (int * int, unit) Hashtbl.t array;
      (* per owner node, shared by every ctx of the phase: (src, batch id)
         pairs already applied to that owner's heap — the in-memory image
         of [jwal], rebuilt from it at restart. A re-sent batch is
         recognized across the owner's crashes and never double-applied. *)
  wal : Wal.t;
      (* this node's durable update-WAL: one Batch record per unacked
         batch in [out_updates], one Acked record per application-level
         ack. [out_updates] is only the in-memory image; a crash clears it
         and the restart walk rebuilds it from the checksum-scanned WAL. *)
  jwal : Wal.t array;
      (* per owner node, shared by every ctx of the phase: the durable
         image of [upd_journal] — one Applied record per fresh batch.
         Crash clears the owner's hashtable; restart rebuilds it here. *)
  mutable wal_scanned : bool;
      (* the restart walk ran its WAL integrity scan — asserted by the
         quiescence certificate for every node that crashed *)
  ctrl : ctrl option;
  obs : obs option;
}

and k = ctx -> Heap.view -> unit

let node_id ctx = ctx.node.Node.id
let heaps ctx = ctx.heaps
let charge ctx ns = Node.charge_local ctx.node ns

(* --- observability emission helpers ------------------------------------ *)

let obs_instant ?args o (n : Node.t) ~name =
  Dpa_obs.Sink.instant ?args o.sink ~cat:"runtime" ~name ~node:n.Node.id
    ~ts:n.Node.clock

let obs_outstanding o (n : Node.t) pending =
  Dpa_obs.Sink.counter o.sink ~name:"outstanding" ~node:n.Node.id
    ~ts:n.Node.clock pending

let obs_strip_end o (n : Node.t) =
  if o.strip_open then begin
    o.strip_open <- false;
    (* Strip spans chain in the event stream only (span_id/parent args,
       previous strip as parent) — the causal DAG stays
       activity-granular. *)
    let cargs =
      if o.strip_span < 0 then []
      else
        ("span_id", Dpa_obs.Sink.Int o.strip_span)
        :: (if o.prev_strip_span >= 0 then
              [ ("parent", Dpa_obs.Sink.Int o.prev_strip_span) ]
            else [])
    in
    Dpa_obs.Sink.span
      ~args:
        (("strip", Dpa_obs.Sink.Int o.strip_id)
        :: ("items", Dpa_obs.Sink.Int o.strip_items)
        :: ("phase", Dpa_obs.Sink.Str o.label)
        :: cargs)
      o.sink ~cat:"strip" ~name:"strip" ~node:n.Node.id ~ts:o.strip_start
      ~dur:(n.Node.clock - o.strip_start);
    if o.strip_span >= 0 then begin
      o.prev_strip_span <- o.strip_span;
      o.strip_span <- -1
    end
  end

let obs_strip_begin o ~start ~items =
  o.strip_open <- true;
  o.strip_id <- o.strip_id + 1;
  o.strip_start <- start;
  o.strip_items <- items;
  match o.cau with
  | None -> ()
  | Some c -> o.strip_span <- Dpa_obs.Causal.fresh c

let obs_align_clear o (n : Node.t) ~size =
  if size > 0 then
    obs_instant ~args:[ ("evicted", Dpa_obs.Sink.Int size) ] o n
      ~name:"align_clear"

let obs_wait o (n : Node.t) token =
  match Hashtbl.find_opt o.issued token with
  | None -> ()
  | Some t0 ->
    Hashtbl.remove o.issued token;
    Dpa_obs.Metrics.observe o.h_wait (n.Node.clock - t0)

(* --- causal-tracing helpers -------------------------------------------- *)

(* Record a completed activity in the happens-before DAG and emit its span
   (cat "act") with span_id/parent args, so the JSONL stream and the DAG
   tell one story. Edges are the caller's business — an activity may have
   several (its Seq predecessor plus any number of Wake parents). *)
let obs_act o c ~id ~parent ~name ~seg (n : Node.t) ~ts ~dur =
  Dpa_obs.Causal.node ~seg c ~id ~name ~node:n.Node.id ~ts ~dur;
  let args =
    ("span_id", Dpa_obs.Sink.Int id)
    :: (if parent >= 0 then [ ("parent", Dpa_obs.Sink.Int parent) ] else [])
  in
  Dpa_obs.Sink.span ~args o.sink ~cat:"act" ~name ~node:n.Node.id ~ts ~dur

(* Zero-duration marker node (wakes, timer re-issues, restart walks):
   records the DAG node and its incoming edge, and returns the id plus the
   span_id/parent args the caller splices into the instant it was already
   emitting. [(-1, [])] with tracing off. *)
let causal_marker o (n : Node.t) ~name ~seg ~kind ~parent =
  match o.cau with
  | None -> (-1, [])
  | Some c ->
    let id = Dpa_obs.Causal.fresh c in
    Dpa_obs.Causal.node ~seg c ~id ~name ~node:n.Node.id ~ts:n.Node.clock
      ~dur:0;
    Dpa_obs.Causal.edge c ~kind ~parent ~child:id;
    ( id,
      ("span_id", Dpa_obs.Sink.Int id)
      :: (if parent >= 0 then [ ("parent", Dpa_obs.Sink.Int parent) ] else [])
    )

(* Run [f] with the causal cursor on [id], so any flight it puts on the
   wire parents there. Transparent when tracing is off. *)
let with_causal o id f =
  match o.cau with
  | Some c when id >= 0 -> Dpa_obs.Causal.with_current c id f
  | _ -> f ()

(* Open a handler-side activity (owner service, update apply) as the child
   of the delivering flight — the causal cursor, set by the transport
   around handler execution — and leave the cursor on it so replies sent
   from the handler parent there; [close_handler_act] records it once the
   handler has charged its work. *)
let open_handler_act ctx (owner : Node.t) =
  match ctx.obs with
  | Some ({ cau = Some c; _ } as o) ->
    let fid = Dpa_obs.Causal.current c in
    let sid = Dpa_obs.Causal.fresh c in
    Dpa_obs.Causal.edge c ~kind:Dpa_obs.Causal.Deliver ~parent:fid ~child:sid;
    Dpa_obs.Causal.set_current c sid;
    Some (o, c, sid, fid, owner.Node.clock)
  | _ -> None

let close_handler_act ~name (owner : Node.t) = function
  | None -> ()
  | Some (o, c, sid, fid, t0) ->
    obs_act o c ~id:sid ~parent:fid ~name ~seg:Dpa_obs.Causal.Compute owner
      ~ts:t0
      ~dur:(owner.Node.clock - t0)

(* Every suspension counts toward the outstanding-thread peak: a thread is
   outstanding from the moment its spawn site runs until the scheduler
   dispatches it, whether its data was at hand locally, in D, or remote.
   (The peak used to be sampled only on the remote-miss path,
   under-reporting whenever inline-local or alignment-hit threads
   dominated a strip.) *)
let note_outstanding ctx =
  ctx.pending <- ctx.pending + 1;
  if ctx.pending > ctx.stats.Dpa_stats.max_outstanding then
    ctx.stats.Dpa_stats.max_outstanding <- ctx.pending

(* --- durable-log codecs ------------------------------------------------- *)

(* Byte codecs for the WAL record payloads ({!Wal}). Every record leads
   with a tag byte; integers are 64-bit little-endian; floats travel as
   their IEEE bits. Ids are monotone per sender/owner, so no two
   consecutive records of one log are ever byte-identical — the property
   Wal's doublewrite repair relies on. *)

let tag_batch = 'B'
let tag_acked = 'A'
let tag_applied = 'J'

let put_i64 b ~pos v = Bytes.set_int64_le b pos (Int64.of_int v)
let get_i64 b ~pos = Int64.to_int (Bytes.get_int64_le b pos)

let encode_batch ~id ~dst batch =
  let n = List.length batch in
  let b = Bytes.create (1 + (8 * 3) + (n * 8 * 4)) in
  Bytes.set b 0 tag_batch;
  put_i64 b ~pos:1 id;
  put_i64 b ~pos:9 dst;
  put_i64 b ~pos:17 n;
  List.iteri
    (fun i { Update_buffer.ptr; idx; value } ->
      let base = 25 + (i * 32) in
      put_i64 b ~pos:base (Gptr.node ptr);
      put_i64 b ~pos:(base + 8) (Gptr.slot ptr);
      put_i64 b ~pos:(base + 16) idx;
      Bytes.set_int64_le b (base + 24) (Int64.bits_of_float value))
    batch;
  b

let encode_acked ~id =
  let b = Bytes.create 9 in
  Bytes.set b 0 tag_acked;
  put_i64 b ~pos:1 id;
  b

let encode_applied ~src ~id =
  let b = Bytes.create 17 in
  Bytes.set b 0 tag_applied;
  put_i64 b ~pos:1 src;
  put_i64 b ~pos:9 id;
  b

(* Decoding only ever sees records [Wal.scan] has already checksum-
   verified, so a malformed record here is a codec bug, not damage. *)
let decode_upd b =
  match Bytes.get b 0 with
  | t when t = tag_acked -> `Acked (get_i64 b ~pos:1)
  | t when t = tag_batch ->
    let id = get_i64 b ~pos:1 in
    let dst = get_i64 b ~pos:9 in
    let n = get_i64 b ~pos:17 in
    let batch =
      List.init n (fun i ->
          let base = 25 + (i * 32) in
          {
            Update_buffer.ptr =
              Gptr.make ~node:(get_i64 b ~pos:base)
                ~slot:(get_i64 b ~pos:(base + 8));
            idx = get_i64 b ~pos:(base + 16);
            value = Int64.float_of_bits (Bytes.get_int64_le b (base + 24));
          })
    in
    `Batch (id, dst, batch)
  | t -> invalid_arg (Printf.sprintf "Runtime: bad update-WAL tag %C" t)

let decode_applied b =
  if Bytes.get b 0 <> tag_applied then
    invalid_arg "Runtime: bad journal tag";
  (get_i64 b ~pos:1, get_i64 b ~pos:9)

(* Batches appended but not yet acknowledged, straight from the durable
   log — must agree with [out_updates] and be empty at the phase barrier
   (the "WAL drained" side of the quiescence certificate). *)
let wal_live_batches wal =
  let live = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match decode_upd r with
      | `Batch (id, _, _) -> Hashtbl.replace live id ()
      | `Acked id -> Hashtbl.remove live id)
    (Wal.records wal);
  Hashtbl.length live

(* --- adaptive strip-size controller ------------------------------------ *)

(* Strip-boundary resize decision, evaluated before D is cleared so the
   occupancy [d_end] is the strip's closing footprint:

   - [d_end > d_target]: the strip materialized more copies than the
     configured ceiling — halve (clamped to [min_strip]).
   - [2 * d_end <= d_target]: doubling the strip cannot overshoot the
     ceiling even if the footprint scales with it, and a bigger strip
     means more reuse per fetched copy and fewer boundary evictions —
     double (clamped to [max_strip]).
   - otherwise hold. The hysteresis band [(d_target/2, d_target]] where
     neither rule fires makes the size converge on steady workloads
     instead of oscillating: a shrink roughly halves the footprint,
     which lands inside the band, not below it.

   The per-strip idle delta rides along in the resize event (and could
   gate a latency-hiding grow rule), but it is not a decision input: on
   this runtime almost all idle accrues at the phase tail, after the
   last strip, so mid-strip idle fractions are noise. *)
let ctrl_decide ctx c =
  if c.primed then begin
    let d_end = Align_buffer.size ctx.buffer in
    let elapsed = ctx.node.Node.clock - c.clock_at_start in
    let idle = ctx.node.Node.idle_ns - c.idle_at_start in
    let old_size = c.size in
    if d_end > c.auto.Config.d_target then
      c.size <- max c.auto.Config.min_strip (c.size / 2)
    else if 2 * d_end <= c.auto.Config.d_target then
      c.size <- min c.auto.Config.max_strip (c.size * 2);
    if c.size <> old_size then begin
      (if c.size > old_size then
         ctx.stats.Dpa_stats.strip_grows <-
           ctx.stats.Dpa_stats.strip_grows + 1
       else
         ctx.stats.Dpa_stats.strip_shrinks <-
           ctx.stats.Dpa_stats.strip_shrinks + 1);
      match ctx.obs with
      | None -> ()
      | Some o ->
        Dpa_obs.Sink.instant
          ~args:
            [
              ("from", Dpa_obs.Sink.Int old_size);
              ("to", Dpa_obs.Sink.Int c.size);
              ("d_end", Dpa_obs.Sink.Int d_end);
              ("idle_ns", Dpa_obs.Sink.Int idle);
              ("elapsed_ns", Dpa_obs.Sink.Int elapsed);
            ]
          o.sink ~cat:"ctrl" ~name:"strip_resize" ~node:ctx.node.Node.id
          ~ts:ctx.node.Node.clock
    end
  end

let ctrl_strip_begin ctx ~start =
  match ctx.ctrl with
  | None -> ()
  | Some c ->
    c.primed <- true;
    c.clock_at_start <- start;
    c.idle_at_start <- ctx.node.Node.idle_ns;
    (match ctx.obs with
    | None -> ()
    | Some o ->
      Dpa_obs.Sink.counter o.sink ~name:"strip_size" ~node:ctx.node.Node.id
        ~ts:start c.size)

(* --- routed aggregation helpers ---------------------------------------- *)

let routing_enabled ctx = ctx.cfg.Config.route <> Config.Off

(* Is [dst] a routed destination for this node? Routed destinations are
   held in the update buffer for the whole phase (combining across strips)
   and leave through the binomial reduction tree instead of the flat path. *)
let route_on ctx dst =
  dst <> node_id ctx
  &&
  match ctx.cfg.Config.route with
  | Config.Off -> false
  | Config.All_dsts -> true
  | Config.Hot dsts -> List.mem dst dsts

(* Split a merged relay bucket back into wire-sized fragments: a phase-long
   combining window can exceed [agg_max], and routed messages must respect
   the same per-message bound as flat ones. *)
let split_batch max_batch entries =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n = max_batch then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 entries

(* --- scheduler -------------------------------------------------------- *)

let rec ensure_scheduled ctx =
  if not ctx.scheduled then begin
    ctx.scheduled <- true;
    Engine.post_now ctx.engine ~node:ctx.node (fun () ->
        ctx.scheduled <- false;
        run_quantum ctx)
  end

(* Run ready threads for at most one poll quantum, then decide: keep going
   (via a fresh event, so messages with earlier timestamps interleave —
   this is the "poll" of an FM-style runtime), wait for replies after
   flushing buffered requests, or advance to the next strip. *)
and run_quantum ctx =
  (* A quantum scheduled before a crash can pop inside the down window;
     the node resumes at the restart instant, the gap accounted as idle. *)
  if ctx.node.Node.clock < ctx.down_until then
    Node.wait_until ctx.node ctx.down_until;
  let quantum = ctx.machine.Machine.poll_quantum_ns in
  let start = ctx.node.Node.clock in
  (* Open the quantum activity: chained in program order (Seq) from this
     node's previous activity, plus one Wake edge per reply delivered
     since — those edge gaps are what the critical path charges as
     alignment wait. Recorded even at zero duration: the next activity's
     Seq parent and any flight sent from here must resolve in the stream,
     or obs_check would count a dangling edge. *)
  let act =
    match ctx.obs with
    | Some ({ cau = Some c; _ } as o) ->
      let aid = Dpa_obs.Causal.fresh c in
      let primary =
        if o.last_act >= 0 then o.last_act
        else match o.wake_parents with w :: _ -> w | [] -> -1
      in
      Dpa_obs.Causal.edge c ~kind:Dpa_obs.Causal.Seq ~parent:o.last_act
        ~child:aid;
      List.iter
        (fun w ->
          Dpa_obs.Causal.edge c ~kind:Dpa_obs.Causal.Wake ~parent:w ~child:aid)
        o.wake_parents;
      o.wake_parents <- [];
      Dpa_obs.Causal.set_current c aid;
      Some (o, c, aid, primary)
    | _ -> None
  in
  let rec loop () =
    if Ready_ring.is_empty ctx.ready then after_drain ()
    else if ctx.node.Node.clock - start >= quantum then ensure_scheduled ctx
    else begin
      let ptr = Ready_ring.head_ptr ctx.ready in
      let k = Ready_ring.head_k ctx.ready in
      Ready_ring.drop ctx.ready;
      Node.charge_comm ctx.node ctx.machine.Machine.dispatch_overhead_ns;
      ctx.pending <- ctx.pending - 1;
      k ctx ptr;
      loop ()
    end
  and after_drain () =
    if ctx.pending > 0 then begin
      (* Out of ready threads: push buffered requests onto the wire and
         wait. Replies re-enter through [deliver]. *)
      if Dpa_msg.Aggregator.pending ctx.agg > 0 then
        Dpa_msg.Aggregator.flush_all ctx.agg
    end
    else begin
      (* Strip boundary: outstanding accumulations leave with the strip —
         except routed destinations, whose entries keep combining until
         the finish-time routing flush. *)
      if Update_buffer.pending ctx.updates > 0 then
        Update_buffer.flush_if ctx.updates (fun d -> not (route_on ctx d));
      next_strip ctx
    end
  in
  loop ();
  match act with
  | None -> ()
  | Some (o, c, aid, primary) ->
    Dpa_obs.Causal.set_current c (-1);
    obs_act o c ~id:aid ~parent:primary ~name:"quantum"
      ~seg:Dpa_obs.Causal.Compute ctx.node ~ts:start
      ~dur:(ctx.node.Node.clock - start);
    o.last_act <- aid

(* Strip boundary: discard the alignment buffer (renamed copies die with
   the strip) and inject the next strip of work items. *)
and next_strip ctx =
  (match ctx.obs with None -> () | Some o -> obs_strip_end o ctx.node);
  if ctx.next_item >= Array.length ctx.items then begin
    ctx.finished <- true;
    finish_routing ctx
  end
  else begin
    ctx.stats.Dpa_stats.strips <- ctx.stats.Dpa_stats.strips + 1;
    (* The controller reads D's occupancy before the boundary clears it. *)
    (match ctx.ctrl with None -> () | Some c -> ctrl_decide ctx c);
    (match ctx.obs with
    | None -> ()
    | Some o -> obs_align_clear o ctx.node ~size:(Align_buffer.size ctx.buffer));
    Align_buffer.clear ctx.buffer;
    let start_item = ctx.next_item in
    let start_clock = ctx.node.Node.clock in
    let strip_size =
      match ctx.ctrl with
      | Some c -> c.size
      | None -> ctx.cfg.Config.strip_size
    in
    let limit = min (Array.length ctx.items) (ctx.next_item + strip_size) in
    ctrl_strip_begin ctx ~start:start_clock;
    while ctx.next_item < limit do
      let item = ctx.items.(ctx.next_item) in
      ctx.next_item <- ctx.next_item + 1;
      item ctx
    done;
    (match ctx.obs with
    | None -> ()
    | Some o -> obs_strip_begin o ~start:start_clock ~items:(limit - start_item));
    ensure_scheduled ctx
  end

(* Reply arrival: wake every thread recorded in M for each delivered
   pointer. Threads waiting on the same object are enqueued consecutively,
   so they execute together — the tiling effect.

   Under a fault plan wakes must be idempotent: an end-to-end retry can
   produce a second bulk reply for a token the first copy already
   resolved, and that copy must wake nothing (and must not repopulate the
   alignment buffer — its strip may be long gone). Fault-free, an unknown
   token is still the hard protocol error it always was. *)
and deliver ctx reqs =
  List.iter
    (fun req ->
      let resolved =
        if ctx.rel then Pointer_map.take_opt ctx.map req.token
        else Some (Pointer_map.take ctx.map req.token)
      in
      match resolved with
      | None -> (
        match ctx.obs with
        | None -> ()
        | Some o -> obs_instant o ctx.node ~name:"dup_wake")
      | Some (ptr, ks) ->
        (match ctx.obs with
        | None -> ()
        | Some o ->
          obs_wait o ctx.node req.token;
          Gptr.Tbl.replace o.touched ptr (Heap.view_bytes ctx.heaps ptr));
        if ctx.cfg.Config.reuse then Align_buffer.add ctx.buffer ptr;
        List.iter (fun k -> Ready_ring.push ctx.ready ptr k) ks)
    reqs;
  let peak = Align_buffer.peak ctx.buffer in
  if peak > ctx.stats.Dpa_stats.align_peak then
    ctx.stats.Dpa_stats.align_peak <- peak;
  (match ctx.obs with
  | None -> ()
  | Some o ->
    Dpa_obs.Metrics.observe o.h_dbuf (Align_buffer.size ctx.buffer);
    (* Wake marker: child of the flight that carried the replies (the
       cursor — deliver runs inside the transport's handler wrapper),
       parent of the next quantum on this node. *)
    let wid, cargs =
      causal_marker o ctx.node ~name:"wake" ~seg:Dpa_obs.Causal.Other
        ~kind:Dpa_obs.Causal.Deliver
        ~parent:
          (match o.cau with Some c -> Dpa_obs.Causal.current c | None -> -1)
    in
    if wid >= 0 then o.wake_parents <- wid :: o.wake_parents;
    obs_instant
      ~args:(("replies", Dpa_obs.Sink.Int (List.length reqs)) :: cargs)
      o ctx.node ~name:"wake";
    obs_outstanding o ctx.node ctx.pending);
  ensure_scheduled ctx

(* End-to-end request timeout wheel, the second defence layer above the
   transport's per-message retransmission: if a token is still outstanding
   in M when its deadline passes, re-issue it as a single-entry request and
   back off. The transport alone already guarantees delivery, so firings
   are rare (a deeply backlogged owner); a spurious firing only produces a
   duplicate reply that [deliver] discards. *)
and rt_rto ctx ~bytes =
  let m = ctx.machine in
  let const =
    8
    * ((2 * (m.Machine.send_overhead_ns + m.Machine.recv_overhead_ns))
      + Machine.transfer_ns m ~bytes
      + Machine.transfer_ns m ~bytes:m.Machine.msg_header_bytes
      + (4 * m.Machine.poll_quantum_ns))
  in
  (* Under [adaptive_rto] the constant worst-case formula is only the
     floor: once the transport's estimator has seen full delivery round
     trips — retransmission recovery included — twice that estimate is a
     far better picture of how long "still outstanding" can innocently
     last (e.g. across an injected NIC outage), and using it stops the
     wheel from re-issuing requests the transport was already
     recovering. *)
  if m.Machine.adaptive_rto then Dpa_msg.Am.e2e_rto ctx.engine ~fallback:const
  else const

and arm_request_timer ctx ~dst (req : request) ~rto =
  let deadline = ctx.node.Node.clock + rto in
  (* The timer belongs to the incarnation that armed it: after a crash the
     restart walk re-issues every surviving token with fresh timers, so a
     pre-crash timer firing on the new incarnation would only double the
     wheel. It dies silently instead. *)
  let incarnation = ctx.node.Node.incarnation in
  Engine.post_soft ctx.engine ~time:deadline ~node:(node_id ctx) (fun () ->
      if ctx.node.Node.incarnation <> incarnation then ()
      else
      match Pointer_map.find_ptr ctx.map req.token with
      | None -> ()  (* answered in time: pure no-op, clock untouched *)
      | Some _ ->
        Node.wait_until ctx.node deadline;
        ctx.stats.Dpa_stats.rt_retries <- ctx.stats.Dpa_stats.rt_retries + 1;
        let rid =
          match ctx.obs with
          | None -> -1
          | Some o ->
            Dpa_obs.Metrics.add o.c_retry 1;
            (* Timer firings run outside any quantum: the marker keeps the
               re-issued flight's chain grounded in this node's activity
               history instead of dangling. *)
            let rid, cargs =
              causal_marker o ctx.node ~name:"rt_retry"
                ~seg:Dpa_obs.Causal.Retransmit ~kind:Dpa_obs.Causal.Retry
                ~parent:o.last_act
            in
            obs_instant
              ~args:
                (("token", Dpa_obs.Sink.Int req.token)
                :: ("dst", Dpa_obs.Sink.Int dst)
                :: cargs)
              o ctx.node ~name:"retry";
            rid
        in
        (match ctx.obs with
        | Some o -> with_causal o rid (fun () -> send_request_batch ctx ~dst [ req ])
        | None -> send_request_batch ctx ~dst [ req ]);
        let cap = 1024 * rt_rto ctx ~bytes:(Dpa_msg.Am.request_bytes ctx.machine ~nreqs:1) in
        arm_request_timer ctx ~dst req ~rto:(min (2 * rto) cap))

and flush_requests ctx ~dst batch =
  let nreqs = List.length batch in
  let stats = ctx.stats in
  stats.Dpa_stats.request_msgs <- stats.Dpa_stats.request_msgs + 1;
  stats.Dpa_stats.requests <- stats.Dpa_stats.requests + nreqs;
  if nreqs > stats.Dpa_stats.max_batch then stats.Dpa_stats.max_batch <- nreqs;
  (match ctx.obs with
  | None -> ()
  | Some o ->
    let bytes = Dpa_msg.Am.request_bytes ctx.machine ~nreqs in
    Dpa_obs.Metrics.add o.c_vol.(dst) bytes;
    obs_instant
      ~args:
        [
          ("dst", Dpa_obs.Sink.Int dst);
          ("nreqs", Dpa_obs.Sink.Int nreqs);
          ("bytes", Dpa_obs.Sink.Int bytes);
        ]
      o ctx.node ~name:"req_send");
  send_request_batch ctx ~dst batch;
  if ctx.rel then
    let rto =
      rt_rto ctx ~bytes:(Dpa_msg.Am.request_bytes ctx.machine ~nreqs)
    in
    List.iter (fun req -> arm_request_timer ctx ~dst req ~rto) batch

and send_request_batch ctx ~dst batch =
  let nreqs = List.length batch in
  let bytes = Dpa_msg.Am.request_bytes ctx.machine ~nreqs in
  (* Optimality numerator: every wire-out counts, wheel re-issues
     included — that surplus is exactly what the ratio exposes. *)
  (match ctx.obs with
  | None -> ()
  | Some o -> o.opt_actual <- o.opt_actual + bytes);
  Dpa_msg.Am.send ctx.engine ~src:ctx.node ~dst ~bytes (fun owner ->
      (* Owner-side service handler: look the objects up and ship them back
         in one bulk reply. This steals owner CPU, as an FM handler does. *)
      let m = ctx.machine in
      let svc = open_handler_act ctx owner in
      Node.charge_comm owner
        (m.Machine.request_service_ns
        + (nreqs * m.Machine.request_service_per_obj_ns));
      (* Payload is accounting only: the wire carries the objects' byte
         footprint, and the delivered views alias the owner's store — no
         copy-out here. *)
      let owner_heap = ctx.heaps.(dst) in
      let payload = ref 0 in
      List.iter
        (fun req -> payload := !payload + Heap.obj_bytes owner_heap req.ptr)
        batch;
      let reply = Dpa_msg.Am.reply_bytes m ~payload:!payload ~nreqs in
      (match ctx.obs with
      | None -> ()
      | Some o ->
        o.opt_actual <- o.opt_actual + reply;
        Dpa_obs.Metrics.add o.c_reply reply;
        Dpa_obs.Sink.instant
          ~args:
            [
              ("to", Dpa_obs.Sink.Int ctx.node.Node.id);
              ("nreqs", Dpa_obs.Sink.Int nreqs);
              ("bytes", Dpa_obs.Sink.Int reply);
            ]
          o.sink ~cat:"msg" ~name:"bulk_reply" ~node:owner.Node.id
          ~ts:owner.Node.clock);
      Dpa_msg.Am.send ctx.engine ~src:owner ~dst:ctx.node.Node.id ~bytes:reply
        (fun _self -> deliver ctx batch);
      close_handler_act ~name:"service" owner svc)

and flush_updates ctx ~dst batch =
  let n = List.length batch in
  ctx.stats.Dpa_stats.update_msgs <- ctx.stats.Dpa_stats.update_msgs + 1;
  let bytes = Dpa_msg.Am.update_bytes ctx.machine ~nupdates:n in
  (match ctx.obs with
  | None -> ()
  | Some o ->
    Dpa_obs.Metrics.add o.c_vol.(dst) bytes;
    obs_instant
      ~args:
        [
          ("dst", Dpa_obs.Sink.Int dst);
          ("nupdates", Dpa_obs.Sink.Int n);
          ("bytes", Dpa_obs.Sink.Int bytes);
        ]
      o ctx.node ~name:"upd_send");
  if ctx.rel then begin
    (* End-to-end exactly-once for accumulations. The transport's dedup is
       per incarnation, so a crash on either end could double- or
       zero-apply a batch: an owner crash forgets that a retransmitted
       batch already ran, a sender crash destroys an undelivered envelope.
       Each batch therefore gets a stable id, the owner journals applied
       ids durably (one atomic action with the heap mutation, by
       contract), re-sends are journal-deduplicated and re-acked, and the
       sender's timer re-sends until the application-level ack clears the
       batch from [out_updates]. *)
    let id = ctx.upd_next_id in
    ctx.upd_next_id <- id + 1;
    (* Write-ahead: the Batch record is durable before the first copy hits
       the wire, so a crash between here and the ack can always rebuild
       the batch from the scanned WAL. *)
    Wal.append ctx.wal (encode_batch ~id ~dst batch);
    Hashtbl.replace ctx.out_updates id (dst, batch);
    send_update_batch ctx ~dst ~id batch;
    arm_update_timer ctx ~id ~rto:(rt_rto ctx ~bytes)
  end
  else begin
    (match ctx.obs with
    | None -> ()
    | Some o -> o.opt_actual <- o.opt_actual + bytes);
    Dpa_msg.Am.send ctx.engine ~src:ctx.node ~dst ~bytes (fun owner ->
        let m = ctx.machine in
        let svc = open_handler_act ctx owner in
        Node.charge_comm owner (n * m.Machine.update_apply_ns);
        let owner_heap = ctx.heaps.(dst) in
        List.iter
          (fun { Update_buffer.ptr; idx; value } ->
            Heap.bump_float owner_heap ptr ~idx value)
          batch;
        close_handler_act ~name:"upd_apply" owner svc)
  end

(* Finish-time routing flush. Once this node has run its last item, its
   held (routed) accumulations drain into the relay buffer — merging with
   anything parked there by downstream tree children — and everything
   leaves as one combined message per final destination. Until every
   sender along a tree path has finished, entries simply park; the DES has
   no deadlock risk because parking consumes no events and every node's
   finish is driven by its own item stream. *)
and finish_routing ctx =
  if routing_enabled ctx && not ctx.routing_done then begin
    Update_buffer.flush_all ctx.updates;
    ctx.routing_done <- true;
    Update_buffer.flush_all ctx.relay
  end

(* A routed batch arriving at an intermediate node: park and combine in the
   relay buffer keyed by final destination. After the node's own routing
   flush has run, there is nothing left to merge with — flush straight
   through so quiescence holds. Under a fault plan the batch's custody
   manifest [cover] parks alongside it (and leaves with it), so the merged
   entries never lose track of which origin-anchored batches they carry. *)
and relay_receive ctx ~fdst ~cover entries =
  (if cover <> [] then
     let prev =
       match Hashtbl.find_opt ctx.relay_cover fdst with
       | Some l -> l
       | None -> []
     in
     Hashtbl.replace ctx.relay_cover fdst (prev @ cover));
  Update_buffer.add_entries ctx.relay ~dst:fdst entries;
  if ctx.routing_done then Update_buffer.flush_if ctx.relay (fun d -> d = fdst)

(* Forward one relay bucket toward its final destination: either hand it to
   the flat update path (last hop — the WAL exactly-once protocol under a
   fault plan) or send it one binomial-tree hop closer
   ({!Dpa_msg.Route.next_hop}), where it parks in the hop's relay buffer.
   Intermediate hops ride the transport's link-level reliability
   (retransmit + dedup cover drop, dup and delay faults); crash faults are
   covered end-to-end by the origins' custody — every batch merged into
   this bucket stays in its origin's [out_updates] until the final owner's
   application-level ack, so a hop crash only costs a straight-line
   re-issue.

   Fault-free, the bucket fragments to the aggregation bound like any flat
   message. Under a fault plan it does not: the (cover, merged entries)
   pair is one atomic custody unit — a fragment boundary through it would
   let the owner journal a covered batch whose entries were split across
   fragments, and a lost second fragment would then be unrecoverable. *)
and relay_forward ctx ~fdst batch =
  let nnodes = Array.length ctx.heaps in
  let hop = Dpa_msg.Route.next_hop ~nnodes ~src:(node_id ctx) ~dst:fdst in
  if ctx.rel then begin
    let cover =
      match Hashtbl.find_opt ctx.relay_cover fdst with
      | Some l -> l
      | None -> []
    in
    Hashtbl.remove ctx.relay_cover fdst;
    assert (cover <> []);
    let n = List.length batch in
    ctx.stats.Dpa_stats.update_msgs <- ctx.stats.Dpa_stats.update_msgs + 1;
    (* The custody manifest rides the message: two ids per covered batch. *)
    let bytes =
      Dpa_msg.Am.update_bytes ctx.machine ~nupdates:n
      + (16 * List.length cover)
    in
    (match ctx.obs with
    | None -> ()
    | Some o ->
      Dpa_obs.Metrics.add o.c_vol.(hop) bytes;
      o.opt_actual <- o.opt_actual + bytes;
      obs_instant
        ~args:
          [
            ("hop", Dpa_obs.Sink.Int hop);
            ("fdst", Dpa_obs.Sink.Int fdst);
            ("nupdates", Dpa_obs.Sink.Int n);
            ("cover", Dpa_obs.Sink.Int (List.length cover));
            ("bytes", Dpa_obs.Sink.Int bytes);
          ]
        o ctx.node ~name:"relay_send");
    if hop = fdst then
      Dpa_msg.Am.send ctx.engine ~src:ctx.node ~dst:fdst ~bytes (fun owner ->
          routed_owner_apply ctx ~fdst ~cover batch owner)
    else
      Dpa_msg.Am.send ctx.engine ~src:ctx.node ~dst:hop ~bytes (fun hopnode ->
          let peer = ctx.peers.(hop) in
          let svc = open_handler_act ctx hopnode in
          Node.charge_comm hopnode (n * ctx.machine.Machine.update_apply_ns);
          relay_receive peer ~fdst ~cover batch;
          close_handler_act ~name:"relay" hopnode svc)
  end
  else
    List.iter
      (fun frag ->
        if hop = fdst then flush_updates ctx ~dst:fdst frag
        else begin
          let n = List.length frag in
          ctx.stats.Dpa_stats.update_msgs <-
            ctx.stats.Dpa_stats.update_msgs + 1;
          let bytes = Dpa_msg.Am.update_bytes ctx.machine ~nupdates:n in
          (match ctx.obs with
          | None -> ()
          | Some o ->
            Dpa_obs.Metrics.add o.c_vol.(hop) bytes;
            (* Actual bytes are charged at every hop's sender; the lower
               bound is recorded at the origin only ([accumulate]), so tree
               routing can only close the gap when combining saves more
               than the extra hops cost. *)
            o.opt_actual <- o.opt_actual + bytes;
            obs_instant
              ~args:
                [
                  ("hop", Dpa_obs.Sink.Int hop);
                  ("fdst", Dpa_obs.Sink.Int fdst);
                  ("nupdates", Dpa_obs.Sink.Int n);
                  ("bytes", Dpa_obs.Sink.Int bytes);
                ]
              o ctx.node ~name:"relay_send");
          Dpa_msg.Am.send ctx.engine ~src:ctx.node ~dst:hop ~bytes
            (fun hopnode ->
              let peer = ctx.peers.(hop) in
              let svc = open_handler_act ctx hopnode in
              Node.charge_comm hopnode
                (n * ctx.machine.Machine.update_apply_ns);
              relay_receive peer ~fdst ~cover:[] frag;
              close_handler_act ~name:"relay" hopnode svc)
        end)
      (split_batch ctx.cfg.Config.agg_max batch)

(* Origin custody for a routed batch under a fault plan. The batch gets the
   same durable treatment as a flat one — stable id, write-ahead Batch
   record, an [out_updates] entry the quiescence certificate watches, and
   a fenced end-to-end timer — but its first copy enters the combining
   tree instead of the wire to the owner. If the tree delivers, the final
   owner journals the covered id and acks end-to-end; if any hop crashes
   while holding it (or the ack never comes), the timer re-issues the
   batch straight-line through [send_update_batch], where the owner's
   applied-batch journal dedups it against any copy that survived the
   tree. The timer budget is scaled by the tree depth: a parked batch
   legitimately waits for every hop on its path to finish its own items. *)
and routed_origin_send ctx ~fdst batch =
  let id = ctx.upd_next_id in
  ctx.upd_next_id <- id + 1;
  Wal.append ctx.wal (encode_batch ~id ~dst:fdst batch);
  Hashtbl.replace ctx.out_updates id (fdst, batch);
  let nnodes = Array.length ctx.heaps in
  let bytes =
    Dpa_msg.Am.update_bytes ctx.machine ~nupdates:(List.length batch)
  in
  let depth =
    Dpa_msg.Route.hops ~nnodes ~src:(node_id ctx) ~dst:fdst
  in
  arm_update_timer ctx ~id ~rto:((depth + 1) * rt_rto ctx ~bytes);
  relay_receive ctx ~fdst ~cover:[ (node_id ctx, id) ] batch

(* Final-owner apply of a tree-merged message. The cover names every
   origin-anchored batch whose entries are numerically merged into
   [batch], so freshness is all-or-nothing: if every covered batch is
   fresh, journal them all and apply the merged entries as one atomic
   action, then ack each origin; if ANY covered batch was already applied
   (a straight-line replay beat the tree), the merged entries cannot be
   applied — nor split — so nothing applies, the already-journaled pairs
   are re-acked (their previous acks may have been lost), and each fresh
   pair is left to its origin's timer, whose straight-line re-issue is
   single-origin and therefore can never be partially duplicate. The
   fixed-point grids make the recovered sum bit-identical either way. *)
and routed_owner_apply ctx ~fdst ~cover batch owner =
  let m = ctx.machine in
  let svc = open_handler_act ctx owner in
  let n = List.length batch in
  Node.charge_comm owner (n * m.Machine.update_apply_ns);
  let journal = ctx.upd_journal.(fdst) in
  let dups, fresh =
    List.partition (fun key -> Hashtbl.mem journal key) cover
  in
  let acked =
    if dups = [] then begin
      List.iter
        (fun (src, id) ->
          Wal.append ctx.jwal.(fdst) (encode_applied ~src ~id);
          Hashtbl.replace journal (src, id) ())
        fresh;
      let owner_heap = ctx.heaps.(fdst) in
      List.iter
        (fun { Update_buffer.ptr; idx; value } ->
          Heap.bump_float owner_heap ptr ~idx value)
        batch;
      fresh
    end
    else dups
  in
  let ack = m.Machine.msg_header_bytes in
  List.iter
    (fun (src, id) ->
      (match ctx.obs with
      | None -> ()
      | Some o -> o.opt_actual <- o.opt_actual + ack);
      Dpa_msg.Am.send ctx.engine ~src:owner ~dst:src ~bytes:ack (fun _self ->
          let octx = ctx.peers.(src) in
          if Hashtbl.mem octx.out_updates id then begin
            Wal.append octx.wal (encode_acked ~id);
            Hashtbl.remove octx.out_updates id
          end))
    acked;
  close_handler_act ~name:"upd_apply" owner svc

and send_update_batch ctx ~dst ~id batch =
  let n = List.length batch in
  let bytes = Dpa_msg.Am.update_bytes ctx.machine ~nupdates:n in
  let src_id = node_id ctx in
  (match ctx.obs with
  | None -> ()
  | Some o -> o.opt_actual <- o.opt_actual + bytes);
  Dpa_msg.Am.send ctx.engine ~src:ctx.node ~dst ~bytes (fun owner ->
      let m = ctx.machine in
      let svc = open_handler_act ctx owner in
      (* The apply cost is charged whether or not the batch is fresh: a
         journal hit still parses the message and probes the journal. *)
      Node.charge_comm owner (n * m.Machine.update_apply_ns);
      let journal = ctx.upd_journal.(dst) in
      let key = (src_id, id) in
      if not (Hashtbl.mem journal key) then begin
        (* Journal entry and heap mutation are one atomic action; the
           durable Applied record is what survives the owner's crash. *)
        Wal.append ctx.jwal.(dst) (encode_applied ~src:src_id ~id);
        Hashtbl.replace journal key ();
        let owner_heap = ctx.heaps.(dst) in
        List.iter
          (fun { Update_buffer.ptr; idx; value } ->
            Heap.bump_float owner_heap ptr ~idx value)
          batch
      end;
      (* Application-level ack, re-sent for journaled duplicates too: a
         lost ack is repaired by the next timer-driven re-send. *)
      let ack = m.Machine.msg_header_bytes in
      (match ctx.obs with
      | None -> ()
      | Some o -> o.opt_actual <- o.opt_actual + ack);
      Dpa_msg.Am.send ctx.engine ~src:owner ~dst:src_id ~bytes:ack
        (fun _self ->
          (* Acked is only journaled for a live batch: a duplicate ack
             (journal-hit re-send, or one racing a crash rebuild) must not
             write consecutive identical records. *)
          if Hashtbl.mem ctx.out_updates id then begin
            Wal.append ctx.wal (encode_acked ~id);
            Hashtbl.remove ctx.out_updates id
          end);
      close_handler_act ~name:"upd_apply" owner svc)

and arm_update_timer ctx ~id ~rto =
  let deadline = ctx.node.Node.clock + rto in
  (* Fenced to the arming incarnation, like request timers: after a sender
     crash the restart walk rebuilds [out_updates] from the checksum-
     scanned WAL and re-sends every surviving batch with fresh timers, so
     a pre-crash timer firing on the new incarnation would only double the
     wheel. (Before the WAL existed, [out_updates] itself was declared
     durable and the unfenced timer was the re-drive mechanism.) *)
  let incarnation = ctx.node.Node.incarnation in
  Engine.post_soft ctx.engine ~time:deadline ~node:(node_id ctx) (fun () ->
      if ctx.node.Node.incarnation <> incarnation then ()
      else
      match Hashtbl.find_opt ctx.out_updates id with
      | None -> ()  (* acked in time: pure no-op, clock untouched *)
      | Some (dst, batch) ->
        Node.wait_until ctx.node deadline;
        ctx.stats.Dpa_stats.upd_reissues <-
          ctx.stats.Dpa_stats.upd_reissues + 1;
        let rid =
          match ctx.obs with
          | None -> -1
          | Some o ->
            let rid, cargs =
              causal_marker o ctx.node ~name:"upd_retry"
                ~seg:Dpa_obs.Causal.Retransmit ~kind:Dpa_obs.Causal.Retry
                ~parent:o.last_act
            in
            obs_instant
              ~args:
                (("id", Dpa_obs.Sink.Int id)
                :: ("dst", Dpa_obs.Sink.Int dst)
                :: cargs)
              o ctx.node ~name:"upd_retry";
            rid
        in
        (match ctx.obs with
        | Some o ->
          with_causal o rid (fun () -> send_update_batch ctx ~dst ~id batch)
        | None -> send_update_batch ctx ~dst ~id batch);
        let cap =
          1024
          * rt_rto ctx
              ~bytes:
                (Dpa_msg.Am.update_bytes ctx.machine
                   ~nupdates:(List.length batch))
        in
        arm_update_timer ctx ~id ~rto:(min (2 * rto) cap))

(* --- the access operations --------------------------------------------- *)

let read ctx ptr k =
  if Gptr.is_nil ptr then invalid_arg "Runtime.read: nil pointer";
  (* Thread creation is charged on every labeled spawn site — the data may
     turn out to be local, but the compiler emitted a thread either way
     (this is the single-node overhead visible in the paper's P=1 column).
     Threads whose data is at hand still go through the ready queue rather
     than running inline: dispatching through the scheduler is what keeps
     the poll quantum honest (a node deep in local work must still extract
     incoming requests), exactly as a polling FM runtime behaves. *)
  Node.charge_comm ctx.node ctx.machine.Machine.spawn_overhead_ns;
  if Gptr.node ptr = ctx.node.Node.id then begin
    (* Validate the slot now, not at dispatch: a dangling local read must
       surface at the read site (the boxed heap dereferenced here). *)
    if Gptr.slot ptr >= Heap.size ctx.heaps.(ctx.node.Node.id) then
      invalid_arg "Runtime.read: dangling slot";
    ctx.stats.Dpa_stats.inline_local <- ctx.stats.Dpa_stats.inline_local + 1;
    note_outstanding ctx;
    Ready_ring.push ctx.ready ptr k;
    ensure_scheduled ctx
  end
  else if ctx.cfg.Config.reuse && Align_buffer.mem ctx.buffer ptr then begin
    ctx.stats.Dpa_stats.align_hits <- ctx.stats.Dpa_stats.align_hits + 1;
    (match ctx.obs with
    | None -> ()
    | Some o ->
      Gptr.Tbl.replace o.touched ptr (Heap.view_bytes ctx.heaps ptr);
      obs_instant o ctx.node ~name:"align_hit");
    note_outstanding ctx;
    Ready_ring.push ctx.ready ptr k;
    ensure_scheduled ctx
  end
  else begin
    note_outstanding ctx;
    match Pointer_map.register ctx.map ~reuse:ctx.cfg.Config.reuse ptr k with
    | `Merged ->
      ctx.stats.Dpa_stats.merge_hits <- ctx.stats.Dpa_stats.merge_hits + 1;
      (match ctx.obs with
      | None -> ()
      | Some o -> obs_instant o ctx.node ~name:"merge_hit")
    | `New_request token ->
      ctx.stats.Dpa_stats.spawns <- ctx.stats.Dpa_stats.spawns + 1;
      (match ctx.obs with
      | None -> ()
      | Some o ->
        Hashtbl.replace o.issued token ctx.node.Node.clock;
        Dpa_obs.Metrics.observe o.h_out ctx.pending;
        obs_instant
          ~args:[ ("dst", Dpa_obs.Sink.Int (Gptr.node ptr)) ]
          o ctx.node ~name:"spawn";
        obs_outstanding o ctx.node ctx.pending);
      Dpa_msg.Aggregator.add ctx.agg ~dst:(Gptr.node ptr) { token; ptr }
  end

let accumulate ctx ptr ~idx value =
  if Gptr.is_nil ptr then invalid_arg "Runtime.accumulate: nil pointer";
  ctx.stats.Dpa_stats.updates <- ctx.stats.Dpa_stats.updates + 1;
  if Gptr.node ptr = ctx.node.Node.id then begin
    Node.charge_local ctx.node ctx.machine.Machine.update_apply_ns;
    Heap.bump_float ctx.heap ptr ~idx value
  end
  else begin
    Node.charge_comm ctx.node ctx.machine.Machine.spawn_overhead_ns;
    (match ctx.obs with
    | None -> ()
    | Some o -> Hashtbl.replace o.upd_touched (ptr, idx) ());
    let before = Update_buffer.combined ctx.updates in
    Update_buffer.add ctx.updates ~dst:(Gptr.node ptr) ptr ~idx value;
    if Update_buffer.combined ctx.updates > before then
      ctx.stats.Dpa_stats.updates_combined <-
        ctx.stats.Dpa_stats.updates_combined + 1
  end

(* --- phase driver ------------------------------------------------------ *)

let make_obs ~engine ~heaps ~label =
  match Engine.sink engine with
  | None -> None
  | Some sink ->
    let reg = Dpa_obs.Sink.metrics sink in
    let h name = Dpa_obs.Metrics.histogram reg (name ^ "." ^ label) in
    Some
      {
        sink;
        label;
        h_batch = h "agg_batch";
        h_wait = h "wait_ns";
        h_out = h "outstanding";
        h_dbuf = h "dbuf";
        c_vol =
          Array.init (Array.length heaps) (fun d ->
              Dpa_obs.Metrics.counter reg
                (Printf.sprintf "msg_bytes_dst%d.%s" d label));
        c_reply = Dpa_obs.Metrics.counter reg ("reply_bytes." ^ label);
        c_retry = Dpa_obs.Metrics.counter reg ("retries." ^ label);
        issued = Hashtbl.create 64;
        strip_open = false;
        strip_start = 0;
        strip_id = 0;
        strip_items = 0;
        touched = Gptr.Tbl.create 256;
        upd_touched = Hashtbl.create 256;
        opt_actual = 0;
        cau = Dpa_obs.Sink.causal sink;
        last_act = -1;
        wake_parents = [];
        strip_span = -1;
        prev_strip_span = -1;
      }

let make_ctx ~engine ~heaps ~config ~items ~label ~journals ~jwals node =
  let dummy =
    Dpa_msg.Aggregator.create ~ndest:1 ~max_batch:1 ~flush:(fun ~dst:_ _ ->
        assert false)
  in
  let dummy_updates () =
    Update_buffer.create ~ndest:1 ~combine:false ~max_batch:1
      ~flush:(fun ~dst:_ _ -> assert false)
      ()
  in
  let ctx =
    {
      engine;
      machine = Engine.machine engine;
      heaps;
      heap = heaps.(node.Node.id);
      node;
      cfg = config;
      stats = Dpa_stats.create ();
      ready = Ready_ring.create ~dummy:(fun _ _ -> ());
      map = Pointer_map.create ();
      buffer = Align_buffer.create ();
      agg = dummy;
      updates = dummy_updates ();
      relay = dummy_updates ();
      relay_cover = Hashtbl.create 8;
      routing_done = false;
      peers = [||];
      pending = 0;
      scheduled = false;
      items;
      next_item = 0;
      finished = false;
      rel = Engine.fault engine <> None;
      down_until = 0;
      upd_next_id = 0;
      out_updates = Hashtbl.create 16;
      upd_journal = journals;
      wal = Wal.create ();
      jwal = jwals;
      wal_scanned = false;
      ctrl =
        (match config.Config.auto with
        | None -> None
        | Some a ->
          Some
            {
              auto = a;
              size = config.Config.strip_size;
              primed = false;
              clock_at_start = 0;
              idle_at_start = 0;
            });
      obs = make_obs ~engine ~heaps ~label;
    }
  in
  ctx.agg <-
    Dpa_msg.Aggregator.create
      ~ndest:(Array.length heaps)
      ~max_batch:config.Config.agg_max
      ~flush:(fun ~dst batch -> flush_requests ctx ~dst batch);
  (match ctx.obs with
  | None -> ()
  | Some o ->
    Dpa_msg.Aggregator.set_observer ctx.agg
      (Some (fun ~dst:_ n -> Dpa_obs.Metrics.observe o.h_batch n)));
  ctx.updates <-
    Update_buffer.create
      ~hold:(fun dst -> route_on ctx dst)
      ~ndest:(Array.length heaps)
      ~combine:config.Config.reuse ~max_batch:config.Config.agg_max
      ~flush:(fun ~dst batch ->
        (* Routed destinations drain into the relay buffer (merging with
           parked downstream contributions) instead of going to the wire;
           [finish_routing] then forwards the combined result. Under a
           fault plan the batch first takes origin custody — WAL record,
           [out_updates] entry, end-to-end timer — so a crash anywhere on
           its tree path is recoverable. *)
        if route_on ctx dst then
          if ctx.rel then routed_origin_send ctx ~fdst:dst batch
          else Update_buffer.add_entries ctx.relay ~dst batch
        else flush_updates ctx ~dst batch)
      ();
  ctx.relay <-
    Update_buffer.create
      ~hold:(fun _ -> true) (* drained only by the explicit routing flush *)
      ~ndest:(Array.length heaps)
      ~combine:true ~max_batch:config.Config.agg_max
      ~flush:(fun ~dst batch -> relay_forward ctx ~fdst:dst batch)
      ();
  ctx

(* --- crash-restart ------------------------------------------------------ *)

(* Execute a crash on [ctx]'s node. Volatile state dies here:

   - the node's incarnation is bumped, fencing every message copy stamped
     for the old one (Am checks at delivery);
   - the transport forgets the node's unacked envelopes, dedup entries and
     link RTT filters ([Am.on_crash]);
   - the alignment buffer D and the aggregator's unsent batches are
     discarded;
   - ready-queue threads lose the object views they were holding: local
     entries re-read the durable heap, remote entries re-register in M.

   Durable by contract (see DESIGN.md §13): the heap, the result arrays,
   the pointer map M (spawn records, no partial execution), the update
   buffer, and the checksummed WALs — the sender-side update-WAL behind
   [out_updates] and the owner-side applied-batch journal behind
   [upd_journal]. The in-memory hashtable images of both die with the
   crash and are rebuilt from the checksum-scanned logs; under [torn_wal]
   the crash may additionally tear the tail record of either log, which
   the recovery scan detects and repairs ({!Wal}). *)
let crash_node ctx ~plan ~restart_at =
  let n = ctx.node in
  n.Node.incarnation <- n.Node.incarnation + 1;
  ctx.down_until <- max ctx.down_until restart_at;
  ctx.stats.Dpa_stats.crashes <- ctx.stats.Dpa_stats.crashes + 1;
  ignore (Dpa_msg.Am.on_crash ctx.engine ~node:n.Node.id);
  Align_buffer.clear ctx.buffer;
  ignore (Dpa_msg.Aggregator.clear ctx.agg);
  (* The in-memory images of the durable logs are volatile: they die with
     the crash and are rebuilt below from the scanned WALs. *)
  Hashtbl.reset ctx.out_updates;
  Hashtbl.reset ctx.upd_journal.(n.Node.id);
  (* Routed aggregation: the relay buffer and its custody manifest die with
     the crash. Every batch parked here is still under its origin's
     end-to-end custody, so losing the combined copy only delays it — but
     waiting for the origin's (tree-depth-scaled) timer is slow, so the
     crash doubles as a hop-incarnation-change notification: each remote
     origin re-issues its covered batch straight-line as soon as it could
     plausibly have observed the new incarnation (one wire crossing plus a
     poll quantum). Fenced to the origin's incarnation at the crash
     instant, and skipped if the batch was acked meanwhile (a duplicate
     copy survived the tree) — a stale firing is a pure no-op. Pairs this
     node originated itself are skipped too: its own restart walk re-sends
     everything in [out_updates]. *)
  if Array.length ctx.peers > 0 then begin
    let lost =
      Hashtbl.fold
        (fun _ cover acc -> List.rev_append cover acc)
        ctx.relay_cover []
    in
    Hashtbl.reset ctx.relay_cover;
    ctx.stats.Dpa_stats.relay_wiped <-
      ctx.stats.Dpa_stats.relay_wiped + Update_buffer.clear ctx.relay;
    let notify_at =
      Engine.elapsed ctx.engine
      + ctx.machine.Machine.wire_latency_ns
      + ctx.machine.Machine.poll_quantum_ns
    in
    List.iter
      (fun (src, id) ->
        if src <> n.Node.id then begin
          let octx = ctx.peers.(src) in
          let inc = octx.node.Node.incarnation in
          Engine.post_soft ctx.engine ~time:notify_at ~node:src (fun () ->
              if octx.node.Node.incarnation = inc then
                match Hashtbl.find_opt octx.out_updates id with
                | None -> ()
                | Some (dst, batch) ->
                  Node.wait_until octx.node (max notify_at octx.down_until);
                  octx.stats.Dpa_stats.routed_reissues <-
                    octx.stats.Dpa_stats.routed_reissues + 1;
                  send_update_batch octx ~dst ~id batch)
        end)
      (List.sort compare lost)
  end;
  (* Torn writes: the crash may damage the tail of the victim's durable
     logs mid-write. [draw_tears] is empty (no stream access) when the
     knob is off, so legacy crash schedules replay unchanged. *)
  let torn =
    List.fold_left
      (fun acc (tear : Fault.tear) ->
        let target =
          match tear.Fault.tear_log with
          | `Update_wal -> ctx.wal
          | `Journal -> ctx.jwal.(n.Node.id)
        in
        if
          Wal.tear target ~slot:tear.Fault.tear_slot ~flip:tear.Fault.tear_flip
            ~pos:tear.Fault.tear_pos
        then acc + 1
        else acc)
      0 (Fault.draw_tears plan)
  in
  (* Integrity scan + image rebuild, atomically at the crash: the scan
     must complete before the node touches either log again, and "again"
     can be earlier than the restart event — a pre-crash quantum popping
     inside the down window resumes at the restart instant and may flush
     fresh batches (each append overwrites the doublewrite slot, which
     would strand a still-unrepaired torn tail), and a peer's retransmit
     can reach the new incarnation before the restart event runs (the
     journal image must already dedup it, or an applied batch would
     double-apply). In wall-clock terms this IS restart-time recovery —
     first thing on the new incarnation, before any post-crash append or
     delivery; the sim just anchors it to the crash event to make that
     ordering airtight. *)
  let scan wal =
    let r = Wal.scan wal in
    ctx.stats.Dpa_stats.wal_truncated <-
      ctx.stats.Dpa_stats.wal_truncated + r.Wal.truncated;
    ctx.stats.Dpa_stats.wal_repaired <-
      ctx.stats.Dpa_stats.wal_repaired + r.Wal.repaired;
    r.Wal.records
  in
  let upd_records = scan ctx.wal in
  List.iter
    (fun r ->
      let src, id = decode_applied r in
      Hashtbl.replace ctx.upd_journal.(n.Node.id) (src, id) ())
    (scan ctx.jwal.(n.Node.id));
  List.iter
    (fun r ->
      match decode_upd r with
      | `Batch (id, dst, batch) -> Hashtbl.replace ctx.out_updates id (dst, batch)
      | `Acked id -> Hashtbl.remove ctx.out_updates id)
    upd_records;
  ctx.wal_scanned <- true;
  let entries = Ready_ring.length ctx.ready in
  for _ = 1 to entries do
    let ptr = Ready_ring.head_ptr ctx.ready in
    let k = Ready_ring.head_k ctx.ready in
    Ready_ring.drop ctx.ready;
    if Gptr.node ptr = n.Node.id then Ready_ring.push ctx.ready ptr k
    else
      (* The thread stays pending; it merely moves from ready back into M
         (so [ctx.pending] is untouched). The restart walk re-issues
         whatever tokens this creates. *)
      ignore (Pointer_map.register ctx.map ~reuse:ctx.cfg.Config.reuse ptr k)
  done;
  match ctx.obs with
  | None -> ()
  | Some o ->
    obs_instant
      ~args:
        (("incarnation", Dpa_obs.Sink.Int n.Node.incarnation)
        :: ("restart_at", Dpa_obs.Sink.Int restart_at)
        ::
        (* Only stamped when a tear actually landed, so crash events of
           torn-wal-free runs are byte-identical to the pre-WAL stream. *)
        (if torn > 0 then [ ("torn", Dpa_obs.Sink.Int torn) ] else []))
      o n ~name:"crash"

(* Rejoin at the restart instant: idle up to it, then re-drive. The
   integrity scan and the image rebuild already ran at the crash event
   (see [crash_node] — they must precede any post-crash append or
   delivery, which can beat the restart event); what remains here is the
   active half of recovery:

   1. re-send every still-unacked batch in [out_updates] (rebuilt from
      the checksum-scanned WAL, plus anything flushed since) with fresh
      (fenced) timers, in batch-id order — a torn-and-repaired tail
      re-issued through the normal path;
   2. push every outstanding token in M back through the normal
      alignment path — the "transparent re-fetch" of orphaned requests.
      Token order keeps the walk deterministic. *)
let restart_node ctx ~restart_at =
  let n = ctx.node in
  Node.wait_until n restart_at;
  let unacked =
    List.sort compare
      (Hashtbl.fold (fun id v acc -> (id, v) :: acc) ctx.out_updates [])
  in
  let outstanding =
    List.sort compare
      (Pointer_map.fold_outstanding ctx.map
         (fun token ptr acc -> (token, ptr) :: acc)
         [])
  in
  ctx.stats.Dpa_stats.crash_refetches <-
    ctx.stats.Dpa_stats.crash_refetches + List.length outstanding;
  let rid =
    match ctx.obs with
    | None -> -1
    | Some o ->
      (* Restart marker: chained from the last pre-crash activity so the
         transparent re-fetch chain stays connected across the outage, and
         adopted as [last_act] so post-restart quanta chain from it. *)
      let rid, cargs =
        causal_marker o n ~name:"restart" ~seg:Dpa_obs.Causal.Refetch
          ~kind:Dpa_obs.Causal.Refetch_start ~parent:o.last_act
      in
      obs_instant
        ~args:
          (("refetches", Dpa_obs.Sink.Int (List.length outstanding))
          ::
          (match unacked with
          | [] -> cargs
          | l -> ("upd_resends", Dpa_obs.Sink.Int (List.length l)) :: cargs))
        o n ~name:"restart";
      if rid >= 0 then o.last_act <- rid;
      rid
  in
  let reissue () =
    List.iter
      (fun (id, (dst, batch)) ->
        ctx.stats.Dpa_stats.upd_reissues <-
          ctx.stats.Dpa_stats.upd_reissues + 1;
        send_update_batch ctx ~dst ~id batch;
        arm_update_timer ctx ~id
          ~rto:
            (rt_rto ctx
               ~bytes:
                 (Dpa_msg.Am.update_bytes ctx.machine
                    ~nupdates:(List.length batch))))
      unacked;
    List.iter
      (fun (token, ptr) ->
        Dpa_msg.Aggregator.add ctx.agg ~dst:(Gptr.node ptr) { token; ptr })
      outstanding;
    if Dpa_msg.Aggregator.pending ctx.agg > 0 then
      Dpa_msg.Aggregator.flush_all ctx.agg
  in
  (match ctx.obs with
  | Some o -> with_causal o rid reissue
  | None -> reissue ());
  ensure_scheduled ctx

(* Post one background event per crash window not yet behind us. The
   action double-checks that real work is still pending at the crash
   instant ([live_events]): a crash drawn past the phase's natural end is
   a no-op, it must not stretch the phase. The restart event is posted
   from inside the crash so it runs iff the crash did. *)
let post_crash_events ~engine ~plan ctxs =
  let phase_start = Engine.elapsed engine in
  Array.iter
    (fun ctx ->
      let id = ctx.node.Node.id in
      List.iter
        (fun (crash_at, restart_at) ->
          if crash_at >= phase_start then
            Engine.post_background engine ~time:crash_at ~node:id (fun () ->
                if Engine.live_events engine > 0 then begin
                  crash_node ctx ~plan ~restart_at;
                  Engine.post_background engine ~time:restart_at ~node:id
                    (fun () -> restart_node ctx ~restart_at)
                end))
        (Fault.crash_windows plan ~node:id))
    ctxs

let run_phase_labeled ~label ~engine ~heaps ~config ~items =
  let nodes = Engine.nodes engine in
  (match config.Config.route with
  | Config.Off -> ()
  | (Config.All_dsts | Config.Hot _) as r ->
    if not config.Config.reuse then
      invalid_arg "Runtime.run_phase: route requires reuse";
    (match r with
    | Config.Hot dsts ->
      List.iter
        (fun d ->
          if d >= Array.length nodes then
            invalid_arg "Runtime.run_phase: Hot route destination out of range")
        dsts
    | _ -> ()));
  Engine.barrier engine;
  Array.iter Node.reset_breakdown nodes;
  let start = Engine.elapsed engine in
  let journals =
    Array.init (Array.length nodes) (fun _ -> Hashtbl.create 32)
  in
  let jwals = Array.init (Array.length nodes) (fun _ -> Wal.create ()) in
  let ctxs =
    Array.map
      (fun node ->
        make_ctx ~engine ~heaps ~config ~items:(items node.Node.id) ~label
          ~journals ~jwals node)
      nodes
  in
  if config.Config.route <> Config.Off then
    Array.iter (fun ctx -> ctx.peers <- ctxs) ctxs;
  (* Corruption drops attributed to this phase: the transport's per-node
     counters persist across phases, so snapshot at the start and diff at
     the end. Empty until the first reliable send instantiates the state. *)
  let corrupt0 = Dpa_msg.Am.corrupt_dropped_per_node engine in
  Array.iter ensure_scheduled ctxs;
  (match Engine.fault engine with
  | Some plan when Fault.has_crashes plan ->
    post_crash_events ~engine ~plan ctxs
  | _ -> ());
  (* Fixed-rate counter tracks, opt-in via the sink's sample period. *)
  (match Engine.sink engine with
  | Some sink when Dpa_obs.Sink.sample_period_ns sink > 0 ->
    let period_ns = Dpa_obs.Sink.sample_period_ns sink in
    Engine.start_sampler engine ~period_ns ~name:"outstanding" (fun n ->
        ctxs.(n.Node.id).pending);
    Engine.start_sampler engine ~period_ns ~name:"dbuf" (fun n ->
        Align_buffer.size ctxs.(n.Node.id).buffer)
  | _ -> ());
  Engine.run engine;
  (* Quiescence certificate before the barrier clears D and M: with a
     fault plan active, no envelope may still await its ack — the event
     queue draining with in-flight envelopes would mean a retransmit timer
     was lost, i.e. a protocol bug, not bad luck. *)
  (if Engine.fault engine <> None then
     let infl = Dpa_msg.Am.in_flight engine in
     if infl > 0 then
       failwith
         (Printf.sprintf
            "Runtime.run_phase: %d unacknowledged messages at barrier" infl);
     (* Quiescence certified: every delivered copy has run and nothing can
        be retransmitted, so the receiver dedup tables are reclaimable.
        Without this they grow by one entry per envelope for the life of
        the engine. *)
     ignore (Dpa_msg.Am.prune_seen engine));
  Array.iter
    (fun ctx ->
      if
        not
          (ctx.finished && ctx.pending = 0
          && Pointer_map.is_empty ctx.map
          && Update_buffer.pending ctx.updates = 0
          && Update_buffer.pending ctx.relay = 0
          && Hashtbl.length ctx.relay_cover = 0
          && Hashtbl.length ctx.out_updates = 0)
      then
        failwith
          (Printf.sprintf
             "Runtime.run_phase: node %d did not quiesce (finished=%b, \
              pending=%d, map=%d, updates=%d, relay=%d, relay_cover=%d, \
              out_updates=%d)"
             (node_id ctx) ctx.finished ctx.pending
             (Pointer_map.fold_outstanding ctx.map (fun _ _ acc -> acc + 1) 0)
             (Update_buffer.pending ctx.updates)
             (Update_buffer.pending ctx.relay)
             (Hashtbl.length ctx.relay_cover)
             (Hashtbl.length ctx.out_updates));
      (* Integrity side of the certificate: every node that crashed ran
         its crash-anchored WAL recovery scan, and the durable log agrees
         with the drained in-memory image — no Batch record without its
         Acked. *)
      if Engine.fault engine <> None then begin
        if ctx.stats.Dpa_stats.crashes > 0 && not ctx.wal_scanned then
          failwith
            "Runtime.run_phase: crashed node reached the barrier without a \
             WAL integrity scan";
        let live = wal_live_batches ctx.wal in
        if live > 0 then
          failwith
            (Printf.sprintf
               "Runtime.run_phase: %d unacknowledged update batch(es) in the \
                WAL at barrier"
               live)
      end)
    ctxs;
  let elapsed_ns = Engine.elapsed engine - start in
  (* Per-node phase spans carry the node's own busy time (local+comm since
     the phase's breakdown reset) and sent bytes, feeding the profile's
     per-node skew table. Emitted before the closing barrier: the barrier
     flushes any attached stream writer, and these spans open at the phase
     start, so they must be sorted into this phase's flush segment. The
     barrier itself only charges idle, so the args are final here. *)
  (match Engine.sink engine with
  | None -> ()
  | Some sink ->
    (* Per-node communication optimality: bytes the node actually moved
       for this phase vs. its surface/volume-style lower bound — each
       unique remote object fetched once at its footprint, each unique
       accumulation target sent once at one update-entry (DESIGN.md §14).
       Attached to the phase spans for the profile's optimality table, and
       summed into the causal window's metadata for the critical-path
       report. *)
    let opt =
      Array.map
        (fun ctx ->
          match ctx.obs with
          | None -> (0, 0)
          | Some o ->
            let bound =
              Gptr.Tbl.fold (fun _ b acc -> acc + b) o.touched 0
              + (Hashtbl.length o.upd_touched
                * ctx.machine.Machine.update_entry_bytes)
            in
            (o.opt_actual, bound))
        ctxs
    in
    let cau = Dpa_obs.Sink.causal sink in
    (match cau with
    | None -> ()
    | Some c ->
      let actual = Array.fold_left (fun a (x, _) -> a + x) 0 opt in
      let bound = Array.fold_left (fun a (_, x) -> a + x) 0 opt in
      Dpa_obs.Causal.set_meta c ~label ~wall_ns:elapsed_ns ~opt_actual:actual
        ~opt_bound:bound);
    (* Per-node integrity tallies, stamped only under a fault plan so the
       faults-off event stream stays byte-identical: corruption drops this
       phase (snapshot delta — the transport counters outlive phases) and
       the WAL truncation/repair counts of the restart scans. *)
    let corrupt1 = Dpa_msg.Am.corrupt_dropped_per_node engine in
    let integrity_args (n : Node.t) =
      if Engine.fault engine = None then []
      else
        let at a = if n.Node.id < Array.length a then a.(n.Node.id) else 0 in
        let stats = ctxs.(n.Node.id).stats in
        [
          ("corrupt_dropped", Dpa_obs.Sink.Int (at corrupt1 - at corrupt0));
          ("wal_truncated", Dpa_obs.Sink.Int stats.Dpa_stats.wal_truncated);
          ("wal_repaired", Dpa_obs.Sink.Int stats.Dpa_stats.wal_repaired);
        ]
    in
    Array.iter
      (fun (n : Node.t) ->
        let actual, bound = opt.(n.Node.id) in
        let cargs =
          match cau with
          | None -> []
          | Some c ->
            [ ("span_id", Dpa_obs.Sink.Int (Dpa_obs.Causal.fresh c)) ]
        in
        Dpa_obs.Sink.span
          ~args:
            (("elapsed_ns", Dpa_obs.Sink.Int elapsed_ns)
            :: ("busy_ns", Dpa_obs.Sink.Int (n.Node.local_ns + n.Node.comm_ns))
            :: ("bytes", Dpa_obs.Sink.Int n.Node.bytes_sent)
            :: ("opt_actual_bytes", Dpa_obs.Sink.Int actual)
            :: ("opt_bound_bytes", Dpa_obs.Sink.Int bound)
            :: (integrity_args n @ cargs))
          sink ~cat:"phase" ~name:label ~node:n.Node.id ~ts:start
          ~dur:elapsed_ns)
      nodes);
  Engine.barrier engine;
  let breakdown = Breakdown.of_nodes ~elapsed_ns nodes in
  (* Record the strip size each node ended the phase with; static runs
     report their configured size so a clamped auto run's stats compare
     equal field-for-field. *)
  Array.iter
    (fun ctx ->
      ctx.stats.Dpa_stats.strip_size_final <-
        (match ctx.ctrl with
        | Some c -> c.size
        | None -> ctx.cfg.Config.strip_size))
    ctxs;
  let stats =
    Dpa_stats.merge (Array.to_list (Array.map (fun c -> c.stats) ctxs))
  in
  (match Engine.sink engine with
  | None -> ()
  | Some sink ->
    Dpa_obs.Sink.set_meta sink ("dpa_stats." ^ label) (Dpa_stats.to_json stats));
  (breakdown, stats)

let run_phase ~engine ~heaps ~config ~items =
  run_phase_labeled ~label:"phase" ~engine ~heaps ~config ~items

open Dpa_heap

type 'k slot = { ptr : Gptr.t; mutable ks : 'k list (* reversed *); mutable count : int }

type 'k t = {
  tokens : (int, 'k slot) Hashtbl.t;
  by_ptr : int Gptr.Tbl.t;  (* pointer -> outstanding token, reuse mode *)
  mutable next_token : int;
  mutable waiters : int;
}

let create () =
  {
    tokens = Hashtbl.create 64;
    by_ptr = Gptr.Tbl.create 64;
    next_token = 0;
    waiters = 0;
  }

let fresh t ptr k =
  let token = t.next_token in
  t.next_token <- token + 1;
  Hashtbl.replace t.tokens token { ptr; ks = [ k ]; count = 1 };
  token

let register t ~reuse ptr k =
  t.waiters <- t.waiters + 1;
  if reuse then
    match Gptr.Tbl.find_opt t.by_ptr ptr with
    | Some token ->
      let slot = Hashtbl.find t.tokens token in
      slot.ks <- k :: slot.ks;
      slot.count <- slot.count + 1;
      `Merged
    | None ->
      let token = fresh t ptr k in
      Gptr.Tbl.replace t.by_ptr ptr token;
      `New_request token
  else `New_request (fresh t ptr k)

let take_opt t token =
  match Hashtbl.find_opt t.tokens token with
  | None -> None
  | Some slot ->
    Hashtbl.remove t.tokens token;
    (match Gptr.Tbl.find_opt t.by_ptr slot.ptr with
    | Some tok when tok = token -> Gptr.Tbl.remove t.by_ptr slot.ptr
    | Some _ | None -> ());
    t.waiters <- t.waiters - slot.count;
    Some (slot.ptr, List.rev slot.ks)

let take t token =
  match take_opt t token with None -> raise Not_found | Some r -> r

let find_ptr t token =
  match Hashtbl.find_opt t.tokens token with
  | None -> None
  | Some slot -> Some slot.ptr

let fold_outstanding t f acc =
  Hashtbl.fold (fun token slot acc -> f token slot.ptr acc) t.tokens acc

let outstanding t = Hashtbl.length t.tokens
let waiters t = t.waiters
let is_empty t = Hashtbl.length t.tokens = 0

let clear t =
  Hashtbl.reset t.tokens;
  Gptr.Tbl.reset t.by_ptr;
  t.waiters <- 0

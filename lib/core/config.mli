(** Configuration of the DPA runtime: the paper's tuning knobs.

    [strip_size] is the static strip-mining bound on top-level concurrent
    loops (the paper's "DPA (50)" / "DPA (300)" notation). [agg_max] bounds
    how many read requests are packed per message before an eager flush.
    [reuse] enables the alignment buffer D and request merging in the
    pointer map M — the data-reuse ("tiling") half of DPA; with it off the
    runtime still pipelines and aggregates but refetches every object. *)

type t = { name : string; strip_size : int; agg_max : int; reuse : bool }

val dpa : ?strip_size:int -> ?agg_max:int -> unit -> t
(** Full DPA. Defaults: strip 50 (the paper's headline setting), agg 64. *)

val pipeline_only : ?strip_size:int -> unit -> t
(** Non-blocking threads with message pipelining but no aggregation and no
    reuse: each remote read is its own message. (This is also how the greedy
    prefetching of related work behaves.) *)

val pipeline_aggregate : ?strip_size:int -> ?agg_max:int -> unit -> t
(** Pipelining plus aggregation, still no reuse. *)

val pp : Format.formatter -> t -> unit

(** Configuration of the DPA runtime: the paper's tuning knobs.

    [strip_size] is the static strip-mining bound on top-level concurrent
    loops (the paper's "DPA (50)" / "DPA (300)" notation). [agg_max] bounds
    how many read requests are packed per message before an eager flush.
    [reuse] enables the alignment buffer D and request merging in the
    pointer map M — the data-reuse ("tiling") half of DPA; with it off the
    runtime still pipelines and aggregates but refetches every object.

    [auto] replaces the static strip bound with a closed-loop controller:
    the runtime starts at [strip_size] and, at each strip boundary, doubles
    or halves the next strip within [min_strip, max_strip], steering the
    alignment buffer's closing occupancy into the band
    [(d_target/2, d_target]] (see {!Runtime}). The controller reads only
    quantities the runtime already maintains and charges no simulated time,
    so a run whose bounds pin the size ([min_strip = max_strip =
    strip_size]) is bit-identical to the static configuration. *)

type auto_strip = {
  min_strip : int;  (** inclusive lower bound on the strip size *)
  max_strip : int;  (** inclusive upper bound on the strip size *)
  d_target : int;
      (** alignment-buffer occupancy ceiling the controller steers under *)
}

type route =
  | Off  (** flat aggregation: every update batch goes straight to its owner *)
  | All_dsts
      (** every remote destination's updates are held for the whole phase,
          combined, and sent through the binomial reduction tree rooted at
          the owner ({!Dpa_msg.Route}) *)
  | Hot of int list
      (** only the listed destinations are routed; everything else stays on
          the flat path — the fan-in case, where one owner receives
          contributions from all other nodes *)

type t = {
  name : string;
  strip_size : int;
  agg_max : int;
  reuse : bool;
  auto : auto_strip option;
  route : route;
      (** tree-routed update aggregation. Requires [reuse] (the combining
          map is what makes the phase-long hold window profitable). Relay
          state is volatile, so under crash fault plans every routed batch
          stays under its origin's custody — WAL-journaled and held until
          the final owner's end-to-end ack — and crashes only cost
          straight-line re-issues the owner journal dedups. Fixed-point
          accumulation grids make en-route combining order-independent, so
          any [route] setting is bit-identical in results to [Off], under
          every fault schedule. *)
}

val dpa : ?strip_size:int -> ?agg_max:int -> ?route:route -> unit -> t
(** Full DPA. Defaults: strip 50 (the paper's headline setting), agg 64,
    route off. *)

val dpa_auto :
  ?strip_size:int ->
  ?min_strip:int ->
  ?max_strip:int ->
  ?d_target:int ->
  ?agg_max:int ->
  ?route:route ->
  unit ->
  t
(** Full DPA with the adaptive strip-size controller. Defaults: initial
    strip 50, bounds [10, 1000], D target 2048, agg 64, route off. Raises
    [Invalid_argument] if [strip_size] lies outside the bounds. *)

val pipeline_only : ?strip_size:int -> unit -> t
(** Non-blocking threads with message pipelining but no aggregation and no
    reuse: each remote read is its own message. (This is also how the greedy
    prefetching of related work behaves.) *)

val pipeline_aggregate : ?strip_size:int -> ?agg_max:int -> unit -> t
(** Pipelining plus aggregation, still no reuse. *)

val pp : Format.formatter -> t -> unit

(** Buffer for remote accumulations (reductions) — the write-side dual of
    the request aggregator. Updates destined for the same node are batched
    into one message; with [combine] on, updates to the same (pointer,
    field) slot within the buffering window are summed locally before
    anything is sent — the reduction optimization the paper lists as an
    extension enabled by more precise aliasing. *)

open Dpa_heap

type t

type entry = { ptr : Gptr.t; idx : int; value : float }

val create :
  ?hold:(int -> bool) ->
  ndest:int ->
  combine:bool ->
  max_batch:int ->
  flush:(dst:int -> entry list -> unit) ->
  unit ->
  t
(** [hold dst] (default: never) marks destinations whose buckets are
    exempt from the eager [max_batch] flush and from {!flush_if}: their
    entries keep combining across strip boundaries until an explicit
    {!flush_all}. This is the whole-phase merge window of routed
    aggregation — with [combine] on, a held bucket is bounded by its
    number of unique (pointer, field) targets, not by the update count. *)

val add : t -> dst:int -> Gptr.t -> idx:int -> float -> unit

val add_entries : t -> dst:int -> entry list -> unit
(** Bulk ingest — a relay node merging a routed batch into the bucket of
    its final destination. Equivalent to {!add}ing each entry in order, so
    {!combined} and {!pending} count en-route merged entries exactly like
    locally-accumulated ones. *)

val flush_all : t -> unit

val flush_if : t -> (int -> bool) -> unit
(** Flush only the destinations the predicate selects — the strip-boundary
    flush, which must skip held (routed) destinations. *)

val clear : t -> int
(** Drop every buffered entry without flushing, returning how many entries
    were discarded — a crashing node losing its volatile relay buffer.
    Counters other than {!pending} are untouched. *)

val pending : t -> int
(** Buffered entries across destinations (after combining). *)

val sent_entries : t -> int
val combined : t -> int
(** Updates folded into an existing buffered entry. *)

val messages : t -> int

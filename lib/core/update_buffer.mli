(** Buffer for remote accumulations (reductions) — the write-side dual of
    the request aggregator. Updates destined for the same node are batched
    into one message; with [combine] on, updates to the same (pointer,
    field) slot within the buffering window are summed locally before
    anything is sent — the reduction optimization the paper lists as an
    extension enabled by more precise aliasing. *)

open Dpa_heap

type t

type entry = { ptr : Gptr.t; idx : int; value : float }

val create :
  ndest:int ->
  combine:bool ->
  max_batch:int ->
  flush:(dst:int -> entry list -> unit) ->
  t

val add : t -> dst:int -> Gptr.t -> idx:int -> float -> unit
val flush_all : t -> unit
val pending : t -> int
(** Buffered entries across destinations (after combining). *)

val sent_entries : t -> int
val combined : t -> int
(** Updates folded into an existing buffered entry. *)

val messages : t -> int

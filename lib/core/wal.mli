(** Checksummed write-ahead log with a doublewrite slot.

    The runtime's durable logs — the per-node update-WAL (rebuilt batches
    to re-send after a crash) and the per-owner applied-batch journal
    (cross-incarnation exactly-once) — are byte images of records
    [[len][payload][crc]], the CRC-32 ({!Dpa_util.Crc}) over the payload.
    Every {!append} writes the complete record image to a single
    {e doublewrite slot} first, then to the main image, so the torn-write
    fault class ({!Dpa_sim.Fault.spec}[.torn_wal]), which damages exactly
    one of the two copies per crash, can never destroy a record both
    places: {!scan} truncates the main image at the first record that
    fails its length or checksum check and re-appends the lost tail from
    the slot whenever the slot holds a valid record the log no longer
    ends with. Recovery is lossless for every single-tear schedule,
    provided the scan runs before the next {!append} (which overwrites
    the slot) — the property test/test_integrity.ml exercises at every
    byte boundary of the tail record.

    Consecutive records must differ (true of every runtime codec: batch
    and journal records embed monotone ids) — a tail record that is
    byte-identical to its predecessor would make the torn tail
    indistinguishable from an already-complete log. *)

type t

val create : unit -> t

val append : t -> Bytes.t -> unit
(** Durably append one record: slot first, then the main image. *)

val records : t -> Bytes.t list
(** The payloads of every checksum-valid record, front to back, stopping
    at the first invalid one (without truncating — use {!scan} to
    recover). *)

val count : t -> int
(** Records in the live image. Not meaningful between a {!tear} and the
    next {!scan}. *)

val size : t -> int
(** Bytes in the live image. *)

val reset : t -> unit
(** Discard all records — the phase barrier calls this once quiescence
    certifies every appended batch acknowledged and applied. *)

val tear : t -> slot:bool -> flip:bool -> pos:int -> bool
(** Apply one crash's torn-write damage, as drawn by
    {!Dpa_sim.Fault.draw_tears}: [slot] hits the doublewrite slot rather
    than the main tail, [flip] flips one bit rather than truncating, and
    [pos] seeds the position (bit index or bytes torn off, reduced mod
    the target's size). Returns [false] when there was nothing to damage
    (empty log or slot) — the tear is absorbed harmlessly. *)

type scan_result = {
  records : Bytes.t list;  (** every surviving payload, front to back *)
  truncated : int;  (** 1 if the scan cut a damaged tail, else 0 *)
  repaired : int;  (** 1 if the doublewrite slot restored the tail *)
}

val scan : t -> scan_result
(** Crash-recovery integrity walk: verify every record front to back,
    truncate the image at the first bad one, then repair from the slot
    when it holds a valid record the log does not end with. Leaves the
    log consistent for further appends. Idempotent: a second scan finds
    nothing to truncate or repair. *)

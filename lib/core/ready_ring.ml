open Dpa_heap

(* The scheduler's ready queue, flattened: a circular buffer of parallel
   (pointer, continuation) arrays. Pushing a ready thread writes two
   pre-sized slots — no queue cell, no tuple — which keeps the per-access
   dispatch path of {!Runtime} allocation-free. Capacity doubles on
   demand and is retained across strips (the working set bounds it). *)

type 'k t = {
  mutable ptrs : Gptr.t array;
  mutable ks : 'k array;
  mutable head : int;  (* index of the next entry to pop *)
  mutable len : int;
  dummy : 'k;  (* fills vacated slots so popped closures are not retained *)
}

let create ~dummy =
  { ptrs = Array.make 64 Gptr.nil; ks = Array.make 64 dummy; head = 0; len = 0; dummy }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.ptrs in
  let ncap = cap * 2 in
  let ptrs = Array.make ncap Gptr.nil and ks = Array.make ncap t.dummy in
  for i = 0 to t.len - 1 do
    let j = (t.head + i) land (cap - 1) in
    ptrs.(i) <- t.ptrs.(j);
    ks.(i) <- t.ks.(j)
  done;
  t.ptrs <- ptrs;
  t.ks <- ks;
  t.head <- 0

let push t ptr k =
  let cap = Array.length t.ptrs in
  if t.len = cap then grow t;
  let i = (t.head + t.len) land (Array.length t.ptrs - 1) in
  t.ptrs.(i) <- ptr;
  t.ks.(i) <- k;
  t.len <- t.len + 1

let head_ptr t =
  if t.len = 0 then invalid_arg "Ready_ring.head_ptr: empty";
  t.ptrs.(t.head)

let head_k t =
  if t.len = 0 then invalid_arg "Ready_ring.head_k: empty";
  t.ks.(t.head)

let drop t =
  if t.len = 0 then invalid_arg "Ready_ring.drop: empty";
  t.ks.(t.head) <- t.dummy;
  t.ptrs.(t.head) <- Gptr.nil;
  t.head <- (t.head + 1) land (Array.length t.ptrs - 1);
  t.len <- t.len - 1

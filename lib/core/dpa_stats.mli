(** Runtime statistics collected per phase: the raw material of the paper's
    static/dynamic thread-statistics table (T1). *)

type t = {
  mutable spawns : int;  (** thread records created (suspended remote reads) *)
  mutable inline_local : int;  (** reads satisfied from the local heap *)
  mutable align_hits : int;  (** reads satisfied from the alignment buffer D *)
  mutable merge_hits : int;  (** reads merged onto an outstanding request in M *)
  mutable requests : int;  (** request entries sent *)
  mutable request_msgs : int;  (** aggregated request messages sent *)
  mutable max_outstanding : int;  (** peak suspended threads on one node *)
  mutable max_batch : int;  (** largest aggregated batch *)
  mutable strips : int;  (** strips executed *)
  mutable align_peak : int;  (** peak objects held in D on one node *)
  mutable updates : int;  (** accumulate operations issued *)
  mutable updates_combined : int;  (** folded into a buffered update *)
  mutable update_msgs : int;  (** aggregated update messages sent *)
  mutable strip_grows : int;  (** adaptive controller: strip-size doublings *)
  mutable strip_shrinks : int;  (** adaptive controller: strip-size halvings *)
  mutable strip_size_final : int;
      (** strip size in force when the phase ended (the configured size for
          static runs, so a clamped auto run reports identical stats) *)
  mutable rt_retries : int;
      (** end-to-end request re-issues by the runtime's timeout wheel *)
  mutable crashes : int;  (** crash-restarts executed on this node *)
  mutable crash_refetches : int;
      (** outstanding requests re-issued through the alignment path at a
          restart (orphaned by the crash wiping their conversations) *)
  mutable upd_reissues : int;
      (** accumulate batches re-sent because no application-level ack
          arrived — by the update timer or by the restart walk re-driving
          batches rebuilt from the checksum-scanned WAL
          (journal-deduplicated at the owner, so re-sends never
          double-apply) *)
  mutable routed_reissues : int;
      (** routed batches re-issued straight-line to their owner because a
          relay hop crashed while holding their combined copy — the
          crash-notification half of the origin-anchored end-to-end ack
          (timer-driven re-issues count under [upd_reissues]) *)
  mutable relay_wiped : int;
      (** buffered relay entries lost when their holder crashed (the relay
          buffer is volatile); every covered batch is recovered end-to-end
          by its origin *)
  mutable wal_truncated : int;
      (** damaged tail records cut by a crash-recovery WAL integrity scan
          ({!Wal.scan}) across this node's durable logs *)
  mutable wal_repaired : int;
      (** truncated tails restored from the doublewrite slot by the same
          scan — recovery is lossless whenever a crash tears at most one
          of (slot, tail) per log, which the fault model guarantees *)
}

val create : unit -> t
val merge : t list -> t
(** Componentwise sum; the [max_*], [align_peak] and [strip_size_final]
    fields take the maximum. *)

val total_reads : t -> int

val to_json : t -> Dpa_obs.Json.t
(** Flat object of every counter plus the derived [total_reads]; attached
    to the metrics export of an observed phase. *)

val pp : Format.formatter -> t -> unit

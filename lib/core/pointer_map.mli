(** The pointer-to-dependent-threads mapping [M] of the paper.

    Each outstanding fetch is identified by a token. With [reuse] on,
    at most one token is outstanding per pointer: threads created for a
    pointer that is already being fetched are merged onto the existing token
    (the runtime's deduplication, which makes message aggregation and data
    reuse possible). With [reuse] off every registration gets a fresh token
    and triggers its own request. *)

type 'k t

val create : unit -> 'k t

val register :
  'k t -> reuse:bool -> Dpa_heap.Gptr.t -> 'k -> [ `New_request of int | `Merged ]
(** Record a thread waiting on a pointer. [`New_request token] means the
    caller must issue a fetch carrying [token]; [`Merged] means one is
    already in flight. *)

val take : 'k t -> int -> Dpa_heap.Gptr.t * 'k list
(** Consume a token on reply arrival: returns the pointer and the waiting
    threads in registration order. Raises [Not_found] for unknown tokens. *)

val take_opt : 'k t -> int -> (Dpa_heap.Gptr.t * 'k list) option
(** Like {!take} but [None] for unknown tokens — the idempotent form the
    reliable message path uses: a token consumed by an earlier copy of a
    re-delivered bulk reply simply yields nothing to wake. *)

val find_ptr : 'k t -> int -> Dpa_heap.Gptr.t option
(** The pointer a still-outstanding token is fetching, if any; used by the
    runtime's timeout wheel to re-issue a request without consuming the
    token. *)

val fold_outstanding : 'k t -> (int -> Dpa_heap.Gptr.t -> 'a -> 'a) -> 'a -> 'a
(** Fold over every outstanding (token, pointer) pair, in unspecified
    order. The crash-recovery path uses this (sorted by token) to re-issue
    every fetch the crashed node still owes an answer to: the map's
    registrations are recoverable control state — they hold no partial
    execution — so the restart re-walks them through the normal alignment
    path. *)

val outstanding : 'k t -> int
(** Tokens currently in flight. *)

val waiters : 'k t -> int
(** Threads currently suspended. *)

val is_empty : 'k t -> bool
val clear : 'k t -> unit

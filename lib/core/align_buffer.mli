(** The alignment buffer [D] of the paper: renamed local copies of remote
    objects, valid for the duration of one strip. Cleared at strip
    boundaries, so its peak size — reported in the statistics table — is
    bounded by the strip's working set. *)

type t

val create : unit -> t
val find : t -> Dpa_heap.Gptr.t -> Dpa_heap.Obj_repr.t option
val add : t -> Dpa_heap.Gptr.t -> Dpa_heap.Obj_repr.t -> unit
val size : t -> int
val peak : t -> int
(** Largest size reached since creation (survives [clear]). *)

val clear : t -> unit

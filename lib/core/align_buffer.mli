(** The alignment buffer [D] of the paper: renamed local copies of remote
    objects, valid for the duration of one strip. Cleared at strip
    boundaries, so its peak size — reported in the statistics table — is
    bounded by the strip's working set.

    Views alias the owner's flat store ({!Dpa_heap.Heap.view}), so the
    buffer holds membership, not payload: a hit means the strip already
    fetched the object and the read needs no wire traffic. No allocation
    on the lookup or insert path. *)

type t

val create : unit -> t

val mem : t -> Dpa_heap.Gptr.t -> bool
(** Is the object's renamed copy live in this strip? *)

val add : t -> Dpa_heap.Gptr.t -> unit
val size : t -> int

val peak : t -> int
(** Largest size reached since creation (survives [clear]). *)

val clear : t -> unit

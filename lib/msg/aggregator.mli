(** Per-destination request aggregation.

    Requests destined for the same node are buffered and sent as one
    message. A buffer flushes eagerly when it reaches [max_batch] entries
    (bounding per-message size and keeping the pipeline busy) and lazily via
    {!flush_all} when the scheduler runs out of local work. [max_batch = 1]
    degenerates to message pipelining without aggregation — one of the
    ablation points of the evaluation. *)

type 'a t

val create : ndest:int -> max_batch:int -> flush:(dst:int -> 'a list -> unit) -> 'a t
(** [flush ~dst reqs] receives the batch in FIFO order. *)

val add : 'a t -> dst:int -> 'a -> unit

val add_all : 'a t -> dst:int -> 'a list -> unit
(** [add_all t ~dst xs] injects a whole batch — the routed-aggregation
    path, where a relay re-injects entries it merged en route. Equivalent
    to [List.iter (add t ~dst) xs]: eager flushes fire at every
    [max_batch] boundary inside the list, and {!flushes} /
    {!max_batch_seen} count the merged entries exactly as if they had
    been added one by one. *)

val flush_all : 'a t -> unit

val clear : 'a t -> int
(** Discard every buffered entry without flushing, returning how many were
    dropped. Used when the owning node crashes: unsent batches are volatile
    state, and the runtime re-issues what still matters from its durable
    pointer map at restart. *)

val pending : 'a t -> int
(** Total buffered requests across destinations. *)

val pending_for : 'a t -> dst:int -> int
(** Requests currently buffered for one destination. Raises
    [Invalid_argument] on an out-of-range destination. *)

val flushes : 'a t -> int
(** Number of flush callbacks issued so far. *)

val max_batch_seen : 'a t -> int
(** Largest batch handed to [flush] so far. *)

val set_observer : 'a t -> (dst:int -> int -> unit) option -> unit
(** [set_observer t (Some f)] has every flush report its destination and
    batch size through [f ~dst n] just before the flush callback runs —
    the observability layer's batch-size accounting hook. [None] (the
    default) removes it; no per-add or per-flush cost remains. *)

(* Deterministic binomial reduction tree rooted at the destination.

   Ranks are relative: node [src] has rank [(src - dst) mod n] in the tree
   rooted at [dst]; the parent of rank [r] is [r] with its lowest set bit
   cleared. Rank 0 is the root (the destination itself). The shape is a
   pure function of [(nnodes, dst)] — no RNG, no topology state — so every
   node computes the same tree and a routed run replays bit for bit. *)

let check ~nnodes ~src ~dst =
  if nnodes <= 0 then invalid_arg "Route: nnodes must be positive";
  if src < 0 || src >= nnodes then invalid_arg "Route: bad src";
  if dst < 0 || dst >= nnodes then invalid_arg "Route: bad dst"

let rank ~nnodes ~src ~dst =
  check ~nnodes ~src ~dst;
  ((src - dst) + nnodes) mod nnodes

let next_hop ~nnodes ~src ~dst =
  let r = rank ~nnodes ~src ~dst in
  if r = 0 then invalid_arg "Route.next_hop: src is the destination";
  let parent = r land (r - 1) in
  (dst + parent) mod nnodes

let hops ~nnodes ~src ~dst =
  let r = rank ~nnodes ~src ~dst in
  let count = ref 0 and v = ref r in
  while !v <> 0 do
    v := !v land (!v - 1);
    incr count
  done;
  !count

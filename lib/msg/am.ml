open Dpa_sim

let message_bytes (m : Machine.t) ~payload = m.msg_header_bytes + payload

let request_bytes (m : Machine.t) ~nreqs =
  m.msg_header_bytes + (nreqs * m.req_entry_bytes)

let update_bytes (m : Machine.t) ~nupdates =
  m.msg_header_bytes + (nupdates * m.update_entry_bytes)

let reply_bytes (m : Machine.t) ~payload ~nreqs =
  m.msg_header_bytes + (nreqs * m.req_entry_bytes) + payload

(* --- the perfect-network path ------------------------------------------- *)

(* Compute the fault-free arrival time of one transmission, charging the
   sender and (under [ingress_serialized]) occupying the links. Shared by
   both paths so link contention behaves identically with and without
   faults. *)
let injected_arrival engine (m : Machine.t) ~(src : Node.t) ~dst ~bytes =
  Node.charge_comm src m.Machine.send_overhead_ns;
  src.Node.msgs_sent <- src.Node.msgs_sent + 1;
  src.Node.bytes_sent <- src.Node.bytes_sent + bytes;
  if m.Machine.ingress_serialized then begin
    (* Each NIC moves one message at a time: the message first drains
       through the sender's egress link, crosses the wire, then drains
       through the destination's ingress link. *)
    let ser = int_of_float (ceil (float_of_int bytes *. m.Machine.ns_per_byte)) in
    let out_start = max src.Node.clock src.Node.out_link_free_at in
    let out_done = out_start + ser in
    src.Node.out_link_free_at <- out_done;
    let d = Engine.node engine dst in
    let in_start = max (out_done + m.Machine.wire_latency_ns) d.Node.link_free_at in
    let finish = in_start + ser in
    d.Node.link_free_at <- finish;
    finish
  end
  else src.Node.clock + Machine.transfer_ns m ~bytes

(* --- causal tracing hooks ----------------------------------------------- *)

let causal engine =
  match Engine.sink engine with
  | None -> None
  | Some s -> Dpa_obs.Sink.causal s

(* Chrome-trace flow arrows: one "s"/"f" instant pair per delivered copy,
   bound by an id derived from (src, dst, seq, incarnation) — retransmitted
   copies of one envelope share the id, so Perfetto draws every arrow of
   the recovery. The span_id/parent args double as the streamed form of the
   causal edges that bin/obs_check validates. *)
let emit_flow engine ~fid ~parent ~src ~dst ~seq ~inc ~sent ~at =
  match Engine.sink engine with
  | None -> ()
  | Some sink ->
    let flow_id = Printf.sprintf "%d/%d/%d/%d" src dst seq inc in
    let common =
      [
        ("id", Dpa_obs.Sink.Str flow_id);
        ("src", Dpa_obs.Sink.Int src);
        ("dst", Dpa_obs.Sink.Int dst);
        ("seq", Dpa_obs.Sink.Int seq);
        ("inc", Dpa_obs.Sink.Int inc);
      ]
    in
    let s_args =
      ("span_id", Dpa_obs.Sink.Int fid)
      ::
      (if parent >= 0 then ("parent", Dpa_obs.Sink.Int parent) :: common
       else common)
    in
    Dpa_obs.Sink.instant ~args:s_args sink ~cat:"flow" ~name:"flow_s"
      ~node:src ~ts:sent;
    Dpa_obs.Sink.instant
      ~args:(("parent", Dpa_obs.Sink.Int fid) :: common)
      sink ~cat:"flow" ~name:"flow_f" ~node:dst ~ts:at

(* Record one delivered copy as a flight node parented at the sender's
   activity ([cparent], read at wire-out and frozen for the envelope's
   lifetime), and emit its flow pair. Returns the flight id. *)
let record_flight engine c ~cparent ~attempt ~src ~dst ?seq ~inc ~sent ~at () =
  let fid = Dpa_obs.Causal.fresh c in
  (* Envelope-less (perfect-network) flights use their own id as the flow
     sequence, keeping flow ids unique per conversation. *)
  let seq = match seq with Some s -> s | None -> fid in
  let seg =
    if attempt > 1 then Dpa_obs.Causal.Retransmit else Dpa_obs.Causal.Wire
  in
  let kind =
    if attempt > 1 then Dpa_obs.Causal.Retry else Dpa_obs.Causal.Send
  in
  Dpa_obs.Causal.node ~seg c ~id:fid ~name:"flight" ~node:src ~ts:sent
    ~dur:(at - sent);
  Dpa_obs.Causal.edge c ~kind ~parent:cparent ~child:fid;
  emit_flow engine ~fid ~parent:cparent ~src ~dst ~seq ~inc ~sent ~at;
  fid

let plain_send engine ~src ~dst ~bytes handler =
  let m = Engine.machine engine in
  let cau = causal engine in
  let cparent =
    match cau with Some c -> Dpa_obs.Causal.current c | None -> -1
  in
  let sent_at = src.Node.clock in
  let src_id = src.Node.id in
  let arrival = injected_arrival engine m ~src ~dst ~bytes in
  let fid =
    match cau with
    | Some c ->
      record_flight engine c ~cparent ~attempt:1 ~src:src_id ~dst ~inc:0
        ~sent:sent_at ~at:arrival ()
    | None -> -1
  in
  Engine.post engine ~time:arrival ~node:dst (fun () ->
      let d = Engine.node engine dst in
      Node.charge_comm d m.Machine.recv_overhead_ns;
      d.Node.msgs_recv <- d.Node.msgs_recv + 1;
      d.Node.bytes_recv <- d.Node.bytes_recv + bytes;
      match cau with
      | Some c -> Dpa_obs.Causal.with_current c fid (fun () -> handler d)
      | None -> handler d)

(* --- reliable delivery over a faulty network ----------------------------- *)

(* When a fault plan is installed, every [send] becomes a sequence-numbered
   envelope: the receiver acknowledges each copy it extracts and runs the
   handler only for the first (per-sequence dedup), while the sender keeps
   the envelope in a retransmit buffer armed with a timeout that backs off
   exponentially (capped) until the ack lands. Acks themselves cross the
   faulty network unprotected — a lost ack just costs one spurious
   retransmission, which the dedup absorbs. The result is exactly-once
   handler execution on any network the plan can express (drop < 1). *)

type pending = {
  p_src : int;  (* originating node: crash wipes its retransmit buffer *)
  p_first_sent : int;  (* for the recovery-latency histogram *)
  mutable p_attempts : int;
  mutable p_rto_ns : int;
  mutable p_budget : int;
      (* attempts burned against the CURRENT destination incarnation —
         reset whenever the destination crash-restarts, so copies fenced
         into a dead incarnation's wire silence never count toward the
         hard [max_attempts] verdict. [p_attempts] stays monotone: it
         feeds Karn filtering and the Retransmit causal segment, which
         care about physical transmissions, not budget. *)
  mutable p_inc : int;  (* destination incarnation at the last attempt *)
  mutable p_incs_seen : int;  (* distinct destination incarnations tried *)
  p_causal : int;
      (* causal parent stamped at wire-out of the FIRST attempt (-1 when
         tracing is off). Retransmissions re-read this, never the cursor —
         the timeout handler runs outside any activity, and causally the
         retry still stems from whatever first sent the envelope. *)
}

type state = {
  mutable next_seq : int;
  nnodes : int;
  pending : (int, pending) Hashtbl.t;  (* unacked envelopes, by seq *)
  seen : (int, unit) Hashtbl.t array;  (* per receiving node: delivered seqs *)
  rtt : Rtt.t array;  (* per (src, dst) link: ack round trips, Karn-filtered *)
  e2e : Rtt.t;
      (* engine-wide first-send -> acknowledged latency, retransmission
         recovery included — the signal the runtime's end-to-end timeout
         wheel scales itself by *)
  mutable retransmits : int;
  mutable retransmit_bytes : int;
  mutable acks : int;
  mutable dups_suppressed : int;
  mutable pruned : int;  (* dedup entries reclaimed at phase barriers *)
  mutable fenced : int;  (* copies rejected by incarnation fencing *)
  mutable crash_wiped : int;  (* envelopes lost with their sender's crash *)
  corrupt_dropped : int array;
      (* per node: copies whose frame failed checksum verification at that
         node's NIC — kept per node so the profile's integrity table can
         show the sum-across-nodes breakdown *)
}

type stats = {
  in_flight : int;
  retransmits : int;
  retransmit_bytes : int;
  acks : int;
  dups_suppressed : int;
  seen_entries : int;
  pruned : int;
  fenced : int;
  crash_wiped : int;
  corrupt_dropped : int;
}

type Engine.ext += Reliable of state

let state engine =
  match Engine.ext engine with
  | Some (Reliable s) -> s
  | _ ->
    let nnodes = Array.length (Engine.nodes engine) in
    let s =
      {
        next_seq = 0;
        nnodes;
        pending = Hashtbl.create 256;
        seen = Array.init nnodes (fun _ -> Hashtbl.create 1024);
        rtt = Array.init (nnodes * nnodes) (fun _ -> Rtt.create ());
        e2e = Rtt.create ();
        retransmits = 0;
        retransmit_bytes = 0;
        acks = 0;
        dups_suppressed = 0;
        pruned = 0;
        fenced = 0;
        crash_wiped = 0;
        corrupt_dropped = Array.make nnodes 0;
      }
    in
    Engine.set_ext engine (Some (Reliable s));
    s

let seen_entries s =
  Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 s.seen

let corrupt_total (s : state) = Array.fold_left ( + ) 0 s.corrupt_dropped

let stats engine =
  match Engine.ext engine with
  | Some (Reliable s) ->
    Some
      {
        in_flight = Hashtbl.length s.pending;
        retransmits = s.retransmits;
        retransmit_bytes = s.retransmit_bytes;
        acks = s.acks;
        dups_suppressed = s.dups_suppressed;
        seen_entries = seen_entries s;
        pruned = s.pruned;
        fenced = s.fenced;
        crash_wiped = s.crash_wiped;
        corrupt_dropped = corrupt_total s;
      }
  | _ -> None

let corrupt_dropped_per_node engine =
  match Engine.ext engine with
  | Some (Reliable s) -> Array.copy s.corrupt_dropped
  | _ -> [||]

let in_flight engine =
  match Engine.ext engine with
  | Some (Reliable s) -> Hashtbl.length s.pending
  | _ -> 0

(* Reclaim the receiver dedup tables. Safe only at a quiescent point: with
   the event queue drained every delivered copy (duplicates included) has
   run, and with no unacked envelope no sequence number can ever be
   retransmitted — so no future arrival can match a pruned entry. Called
   by the runtimes at their phase barrier; without it a long multi-phase
   chaos run leaks one entry per envelope ever sent. *)
let prune_seen engine =
  match Engine.ext engine with
  | Some (Reliable s) ->
    if not (Engine.idle engine) then
      invalid_arg "Am.prune_seen: event queue not drained";
    if Hashtbl.length s.pending > 0 then
      invalid_arg "Am.prune_seen: unacknowledged envelopes in flight";
    let n = seen_entries s in
    Array.iter Hashtbl.reset s.seen;
    s.pruned <- s.pruned + n;
    n
  | _ -> 0

let link_rtt engine ~src ~dst =
  match Engine.ext engine with
  | Some (Reliable s) ->
    let est = s.rtt.((src * s.nnodes) + dst) in
    if Rtt.samples est = 0 then None else Some est
  | _ -> None

(* Scale factor for the end-to-end wheel: a request conversation is two
   reliable deliveries (the aggregated request out, the bulk reply back)
   plus owner service time, each delivery itself subject to recovery. *)
let e2e_rto engine ~fallback =
  match Engine.ext engine with
  | Some (Reliable s) when Rtt.samples s.e2e > 0 ->
    max fallback (2 * Rtt.estimate_ns s.e2e)
  | _ -> fallback

(* Retransmission policy. The initial timeout covers a fault-free round
   trip — injection overheads, the payload out, a header-only NIC ack back
   — plus several poll quanta of slack for injected delay/jitter and link
   occupancy under [ingress_serialized]. Each miss doubles the timeout up
   to [rto_cap]; a premature timeout only costs a duplicate that the dedup
   table absorbs. The generous cap lets the horizon stretch over an
   entire NIC outage window without burning through [max_attempts]. *)
let initial_rto (m : Machine.t) ~bytes =
  (2 * (m.send_overhead_ns + m.recv_overhead_ns))
  + Machine.transfer_ns m ~bytes
  + Machine.transfer_ns m ~bytes:m.msg_header_bytes
  + (4 * m.poll_quantum_ns)

let rto_cap m ~bytes = 1024 * initial_rto m ~bytes

(* Adaptive transport timeout (Machine.adaptive_rto): the Jacobson–Karels
   estimate for this (src, dst) link plus this message's own serialization
   time — samples mix message sizes, so the explicit transfer term keeps a
   large bulk reply from being timed against an estimate learned on small
   requests. Falls back to the constant worst-case formula until the first
   sample. Retransmitted envelopes never feed the estimator (Karn's
   algorithm: an ack after a retransmission is ambiguous), and the result
   is floored at the smallest round trip ever measured on the link. *)
let rto_for (st : state) (m : Machine.t) ~src ~dst ~bytes =
  let fallback = initial_rto m ~bytes in
  if not m.Machine.adaptive_rto then fallback
  else
    let est = st.rtt.((src * st.nnodes) + dst) in
    if Rtt.samples est = 0 then fallback
    else Rtt.rto_ns est ~fallback + Machine.transfer_ns m ~bytes

(* Far beyond anything a drop rate < 1 will produce; a plan that eats this
   many attempts is a configuration error, not bad luck. *)
let max_attempts = 64

(* Checksum fencing (DESIGN.md §13): materialize one copy's frame, seal it
   at wire-out, and let the fault plan flip a bit; [true] iff the frame
   then fails CRC verification — the NIC's cue to count and drop the copy
   with no ack and no handler. With the corruption class off no frame is
   ever built, so those runs replay bit-identically to a build without the
   integrity layer. CRC-32 catches every single-bit flip, so a drawn
   corruption is always detected (the test suite holds this exhaustively);
   the [verify] of a clean copy models the always-on NIC check. *)
let copy_corrupted f ~src ~dst ~seq ~inc ~bytes =
  Fault.corruption_enabled f
  && begin
       let fr = Wire.frame ~src ~dst ~seq ~inc ~bytes in
       Wire.seal fr;
       (match Fault.corrupt_copy f with
       | None -> ()
       | Some r -> Wire.flip_bit fr r);
       not (Wire.verify fr)
     end

let obs_instant engine ~cat ~name ~node ~ts args =
  match Engine.sink engine with
  | None -> ()
  | Some sink -> Dpa_obs.Sink.instant ~args sink ~cat ~name ~node ~ts

let obs_count engine name n =
  match Engine.sink engine with
  | None -> ()
  | Some sink ->
    Dpa_obs.Metrics.add (Dpa_obs.Metrics.counter (Dpa_obs.Sink.metrics sink) name) n

let obs_observe engine name v =
  match Engine.sink engine with
  | None -> ()
  | Some sink ->
    Dpa_obs.Metrics.observe
      (Dpa_obs.Metrics.histogram (Dpa_obs.Sink.metrics sink) name)
      v

(* Corruption marker: a zero-duration, path-ineligible DAG node hanging
   off the corrupted copy's flight (the ack pattern), so refetch and
   retransmit chains in the critical-path report stay exact while the
   corruption still shows as an explicit happens-before vertex. Returns
   span_id/parent args for the instant the caller emits. *)
let corrupt_marker engine ~kind ~fid ~node ~ts =
  match causal engine with
  | None -> []
  | Some c ->
    let id = Dpa_obs.Causal.fresh c in
    Dpa_obs.Causal.node ~seg:Dpa_obs.Causal.Wire ~on_path:false c ~id
      ~name:"corrupt" ~node ~ts ~dur:0;
    if fid >= 0 then Dpa_obs.Causal.edge c ~kind ~parent:fid ~child:id;
    ("span_id", Dpa_obs.Sink.Int id)
    :: (if fid >= 0 then [ ("parent", Dpa_obs.Sink.Int fid) ] else [])

let note_corrupt engine (st : state) ~node ~src ~bytes ~ts cargs =
  st.corrupt_dropped.(node) <- st.corrupt_dropped.(node) + 1;
  obs_count engine "am.corrupt_dropped" 1;
  obs_instant engine ~cat:"fault" ~name:"corrupt" ~node ~ts
    (("src", Dpa_obs.Sink.Int src) :: ("bytes", Dpa_obs.Sink.Int bytes) :: cargs)

(* One physical transmission attempt through the fault plan: charges the
   sender, occupies the links, then posts zero, one or two delivery events
   according to the verdict. [deliver] runs after the receiver's extraction
   overhead has been charged, once per surviving copy; it also receives the
   copy's wire-arrival time [at], which can lag far behind the receiver's
   clock on a backlogged node.

   Incarnation fencing: the envelope is stamped with the destination's
   incarnation as seen at this transmission. If the destination has
   crash-restarted by the time a copy arrives, the copy is addressed to a
   dead incarnation — the NIC counts its bytes but sends no ack and runs no
   handler. The sender's retransmission re-stamps at the next attempt, so
   the first attempt after the restart goes through; stale replies and
   requests can never act on the new incarnation's state. *)
let transmit engine f ~(src : Node.t) ~dst ~bytes ~seq ~cparent ~attempt
    deliver =
  let m = Engine.machine engine in
  let sent_at = src.Node.clock in
  let src_id = src.Node.id in
  let dst_inc = (Engine.node engine dst).Node.incarnation in
  let cau = causal engine in
  let arrival = injected_arrival engine m ~src ~dst ~bytes in
  match
    Fault.judge f ~now:sent_at ~arrival ~src:src_id ~dst
      ~transfer_ns:(Machine.transfer_ns m ~bytes)
  with
  | Fault.Drop ->
    obs_count engine "fault.drops" 1;
    obs_instant engine ~cat:"fault" ~name:"drop" ~node:src_id ~ts:sent_at
      [ ("dst", Dpa_obs.Sink.Int dst); ("bytes", Dpa_obs.Sink.Int bytes) ]
  | Fault.Outage ->
    obs_count engine "fault.outage_drops" 1;
    obs_instant engine ~cat:"fault" ~name:"outage" ~node:src_id ~ts:sent_at
      [ ("dst", Dpa_obs.Sink.Int dst); ("bytes", Dpa_obs.Sink.Int bytes) ]
  | Fault.Deliver delays ->
    (match delays with
    | _ :: _ :: _ ->
      obs_count engine "fault.dups" 1;
      obs_instant engine ~cat:"fault" ~name:"dup" ~node:src_id ~ts:sent_at
        [ ("dst", Dpa_obs.Sink.Int dst) ]
    | _ -> ());
    List.iter
      (fun extra ->
        let at = arrival + extra in
        (* Corruption is drawn here, at wire-out of the copy, not inside
           the delivery event: transmission order is the deterministic
           order, so the corruption stream stays independent of how the
           event queue interleaves deliveries. *)
        let corrupted =
          copy_corrupted f ~src:src_id ~dst ~seq ~inc:dst_inc ~bytes
        in
        (* One flight node per surviving copy — a duplicated envelope is
           two wire traversals, each a possible handler parent. Dropped
           attempts record nothing: the timeout wait they cause shows up
           as the gap on the Retry edge into the next attempt's flight. *)
        let fid =
          match cau with
          | Some c ->
            record_flight engine c ~cparent ~attempt ~src:src_id ~dst ~seq
              ~inc:dst_inc ~sent:sent_at ~at ()
          | None -> -1
        in
        Engine.post engine ~time:at ~node:dst (fun () ->
            let d = Engine.node engine dst in
            if corrupted then begin
              (* The frame failed its CRC at the destination NIC: the wire
                 carried the bytes, but the copy is fenced before software
                 extraction — no recv overhead, no ack, no handler. The
                 sender's retransmission timer recovers it as a loss. *)
              d.Node.msgs_recv <- d.Node.msgs_recv + 1;
              d.Node.bytes_recv <- d.Node.bytes_recv + bytes;
              let st = state engine in
              let cargs =
                corrupt_marker engine ~kind:Dpa_obs.Causal.Deliver ~fid
                  ~node:dst ~ts:at
              in
              note_corrupt engine st ~node:dst ~src:src_id ~bytes ~ts:at cargs
            end
            else if d.Node.incarnation <> dst_inc then begin
              (* Addressed to a pre-crash incarnation: the wire carried it,
                 but the NIC rejects it before software extraction — no
                 recv overhead, no ack, no handler. *)
              d.Node.msgs_recv <- d.Node.msgs_recv + 1;
              d.Node.bytes_recv <- d.Node.bytes_recv + bytes;
              let st = state engine in
              st.fenced <- st.fenced + 1;
              obs_count engine "am.fenced" 1;
              obs_instant engine ~cat:"fault" ~name:"fenced" ~node:dst ~ts:at
                [
                  ("src", Dpa_obs.Sink.Int src_id);
                  ("bytes", Dpa_obs.Sink.Int bytes);
                ]
            end
            else begin
              Node.charge_comm d m.Machine.recv_overhead_ns;
              d.Node.msgs_recv <- d.Node.msgs_recv + 1;
              d.Node.bytes_recv <- d.Node.bytes_recv + bytes;
              match cau with
              | Some c ->
                Dpa_obs.Causal.with_current c fid (fun () -> deliver ~at ~fid d)
              | None -> deliver ~at ~fid d
            end))
      delays

let reliable_send engine f ~(src : Node.t) ~dst ~bytes handler =
  let st = state engine in
  let m = Engine.machine engine in
  let seq = st.next_seq in
  st.next_seq <- seq + 1;
  let src_id = src.Node.id in
  let p =
    {
      p_src = src_id;
      p_first_sent = src.Node.clock;
      p_attempts = 0;
      p_budget = 0;
      p_inc = (Engine.node engine dst).Node.incarnation;
      p_incs_seen = 1;
      p_rto_ns = rto_for st m ~src:src_id ~dst ~bytes;
      p_causal =
        (match causal engine with
        | Some c -> Dpa_obs.Causal.current c
        | None -> -1);
    }
  in
  Hashtbl.replace st.pending seq p;
  let rec attempt () =
    let src = Engine.node engine src_id in
    let dst_inc = (Engine.node engine dst).Node.incarnation in
    if dst_inc <> p.p_inc then begin
      (* The destination crash-restarted since the last attempt: every
         attempt so far was (or may have been) spent on a dead
         incarnation's wire silence, not on plan hostility. The budget
         restarts with the incarnation; a recoverable-but-hostile plan
         gets a full [max_attempts] against the incarnation that can
         actually answer. *)
      p.p_inc <- dst_inc;
      p.p_incs_seen <- p.p_incs_seen + 1;
      p.p_budget <- 0
    end;
    p.p_attempts <- p.p_attempts + 1;
    p.p_budget <- p.p_budget + 1;
    if p.p_budget > max_attempts then begin
      let now = src.Node.clock in
      let window =
        List.find_opt
          (fun (c, r) -> c <= now && now < r)
          (Fault.crash_windows f ~node:dst)
      in
      failwith
        (Printf.sprintf
           "Am: message %d -> %d undeliverable after %d attempts against \
            destination incarnation %d (%d attempts total across %d \
            incarnation(s)%s; fault plan too hostile?)"
           src_id dst max_attempts dst_inc p.p_attempts p.p_incs_seen
           (match window with
           | Some (c, r) ->
             Printf.sprintf ", destination down in window [%d, %d)" c r
           | None -> ""))
    end;
    if p.p_attempts > 1 then begin
      st.retransmits <- st.retransmits + 1;
      st.retransmit_bytes <- st.retransmit_bytes + bytes;
      obs_count engine "am.retransmits" 1;
      obs_count engine "am.retransmit_bytes" bytes;
      obs_instant engine ~cat:"fault" ~name:"retry" ~node:src_id
        ~ts:src.Node.clock
        [
          ("seq", Dpa_obs.Sink.Int seq);
          ("attempt", Dpa_obs.Sink.Int p.p_attempts);
          ("dst", Dpa_obs.Sink.Int dst);
        ]
    end;
    transmit engine f ~src ~dst ~bytes ~seq ~cparent:p.p_causal
      ~attempt:p.p_attempts on_deliver;
    (* Arm the timeout. Soft event: if the ack beats the deadline this is
       a pure no-op that leaves the sender's clock untouched. *)
    obs_observe engine "am.rto_ns" p.p_rto_ns;
    let deadline = src.Node.clock + p.p_rto_ns in
    p.p_rto_ns <- min (2 * p.p_rto_ns) (rto_cap m ~bytes);
    Engine.post_soft engine ~time:deadline ~node:src_id (fun () ->
        if Hashtbl.mem st.pending seq then begin
          let src = Engine.node engine src_id in
          Node.wait_until src deadline;
          obs_instant engine ~cat:"fault" ~name:"timeout" ~node:src_id
            ~ts:src.Node.clock
            [ ("seq", Dpa_obs.Sink.Int seq); ("dst", Dpa_obs.Sink.Int dst) ];
          attempt ()
        end)
  and on_deliver ~at ~fid d =
    let dup = Hashtbl.mem st.seen.(dst) seq in
    if dup then begin
      st.dups_suppressed <- st.dups_suppressed + 1;
      obs_count engine "am.dups_suppressed" 1
    end
    else Hashtbl.replace st.seen.(dst) seq ();
    (* Ack every arriving copy — the sender may have missed an earlier
       ack — then run the handler exactly once. *)
    send_ack ~at ~fid d;
    if not dup then handler d
  and send_ack ~at ~fid (d : Node.t) =
    (* NIC-level ack: generated at the wire the moment the copy arrives
       ([at]), not when the receiver's software gets around to it. A
       backlogged owner's clock can run whole seconds ahead of message
       arrivals; timestamping acks off that clock makes every envelope to
       it look lost and feeds a retransmission storm that only deepens the
       backlog. The ack still crosses the faulty network (it can be
       dropped or duplicated, and its bytes count on both NICs), but it
       charges no node clock — completion bookkeeping is free, like the
       timers. *)
    st.acks <- st.acks + 1;
    let ack_bytes = m.Machine.msg_header_bytes in
    d.Node.msgs_sent <- d.Node.msgs_sent + 1;
    d.Node.bytes_sent <- d.Node.bytes_sent + ack_bytes;
    let arrival = at + Machine.transfer_ns m ~bytes:ack_bytes in
    match
      Fault.judge f ~now:at ~arrival ~src:d.Node.id ~dst:src_id
        ~transfer_ns:(Machine.transfer_ns m ~bytes:ack_bytes)
    with
    | Fault.Drop ->
      obs_count engine "fault.drops" 1;
      obs_instant engine ~cat:"fault" ~name:"drop" ~node:d.Node.id ~ts:at
        [ ("dst", Dpa_obs.Sink.Int src_id); ("bytes", Dpa_obs.Sink.Int ack_bytes) ]
    | Fault.Outage ->
      obs_count engine "fault.outage_drops" 1;
      obs_instant engine ~cat:"fault" ~name:"outage" ~node:d.Node.id ~ts:at
        [ ("dst", Dpa_obs.Sink.Int src_id); ("bytes", Dpa_obs.Sink.Int ack_bytes) ]
    | Fault.Deliver delays ->
      List.iter
        (fun extra ->
          (* Acks get the same checksum fence as data: a corrupted ack is
             counted and discarded at the sender's NIC, the envelope stays
             pending, and a later duplicate ack (or a spurious retransmit
             absorbed by the dedup) completes it. The ack frame reuses the
             data sequence number; acks carry no incarnation. *)
          let ack_corrupt =
            copy_corrupted f ~src:d.Node.id ~dst:src_id ~seq ~inc:0
              ~bytes:ack_bytes
          in
          (* Ack flights join the DAG (leaf nodes off the delivered copy)
             but are path-ineligible: they advance no node clock, so a
             late ack must not become the path tail. *)
          (match causal engine with
          | Some c ->
            let aid = Dpa_obs.Causal.fresh c in
            Dpa_obs.Causal.node ~seg:Dpa_obs.Causal.Wire ~on_path:false c
              ~id:aid ~name:"ack" ~node:d.Node.id ~ts:at
              ~dur:(arrival + extra - at);
            Dpa_obs.Causal.edge c ~kind:Dpa_obs.Causal.Ack ~parent:fid
              ~child:aid
          | None -> ());
          Engine.post_soft engine ~time:(arrival + extra) ~node:src_id
            (fun () ->
              let s = Engine.node engine src_id in
              s.Node.msgs_recv <- s.Node.msgs_recv + 1;
              s.Node.bytes_recv <- s.Node.bytes_recv + ack_bytes;
              if ack_corrupt then begin
                let cargs =
                  corrupt_marker engine ~kind:Dpa_obs.Causal.Ack ~fid
                    ~node:src_id ~ts:(arrival + extra)
                in
                note_corrupt engine st ~node:src_id ~src:d.Node.id
                  ~bytes:ack_bytes ~ts:(arrival + extra) cargs
              end
              else if Hashtbl.mem st.pending seq then begin
                Hashtbl.remove st.pending seq;
                let latency = (arrival + extra) - p.p_first_sent in
                (* Full delivery latency, recovery included, feeds the
                   end-to-end estimator; the per-link ack-RTT estimator
                   only takes unambiguous samples (Karn: a single
                   transmission, so the ack can only belong to it). *)
                Rtt.observe st.e2e latency;
                if p.p_attempts = 1 then
                  Rtt.observe st.rtt.((src_id * st.nnodes) + dst) latency;
                if p.p_attempts > 1 then
                  obs_observe engine "am.recovery_ns" latency
              end))
        delays
  in
  attempt ()

(* Execute the transport side of a node crash: the volatile messaging
   state tied to [node] is destroyed. Its retransmit buffer vanishes
   (envelopes it originated are never re-sent — the application layer must
   re-issue what still matters), its receiver dedup table is forgotten
   (retransmissions of pre-crash envelopes re-run handlers at most once
   per new incarnation, and only for conversations the sender still keeps,
   which re-stamp and stay exactly-once within the incarnation), and the
   RTT filters of every link touching the node re-converge from scratch.
   The engine-wide e2e filter is deliberately kept: recovery latencies are
   exactly what the end-to-end retry wheel should be learning. *)
let on_crash engine ~node =
  match Engine.ext engine with
  | Some (Reliable s) ->
    let dead =
      Hashtbl.fold
        (fun seq p acc -> if p.p_src = node then seq :: acc else acc)
        s.pending []
    in
    List.iter (Hashtbl.remove s.pending) dead;
    let n = List.length dead in
    s.crash_wiped <- s.crash_wiped + n;
    Hashtbl.reset s.seen.(node);
    for peer = 0 to s.nnodes - 1 do
      Rtt.reset s.rtt.((node * s.nnodes) + peer);
      Rtt.reset s.rtt.((peer * s.nnodes) + node)
    done;
    obs_count engine "am.crash_wiped" n;
    n
  | _ -> 0

let send engine ~src ~dst ~bytes handler =
  let m = Engine.machine engine in
  if bytes < m.Machine.msg_header_bytes then
    invalid_arg "Am.send: message smaller than header";
  match Engine.fault engine with
  | None -> plain_send engine ~src ~dst ~bytes handler
  | Some f -> reliable_send engine f ~src ~dst ~bytes handler

open Dpa_sim

let message_bytes (m : Machine.t) ~payload = m.msg_header_bytes + payload

let request_bytes (m : Machine.t) ~nreqs =
  m.msg_header_bytes + (nreqs * m.req_entry_bytes)

let update_bytes (m : Machine.t) ~nupdates =
  m.msg_header_bytes + (nupdates * m.update_entry_bytes)

let reply_bytes (m : Machine.t) ~payload ~nreqs =
  m.msg_header_bytes + (nreqs * m.req_entry_bytes) + payload

let send engine ~src ~dst ~bytes handler =
  let m = Engine.machine engine in
  if bytes < m.Machine.msg_header_bytes then
    invalid_arg "Am.send: message smaller than header";
  Node.charge_comm src m.Machine.send_overhead_ns;
  src.Node.msgs_sent <- src.Node.msgs_sent + 1;
  src.Node.bytes_sent <- src.Node.bytes_sent + bytes;
  let arrival =
    if m.Machine.ingress_serialized then begin
      (* Each NIC moves one message at a time: the message first drains
         through the sender's egress link, crosses the wire, then drains
         through the destination's ingress link. *)
      let ser = int_of_float (ceil (float_of_int bytes *. m.Machine.ns_per_byte)) in
      let out_start = max src.Node.clock src.Node.out_link_free_at in
      let out_done = out_start + ser in
      src.Node.out_link_free_at <- out_done;
      let d = Engine.node engine dst in
      let in_start = max (out_done + m.Machine.wire_latency_ns) d.Node.link_free_at in
      let finish = in_start + ser in
      d.Node.link_free_at <- finish;
      finish
    end
    else src.Node.clock + Machine.transfer_ns m ~bytes
  in
  Engine.post engine ~time:arrival ~node:dst (fun () ->
      let d = Engine.node engine dst in
      Node.charge_comm d m.Machine.recv_overhead_ns;
      d.Node.msgs_recv <- d.Node.msgs_recv + 1;
      d.Node.bytes_recv <- d.Node.bytes_recv + bytes;
      handler d)

(** Deterministic reduction-tree routing for fan-in aggregation.

    When many sources accumulate into one owner, flat per-destination
    batches make the owner's link the bottleneck: every source sends its
    own message to the same node. Routing the batches along a binomial
    tree rooted at the destination lets intermediate nodes merge entries
    bound for the same target before forwarding — each (pointer, field)
    slot then crosses each tree edge at most once per flush wave instead
    of once per source.

    The tree is the standard binomial reduction shape (cf. optimal
    tree-layout constructions, PAPERS.md): node [src] has rank
    [(src - dst) mod nnodes] in the tree rooted at [dst], and the parent
    of rank [r] clears [r]'s lowest set bit, so the depth is at most
    [ceil(log2 nnodes)]. Everything is a pure function of
    [(nnodes, src, dst)] — no randomness, no state — which is what keeps
    routed runs deterministic and replayable. *)

val rank : nnodes:int -> src:int -> dst:int -> int
(** [rank ~nnodes ~src ~dst] is [src]'s rank in the reduction tree rooted
    at [dst]; rank 0 is the destination itself. Raises [Invalid_argument]
    on out-of-range nodes. *)

val next_hop : nnodes:int -> src:int -> dst:int -> int
(** The next node on [src]'s path toward [dst] (its parent in the tree).
    Equals [dst] on the final hop. Raises [Invalid_argument] when
    [src = dst] (the destination has no parent). *)

val hops : nnodes:int -> src:int -> dst:int -> int
(** Path length from [src] to [dst] along parent links: the popcount of
    [src]'s rank, hence at most [ceil(log2 nnodes)]; 0 iff [src = dst]. *)

type 'a t = {
  buffers : 'a list array;  (* reversed: newest first *)
  counts : int array;
  max_batch : int;
  flush : dst:int -> 'a list -> unit;
  mutable pending : int;
  mutable flushes : int;
  mutable max_batch_seen : int;
  mutable observer : (dst:int -> int -> unit) option;
}

let create ~ndest ~max_batch ~flush =
  if ndest <= 0 then invalid_arg "Aggregator.create: ndest must be positive";
  if max_batch <= 0 then invalid_arg "Aggregator.create: max_batch must be positive";
  {
    buffers = Array.make ndest [];
    counts = Array.make ndest 0;
    max_batch;
    flush;
    pending = 0;
    flushes = 0;
    max_batch_seen = 0;
    observer = None;
  }

(* `buffers` is mutated *before* calling the user's flush callback so that a
   callback that re-enters [add] (e.g. a handler spawning new requests)
   observes a consistent state. *)
let flush_dst t dst =
  let n = t.counts.(dst) in
  if n > 0 then begin
    let batch = List.rev t.buffers.(dst) in
    t.buffers.(dst) <- [];
    t.counts.(dst) <- 0;
    t.pending <- t.pending - n;
    t.flushes <- t.flushes + 1;
    if n > t.max_batch_seen then t.max_batch_seen <- n;
    (match t.observer with Some f -> f ~dst n | None -> ());
    t.flush ~dst batch
  end

let add t ~dst x =
  t.buffers.(dst) <- x :: t.buffers.(dst);
  t.counts.(dst) <- t.counts.(dst) + 1;
  t.pending <- t.pending + 1;
  if t.counts.(dst) >= t.max_batch then flush_dst t dst

(* Bulk injection, for routed aggregation: a relay node re-injects a batch
   it merged en route. Defined as adding each entry in order — an eager
   flush fires at every [max_batch] boundary mid-list, exactly as if the
   entries had arrived one by one — so [flushes] and [max_batch_seen]
   account en-route merged entries identically to directly-added ones
   (the equivalence the model-based qcheck pins). *)
let add_all t ~dst xs = List.iter (fun x -> add t ~dst x) xs

let flush_all t =
  for dst = 0 to Array.length t.buffers - 1 do
    flush_dst t dst
  done

let clear t =
  let n = t.pending in
  Array.fill t.buffers 0 (Array.length t.buffers) [];
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.pending <- 0;
  n

let pending t = t.pending

let pending_for t ~dst =
  if dst < 0 || dst >= Array.length t.counts then
    invalid_arg "Aggregator.pending_for: bad destination";
  t.counts.(dst)

let flushes t = t.flushes
let max_batch_seen t = t.max_batch_seen
let set_observer t f = t.observer <- f

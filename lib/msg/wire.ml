(* Checksum-fenced wire framing for the corruption fault class.

   The simulator never serializes application payloads — [bytes] is an
   accounting quantity — so a frame is a deterministic materialization of
   the envelope: the header fields packed little-endian, a synthetic
   payload image derived from them (capped at [max_payload_image] so
   framing cost stays O(1) per transmission however large the bulk
   reply), and a CRC-32 trailer sealed at first wire-out. The image is a
   pure function of the header, which is all the fault class needs: a
   seeded bit-flip anywhere in the frame must be detectable at NIC
   delivery, and CRC-32 guarantees detection of any single-bit error. *)

let header_fields = 5 (* src, dst, seq, inc, bytes *)
let field_bytes = 8
let crc_bytes = 4
let max_payload_image = 64

let put_u64 b ~pos v =
  for i = 0 to 7 do
    Bytes.unsafe_set b (pos + i) (Char.unsafe_chr ((v lsr (8 * i)) land 0xFF))
  done

(* splitmix64-style finalizer over native ints: cheap, and every header
   bit diffuses into every image byte. *)
let mix z =
  let z = (z lxor (z lsr 30)) * 0x4be98134a5976fd3 in
  let z = (z lxor (z lsr 27)) * 0x3bd4b2cfa9a275ab in
  z lxor (z lsr 31)

let frame ~src ~dst ~seq ~inc ~bytes =
  let image = min (max 0 bytes) max_payload_image in
  let total = (header_fields * field_bytes) + image + crc_bytes in
  let b = Bytes.create total in
  put_u64 b ~pos:0 src;
  put_u64 b ~pos:8 dst;
  put_u64 b ~pos:16 seq;
  put_u64 b ~pos:24 inc;
  put_u64 b ~pos:32 bytes;
  let seed = mix (src lxor (dst lsl 16) lxor (seq lsl 32) lxor (inc lsl 48) lxor bytes) in
  for i = 0 to image - 1 do
    Bytes.unsafe_set b
      (40 + i)
      (Char.unsafe_chr (mix (seed + i) land 0xFF))
  done;
  (* CRC field starts zeroed ([Bytes.create] contents are unspecified);
     [seal] fills it. *)
  Bytes.set b (total - 4) '\000';
  Bytes.set b (total - 3) '\000';
  Bytes.set b (total - 2) '\000';
  Bytes.set b (total - 1) '\000';
  b

let body_len b = Bytes.length b - crc_bytes

let seal b =
  let crc = Dpa_util.Crc.digest_sub b ~pos:0 ~len:(body_len b) in
  let base = body_len b in
  for i = 0 to crc_bytes - 1 do
    Bytes.set b (base + i) (Char.chr ((crc lsr (8 * i)) land 0xFF))
  done

let stored_crc b =
  let base = body_len b in
  let v = ref 0 in
  for i = crc_bytes - 1 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get b (base + i))
  done;
  !v

let verify b =
  Bytes.length b > crc_bytes
  && Dpa_util.Crc.digest_sub b ~pos:0 ~len:(body_len b) = stored_crc b

let bits b = 8 * Bytes.length b

let flip_bit b k =
  let nbits = bits b in
  if nbits = 0 then invalid_arg "Wire.flip_bit: empty frame";
  let k = ((k mod nbits) + nbits) mod nbits in
  let byte = k / 8 and bit = k mod 8 in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)))

(** Jacobson–Karels round-trip estimator (integer, deterministic).

    The TCP-style filter pair: [srtt] is an EWMA of observed round trips
    (gain 1/8), [rttvar] an EWMA of the absolute deviation (gain 1/4),
    and the suggested timeout is [srtt + 4 * rttvar], floored at the
    smallest round trip ever measured so the timeout can never undercut
    the physically possible minimum. All arithmetic is integer
    nanoseconds: replaying the same sample sequence reproduces the same
    estimates bit-for-bit. *)

type t

val create : unit -> t

val reset : t -> unit
(** Forget every sample, returning the filter to its freshly-created
    state. Used when a link's endpoint crash-restarts: the pre-crash
    samples describe a conversation history the new incarnation never
    had, so the filter re-converges from scratch (paying the conservative
    fallback timeout until the first new sample). *)

val observe : t -> int -> unit
(** Feed one measured round trip (ns). Samples are clamped to [>= 1]. *)

val samples : t -> int
(** Number of samples observed. *)

val srtt_ns : t -> int
(** Smoothed round trip; [0] before the first sample, positive after. *)

val rttvar_ns : t -> int
(** Smoothed absolute deviation; non-negative. *)

val min_ns : t -> int
(** Smallest round trip observed ([max_int] before the first sample). *)

val estimate_ns : t -> int
(** [srtt + 4 * max 1 rttvar]: the raw Jacobson–Karels timeout. *)

val rto_ns : t -> fallback:int -> int
(** Recommended timeout: [fallback] until the first sample, then
    [max min_ns estimate_ns] — never below the measured round-trip
    floor. *)

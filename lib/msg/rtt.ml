(* Jacobson–Karels round-trip estimation in deterministic integer
   arithmetic. The classic TCP filter pair: an EWMA of the round trip
   (gain 1/8) and an EWMA of its absolute deviation (gain 1/4), combined
   as [srtt + 4 * rttvar] for the retransmission timeout. Everything is
   plain integer nanoseconds so replays are bit-exact. *)

type t = {
  mutable srtt_ns : int;
  mutable rttvar_ns : int;
  mutable samples : int;
  mutable min_ns : int;  (* smallest round trip ever measured *)
  mutable max_ns : int;
}

let create () =
  { srtt_ns = 0; rttvar_ns = 0; samples = 0; min_ns = max_int; max_ns = 0 }

let reset t =
  t.srtt_ns <- 0;
  t.rttvar_ns <- 0;
  t.samples <- 0;
  t.min_ns <- max_int;
  t.max_ns <- 0

let samples t = t.samples

let srtt_ns t = t.srtt_ns

let rttvar_ns t = t.rttvar_ns

let min_ns t = t.min_ns

let observe t r =
  (* Clamp at 1 ns: a zero sample would let srtt decay to 0 and arm
     degenerate timeouts. *)
  let r = max r 1 in
  if r < t.min_ns then t.min_ns <- r;
  if r > t.max_ns then t.max_ns <- r;
  if t.samples = 0 then begin
    (* RFC 6298 initialization: first sample seeds both filters. *)
    t.srtt_ns <- r;
    t.rttvar_ns <- r / 2
  end
  else begin
    let err = r - t.srtt_ns in
    t.rttvar_ns <- t.rttvar_ns - (t.rttvar_ns / 4) + (abs err / 4);
    t.srtt_ns <- t.srtt_ns + (err / 8)
  end;
  t.samples <- t.samples + 1

let estimate_ns t = t.srtt_ns + (4 * max 1 t.rttvar_ns)

let rto_ns t ~fallback =
  if t.samples = 0 then fallback else max t.min_ns (estimate_ns t)

(** Active-message layer in the style of Illinois Fast Messages.

    [send] charges the sender its injection overhead, computes the arrival
    time from the wire latency and serialization of [bytes], and schedules
    the handler on the destination node, where the extraction overhead is
    charged before the handler body runs. Handlers run at
    [max(arrival, destination clock)] — a busy receiver polls the message
    later, exactly the behaviour FM's poll-based extraction has. *)

open Dpa_sim

val send :
  Engine.t -> src:Node.t -> dst:int -> bytes:int -> (Node.t -> unit) -> unit
(** [send engine ~src ~dst ~bytes handler]. [bytes] must include any header;
    use {!message_bytes} to build it. *)

val message_bytes : Machine.t -> payload:int -> int
(** Header plus payload. *)

val request_bytes : Machine.t -> nreqs:int -> int
(** Size of an aggregated read-request message carrying [nreqs] entries. *)

val reply_bytes : Machine.t -> payload:int -> nreqs:int -> int
(** Size of a bulk reply: header, one request-entry echo (token) per object,
    plus the serialized objects themselves ([payload] bytes). *)

val update_bytes : Machine.t -> nupdates:int -> int
(** Size of an aggregated accumulate-update message. *)

(** Active-message layer in the style of Illinois Fast Messages.

    [send] charges the sender its injection overhead, computes the arrival
    time from the wire latency and serialization of [bytes], and schedules
    the handler on the destination node, where the extraction overhead is
    charged before the handler body runs. Handlers run at
    [max(arrival, destination clock)] — a busy receiver polls the message
    later, exactly the behaviour FM's poll-based extraction has.

    {2 Reliable delivery}

    When the engine carries a fault plan ({!Dpa_sim.Engine.fault}), every
    [send] becomes a sequence-numbered envelope: the receiver's NIC
    acknowledges each copy as it arrives on the wire (header-only ack,
    itself unprotected and charged to no node clock — a backlogged
    receiver must not make its acks look lost) and the handler runs only
    for the first copy of a sequence number, while the sender retransmits
    on a timeout that backs off exponentially until the ack lands.
    Handlers therefore run exactly once per [send] on any network the
    plan can express, and with no fault plan installed the protocol does
    not exist — no acks, no timers, no state — so fault-free runs are
    bit-identical to a build without this layer.

    {2 Crash-restart and incarnation fencing}

    A crash window ({!Dpa_sim.Fault.spec}[.crashes]) destroys a node's
    volatile transport state. Every transmission is stamped with the
    destination's {!Dpa_sim.Node.t}[.incarnation] at the moment it is put
    on the wire; a copy arriving after the destination has crash-restarted
    is {e fenced} — its bytes are counted but no ack is sent and no
    handler runs, so responses and requests addressed to a dead
    incarnation can never act on the new one's state. Retransmission
    attempts re-stamp, so a fenced conversation completes on the first
    attempt after the restart. {!on_crash} performs the state loss itself;
    the exactly-once guarantee then holds {e per incarnation}, and
    cross-crash effect deduplication is the application layer's job (the
    runtime keeps a durable applied-journal for accumulate batches — see
    DESIGN.md §13).

    {2 Checksum fencing}

    When the fault plan carries a positive [corrupt] rate, every physical
    copy — data and ack alike — is materialized as a checksum-fenced frame
    ({!Wire}): sealed with a CRC-32 at wire-out, verified at the
    destination NIC. A copy the plan corrupts (one seeded bit flipped)
    fails verification and is counted and dropped {e wire-silently}: its
    bytes land on the NIC but no ack is generated and no handler runs, so
    a corrupted copy is indistinguishable from a loss to the sender and
    the ordinary retransmission machinery recovers it. A corrupted ack
    leaves the envelope pending; a duplicate ack or one spurious
    retransmit (absorbed by the dedup table) completes it. With
    [corrupt = 0] no frame is ever built and the run replays
    bit-identically to a build without the integrity layer. *)

open Dpa_sim

val send :
  Engine.t -> src:Node.t -> dst:int -> bytes:int -> (Node.t -> unit) -> unit
(** [send engine ~src ~dst ~bytes handler]. [bytes] must include any header;
    use {!message_bytes} to build it. *)

val message_bytes : Machine.t -> payload:int -> int
(** Header plus payload. *)

val request_bytes : Machine.t -> nreqs:int -> int
(** Size of an aggregated read-request message carrying [nreqs] entries. *)

val reply_bytes : Machine.t -> payload:int -> nreqs:int -> int
(** Size of a bulk reply: header, one request-entry echo (token) per object,
    plus the serialized objects themselves ([payload] bytes). *)

val update_bytes : Machine.t -> nupdates:int -> int
(** Size of an aggregated accumulate-update message. *)

type stats = {
  in_flight : int;  (** envelopes sent but not yet acknowledged *)
  retransmits : int;  (** timeout-driven re-sends *)
  retransmit_bytes : int;  (** payload bytes re-sent *)
  acks : int;  (** acknowledgements injected by receivers *)
  dups_suppressed : int;  (** duplicate copies discarded by the dedup table *)
  seen_entries : int;  (** live dedup entries across all receivers *)
  pruned : int;  (** dedup entries reclaimed by {!prune_seen} so far *)
  fenced : int;  (** copies rejected because addressed to a dead incarnation *)
  crash_wiped : int;  (** unacked envelopes destroyed by their sender's crash *)
  corrupt_dropped : int;
      (** copies (data or ack) whose frame failed CRC verification at the
          destination NIC and were dropped wire-silently *)
}

val stats : Engine.t -> stats option
(** Reliable-transport counters; [None] until the first [send] under a
    fault plan instantiates the protocol state. *)

val corrupt_dropped_per_node : Engine.t -> int array
(** Per-node breakdown of [stats.corrupt_dropped] — how many corrupted
    copies each node's NIC fenced. The runtime snapshots this at phase
    boundaries to attribute corruption drops to phases in the profile's
    integrity table. Empty array without protocol state. *)

val in_flight : Engine.t -> int
(** Unacknowledged envelopes right now ([0] without protocol state). The
    runtime's phase barrier certifies [in_flight = 0] before clearing its
    alignment structures. *)

val prune_seen : Engine.t -> int
(** Reclaim the receiver dedup tables, returning the number of entries
    dropped. Only legal at a quiescent point — the engine's event queue
    drained and no envelope unacknowledged (raises [Invalid_argument]
    otherwise): then every delivered copy has already run and no pruned
    sequence number can ever arrive again, so exactly-once execution is
    preserved. The runtimes call this at their phase barrier; without it
    the tables grow by one entry per envelope ever sent. No-op ([0])
    without protocol state. *)

val on_crash : Engine.t -> node:int -> int
(** Destroy the volatile transport state of [node] at the instant it
    crashes: its unacknowledged envelopes (returned count) vanish from the
    retransmit buffer, its receiver dedup table is forgotten, and the RTT
    filters of every link touching it are {!Rtt.reset} so they re-converge
    against the restarted node. The caller ({!Dpa.Runtime}) is responsible
    for bumping the node's incarnation first and for re-issuing whatever
    application state still matters. The engine-wide end-to-end filter is
    kept — crash recovery latencies are signal, not noise, for the retry
    wheel. No-op ([0]) without protocol state. *)

(** {2 Round-trip estimation}

    Under [Machine.adaptive_rto] (the default) the retransmission timeout
    is not the constant worst-case formula but a Jacobson–Karels estimate
    fed by ack round trips. Because acks are timestamped at the wire (see
    above), the samples measure network latency, not receiver backlog —
    which is exactly what a retransmission decision needs. Retransmitted
    envelopes never feed the per-link filter (Karn's algorithm). *)

val link_rtt : Engine.t -> src:int -> dst:int -> Rtt.t option
(** The (src, dst) link's ack round-trip estimator, once it has at least
    one sample. [None] without protocol state or samples. *)

val e2e_rto : Engine.t -> fallback:int -> int
(** Timeout base for an end-to-end request timer: twice the estimated
    full-delivery latency (first transmission to acknowledgement,
    retransmission recovery included — one delivery each way), but never
    below [fallback]. Returns [fallback] verbatim until the estimator has
    a sample, so a fault-free-calibrated constant remains the floor. *)

(** Checksum-fenced framing of transport envelopes.

    The simulated network carries no real payload bytes, so the corruption
    fault class materializes each physical transmission as a {e frame}: the
    envelope header (src, dst, seq, incarnation, byte count) packed
    little-endian, a deterministic payload image derived from the header
    (capped, so framing cost is O(1) regardless of message size), and a
    CRC-32 trailer ({!Dpa_util.Crc}). {!seal} computes the checksum at
    first wire-out; {!verify} re-computes it at NIC delivery. A frame that
    fails verification models a corrupted copy: the transport counts and
    drops it — no ack, no handler — and the retransmission machinery
    recovers it as a loss (DESIGN.md §13).

    CRC-32 detects every single-bit error, so {!flip_bit} followed by
    {!verify} is [false] for {e any} bit position — the avalanche property
    test/test_integrity.ml checks exhaustively. *)

val frame : src:int -> dst:int -> seq:int -> inc:int -> bytes:int -> Bytes.t
(** Materialize one envelope copy, checksum field zeroed. *)

val seal : Bytes.t -> unit
(** Compute the CRC of everything before the trailer and store it there. *)

val verify : Bytes.t -> bool
(** Recompute and compare the trailer checksum. *)

val bits : Bytes.t -> int
(** Total bits in the frame (header + image + trailer), the range
    corruption draws index into. *)

val flip_bit : Bytes.t -> int -> unit
(** Flip bit [k mod bits] of the frame — the injected wire corruption. *)

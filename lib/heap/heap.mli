(** The distributed global heap: one struct-of-arrays object store per
    node.

    Objects live in flat pools — a [Bigarray] float pool (outside the
    OCaml heap, invisible to the GC) and a packed-integer pointer pool —
    and are named by {!Gptr.t} handles. No per-object record exists;
    field access is index arithmetic through the in-place accessors, and
    {!Obj_repr.t} is materialized only by the copy-out edges {!get} and
    {!deref} (reference code, tests, serialization).

    Local dereference is direct; remote dereference must go through a
    runtime (DPA or a baseline) which models the communication. [deref]
    is the omniscient accessor used by sequential reference code and by
    request handlers at the owner. *)

type t
(** A single node's store. *)

type cluster = t array

type view = Gptr.t
(** A runtime-delivered object view. The simulated wire carries
    accounting bytes, not payload, so a delivered view has always aliased
    the owner's live object — the handle itself is the view. Resolve its
    fields with {!view_float} and friends. *)

val cluster : nnodes:int -> cluster
val node_of : cluster -> int -> t

val alloc : t -> floats:float array -> ptrs:Gptr.t array -> Gptr.t
(** Allocate on this node. The arrays are {e copied} into the node's
    pools; the caller keeps ownership and later mutation of them does not
    affect the heap. (The boxed heap used to adopt the caller's arrays —
    see the copy-semantics tests.) *)

val alloc_raw : t -> nfloats:int -> nptrs:int -> Gptr.t
(** Allocate a zero-filled object ([0.] floats, {!Gptr.nil} pointers)
    without staging caller arrays — the allocation-free path for bulk
    builders, which then fill fields with {!set_float}/{!set_ptr}. *)

val reserve : t -> objs:int -> floats:int -> ptrs:int -> unit
(** Pre-size the node's pools for [objs] more objects, [floats] more
    float fields and [ptrs] more pointer fields, so a bulk build does not
    pay doubling copies. *)

val size : t -> int
(** Number of objects allocated on this node. *)

(** {2 In-place field access (hot paths; no allocation)} *)

val nfloats : t -> Gptr.t -> int
val nptrs : t -> Gptr.t -> int
val get_float : t -> Gptr.t -> int -> float
val set_float : t -> Gptr.t -> int -> float -> unit
val get_ptr : t -> Gptr.t -> int -> Gptr.t
val set_ptr : t -> Gptr.t -> int -> Gptr.t -> unit

val bump_float : t -> Gptr.t -> idx:int -> float -> unit
(** [bump_float t p ~idx v] adds [v] to float field [idx] of a local
    object — the owner-side application of a remote accumulation. Hits
    the float pool in place. *)

val obj_bytes : t -> Gptr.t -> int
(** Serialized size of the object (header + fields), without
    materializing a copy — drives simulated message sizes. *)

(** {2 Raw pool access (innermost loops)}

    A non-inlined float-returning call boxes its result, which an
    interaction kernel pays per field read. [float_base] validates the
    handle once and returns the object's offset into [float_pool]; the
    loop then reads fields as [Bigarray.Array1.get (float_pool h) (base +
    i)] — an unboxed load. The caller owns staying inside the object's
    [nfloats] (the pool bound still traps, but past-the-object indices
    read a neighbour). *)

type fpool = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val float_pool : t -> fpool
val float_base : t -> Gptr.t -> int

(** {2 Cluster-level view accessors (any owner; no allocation)} *)

val view_nfloats : cluster -> view -> int
val view_nptrs : cluster -> view -> int
val view_float : cluster -> view -> int -> float
val view_ptr : cluster -> view -> int -> Gptr.t
val view_bytes : cluster -> view -> int

(** {2 Copy-out edges} *)

val get : t -> Gptr.t -> Obj_repr.t
(** Local dereference, materialized as a fresh copy-out {!Obj_repr.t}.
    Raises [Invalid_argument] if the pointer is not owned by this node,
    is nil, or dangles. Mutating the copy does not touch the heap. *)

val deref : cluster -> Gptr.t -> Obj_repr.t
(** Dereference anywhere (no communication modelled — for reference code
    and tests). Copy-out, like {!get}. *)

(** {2 Accounting} *)

val total_objects : cluster -> int
val total_bytes : cluster -> int

(** The distributed global heap: one object store per node.

    Allocation returns a {!Gptr.t} naming the object. Local dereference is
    direct; remote dereference must go through a runtime (DPA or a baseline)
    which models the communication. [deref] is the omniscient accessor used
    by sequential reference code and by request handlers at the owner. *)

type t
(** A single node's store. *)

type cluster = t array

val cluster : nnodes:int -> cluster
val node_of : cluster -> int -> t

val alloc : t -> floats:float array -> ptrs:Gptr.t array -> Gptr.t
(** Allocate on this node; the arrays are owned by the heap afterwards. *)

val size : t -> int
(** Number of objects allocated on this node. *)

val get : t -> Gptr.t -> Obj_repr.t
(** Local dereference. Raises [Invalid_argument] if the pointer is not owned
    by this node or is nil. *)

val deref : cluster -> Gptr.t -> Obj_repr.t
(** Dereference anywhere (no communication modelled — for reference code and
    owner-side request service). *)

val bump_float : t -> Gptr.t -> idx:int -> float -> unit
(** [bump_float t p ~idx v] adds [v] to float field [idx] of a local
    object — the owner-side application of a remote accumulation. *)

val total_objects : cluster -> int
val total_bytes : cluster -> int

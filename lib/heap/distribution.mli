(** Helpers for distributing work items and objects across nodes. *)

val block_owner : nitems:int -> nnodes:int -> int -> int
(** [block_owner ~nitems ~nnodes i] is the owner of item [i] under a
    contiguous block distribution (the first [nitems mod nnodes] blocks hold
    one extra item). *)

val block_range : nitems:int -> nnodes:int -> int -> int * int
(** [block_range ~nitems ~nnodes node] is the [(first, count)] of the items
    owned by [node]. The ranges partition [0 .. nitems-1]. *)

val round_robin_owner : nnodes:int -> int -> int

val weighted_ranges : weights:int array -> nnodes:int -> (int * int) array
(** [weighted_ranges ~weights ~nnodes] cuts the item sequence into [nnodes]
    contiguous [(first, count)] ranges of roughly equal total weight
    (greedy prefix cuts at multiples of [total/nnodes]). The ranges
    partition the items; weights must be non-negative. *)

val owner_of_ranges : (int * int) array -> int array
(** Expand ranges into an item -> owner map. *)

(** Helpers for distributing work items and objects across nodes. *)

val block_owner : nitems:int -> nnodes:int -> int -> int
(** [block_owner ~nitems ~nnodes i] is the owner of item [i] under a
    contiguous block distribution (the first [nitems mod nnodes] blocks hold
    one extra item). *)

val block_range : nitems:int -> nnodes:int -> int -> int * int
(** [block_range ~nitems ~nnodes node] is the [(first, count)] of the items
    owned by [node]. The ranges partition [0 .. nitems-1]. *)

val round_robin_owner : nnodes:int -> int -> int

val weighted_ranges : weights:int array -> nnodes:int -> (int * int) array
(** [weighted_ranges ~weights ~nnodes] cuts the item sequence into [nnodes]
    contiguous [(first, count)] ranges of roughly equal total weight. Each
    cut targets an equal share of the weight {e remaining} for the nodes
    still to be served, taking the crossing item only when that lands
    nearer the target, so one dominant weight skews only its own range
    (the old prefix-target rule starved every node after it). The ranges
    partition the items; no range is empty while unassigned items remain
    (empty ranges appear only when there are fewer items than nodes, at
    the tail); a node's weight never exceeds the even share by more than
    the largest single weight. Weights must be non-negative; all-zero
    weights degrade to an even count split. *)

val owner_of_ranges : (int * int) array -> int array
(** Expand ranges into an item -> owner map. *)

(** Global pointers: the names of objects in the distributed heap.

    A global pointer is an (owner node, slot) pair. It is the unit the DPA
    runtime labels threads with, maps in [M], and renames in the alignment
    buffer [D]. *)

type t = { node : int; slot : int } [@@deriving show, eq, ord]

val nil : t
val is_nil : t -> bool
val make : node:int -> slot:int -> t
val hash : t -> int

val bytes : int
(** Serialized size of a pointer (8 bytes, as on the T3D). *)

module Tbl : Hashtbl.S with type key = t

(** Global pointers: the names of objects in the distributed heap.

    A global pointer is an (owner node, slot) pair packed into a single
    immediate integer, so pointers are unboxed wherever they are stored —
    flat pointer pools, scheduler rings, hashtable keys. It is the unit the
    DPA runtime labels threads with, maps in [M], and renames in the
    alignment buffer [D]. *)

type t = private int

val nil : t
val is_nil : t -> bool
val make : node:int -> slot:int -> t

val node : t -> int
(** Owner node id; [-1] for {!nil}. *)

val slot : t -> int
(** Slot on the owner node; [-1] for {!nil}. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Lexicographic on (node, slot); {!nil} sorts first. *)

val hash : t -> int
val pp : Format.formatter -> t -> unit
val show : t -> string

val bytes : int
(** Serialized size of a pointer (8 bytes, as on the T3D). *)

module Tbl : Hashtbl.S with type key = t

type t = { floats : float array; ptrs : Gptr.t array }

let make ~floats ~ptrs = { floats; ptrs }

let empty = { floats = [||]; ptrs = [||] }

let header_bytes = 8

let bytes t =
  header_bytes + (8 * Array.length t.floats) + (Gptr.bytes * Array.length t.ptrs)

let copy t = { floats = Array.copy t.floats; ptrs = Array.copy t.ptrs }

let pp ppf t =
  Format.fprintf ppf "@[<h>{floats=[%a]; ptrs=[%a]}@]"
    Fmt.(array ~sep:(any ";") float)
    t.floats
    Fmt.(array ~sep:(any ";") (using Gptr.show string))
    t.ptrs

type t = { node : int; objects : Obj_repr.t Dpa_util.Dynarray.t }

type cluster = t array

let cluster ~nnodes =
  if nnodes <= 0 then invalid_arg "Heap.cluster: nnodes must be positive";
  Array.init nnodes (fun node ->
      { node; objects = Dpa_util.Dynarray.create () })

let node_of c i = c.(i)

let alloc t ~floats ~ptrs =
  let slot = Dpa_util.Dynarray.add t.objects (Obj_repr.make ~floats ~ptrs) in
  Gptr.make ~node:t.node ~slot

let size t = Dpa_util.Dynarray.length t.objects

let get t (p : Gptr.t) =
  if Gptr.is_nil p then invalid_arg "Heap.get: nil pointer";
  if p.node <> t.node then invalid_arg "Heap.get: pointer owned by another node";
  Dpa_util.Dynarray.get t.objects p.slot

let deref c (p : Gptr.t) =
  if Gptr.is_nil p then invalid_arg "Heap.deref: nil pointer";
  get c.(p.node) p

let bump_float t p ~idx v =
  let o = get t p in
  if idx < 0 || idx >= Array.length o.Obj_repr.floats then
    invalid_arg "Heap.bump_float: field out of range";
  o.Obj_repr.floats.(idx) <- o.Obj_repr.floats.(idx) +. v

let total_objects c = Array.fold_left (fun acc t -> acc + size t) 0 c

let total_bytes c =
  Array.fold_left
    (fun acc t ->
      let sum = ref 0 in
      Dpa_util.Dynarray.iter (fun o -> sum := !sum + Obj_repr.bytes o) t.objects;
      acc + !sum)
    0 c

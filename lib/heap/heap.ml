(* Struct-of-arrays object store. Each node backs its objects with one
   float pool (a Bigarray, so payload floats live outside the OCaml heap
   and are never scanned by the GC) and one flat pointer pool (packed
   {!Gptr.t} integers). An object is the triple (fbase, pbase, nf, np)
   held in the [meta] array at stride 4; a {!Gptr.t} is an index into
   [meta]. Field access is pure arithmetic — no per-object record exists,
   so a million-object heap costs the GC nothing.

   {!Obj_repr.t} survives only as a copy-out view materialized at API
   edges ([get]/[deref]); the runtime's hot paths use the in-place
   accessors below. *)

type fpool =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  node : int;
  mutable nobjs : int;
  mutable meta : int array;  (* stride 4: fbase, pbase, nfloats, nptrs *)
  mutable fpool : fpool;
  mutable flen : int;  (* floats in use *)
  mutable ppool : Gptr.t array;
  mutable plen : int;  (* pointers in use *)
}

type cluster = t array

type view = Gptr.t

let meta_stride = 4

let make_fpool n = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

let create_node node =
  {
    node;
    nobjs = 0;
    meta = Array.make (16 * meta_stride) 0;
    fpool = make_fpool 64;
    flen = 0;
    ppool = Array.make 16 Gptr.nil;
    plen = 0;
  }

let cluster ~nnodes =
  if nnodes <= 0 then invalid_arg "Heap.cluster: nnodes must be positive";
  Array.init nnodes create_node

let node_of c i = c.(i)

let size t = t.nobjs

(* --- pool growth -------------------------------------------------------- *)

let grow_cap cap need =
  let c = ref (max cap 16) in
  while !c < need do
    c := !c * 2
  done;
  !c

let ensure_meta t =
  let need = (t.nobjs + 1) * meta_stride in
  if need > Array.length t.meta then begin
    let m = Array.make (grow_cap (Array.length t.meta) need) 0 in
    Array.blit t.meta 0 m 0 (t.nobjs * meta_stride);
    t.meta <- m
  end

let ensure_floats t extra =
  let need = t.flen + extra in
  if need > Bigarray.Array1.dim t.fpool then begin
    let p = make_fpool (grow_cap (Bigarray.Array1.dim t.fpool) need) in
    Bigarray.Array1.blit t.fpool (Bigarray.Array1.sub p 0 (Bigarray.Array1.dim t.fpool));
    t.fpool <- p
  end

let ensure_ptrs t extra =
  let need = t.plen + extra in
  if need > Array.length t.ppool then begin
    let p = Array.make (grow_cap (Array.length t.ppool) need) Gptr.nil in
    Array.blit t.ppool 0 p 0 t.plen;
    t.ppool <- p
  end

let reserve t ~objs ~floats ~ptrs =
  if objs < 0 || floats < 0 || ptrs < 0 then
    invalid_arg "Heap.reserve: negative size";
  if objs > 0 then begin
    let need = (t.nobjs + objs) * meta_stride in
    if need > Array.length t.meta then begin
      let m = Array.make (grow_cap (Array.length t.meta) need) 0 in
      Array.blit t.meta 0 m 0 (t.nobjs * meta_stride);
      t.meta <- m
    end
  end;
  if floats > 0 then ensure_floats t floats;
  if ptrs > 0 then ensure_ptrs t ptrs

(* --- allocation --------------------------------------------------------- *)

let alloc_raw t ~nfloats ~nptrs =
  if nfloats < 0 || nptrs < 0 then invalid_arg "Heap.alloc_raw: negative size";
  ensure_meta t;
  ensure_floats t nfloats;
  ensure_ptrs t nptrs;
  let slot = t.nobjs in
  let m = slot * meta_stride in
  t.meta.(m) <- t.flen;
  t.meta.(m + 1) <- t.plen;
  t.meta.(m + 2) <- nfloats;
  t.meta.(m + 3) <- nptrs;
  Bigarray.Array1.fill (Bigarray.Array1.sub t.fpool t.flen nfloats) 0.;
  Array.fill t.ppool t.plen nptrs Gptr.nil;
  t.flen <- t.flen + nfloats;
  t.plen <- t.plen + nptrs;
  t.nobjs <- slot + 1;
  Gptr.make ~node:t.node ~slot

let alloc t ~floats ~ptrs =
  let nfloats = Array.length floats and nptrs = Array.length ptrs in
  ensure_meta t;
  ensure_floats t nfloats;
  ensure_ptrs t nptrs;
  let slot = t.nobjs in
  let m = slot * meta_stride in
  t.meta.(m) <- t.flen;
  t.meta.(m + 1) <- t.plen;
  t.meta.(m + 2) <- nfloats;
  t.meta.(m + 3) <- nptrs;
  for i = 0 to nfloats - 1 do
    Bigarray.Array1.set t.fpool (t.flen + i) floats.(i)
  done;
  Array.blit ptrs 0 t.ppool t.plen nptrs;
  t.flen <- t.flen + nfloats;
  t.plen <- t.plen + nptrs;
  t.nobjs <- slot + 1;
  Gptr.make ~node:t.node ~slot

(* --- handle resolution -------------------------------------------------- *)

let check t (p : Gptr.t) name =
  if Gptr.is_nil p then invalid_arg (name ^ ": nil pointer");
  if Gptr.node p <> t.node then
    invalid_arg (name ^ ": pointer owned by another node");
  let slot = Gptr.slot p in
  if slot >= t.nobjs then invalid_arg (name ^ ": dangling slot");
  slot * meta_stride

let nfloats t p = t.meta.(check t p "Heap.nfloats" + 2)
let nptrs t p = t.meta.(check t p "Heap.nptrs" + 3)

let get_float t p i =
  let m = check t p "Heap.get_float" in
  if i < 0 || i >= t.meta.(m + 2) then
    invalid_arg "Heap.get_float: field out of range";
  Bigarray.Array1.get t.fpool (t.meta.(m) + i)

let set_float t p i v =
  let m = check t p "Heap.set_float" in
  if i < 0 || i >= t.meta.(m + 2) then
    invalid_arg "Heap.set_float: field out of range";
  Bigarray.Array1.set t.fpool (t.meta.(m) + i) v

let get_ptr t p i =
  let m = check t p "Heap.get_ptr" in
  if i < 0 || i >= t.meta.(m + 3) then
    invalid_arg "Heap.get_ptr: field out of range";
  t.ppool.(t.meta.(m + 1) + i)

let set_ptr t p i v =
  let m = check t p "Heap.set_ptr" in
  if i < 0 || i >= t.meta.(m + 3) then
    invalid_arg "Heap.set_ptr: field out of range";
  t.ppool.(t.meta.(m + 1) + i) <- v

let bump_float t p ~idx v =
  let m = check t p "Heap.bump_float" in
  if idx < 0 || idx >= t.meta.(m + 2) then
    invalid_arg "Heap.bump_float: field out of range";
  let o = t.meta.(m) + idx in
  Bigarray.Array1.set t.fpool o (Bigarray.Array1.get t.fpool o +. v)

(* Raw pool access for innermost loops. A float-returning call that the
   compiler does not inline boxes its result; handing the loop the pool
   and the object's base index keeps every field read an unboxed Bigarray
   load. The handle is validated once here, not per field. *)
let float_pool t = t.fpool
let float_base t p = t.meta.(check t p "Heap.float_base")

let obj_bytes t p =
  let m = check t p "Heap.obj_bytes" in
  Obj_repr.header_bytes + (8 * t.meta.(m + 2)) + (Gptr.bytes * t.meta.(m + 3))

(* --- cluster-level view accessors --------------------------------------- *)

(* A view is just the pointer itself: remote fetches in the simulator carry
   accounting bytes, not payload, so a delivered "copy" has always aliased
   the owner's live object. The accessors resolve through the owning
   node's pools — pure arithmetic, no allocation. *)

let view_nfloats c (v : view) = nfloats c.(Gptr.node v) v
let view_nptrs c (v : view) = nptrs c.(Gptr.node v) v
let view_float c (v : view) i = get_float c.(Gptr.node v) v i
let view_ptr c (v : view) i = get_ptr c.(Gptr.node v) v i
let view_bytes c (v : view) = obj_bytes c.(Gptr.node v) v

(* --- copy-out views ------------------------------------------------------ *)

let get t (p : Gptr.t) =
  let m = check t p "Heap.get" in
  let fbase = t.meta.(m) and pbase = t.meta.(m + 1) in
  let nf = t.meta.(m + 2) and np = t.meta.(m + 3) in
  Obj_repr.make
    ~floats:(Array.init nf (fun i -> Bigarray.Array1.get t.fpool (fbase + i)))
    ~ptrs:(Array.sub t.ppool pbase np)

let deref c (p : Gptr.t) =
  if Gptr.is_nil p then invalid_arg "Heap.deref: nil pointer";
  get c.(Gptr.node p) p

(* --- accounting ---------------------------------------------------------- *)

let total_objects c = Array.fold_left (fun acc t -> acc + size t) 0 c

let total_bytes c =
  Array.fold_left
    (fun acc t ->
      acc
      + (Obj_repr.header_bytes * t.nobjs)
      + (8 * t.flen)
      + (Gptr.bytes * t.plen))
    0 c

type t = { node : int; slot : int } [@@deriving show, eq, ord]

let nil = { node = -1; slot = -1 }

let is_nil t = t.node < 0

let make ~node ~slot =
  if node < 0 || slot < 0 then invalid_arg "Gptr.make: negative component";
  { node; slot }

let hash t = (t.node * 0x9E3779B1) lxor t.slot

let bytes = 8

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

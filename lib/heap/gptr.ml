(* A global pointer packed into one immediate integer:

     [(node lsl slot_bits) lor slot]      for a live pointer
     [-1]                                 for nil

   Packing keeps pointers unboxed everywhere they travel — in the flat
   heap's pointer pools, in the runtime's ready ring, in hashtable keys —
   which is what makes the per-access paths allocation-free. 22 bits of
   node (4M nodes) and 40 bits of slot (1T objects per node) fit any
   configuration the simulator can hold.

   The integer order coincides with the old lexicographic (node, slot)
   order, nil first, so sorts over pointers are unchanged. *)

type t = int

let slot_bits = 40
let slot_mask = (1 lsl slot_bits) - 1

let nil = -1

let is_nil t = t < 0

let make ~node ~slot =
  if node < 0 || slot < 0 then invalid_arg "Gptr.make: negative component";
  if slot > slot_mask then invalid_arg "Gptr.make: slot out of range";
  (node lsl slot_bits) lor slot

(* Arithmetic shift: nil (-1) keeps its historical node/slot of -1. *)
let node t = t asr slot_bits
let slot t = if t < 0 then -1 else t land slot_mask

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let pp ppf t =
  if is_nil t then Format.fprintf ppf "nil"
  else Format.fprintf ppf "%d:%d" (node t) (slot t)

let show t = Format.asprintf "%a" pp t

let hash (t : t) = (t * 0x9E3779B1) land max_int

let bytes = 8

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

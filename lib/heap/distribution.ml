let check ~nitems ~nnodes =
  if nitems < 0 then invalid_arg "Distribution: negative nitems";
  if nnodes <= 0 then invalid_arg "Distribution: nnodes must be positive"

let block_range ~nitems ~nnodes node =
  check ~nitems ~nnodes;
  if node < 0 || node >= nnodes then invalid_arg "Distribution: bad node";
  let base = nitems / nnodes and extra = nitems mod nnodes in
  let first = (node * base) + min node extra in
  let count = base + if node < extra then 1 else 0 in
  (first, count)

let block_owner ~nitems ~nnodes i =
  check ~nitems ~nnodes;
  if i < 0 || i >= nitems then invalid_arg "Distribution: bad item";
  let base = nitems / nnodes and extra = nitems mod nnodes in
  (* Items [0, extra*(base+1)) live in the enlarged blocks. *)
  let cut = extra * (base + 1) in
  if i < cut then i / (base + 1) else extra + ((i - cut) / base)

let round_robin_owner ~nnodes i =
  if nnodes <= 0 then invalid_arg "Distribution: nnodes must be positive";
  i mod nnodes

let weighted_ranges ~weights ~nnodes =
  if nnodes <= 0 then invalid_arg "Distribution: nnodes must be positive";
  let n = Array.length weights in
  Array.iter
    (fun w -> if w < 0 then invalid_arg "Distribution: negative weight")
    weights;
  (* Each weight is lifted to [w * nnodes + 1]: every item carries positive
     weight, so all-zero (or zero-run) inputs degrade to an even count split
     instead of collapsing onto one node, and ties break toward equal
     counts.

     Cuts are re-derived per node against the remaining suffix — the
     target is [remaining_weight / remaining_nodes], not a prefix multiple
     of [total / nnodes]. The old prefix rule went degenerate after one
     dominant weight: every later prefix target was already exceeded, so
     each middle node took exactly one forced item and the leftovers piled
     onto the last node. A suffix target redistributes whatever any node
     over- or under-takes across the nodes still to come.

     The crossing item is taken only when that lands the cut nearer the
     target (nearest-cut in cross-multiplied integer form, no division),
     so a node overshoots its share by at most half the crossing weight. *)
  let lifted i = (weights.(i) * nnodes) + 1 in
  let total' = ref 0 in
  for i = 0 to n - 1 do
    total' := !total' + lifted i
  done;
  let ranges = Array.make nnodes (n, 0) in
  let cum = ref 0 and item = ref 0 in
  for node = 0 to nnodes - 1 do
    let k = nnodes - node in
    let t_rem = !total' - !cum in
    let first = !item in
    let s = ref 0 in
    let stop = ref false in
    while (not !stop) && !item < n do
      let w = lifted !item in
      (* Always take the first item (no empty range while items remain);
         beyond that, keep at least one item per remaining node and stop
         at the nearest-to-target cut. *)
      if !item = first || (!item <= n - k && k * ((2 * !s) + w) <= 2 * t_rem)
      then begin
        s := !s + w;
        incr item
      end
      else stop := true
    done;
    cum := !cum + !s;
    if first < n then ranges.(node) <- (first, !item - first)
  done;
  ranges

let owner_of_ranges ranges =
  let n =
    Array.fold_left (fun acc (_, count) -> acc + count) 0 ranges
  in
  let owner = Array.make n 0 in
  Array.iteri
    (fun node (first, count) ->
      for i = first to first + count - 1 do
        owner.(i) <- node
      done)
    ranges;
  owner

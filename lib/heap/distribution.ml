let check ~nitems ~nnodes =
  if nitems < 0 then invalid_arg "Distribution: negative nitems";
  if nnodes <= 0 then invalid_arg "Distribution: nnodes must be positive"

let block_range ~nitems ~nnodes node =
  check ~nitems ~nnodes;
  if node < 0 || node >= nnodes then invalid_arg "Distribution: bad node";
  let base = nitems / nnodes and extra = nitems mod nnodes in
  let first = (node * base) + min node extra in
  let count = base + if node < extra then 1 else 0 in
  (first, count)

let block_owner ~nitems ~nnodes i =
  check ~nitems ~nnodes;
  if i < 0 || i >= nitems then invalid_arg "Distribution: bad item";
  let base = nitems / nnodes and extra = nitems mod nnodes in
  (* Items [0, extra*(base+1)) live in the enlarged blocks. *)
  let cut = extra * (base + 1) in
  if i < cut then i / (base + 1) else extra + ((i - cut) / base)

let round_robin_owner ~nnodes i =
  if nnodes <= 0 then invalid_arg "Distribution: nnodes must be positive";
  i mod nnodes

let weighted_ranges ~weights ~nnodes =
  if nnodes <= 0 then invalid_arg "Distribution: nnodes must be positive";
  let n = Array.length weights in
  let total =
    Array.fold_left
      (fun acc w ->
        if w < 0 then invalid_arg "Distribution: negative weight";
        acc + w)
      0 weights
  in
  let ranges = Array.make nnodes (0, 0) in
  let cum = ref 0 and item = ref 0 in
  for node = 0 to nnodes - 1 do
    let first = !item in
    (* Take items until the cumulative weight crosses this node's share,
       leaving enough items for the remaining nodes. *)
    let target = total * (node + 1) / nnodes in
    let remaining_nodes = nnodes - node - 1 in
    while !item < n - remaining_nodes && (!cum < target || !item = first) do
      cum := !cum + weights.(!item);
      incr item
    done;
    (* Nodes beyond the item count get empty ranges. *)
    if first >= n then ranges.(node) <- (n, 0)
    else ranges.(node) <- (first, !item - first)
  done;
  (* Any leftover items go to the last node. *)
  (if !item < n then
     let first, count = ranges.(nnodes - 1) in
     ranges.(nnodes - 1) <- (first, count + (n - !item)));
  ranges

let owner_of_ranges ranges =
  let n =
    Array.fold_left (fun acc (_, count) -> acc + count) 0 ranges
  in
  let owner = Array.make n 0 in
  Array.iteri
    (fun node (first, count) ->
      for i = first to first + count - 1 do
        owner.(i) <- node
      done)
    ranges;
  owner

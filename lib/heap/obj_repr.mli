(** Representation of a heap object: a float payload plus global-pointer
    slots. This mirrors the "inline allocated" objects of the paper's ICC++
    codes — a Barnes-Hut cell, for instance, is one object holding its center
    of mass, mass, geometry, and eight child pointers. *)

type t = { floats : float array; ptrs : Gptr.t array }

val make : floats:float array -> ptrs:Gptr.t array -> t
val empty : t

val bytes : t -> int
(** Serialized size: header + 8 bytes per float + {!Gptr.bytes} per
    pointer. This drives simulated message sizes. *)

val header_bytes : int

val copy : t -> t
(** Deep copy, as performed when an object is renamed into the alignment
    buffer of a remote node. *)

val pp : Format.formatter -> t -> unit

(* Critical-path extraction over one phase window of the happens-before
   graph (Causal). The path is the chain that sets the phase wall clock:
   starting from the node with the latest end time, walk backwards always
   taking the latest-ending predecessor, then walk the chain forward with
   a cursor and charge every nanosecond of [end(tail) - start(head)] to
   exactly one bucket — a node's own duration to its segment class, the
   idle gap before a node to the class its incoming edge implies. The
   decomposition is exact by construction: the cursor only moves forward
   and finishes at the tail's end, so the buckets sum to the path length
   with no remainder. *)

let buckets =
  [
    "compute"; "align_wait"; "wire"; "owner_queue"; "retransmit"; "refetch";
    "other";
  ]

let bucket_of_seg = function
  | Causal.Compute -> "compute"
  | Causal.Wire -> "wire"
  | Causal.Retransmit -> "retransmit"
  | Causal.Refetch -> "refetch"
  | Causal.Other -> "other"

(* An idle gap crossed by an edge is time the child spent waiting for a
   reason the edge kind names: program order with nothing to run is the
   alignment wait (the runtime is parked until replies arrive), a
   flight-to-handler gap is queueing behind the destination's CPU, the
   stretch from an original send to its retransmission is the timeout
   wait, and the window between the last pre-crash activity and the
   restart marker is the crash outage. *)
let bucket_of_gap = function
  | Causal.Seq | Causal.Wake -> "align_wait"
  | Causal.Deliver -> "owner_queue"
  | Causal.Send | Causal.Ack -> "wire"
  | Causal.Retry -> "retransmit"
  | Causal.Refetch_start -> "refetch"

let cend (n : Causal.cnode) = n.Causal.cn_ts + n.Causal.cn_dur

(* Deterministic "later" ordering: end time, then id. *)
let later (a : Causal.cnode) b =
  let ea = cend a and eb = cend b in
  if ea <> eb then ea > eb else a.Causal.cn_id > b.Causal.cn_id

let analyze_window c (pm : Causal.phase_meta) =
  let nodes = Causal.window_nodes c in
  let eligible = List.filter (fun n -> n.Causal.cn_on_path) nodes in
  match eligible with
  | [] -> None
  | first :: rest ->
    let by_id = Hashtbl.create 1024 in
    List.iter (fun n -> Hashtbl.replace by_id n.Causal.cn_id n) eligible;
    (* Predecessors of each eligible node, edges between eligible
       endpoints only. *)
    let preds = Hashtbl.create 1024 in
    List.iter
      (fun (e : Causal.cedge) ->
        match
          (Hashtbl.find_opt by_id e.Causal.ce_parent, Hashtbl.mem by_id e.Causal.ce_child)
        with
        | Some p, true ->
          Hashtbl.replace preds e.Causal.ce_child
            ((p, e.Causal.ce_kind)
            :: Option.value ~default:[] (Hashtbl.find_opt preds e.Causal.ce_child))
        | _ -> ())
      (Causal.window_edges c);
    let tail = List.fold_left (fun acc n -> if later n acc then n else acc) first rest in
    let max_span =
      List.fold_left (fun acc n -> max acc n.Causal.cn_dur) 0 eligible
    in
    (* Backward walk: latest-ending predecessor wins; ties break on id so
       the path is deterministic. Each path element is paired with the
       kind of the edge INTO it (None for the head). The visited set
       guards against a recording bug creating a cycle — better a
       truncated path than a hung analyzer. *)
    let visited = Hashtbl.create 64 in
    let rec walk n =
      Hashtbl.replace visited n.Causal.cn_id ();
      let best =
        match Hashtbl.find_opt preds n.Causal.cn_id with
        | None | Some [] -> None
        | Some (p0 :: ps) ->
          Some
            (List.fold_left
               (fun (bp, bk) (p, k) -> if later p bp then (p, k) else (bp, bk))
               p0 ps)
      in
      match best with
      | Some (p, kind) when not (Hashtbl.mem visited p.Causal.cn_id) ->
        (n, Some kind) :: walk p
      | _ -> [ (n, None) ]
    in
    let path = List.rev (walk tail) in
    let head = fst (List.hd path) in
    let tally = Hashtbl.create 8 in
    let add b ns =
      if ns > 0 then
        Hashtbl.replace tally b (ns + Option.value ~default:0 (Hashtbl.find_opt tally b))
    in
    let cursor = ref head.Causal.cn_ts in
    List.iter
      (fun ((n : Causal.cnode), kind) ->
        (match kind with
        | Some k when n.Causal.cn_ts > !cursor ->
          add (bucket_of_gap k) (n.Causal.cn_ts - !cursor);
          cursor := n.Causal.cn_ts
        | _ -> ());
        let e = cend n in
        if e > !cursor then begin
          add (bucket_of_seg n.Causal.cn_seg) (e - max !cursor n.Causal.cn_ts);
          cursor := e
        end)
      path;
    let path_ns = cend tail - head.Causal.cn_ts in
    let segments =
      List.map
        (fun b -> (b, Option.value ~default:0 (Hashtbl.find_opt tally b)))
        buckets
    in
    let nnodes, nedges = Causal.window_size c in
    Some
      {
        Causal.i_label = pm.Causal.pm_label;
        i_wall_ns = pm.Causal.pm_wall_ns;
        i_path_ns = path_ns;
        i_path_nodes = List.length path;
        i_max_span_ns = max_span;
        i_dag_nodes = nnodes;
        i_dag_edges = nedges;
        i_segments = segments;
        i_opt_actual = pm.Causal.pm_opt_actual;
        i_opt_bound = pm.Causal.pm_opt_bound;
      }

(* Consume the window at an engine barrier. Only labeled windows (the DPA
   runtime's phases set metadata) are analyzed; a window recorded by an
   unlabeled producer is discarded — its flights have no activity chain
   to ground the path at the phase start, so no invariant would hold. *)
let at_barrier c =
  (match Causal.meta c with
  | Some pm -> (
    match analyze_window c pm with
    | Some inst -> Causal.add_result c inst
    | None -> ())
  | None -> ());
  Causal.reset_window c

let ratio ~actual ~bound =
  if bound <= 0 then if actual = 0 then 1.0 else infinity
  else float_of_int actual /. float_of_int bound

let instance_json (i : Causal.instance) =
  Json.Obj
    [
      ("label", Json.Str i.Causal.i_label);
      ("wall_ns", Json.Int i.Causal.i_wall_ns);
      ("path_ns", Json.Int i.Causal.i_path_ns);
      ("path_nodes", Json.Int i.Causal.i_path_nodes);
      ("max_span_ns", Json.Int i.Causal.i_max_span_ns);
      ("dag_nodes", Json.Int i.Causal.i_dag_nodes);
      ("dag_edges", Json.Int i.Causal.i_dag_edges);
      ( "segments",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) i.Causal.i_segments)
      );
      ("opt_actual_bytes", Json.Int i.Causal.i_opt_actual);
      ("opt_bound_bytes", Json.Int i.Causal.i_opt_bound);
      ( "opt_ratio",
        Json.Float (ratio ~actual:i.Causal.i_opt_actual ~bound:i.Causal.i_opt_bound)
      );
    ]

let report_json c =
  let insts = Causal.results c in
  (* Aggregate by label: repeated phases (multi-step simulations) fold
     into one summary row per label. *)
  let order = ref [] in
  let totals = Hashtbl.create 8 in
  List.iter
    (fun (i : Causal.instance) ->
      let key = i.Causal.i_label in
      let acc =
        match Hashtbl.find_opt totals key with
        | Some a -> a
        | None ->
          let a = Hashtbl.create 8 in
          Hashtbl.replace totals key a;
          order := key :: !order;
          a
      in
      let bump k v =
        Hashtbl.replace acc k (v + Option.value ~default:0 (Hashtbl.find_opt acc k))
      in
      bump "instances" 1;
      bump "wall_ns" i.Causal.i_wall_ns;
      bump "path_ns" i.Causal.i_path_ns;
      bump "opt_actual_bytes" i.Causal.i_opt_actual;
      bump "opt_bound_bytes" i.Causal.i_opt_bound;
      List.iter (fun (b, ns) -> bump ("seg_" ^ b) ns) i.Causal.i_segments)
    insts;
  let summary =
    List.rev_map
      (fun key ->
        let acc = Hashtbl.find totals key in
        let g k = Option.value ~default:0 (Hashtbl.find_opt acc k) in
        ( key,
          Json.Obj
            ([
               ("instances", Json.Int (g "instances"));
               ("wall_ns", Json.Int (g "wall_ns"));
               ("path_ns", Json.Int (g "path_ns"));
               ("opt_actual_bytes", Json.Int (g "opt_actual_bytes"));
               ("opt_bound_bytes", Json.Int (g "opt_bound_bytes"));
               ( "opt_ratio",
                 Json.Float
                   (ratio ~actual:(g "opt_actual_bytes")
                      ~bound:(g "opt_bound_bytes")) );
             ]
            @ List.map (fun b -> ("seg_" ^ b, Json.Int (g ("seg_" ^ b)))) buckets
            ) ))
      !order
  in
  Json.Obj
    [
      ("phases", Json.List (List.map instance_json insts));
      ("summary", Json.Obj summary);
      ("nphases", Json.Int (List.length insts));
    ]

(** Critical-path analyzer over the happens-before graph ({!Causal}).

    At every engine barrier the current phase window is consumed: the
    longest weighted chain is extracted (latest-ending node, walked back
    through latest-ending predecessors) and decomposed into compute /
    alignment-wait / wire / owner-queue / retransmit / refetch / other
    segments. The decomposition is exact by construction — a forward
    cursor charges every nanosecond of the path to exactly one bucket, so
    the segments always sum to the path length. *)

val buckets : string list
(** Segment bucket names, in report order. *)

val at_barrier : Causal.t -> unit
(** Consume the window: if phase metadata is present ({!Causal.set_meta}),
    analyze and append an {!Causal.instance}; either way the window is
    cleared. Called by {!Dpa_sim.Engine.barrier} when the sink carries a
    causal graph. Unlabeled windows (baseline runtimes) are discarded —
    their flights have no activity chain grounding the path at the phase
    start, so the [max span <= path <= wall] invariants would not hold. *)

val ratio : actual:int -> bound:int -> float
(** Communication-overhead ratio; [1.0] when both are zero, [infinity]
    when only the bound is. *)

val instance_json : Causal.instance -> Json.t

val report_json : Causal.t -> Json.t
(** The [--critical-path] artifact: every analyzed instance under
    ["phases"], per-label aggregates under ["summary"], and ["nphases"]. *)

(** Exporters for recorded events and metrics.

    - {!chrome_trace}: Chrome [trace_event] JSON, loadable in
      [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. One track
      (tid) per simulated node, timestamps in microseconds of sim-time.
    - {!jsonl}: one JSON object per event per line, for ad-hoc analysis.
    - {!metrics_json}: the metrics registry plus attached meta documents
      (per-phase [Dpa_stats]) as one JSON document.
    - {!profile}: human-readable per-phase profile (phase wall times, strip
      counts, event tallies, histogram summaries). *)

val chrome_trace : Sink.t -> string
(** [{"traceEvents": [...], "displayTimeUnit": "ns", ...}]. *)

val jsonl : Sink.t -> string

val metrics_json : Sink.t -> Json.t

val profile : Sink.t -> string

(** Exporters for recorded events and metrics.

    - {!chrome_trace}: Chrome [trace_event] JSON, loadable in
      [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. One track
      (tid) per simulated node, timestamps in microseconds of sim-time.
    - {!jsonl}: one JSON object per event per line, for ad-hoc analysis.
    - {!jsonl_writer}: the streaming flavour of {!jsonl} — a
      {!Sink.writer} over an [out_channel] for {!Sink.attach_writer}, so
      the ring capacity stops bounding what an [--events] file can see.
    - {!metrics_json}: the metrics registry plus attached meta documents
      (per-phase [Dpa_stats]) as one JSON document.
    - {!profile}: human-readable per-phase profile (phase wall times, strip
      counts, per-node skew tables, event tallies, histogram summaries). *)

val chrome_trace : Sink.t -> string
(** [{"traceEvents": [...], "displayTimeUnit": "ns", ...}]. Flow instants
    (cat ["flow"], emitted by the transport when causal tracing is on)
    render as Chrome flow-event pairs ([ph:"s"]/[ph:"f"] named "flight",
    id = the flight's [src/dst/seq/incarnation]), so Perfetto draws
    message arrows between the node tracks. *)

val jsonl : Sink.t -> string

val jsonl_line : Sink.event -> string
(** One event as a single compact JSON line (no trailing newline). *)

val jsonl_writer : out_channel -> Sink.writer
(** Line-buffered JSONL writer: each event becomes one line at flush time,
    [flush] pushes the channel buffer to the OS, [close] closes the
    channel. Attach with {!Sink.attach_writer}. *)

val metrics_json : Sink.t -> Json.t

val profile : Sink.t -> string
(** The global per-phase table (runs, nodes, mean wall ms — total span
    time divided by the span count, correct for uneven node subsets —
    and strip counts; labels whose strips never saw a phase span render
    as strip-only rows), a per-node skew table (wall, busy = local+comm,
    strips, bytes per node, with min/mean/max busy and the max/mean
    imbalance factor per phase), a per-phase communication-optimality
    table (actual vs lower-bound bytes and their ratio, per node and
    summed — present when the phase spans carry the optimality args),
    instant tallies and metric summaries. *)

(* Happens-before recording for one observed run. The graph lives beside
   the sink (Sink.set_causal) and is filled in by the producers — the DPA
   runtime records activities (scheduler quanta, owner service, update
   application, wakes, restart markers) and the message layer records
   flights and acks — connected by typed edges. The window accumulated
   since the last barrier is consumed by Critpath.at_barrier, which turns
   it into one critical-path instance per phase and clears it, so memory
   stays bounded by the largest single phase.

   Everything here is host-side bookkeeping: recording charges no
   simulated time, so a causally-traced run produces bit-identical
   simulation results to an untraced one. *)

type seg = Compute | Wire | Retransmit | Refetch | Other

type edge_kind = Seq | Send | Deliver | Ack | Wake | Retry | Refetch_start

type cnode = {
  cn_id : int;
  cn_name : string;
  cn_node : int;  (* simulated node id *)
  cn_ts : int;  (* sim-ns start *)
  cn_dur : int;
  cn_seg : seg;
  cn_on_path : bool;
      (* eligible as a critical-path member. Acks are recorded (the DAG
         answers "what acknowledged what") but excluded: they are pure
         bookkeeping that advances no node clock, so a late ack must not
         become the path tail and push the path past the phase wall. *)
}

type cedge = { ce_kind : edge_kind; ce_parent : int; ce_child : int }

type phase_meta = {
  pm_label : string;
  pm_wall_ns : int;
  pm_opt_actual : int;  (* bytes actually moved by the phase, all nodes *)
  pm_opt_bound : int;  (* surface/volume-style lower bound, all nodes *)
}

(* One analyzed phase window (produced by Critpath, stored here so the
   two modules need no mutual recursion). [i_segments] always sums to
   [i_path_ns] — the decomposition is exact by construction. *)
type instance = {
  i_label : string;
  i_wall_ns : int;
  i_path_ns : int;
  i_path_nodes : int;
  i_max_span_ns : int;  (* longest single on-path DAG node in the window *)
  i_dag_nodes : int;
  i_dag_edges : int;
  i_segments : (string * int) list;
  i_opt_actual : int;
  i_opt_bound : int;
}

type t = {
  mutable next_id : int;
  mutable nodes : cnode list;  (* current window, reverse recording order *)
  mutable edges : cedge list;
  mutable nnodes : int;
  mutable nedges : int;
  mutable cursor : int;  (* causal context: the running activity, -1 none *)
  mutable meta : phase_meta option;
  mutable results : instance list;  (* analyzed instances, reverse order *)
}

let create () =
  {
    next_id = 0;
    nodes = [];
    edges = [];
    nnodes = 0;
    nedges = 0;
    cursor = -1;
    meta = None;
    results = [];
  }

(* Ids are allocated at span open and never reused, across every engine
   the process runs — the stability that lets a retransmission carry its
   original parent and lets streamed span_id/parent args resolve without
   per-engine scoping. *)
let fresh t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let node ?(seg = Other) ?(on_path = true) t ~id ~name ~node ~ts ~dur =
  t.nodes <-
    {
      cn_id = id;
      cn_name = name;
      cn_node = node;
      cn_ts = ts;
      cn_dur = dur;
      cn_seg = seg;
      cn_on_path = on_path;
    }
    :: t.nodes;
  t.nnodes <- t.nnodes + 1

let edge t ~kind ~parent ~child =
  if parent >= 0 then begin
    t.edges <- { ce_kind = kind; ce_parent = parent; ce_child = child } :: t.edges;
    t.nedges <- t.nedges + 1
  end

let current t = t.cursor
let set_current t id = t.cursor <- id

let with_current t id f =
  let saved = t.cursor in
  t.cursor <- id;
  Fun.protect ~finally:(fun () -> t.cursor <- saved) f

let set_meta t ~label ~wall_ns ~opt_actual ~opt_bound =
  t.meta <-
    Some
      {
        pm_label = label;
        pm_wall_ns = wall_ns;
        pm_opt_actual = opt_actual;
        pm_opt_bound = opt_bound;
      }

let meta t = t.meta

let window_nodes t = t.nodes
let window_edges t = t.edges
let window_size t = (t.nnodes, t.nedges)

let reset_window t =
  t.nodes <- [];
  t.edges <- [];
  t.nnodes <- 0;
  t.nedges <- 0;
  t.cursor <- -1;
  t.meta <- None

let add_result t inst = t.results <- inst :: t.results
let results t = List.rev t.results

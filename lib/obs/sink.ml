type arg = Int of int | Float of float | Str of string

type kind = Span | Instant | Counter

type event = {
  kind : kind;
  name : string;
  cat : string;
  node : int;
  ts : int;
  dur : int;
  args : (string * arg) list;
  seq : int;  (* per-sink emission order, for stable ts tie-breaking *)
}

type writer = {
  write : event -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

type t = {
  spans : event Dpa_util.Dynarray.t;
  ring : event option array;
  capacity : int;
  mutable written : int;  (* total ring events ever stored *)
  mutable ring_dropped : int;  (* overwritten with no writer to capture them *)
  mutable span_count : int;
  mutable next_seq : int;
  metrics : Metrics.t;
  mutable meta_docs : (string * Json.t) list;
  mutable categories : string list option;  (* None = all enabled *)
  mutable spans_only : bool;
  mutable filtered : int;  (* events rejected by the knobs above *)
  mutable sample_period_ns : int;  (* 0 = periodic sampling off *)
  mutable writer : writer option;
  pending : event Dpa_util.Dynarray.t;  (* accepted but not yet flushed *)
  mutable streamed : int;  (* events handed to the writer so far *)
  mutable causal : Causal.t option;  (* happens-before recording, opt-in *)
}

let default_capacity = 1 lsl 18

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Sink.create: capacity must be positive";
  {
    spans = Dpa_util.Dynarray.create ();
    ring = Array.make capacity None;
    capacity;
    written = 0;
    ring_dropped = 0;
    span_count = 0;
    next_seq = 0;
    metrics = Metrics.create ();
    meta_docs = [];
    categories = None;
    spans_only = false;
    filtered = 0;
    sample_period_ns = 0;
    writer = None;
    pending = Dpa_util.Dynarray.create ();
    streamed = 0;
    causal = None;
  }

let metrics t = t.metrics
let capacity t = t.capacity

let set_categories t cats = t.categories <- cats
let set_spans_only t b = t.spans_only <- b
let filtered t = t.filtered

let set_sample_period t ns =
  if ns < 0 then invalid_arg "Sink.set_sample_period: negative period";
  t.sample_period_ns <- ns

let sample_period_ns t = t.sample_period_ns

let cat_enabled t cat =
  match t.categories with None -> true | Some cats -> List.mem cat cats

(* Every accepted event gets the next sequence number; rejected events are
   invisible, so they must not consume one (the JSONL stream would show
   gaps for no reason). *)
let stamp t ev =
  let ev = { ev with seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  (match t.writer with
  | None -> ()
  | Some _ -> ignore (Dpa_util.Dynarray.add t.pending ev));
  ev

let span ?(args = []) t ~cat ~name ~node ~ts ~dur =
  if cat_enabled t cat then begin
    let ev =
      stamp t { kind = Span; name; cat; node; ts; dur; args; seq = 0 }
    in
    ignore (Dpa_util.Dynarray.add t.spans ev);
    t.span_count <- t.span_count + 1
  end
  else t.filtered <- t.filtered + 1

(* Counter samples bypass the category filter: their "counter" category is
   synthetic (no producer chooses it), so a [--trace-cats] list naming only
   real categories used to silently drop every sampled counter track.
   [spans_only] still drops them — that knob's contract is spans and
   nothing else. *)
let push_ring t ev =
  if t.spans_only || (ev.kind <> Counter && not (cat_enabled t ev.cat)) then
    t.filtered <- t.filtered + 1
  else begin
    let ev = stamp t ev in
    (* An overwrite only loses the event when no writer captured it at
       emission: with a stream attached the ring is just the in-memory
       flight recorder, not the artifact. *)
    if t.written >= t.capacity && t.writer = None then
      t.ring_dropped <- t.ring_dropped + 1;
    t.ring.(t.written mod t.capacity) <- Some ev;
    t.written <- t.written + 1
  end

let instant ?(args = []) t ~cat ~name ~node ~ts =
  push_ring t { kind = Instant; name; cat; node; ts; dur = 0; args; seq = 0 }

let counter t ~name ~node ~ts value =
  push_ring t
    {
      kind = Counter;
      name;
      cat = "counter";
      node;
      ts;
      dur = 0;
      args = [ ("value", Int value) ];
      seq = 0;
    }

let set_meta t key doc =
  t.meta_docs <- (key, doc) :: List.remove_assoc key t.meta_docs

let meta t = List.sort (fun (a, _) (b, _) -> compare a b) t.meta_docs

let ring_events t =
  (* Oldest first: once the ring has wrapped, the slot after the newest
     entry holds the oldest survivor. *)
  let live = min t.written t.capacity in
  let first = t.written - live in
  List.init live (fun i ->
      match t.ring.((first + i) mod t.capacity) with
      | Some ev -> ev
      | None -> assert false)

(* Spans are recorded at close (their [ts] is the open time), so neither
   the span list nor its concatenation with the ring is time-ordered.
   (ts, seq) is unique per event, so a plain sort both orders by time and
   tie-breaks by emission order. *)
let by_time (a : event) (b : event) = compare (a.ts, a.seq) (b.ts, b.seq)

let events t =
  List.sort by_time (Dpa_util.Dynarray.to_list t.spans @ ring_events t)

let nspans t = t.span_count
let emitted t = t.span_count + t.written
let dropped t = t.ring_dropped
let streamed t = t.streamed

let attach_writer t w =
  match t.writer with
  | Some _ -> invalid_arg "Sink.attach_writer: a writer is already attached"
  | None -> t.writer <- Some w

let flush_writer t =
  match t.writer with
  | None -> ()
  | Some w ->
    let n = Dpa_util.Dynarray.length t.pending in
    if n > 0 then begin
      (* Each flush segment is sorted before it is written; callers flush
         at quiescent points (phase barriers, teardown), where no later
         event can carry an earlier timestamp, so the concatenation of
         segments stays time-ordered. *)
      let evs = List.sort by_time (Dpa_util.Dynarray.to_list t.pending) in
      Dpa_util.Dynarray.clear t.pending;
      List.iter w.write evs;
      t.streamed <- t.streamed + n
    end;
    w.flush ()

let close_writer t =
  match t.writer with
  | None -> ()
  | Some w ->
    flush_writer t;
    t.writer <- None;
    w.close ()

let set_causal t c = t.causal <- c
let causal t = t.causal

let global_sink : t option ref = ref None
let set_global s = global_sink := s
let global () = !global_sink

type arg = Int of int | Float of float | Str of string

type kind = Span | Instant | Counter

type event = {
  kind : kind;
  name : string;
  cat : string;
  node : int;
  ts : int;
  dur : int;
  args : (string * arg) list;
}

type t = {
  spans : event Dpa_util.Dynarray.t;
  ring : event option array;
  capacity : int;
  mutable written : int;  (* total ring events ever stored *)
  mutable span_count : int;
  metrics : Metrics.t;
  mutable meta_docs : (string * Json.t) list;
}

let default_capacity = 1 lsl 18

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Sink.create: capacity must be positive";
  {
    spans = Dpa_util.Dynarray.create ();
    ring = Array.make capacity None;
    capacity;
    written = 0;
    span_count = 0;
    metrics = Metrics.create ();
    meta_docs = [];
  }

let metrics t = t.metrics

let span ?(args = []) t ~cat ~name ~node ~ts ~dur =
  ignore
    (Dpa_util.Dynarray.add t.spans
       { kind = Span; name; cat; node; ts; dur; args });
  t.span_count <- t.span_count + 1

let push_ring t ev =
  t.ring.(t.written mod t.capacity) <- Some ev;
  t.written <- t.written + 1

let instant ?(args = []) t ~cat ~name ~node ~ts =
  push_ring t { kind = Instant; name; cat; node; ts; dur = 0; args }

let counter t ~name ~node ~ts value =
  push_ring t
    {
      kind = Counter;
      name;
      cat = "counter";
      node;
      ts;
      dur = 0;
      args = [ ("value", Int value) ];
    }

let set_meta t key doc =
  t.meta_docs <- (key, doc) :: List.remove_assoc key t.meta_docs

let meta t = List.sort (fun (a, _) (b, _) -> compare a b) t.meta_docs

let ring_events t =
  (* Oldest first: once the ring has wrapped, the slot after the newest
     entry holds the oldest survivor. *)
  let live = min t.written t.capacity in
  let first = t.written - live in
  List.init live (fun i ->
      match t.ring.((first + i) mod t.capacity) with
      | Some ev -> ev
      | None -> assert false)

let events t =
  let all = Dpa_util.Dynarray.to_list t.spans @ ring_events t in
  List.stable_sort (fun a b -> compare a.ts b.ts) all

let nspans t = t.span_count
let emitted t = t.span_count + t.written
let dropped t = if t.written > t.capacity then t.written - t.capacity else 0

let global_sink : t option ref = ref None
let set_global s = global_sink := s
let global () = !global_sink

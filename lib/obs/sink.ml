type arg = Int of int | Float of float | Str of string

type kind = Span | Instant | Counter

type event = {
  kind : kind;
  name : string;
  cat : string;
  node : int;
  ts : int;
  dur : int;
  args : (string * arg) list;
}

type t = {
  spans : event Dpa_util.Dynarray.t;
  ring : event option array;
  capacity : int;
  mutable written : int;  (* total ring events ever stored *)
  mutable span_count : int;
  metrics : Metrics.t;
  mutable meta_docs : (string * Json.t) list;
  mutable categories : string list option;  (* None = all enabled *)
  mutable spans_only : bool;
  mutable filtered : int;  (* events rejected by the knobs above *)
  mutable sample_period_ns : int;  (* 0 = periodic sampling off *)
}

let default_capacity = 1 lsl 18

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Sink.create: capacity must be positive";
  {
    spans = Dpa_util.Dynarray.create ();
    ring = Array.make capacity None;
    capacity;
    written = 0;
    span_count = 0;
    metrics = Metrics.create ();
    meta_docs = [];
    categories = None;
    spans_only = false;
    filtered = 0;
    sample_period_ns = 0;
  }

let metrics t = t.metrics

let set_categories t cats = t.categories <- cats
let set_spans_only t b = t.spans_only <- b
let filtered t = t.filtered

let set_sample_period t ns =
  if ns < 0 then invalid_arg "Sink.set_sample_period: negative period";
  t.sample_period_ns <- ns

let sample_period_ns t = t.sample_period_ns

let cat_enabled t cat =
  match t.categories with None -> true | Some cats -> List.mem cat cats

let span ?(args = []) t ~cat ~name ~node ~ts ~dur =
  if cat_enabled t cat then begin
    ignore
      (Dpa_util.Dynarray.add t.spans
         { kind = Span; name; cat; node; ts; dur; args });
    t.span_count <- t.span_count + 1
  end
  else t.filtered <- t.filtered + 1

(* Counter samples bypass the category filter: their "counter" category is
   synthetic (no producer chooses it), so a [--trace-cats] list naming only
   real categories used to silently drop every sampled counter track.
   [spans_only] still drops them — that knob's contract is spans and
   nothing else. *)
let push_ring t ev =
  if t.spans_only || (ev.kind <> Counter && not (cat_enabled t ev.cat)) then
    t.filtered <- t.filtered + 1
  else begin
    t.ring.(t.written mod t.capacity) <- Some ev;
    t.written <- t.written + 1
  end

let instant ?(args = []) t ~cat ~name ~node ~ts =
  push_ring t { kind = Instant; name; cat; node; ts; dur = 0; args }

let counter t ~name ~node ~ts value =
  push_ring t
    {
      kind = Counter;
      name;
      cat = "counter";
      node;
      ts;
      dur = 0;
      args = [ ("value", Int value) ];
    }

let set_meta t key doc =
  t.meta_docs <- (key, doc) :: List.remove_assoc key t.meta_docs

let meta t = List.sort (fun (a, _) (b, _) -> compare a b) t.meta_docs

let ring_events t =
  (* Oldest first: once the ring has wrapped, the slot after the newest
     entry holds the oldest survivor. *)
  let live = min t.written t.capacity in
  let first = t.written - live in
  List.init live (fun i ->
      match t.ring.((first + i) mod t.capacity) with
      | Some ev -> ev
      | None -> assert false)

let events t =
  let all = Dpa_util.Dynarray.to_list t.spans @ ring_events t in
  List.stable_sort (fun a b -> compare a.ts b.ts) all

let nspans t = t.span_count
let emitted t = t.span_count + t.written
let dropped t = if t.written > t.capacity then t.written - t.capacity else 0

let global_sink : t option ref = ref None
let set_global s = global_sink := s
let global () = !global_sink

(** Happens-before graph over one observed run.

    A [Causal.t] rides on the sink ({!Sink.set_causal}); when present, the
    producers record a DAG per phase window: DAG nodes are scheduler quanta,
    owner-service and update-apply handlers, wake markers, restart markers,
    message flights and acks; edges carry the causal relation between them.
    {!Critpath.at_barrier} consumes the window at every engine barrier and
    appends one analyzed {!instance} per labeled phase.

    Recording is host-side only — no simulated time is charged — so a
    causally-traced run is bit-identical (forces, stats, clocks) to an
    untraced one. *)

(** Weight class of a DAG node, which becomes the critical-path bucket its
    own duration is charged to. *)
type seg =
  | Compute  (** CPU activity: quanta, owner service, update apply *)
  | Wire  (** first-attempt message flight *)
  | Retransmit  (** retransmitted flight, or a timer-driven re-issue marker *)
  | Refetch  (** crash-restart marker: the re-fetch walk *)
  | Other  (** zero-duration markers (wakes) *)

(** Edge label; when the critical path crosses an edge, any idle gap it
    spans is charged to the bucket the kind implies (see DESIGN.md §14). *)
type edge_kind =
  | Seq  (** program order between two activities on one node *)
  | Send  (** sending activity -> first-attempt flight *)
  | Deliver  (** flight -> the handler activity it triggered *)
  | Ack  (** delivered flight -> its NIC ack flight *)
  | Wake  (** wake marker -> the quantum that dispatched the woken threads *)
  | Retry  (** original causal parent -> a retransmission / re-issue *)
  | Refetch_start  (** last pre-crash activity -> the restart marker *)

type cnode = {
  cn_id : int;
  cn_name : string;
  cn_node : int;
  cn_ts : int;
  cn_dur : int;
  cn_seg : seg;
  cn_on_path : bool;
      (** acks are recorded but path-ineligible: they advance no clock, so
          a late ack must not become the path tail *)
}

type cedge = { ce_kind : edge_kind; ce_parent : int; ce_child : int }

type phase_meta = {
  pm_label : string;
  pm_wall_ns : int;
  pm_opt_actual : int;
  pm_opt_bound : int;
}

type instance = {
  i_label : string;
  i_wall_ns : int;
  i_path_ns : int;
  i_path_nodes : int;
  i_max_span_ns : int;
  i_dag_nodes : int;
  i_dag_edges : int;
  i_segments : (string * int) list;
      (** bucket -> sim-ns; always sums to [i_path_ns] exactly *)
  i_opt_actual : int;
  i_opt_bound : int;
}
(** One analyzed phase window; produced by {!Critpath.at_barrier}. *)

type t

val create : unit -> t

val fresh : t -> int
(** Allocate the next span id. Monotone for the life of the value and
    never reset — id stability is what lets a retransmission keep its
    original causal parent across attempts and incarnations. *)

val node :
  ?seg:seg ->
  ?on_path:bool ->
  t ->
  id:int ->
  name:string ->
  node:int ->
  ts:int ->
  dur:int ->
  unit
(** Record a DAG node in the current window ([seg] defaults to [Other],
    [on_path] to [true]). The id must come from {!fresh}. *)

val edge : t -> kind:edge_kind -> parent:int -> child:int -> unit
(** Record [parent -> child]. No-op when [parent < 0] (no causal context),
    so producers can pass the cursor unconditionally. *)

val current : t -> int
(** The causal cursor: id of the activity currently executing on behalf of
    the single-threaded simulation, or [-1]. Message sends read it to
    parent their flights; handlers run under the flight's id. *)

val set_current : t -> int -> unit

val with_current : t -> int -> (unit -> 'a) -> 'a
(** Run with the cursor set to [id], restoring the previous value even on
    exceptions. *)

val set_meta :
  t -> label:string -> wall_ns:int -> opt_actual:int -> opt_bound:int -> unit
(** Phase metadata, set by [Runtime.run_phase_labeled] just before its
    closing barrier; consumed (and cleared) by {!Critpath.at_barrier}.
    Windows without metadata (e.g. baseline runtimes that never label a
    phase) are discarded unanalyzed. *)

val meta : t -> phase_meta option

val window_nodes : t -> cnode list
(** Current window, reverse recording order. *)

val window_edges : t -> cedge list

val window_size : t -> int * int
(** [(nodes, edges)] recorded in the current window. *)

val reset_window : t -> unit
(** Drop the window's nodes, edges, cursor and metadata; analyzed results
    and the id allocator survive. *)

val add_result : t -> instance -> unit

val results : t -> instance list
(** Analyzed instances, oldest first. *)

type counter = { mutable c : int }

type gauge = { mutable last : int; mutable gmax : int }

(* Bucket 0 holds value 0; bucket b >= 1 holds [2^(b-1), 2^b). 63 buckets
   cover the whole non-negative int range. *)
let nbuckets = 63

type histogram = {
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable hmin : int;
  mutable hmax : int;
}

type instrument = C of counter | G of gauge | H of histogram

type t = { table : (string, instrument) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }

let lookup t name ~kind ~make ~cast =
  match Hashtbl.find_opt t.table name with
  | Some i -> (
    match cast i with
    | Some x -> x
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics.%s: %S is registered as another kind" kind
           name))
  | None ->
    let x = make () in
    Hashtbl.add t.table name x;
    (match cast x with Some x -> x | None -> assert false)

let counter t name =
  lookup t name ~kind:"counter"
    ~make:(fun () -> C { c = 0 })
    ~cast:(function C c -> Some c | _ -> None)

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let counter_value c = c.c

let gauge t name =
  lookup t name ~kind:"gauge"
    ~make:(fun () -> G { last = 0; gmax = 0 })
    ~cast:(function G g -> Some g | _ -> None)

let set_gauge g v =
  g.last <- v;
  if v > g.gmax then g.gmax <- v

let gauge_value g = g.last
let gauge_max g = g.gmax

let histogram t name =
  lookup t name ~kind:"histogram"
    ~make:(fun () ->
      H
        {
          buckets = Array.make nbuckets 0;
          count = 0;
          sum = 0;
          hmin = max_int;
          hmax = min_int;
        })
    ~cast:(function H h -> Some h | _ -> None)

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 0 do
      b := !b + 1;
      v := !v lsr 1
    done;
    !b
  end

let bucket_bounds b = if b = 0 then (0, 0) else (1 lsl (b - 1), (1 lsl b) - 1)

let observe h v =
  let v = if v < 0 then 0 else v in
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1;
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  if v < h.hmin then h.hmin <- v;
  if v > h.hmax then h.hmax <- v

let percentile h q =
  if h.count = 0 then 0.
  else begin
    let target =
      let t = int_of_float (ceil (q *. float_of_int h.count)) in
      if t < 1 then 1 else if t > h.count then h.count else t
    in
    let rec find b cum =
      if b >= nbuckets then float_of_int h.hmax
      else begin
        let here = h.buckets.(b) in
        if cum + here >= target then begin
          let lo, hi = bucket_bounds b in
          let frac =
            float_of_int (target - cum) /. float_of_int (max 1 here)
          in
          float_of_int lo +. (frac *. float_of_int (hi - lo))
        end
        else find (b + 1) (cum + here)
      end
    in
    let v = find 0 0 in
    let v = Float.max v (float_of_int h.hmin) in
    Float.min v (float_of_int h.hmax)
  end

type summary = {
  count : int;
  sum : int;
  min : int;
  max : int;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summary (h : histogram) =
  if h.count = 0 then
    { count = 0; sum = 0; min = 0; max = 0; p50 = 0.; p90 = 0.; p99 = 0. }
  else
    {
      count = h.count;
      sum = h.sum;
      min = h.hmin;
      max = h.hmax;
      p50 = percentile h 0.50;
      p90 = percentile h 0.90;
      p99 = percentile h 0.99;
    }

let sorted_bindings t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let histogram_json h =
  let s = summary h in
  let buckets =
    List.filter_map
      (fun b ->
        if h.buckets.(b) = 0 then None
        else begin
          let lo, hi = bucket_bounds b in
          Some
            (Json.Obj
               [
                 ("lo", Json.Int lo);
                 ("hi", Json.Int hi);
                 ("count", Json.Int h.buckets.(b));
               ])
        end)
      (List.init nbuckets Fun.id)
  in
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("sum", Json.Int s.sum);
      ("min", Json.Int s.min);
      ("max", Json.Int s.max);
      ("p50", Json.Float s.p50);
      ("p90", Json.Float s.p90);
      ("p99", Json.Float s.p99);
      ("buckets", Json.List buckets);
    ]

let to_json t =
  let bindings = sorted_bindings t in
  let pick f = List.filter_map f bindings in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (pick (function
            | name, C c -> Some (name, Json.Int c.c)
            | _ -> None)) );
      ( "gauges",
        Json.Obj
          (pick (function
            | name, G g ->
              Some
                ( name,
                  Json.Obj
                    [ ("last", Json.Int g.last); ("max", Json.Int g.gmax) ] )
            | _ -> None)) );
      ( "histograms",
        Json.Obj
          (pick (function
            | name, H h -> Some (name, histogram_json h)
            | _ -> None)) );
    ]

let report t =
  let buf = Buffer.create 1024 in
  let bindings = sorted_bindings t in
  let counters =
    List.filter_map (function n, C c -> Some (n, c) | _ -> None) bindings
  and gauges =
    List.filter_map (function n, G g -> Some (n, g) | _ -> None) bindings
  and histograms =
    List.filter_map (function n, H h -> Some (n, h) | _ -> None) bindings
  in
  if counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (n, c) -> Buffer.add_string buf (Printf.sprintf "  %-40s %d\n" n c.c))
      counters
  end;
  if gauges <> [] then begin
    Buffer.add_string buf "gauges (last/max):\n";
    List.iter
      (fun (n, g) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-40s %d / %d\n" n g.last g.gmax))
      gauges
  end;
  if histograms <> [] then begin
    Buffer.add_string buf
      "histograms (count / p50 / p90 / p99 / max / mean):\n";
    List.iter
      (fun (n, h) ->
        let s = summary h in
        let mean =
          if s.count = 0 then 0. else float_of_int s.sum /. float_of_int s.count
        in
        Buffer.add_string buf
          (Printf.sprintf "  %-40s %8d %10.1f %10.1f %10.1f %10d %10.1f\n" n
             s.count s.p50 s.p90 s.p99 s.max mean))
      histograms
  end;
  Buffer.contents buf

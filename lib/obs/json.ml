type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ---------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to buf f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> Buffer.add_string buf "null"
  | _ ->
    let s = Printf.sprintf "%.12g" f in
    Buffer.add_string buf s;
    (* Keep whole floats distinguishable from ints so printing then parsing
       restores the same constructor. *)
    if String.for_all (function '0' .. '9' | '-' -> true | _ -> false) s then
      Buffer.add_string buf ".0"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> float_to buf f
  | Str s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* --- parsing ----------------------------------------------------------- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let utf8_add buf code =
    (* Encode a Unicode scalar value as UTF-8. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> begin
        if !pos >= n then fail "truncated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          let hi = parse_hex4 () in
          if hi >= 0xd800 && hi <= 0xdbff then begin
            (* Surrogate pair. *)
            expect '\\';
            expect 'u';
            let lo = parse_hex4 () in
            if lo < 0xdc00 || lo > 0xdfff then fail "invalid low surrogate";
            utf8_add buf
              (0x10000 + ((hi - 0xd800) lsl 10) + (lo - 0xdc00))
          end
          else utf8_add buf hi
        | _ -> fail "invalid escape");
        loop ()
      end
      | c -> begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while
        !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
      do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    let int_start = !pos in
    digits ();
    if s.[int_start] = '0' && !pos - int_start > 1 then
      fail "leading zero in number";
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (elems [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)
  | exception Failure msg -> Error ("JSON parse error: " ^ msg)

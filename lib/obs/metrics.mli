(** Metrics registry: named counters, gauges and log-scale histograms.

    Instruments are created (or retrieved) by name, so contexts on different
    simulated nodes that ask for the same name share one instrument — phase
    metrics aggregate across the whole machine. All values are integers in
    the unit the producer chose (sim-ns, entries, bytes); histograms bucket
    by powers of two, which suits the heavy-tailed distributions the paper's
    evaluation cares about (batch sizes, wait latencies). *)

type t
(** A registry. *)

val create : unit -> t

type counter

val counter : t -> string -> counter
(** Get or create. Raises [Invalid_argument] if the name is already bound to
    a different instrument kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

type gauge

val gauge : t -> string -> gauge

val set_gauge : gauge -> int -> unit
(** Records the latest value and tracks the maximum seen. *)

val gauge_value : gauge -> int
val gauge_max : gauge -> int

type histogram

val histogram : t -> string -> histogram

val observe : histogram -> int -> unit
(** Negative observations are clamped to 0. *)

type summary = {
  count : int;
  sum : int;
  min : int;
  max : int;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summary : histogram -> summary
(** Zero summary when the histogram is empty. *)

val percentile : histogram -> float -> float
(** [percentile h q] for [q] in [0,1]: linear interpolation inside the
    power-of-two bucket holding the target rank, clamped to the exact
    observed min/max. *)

val to_json : t -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
    min, max, p50, p90, p99, buckets: [{lo, hi, count}]}}}], names sorted. *)

val report : t -> string
(** Human-readable rendering of the same data. *)

(** Structured event sink: the collection point of the observability layer.

    Producers ({!Dpa_sim.Engine}, the DPA runtime, the message layer) emit
    spans (named intervals in sim-time on one node), instants and counter
    samples. Spans are kept unbounded — there are O(strips x nodes) of them
    and the exporters' phase structure depends on every one — while instants
    and counter samples go through a fixed-capacity ring that overwrites the
    oldest entry when full (flight-recorder behaviour; the overwrite count
    is reported by {!dropped} and in the exported artifacts).

    A sink also owns a {!Metrics.t} registry, so a single object carries
    everything one experiment run produces, and an optional process-global
    default that {!Dpa_sim.Engine.create} picks up, letting drivers enable
    observability without threading a value through every layer. When no
    sink is attached anywhere, every producer hook is a [None] match on a
    mutable field — no closure is allocated and no timing or statistic
    changes. *)

type arg = Int of int | Float of float | Str of string

type kind = Span | Instant | Counter

type event = {
  kind : kind;
  name : string;
  cat : string;  (** coarse grouping: "phase", "strip", "runtime", "msg", "sim" *)
  node : int;
  ts : int;  (** sim-ns *)
  dur : int;  (** sim-ns; 0 for instants and counters *)
  args : (string * arg) list;
  seq : int;
      (** per-sink emission order. Spans are recorded at close ([ts] is
          the open time), so [ts] alone does not order the stream; [seq]
          is the tie-break that makes merges stable. *)
}

type writer = {
  write : event -> unit;  (** one accepted event, in time order at flush *)
  flush : unit -> unit;  (** make everything written so far durable *)
  close : unit -> unit;  (** release the underlying resource *)
}
(** A streaming consumer (see {!attach_writer}): typically a line-buffered
    JSONL emitter over an [out_channel] ({!Export.jsonl_writer}). *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the instant/counter ring (default [1 lsl 18]). *)

val default_capacity : int

val capacity : t -> int

val metrics : t -> Metrics.t

val span :
  ?args:(string * arg) list ->
  t ->
  cat:string ->
  name:string ->
  node:int ->
  ts:int ->
  dur:int ->
  unit

val instant :
  ?args:(string * arg) list ->
  t ->
  cat:string ->
  name:string ->
  node:int ->
  ts:int ->
  unit

val counter : t -> name:string -> node:int -> ts:int -> int -> unit
(** A sampled value, rendered as a counter track by the Chrome exporter. *)

val set_categories : t -> string list option -> unit
(** [set_categories t (Some cats)] keeps only spans and instants whose
    [cat] is listed; everything else is rejected at emission and counted
    by {!filtered}. [None] (the default) enables every category. Counter
    samples are exempt: their ["counter"] category is synthetic (no
    producer chooses it), so they are always recorded regardless of the
    list — a [--trace-cats] filter combined with [--sample-ns] must not
    silently drop the sampled tracks. Chaos runs emit dense ["fault"]
    instants — this is the knob that keeps their Chrome traces
    tractable. *)

val set_spans_only : t -> bool -> unit
(** When on, instants and counter samples are rejected at emission (and
    counted by {!filtered}); spans still obey the category filter. The
    phase/strip skeleton survives at a fraction of the trace size. *)

val filtered : t -> int
(** Events rejected by {!set_categories} / {!set_spans_only}. Distinct
    from {!dropped}: filtered events never reached the ring. *)

val set_sample_period : t -> int -> unit
(** Period in sim-ns for fixed-rate counter sampling ([0], the default,
    disables it). Producers that support it ({!Dpa.Runtime} phases via
    {!Dpa_sim.Engine.start_sampler}) emit per-node counter tracks
    (outstanding threads, D-buffer occupancy) at this rate — giving
    uniform time resolution over long phases where event-granularity
    sampling bunches up, e.g. when charting recovery after an injected
    NIC outage. *)

val sample_period_ns : t -> int

val set_meta : t -> string -> Json.t -> unit
(** Attach a named JSON document (e.g. the phase's merged [Dpa_stats]);
    re-using a key overwrites. Exported with the metrics. *)

val meta : t -> (string * Json.t) list
(** Sorted by key. *)

val events : t -> event list
(** All live events (spans plus surviving ring entries), stable-merged by
    [ts] with emission order ([seq]) as the tie-break — spans recorded at
    close interleave correctly with the instants emitted while they were
    open. *)

val nspans : t -> int

val emitted : t -> int
(** Total events ever emitted, including overwritten ring entries. *)

val dropped : t -> int
(** Ring entries lost to overwriting {e with no writer attached to capture
    them}. While a writer is attached ({!attach_writer}) an overwritten
    entry was already streamed at emission, so it is not a drop — the ring
    is only the in-memory flight recorder, not the artifact. *)

val attach_writer : t -> writer -> unit
(** Stream every event accepted from now on (spans and ring events alike,
    after the category/spans-only filters) to [writer], instead of relying
    on the ring snapshot at exit. Events are buffered and handed to
    [writer.write] in time order by {!flush_writer}; callers must flush at
    quiescent points only (phase barriers — {!Dpa_sim.Engine.barrier} does
    this automatically — or teardown), where no later event can carry an
    earlier timestamp, so the stream stays time-ordered within one
    engine's run. Raises [Invalid_argument] if a writer is already
    attached. *)

val flush_writer : t -> unit
(** Sort the buffered events, hand them to the writer, and flush it.
    No-op without an attached writer. *)

val close_writer : t -> unit
(** {!flush_writer}, then close and detach the writer, making everything
    streamed so far durable — safe to call from an exception handler after
    a mid-run crash, and idempotent. No-op without an attached writer. *)

val streamed : t -> int
(** Events handed to the attached writer so far (i.e. flushed). *)

val set_causal : t -> Causal.t option -> unit
(** Attach a happens-before graph ({!Causal.t}). When present, the
    producers additionally record causal DAG nodes and edges, stamp
    span_id/parent args on their events, and emit flow instants; the
    engine's barrier runs {!Critpath.at_barrier} over each phase window.
    [None] (the default) keeps all of that at a single [match] per hook. *)

val causal : t -> Causal.t option

val set_global : t option -> unit
val global : unit -> t option

let arg_json = function
  | Sink.Int i -> Json.Int i
  | Sink.Float f -> Json.Float f
  | Sink.Str s -> Json.Str s

let args_json args = Json.Obj (List.map (fun (k, v) -> (k, arg_json v)) args)

(* Chrome's trace viewer expects microseconds; sim time is integral ns. *)
let ts_us ns = Json.Float (float_of_int ns /. 1000.)

let chrome_event (ev : Sink.event) =
  let common =
    [
      ("name", Json.Str ev.Sink.name);
      ("cat", Json.Str ev.Sink.cat);
      ("ts", ts_us ev.Sink.ts);
      ("pid", Json.Int 0);
      ("tid", Json.Int ev.Sink.node);
    ]
  in
  match ev.Sink.kind with
  | Sink.Span ->
    Json.Obj
      (common
      @ [
          ("ph", Json.Str "X");
          ("dur", ts_us ev.Sink.dur);
          ("args", args_json ev.Sink.args);
        ])
  | Sink.Instant when ev.Sink.cat = "flow" ->
    (* Message flights render as Chrome flow events: a "flow_s" instant at
       wire-out becomes the flow start ("s") on the sender track, the
       matching "flow_f" at delivery the finish ("f") on the receiver
       track, bound by the flight's (src,dst,seq,incarnation) id — the
       viewer draws the arrow between the two node tracks. [bp:"e"] binds
       the finish to its enclosing slice so the arrow lands on the handler
       activity. *)
    let fid =
      match List.assoc_opt "id" ev.Sink.args with
      | Some (Sink.Str s) -> s
      | _ -> ""
    in
    let ph, bind =
      if ev.Sink.name = "flow_s" then ("s", [])
      else ("f", [ ("bp", Json.Str "e") ])
    in
    Json.Obj
      ([
         ("name", Json.Str "flight");
         ("cat", Json.Str "flow");
         ("ts", ts_us ev.Sink.ts);
         ("pid", Json.Int 0);
         ("tid", Json.Int ev.Sink.node);
         ("ph", Json.Str ph);
         ("id", Json.Str fid);
       ]
      @ bind
      @ [ ("args", args_json ev.Sink.args) ])
  | Sink.Instant ->
    Json.Obj
      (common
      @ [
          ("ph", Json.Str "i");
          ("s", Json.Str "t");
          ("args", args_json ev.Sink.args);
        ])
  | Sink.Counter ->
    Json.Obj
      (common @ [ ("ph", Json.Str "C"); ("args", args_json ev.Sink.args) ])

let node_ids events =
  List.sort_uniq compare (List.map (fun e -> e.Sink.node) events)

let chrome_trace sink =
  let events = Sink.events sink in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit j =
    if !first then first := false else Buffer.add_char buf ',';
    Json.to_buffer buf j
  in
  List.iter
    (fun node ->
      emit
        (Json.Obj
           [
             ("name", Json.Str "thread_name");
             ("ph", Json.Str "M");
             ("pid", Json.Int 0);
             ("tid", Json.Int node);
             ( "args",
               Json.Obj [ ("name", Json.Str (Printf.sprintf "node %d" node)) ]
             );
           ]))
    (node_ids events);
  List.iter (fun ev -> emit (chrome_event ev)) events;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ns\",\"otherData\":";
  Json.to_buffer buf
    (Json.Obj
       [
         ("events_emitted", Json.Int (Sink.emitted sink));
         ("events_dropped", Json.Int (Sink.dropped sink));
       ]);
  Buffer.add_char buf '}';
  Buffer.contents buf

let jsonl_event (ev : Sink.event) =
  let kind =
    match ev.Sink.kind with
    | Sink.Span -> "span"
    | Sink.Instant -> "instant"
    | Sink.Counter -> "counter"
  in
  Json.Obj
    [
      ("kind", Json.Str kind);
      ("name", Json.Str ev.Sink.name);
      ("cat", Json.Str ev.Sink.cat);
      ("node", Json.Int ev.Sink.node);
      ("ts", Json.Int ev.Sink.ts);
      ("dur", Json.Int ev.Sink.dur);
      ("args", args_json ev.Sink.args);
    ]

let jsonl sink =
  let buf = Buffer.create 65536 in
  List.iter
    (fun ev ->
      Json.to_buffer buf (jsonl_event ev);
      Buffer.add_char buf '\n')
    (Sink.events sink);
  Buffer.contents buf

let jsonl_line ev = Json.to_string (jsonl_event ev)

let jsonl_writer oc =
  {
    Sink.write =
      (fun ev ->
        output_string oc (jsonl_line ev);
        output_char oc '\n');
    Sink.flush = (fun () -> flush oc);
    Sink.close = (fun () -> close_out oc);
  }

let metrics_json sink =
  Json.Obj
    [
      ("metrics", Metrics.to_json (Sink.metrics sink));
      ("stats", Json.Obj (Sink.meta sink));
      ("events_emitted", Json.Int (Sink.emitted sink));
      ("events_dropped", Json.Int (Sink.dropped sink));
    ]

(* --- per-phase profile ------------------------------------------------- *)

type node_acc = {
  mutable n_spans : int;  (* phase spans on this node *)
  mutable n_wall : int;  (* sum of phase-span durations, sim-ns *)
  mutable n_busy : int;  (* sum of the spans' busy_ns args, sim-ns *)
  mutable n_bytes : int;  (* sum of the spans' bytes args *)
  mutable n_strips : int;
  mutable n_opt_actual : int;  (* opt_actual_bytes phase-span args *)
  mutable n_opt_bound : int;  (* opt_bound_bytes phase-span args *)
  mutable n_corrupt : int;  (* corrupt_dropped phase-span args *)
  mutable n_wal_trunc : int;  (* wal_truncated phase-span args *)
  mutable n_wal_repair : int;  (* wal_repaired phase-span args *)
}

type phase_acc = {
  mutable spans : int;
  mutable total_dur : int;
  mutable nodes : int list;
  mutable strips : int;
  mutable has_opt : bool;  (* some phase span carried optimality args *)
  mutable has_integrity : bool;  (* some phase span carried integrity args *)
  per_node : (int, node_acc) Hashtbl.t;
}

let strip_phase_label (ev : Sink.event) =
  match List.assoc_opt "phase" ev.Sink.args with
  | Some (Sink.Str label) -> Some label
  | _ -> None

let int_arg key (ev : Sink.event) =
  match List.assoc_opt key ev.Sink.args with
  | Some (Sink.Int v) -> v
  | _ -> 0

let node_acc acc node =
  match Hashtbl.find_opt acc.per_node node with
  | Some na -> na
  | None ->
    let na =
      {
        n_spans = 0;
        n_wall = 0;
        n_busy = 0;
        n_bytes = 0;
        n_strips = 0;
        n_opt_actual = 0;
        n_opt_bound = 0;
        n_corrupt = 0;
        n_wal_trunc = 0;
        n_wal_repair = 0;
      }
    in
    Hashtbl.add acc.per_node node na;
    na

let profile sink =
  let events = Sink.events sink in
  let phases : (string, phase_acc) Hashtbl.t = Hashtbl.create 8 in
  let phase_order = ref [] in
  let phase name =
    match Hashtbl.find_opt phases name with
    | Some acc -> acc
    | None ->
      let acc =
        {
          spans = 0;
          total_dur = 0;
          nodes = [];
          strips = 0;
          has_opt = false;
          has_integrity = false;
          per_node = Hashtbl.create 8;
        }
      in
      Hashtbl.add phases name acc;
      phase_order := name :: !phase_order;
      acc
  in
  let instants : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (ev : Sink.event) ->
      match ev.Sink.kind with
      | Sink.Span when ev.Sink.cat = "phase" ->
        let acc = phase ev.Sink.name in
        acc.spans <- acc.spans + 1;
        acc.total_dur <- acc.total_dur + ev.Sink.dur;
        if not (List.mem ev.Sink.node acc.nodes) then
          acc.nodes <- ev.Sink.node :: acc.nodes;
        let na = node_acc acc ev.Sink.node in
        na.n_spans <- na.n_spans + 1;
        na.n_wall <- na.n_wall + ev.Sink.dur;
        na.n_busy <- na.n_busy + int_arg "busy_ns" ev;
        na.n_bytes <- na.n_bytes + int_arg "bytes" ev;
        if List.mem_assoc "opt_actual_bytes" ev.Sink.args then begin
          acc.has_opt <- true;
          na.n_opt_actual <- na.n_opt_actual + int_arg "opt_actual_bytes" ev;
          na.n_opt_bound <- na.n_opt_bound + int_arg "opt_bound_bytes" ev
        end;
        if List.mem_assoc "corrupt_dropped" ev.Sink.args then begin
          acc.has_integrity <- true;
          na.n_corrupt <- na.n_corrupt + int_arg "corrupt_dropped" ev;
          na.n_wal_trunc <- na.n_wal_trunc + int_arg "wal_truncated" ev;
          na.n_wal_repair <- na.n_wal_repair + int_arg "wal_repaired" ev
        end
      | Sink.Span when ev.Sink.cat = "strip" -> (
        match strip_phase_label ev with
        | Some label ->
          let acc = phase label in
          acc.strips <- acc.strips + 1;
          let na = node_acc acc ev.Sink.node in
          na.n_strips <- na.n_strips + 1
        | None -> ())
      | Sink.Span -> ()
      | Sink.Instant ->
        let key = ev.Sink.cat ^ "/" ^ ev.Sink.name in
        Hashtbl.replace instants key
          (1 + Option.value ~default:0 (Hashtbl.find_opt instants key))
      | Sink.Counter -> ())
    events;
  let ordered = List.rev !phase_order in
  let ms ns = float_of_int ns *. 1e-6 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "Per-phase profile (sim time)\n";
  Buffer.add_string buf
    (Printf.sprintf "  %-24s %6s %6s %12s %8s\n" "phase" "runs" "nodes"
       "mean wall ms" "strips");
  List.iter
    (fun name ->
      let acc = Hashtbl.find phases name in
      if acc.spans = 0 then
        (* Strip spans whose phase label never produced a phase span (e.g.
           the category filter kept "strip" but not "phase"): a strip-only
           row, not a fabricated runs=0 nodes=0 mean=0.000 one. *)
        Buffer.add_string buf
          (Printf.sprintf "  %-24s %6s %6s %12s %8d\n" name "-" "-" "-"
             acc.strips)
      else begin
        let nnodes = List.length acc.nodes in
        let runs = acc.spans / nnodes in
        let mean_ms = float_of_int acc.total_dur /. float_of_int acc.spans *. 1e-6 in
        Buffer.add_string buf
          (Printf.sprintf "  %-24s %6d %6d %12.3f %8d\n" name runs nnodes
             mean_ms acc.strips)
      end)
    ordered;
  (* Per-node skew: the balance breakdown the global rows average away.
     wall is the node's phase-span time, busy its local+comm time inside
     the phase (the busy_ns span arg), bytes its sent volume; the summary
     line carries min/mean/max busy and the imbalance factor (max/mean). *)
  if List.exists (fun n -> Hashtbl.length (Hashtbl.find phases n).per_node > 0)
       ordered
  then begin
    Buffer.add_string buf "Per-node skew\n";
    Buffer.add_string buf
      (Printf.sprintf "  %-24s %6s %12s %12s %8s %12s\n" "phase" "node"
         "wall ms" "busy ms" "strips" "bytes");
    List.iter
      (fun name ->
        let acc = Hashtbl.find phases name in
        let rows =
          Hashtbl.fold (fun node na l -> (node, na) :: l) acc.per_node []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        List.iter
          (fun (node, na) ->
            if na.n_spans = 0 then
              Buffer.add_string buf
                (Printf.sprintf "  %-24s %6d %12s %12s %8d %12s\n" name node
                   "-" "-" na.n_strips "-")
            else
              Buffer.add_string buf
                (Printf.sprintf "  %-24s %6d %12.3f %12.3f %8d %12d\n" name
                   node (ms na.n_wall) (ms na.n_busy) na.n_strips na.n_bytes))
          rows;
        if acc.spans > 0 then begin
          let busies =
            List.filter_map
              (fun (_, na) -> if na.n_spans > 0 then Some na.n_busy else None)
              rows
          in
          let bmin = List.fold_left min max_int busies
          and bmax = List.fold_left max 0 busies
          and bsum = List.fold_left ( + ) 0 busies in
          let bmean = float_of_int bsum /. float_of_int (List.length busies) in
          let imbalance =
            if bmean <= 0. then 1. else float_of_int bmax /. bmean
          in
          Buffer.add_string buf
            (Printf.sprintf
               "  %-24s = wall %.3f ms over %d spans; busy min/mean/max \
                %.3f/%.3f/%.3f ms; imbalance %.2fx\n"
               name (ms acc.total_dur) acc.spans (ms bmin) (bmean *. 1e-6)
               (ms bmax) imbalance)
        end)
      ordered
  end;
  (* Per-phase communication optimality: each node's actually-moved bytes
     against its lower bound (unique remote objects at their footprints
     plus unique accumulation targets — see DESIGN.md §14). A ratio of
     1.00 is a run that fetched every remote object exactly once with no
     protocol overhead; the surplus decomposes into headers, retransmits
     and boundary-evicted refetches. *)
  if List.exists (fun n -> (Hashtbl.find phases n).has_opt) ordered then begin
    Buffer.add_string buf "Per-phase communication optimality\n";
    Buffer.add_string buf
      (Printf.sprintf "  %-24s %6s %12s %12s %8s\n" "phase" "node" "actual B"
         "bound B" "ratio");
    let pr_ratio actual bound =
      if bound <= 0 then if actual = 0 then "1.00" else "inf"
      else Printf.sprintf "%.2f" (float_of_int actual /. float_of_int bound)
    in
    List.iter
      (fun name ->
        let acc = Hashtbl.find phases name in
        if acc.has_opt then begin
          let rows =
            Hashtbl.fold (fun node na l -> (node, na) :: l) acc.per_node []
            |> List.sort (fun (a, _) (b, _) -> compare a b)
          in
          List.iter
            (fun (node, na) ->
              if na.n_spans > 0 then
                Buffer.add_string buf
                  (Printf.sprintf "  %-24s %6d %12d %12d %8s\n" name node
                     na.n_opt_actual na.n_opt_bound
                     (pr_ratio na.n_opt_actual na.n_opt_bound)))
            rows;
          let actual =
            List.fold_left (fun a (_, na) -> a + na.n_opt_actual) 0 rows
          and bound =
            List.fold_left (fun a (_, na) -> a + na.n_opt_bound) 0 rows
          in
          Buffer.add_string buf
            (Printf.sprintf
               "  %-24s = actual %d B, bound %d B, ratio %s\n" name actual
               bound (pr_ratio actual bound))
        end)
      ordered
  end;
  (* Per-phase integrity: corrupted copies each node's NIC fenced during
     the phase (checksum-failed frames, counted and dropped wire-silently)
     and the WAL records the restart scans truncated and repaired. Rows
     sum to the "=" line; bin/obs_check re-adds them as a consistency
     gate. Only present when a fault plan stamped the integrity args. *)
  if List.exists (fun n -> (Hashtbl.find phases n).has_integrity) ordered
  then begin
    Buffer.add_string buf "Per-phase integrity\n";
    Buffer.add_string buf
      (Printf.sprintf "  %-24s %6s %10s %10s %10s\n" "phase" "node" "corrupt"
         "wal trunc" "wal repair");
    List.iter
      (fun name ->
        let acc = Hashtbl.find phases name in
        if acc.has_integrity then begin
          let rows =
            Hashtbl.fold (fun node na l -> (node, na) :: l) acc.per_node []
            |> List.sort (fun (a, _) (b, _) -> compare a b)
          in
          List.iter
            (fun (node, na) ->
              if na.n_spans > 0 then
                Buffer.add_string buf
                  (Printf.sprintf "  %-24s %6d %10d %10d %10d\n" name node
                     na.n_corrupt na.n_wal_trunc na.n_wal_repair))
            rows;
          let sum f = List.fold_left (fun a (_, na) -> a + f na) 0 rows in
          Buffer.add_string buf
            (Printf.sprintf
               "  %-24s = %d corrupt dropped, %d wal truncated, %d repaired\n"
               name
               (sum (fun na -> na.n_corrupt))
               (sum (fun na -> na.n_wal_trunc))
               (sum (fun na -> na.n_wal_repair)))
        end)
      ordered
  end;
  let tallies =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) instants []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  if tallies <> [] then begin
    Buffer.add_string buf "Event tallies\n";
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf (Printf.sprintf "  %-40s %d\n" k v))
      tallies
  end;
  if Sink.dropped sink > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "  (%d instant/counter events overwritten in the ring)\n"
         (Sink.dropped sink));
  Buffer.add_string buf (Metrics.report (Sink.metrics sink));
  Buffer.contents buf

(** Minimal JSON values: enough to serialize traces and metrics and to
    validate emitted artifacts in tests without external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering. Strings are escaped per RFC 8259; non-finite floats
    render as [null]. *)

val to_buffer : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** Strict recursive-descent parser for the values {!to_string} produces
    (and general RFC 8259 input). Errors carry a byte offset. *)

val member : string -> t -> t option
(** [member key (Obj _)] looks a field up; [None] on other constructors. *)

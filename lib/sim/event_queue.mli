(** Priority queue of timestamped events.

    Ties are broken by insertion order (FIFO), which makes the whole
    simulation deterministic: two events posted for the same instant are
    processed in the order they were posted. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> time:int -> 'a -> unit
(** [add t ~time x] inserts [x] at timestamp [time] (nanoseconds). *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the event with the smallest [(time, insertion-order)]
    key, or [None] when empty. *)

val peek_time : 'a t -> int option

(** Discrete-event simulation engine.

    The engine owns one {!Node.t} per machine node and a global event queue.
    An event targets a node; when it is popped, the node's clock is advanced
    to the event timestamp (the gap accounted as idle — the node had nothing
    runnable, otherwise it would have scheduled work) and the action runs
    with the node clock as "now". Actions advance the clock through
    {!Node.charge_local} / {!Node.charge_comm} and may post further events.

    A busy node therefore serializes naturally: an event whose timestamp is
    in the node's past executes at the node's current clock, modelling a
    processor that polls the network only between units of work. *)

type t

val create : Machine.t -> t
(** The engine adopts {!Dpa_obs.Sink.global} (if any) as its event sink. *)

val machine : t -> Machine.t
val nodes : t -> Node.t array
val node : t -> int -> Node.t

val sink : t -> Dpa_obs.Sink.t option
(** The structured-event sink runtimes on this engine emit into. [None]
    (the default when no global sink is set) disables all emission at zero
    cost — producers guard every hook on this option. *)

val set_sink : t -> Dpa_obs.Sink.t option -> unit

val post : t -> time:int -> node:int -> (unit -> unit) -> unit
(** Schedule an action on [node] no earlier than [time]. *)

val post_now : t -> node:Node.t -> (unit -> unit) -> unit
(** Schedule an action on [node] at the node's current clock. *)

val run : t -> unit
(** Process events until the queue is empty. *)

val events_processed : t -> int

val barrier : t -> unit
(** Synchronize: advance every node's clock to the global maximum,
    accounting the gaps as idle. The queue must be empty. Emits one
    "barrier" instant per node when a sink is attached. *)

val elapsed : t -> int
(** Maximum node clock. *)

(** Discrete-event simulation engine.

    The engine owns one {!Node.t} per machine node and a global event queue.
    An event targets a node; when it is popped, the node's clock is advanced
    to the event timestamp (the gap accounted as idle — the node had nothing
    runnable, otherwise it would have scheduled work) and the action runs
    with the node clock as "now". Actions advance the clock through
    {!Node.charge_local} / {!Node.charge_comm} and may post further events.

    A busy node therefore serializes naturally: an event whose timestamp is
    in the node's past executes at the node's current clock, modelling a
    processor that polls the network only between units of work. *)

type t

type ext = ..
(** Extension slot for higher layers: the reliable transport in
    {!Dpa_msg.Am} keeps its per-engine protocol state (sequence counters,
    retransmit buffers, dedup tables) here, without the simulator depending
    on the message layer. *)

val create : Machine.t -> t
(** The engine adopts {!Dpa_obs.Sink.global} (if any) as its event sink,
    and instantiates a {!Fault.t} plan from the machine's fault spec (or
    the {!Fault.set_global} default) when one is set. *)

val machine : t -> Machine.t
val nodes : t -> Node.t array
val node : t -> int -> Node.t

val sink : t -> Dpa_obs.Sink.t option
(** The structured-event sink runtimes on this engine emit into. [None]
    (the default when no global sink is set) disables all emission at zero
    cost — producers guard every hook on this option. *)

val set_sink : t -> Dpa_obs.Sink.t option -> unit

val fault : t -> Fault.t option
(** The fault plan every message transmission is judged by; [None] (the
    default) is the perfect network, with the reliable-delivery protocol
    disabled and zero cost. *)

val set_fault : t -> Fault.t option -> unit

val ext : t -> ext option
val set_ext : t -> ext option -> unit

val post : t -> time:int -> node:int -> (unit -> unit) -> unit
(** Schedule an action on [node] no earlier than [time]. *)

val post_soft : t -> time:int -> node:int -> (unit -> unit) -> unit
(** Like {!post}, but popping the event does NOT advance the node clock:
    the action runs with the clock wherever the node left it, and must
    call {!Node.wait_until} itself if it does real work. This is what
    timeout wheels are built from — a timer that finds its message already
    acknowledged is a pure no-op and leaves the simulation untouched. *)

val post_now : t -> node:Node.t -> (unit -> unit) -> unit
(** Schedule an action on [node] at the node's current clock. *)

val post_background : t -> time:int -> node:int -> (unit -> unit) -> unit
(** Like {!post_soft}, but additionally excluded from {!live_events} — the
    event neither keeps the phase alive nor keeps samplers ticking. The
    runtime schedules crash/restart instants with it: a crash drawn past
    the end of the phase's real work must not stretch the phase, so the
    crash action checks [live_events > 0] and no-ops on a drained run. *)

val live_events : t -> int
(** Pending events, excluding periodic-sampler ticks. *)

val idle : t -> bool
(** True when the event queue is completely drained (sampler ticks
    included) — the precondition for phase-boundary cleanup such as
    pruning the reliable-delivery dedup tables. *)

val start_sampler : t -> period_ns:int -> name:string -> (Node.t -> int) -> unit
(** Fixed-rate counter track: every [period_ns] of sim-time emit one
    counter sample per node valued [f node] into the engine's sink (no-op
    without one). Ticks are soft events that never advance node clocks, so
    a sampled run is bit-identical to an unsampled one; sampling starts one
    period after the current {!elapsed} and stops at the first tick that
    finds no live (non-sampler) event pending — i.e. when the phase has
    drained. *)

val run : t -> unit
(** Process events until the queue is empty. *)

val events_processed : t -> int

val barrier : t -> unit
(** Synchronize: advance every node's clock to the global maximum,
    accounting the gaps as idle. The queue must be empty. Emits one
    "barrier" instant per node when a sink is attached, flushes the
    sink's stream writer, and — when the sink carries a causal graph —
    runs {!Dpa_obs.Critpath.at_barrier} over the phase window. *)

val elapsed : t -> int
(** Maximum node clock. *)

type t = {
  nodes : int;
  send_overhead_ns : int;
  recv_overhead_ns : int;
  wire_latency_ns : int;
  ns_per_byte : float;
  request_service_ns : int;
  request_service_per_obj_ns : int;
  hash_probe_ns : int;
  spawn_overhead_ns : int;
  dispatch_overhead_ns : int;
  poll_quantum_ns : int;
  msg_header_bytes : int;
  req_entry_bytes : int;
  update_entry_bytes : int;
  update_apply_ns : int;
  ingress_serialized : bool;
  faults : Fault.spec option;
  fault_seed : int;
  adaptive_rto : bool;
}

(* Process-wide default for [adaptive_rto], so the CLI can flip the whole
   run between the constant-base and estimator-driven retransmission
   policies without plumbing a flag through every experiment. *)
let default_adaptive_rto = ref true

let set_default_adaptive_rto b = default_adaptive_rto := b

let make ?(send_overhead_ns = 2_500) ?(recv_overhead_ns = 2_500)
    ?(wire_latency_ns = 2_000) ?(ns_per_byte = 33.)
    ?(request_service_ns = 1_500) ?(request_service_per_obj_ns = 200)
    ?(hash_probe_ns = 700) ?(spawn_overhead_ns = 700)
    ?(dispatch_overhead_ns = 100) ?(poll_quantum_ns = 50_000)
    ?(msg_header_bytes = 16) ?(req_entry_bytes = 12)
    ?(update_entry_bytes = 20) ?(update_apply_ns = 150)
    ?(ingress_serialized = false) ?faults ?(fault_seed = 0x5EED)
    ?adaptive_rto ~nodes () =
  if nodes <= 0 then invalid_arg "Machine.make: nodes must be positive";
  let adaptive_rto =
    match adaptive_rto with Some b -> b | None -> !default_adaptive_rto
  in
  {
    nodes;
    send_overhead_ns;
    recv_overhead_ns;
    wire_latency_ns;
    ns_per_byte;
    request_service_ns;
    request_service_per_obj_ns;
    hash_probe_ns;
    spawn_overhead_ns;
    dispatch_overhead_ns;
    poll_quantum_ns;
    msg_header_bytes;
    req_entry_bytes;
    update_entry_bytes;
    update_apply_ns;
    ingress_serialized;
    faults;
    fault_seed;
    adaptive_rto;
  }

let t3d ~nodes = make ~nodes ()

let transfer_ns t ~bytes =
  t.wire_latency_ns + int_of_float (ceil (float_of_int bytes *. t.ns_per_byte))

let pp ppf t =
  Format.fprintf ppf
    "@[<v>machine: %d nodes@ send/recv overhead: %d/%d ns@ wire latency: %d \
     ns@ bandwidth: %.1f ns/byte@ request service: %d + %d/obj ns@ hash \
     probe: %d ns@ spawn/dispatch overhead: %d/%d ns@ poll quantum: %d ns@ \
     header/request/update entry: %d/%d/%d bytes@ update apply: %d ns@ \
     ingress serialized: %b@ faults: %a (seed %d)@ adaptive rto: %b@]"
    t.nodes t.send_overhead_ns t.recv_overhead_ns t.wire_latency_ns
    t.ns_per_byte t.request_service_ns t.request_service_per_obj_ns
    t.hash_probe_ns t.spawn_overhead_ns t.dispatch_overhead_ns
    t.poll_quantum_ns t.msg_header_bytes t.req_entry_bytes
    t.update_entry_bytes t.update_apply_ns t.ingress_serialized
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.pp_print_string ppf "off")
       Fault.pp_spec)
    t.faults t.fault_seed t.adaptive_rto

type segment = { kind : Node.segment_kind; start : int; dur : int }

type t = {
  engine : Engine.t;
  per_node : segment Dpa_util.Dynarray.t array;
}

let attach engine =
  let nodes = Engine.nodes engine in
  (* A second trace would silently steal the node tracers from the first,
     leaving it truncated; make the conflict explicit. *)
  if Array.exists (fun n -> n.Node.tracer <> None) nodes then
    invalid_arg "Trace.attach: a trace is already attached (detach it first)";
  let t =
    { engine; per_node = Array.map (fun _ -> Dpa_util.Dynarray.create ()) nodes }
  in
  Array.iteri
    (fun i node ->
      Node.set_tracer node
        (Some
           (fun kind ~start ~dur ->
             ignore (Dpa_util.Dynarray.add t.per_node.(i) { kind; start; dur }))))
    nodes;
  t

let detach t =
  Array.iter (fun node -> Node.set_tracer node None) (Engine.nodes t.engine)

let nsegments t =
  Array.fold_left (fun acc d -> acc + Dpa_util.Dynarray.length d) 0 t.per_node

let totals t node =
  let local = ref 0 and comm = ref 0 and idle = ref 0 in
  Dpa_util.Dynarray.iter
    (fun s ->
      match s.kind with
      | Node.Local -> local := !local + s.dur
      | Node.Comm -> comm := !comm + s.dur
      | Node.Idle -> idle := !idle + s.dur)
    t.per_node.(node);
  (!local, !comm, !idle)

let bounds t =
  let lo = ref max_int and hi = ref 0 in
  Array.iter
    (Dpa_util.Dynarray.iter (fun s ->
         lo := min !lo s.start;
         hi := max !hi (s.start + s.dur)))
    t.per_node;
  if !lo > !hi then (0, 0) else (!lo, !hi)

let timeline ?(width = 72) t =
  let lo, hi = bounds t in
  let span = max 1 (hi - lo) in
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun node segs ->
      (* Per-bin accumulation of local/comm/idle nanoseconds. *)
      let acc = Array.make_matrix width 3 0 in
      Dpa_util.Dynarray.iter
        (fun s ->
          let k =
            match s.kind with Node.Local -> 0 | Node.Comm -> 1 | Node.Idle -> 2
          in
          (* Spread the segment across the bins it overlaps. *)
          let b0 = (s.start - lo) * width / span in
          let b1 = (s.start + s.dur - 1 - lo) * width / span in
          let b0 = max 0 (min (width - 1) b0)
          and b1 = max 0 (min (width - 1) b1) in
          if b0 = b1 then acc.(b0).(k) <- acc.(b0).(k) + s.dur
          else
            for b = b0 to b1 do
              (* Approximate: duration split evenly over covered bins. *)
              acc.(b).(k) <- acc.(b).(k) + (s.dur / (b1 - b0 + 1))
            done)
        segs;
      Buffer.add_string buf (Printf.sprintf "node %2d |" node);
      for b = 0 to width - 1 do
        let l = acc.(b).(0) and c = acc.(b).(1) and i = acc.(b).(2) in
        let ch =
          if l = 0 && c = 0 && i = 0 then ' '
          else if l >= c && l >= i then '#'
          else if c >= i then '+'
          else '.'
        in
        Buffer.add_char buf ch
      done;
      Buffer.add_string buf "|\n")
    t.per_node;
  Buffer.add_string buf
    (Printf.sprintf "%8s %s\n" ""
       (Printf.sprintf "0 .. %.4f ms   (# local, + comm, . idle)"
          (float_of_int span *. 1e-6)));
  Buffer.contents buf

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "node,kind,start_ns,dur_ns\n";
  Array.iteri
    (fun node segs ->
      Dpa_util.Dynarray.iter
        (fun s ->
          let kind =
            match s.kind with
            | Node.Local -> "local"
            | Node.Comm -> "comm"
            | Node.Idle -> "idle"
          in
          Buffer.add_string buf
            (Printf.sprintf "%d,%s,%d,%d\n" node kind s.start s.dur))
        segs)
    t.per_node;
  Buffer.contents buf

(** Per-node state: a simulated processor with a local clock and time
    accounting split into local work, communication overhead and idle time —
    the three segments of the paper's breakdown figures. *)

type segment_kind = Local | Comm | Idle

type t = {
  id : int;
  machine : Machine.t;
  mutable tracer : (segment_kind -> start:int -> dur:int -> unit) option;
      (** segment observer installed by {!set_tracer} *)
  mutable clock : int;  (** local virtual time, ns *)
  mutable link_free_at : int;
      (** earliest time the node's ingress link is free (used only when
          {!Machine.t.ingress_serialized} is set) *)
  mutable out_link_free_at : int;
      (** earliest time the node's egress link is free (same flag) *)
  mutable local_ns : int;  (** time spent in application computation *)
  mutable comm_ns : int;  (** time spent in messaging / runtime overhead *)
  mutable idle_ns : int;  (** time spent waiting with nothing to run *)
  mutable msgs_sent : int;
  mutable bytes_sent : int;
  mutable msgs_recv : int;
  mutable bytes_recv : int;
  mutable incarnation : int;
      (** crash-restart epoch, 0 at boot; the runtime bumps it when the
          node crashes. Messages stamp the destination's incarnation at
          transmit time and are fenced (rejected without effect) if it has
          changed by delivery — see {!Dpa_msg.Am} and DESIGN.md §13. *)
}

val create : machine:Machine.t -> id:int -> t

val charge_local : t -> int -> unit
(** Advance the clock by [ns] of application work. *)

val charge_comm : t -> int -> unit
(** Advance the clock by [ns] of communication overhead. *)

val wait_until : t -> int -> unit
(** Advance the clock to [time], accounting the gap as idle. No-op when
    [time <= clock]. *)

val reset_breakdown : t -> unit
(** Zero the accounting counters (not the clock); used at phase start. *)

val set_tracer : t -> (segment_kind -> start:int -> dur:int -> unit) option -> unit
(** Install (or remove) a segment observer: every charge and idle gap is
    reported with its start time and duration. Used by {!Trace}. *)

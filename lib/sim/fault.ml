type spec = {
  drop : float;
  dup : float;
  delay : float;
  jitter_ns : int;
  outages : int;
  outage_ns : int;
  outage_horizon_ns : int;
  slow_node : int;
  slow_factor : float;
  crashes : int;
  crash_ns : int;
  corrupt : float;
  torn_wal : float;
}

let none =
  {
    drop = 0.;
    dup = 0.;
    delay = 0.;
    jitter_ns = 10_000;
    outages = 0;
    outage_ns = 2_000_000;
    outage_horizon_ns = 50_000_000;
    slow_node = -1;
    slow_factor = 1.;
    crashes = 0;
    crash_ns = 3_000_000;
    corrupt = 0.;
    torn_wal = 0.;
  }

let light =
  { none with drop = 0.01; dup = 0.005; delay = 0.05; jitter_ns = 10_000 }

let heavy =
  {
    none with
    drop = 0.10;
    dup = 0.02;
    delay = 0.10;
    jitter_ns = 50_000;
    outages = 1;
  }

let check spec =
  let prob name p =
    if p < 0. || p >= 1. then
      invalid_arg
        (Printf.sprintf "Fault: %s must be in [0,1), got %g" name p)
  in
  prob "drop" spec.drop;
  prob "dup" spec.dup;
  prob "delay" spec.delay;
  if spec.jitter_ns < 0 then invalid_arg "Fault: jitter must be >= 0";
  if spec.outages < 0 then invalid_arg "Fault: outages must be >= 0";
  if spec.outage_ns < 0 then invalid_arg "Fault: outage-ns must be >= 0";
  if spec.outage_horizon_ns < 0 then
    invalid_arg "Fault: horizon-ns must be >= 0";
  if spec.slow_factor < 1. then invalid_arg "Fault: slow-factor must be >= 1";
  if spec.crashes < 0 then invalid_arg "Fault: crashes must be >= 0";
  if spec.crash_ns < 0 then invalid_arg "Fault: crash-ns must be >= 0";
  prob "corrupt" spec.corrupt;
  (* Unlike the per-message probabilities, torn-wal = 1 is meaningful and
     useful: "every crash tears the log tail" is the deterministic worst
     case the recovery tests pin down. *)
  if spec.torn_wal < 0. || spec.torn_wal > 1. then
    invalid_arg
      (Printf.sprintf "Fault: torn-wal must be in [0,1], got %g" spec.torn_wal);
  spec

let spec_to_string s =
  String.concat ","
    (List.filter_map
       (fun x -> x)
       [
         (if s.drop > 0. then Some (Printf.sprintf "drop=%g" s.drop) else None);
         (if s.dup > 0. then Some (Printf.sprintf "dup=%g" s.dup) else None);
         (if s.delay > 0. then Some (Printf.sprintf "delay=%g" s.delay)
          else None);
         (if s.delay > 0. then Some (Printf.sprintf "jitter=%d" s.jitter_ns)
          else None);
         (if s.outages > 0 then
            Some
              (Printf.sprintf "outages=%d,outage-ns=%d" s.outages s.outage_ns)
          else None);
         (if s.crashes > 0 then
            Some
              (Printf.sprintf "crashes=%d,crash-ns=%d" s.crashes s.crash_ns)
          else None);
         (if s.outages > 0 || s.crashes > 0 then
            Some (Printf.sprintf "horizon-ns=%d" s.outage_horizon_ns)
          else None);
         (if s.slow_node >= 0 then
            Some
              (Printf.sprintf "slow-node=%d,slow-factor=%g" s.slow_node
                 s.slow_factor)
          else None);
         (if s.corrupt > 0. then Some (Printf.sprintf "corrupt=%g" s.corrupt)
          else None);
         (if s.torn_wal > 0. then
            Some (Printf.sprintf "torn-wal=%g" s.torn_wal)
          else None);
       ])

let valid_keys =
  "drop, dup, delay, jitter-ns, outages, outage-ns, crashes, crash-ns, \
   horizon-ns, slow-node, slow-factor, corrupt, torn-wal"

let spec_of_string str =
    let parse_field acc field =
      match acc with
      | Error _ as e -> e
      | Ok spec -> (
        match String.index_opt field '=' with
        | None ->
          Error
            (Printf.sprintf "Fault: expected key=value, got %S (valid keys: %s)"
               field valid_keys)
        | Some i -> (
          let key = String.sub field 0 i in
          let v = String.sub field (i + 1) (String.length field - i - 1) in
          let f () =
            match float_of_string_opt v with
            | Some f -> Ok f
            | None -> Error (Printf.sprintf "Fault: bad number %S for %s" v key)
          in
          let n () =
            match int_of_string_opt v with
            | Some n -> Ok n
            | None -> Error (Printf.sprintf "Fault: bad integer %S for %s" v key)
          in
          let ( let* ) = Result.bind in
          match key with
          | "drop" ->
            let* x = f () in
            Ok { spec with drop = x }
          | "dup" ->
            let* x = f () in
            Ok { spec with dup = x }
          | "delay" ->
            let* x = f () in
            Ok { spec with delay = x }
          | "jitter" | "jitter-ns" ->
            let* x = n () in
            Ok { spec with jitter_ns = x }
          | "outages" ->
            let* x = n () in
            Ok { spec with outages = x }
          | "outage" | "outage-ns" ->
            let* x = n () in
            Ok { spec with outage_ns = x }
          | "horizon" | "horizon-ns" ->
            let* x = n () in
            Ok { spec with outage_horizon_ns = x }
          | "slow-node" ->
            let* x = n () in
            Ok { spec with slow_node = x }
          | "slow-factor" ->
            let* x = f () in
            Ok { spec with slow_factor = x }
          | "crashes" ->
            let* x = n () in
            Ok { spec with crashes = x }
          | "crash" | "crash-ns" ->
            let* x = n () in
            Ok { spec with crash_ns = x }
          | "corrupt" ->
            let* x = f () in
            Ok { spec with corrupt = x }
          | "torn-wal" | "torn" ->
            let* x = f () in
            Ok { spec with torn_wal = x }
          | _ ->
            Error
              (Printf.sprintf "Fault: unknown knob %S (valid keys: %s)" key
                 valid_keys)))
    in
    (* The first field may be a preset name the remaining knobs override,
       e.g. "heavy,crashes=1". *)
    let base, fields =
      match String.split_on_char ',' str with
      | first :: rest when not (String.contains first '=') -> (
        match first with
        | "none" -> (Ok none, rest)
        | "light" -> (Ok light, rest)
        | "heavy" -> (Ok heavy, rest)
        | _ ->
          ( Error
              (Printf.sprintf
                 "Fault: unknown preset %S (presets: none, light, heavy; \
                  valid keys: %s)"
                 first valid_keys),
            rest ))
      | fields -> (Ok none, fields)
    in
    match List.fold_left parse_field base fields with
    | Error _ as e -> e
    | Ok spec -> ( try Ok (check spec) with Invalid_argument m -> Error m)

let pp_spec ppf s =
  let str = spec_to_string s in
  Format.pp_print_string ppf (if str = "" then "none" else str)

type t = {
  spec : spec;
  seed : int;
  rng : Dpa_util.Rng.t;
  (* The corruption and tear streams are seeded independently of [rng]
     (plain xor-derived seeds, no [Rng.split] — a split consumes a parent
     draw) so enabling [corrupt] or [torn_wal] leaves the legacy
     drop/dup/delay/window schedule bit-identical, and [corrupt = 0]
     replays exactly as a spec without the knob. *)
  corrupt_rng : Dpa_util.Rng.t;
  torn_rng : Dpa_util.Rng.t;
  windows : (int * int) array array;
  crash_windows : (int * int) array array;
  mutable drops : int;
  mutable dups : int;
  mutable delayed : int;
  mutable outage_drops : int;
  mutable crash_drops : int;
  mutable corruptions : int;
  mutable tears : int;
}

let make ?(seed = 0x5EED) spec ~nodes =
  let spec = check spec in
  if nodes <= 0 then invalid_arg "Fault.make: nodes must be positive";
  let rng = Dpa_util.Rng.create ~seed in
  (* Outage and crash windows are drawn up front (one independent stream
     per node) so the schedule is a pure function of (spec, seed, nodes) —
     per-message draws later cannot perturb it. Crash draws come after the
     outage draws on the same per-node stream, so a spec with [crashes = 0]
     yields exactly the schedule it did before crashes existed. *)
  let windows = Array.make nodes [||] in
  let crash_windows = Array.make nodes [||] in
  for n = 0 to nodes - 1 do
    let node_rng = Dpa_util.Rng.split rng in
    windows.(n) <-
      Array.init spec.outages (fun _ ->
          let start =
            Dpa_util.Rng.int node_rng (max 1 spec.outage_horizon_ns)
          in
          (start, start + spec.outage_ns));
    crash_windows.(n) <-
      Array.init spec.crashes (fun _ ->
          let start =
            Dpa_util.Rng.int node_rng (max 1 spec.outage_horizon_ns)
          in
          (start, start + spec.crash_ns))
  done;
  Array.iter (fun w -> Array.sort compare w) windows;
  Array.iter (fun w -> Array.sort compare w) crash_windows;
  {
    spec;
    seed;
    rng;
    corrupt_rng = Dpa_util.Rng.create ~seed:(seed lxor 0x51C6C0DE);
    torn_rng = Dpa_util.Rng.create ~seed:(seed lxor 0x7EA410C5);
    windows;
    crash_windows;
    drops = 0;
    dups = 0;
    delayed = 0;
    outage_drops = 0;
    crash_drops = 0;
    corruptions = 0;
    tears = 0;
  }

let seed t = t.seed
let spec t = t.spec

let in_outage t ~node ~time =
  node >= 0
  && node < Array.length t.windows
  && Array.exists (fun (s, e) -> time >= s && time < e) t.windows.(node)

let outage_windows t ~node =
  if node < 0 || node >= Array.length t.windows then
    invalid_arg "Fault.outage_windows: bad node";
  Array.to_list t.windows.(node)

let in_crash t ~node ~time =
  node >= 0
  && node < Array.length t.crash_windows
  && Array.exists (fun (s, e) -> time >= s && time < e) t.crash_windows.(node)

let crash_windows t ~node =
  if node < 0 || node >= Array.length t.crash_windows then
    invalid_arg "Fault.crash_windows: bad node";
  Array.to_list t.crash_windows.(node)

let has_crashes t = t.spec.crashes > 0

type verdict = Deliver of int list | Drop | Outage

let judge t ~now ~arrival ~src ~dst ~transfer_ns =
  if in_crash t ~node:src ~time:now || in_crash t ~node:dst ~time:arrival
  then begin
    t.crash_drops <- t.crash_drops + 1;
    Outage
  end
  else if
    in_outage t ~node:src ~time:now || in_outage t ~node:dst ~time:arrival
  then begin
    t.outage_drops <- t.outage_drops + 1;
    Outage
  end
  else if t.spec.drop > 0. && Dpa_util.Rng.uniform t.rng < t.spec.drop then begin
    t.drops <- t.drops + 1;
    Drop
  end
  else begin
    let slow =
      t.spec.slow_factor > 1.
      && (src = t.spec.slow_node || dst = t.spec.slow_node)
    in
    let base =
      if slow then
        int_of_float ((t.spec.slow_factor -. 1.) *. float_of_int transfer_ns)
      else 0
    in
    let jitter () =
      if t.spec.delay > 0. && Dpa_util.Rng.uniform t.rng < t.spec.delay
      then begin
        t.delayed <- t.delayed + 1;
        1 + Dpa_util.Rng.int t.rng (max 1 t.spec.jitter_ns)
      end
      else 0
    in
    let first = base + jitter () in
    if t.spec.dup > 0. && Dpa_util.Rng.uniform t.rng < t.spec.dup then begin
      t.dups <- t.dups + 1;
      (* The duplicate trails the original by its own positive jitter, so
         the two copies never race on an identical timestamp. *)
      let trail = 1 + Dpa_util.Rng.int t.rng (max 1 t.spec.jitter_ns) in
      Deliver [ first; first + trail ]
    end
    else Deliver [ first ]
  end

let drops t = t.drops
let dups t = t.dups
let delayed t = t.delayed
let outage_drops t = t.outage_drops
let crash_drops t = t.crash_drops
let corruptions t = t.corruptions
let tears t = t.tears

(* --- integrity fault classes ------------------------------------------- *)

let corruption_enabled t = t.spec.corrupt > 0.

(* One draw per delivered copy (the transport calls this at transmit time,
   inside the engine's deterministic event order). [None] without a single
   stream access when the knob is off, so schedules replay identically. *)
let corrupt_copy t =
  if t.spec.corrupt <= 0. then None
  else if Dpa_util.Rng.uniform t.corrupt_rng < t.spec.corrupt then begin
    t.corruptions <- t.corruptions + 1;
    Some (Dpa_util.Rng.int t.corrupt_rng (1 lsl 30))
  end
  else None

type tear = {
  tear_log : [ `Update_wal | `Journal ];
  tear_slot : bool;
  tear_flip : bool;
  tear_pos : int;
}

(* Per crash event: for each durable log of the victim, decide whether its
   tail is torn and how. The position/kind draws happen only for torn logs
   and all come from the dedicated stream, so crash schedules themselves
   never shift when the knob is toggled. *)
let draw_tears t =
  if t.spec.torn_wal <= 0. then []
  else
    List.filter_map
      (fun log ->
        if Dpa_util.Rng.uniform t.torn_rng < t.spec.torn_wal then begin
          t.tears <- t.tears + 1;
          let tear_slot = Dpa_util.Rng.int t.torn_rng 4 = 0 in
          let tear_flip = Dpa_util.Rng.int t.torn_rng 2 = 0 in
          let tear_pos = Dpa_util.Rng.int t.torn_rng (1 lsl 30) in
          Some { tear_log = log; tear_slot; tear_flip; tear_pos }
        end
        else None)
      [ `Update_wal; `Journal ]

(* Process-global default, mirroring [Dpa_obs.Sink.set_global]: drivers
   (e.g. the CLI's [--faults] flag) can perturb every engine created during
   a run without threading a value through the experiment harness. *)
let global_spec : (spec * int) option ref = ref None
let set_global ?(seed = 0x5EED) spec =
  global_spec := Option.map (fun s -> (check s, seed)) spec
let global () = !global_spec

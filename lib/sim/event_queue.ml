(* Binary min-heap keyed by (time, seq). The [seq] counter implements the
   FIFO tie-break documented in the interface. *)

type 'a cell = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a cell array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; len = 0; next_seq = 0 }

let length t = t.len

let is_empty t = t.len = 0

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t cell =
  let cap = Array.length t.heap in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let nheap = Array.make ncap cell in
  Array.blit t.heap 0 nheap 0 t.len;
  t.heap <- nheap

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h.(i) h.(parent) then begin
      let tmp = h.(i) in
      h.(i) <- h.(parent);
      h.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h len i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < len && less h.(l) h.(i) then l else i in
  let smallest = if r < len && less h.(r) h.(smallest) then r else smallest in
  if smallest <> i then begin
    let tmp = h.(i) in
    h.(i) <- h.(smallest);
    h.(smallest) <- tmp;
    sift_down h len smallest
  end

let add t ~time payload =
  if time < 0 then invalid_arg "Event_queue.add: negative time";
  let cell = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.len = Array.length t.heap then grow t cell;
  t.heap.(t.len) <- cell;
  t.len <- t.len + 1;
  sift_up t.heap (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      sift_down t.heap t.len 0
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.len = 0 then None else Some t.heap.(0).time

(** Deterministic fault injection for the simulated network.

    A {!spec} describes a fault regime (per-message drop/duplication/delay
    probabilities, per-node transient NIC outage windows, an optional slow
    node, and crash-restart windows in which a node loses its volatile
    state); {!make} instantiates it into a plan whose every decision is
    drawn from a seeded {!Dpa_util.Rng}, so a given (spec, seed, nodes)
    triple replays the exact same fault schedule — chaos runs are
    reproducible bit-for-bit, which is what lets the test suite assert that
    computed results are identical to the fault-free run.

    The message layer ({!Dpa_msg.Am}) consults the plan once per physical
    transmission; when any plan is installed on an engine the reliable
    delivery protocol (sequence-numbered envelopes, acks, deduplication,
    retransmission with capped exponential backoff, incarnation fencing)
    switches on with it. With no plan installed neither exists and the
    simulation is bit-identical to a build without this module.

    Two fault classes take a node down for a window of simulated time:

    - an {e outage} silences the node's NIC — messages to or from it are
      dropped for the window, but all node state survives;
    - a {e crash} additionally destroys the node's volatile state. The
      runtime ({!Dpa.Runtime}) reacts by bumping the node's incarnation,
      discarding its alignment buffer, aggregation batches and in-flight
      transport conversations, and — at the restart instant — re-fetching
      every outstanding request through the normal alignment path.

    This module only decides {e when} crashes happen (it draws the windows
    and silences the NIC for their duration, exactly like outages); the
    state loss and recovery live in the runtime and message layers. See
    DESIGN.md §13 for the full fault-model contract and docs/FAULTS.md for
    the operator guide. *)

type spec = {
  drop : float;  (** per-message drop probability, [0, 1) *)
  dup : float;  (** per-message duplication probability, [0, 1) *)
  delay : float;  (** probability of extra delivery delay, [0, 1) *)
  jitter_ns : int;  (** extra delay drawn uniform in [1, jitter_ns] *)
  outages : int;  (** transient NIC outage windows per node *)
  outage_ns : int;  (** length of each outage window *)
  outage_horizon_ns : int;
      (** outage and crash window start times are drawn uniform in
          [0, horizon) of simulated time *)
  slow_node : int;  (** node whose NIC is slow, or -1 for none *)
  slow_factor : float;
      (** >= 1; messages to/from the slow node take [slow_factor] times
          their serialization time extra on the wire *)
  crashes : int;  (** crash-restart windows per node *)
  crash_ns : int;
      (** down time of each crash: the node rejoins (with a fresh
          incarnation and cold volatile state) [crash_ns] after the crash
          instant *)
  corrupt : float;
      (** per-delivered-copy wire-corruption probability, [0, 1): a
          corrupted copy has one seeded bit flipped in its checksum-fenced
          frame ({!Dpa_msg.Wire}), fails verification at the destination
          NIC, and is counted and dropped — no ack, no handler — so the
          retransmission machinery recovers it as a loss *)
  torn_wal : float;
      (** per-crash, per-log torn-write probability, [0, 1] (1 is allowed:
          every crash tears deterministically): the victim's update-WAL
          and applied-batch journal may each lose or corrupt their tail
          record, which the restart walk's checksum scan detects and
          repairs ({!Dpa.Wal}) *)
}

val none : spec
(** All rates zero. Installing it still enables the reliable-delivery
    protocol (useful for measuring pure protocol overhead); leaving the
    machine's fault field [None] disables both. *)

val light : spec
(** 1% drop, 0.5% duplication, 5% delayed. *)

val heavy : spec
(** 10% drop, 2% duplication, 10% delayed, one outage window per node. *)

val spec_of_string : string -> (spec, string) result
(** Parse ["none"], ["light"], ["heavy"], or a comma-separated
    [key=value] list over the knobs [drop], [dup], [delay], [jitter-ns],
    [outages], [outage-ns], [crashes], [crash-ns], [horizon-ns],
    [slow-node], [slow-factor], [corrupt], [torn-wal]
    (e.g. ["drop=0.05,dup=0.01,outages=1"]).
    The first field may be a preset name that the remaining knobs
    override, e.g. ["heavy,crashes=1"]. Unset knobs default to {!none}'s
    values. Errors name the offending field {e and} enumerate the accepted
    keys. *)

val spec_to_string : spec -> string
(** Inverse of {!spec_of_string} up to defaulted knobs; [""] for {!none}.
    [spec_to_string] and [spec_of_string] form a round trip: parsing a
    printed spec yields a spec that prints identically (property-tested in
    [test/test_fault.ml]). *)

val pp_spec : Format.formatter -> spec -> unit
(** Like {!spec_to_string} but prints ["none"] for the empty spec. *)

type t
(** An instantiated plan: spec + seeded RNG + injection counters. *)

val make : ?seed:int -> spec -> nodes:int -> t
(** Validates the spec ([Invalid_argument] on out-of-range knobs) and
    draws the outage and crash schedules. Equal (spec, seed, nodes) give
    equal plans; crash windows are drawn after the outage windows on the
    same per-node streams, so adding [crashes = 0] to an existing spec
    changes nothing. *)

val seed : t -> int
val spec : t -> spec

type verdict =
  | Deliver of int list
      (** one entry per copy to deliver (two when duplicated), each the
          extra delay in ns beyond the fault-free arrival time *)
  | Drop  (** lost in the network *)
  | Outage
      (** dropped because an endpoint's NIC was down — either an outage
          window or a crash window (see {!crash_drops} for the split) *)

val judge :
  t -> now:int -> arrival:int -> src:int -> dst:int -> transfer_ns:int ->
  verdict
(** Decide the fate of one physical transmission sent at [now] that would
    arrive fault-free at [arrival]. [transfer_ns] is its serialization
    time, the base the slow-node penalty scales. Consumes RNG draws; the
    engine's deterministic event order makes the draw sequence — and hence
    the whole fault schedule — reproducible. *)

val in_outage : t -> node:int -> time:int -> bool

val outage_windows : t -> node:int -> (int * int) list
(** The [(start, end)] outage windows drawn for [node] at {!make} time. *)

val in_crash : t -> node:int -> time:int -> bool
(** Whether [node] is inside one of its crash windows (down, volatile
    state lost at the window's start) at simulated [time]. *)

val crash_windows : t -> node:int -> (int * int) list
(** The [(crash, restart)] instants drawn for [node] at {!make} time,
    sorted by crash instant. The runtime executes the state loss at
    [crash] and the rejoin at [restart]. *)

val has_crashes : t -> bool
(** [true] iff the spec schedules at least one crash window per node —
    the runtime's cue to post crash/restart events for a phase. *)

val drops : t -> int
val dups : t -> int
val delayed : t -> int

val outage_drops : t -> int
(** Transmissions silenced by an outage window. *)

val crash_drops : t -> int
(** Transmissions silenced by a crash window (reported as
    {!constructor-Outage} verdicts, counted separately). *)

(** {2 Integrity fault classes}

    Corruption and torn-write draws come from dedicated streams seeded
    independently of the plan's base RNG (no {!Dpa_util.Rng.split} off it,
    which would consume a draw): toggling either knob leaves the
    drop/dup/delay/outage/crash schedule bit-identical, and a spec with
    the knob at zero replays exactly as one without it. *)

val corruption_enabled : t -> bool
(** Whether the spec carries a positive [corrupt] rate — the transport's
    cue to materialize and verify checksum frames at all. *)

val corrupt_copy : t -> int option
(** Per delivered copy: [Some r] when this copy is corrupted, where [r]
    seeds the bit position to flip in its frame; [None] (with no stream
    access) when [corrupt] is zero. Counted in {!corruptions}. *)

type tear = {
  tear_log : [ `Update_wal | `Journal ];  (** which durable log is hit *)
  tear_slot : bool;
      (** tear the doublewrite slot instead of the main log tail *)
  tear_flip : bool;  (** bit-flip rather than truncate *)
  tear_pos : int;  (** seeds the byte/bit position within the tail *)
}

val draw_tears : t -> tear list
(** Per crash event: the torn-write damage to apply to the victim's
    durable logs (at most one entry per log). Empty — with no stream
    access — when [torn_wal] is zero. Counted in {!tears}. *)

val corruptions : t -> int
(** Copies the plan decided to corrupt ({!corrupt_copy} = [Some _]). *)

val tears : t -> int
(** Log tears drawn by {!draw_tears}. *)

val set_global : ?seed:int -> spec option -> unit
(** Process-global default plan spec, picked up by
    {!Dpa_sim.Engine.create} when the machine carries no fault spec of its
    own — the CLI's [--faults] flag uses this, mirroring
    [Dpa_obs.Sink.set_global]. *)

val global : unit -> (spec * int) option

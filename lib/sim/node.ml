type segment_kind = Local | Comm | Idle

type t = {
  id : int;
  machine : Machine.t;
  mutable tracer : (segment_kind -> start:int -> dur:int -> unit) option;
  mutable clock : int;
  mutable link_free_at : int;
  mutable out_link_free_at : int;
  mutable local_ns : int;
  mutable comm_ns : int;
  mutable idle_ns : int;
  mutable msgs_sent : int;
  mutable bytes_sent : int;
  mutable msgs_recv : int;
  mutable bytes_recv : int;
  mutable incarnation : int;
}

let create ~machine ~id =
  {
    id;
    machine;
    tracer = None;
    clock = 0;
    link_free_at = 0;
    out_link_free_at = 0;
    local_ns = 0;
    comm_ns = 0;
    idle_ns = 0;
    msgs_sent = 0;
    bytes_sent = 0;
    msgs_recv = 0;
    bytes_recv = 0;
    incarnation = 0;
  }

let emit t kind ~start ~dur =
  match t.tracer with
  | Some f when dur > 0 -> f kind ~start ~dur
  | Some _ | None -> ()

let charge_local t ns =
  assert (ns >= 0);
  emit t Local ~start:t.clock ~dur:ns;
  t.clock <- t.clock + ns;
  t.local_ns <- t.local_ns + ns

let charge_comm t ns =
  assert (ns >= 0);
  emit t Comm ~start:t.clock ~dur:ns;
  t.clock <- t.clock + ns;
  t.comm_ns <- t.comm_ns + ns

let wait_until t time =
  if time > t.clock then begin
    emit t Idle ~start:t.clock ~dur:(time - t.clock);
    t.idle_ns <- t.idle_ns + (time - t.clock);
    t.clock <- time
  end

let set_tracer t f = t.tracer <- f

let reset_breakdown t =
  t.local_ns <- 0;
  t.comm_ns <- 0;
  t.idle_ns <- 0;
  t.msgs_sent <- 0;
  t.bytes_sent <- 0;
  t.msgs_recv <- 0;
  t.bytes_recv <- 0

(** A set-associative LRU data-cache model (object granularity).

    Used to study the cache-locality side of DPA (§6 of the paper connects
    pointer-aligned scheduling to the cache-reordering work of Philbin et
    al.): feed it the object-access trace of a traversal order and read off
    the miss rate. *)

type t

val create : ?assoc:int -> lines:int -> unit -> t
(** [lines] total cache lines (rounded up to a multiple of [assoc]);
    [assoc] defaults to 4-way. *)

val access : t -> int -> bool
(** [access t key] touches the object [key]; [true] on hit. *)

val hits : t -> int
val misses : t -> int
val miss_rate : t -> float
val reset : t -> unit

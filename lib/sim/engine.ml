type event = { node : int; action : unit -> unit }

type t = {
  machine : Machine.t;
  nodes : Node.t array;
  queue : event Event_queue.t;
  mutable events_processed : int;
  mutable sink : Dpa_obs.Sink.t option;
}

let create machine =
  {
    machine;
    nodes = Array.init machine.Machine.nodes (fun id -> Node.create ~machine ~id);
    queue = Event_queue.create ();
    events_processed = 0;
    (* Observability is opt-in: engines observe the process-global sink at
       creation time, so drivers can enable it without plumbing. *)
    sink = Dpa_obs.Sink.global ();
  }

let sink t = t.sink

let set_sink t s = t.sink <- s

let machine t = t.machine

let nodes t = t.nodes

let node t i = t.nodes.(i)

let post t ~time ~node action =
  if node < 0 || node >= Array.length t.nodes then
    invalid_arg "Engine.post: bad node id";
  Event_queue.add t.queue ~time { node; action }

let post_now t ~node action =
  Event_queue.add t.queue ~time:node.Node.clock
    { node = node.Node.id; action }

let run t =
  let rec loop () =
    match Event_queue.pop t.queue with
    | None -> ()
    | Some (time, ev) ->
      let n = t.nodes.(ev.node) in
      Node.wait_until n time;
      t.events_processed <- t.events_processed + 1;
      ev.action ();
      loop ()
  in
  loop ()

let events_processed t = t.events_processed

let elapsed t = Array.fold_left (fun acc n -> max acc n.Node.clock) 0 t.nodes

let barrier t =
  if not (Event_queue.is_empty t.queue) then
    invalid_arg "Engine.barrier: events still pending";
  let m = elapsed t in
  Array.iter (fun n -> Node.wait_until n m) t.nodes;
  match t.sink with
  | None -> ()
  | Some sink ->
    Array.iter
      (fun n ->
        Dpa_obs.Sink.instant sink ~cat:"sim" ~name:"barrier" ~node:n.Node.id
          ~ts:m)
      t.nodes

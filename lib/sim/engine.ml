type event = {
  node : int;
  action : unit -> unit;
  advance : bool;  (* advance the node clock to the event time on pop *)
  sampler : bool;  (* periodic-sampler tick: excluded from the live count *)
}

type ext = ..

type t = {
  machine : Machine.t;
  nodes : Node.t array;
  queue : event Event_queue.t;
  mutable events_processed : int;
  mutable sink : Dpa_obs.Sink.t option;
  mutable fault : Fault.t option;
  mutable ext : ext option;
  mutable live : int;  (* pending non-sampler events *)
}

let create machine =
  {
    machine;
    nodes = Array.init machine.Machine.nodes (fun id -> Node.create ~machine ~id);
    queue = Event_queue.create ();
    events_processed = 0;
    (* Observability is opt-in: engines observe the process-global sink at
       creation time, so drivers can enable it without plumbing. *)
    sink = Dpa_obs.Sink.global ();
    (* Fault injection follows the same pattern: an explicit per-machine
       spec wins, otherwise the process-global default (the CLI's
       [--faults]) applies. Each engine gets its own plan — and hence its
       own RNG stream — so concurrent experiments stay deterministic. *)
    fault =
      (match machine.Machine.faults with
      | Some spec ->
        Some
          (Fault.make ~seed:machine.Machine.fault_seed spec
             ~nodes:machine.Machine.nodes)
      | None -> (
        match Fault.global () with
        | Some (spec, seed) ->
          Some (Fault.make ~seed spec ~nodes:machine.Machine.nodes)
        | None -> None));
    ext = None;
    live = 0;
  }

let sink t = t.sink

let set_sink t s = t.sink <- s

let fault t = t.fault

let set_fault t f = t.fault <- f

let ext t = t.ext

let set_ext t e = t.ext <- e

let machine t = t.machine

let nodes t = t.nodes

let node t i = t.nodes.(i)

let enqueue t ~time ~node ~advance ~sampler action =
  if node < 0 || node >= Array.length t.nodes then
    invalid_arg "Engine.post: bad node id";
  if not sampler then t.live <- t.live + 1;
  Event_queue.add t.queue ~time { node; action; advance; sampler }

let post t ~time ~node action =
  enqueue t ~time ~node ~advance:true ~sampler:false action

let post_soft t ~time ~node action =
  enqueue t ~time ~node ~advance:false ~sampler:false action

let post_now t ~node action =
  enqueue t ~time:node.Node.clock ~node:node.Node.id ~advance:true
    ~sampler:false action

(* Background events never advance a clock and are excluded from the live
   count: they neither keep the phase alive nor keep samplers ticking.
   The fault layer's crash/restart instants use them — a crash scheduled
   past the end of the phase's real work must not stretch the phase. *)
let post_background t ~time ~node action =
  enqueue t ~time ~node ~advance:false ~sampler:true action

let live_events t = t.live

let idle t = Event_queue.is_empty t.queue

let run t =
  let rec loop () =
    match Event_queue.pop t.queue with
    | None -> ()
    | Some (time, ev) ->
      let n = t.nodes.(ev.node) in
      if ev.advance then Node.wait_until n time;
      if not ev.sampler then t.live <- t.live - 1;
      t.events_processed <- t.events_processed + 1;
      ev.action ();
      loop ()
  in
  loop ()

let events_processed t = t.events_processed

let elapsed t = Array.fold_left (fun acc n -> max acc n.Node.clock) 0 t.nodes

let start_sampler t ~period_ns ~name f =
  if period_ns <= 0 then
    invalid_arg "Engine.start_sampler: period must be positive";
  match t.sink with
  | None -> ()
  | Some sink ->
    (* A self-rescheduling soft tick: it never advances a node clock (so a
       sampled run stays bit-identical to an unsampled one) and stops as
       soon as no real event is pending — the phase has drained. *)
    let rec tick time =
      enqueue t ~time ~node:0 ~advance:false ~sampler:true (fun () ->
          (* Checked before emitting: once the phase has drained, a sample
             at this tick's time would be stamped past the phase end —
             fabricated, and out of order with the next phase's events in
             a streamed JSONL export. *)
          if t.live > 0 then begin
            Array.iter
              (fun (n : Node.t) ->
                Dpa_obs.Sink.counter sink ~name ~node:n.Node.id ~ts:time (f n))
              t.nodes;
            tick (time + period_ns)
          end)
    in
    tick (elapsed t + period_ns)

let barrier t =
  if not (Event_queue.is_empty t.queue) then
    invalid_arg "Engine.barrier: events still pending";
  let m = elapsed t in
  Array.iter (fun n -> Node.wait_until n m) t.nodes;
  match t.sink with
  | None -> ()
  | Some sink ->
    Array.iter
      (fun n ->
        Dpa_obs.Sink.instant sink ~cat:"sim" ~name:"barrier" ~node:n.Node.id
          ~ts:m)
      t.nodes;
    (* A barrier is a quiescent point: every event emitted so far is
       stamped at or before [m] and everything after starts at or past it,
       so this is where a streaming event writer may safely sort and flush
       its segment (no-op when none is attached). *)
    Dpa_obs.Sink.flush_writer sink;
    (* Same quiescence argument for the happens-before window: nothing can
       extend it past the barrier, so this is where the critical-path
       analyzer consumes it (one instance per labeled phase) and the graph
       memory is reclaimed. *)
    (match Dpa_obs.Sink.causal sink with
    | Some c -> Dpa_obs.Critpath.at_barrier c
    | None -> ())

type t = {
  assoc : int;
  nsets : int;
  (* sets.(s) is the set's contents, most-recently used first. -1 = empty. *)
  sets : int array array;
  mutable hits : int;
  mutable misses : int;
}

let create ?(assoc = 4) ~lines () =
  if assoc <= 0 then invalid_arg "Dcache.create: assoc must be positive";
  if lines <= 0 then invalid_arg "Dcache.create: lines must be positive";
  let nsets = max 1 ((lines + assoc - 1) / assoc) in
  {
    assoc;
    nsets;
    sets = Array.init nsets (fun _ -> Array.make assoc (-1));
    hits = 0;
    misses = 0;
  }

let set_of t key = (key * 0x9E3779B1 land max_int) mod t.nsets

let access t key =
  if key < 0 then invalid_arg "Dcache.access: negative key";
  let set = t.sets.(set_of t key) in
  let rec find i = if i >= t.assoc then -1 else if set.(i) = key then i else find (i + 1) in
  let pos = find 0 in
  if pos >= 0 then begin
    (* Move to front (LRU within the set). *)
    for j = pos downto 1 do
      set.(j) <- set.(j - 1)
    done;
    set.(0) <- key;
    t.hits <- t.hits + 1;
    true
  end
  else begin
    for j = t.assoc - 1 downto 1 do
      set.(j) <- set.(j - 1)
    done;
    set.(0) <- key;
    t.misses <- t.misses + 1;
    false
  end

let hits t = t.hits
let misses t = t.misses

let miss_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.misses /. float_of_int total

let reset t =
  Array.iter (fun set -> Array.fill set 0 t.assoc (-1)) t.sets;
  t.hits <- 0;
  t.misses <- 0

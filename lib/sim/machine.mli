(** Cost model of the simulated distributed-memory machine.

    All times are nanoseconds of simulated time. The defaults ([t3d]) are
    calibrated to the Cray T3D with Illinois Fast Messages, the platform of
    the DPA paper: 150 MHz Alpha nodes, microsecond-scale message overheads,
    and tens of MB/s of deliverable bandwidth. *)

type t = {
  nodes : int;  (** number of processing nodes *)
  send_overhead_ns : int;  (** CPU cost to inject one message *)
  recv_overhead_ns : int;  (** CPU cost to extract one message *)
  wire_latency_ns : int;  (** network transit time, independent of size *)
  ns_per_byte : float;  (** inverse bandwidth *)
  request_service_ns : int;  (** fixed cost of a remote-read request handler *)
  request_service_per_obj_ns : int;  (** additional cost per object served *)
  hash_probe_ns : int;  (** software-caching hash lookup (baseline) *)
  spawn_overhead_ns : int;  (** creating a DPA thread record *)
  dispatch_overhead_ns : int;  (** scheduling a ready DPA thread *)
  poll_quantum_ns : int;  (** max uninterrupted compute between polls *)
  msg_header_bytes : int;  (** per-message envelope *)
  req_entry_bytes : int;  (** per-request bytes in an aggregated message *)
  update_entry_bytes : int;  (** per-update bytes (pointer, field, value) *)
  update_apply_ns : int;  (** owner-side cost to apply one update *)
  ingress_serialized : bool;
      (** when true, messages to the same destination serialize through its
          network interface (one at a time at wire bandwidth) — hot spots
          become visible. Off by default: links are contention-free. *)
  faults : Fault.spec option;
      (** when set, every message transmission is judged by a
          {!Fault.t} plan instantiated per engine, and the message layer
          switches to its reliable-delivery protocol (envelopes, acks,
          dedup, retransmission). [None] (the default) is the perfect
          network the paper assumes — and is bit-identical to builds
          without the fault subsystem. *)
  fault_seed : int;  (** seed for the per-engine fault plan *)
  adaptive_rto : bool;
      (** when true (the default), the reliable-delivery layer bases its
          retransmission timeout on a Jacobson–Karels estimate of the
          per-link ack round trip, and the DPA runtime's end-to-end
          request timers on an estimate of full delivery latency
          (including retransmission recovery), instead of the constant
          worst-case formula. Only observable under a fault plan: the
          fault-free path arms no timers at all. *)
}

val t3d : nodes:int -> t
(** T3D-era defaults for a machine with [nodes] nodes. *)

val make :
  ?send_overhead_ns:int ->
  ?recv_overhead_ns:int ->
  ?wire_latency_ns:int ->
  ?ns_per_byte:float ->
  ?request_service_ns:int ->
  ?request_service_per_obj_ns:int ->
  ?hash_probe_ns:int ->
  ?spawn_overhead_ns:int ->
  ?dispatch_overhead_ns:int ->
  ?poll_quantum_ns:int ->
  ?msg_header_bytes:int ->
  ?req_entry_bytes:int ->
  ?update_entry_bytes:int ->
  ?update_apply_ns:int ->
  ?ingress_serialized:bool ->
  ?faults:Fault.spec ->
  ?fault_seed:int ->
  ?adaptive_rto:bool ->
  nodes:int ->
  unit ->
  t

val set_default_adaptive_rto : bool -> unit
(** Process-wide default for {!make}'s [?adaptive_rto] (initially [true]);
    the CLI's [--rto] flag sets it so a whole experiment run switches
    retransmission policy without plumbing. An explicit [?adaptive_rto]
    always wins. *)

val transfer_ns : t -> bytes:int -> int
(** Time for [bytes] to cross the wire after injection: latency plus
    serialization. *)

val pp : Format.formatter -> t -> unit

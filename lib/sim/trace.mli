(** Execution traces: record every node's local/comm/idle segments during a
    phase and render per-node utilization timelines — the visual form of
    the paper's breakdown figures, resolved over time. *)

type t

val attach : Engine.t -> t
(** Install tracers on every node of the engine. Only one trace can be
    attached at a time: attaching while another trace (or any node tracer)
    is still installed raises [Invalid_argument] — {!detach} the previous
    one first. Segments recorded before [attach] are lost. *)

val detach : t -> unit
(** Remove the tracers; recorded segments remain readable. *)

val nsegments : t -> int

val totals : t -> int -> int * int * int
(** [(local, comm, idle)] nanoseconds recorded for a node — matches the
    node's own accounting over the traced window. *)

val timeline : ?width:int -> t -> string
(** One row per node. Each column is a time bin colored by the dominant
    activity: '#' local work, '+' communication overhead, '.' idle,
    ' ' nothing recorded. *)

val to_csv : t -> string
(** "node,kind,start_ns,dur_ns" rows in recording order. *)

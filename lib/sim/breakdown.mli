(** Aggregated time breakdown of a simulated phase, in the terms the paper's
    figures use: local computation, communication overhead, and idle time,
    plus message statistics. *)

type t = {
  procs : int;
  elapsed_ns : int;  (** wall clock of the phase: max over nodes *)
  local_ns : int;  (** summed over nodes *)
  comm_ns : int;
  idle_ns : int;
  msgs : int;
  bytes : int;
}

val of_nodes : elapsed_ns:int -> Node.t array -> t

val elapsed_s : t -> float

val local_frac : t -> float
(** Fraction of total node-time spent in local computation. *)

val comm_frac : t -> float
val idle_frac : t -> float

val add : t -> t -> t
(** Componentwise sum; [elapsed_ns] adds too (use to accumulate over
    sequential phases, e.g. time steps). [procs] must match. *)

val zero : procs:int -> t
val pp : Format.formatter -> t -> unit

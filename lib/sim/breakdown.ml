type t = {
  procs : int;
  elapsed_ns : int;
  local_ns : int;
  comm_ns : int;
  idle_ns : int;
  msgs : int;
  bytes : int;
}

let of_nodes ~elapsed_ns nodes =
  let acc f = Array.fold_left (fun s n -> s + f n) 0 nodes in
  {
    procs = Array.length nodes;
    elapsed_ns;
    local_ns = acc (fun n -> n.Node.local_ns);
    comm_ns = acc (fun n -> n.Node.comm_ns);
    idle_ns = acc (fun n -> n.Node.idle_ns);
    msgs = acc (fun n -> n.Node.msgs_sent);
    bytes = acc (fun n -> n.Node.bytes_sent);
  }

let elapsed_s t = float_of_int t.elapsed_ns *. 1e-9

let total t = t.local_ns + t.comm_ns + t.idle_ns

let frac part t =
  let d = total t in
  if d = 0 then 0. else float_of_int part /. float_of_int d

let local_frac t = frac t.local_ns t
let comm_frac t = frac t.comm_ns t
let idle_frac t = frac t.idle_ns t

let add a b =
  if a.procs <> b.procs then invalid_arg "Breakdown.add: proc mismatch";
  {
    procs = a.procs;
    elapsed_ns = a.elapsed_ns + b.elapsed_ns;
    local_ns = a.local_ns + b.local_ns;
    comm_ns = a.comm_ns + b.comm_ns;
    idle_ns = a.idle_ns + b.idle_ns;
    msgs = a.msgs + b.msgs;
    bytes = a.bytes + b.bytes;
  }

let zero ~procs =
  { procs; elapsed_ns = 0; local_ns = 0; comm_ns = 0; idle_ns = 0; msgs = 0; bytes = 0 }

let pp ppf t =
  Format.fprintf ppf
    "@[%.4f s on %d procs (local %.0f%%, comm %.0f%%, idle %.0f%%; %d msgs, \
     %d bytes)@]"
    (elapsed_s t) t.procs
    (100. *. local_frac t)
    (100. *. comm_frac t)
    (100. *. idle_frac t)
    t.msgs t.bytes

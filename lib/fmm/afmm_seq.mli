(** Sequential adaptive FMM using a per-leaf dual tree walk: for each leaf,
    descend from the root; a well-separated cell contributes through its
    multipole expansion (M2L to the leaf center, evaluated at the leaf's
    particles), an overlapping leaf contributes by direct summation, and
    anything else recurses into its children. Each source particle is
    covered exactly once (tested), on any tree shape — this is the standard
    treecode/FMM hybrid, and it is the decomposition the distributed
    adaptive phase ({!Afmm_force}) runs under the runtimes. *)

type counts = { m2l : int; p2p : int; visits : int }

val upward : p:int -> Aquadtree.t -> Expansion.t array
(** Multipole of every cell: P2M at leaves, M2M up. *)

val compute : p:int -> Aquadtree.t -> Fmm_seq.result * counts

val zero_counts : counts
val sequential_ns : params:Fmm_force.params -> nleafavg:float -> counts -> int
(** Modelled sequential time; [nleafavg] is the mean particles per leaf
    (evaluation cost of an M2L is per particle). *)

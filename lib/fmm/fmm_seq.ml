type result = { potential : float array; field : Complex.t array }
type counts = { m2l : int; p2p : int; evals : int }

let zero_counts = { m2l = 0; p2p = 0; evals = 0 }

let add_counts a b =
  { m2l = a.m2l + b.m2l; p2p = a.p2p + b.p2p; evals = a.evals + b.evals }

let upward ~p tree =
  let parts = Quadtree.particles tree in
  let n = Quadtree.ncells tree in
  let mp = Array.make n [||] in
  let depth = Quadtree.depth tree in
  (* P2M at the leaves. *)
  Array.iter
    (fun leaf ->
      let charges =
        Array.to_list (Quadtree.leaf_particles tree leaf)
        |> List.map (fun pid ->
               (parts.(pid).Particle2d.q, parts.(pid).Particle2d.z))
      in
      mp.(leaf) <- Expansion.p2m ~p ~center:(Quadtree.center tree leaf) charges)
    (Quadtree.leaves_in_morton_order tree);
  (* M2M up to level 2. *)
  for level = depth - 1 downto 2 do
    let side = 1 lsl level in
    for iy = 0 to side - 1 do
      for ix = 0 to side - 1 do
        let ci = Quadtree.index tree ~level ~ix ~iy in
        let acc = Expansion.zero ~p in
        for cy = 0 to 1 do
          for cx = 0 to 1 do
            let child =
              Quadtree.index tree ~level:(level + 1) ~ix:((2 * ix) + cx)
                ~iy:((2 * iy) + cy)
            in
            Expansion.add_inplace acc
              (Expansion.m2m mp.(child)
                 ~from_center:(Quadtree.center tree child)
                 ~to_center:(Quadtree.center tree ci))
          done
        done;
        mp.(ci) <- acc
      done
    done
  done;
  (* Levels 0 and 1 are never consulted; keep them as zero expansions. *)
  for i = 0 to n - 1 do
    if Array.length mp.(i) = 0 then mp.(i) <- Expansion.zero ~p
  done;
  mp

let compute ~p tree =
  let parts = Quadtree.particles tree in
  let n = Array.length parts in
  let mp = upward ~p tree in
  let potential = Array.make n 0. and field = Array.make n Complex.zero in
  let counts = ref zero_counts in
  let depth = Quadtree.depth tree in
  Array.iter
    (fun leaf ->
      let mine = Quadtree.leaf_particles tree leaf in
      if Array.length mine > 0 then begin
        let lc = Quadtree.center tree leaf in
        (* Far field: ancestors' V lists, one M2L per interaction cell,
           evaluated at each of this leaf's particles. *)
        for level = 2 to depth do
          let a = Quadtree.ancestor tree leaf ~level in
          Array.iter
            (fun v ->
              let local =
                Expansion.m2l mp.(v)
                  ~from_center:(Quadtree.center tree v)
                  ~to_center:lc
              in
              counts := { !counts with m2l = !counts.m2l + 1 };
              Array.iter
                (fun pid ->
                  let phi, dphi =
                    Expansion.eval_local local ~center:lc
                      parts.(pid).Particle2d.z
                  in
                  counts := { !counts with evals = !counts.evals + 1 };
                  potential.(pid) <- potential.(pid) +. phi.Complex.re;
                  field.(pid) <- Complex.add field.(pid) dphi)
                mine)
            (Quadtree.v_list tree a)
        done;
        (* Near field: direct over the U list (includes this leaf; the
           direct kernel skips self-pairs by distance). *)
        Array.iter
          (fun u ->
            let srcs =
              Array.to_list (Quadtree.leaf_particles tree u)
              |> List.map (fun pid ->
                     (parts.(pid).Particle2d.q, parts.(pid).Particle2d.z))
            in
            Array.iter
              (fun pid ->
                let phi, dphi = Expansion.direct srcs parts.(pid).Particle2d.z in
                counts :=
                  { !counts with p2p = !counts.p2p + List.length srcs };
                potential.(pid) <- potential.(pid) +. phi.Complex.re;
                field.(pid) <- Complex.add field.(pid) dphi)
              mine)
          (Quadtree.u_list tree leaf)
      end)
    (Quadtree.leaves_in_morton_order tree);
  ({ potential; field }, !counts)

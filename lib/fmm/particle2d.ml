open Dpa_util

type t = { id : int; q : float; z : Complex.t }

let make ~id ~q ~z = { id; q; z }

let normalize_charges parts =
  let total = Array.fold_left (fun a p -> a +. p.q) 0. parts in
  Array.map (fun p -> { p with q = p.q /. total }) parts

let uniform ~n ~seed =
  if n <= 0 then invalid_arg "Particle2d.uniform: n must be positive";
  let rng = Rng.create ~seed in
  normalize_charges
    (Array.init n (fun id ->
         let z = { Complex.re = Rng.uniform rng; im = Rng.uniform rng } in
         make ~id ~q:(0.5 +. Rng.uniform rng) ~z))

let clamp01 x = if x < 0. then 0. else if x >= 1. then 0.999999 else x

let clustered ~n ~seed ~clusters =
  if n <= 0 then invalid_arg "Particle2d.clustered: n must be positive";
  if clusters <= 0 then invalid_arg "Particle2d.clustered: clusters must be positive";
  let rng = Rng.create ~seed in
  let centers =
    Array.init clusters (fun _ ->
        (Rng.uniform rng *. 0.8 +. 0.1, Rng.uniform rng *. 0.8 +. 0.1))
  in
  normalize_charges
    (Array.init n (fun id ->
         let cx, cy = centers.(Rng.int rng clusters) in
         let x = clamp01 (cx +. (Rng.gaussian rng *. 0.05)) in
         let y = clamp01 (cy +. (Rng.gaussian rng *. 0.05)) in
         make ~id ~q:(0.5 +. Rng.uniform rng) ~z:{ Complex.re = x; im = y }))

(** Direct O(n²) summation for the 2-D logarithmic kernel: the accuracy
    yardstick for the FMM. *)

val compute : Particle2d.t array -> Fmm_seq.result

val max_field_error : Fmm_seq.result -> reference:Fmm_seq.result -> float
(** Largest relative field error, normalized by the RMS reference field. *)

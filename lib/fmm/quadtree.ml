type t = {
  particles : Particle2d.t array;
  depth : int;
  leaf_of_particle : int array;
  leaf_members : int array array;  (* per leaf-row-major rank *)
}

let level_offset l = ((1 lsl (2 * l)) - 1) / 3
let cells_at l = 1 lsl (2 * l)

let index _t ~level ~ix ~iy = level_offset level + (iy lsl level) + ix

let rec find_level l i = if i < level_offset (l + 1) then l else find_level (l + 1) i
let level_of _t i = find_level 0 i

let coords_of t i =
  let l = level_of t i in
  let r = i - level_offset l in
  (r land ((1 lsl l) - 1), r lsr l)

let width_at ~level = 1. /. float_of_int (1 lsl level)

let pick_depth ~n ~target =
  let rec go d =
    if d >= 10 then d
    else if n <= target * cells_at d then max 2 d
    else go (d + 1)
  in
  go 2

let build ?(target_occupancy = 8) ?depth particles =
  let n = Array.length particles in
  if n = 0 then invalid_arg "Quadtree.build: no particles";
  let depth =
    match depth with
    | Some d ->
      if d < 2 then invalid_arg "Quadtree.build: depth must be >= 2" else d
    | None -> pick_depth ~n ~target:target_occupancy
  in
  let side = 1 lsl depth in
  let clamp v = if v < 0 then 0 else if v >= side then side - 1 else v in
  let leaf_rank_of z =
    let ix = clamp (int_of_float (z.Complex.re *. float_of_int side)) in
    let iy = clamp (int_of_float (z.Complex.im *. float_of_int side)) in
    (iy * side) + ix
  in
  let members = Array.make (side * side) [] in
  let leaf_of_particle = Array.make n 0 in
  Array.iter
    (fun p ->
      let r = leaf_rank_of p.Particle2d.z in
      members.(r) <- p.Particle2d.id :: members.(r);
      leaf_of_particle.(p.Particle2d.id) <- level_offset depth + r)
    particles;
  {
    particles;
    depth;
    leaf_of_particle;
    leaf_members = Array.map (fun l -> Array.of_list (List.rev l)) members;
  }

let particles t = t.particles
let depth t = t.depth
let ncells t = level_offset (t.depth + 1)
let nleaves t = cells_at t.depth

let center t i =
  let l = level_of t i in
  let ix, iy = coords_of t i in
  let w = width_at ~level:l in
  { Complex.re = (float_of_int ix +. 0.5) *. w; im = (float_of_int iy +. 0.5) *. w }

let width t i = width_at ~level:(level_of t i)

let parent t i =
  let l = level_of t i in
  if l = 0 then invalid_arg "Quadtree.parent: root";
  let ix, iy = coords_of t i in
  index t ~level:(l - 1) ~ix:(ix / 2) ~iy:(iy / 2)

let ancestor t i ~level =
  let l = level_of t i in
  if level > l || level < 0 then invalid_arg "Quadtree.ancestor: bad level";
  let ix, iy = coords_of t i in
  let shift = l - level in
  index t ~level ~ix:(ix lsr shift) ~iy:(iy lsr shift)

let is_leaf t i = level_of t i = t.depth

let leaf_of_particle t pid = t.leaf_of_particle.(pid)

let leaf_particles t i =
  if not (is_leaf t i) then invalid_arg "Quadtree.leaf_particles: not a leaf";
  t.leaf_members.(i - level_offset t.depth)

let morton ~ix ~iy =
  let spread v =
    let v = ref v and r = ref 0 and bit = ref 0 in
    while !v > 0 do
      r := !r lor ((!v land 1) lsl !bit);
      v := !v lsr 1;
      bit := !bit + 2
    done;
    !r
  in
  spread ix lor (spread iy lsl 1)

let leaves_in_morton_order t =
  let side = 1 lsl t.depth in
  let all =
    Array.init (side * side) (fun r ->
        let ix = r mod side and iy = r / side in
        (morton ~ix ~iy, level_offset t.depth + r))
  in
  Array.sort compare all;
  Array.map snd all

let v_list t i =
  let l = level_of t i in
  if l < 2 then [||]
  else begin
    let side = 1 lsl l in
    let ix, iy = coords_of t i in
    let px, py = (ix / 2, iy / 2) in
    let out = ref [] in
    for njy = py + 1 downto py - 1 do
      for njx = px + 1 downto px - 1 do
        if njx >= 0 && njx < side / 2 && njy >= 0 && njy < side / 2 then
          (* children of this parent-level neighbor *)
          for cy = 1 downto 0 do
            for cx = 1 downto 0 do
              let jx = (njx * 2) + cx and jy = (njy * 2) + cy in
              if max (abs (jx - ix)) (abs (jy - iy)) >= 2 then
                out := index t ~level:l ~ix:jx ~iy:jy :: !out
            done
          done
      done
    done;
    Array.of_list !out
  end

let u_list t i =
  if not (is_leaf t i) then invalid_arg "Quadtree.u_list: not a leaf";
  let l = t.depth in
  let side = 1 lsl l in
  let ix, iy = coords_of t i in
  let out = ref [] in
  for jy = iy + 1 downto iy - 1 do
    for jx = ix + 1 downto ix - 1 do
      if jx >= 0 && jx < side && jy >= 0 && jy < side then
        out := index t ~level:l ~ix:jx ~iy:jy :: !out
    done
  done;
  Array.of_list !out

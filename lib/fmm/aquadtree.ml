open Dpa_util

type kind = Leaf of int array | Internal of int array

type cell = {
  cx : float;
  cy : float;
  w : float;  (** side length *)
  mutable node : node;
  mutable count : int;
}

and node = L of int list | I of int array

type t = { cells : cell Dynarray.t; root : int; particles : Particle2d.t array }

let max_depth = 40

let new_cell cells ~cx ~cy ~w =
  Dynarray.add cells { cx; cy; w; node = L []; count = 0 }

let quadrant c (z : Complex.t) =
  (if z.Complex.re >= c.cx then 1 else 0) lor if z.Complex.im >= c.cy then 2 else 0

let child_box c q =
  let h = c.w /. 4. in
  ( (c.cx +. if q land 1 <> 0 then h else -.h),
    (c.cy +. if q land 2 <> 0 then h else -.h),
    c.w /. 2. )

let build ?(leaf_cap = 8) particles =
  if Array.length particles = 0 then invalid_arg "Aquadtree.build: no particles";
  if leaf_cap <= 0 then invalid_arg "Aquadtree.build: leaf_cap must be positive";
  let cells = Dynarray.create () in
  let root = new_cell cells ~cx:0.5 ~cy:0.5 ~w:1. in
  let rec insert ci pid depth =
    let c = Dynarray.get cells ci in
    match c.node with
    | L ids when List.length ids < leaf_cap || depth >= max_depth ->
      c.node <- L (pid :: ids)
    | L ids ->
      c.node <- I (Array.make 4 (-1));
      List.iter (fun q -> push_down ci q depth) ids;
      push_down ci pid depth
    | I _ -> push_down ci pid depth
  and push_down ci pid depth =
    let c = Dynarray.get cells ci in
    match c.node with
    | I children ->
      let q = quadrant c particles.(pid).Particle2d.z in
      let child =
        if children.(q) >= 0 then children.(q)
        else begin
          let cx, cy, w = child_box c q in
          let cc = new_cell cells ~cx ~cy ~w in
          children.(q) <- cc;
          cc
        end
      in
      insert child pid (depth + 1)
    | L _ -> assert false
  in
  Array.iteri (fun pid _ -> insert root pid 0) particles;
  let t = { cells; root; particles } in
  (* Subtree particle counts, bottom-up. *)
  let rec recount ci =
    let c = Dynarray.get cells ci in
    let n =
      match c.node with
      | L ids -> List.length ids
      | I children ->
        Array.fold_left
          (fun acc ch -> if ch >= 0 then acc + recount ch else acc)
          0 children
    in
    c.count <- n;
    n
  in
  ignore (recount root);
  t

let particles t = t.particles
let root t = t.root
let ncells t = Dynarray.length t.cells

let center t i =
  let c = Dynarray.get t.cells i in
  { Complex.re = c.cx; im = c.cy }

let width t i = (Dynarray.get t.cells i).w

let kind t i =
  match (Dynarray.get t.cells i).node with
  | L ids -> Leaf (Array.of_list (List.rev ids))
  | I children -> Internal children

let nparticles t i = (Dynarray.get t.cells i).count

let depth t =
  let rec go ci =
    match (Dynarray.get t.cells ci).node with
    | L _ -> 1
    | I children ->
      1
      + Array.fold_left
          (fun acc ch -> if ch >= 0 then max acc (go ch) else acc)
          0 children
  in
  go t.root

let leaves_in_dfs_order t =
  let out = Dynarray.create () in
  let rec go ci =
    match (Dynarray.get t.cells ci).node with
    | L _ -> ignore (Dynarray.add out ci)
    | I children -> Array.iter (fun ch -> if ch >= 0 then go ch) children
  in
  go t.root;
  Array.init (Dynarray.length out) (Dynarray.get out)

let iter_cells_postorder t f =
  let rec go ci =
    (match (Dynarray.get t.cells ci).node with
    | L _ -> ()
    | I children -> Array.iter (fun ch -> if ch >= 0 then go ch) children);
    f ci
  in
  go t.root

let well_separated t ~leaf ci =
  let a = Dynarray.get t.cells leaf and b = Dynarray.get t.cells ci in
  let gap_x = Float.abs (a.cx -. b.cx) -. ((a.w +. b.w) /. 2.) in
  let gap_y = Float.abs (a.cy -. b.cy) -. ((a.w +. b.w) /. 2.) in
  let gap = Float.max gap_x gap_y in
  gap >= Float.max a.w b.w -. 1e-12

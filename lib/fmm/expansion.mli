(** Multipole and local expansions for the 2-D logarithmic kernel
    (Greengard & Rokhlin). The potential of charges [q_i] at [z_i] is
    [Phi(z) = sum_i q_i log(z - z_i)]; physical potential is [Re Phi] and
    the field (gradient of the potential as a complex number) is
    [conj(Phi'(z))].

    A multipole expansion about [c] is the coefficient vector [a]:
    [Phi(z) = a_0 log(z-c) + sum_{k>=1} a_k / (z-c)^k].
    A local expansion about [c] is [Phi(z) = sum_{l>=0} b_l (z-c)^l].
    All vectors have [p+1] complex entries (order [p]). *)

type t = Complex.t array

val order : t -> int
val zero : p:int -> t
val add_inplace : t -> t -> unit

val p2m : p:int -> center:Complex.t -> (float * Complex.t) list -> t
(** Multipole of point charges [(q, z)] about [center]. *)

val m2m : t -> from_center:Complex.t -> to_center:Complex.t -> t
(** Shift a multipole expansion to a new center (child to parent). *)

val m2l : t -> from_center:Complex.t -> to_center:Complex.t -> t
(** Convert a multipole about a well-separated center into a local
    expansion. *)

val l2l : t -> from_center:Complex.t -> to_center:Complex.t -> t
(** Shift a local expansion (parent to child). *)

val eval_multipole : t -> center:Complex.t -> Complex.t -> Complex.t * Complex.t
(** [(Phi(z), Phi'(z))] of a multipole expansion, for [z] outside the
    convergence disk. *)

val eval_local : t -> center:Complex.t -> Complex.t -> Complex.t * Complex.t
(** [(Phi(z), Phi'(z))] of a local expansion. *)

val direct : (float * Complex.t) list -> Complex.t -> Complex.t * Complex.t
(** Direct [(Phi, Phi')] of point charges at [z], skipping any source closer
    than 1e-12 (self-interaction). *)

val binomial : int -> int -> float
(** Exact binomial coefficients (cached; arguments up to 128). *)

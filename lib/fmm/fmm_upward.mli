(** Parallel FMM upward pass, built on the runtime's remote-reduction
    extension ({!Dpa.Access.S.accumulate}) — the "more general access
    patterns, such as reductions" the paper lists as enabled by sharper
    aliasing information.

    Phase 0 (P2M): every node forms its owned leaves' multipole expansions
    and writes them into the (local) multipole objects. Phases depth..3
    (M2M): each owned cell shifts its multipole to its parent's center and
    accumulates the 2(p+1) coefficients into the parent object, which may
    live on another node. Under DPA the per-coefficient updates of the four
    children combine in the update buffer and travel in aggregated
    messages; under the baselines each update is its own message. A level
    completes (phase barrier) before the next begins. *)

open Dpa_sim

type result = {
  breakdown : Breakdown.t;  (** summed over the P2M and M2M phases *)
  dpa_stats : Dpa.Dpa_stats.t option;  (** merged, DPA variants only *)
}

val run :
  ?route:Dpa.Config.route ->
  engine:Engine.t ->
  global:Fmm_global.t ->
  params:Fmm_force.params ->
  Dpa_baselines.Variant.t ->
  result
(** [global] must come from {!Fmm_global.distribute_empty}. After [run],
    the heap's multipole objects equal the sequential {!Fmm_seq.upward}
    (up to summation order).

    [route] overrides the DPA config's update routing for every phase of
    the pass (it only matters for the fan-in M2M reductions; P2M writes
    are local). The per-coefficient fixed-point grids make the merge
    order irrelevant, so any routing yields bit-identical expansions. *)

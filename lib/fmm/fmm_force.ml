type params = {
  p : int;
  m2l_term2_ns : int;
  eval_term_ns : int;
  p2p_ns : int;
  visit_ns : int;
}

let default_params =
  { p = 13; m2l_term2_ns = 26; eval_term_ns = 45; p2p_ns = 170; visit_ns = 150 }

let m2l_cost_ns t = t.m2l_term2_ns * (t.p + 1) * (t.p + 1)
let eval_cost_ns t = t.eval_term_ns * (t.p + 1)

module Make (A : Dpa.Access.S) = struct
  let items ~params ~global ~potential ~field node =
    let tree = global.Fmm_global.tree in
    let parts = Quadtree.particles tree in
    let depth = Quadtree.depth tree in
    Array.map
      (fun leaf ->
        let mine = Quadtree.leaf_particles tree leaf in
        let lc = Quadtree.center tree leaf in
        fun (ctx : A.ctx) ->
          if Array.length mine > 0 then begin
            for level = 2 to depth do
              let a = Quadtree.ancestor tree leaf ~level in
              Array.iter
                (fun v ->
                  let vc = Quadtree.center tree v in
                  A.read ctx global.Fmm_global.mp_ptrs.(v) (fun ctx view ->
                      A.charge ctx
                        (params.visit_ns + m2l_cost_ns params
                        + (Array.length mine * eval_cost_ns params));
                      let local =
                        Expansion.m2l
                          (Fmm_global.View.expansion (A.heaps ctx) view)
                          ~from_center:vc ~to_center:lc
                      in
                      Array.iter
                        (fun pid ->
                          let phi, dphi =
                            Expansion.eval_local local ~center:lc
                              parts.(pid).Particle2d.z
                          in
                          potential.(pid) <- potential.(pid) +. phi.Complex.re;
                          field.(pid) <- Complex.add field.(pid) dphi)
                        mine))
                (Quadtree.v_list tree a)
            done;
            Array.iter
              (fun u ->
                A.read ctx global.Fmm_global.leaf_ptrs.(u) (fun ctx view ->
                    let heaps = A.heaps ctx in
                    let nsrc = Fmm_global.View.nparticles heaps view in
                    A.charge ctx
                      (params.visit_ns
                      + (Array.length mine * nsrc * params.p2p_ns));
                    let srcs =
                      List.init nsrc (fun k ->
                          let _, q, z = Fmm_global.View.particle heaps view k in
                          (q, z))
                    in
                    Array.iter
                      (fun pid ->
                        let phi, dphi =
                          Expansion.direct srcs parts.(pid).Particle2d.z
                        in
                        potential.(pid) <- potential.(pid) +. phi.Complex.re;
                        field.(pid) <- Complex.add field.(pid) dphi)
                      mine))
              (Quadtree.u_list tree leaf)
          end)
      global.Fmm_global.owner_leaves.(node)
end

open Complex

type t = Complex.t array

let order a = Array.length a - 1
let zero ~p = Array.make (p + 1) Complex.zero

let add_inplace dst src =
  if Array.length dst <> Array.length src then
    invalid_arg "Expansion.add_inplace: order mismatch";
  Array.iteri (fun i v -> dst.(i) <- add dst.(i) v) src

(* Exact binomial table. 128 rows cover order-29 expansions (l+k-1 <= 58)
   with lots of headroom; doubles are exact well past that. *)
let max_binomial = 128

let binomial_table =
  lazy
    (let t = Array.make_matrix (max_binomial + 1) (max_binomial + 1) 0. in
     for n = 0 to max_binomial do
       t.(n).(0) <- 1.;
       for k = 1 to n do
         t.(n).(k) <- t.(n - 1).(k - 1) +. (if k <= n - 1 then t.(n - 1).(k) else 0.)
       done
     done;
     t)

let binomial n k =
  if n < 0 || k < 0 || k > n then 0.
  else if n > max_binomial then invalid_arg "Expansion.binomial: n too large"
  else (Lazy.force binomial_table).(n).(k)

let cscale s z = { re = s *. z.re; im = s *. z.im }

let p2m ~p ~center charges =
  let a = zero ~p in
  List.iter
    (fun (q, z) ->
      let u = sub z center in
      a.(0) <- add a.(0) { re = q; im = 0. };
      let uk = ref one in
      for k = 1 to p do
        uk := mul !uk u;
        (* a_k -= q * u^k / k *)
        a.(k) <- sub a.(k) (cscale (q /. float_of_int k) !uk)
      done)
    charges;
  a

let m2m a ~from_center ~to_center =
  let p = order a in
  let t = sub from_center to_center in
  let b = zero ~p in
  b.(0) <- a.(0);
  (* Precompute powers of t. *)
  let tp = Array.make (p + 1) one in
  for i = 1 to p do
    tp.(i) <- mul tp.(i - 1) t
  done;
  for l = 1 to p do
    let acc = ref (cscale (-1. /. float_of_int l) (mul a.(0) tp.(l))) in
    for k = 1 to l do
      acc := add !acc (cscale (binomial (l - 1) (k - 1)) (mul a.(k) tp.(l - k)))
    done;
    b.(l) <- !acc
  done;
  b

let m2l a ~from_center ~to_center =
  let p = order a in
  let t = sub from_center to_center in
  if norm t < 1e-300 then invalid_arg "Expansion.m2l: coincident centers";
  let b = zero ~p in
  let inv_t = inv t in
  (* s_k = a_k / t^k * (-1)^k for k >= 1 *)
  let s = Array.make (p + 1) Complex.zero in
  let itk = ref one in
  for k = 1 to p do
    itk := mul !itk inv_t;
    let v = mul a.(k) !itk in
    s.(k) <- (if k land 1 = 1 then neg v else v)
  done;
  let sum0 = ref Complex.zero in
  for k = 1 to p do
    sum0 := add !sum0 s.(k)
  done;
  b.(0) <- add (mul a.(0) (log (neg t))) !sum0;
  let itl = ref one in
  for l = 1 to p do
    itl := mul !itl inv_t;
    let head = cscale (-1. /. float_of_int l) (mul a.(0) !itl) in
    let inner = ref Complex.zero in
    for k = 1 to p do
      inner := add !inner (cscale (binomial (l + k - 1) (k - 1)) s.(k))
    done;
    b.(l) <- add head (mul !itl !inner)
  done;
  b

let l2l a ~from_center ~to_center =
  let p = order a in
  let s = sub from_center to_center in
  let b = zero ~p in
  (* (-s)^j powers *)
  let ms = neg s in
  let msp = Array.make (p + 1) one in
  for i = 1 to p do
    msp.(i) <- mul msp.(i - 1) ms
  done;
  for l = 0 to p do
    let acc = ref Complex.zero in
    for k = l to p do
      acc := add !acc (cscale (binomial k l) (mul a.(k) msp.(k - l)))
    done;
    b.(l) <- !acc
  done;
  b

let eval_multipole a ~center z =
  let p = order a in
  let w = sub z center in
  let phi = ref (mul a.(0) (log w)) in
  let dphi = ref (div a.(0) w) in
  let iw = inv w in
  let iwk = ref one in
  for k = 1 to p do
    iwk := mul !iwk iw;
    phi := add !phi (mul a.(k) !iwk);
    dphi := sub !dphi (cscale (float_of_int k) (mul a.(k) (mul !iwk iw)))
  done;
  (!phi, !dphi)

let eval_local b ~center z =
  let p = order b in
  let w = sub z center in
  (* Horner, value and derivative together. *)
  let phi = ref b.(p) and dphi = ref Complex.zero in
  for l = p - 1 downto 0 do
    dphi := add (mul !dphi w) !phi;
    phi := add (mul !phi w) b.(l)
  done;
  (!phi, !dphi)

let direct charges z =
  let phi = ref Complex.zero and dphi = ref Complex.zero in
  List.iter
    (fun (q, zi) ->
      let w = sub z zi in
      if norm w > 1e-12 then begin
        phi := add !phi (cscale q (log w));
        dphi := add !dphi (cscale q (inv w))
      end)
    charges;
  (!phi, !dphi)

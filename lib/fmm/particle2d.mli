(** Charged particles in the plane for the 2-D fast multipole method
    (the SPLASH-2 FMM is the 2-D adaptive Greengard–Rokhlin algorithm). *)

type t = { id : int; q : float; z : Complex.t }

val make : id:int -> q:float -> z:Complex.t -> t

val uniform : n:int -> seed:int -> t array
(** [n] particles uniform in the unit square, charges uniform in [\[0.5, 1.5)]
    scaled so the total charge is 1. Deterministic given [seed]. *)

val clustered : n:int -> seed:int -> clusters:int -> t array
(** A non-uniform input: Gaussian clusters in the unit square (positions
    clamped to the square), equal total charge. Exercises load imbalance. *)

(** Distribution of the adaptive FMM tree into the global heap.

    Each cell is one object carrying both the structure and the data the
    walk needs:

    floats: [kind; cx; cy; w; then 2(p+1) expansion floats;
             then for leaves: n and (id, q, x, y) per particle]
    ptrs:   4 children for internal cells.

    Leaves are partitioned across nodes in DFS order weighted by occupancy
    (equal particles per node); an internal cell lives with its first
    leaf. *)

open Dpa_heap

type t = {
  heaps : Heap.cluster;
  tree : Aquadtree.t;
  p : int;
  root : Gptr.t;
  cell_ptrs : Gptr.t array;
  owner_leaves : int array array;  (** node -> owned leaf cell indices *)
}

val distribute : p:int -> Aquadtree.t -> nnodes:int -> t

module View : sig
  val is_leaf : Heap.cluster -> Heap.view -> bool
  val center : Heap.cluster -> Heap.view -> Complex.t
  val width : Heap.cluster -> Heap.view -> float
  val expansion : p:int -> Heap.cluster -> Heap.view -> Expansion.t
  val nparticles : p:int -> Heap.cluster -> Heap.view -> int
  val particle : p:int -> Heap.cluster -> Heap.view -> int -> int * float * Complex.t
  val children : Heap.cluster -> Heap.view -> Gptr.t array

  val well_separated :
    leaf_center:Complex.t -> leaf_width:float -> Heap.cluster -> Heap.view -> bool
  (** The same acceptance test as {!Aquadtree.well_separated}, evaluated on
      a remote view. *)
end

let compute parts =
  let n = Array.length parts in
  let charges =
    Array.to_list
      (Array.map (fun p -> (p.Particle2d.q, p.Particle2d.z)) parts)
  in
  let potential = Array.make n 0. and field = Array.make n Complex.zero in
  Array.iter
    (fun p ->
      let phi, dphi = Expansion.direct charges p.Particle2d.z in
      potential.(p.Particle2d.id) <- phi.Complex.re;
      field.(p.Particle2d.id) <- dphi)
    parts;
  { Fmm_seq.potential; field }

let max_field_error (r : Fmm_seq.result) ~(reference : Fmm_seq.result) =
  let n = Array.length reference.Fmm_seq.field in
  let rms = ref 0. in
  Array.iter
    (fun f -> rms := !rms +. (Complex.norm f ** 2.))
    reference.Fmm_seq.field;
  let rms = sqrt (!rms /. float_of_int n) in
  let worst = ref 0. in
  for i = 0 to n - 1 do
    let d = Complex.norm (Complex.sub r.Fmm_seq.field.(i) reference.Fmm_seq.field.(i)) in
    worst := max !worst (d /. rms)
  done;
  !worst

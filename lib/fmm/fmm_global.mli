(** Distribution of the FMM data into the global heap.

    Leaves are block-partitioned across nodes in Morton order; a node owns
    the particles of its leaves. Every cell of level >= 2 contributes one
    multipole object (2(p+1) floats, re/im interleaved) owned by the owner
    of its first descendant leaf; every leaf additionally contributes a
    particle-list object ([n; then id,x,y,q per particle]) for near-field
    interactions. *)

open Dpa_heap

type t = {
  heaps : Heap.cluster;
  tree : Quadtree.t;
  p : int;
  mp_ptrs : Gptr.t array;  (** cell index -> multipole object; nil below level 2 *)
  leaf_ptrs : Gptr.t array;  (** cell index -> particle-list object (leaves) *)
  owner_leaves : int array array;  (** node -> owned leaf cell indices *)
}

val owner_of_leaf : Quadtree.t -> nnodes:int -> int -> int
val owner_of_cell : Quadtree.t -> nnodes:int -> int -> int
val distribute : p:int -> Quadtree.t -> nnodes:int -> t

val distribute_empty : p:int -> Quadtree.t -> nnodes:int -> t
(** Same layout and ownership as {!distribute}, but multipole objects are
    zero-filled: the upward pass ({!Fmm_upward}) builds them in parallel. *)

module View : sig
  val expansion : Heap.cluster -> Heap.view -> Expansion.t
  val nparticles : Heap.cluster -> Heap.view -> int
  val particle : Heap.cluster -> Heap.view -> int -> int * float * Complex.t
  (** [(id, q, z)] of the k-th inline particle. *)
end

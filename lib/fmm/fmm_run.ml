open Dpa_sim

type phase_result = {
  breakdown : Breakdown.t;
  result : Fmm_seq.result;
  dpa_stats : Dpa.Dpa_stats.t option;
  cache_stats : Dpa_baselines.Caching.stats option;
}

module Force_dpa = Fmm_force.Make (Dpa.Runtime)
module Force_caching = Fmm_force.Make (Dpa_baselines.Caching)

let force_phase ~engine ~global ~params variant =
  let n = Array.length (Quadtree.particles global.Fmm_global.tree) in
  let potential = Array.make n 0. and field = Array.make n Complex.zero in
  let heaps = global.Fmm_global.heaps in
  let breakdown, dpa_stats, cache_stats =
    match variant with
    | Dpa_baselines.Variant.Dpa config ->
      let items = Force_dpa.items ~params ~global ~potential ~field in
      let b, s =
        Dpa.Runtime.run_phase_labeled ~label:"fmm-force" ~engine ~heaps ~config
          ~items
      in
      (b, Some s, None)
    | Dpa_baselines.Variant.Prefetch { strip_size } ->
      let items = Force_dpa.items ~params ~global ~potential ~field in
      let b, s =
        Dpa.Runtime.run_phase_labeled ~label:"fmm-force-prefetch" ~engine
          ~heaps
          ~config:(Dpa.Config.pipeline_only ~strip_size ())
          ~items
      in
      (b, Some s, None)
    | Dpa_baselines.Variant.Caching { capacity } ->
      let items = Force_caching.items ~params ~global ~potential ~field in
      let b, s =
        Dpa_baselines.Caching.run_phase ~engine ~heaps ~capacity ~items ()
      in
      (b, None, Some s)
    | Dpa_baselines.Variant.Blocking ->
      let items = Force_caching.items ~params ~global ~potential ~field in
      let b, s = Dpa_baselines.Blocking.run_phase ~engine ~heaps ~items in
      (b, None, Some s)
  in
  { breakdown; result = { Fmm_seq.potential; field }; dpa_stats; cache_stats }

type run_result = {
  phase : phase_result;
  seq_counts : Fmm_seq.counts;
  tree : Quadtree.t;
}

let structural_counts tree =
  let depth = Quadtree.depth tree in
  let counts = ref Fmm_seq.zero_counts in
  Array.iter
    (fun leaf ->
      let mine = Array.length (Quadtree.leaf_particles tree leaf) in
      if mine > 0 then begin
        for level = 2 to depth do
          let a = Quadtree.ancestor tree leaf ~level in
          let nv = Array.length (Quadtree.v_list tree a) in
          counts :=
            {
              !counts with
              Fmm_seq.m2l = !counts.Fmm_seq.m2l + nv;
              evals = !counts.Fmm_seq.evals + (nv * mine);
            }
        done;
        Array.iter
          (fun u ->
            let nsrc = Array.length (Quadtree.leaf_particles tree u) in
            counts :=
              { !counts with Fmm_seq.p2p = !counts.Fmm_seq.p2p + (mine * nsrc) })
          (Quadtree.u_list tree leaf)
      end)
    (Quadtree.leaves_in_morton_order tree);
  !counts

let sequential_ns ~(params : Fmm_force.params) (c : Fmm_seq.counts) =
  (c.Fmm_seq.m2l * (Fmm_force.m2l_cost_ns params + params.Fmm_force.visit_ns))
  + (c.Fmm_seq.evals * Fmm_force.eval_cost_ns params)
  + (c.Fmm_seq.p2p * params.Fmm_force.p2p_ns)

let run ?machine ?(params = Fmm_force.default_params) ?(target_occupancy = 8)
    ?(seed = 23) ?(distribution = `Uniform) ~nnodes ~nparticles variant =
  let machine =
    match machine with Some m -> m | None -> Machine.t3d ~nodes:nnodes
  in
  let parts =
    match distribution with
    | `Uniform -> Particle2d.uniform ~n:nparticles ~seed
    | `Clustered clusters -> Particle2d.clustered ~n:nparticles ~seed ~clusters
  in
  let tree = Quadtree.build ~target_occupancy parts in
  let global = Fmm_global.distribute ~p:params.Fmm_force.p tree ~nnodes in
  let engine = Engine.create machine in
  let phase = force_phase ~engine ~global ~params variant in
  { phase; seq_counts = structural_counts tree; tree }

open Dpa_heap

type t = {
  heaps : Heap.cluster;
  tree : Aquadtree.t;
  p : int;
  root : Gptr.t;
  cell_ptrs : Gptr.t array;
  owner_leaves : int array array;
}

let kind_leaf = 0.
let kind_internal = 1.

let distribute ~p tree ~nnodes =
  let parts = Aquadtree.particles tree in
  let leaves = Aquadtree.leaves_in_dfs_order tree in
  (* Equal-particle partition of the DFS leaf order. *)
  let ranges =
    Distribution.weighted_ranges
      ~weights:(Array.map (fun leaf -> max 1 (Aquadtree.nparticles tree leaf)) leaves)
      ~nnodes
  in
  let leaf_rank_owner = Distribution.owner_of_ranges ranges in
  let owner_leaves =
    Array.map
      (fun (first, count) -> Array.init count (fun i -> leaves.(first + i)))
      ranges
  in
  let leaf_rank = Hashtbl.create (Array.length leaves) in
  Array.iteri (fun r leaf -> Hashtbl.replace leaf_rank leaf r) leaves;
  let mp = Afmm_seq.upward ~p tree in
  let heaps = Heap.cluster ~nnodes in
  let ncells = Aquadtree.ncells tree in
  let cell_ptrs = Array.make ncells Gptr.nil in
  let first_leaf_rank = Array.make ncells max_int in
  Aquadtree.iter_cells_postorder tree (fun ci ->
      match Aquadtree.kind tree ci with
      | Aquadtree.Leaf _ -> first_leaf_rank.(ci) <- Hashtbl.find leaf_rank ci
      | Aquadtree.Internal children ->
        Array.iter
          (fun ch ->
            if ch >= 0 then
              first_leaf_rank.(ci) <- min first_leaf_rank.(ci) first_leaf_rank.(ch))
          children);
  Aquadtree.iter_cells_postorder tree (fun ci ->
      let owner =
        if first_leaf_rank.(ci) = max_int then 0
        else leaf_rank_owner.(first_leaf_rank.(ci))
      in
      let c = Aquadtree.center tree ci in
      let e = mp.(ci) in
      let head = 4 + (2 * (p + 1)) in
      let floats, ptrs =
        match Aquadtree.kind tree ci with
        | Aquadtree.Leaf ids ->
          let n = Array.length ids in
          let fl = Array.make (head + 1 + (4 * n)) 0. in
          fl.(0) <- kind_leaf;
          fl.(head) <- float_of_int n;
          Array.iteri
            (fun k pid ->
              let pt = parts.(pid) in
              let base = head + 1 + (4 * k) in
              fl.(base) <- float_of_int pid;
              fl.(base + 1) <- pt.Particle2d.q;
              fl.(base + 2) <- pt.Particle2d.z.Complex.re;
              fl.(base + 3) <- pt.Particle2d.z.Complex.im)
            ids;
          (fl, [||])
        | Aquadtree.Internal children ->
          let fl = Array.make head 0. in
          fl.(0) <- kind_internal;
          ( fl,
            Array.map
              (fun ch -> if ch >= 0 then cell_ptrs.(ch) else Gptr.nil)
              children )
      in
      floats.(1) <- c.Complex.re;
      floats.(2) <- c.Complex.im;
      floats.(3) <- Aquadtree.width tree ci;
      Array.iteri
        (fun i z ->
          floats.(4 + (2 * i)) <- z.Complex.re;
          floats.(4 + (2 * i) + 1) <- z.Complex.im)
        e;
      cell_ptrs.(ci) <- Heap.alloc heaps.(owner) ~floats ~ptrs);
  {
    heaps;
    tree;
    p;
    root = cell_ptrs.(Aquadtree.root tree);
    cell_ptrs;
    owner_leaves;
  }

module View = struct
  let is_leaf h (v : Heap.view) = Heap.view_float h v 0 = kind_leaf

  let center h (v : Heap.view) =
    { Complex.re = Heap.view_float h v 1; im = Heap.view_float h v 2 }

  let width h (v : Heap.view) = Heap.view_float h v 3

  let expansion ~p h (v : Heap.view) =
    Array.init (p + 1) (fun i ->
        {
          Complex.re = Heap.view_float h v (4 + (2 * i));
          im = Heap.view_float h v (4 + (2 * i) + 1);
        })

  let head ~p = 4 + (2 * (p + 1))

  let nparticles ~p h (v : Heap.view) =
    int_of_float (Heap.view_float h v (head ~p))

  let particle ~p h (v : Heap.view) k =
    let base = head ~p + 1 + (4 * k) in
    ( int_of_float (Heap.view_float h v base),
      Heap.view_float h v (base + 1),
      {
        Complex.re = Heap.view_float h v (base + 2);
        im = Heap.view_float h v (base + 3);
      } )

  let children h (v : Heap.view) =
    Array.init (Heap.view_nptrs h v) (fun i -> Heap.view_ptr h v i)

  let well_separated ~leaf_center ~leaf_width h (v : Heap.view) =
    let c = center h v and w = width h v in
    let gap_x =
      Float.abs (leaf_center.Complex.re -. c.Complex.re)
      -. ((leaf_width +. w) /. 2.)
    in
    let gap_y =
      Float.abs (leaf_center.Complex.im -. c.Complex.im)
      -. ((leaf_width +. w) /. 2.)
    in
    Float.max gap_x gap_y >= Float.max leaf_width w -. 1e-12
end

(** The FMM force-evaluation phase against the {!Dpa.Access.S} interface.

    One work item per owned leaf. The item reads the multipole objects of
    every V-list cell of each of the leaf's ancestors (M2L translated to the
    leaf center and evaluated at the leaf's particles — each contribution is
    independent, so the threads commute) and the particle lists of the U
    list for near-field direct interaction. Remote multipole vectors are
    exactly the bulk objects whose reads DPA aggregates and reuses. *)

type params = {
  p : int;  (** expansion order (the paper runs 29 terms) *)
  m2l_term2_ns : int;  (** cost per (p+1)^2 unit of an M2L translation *)
  eval_term_ns : int;  (** cost per (p+1) unit of a local evaluation *)
  p2p_ns : int;  (** cost per near-field pair *)
  visit_ns : int;  (** per-interaction-cell bookkeeping *)
}

val default_params : params
(** p = 13; cost constants calibrated against the paper's 14.46 s
    sequential time at full scale (32,768 particles, p = 29). *)

val m2l_cost_ns : params -> int
val eval_cost_ns : params -> int

module Make (A : Dpa.Access.S) : sig
  val items :
    params:params ->
    global:Fmm_global.t ->
    potential:float array ->
    field:Complex.t array ->
    int ->
    (A.ctx -> unit) array
end

(** Distributed adaptive-FMM force phase over the {!Dpa.Access.S}
    interface: one work item per owned leaf, performing the dual tree walk
    through the global heap. Reads of remote cell objects (structure +
    multipole in one object, as the paper's inline allocation merges them)
    are the threads DPA aligns. *)

module Make (A : Dpa.Access.S) : sig
  val items :
    params:Fmm_force.params ->
    global:Afmm_global.t ->
    potential:float array ->
    field:Complex.t array ->
    int ->
    (A.ctx -> unit) array
end

val force_phase :
  engine:Dpa_sim.Engine.t ->
  global:Afmm_global.t ->
  params:Fmm_force.params ->
  Dpa_baselines.Variant.t ->
  Dpa_sim.Breakdown.t * Fmm_seq.result * Dpa.Dpa_stats.t option

val run :
  ?machine:Dpa_sim.Machine.t ->
  ?params:Fmm_force.params ->
  ?leaf_cap:int ->
  ?seed:int ->
  ?distribution:[ `Uniform | `Clustered of int ] ->
  nnodes:int ->
  nparticles:int ->
  Dpa_baselines.Variant.t ->
  Dpa_sim.Breakdown.t * Fmm_seq.result * Aquadtree.t
(** Build, distribute, and run the timed adaptive force phase. *)

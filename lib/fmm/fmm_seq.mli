(** Sequential FMM reference, in the per-leaf form the distributed phase
    uses: for every leaf, the far field is the sum over its ancestors'
    V-list cells of an M2L translation to the leaf center, evaluated at each
    particle; the near field is direct summation over the U list. This
    covers each source exactly once (tested), and mirrors the distributed
    traversal interaction-for-interaction. *)

type result = {
  potential : float array;  (** Re Phi per particle *)
  field : Complex.t array;  (** Phi' per particle *)
}

type counts = {
  m2l : int;  (** M2L translations *)
  p2p : int;  (** near-field pairs *)
  evals : int;  (** local-expansion evaluations *)
}

val upward : p:int -> Quadtree.t -> Expansion.t array
(** Multipole expansion of every cell (P2M at leaves, M2M up to level 2;
    levels 0 and 1 are zero — their V lists are empty). *)

val compute : p:int -> Quadtree.t -> result * counts

val zero_counts : counts
val add_counts : counts -> counts -> counts

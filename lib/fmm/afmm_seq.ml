type counts = { m2l : int; p2p : int; visits : int }

let zero_counts = { m2l = 0; p2p = 0; visits = 0 }

let upward ~p tree =
  let parts = Aquadtree.particles tree in
  let mp = Array.make (Aquadtree.ncells tree) [||] in
  Aquadtree.iter_cells_postorder tree (fun ci ->
      match Aquadtree.kind tree ci with
      | Aquadtree.Leaf ids ->
        let charges =
          Array.to_list ids
          |> List.map (fun pid ->
                 (parts.(pid).Particle2d.q, parts.(pid).Particle2d.z))
        in
        mp.(ci) <- Expansion.p2m ~p ~center:(Aquadtree.center tree ci) charges
      | Aquadtree.Internal children ->
        let acc = Expansion.zero ~p in
        Array.iter
          (fun ch ->
            if ch >= 0 then
              Expansion.add_inplace acc
                (Expansion.m2m mp.(ch)
                   ~from_center:(Aquadtree.center tree ch)
                   ~to_center:(Aquadtree.center tree ci)))
          children;
        mp.(ci) <- acc);
  mp

let compute ~p tree =
  let parts = Aquadtree.particles tree in
  let n = Array.length parts in
  let mp = upward ~p tree in
  let potential = Array.make n 0. and field = Array.make n Complex.zero in
  let m2l = ref 0 and p2p = ref 0 and visits = ref 0 in
  Array.iter
    (fun leaf ->
      match Aquadtree.kind tree leaf with
      | Aquadtree.Internal _ -> assert false
      | Aquadtree.Leaf mine when Array.length mine > 0 ->
        let lc = Aquadtree.center tree leaf in
        let rec walk ci =
          incr visits;
          if Aquadtree.well_separated tree ~leaf ci then begin
            incr m2l;
            let local =
              Expansion.m2l mp.(ci)
                ~from_center:(Aquadtree.center tree ci)
                ~to_center:lc
            in
            Array.iter
              (fun pid ->
                let phi, dphi =
                  Expansion.eval_local local ~center:lc parts.(pid).Particle2d.z
                in
                potential.(pid) <- potential.(pid) +. phi.Complex.re;
                field.(pid) <- Complex.add field.(pid) dphi)
              mine
          end
          else
            match Aquadtree.kind tree ci with
            | Aquadtree.Leaf ids ->
              let srcs =
                Array.to_list ids
                |> List.map (fun pid ->
                       (parts.(pid).Particle2d.q, parts.(pid).Particle2d.z))
              in
              p2p := !p2p + (Array.length ids * Array.length mine);
              Array.iter
                (fun pid ->
                  let phi, dphi =
                    Expansion.direct srcs parts.(pid).Particle2d.z
                  in
                  potential.(pid) <- potential.(pid) +. phi.Complex.re;
                  field.(pid) <- Complex.add field.(pid) dphi)
                mine
            | Aquadtree.Internal children ->
              Array.iter (fun ch -> if ch >= 0 then walk ch) children
        in
        walk (Aquadtree.root tree)
      | Aquadtree.Leaf _ -> ())
    (Aquadtree.leaves_in_dfs_order tree);
  ({ Fmm_seq.potential; field }, { m2l = !m2l; p2p = !p2p; visits = !visits })

let sequential_ns ~(params : Fmm_force.params) ~nleafavg c =
  (c.m2l
  * (Fmm_force.m2l_cost_ns params
    + int_of_float (nleafavg *. float_of_int (Fmm_force.eval_cost_ns params))))
  + (c.p2p * params.Fmm_force.p2p_ns)
  + (c.visits * params.Fmm_force.visit_ns)

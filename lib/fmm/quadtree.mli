(** Complete uniform quadtree over the unit square, with the standard FMM
    interaction lists.

    The SPLASH-2 FMM uses an adaptive quadtree; for quasi-uniform inputs a
    complete tree of the equivalent depth has the same interaction structure
    (every cell's V list, every leaf's U list) and the same communication
    pattern, which is what the reproduction measures (see DESIGN.md §2).

    Cells are named by a linear index: level [l] occupies indices
    [(4^l - 1)/3 ..] in row-major [iy * 2^l + ix] order. *)

type t

val build : ?target_occupancy:int -> ?depth:int -> Particle2d.t array -> t
(** Choose depth so the mean leaf occupancy is near [target_occupancy]
    (default 8) unless [depth] is given. Depth is at least 2. *)

val particles : t -> Particle2d.t array
val depth : t -> int
val ncells : t -> int
val nleaves : t -> int

val index : t -> level:int -> ix:int -> iy:int -> int
val level_of : t -> int -> int
val coords_of : t -> int -> int * int
(** [(ix, iy)] within the cell's level. *)

val center : t -> int -> Complex.t
val width : t -> int -> float
val parent : t -> int -> int
(** Parent cell index; the root has no parent (raises [Invalid_argument]). *)

val ancestor : t -> int -> level:int -> int
val is_leaf : t -> int -> bool
val leaf_of_particle : t -> int -> int
(** Leaf cell index containing a particle id. *)

val leaf_particles : t -> int -> int array
(** Particle ids in a leaf cell (empty for non-leaf indices of the leaf
    level is an error; cell must be a leaf). *)

val leaves_in_morton_order : t -> int array
(** Leaf cell indices ordered by the Morton (Z-order) curve — the
    locality-preserving order used for partitioning. *)

val v_list : t -> int -> int array
(** Well-separated children of the parent's neighbors (levels >= 2;
    empty at levels 0 and 1). *)

val u_list : t -> int -> int array
(** For a leaf: the adjacent leaves including the leaf itself. *)

val morton : ix:int -> iy:int -> int
(** Interleave bits (ix in even positions). *)

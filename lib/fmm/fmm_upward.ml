open Dpa_sim
open Dpa_heap

type result = {
  breakdown : Breakdown.t;
  dpa_stats : Dpa.Dpa_stats.t option;
}

(* The upward pass is a reduction: parent coefficients are sums of M2M
   contributions arriving through the update path, whose application order
   depends on message interleaving (and, under a fault plan, on drops,
   retransmits and crash-restarts). To make the result bit-identical
   regardless of order, every contribution to coefficient [k] of a parent
   at tree level [L] is snapped onto the fixed grid 2^-(38 + k(L-1))
   before it enters the update path (see {!Dpa_util.Det}). The grid tracks
   the coefficient's natural scale — a coefficient of order [k] has
   magnitude ~ total-charge * (child radius)^k ~ 2^-k(L+1), and downstream
   evaluation multiplies it by w^-k at well-separated distances
   |w| >= 2^-(L-1) — so each value sits far inside the grid's 2^53
   exactness bound (sums of grid multiples are then exact, hence
   order-independent) while the snap perturbs any evaluated potential by
   at most ~2^-39 per term, three orders below the 1e-8 tolerance the
   correctness tests compare against. P2M needs no snapping: a leaf's
   multipole is a single-owner direct write and is already deterministic. *)
let det_bits_base = 38

(* Work items against the generic access interface, so the pass runs under
   every runtime. *)
module Items (A : Dpa.Access.S) = struct
  let write_local_expansion heaps (ptr : Gptr.t) (e : Expansion.t) =
    (* In-place store writes: with the flat heap, [Heap.get] is a copy-out
       (mutating the copy would be lost), so owned objects are written
       through [set_float]. *)
    let h = heaps.(Gptr.node ptr) in
    Array.iteri
      (fun i c ->
        Heap.set_float h ptr (2 * i) c.Complex.re;
        Heap.set_float h ptr ((2 * i) + 1) c.Complex.im)
      e

  let p2m_items ~(params : Fmm_force.params) ~(global : Fmm_global.t) node =
    let tree = global.Fmm_global.tree in
    let parts = Quadtree.particles tree in
    let p = params.Fmm_force.p in
    Array.map
      (fun leaf ->
        let ids = Quadtree.leaf_particles tree leaf in
        let center = Quadtree.center tree leaf in
        let ptr = global.Fmm_global.mp_ptrs.(leaf) in
        fun (ctx : A.ctx) ->
          A.charge ctx
            (Array.length ids * Fmm_force.eval_cost_ns params);
          let charges =
            Array.to_list ids
            |> List.map (fun pid ->
                   (parts.(pid).Particle2d.q, parts.(pid).Particle2d.z))
          in
          let e = Expansion.p2m ~p ~center charges in
          (* The leaf's multipole object is owned here: a direct write. *)
          write_local_expansion global.Fmm_global.heaps ptr e)
      global.Fmm_global.owner_leaves.(node)

  let m2m_items ~(params : Fmm_force.params) ~(global : Fmm_global.t)
      ~owned_cells node =
    let tree = global.Fmm_global.tree in
    Array.map
      (fun ci ->
        let parent = Quadtree.parent tree ci in
        let parent_ptr = global.Fmm_global.mp_ptrs.(parent) in
        let my_ptr = global.Fmm_global.mp_ptrs.(ci) in
        let from_center = Quadtree.center tree ci in
        let to_center = Quadtree.center tree parent in
        let parent_level = Quadtree.level_of tree parent in
        fun (ctx : A.ctx) ->
          (* Our own multipole is local: the owner of a cell owns its first
             descendant leaf, which is also this item's owner. *)
          A.charge ctx (Fmm_force.m2l_cost_ns params / 2);
          let shifted =
            Expansion.m2m
              (Fmm_global.View.expansion global.Fmm_global.heaps my_ptr)
              ~from_center ~to_center
          in
          Array.iteri
            (fun i c ->
              let grid =
                Dpa_util.Det.grid
                  ~bits:(det_bits_base + (i * (parent_level - 1)))
              in
              let re = Dpa_util.Det.quantize ~grid c.Complex.re in
              let im = Dpa_util.Det.quantize ~grid c.Complex.im in
              if re <> 0. then A.accumulate ctx parent_ptr ~idx:(2 * i) re;
              if im <> 0. then
                A.accumulate ctx parent_ptr ~idx:((2 * i) + 1) im)
            shifted)
      owned_cells.(node)
end

module I_dpa = Items (Dpa.Runtime)
module I_caching = Items (Dpa_baselines.Caching)

let cells_by_owner tree ~nnodes ~level =
  let owned = Array.make nnodes [] in
  let side = 1 lsl level in
  (* Reverse iteration so the accumulated lists come out in row-major
     order. *)
  for iy = side - 1 downto 0 do
    for ix = side - 1 downto 0 do
      let ci = Quadtree.index tree ~level ~ix ~iy in
      let o = Fmm_global.owner_of_cell tree ~nnodes ci in
      owned.(o) <- ci :: owned.(o)
    done
  done;
  Array.map Array.of_list owned

let run ?route ~engine ~global ~params variant =
  let tree = global.Fmm_global.tree in
  let nnodes = Array.length global.Fmm_global.heaps in
  let depth = Quadtree.depth tree in
  let total = ref None in
  let stats = ref [] in
  let add_phase (b, s) =
    (total := match !total with None -> Some b | Some t -> Some (Breakdown.add t b));
    match s with Some s -> stats := s :: !stats | None -> ()
  in
  let run_items items_dpa items_caching =
    match variant with
    | Dpa_baselines.Variant.Dpa config ->
      (* The M2M phases are fan-in reductions (many children, one parent
         owner); [route] overrides the config's routing for them. Results
         are bit-identical either way — the per-coefficient grids make the
         merge order irrelevant. *)
      let config =
        match route with
        | None -> config
        | Some r -> Dpa.Config.{ config with route = r }
      in
      let b, s =
        Dpa.Runtime.run_phase_labeled ~label:"fmm-upward" ~engine
          ~heaps:global.Fmm_global.heaps ~config ~items:items_dpa
      in
      add_phase (b, Some s)
    | Dpa_baselines.Variant.Prefetch { strip_size } ->
      let b, s =
        Dpa.Runtime.run_phase_labeled ~label:"fmm-upward-prefetch" ~engine
          ~heaps:global.Fmm_global.heaps
          ~config:(Dpa.Config.pipeline_only ~strip_size ())
          ~items:items_dpa
      in
      add_phase (b, Some s)
    | Dpa_baselines.Variant.Caching { capacity } ->
      let b, _ =
        Dpa_baselines.Caching.run_phase ~engine ~heaps:global.Fmm_global.heaps
          ~capacity ~items:items_caching ()
      in
      add_phase (b, None)
    | Dpa_baselines.Variant.Blocking ->
      let b, _ =
        Dpa_baselines.Blocking.run_phase ~engine ~heaps:global.Fmm_global.heaps
          ~items:items_caching
      in
      add_phase (b, None)
  in
  (* P2M at the leaves. *)
  run_items
    (I_dpa.p2m_items ~params ~global)
    (I_caching.p2m_items ~params ~global);
  (* M2M, level by level (each phase is a barrier: parents are complete
     before they are shifted further up). *)
  for level = depth downto 3 do
    let owned_cells = cells_by_owner tree ~nnodes ~level in
    run_items
      (I_dpa.m2m_items ~params ~global ~owned_cells)
      (I_caching.m2m_items ~params ~global ~owned_cells)
  done;
  {
    breakdown = Option.get !total;
    dpa_stats =
      (match !stats with [] -> None | l -> Some (Dpa.Dpa_stats.merge l));
  }

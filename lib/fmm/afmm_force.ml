open Dpa_heap

module Make (A : Dpa.Access.S) = struct
  let items ~(params : Fmm_force.params) ~(global : Afmm_global.t) ~potential
      ~field node =
    let tree = global.Afmm_global.tree in
    let parts = Aquadtree.particles tree in
    let p = global.Afmm_global.p in
    Array.map
      (fun leaf ->
        let mine =
          match Aquadtree.kind tree leaf with
          | Aquadtree.Leaf ids -> ids
          | Aquadtree.Internal _ -> assert false
        in
        let lc = Aquadtree.center tree leaf in
        let lw = Aquadtree.width tree leaf in
        let rec walk ctx (view : Heap.view) =
          let heaps = A.heaps ctx in
          A.charge ctx params.Fmm_force.visit_ns;
          if
            Afmm_global.View.well_separated ~leaf_center:lc ~leaf_width:lw heaps
              view
          then begin
            A.charge ctx
              (Fmm_force.m2l_cost_ns params
              + (Array.length mine * Fmm_force.eval_cost_ns params));
            let local =
              Expansion.m2l
                (Afmm_global.View.expansion ~p heaps view)
                ~from_center:(Afmm_global.View.center heaps view) ~to_center:lc
            in
            Array.iter
              (fun pid ->
                let phi, dphi =
                  Expansion.eval_local local ~center:lc parts.(pid).Particle2d.z
                in
                potential.(pid) <- potential.(pid) +. phi.Complex.re;
                field.(pid) <- Complex.add field.(pid) dphi)
              mine
          end
          else if Afmm_global.View.is_leaf heaps view then begin
            let nsrc = Afmm_global.View.nparticles ~p heaps view in
            A.charge ctx (Array.length mine * nsrc * params.Fmm_force.p2p_ns);
            let srcs =
              List.init nsrc (fun k ->
                  let _, q, z = Afmm_global.View.particle ~p heaps view k in
                  (q, z))
            in
            Array.iter
              (fun pid ->
                let phi, dphi =
                  Expansion.direct srcs parts.(pid).Particle2d.z
                in
                potential.(pid) <- potential.(pid) +. phi.Complex.re;
                field.(pid) <- Complex.add field.(pid) dphi)
              mine
          end
          else
            Array.iter
              (fun child -> if not (Gptr.is_nil child) then A.read ctx child walk)
              (Afmm_global.View.children heaps view)
        in
        fun (ctx : A.ctx) ->
          if Array.length mine > 0 then
            A.read ctx global.Afmm_global.root walk)
      global.Afmm_global.owner_leaves.(node)
end

module F_dpa = Make (Dpa.Runtime)
module F_caching = Make (Dpa_baselines.Caching)

let force_phase ~engine ~global ~params variant =
  let n = Array.length (Aquadtree.particles global.Afmm_global.tree) in
  let potential = Array.make n 0. and field = Array.make n Complex.zero in
  let heaps = global.Afmm_global.heaps in
  let breakdown, stats =
    match variant with
    | Dpa_baselines.Variant.Dpa config ->
      let b, s =
        Dpa.Runtime.run_phase_labeled ~label:"afmm-force" ~engine ~heaps
          ~config
          ~items:(F_dpa.items ~params ~global ~potential ~field)
      in
      (b, Some s)
    | Dpa_baselines.Variant.Prefetch { strip_size } ->
      let b, s =
        Dpa.Runtime.run_phase_labeled ~label:"afmm-force-prefetch" ~engine
          ~heaps
          ~config:(Dpa.Config.pipeline_only ~strip_size ())
          ~items:(F_dpa.items ~params ~global ~potential ~field)
      in
      (b, Some s)
    | Dpa_baselines.Variant.Caching { capacity } ->
      let b, _ =
        Dpa_baselines.Caching.run_phase ~engine ~heaps ~capacity
          ~items:(F_caching.items ~params ~global ~potential ~field)
          ()
      in
      (b, None)
    | Dpa_baselines.Variant.Blocking ->
      let b, _ =
        Dpa_baselines.Blocking.run_phase ~engine ~heaps
          ~items:(F_caching.items ~params ~global ~potential ~field)
      in
      (b, None)
  in
  (breakdown, { Fmm_seq.potential; field }, stats)

let run ?machine ?(params = Fmm_force.default_params) ?(leaf_cap = 8)
    ?(seed = 23) ?(distribution = `Uniform) ~nnodes ~nparticles variant =
  let machine =
    match machine with Some m -> m | None -> Dpa_sim.Machine.t3d ~nodes:nnodes
  in
  let parts =
    match distribution with
    | `Uniform -> Particle2d.uniform ~n:nparticles ~seed
    | `Clustered clusters -> Particle2d.clustered ~n:nparticles ~seed ~clusters
  in
  let tree = Aquadtree.build ~leaf_cap parts in
  let global = Afmm_global.distribute ~p:params.Fmm_force.p tree ~nnodes in
  let engine = Dpa_sim.Engine.create machine in
  let breakdown, result, _ = force_phase ~engine ~global ~params variant in
  (breakdown, result, tree)

(** Adaptive quadtree over the unit square: cells split when they hold more
    than [leaf_cap] particles, so the tree refines where the particles are —
    the structure of the SPLASH-2 *adaptive* FMM, which {!Quadtree}'s
    complete tree approximates only for quasi-uniform inputs. *)

type t

type kind =
  | Leaf of int array  (** particle ids, insertion order *)
  | Internal of int array  (** 4 children indices, -1 where absent *)

val build : ?leaf_cap:int -> Particle2d.t array -> t
(** [leaf_cap] defaults to 8. Particle positions must lie in [\[0,1)²]. *)

val particles : t -> Particle2d.t array
val root : t -> int
val ncells : t -> int
val center : t -> int -> Complex.t
val width : t -> int -> float
val kind : t -> int -> kind
val nparticles : t -> int -> int
(** Particles in the subtree. *)

val depth : t -> int
val leaves_in_dfs_order : t -> int array
val iter_cells_postorder : t -> (int -> unit) -> unit

val well_separated : t -> leaf:int -> int -> bool
(** The multipole acceptance criterion of the dual walk: the Chebyshev gap
    between the two cells' squares is at least the larger side length.
    (For equal-size cells this is exactly the uniform FMM's
    non-adjacent-at-the-same-level condition.) *)

open Dpa_heap

type t = {
  heaps : Heap.cluster;
  tree : Quadtree.t;
  p : int;
  mp_ptrs : Gptr.t array;
  leaf_ptrs : Gptr.t array;
  owner_leaves : int array array;
}

let owner_of_leaf tree ~nnodes leaf =
  let d = Quadtree.depth tree in
  let ix, iy = Quadtree.coords_of tree leaf in
  let rank = Quadtree.morton ~ix ~iy in
  Distribution.block_owner ~nitems:(1 lsl (2 * d)) ~nnodes rank

let owner_of_cell tree ~nnodes ci =
  let d = Quadtree.depth tree in
  let l = Quadtree.level_of tree ci in
  let ix, iy = Quadtree.coords_of tree ci in
  let rank = Quadtree.morton ~ix ~iy lsl (2 * (d - l)) in
  Distribution.block_owner ~nitems:(1 lsl (2 * d)) ~nnodes rank

let expansion_floats e =
  let n = Array.length e in
  Array.init (2 * n) (fun i ->
      let c = e.(i / 2) in
      if i land 1 = 0 then c.Complex.re else c.Complex.im)

let distribute_with ~p ~mp tree ~nnodes =
  let parts = Quadtree.particles tree in
  let heaps = Heap.cluster ~nnodes in
  let ncells = Quadtree.ncells tree in
  let mp_ptrs = Array.make ncells Gptr.nil in
  let leaf_ptrs = Array.make ncells Gptr.nil in
  for ci = 0 to ncells - 1 do
    if Quadtree.level_of tree ci >= 2 then begin
      let owner = owner_of_cell tree ~nnodes ci in
      mp_ptrs.(ci) <-
        Heap.alloc heaps.(owner) ~floats:(expansion_floats (mp ci)) ~ptrs:[||];
      if Quadtree.is_leaf tree ci then begin
        let ids = Quadtree.leaf_particles tree ci in
        let n = Array.length ids in
        let floats = Array.make (1 + (4 * n)) 0. in
        floats.(0) <- float_of_int n;
        Array.iteri
          (fun k pid ->
            let pt = parts.(pid) in
            let base = 1 + (4 * k) in
            floats.(base) <- float_of_int pid;
            floats.(base + 1) <- pt.Particle2d.q;
            floats.(base + 2) <- pt.Particle2d.z.Complex.re;
            floats.(base + 3) <- pt.Particle2d.z.Complex.im)
          ids;
        leaf_ptrs.(ci) <- Heap.alloc heaps.(owner) ~floats ~ptrs:[||]
      end
    end
  done;
  let owner_leaves = Array.make nnodes [] in
  let morton_leaves = Quadtree.leaves_in_morton_order tree in
  Array.iter
    (fun leaf ->
      let o = owner_of_leaf tree ~nnodes leaf in
      owner_leaves.(o) <- leaf :: owner_leaves.(o))
    morton_leaves;
  {
    heaps;
    tree;
    p;
    mp_ptrs;
    leaf_ptrs;
    owner_leaves = Array.map (fun l -> Array.of_list (List.rev l)) owner_leaves;
  }

let distribute ~p tree ~nnodes =
  let mp = Fmm_seq.upward ~p tree in
  distribute_with ~p ~mp:(fun ci -> mp.(ci)) tree ~nnodes

let distribute_empty ~p tree ~nnodes =
  let zero = Expansion.zero ~p in
  distribute_with ~p ~mp:(fun _ -> zero) tree ~nnodes

module View = struct
  let expansion h (v : Heap.view) =
    let n = Heap.view_nfloats h v / 2 in
    Array.init n (fun i ->
        {
          Complex.re = Heap.view_float h v (2 * i);
          im = Heap.view_float h v ((2 * i) + 1);
        })

  let nparticles h (v : Heap.view) = int_of_float (Heap.view_float h v 0)

  let particle h (v : Heap.view) k =
    let base = 1 + (4 * k) in
    ( int_of_float (Heap.view_float h v base),
      Heap.view_float h v (base + 1),
      {
        Complex.re = Heap.view_float h v (base + 2);
        im = Heap.view_float h v (base + 3);
      } )
end

(** End-to-end FMM experiment driver: generate particles, build the tree and
    multipoles (sequential, untimed — the paper times the force-evaluation
    phase), distribute, and run the timed phase under any runtime variant. *)

open Dpa_sim

type phase_result = {
  breakdown : Breakdown.t;
  result : Fmm_seq.result;
  dpa_stats : Dpa.Dpa_stats.t option;
  cache_stats : Dpa_baselines.Caching.stats option;
}

val force_phase :
  engine:Engine.t ->
  global:Fmm_global.t ->
  params:Fmm_force.params ->
  Dpa_baselines.Variant.t ->
  phase_result

type run_result = {
  phase : phase_result;
  seq_counts : Fmm_seq.counts;  (** structural counts (no arithmetic) *)
  tree : Quadtree.t;
}

val run :
  ?machine:Machine.t ->
  ?params:Fmm_force.params ->
  ?target_occupancy:int ->
  ?seed:int ->
  ?distribution:[ `Uniform | `Clustered of int ] ->
  nnodes:int ->
  nparticles:int ->
  Dpa_baselines.Variant.t ->
  run_result

val structural_counts : Quadtree.t -> Fmm_seq.counts
(** M2L / p2p / eval counts from the tree structure alone (cheap; used for
    speedup denominators without running the sequential FMM). *)

val sequential_ns : params:Fmm_force.params -> Fmm_seq.counts -> int

(** End-to-end Barnes-Hut experiment driver: build the bodies and the tree,
    distribute, and run timed force-computation phases under any runtime
    variant. Tree construction and integration are sequential and untimed,
    matching the paper, which measures the force-computation phase only. *)

open Dpa_sim

type phase_result = {
  breakdown : Breakdown.t;
  accs : Vec3.t array;
  dpa_stats : Dpa.Dpa_stats.t option;
  cache_stats : Dpa_baselines.Caching.stats option;
}

val force_phase :
  ?work:int array ->
  engine:Engine.t ->
  tree:Bh_global.t ->
  bodies:Body.t array ->
  params:Bh_force.params ->
  Dpa_baselines.Variant.t ->
  phase_result
(** [work] (indexed by body id) records the simulated ns each body's
    traversal charged — see {!Bh_force.Make.items}. *)

type sim_result = {
  total : Breakdown.t;  (** summed over the timed force phases *)
  steps : Breakdown.t list;
  bodies : Body.t array;  (** final state *)
  last : phase_result;  (** of the last step *)
  seq_counts : Bh_seq.counts;  (** interaction counts of step 1 *)
}

val simulate :
  ?machine:Machine.t ->
  ?params:Bh_force.params ->
  ?leaf_cap:int ->
  ?dt:float ->
  ?seed:int ->
  ?partition:[ `Block | `Costzones ] ->
  ?repartition:bool ->
  nnodes:int ->
  nbodies:int ->
  nsteps:int ->
  Dpa_baselines.Variant.t ->
  sim_result
(** Plummer input, [nsteps] leapfrog steps; each step rebuilds and
    redistributes the tree (untimed) and times the force phase.
    [partition] (default [`Block], equal body counts) can be set to
    [`Costzones]: bodies weighted by their estimated traversal work, the
    SPLASH-2 load-balancing scheme.

    [repartition] (default off) records the simulated work each body's
    traversal actually charged and re-cuts ownership along Morton order by
    those measured weights from step 2 on — dynamic pointer alignment's
    owner-compute locality tracking the evolving tree. Step 1 uses
    [partition] as before. The measured weights are a pure function of the
    deterministically rebuilt tree, so repartitioned runs replay
    bit-identically, and the grid-exact force sums are bit-identical to
    the statically partitioned run's. *)

val sequential_ns : params:Bh_force.params -> Bh_seq.counts -> int
(** Modelled sequential execution time for the given interaction counts —
    the denominator of the paper's speedups. *)

open Dpa_util

let mfrac = 0.999 (* mass cut-off, as in the original barnes code *)

let pick_shell rng radius =
  (* Uniform direction, fixed radius. *)
  let rec loop () =
    let x = (2. *. Rng.uniform rng) -. 1.
    and y = (2. *. Rng.uniform rng) -. 1.
    and z = (2. *. Rng.uniform rng) -. 1. in
    let r2 = (x *. x) +. (y *. y) +. (z *. z) in
    if r2 > 1.0 || r2 < 1e-12 then loop ()
    else
      let s = radius /. sqrt r2 in
      Vec3.make (s *. x) (s *. y) (s *. z)
  in
  loop ()

let generate ~n ~seed =
  if n <= 0 then invalid_arg "Plummer.generate: n must be positive";
  let rng = Rng.create ~seed in
  let rsc = (3. *. Float.pi) /. 16. in
  let vsc = sqrt (1. /. rsc) in
  let bodies =
    Array.init n (fun id ->
        let m = Rng.uniform rng *. mfrac in
        let r = 1. /. sqrt ((m ** (-2. /. 3.)) -. 1.) in
        let pos = pick_shell rng (rsc *. r) in
        (* von Neumann rejection for the velocity modulus. *)
        let rec pick_v () =
          let x = Rng.uniform rng in
          let y = Rng.uniform rng *. 0.1 in
          if y <= x *. x *. ((1. -. (x *. x)) ** 3.5) then x else pick_v ()
        in
        let v = pick_v () *. sqrt 2. /. ((1. +. (r *. r)) ** 0.25) in
        let vel = pick_shell rng (vsc *. v) in
        Body.make ~id ~mass:(1. /. float_of_int n) ~pos ~vel)
  in
  (* Shift to the center-of-mass frame. *)
  let cm_pos = ref Vec3.zero and cm_vel = ref Vec3.zero in
  Array.iter
    (fun b ->
      cm_pos := Vec3.axpy b.Body.mass b.Body.pos !cm_pos;
      cm_vel := Vec3.axpy b.Body.mass b.Body.vel !cm_vel)
    bodies;
  let total_mass = Array.fold_left (fun a b -> a +. b.Body.mass) 0. bodies in
  let cp = Vec3.scale (1. /. total_mass) !cm_pos in
  let cv = Vec3.scale (1. /. total_mass) !cm_vel in
  Array.iter
    (fun b ->
      b.Body.pos <- Vec3.sub b.Body.pos cp;
      b.Body.vel <- Vec3.sub b.Body.vel cv)
    bodies;
  bodies

let uniform_cube ~n ~seed =
  if n <= 0 then invalid_arg "Plummer.uniform_cube: n must be positive";
  let rng = Rng.create ~seed in
  Array.init n (fun id ->
      let pos =
        Vec3.make (Rng.uniform rng) (Rng.uniform rng) (Rng.uniform rng)
      in
      Body.make ~id ~mass:(1. /. float_of_int n) ~pos ~vel:Vec3.zero)

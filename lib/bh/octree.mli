(** Sequential octree over a set of bodies: the Barnes-Hut pointer-based
    data structure. Cells are stored in a growable arena and named by index;
    {!Bh_global} turns the arena into distributed heap objects. *)

type t

type kind =
  | Leaf of int array  (** body ids, in insertion order *)
  | Internal of int array  (** 8 children indices, -1 where absent *)

val build : ?leaf_cap:int -> Body.t array -> t
(** Build the tree ([leaf_cap] defaults to 8 bodies per leaf). The root cube
    encloses all bodies. *)

val bodies : t -> Body.t array
val root : t -> int
val ncells : t -> int
val leaf_cap : t -> int

val center : t -> int -> Vec3.t
(** Geometric center of the cell's cube. *)

val half : t -> int -> float
(** Half of the cube's side length. *)

val mass : t -> int -> float
val com : t -> int -> Vec3.t
(** Total mass and center of mass of the subtree. *)

val quad : t -> int -> float array
(** Traceless quadrupole tensor of the subtree about its center of mass,
    packed [xx; xy; xz; yy; yz; zz] — the moments the SPLASH-2 code carries
    in each cell. Computed lazily on first access. *)

val kind : t -> int -> kind
val nbodies : t -> int -> int

val depth : t -> int
(** Height of the tree. *)

val dfs_body_order : t -> int array
(** Body ids in depth-first leaf order — the locality-preserving order used
    to partition bodies across nodes (the Morton/tree order). *)

val iter_cells_postorder : t -> (int -> unit) -> unit
(** Visit every cell, children before parents. *)

(** Direct O(n²) summation: the accuracy yardstick for Barnes-Hut. *)

val compute_forces : ?eps:float -> Body.t array -> unit
(** Fill [acc] for every body by summing over all pairs. *)

val max_relative_error : Body.t array -> reference:Vec3.t array -> float
(** Largest [|acc - reference| / |reference|] over the bodies. *)

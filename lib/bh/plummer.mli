(** Plummer-model initial conditions, the distribution used by the SPLASH-2
    Barnes-Hut inputs (Aarseth, Hénon & Wielen 1974 recipe). Deterministic
    given the seed. *)

val generate : n:int -> seed:int -> Body.t array
(** [n] equal-mass bodies (total mass 1) in virial units, center-of-mass
    frame. *)

val uniform_cube : n:int -> seed:int -> Body.t array
(** Alternative input: uniform positions in the unit cube, zero velocities.
    Useful for tests and for the FMM-style uniform workloads. *)

let compute_forces ?(eps = 0.05) bodies =
  Array.iter
    (fun b ->
      let acc = ref Vec3.zero in
      Array.iter
        (fun s ->
          if s.Body.id <> b.Body.id then
            acc :=
              Vec3.add !acc
                (Kernels.accel ~eps ~pos:b.Body.pos ~src_pos:s.Body.pos
                   ~src_mass:s.Body.mass))
        bodies;
      b.Body.acc <- !acc)
    bodies

let max_relative_error bodies ~reference =
  let worst = ref 0. in
  Array.iteri
    (fun i b ->
      let d = Vec3.dist b.Body.acc reference.(i) in
      let n = Vec3.norm reference.(i) in
      if n > 0. then worst := max !worst (d /. n))
    bodies;
  !worst

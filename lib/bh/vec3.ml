type t = { x : float; y : float; z : float }

let zero = { x = 0.; y = 0.; z = 0. }
let make x y z = { x; y; z }
let add a b = { x = a.x +. b.x; y = a.y +. b.y; z = a.z +. b.z }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y; z = a.z -. b.z }
let scale s a = { x = s *. a.x; y = s *. a.y; z = s *. a.z }
let dot a b = (a.x *. b.x) +. (a.y *. b.y) +. (a.z *. b.z)
let norm2 a = dot a a
let norm a = sqrt (norm2 a)
let dist a b = norm (sub a b)
let axpy a x y = { x = (a *. x.x) +. y.x; y = (a *. x.y) +. y.y; z = (a *. x.z) +. y.z }

let approx_equal ?(tol = 1e-9) a b =
  let scale = max 1. (max (norm a) (norm b)) in
  norm (sub a b) <= tol *. scale

let pp ppf a = Format.fprintf ppf "(%g, %g, %g)" a.x a.y a.z

(** Distribution of the octree into the global heap.

    Bodies are ordered depth-first (tree order, which is also Morton order
    for an octree) and block-partitioned across nodes; each cell is owned by
    the owner of the first body of its subtree, so subtrees land near their
    bodies. Each cell becomes one heap object:

    floats: [kind; com.x; com.y; com.z; mass; half; nbodies;
             then for leaves, 5 floats per body: id, x, y, z, mass]
    ptrs:   8 child pointers for internal cells (nil where absent). *)

open Dpa_heap

type t = {
  heaps : Heap.cluster;
  root : Gptr.t;
  owner_bodies : int array array;  (** node -> owned body ids, tree order *)
  cell_ptrs : Gptr.t array;  (** octree cell index -> heap pointer *)
}

val kind_leaf : float
val kind_internal : float

val distribute : ?weights:int array -> Octree.t -> nnodes:int -> t
(** [weights] (indexed by body id) switches the partition from equal counts
    to equal total weight — the SPLASH-2 "costzones" scheme, using each
    body's previous-step work as its weight. *)

(** Accessors over a cell object view, resolved through the cluster
    ({!Heap.view} is a handle, not a record). Convenience layer for
    reference code and tests; the force kernel reads the float pool
    directly ({!Heap.float_base}) to keep its inner loop
    allocation-free. *)
module View : sig
  val is_leaf : Heap.cluster -> Heap.view -> bool
  val com : Heap.cluster -> Heap.view -> Vec3.t
  val mass : Heap.cluster -> Heap.view -> float
  val half : Heap.cluster -> Heap.view -> float
  val nbodies : Heap.cluster -> Heap.view -> int

  val body : Heap.cluster -> Heap.view -> int -> int * Vec3.t * float
  (** [body heaps view k] is the [k]-th inline body: (id, position,
      mass). *)

  val children : Heap.cluster -> Heap.view -> Gptr.t array
end

(** Distribution of the octree into the global heap.

    Bodies are ordered depth-first (tree order, which is also Morton order
    for an octree) and block-partitioned across nodes; each cell is owned by
    the owner of the first body of its subtree, so subtrees land near their
    bodies. Each cell becomes one heap object:

    floats: [kind; com.x; com.y; com.z; mass; half; nbodies;
             then for leaves, 5 floats per body: id, x, y, z, mass]
    ptrs:   8 child pointers for internal cells (nil where absent). *)

open Dpa_heap

type t = {
  heaps : Heap.cluster;
  root : Gptr.t;
  owner_bodies : int array array;  (** node -> owned body ids, tree order *)
  cell_ptrs : Gptr.t array;  (** octree cell index -> heap pointer *)
}

val kind_leaf : float
val kind_internal : float

val distribute : ?weights:int array -> Octree.t -> nnodes:int -> t
(** [weights] (indexed by body id) switches the partition from equal counts
    to equal total weight — the SPLASH-2 "costzones" scheme, using each
    body's previous-step work as its weight. *)

(** Accessors over a cell object view, shared by all traversals. *)
module View : sig
  val is_leaf : Obj_repr.t -> bool
  val com : Obj_repr.t -> Vec3.t
  val mass : Obj_repr.t -> float
  val half : Obj_repr.t -> float
  val nbodies : Obj_repr.t -> int
  val body : Obj_repr.t -> int -> int * Vec3.t * float
  (** [body view k] is the [k]-th inline body: (id, position, mass). *)

  val children : Obj_repr.t -> Gptr.t array
end

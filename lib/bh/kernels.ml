let accel ~eps ~pos ~src_pos ~src_mass =
  let r = Vec3.sub src_pos pos in
  let d2 = Vec3.norm2 r in
  if d2 = 0. then Vec3.zero
  else
    let d2 = d2 +. (eps *. eps) in
    let inv = 1. /. (d2 *. sqrt d2) in
    Vec3.scale (src_mass *. inv) r

let opened ~theta ~pos ~com ~half =
  let d = Vec3.dist pos com in
  let side = 2. *. half in
  side >= theta *. d

let accel_with_quad ~eps ~pos ~src_pos ~src_mass ~quad =
  let r = Vec3.sub src_pos pos in
  let d2 = Vec3.norm2 r in
  if d2 = 0. then Vec3.zero
  else begin
    let d2e = d2 +. (eps *. eps) in
    let d = sqrt d2e in
    let d3inv = 1. /. (d2e *. d) in
    let mono = Vec3.scale (src_mass *. d3inv) r in
    (* Field point relative to the source: rr = pos - src. *)
    let rr = Vec3.scale (-1.) r in
    let qr =
      Vec3.make
        ((quad.(0) *. rr.Vec3.x) +. (quad.(1) *. rr.Vec3.y) +. (quad.(2) *. rr.Vec3.z))
        ((quad.(1) *. rr.Vec3.x) +. (quad.(3) *. rr.Vec3.y) +. (quad.(4) *. rr.Vec3.z))
        ((quad.(2) *. rr.Vec3.x) +. (quad.(4) *. rr.Vec3.y) +. (quad.(5) *. rr.Vec3.z))
    in
    let rqr = Vec3.dot rr qr in
    let d5inv = d3inv /. d2e in
    let d7inv = d5inv /. d2e in
    (* a_quad = (Q r)/d^5 - (5/2) (r.Q.r) r / d^7 *)
    let quad_acc =
      Vec3.axpy (-2.5 *. rqr *. d7inv) rr (Vec3.scale d5inv qr)
    in
    Vec3.add mono quad_acc
  end

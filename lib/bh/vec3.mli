(** Three-dimensional vectors for the N-body codes. *)

type t = { x : float; y : float; z : float }

val zero : t
val make : float -> float -> float -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val dot : t -> t -> float
val norm2 : t -> float
val norm : t -> float
val dist : t -> t -> float
val axpy : float -> t -> t -> t
(** [axpy a x y] is [a*x + y]. *)

val approx_equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit

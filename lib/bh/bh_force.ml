open Dpa_heap

type params = {
  theta : float;
  eps : float;
  visit_ns : int;
  body_cell_ns : int;
  body_body_ns : int;
}

let default_params =
  { theta = 1.0; eps = 0.05; visit_ns = 400; body_cell_ns = 4250; body_body_ns = 3100 }

(* Deterministic reduction: each interaction's contribution is snapped to a
   fixed-point grid before being added into the per-body accumulator. Grid
   values are exact multiples of 2^-42, and the running sums stay well under
   2^10, so every addition is exact in a double — which makes the summation
   order-independent at the bit level. The wake order of a body's pending
   reads is a timing artifact (and shifts under injected network faults);
   this is what lets any fault schedule reproduce the fault-free forces
   exactly. The snap costs ~2e-13 per contribution, far inside the 1e-9
   agreement with the sequential reference. See Dpa_util.Det. *)
let det_grid = Dpa_util.Det.grid ~bits:42

module Make (A : Dpa.Access.S) = struct
  let items ?work ~params ~tree ~bodies ~(accs : float array) node =
    let root = tree.Bh_global.root in
    let theta = params.theta and eps = params.eps in
    let grid = det_grid in
    (* [spend] charges simulated time and, when [work] is given, records it
       against the body. The traversal — hence the recorded total — is a
       pure function of the tree geometry, so the measured weights are
       independent of the partition and of any fault schedule: the same
       step always yields the same weights, which is what keeps
       repartitioned runs deterministic. *)
    let spend bid ctx ns =
      A.charge ctx ns;
      match work with None -> () | Some w -> w.(bid) <- w.(bid) + ns
    in
    Array.map
      (fun bid ->
        let b = bodies.(bid) in
        let px = b.Body.pos.Vec3.x
        and py = b.Body.pos.Vec3.y
        and pz = b.Body.pos.Vec3.z in
        let base = 3 * bid in
        (* The interaction math is written out scalar over the owner's
           float pool: no Vec3 temporaries, no boxed-float returns, so a
           visit allocates nothing. Every arithmetic expression mirrors
           the Vec3/Kernels reference op for op (same association, same
           order), which keeps the summed forces bit-identical to the
           boxed implementation and to {!Bh_seq}. *)
        let rec visit ctx (view : Heap.view) =
          spend bid ctx params.visit_ns;
          let h = (A.heaps ctx).(Gptr.node view) in
          let fp = Heap.float_pool h in
          let fb = Heap.float_base h view in
          let cx = Bigarray.Array1.get fp (fb + 1)
          and cy = Bigarray.Array1.get fp (fb + 2)
          and cz = Bigarray.Array1.get fp (fb + 3) in
          (* Kernels.opened: d = |pos - com|, opened iff 2*half >= theta*d *)
          let dx = px -. cx and dy = py -. cy and dz = pz -. cz in
          let d = sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz)) in
          let half = Bigarray.Array1.get fp (fb + 5) in
          if not (2. *. half >= theta *. d) then begin
            spend bid ctx params.body_cell_ns;
            (* Kernels.accel against the cell's center of mass. *)
            let rx = cx -. px and ry = cy -. py and rz = cz -. pz in
            let d2 = (rx *. rx) +. (ry *. ry) +. (rz *. rz) in
            if d2 = 0. then begin
              accs.(base) <- accs.(base) +. 0.;
              accs.(base + 1) <- accs.(base + 1) +. 0.;
              accs.(base + 2) <- accs.(base + 2) +. 0.
            end
            else begin
              let d2 = d2 +. (eps *. eps) in
              let inv = 1. /. (d2 *. sqrt d2) in
              let s = Bigarray.Array1.get fp (fb + 4) *. inv in
              accs.(base) <-
                accs.(base) +. (Float.round (s *. rx *. grid) /. grid);
              accs.(base + 1) <-
                accs.(base + 1) +. (Float.round (s *. ry *. grid) /. grid);
              accs.(base + 2) <-
                accs.(base + 2) +. (Float.round (s *. rz *. grid) /. grid)
            end
          end
          else if Bigarray.Array1.get fp (fb + 0) = Bh_global.kind_leaf
          then begin
            let n = int_of_float (Bigarray.Array1.get fp (fb + 6)) in
            for k = 0 to n - 1 do
              let bb = fb + 7 + (5 * k) in
              let sid = int_of_float (Bigarray.Array1.get fp bb) in
              if sid <> bid then begin
                spend bid ctx params.body_body_ns;
                let rx = Bigarray.Array1.get fp (bb + 1) -. px
                and ry = Bigarray.Array1.get fp (bb + 2) -. py
                and rz = Bigarray.Array1.get fp (bb + 3) -. pz in
                let d2 = (rx *. rx) +. (ry *. ry) +. (rz *. rz) in
                if d2 = 0. then begin
                  accs.(base) <- accs.(base) +. 0.;
                  accs.(base + 1) <- accs.(base + 1) +. 0.;
                  accs.(base + 2) <- accs.(base + 2) +. 0.
                end
                else begin
                  let d2 = d2 +. (eps *. eps) in
                  let inv = 1. /. (d2 *. sqrt d2) in
                  let s = Bigarray.Array1.get fp (bb + 4) *. inv in
                  accs.(base) <-
                    accs.(base) +. (Float.round (s *. rx *. grid) /. grid);
                  accs.(base + 1) <-
                    accs.(base + 1) +. (Float.round (s *. ry *. grid) /. grid);
                  accs.(base + 2) <-
                    accs.(base + 2) +. (Float.round (s *. rz *. grid) /. grid)
                end
              end
            done
          end
          else begin
            let heaps = A.heaps ctx in
            let np = Heap.view_nptrs heaps view in
            for i = 0 to np - 1 do
              let child = Heap.view_ptr heaps view i in
              if not (Gptr.is_nil child) then A.read ctx child visit
            done
          end
        in
        fun ctx -> A.read ctx root visit)
      tree.Bh_global.owner_bodies.(node)
end

open Dpa_heap

type params = {
  theta : float;
  eps : float;
  visit_ns : int;
  body_cell_ns : int;
  body_body_ns : int;
}

let default_params =
  { theta = 1.0; eps = 0.05; visit_ns = 400; body_cell_ns = 4250; body_body_ns = 3100 }

(* Deterministic reduction: each interaction's contribution is snapped to a
   fixed-point grid before being added into the per-body accumulator. Grid
   values are exact multiples of 2^-42, and the running sums stay well under
   2^10, so every addition is exact in a double — which makes the summation
   order-independent at the bit level. The wake order of a body's pending
   reads is a timing artifact (and shifts under injected network faults);
   this is what lets any fault schedule reproduce the fault-free forces
   exactly. The snap costs ~2e-13 per contribution, far inside the 1e-9
   agreement with the sequential reference. See Dpa_util.Det. *)
let det_grid = Dpa_util.Det.grid ~bits:42

let quantize v = Dpa_util.Det.quantize ~grid:det_grid v

let quantize3 (v : Vec3.t) =
  { Vec3.x = quantize v.Vec3.x; y = quantize v.Vec3.y; z = quantize v.Vec3.z }

module Make (A : Dpa.Access.S) = struct
  let items ?work ~params ~tree ~bodies ~accs node =
    let root = tree.Bh_global.root in
    (* [spend] charges simulated time and, when [work] is given, records it
       against the body. The traversal — hence the recorded total — is a
       pure function of the tree geometry, so the measured weights are
       independent of the partition and of any fault schedule: the same
       step always yields the same weights, which is what keeps
       repartitioned runs deterministic. *)
    let spend bid ctx ns =
      A.charge ctx ns;
      match work with None -> () | Some w -> w.(bid) <- w.(bid) + ns
    in
    Array.map
      (fun bid ->
        let b = bodies.(bid) in
        let pos = b.Body.pos in
        let rec visit ctx (view : Obj_repr.t) =
          spend bid ctx params.visit_ns;
          let com = Bh_global.View.com view in
          let half = Bh_global.View.half view in
          if not (Kernels.opened ~theta:params.theta ~pos ~com ~half) then begin
            spend bid ctx params.body_cell_ns;
            accs.(bid) <-
              Vec3.add accs.(bid)
                (quantize3
                   (Kernels.accel ~eps:params.eps ~pos ~src_pos:com
                      ~src_mass:(Bh_global.View.mass view)))
          end
          else if Bh_global.View.is_leaf view then begin
            let n = Bh_global.View.nbodies view in
            for k = 0 to n - 1 do
              let sid, spos, smass = Bh_global.View.body view k in
              if sid <> bid then begin
                spend bid ctx params.body_body_ns;
                accs.(bid) <-
                  Vec3.add accs.(bid)
                    (quantize3
                       (Kernels.accel ~eps:params.eps ~pos ~src_pos:spos
                          ~src_mass:smass))
              end
            done
          end
          else
            Array.iter
              (fun child -> if not (Gptr.is_nil child) then A.read ctx child visit)
              (Bh_global.View.children view)
        in
        fun ctx -> A.read ctx root visit)
      tree.Bh_global.owner_bodies.(node)
end

type t = {
  id : int;
  mass : float;
  mutable pos : Vec3.t;
  mutable vel : Vec3.t;
  mutable acc : Vec3.t;
}

let make ~id ~mass ~pos ~vel = { id; mass; pos; vel; acc = Vec3.zero }

let advance bodies ~dt =
  Array.iter
    (fun b ->
      b.vel <- Vec3.axpy dt b.acc b.vel;
      b.pos <- Vec3.axpy dt b.vel b.pos)
    bodies

let kinetic_energy bodies =
  Array.fold_left
    (fun acc b -> acc +. (0.5 *. b.mass *. Vec3.norm2 b.vel))
    0. bodies

let total_momentum bodies =
  Array.fold_left (fun acc b -> Vec3.axpy b.mass b.vel acc) Vec3.zero bodies

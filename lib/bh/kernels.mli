(** Shared force arithmetic. Both the sequential reference and every
    runtime-driven traversal use exactly these functions, so cross-runtime
    comparisons are limited only by floating-point reassociation. *)

val accel :
  eps:float -> pos:Vec3.t -> src_pos:Vec3.t -> src_mass:float -> Vec3.t
(** Plummer-softened gravitational acceleration at [pos] due to a point mass
    [src_mass] at [src_pos] (G = 1): [m * r / (|r|^2 + eps^2)^{3/2}]. Zero
    when the positions coincide. *)

val opened : theta:float -> pos:Vec3.t -> com:Vec3.t -> half:float -> bool
(** The Barnes-Hut multipole acceptance test: [true] when the cell must be
    opened, i.e. when [side / dist(pos, com) >= theta]. *)

val accel_with_quad :
  eps:float ->
  pos:Vec3.t ->
  src_pos:Vec3.t ->
  src_mass:float ->
  quad:float array ->
  Vec3.t
(** Monopole plus quadrupole acceleration from a cell's moments (packed as
    in {!Octree.quad}): the SPLASH-2 accuracy refinement. *)

open Dpa_util

type kind = Leaf of int array | Internal of int array

type cell = {
  center : Vec3.t;
  half : float;
  mutable mass : float;
  mutable com : Vec3.t;
  mutable node : node;
}

and node = L of int list * int (* bodies (reversed), count *) | I of int array

type t = {
  cells : cell Dynarray.t;
  root : int;
  leaf_cap : int;
  bodies : Body.t array;
  mutable quads : float array array;  (* lazily computed; [||] = not yet *)
}

let max_depth = 64

let new_cell cells ~center ~half =
  Dynarray.add cells
    { center; half; mass = 0.; com = Vec3.zero; node = L ([], 0) }

let octant (center : Vec3.t) (p : Vec3.t) =
  (if p.Vec3.x >= center.Vec3.x then 1 else 0)
  lor (if p.Vec3.y >= center.Vec3.y then 2 else 0)
  lor if p.Vec3.z >= center.Vec3.z then 4 else 0

let child_center (center : Vec3.t) half oct =
  let q = half /. 2. in
  Vec3.make
    (center.Vec3.x +. if oct land 1 <> 0 then q else -.q)
    (center.Vec3.y +. if oct land 2 <> 0 then q else -.q)
    (center.Vec3.z +. if oct land 4 <> 0 then q else -.q)

let bounding_cube bodies =
  let inf = infinity in
  let lo = ref (Vec3.make inf inf inf)
  and hi = ref (Vec3.make neg_infinity neg_infinity neg_infinity) in
  Array.iter
    (fun b ->
      let p = b.Body.pos in
      lo :=
        Vec3.make (min !lo.Vec3.x p.Vec3.x) (min !lo.Vec3.y p.Vec3.y)
          (min !lo.Vec3.z p.Vec3.z);
      hi :=
        Vec3.make (max !hi.Vec3.x p.Vec3.x) (max !hi.Vec3.y p.Vec3.y)
          (max !hi.Vec3.z p.Vec3.z))
    bodies;
  let center = Vec3.scale 0.5 (Vec3.add !lo !hi) in
  let ext = Vec3.sub !hi !lo in
  let side = max ext.Vec3.x (max ext.Vec3.y ext.Vec3.z) in
  (* A little slack so bodies on the boundary stay strictly inside. *)
  (center, max 1e-9 (side *. 0.5 *. 1.0001))

let build ?(leaf_cap = 8) bodies =
  if Array.length bodies = 0 then invalid_arg "Octree.build: no bodies";
  if leaf_cap <= 0 then invalid_arg "Octree.build: leaf_cap must be positive";
  let cells = Dynarray.create () in
  let center, half = bounding_cube bodies in
  let root = new_cell cells ~center ~half in
  let rec insert ci bid depth =
    let c = Dynarray.get cells ci in
    match c.node with
    | L (ids, n) when n < leaf_cap || depth >= max_depth ->
      c.node <- L (bid :: ids, n + 1)
    | L (ids, _) ->
      (* Split: push existing bodies down, then retry. *)
      c.node <- I (Array.make 8 (-1));
      List.iter (fun b -> insert_into_child ci b (depth + 1)) ids;
      insert_into_child ci bid (depth + 1)
    | I _ -> insert_into_child ci bid (depth + 1)
  and insert_into_child ci bid depth =
    let c = Dynarray.get cells ci in
    match c.node with
    | I children ->
      let oct = octant c.center bodies.(bid).Body.pos in
      let child =
        if children.(oct) >= 0 then children.(oct)
        else begin
          let cc =
            new_cell cells ~center:(child_center c.center c.half oct)
              ~half:(c.half /. 2.)
          in
          children.(oct) <- cc;
          cc
        end
      in
      insert child bid depth
    | L _ -> assert false
  in
  Array.iteri (fun bid _ -> insert root bid 0) bodies;
  (* Bottom-up mass and center-of-mass. *)
  let rec summarize ci =
    let c = Dynarray.get cells ci in
    match c.node with
    | L (ids, _) ->
      let m = ref 0. and acc = ref Vec3.zero in
      List.iter
        (fun bid ->
          let b = bodies.(bid) in
          m := !m +. b.Body.mass;
          acc := Vec3.axpy b.Body.mass b.Body.pos !acc)
        ids;
      c.mass <- !m;
      c.com <- (if !m > 0. then Vec3.scale (1. /. !m) !acc else c.center)
    | I children ->
      let m = ref 0. and acc = ref Vec3.zero in
      Array.iter
        (fun ch ->
          if ch >= 0 then begin
            summarize ch;
            let cc = Dynarray.get cells ch in
            m := !m +. cc.mass;
            acc := Vec3.axpy cc.mass cc.com !acc
          end)
        children;
      c.mass <- !m;
      c.com <- (if !m > 0. then Vec3.scale (1. /. !m) !acc else c.center)
  in
  summarize root;
  { cells; root; leaf_cap; bodies; quads = [||] }

(* Q += m * (3 d d^T - |d|^2 I), packed xx xy xz yy yz zz. *)
let quad_add q m (d : Vec3.t) =
  let d2 = Vec3.norm2 d in
  q.(0) <- q.(0) +. (m *. ((3. *. d.Vec3.x *. d.Vec3.x) -. d2));
  q.(1) <- q.(1) +. (m *. 3. *. d.Vec3.x *. d.Vec3.y);
  q.(2) <- q.(2) +. (m *. 3. *. d.Vec3.x *. d.Vec3.z);
  q.(3) <- q.(3) +. (m *. ((3. *. d.Vec3.y *. d.Vec3.y) -. d2));
  q.(4) <- q.(4) +. (m *. 3. *. d.Vec3.y *. d.Vec3.z);
  q.(5) <- q.(5) +. (m *. ((3. *. d.Vec3.z *. d.Vec3.z) -. d2))

let compute_quads t =
  let n = Dynarray.length t.cells in
  let quads = Array.init n (fun _ -> Array.make 6 0.) in
  let rec go ci =
    let c = Dynarray.get t.cells ci in
    let q = quads.(ci) in
    (match c.node with
    | L (ids, _) ->
      List.iter
        (fun bid ->
          let b = t.bodies.(bid) in
          quad_add q b.Body.mass (Vec3.sub b.Body.pos c.com))
        ids
    | I children ->
      Array.iter
        (fun ch ->
          if ch >= 0 then begin
            go ch;
            let cc = Dynarray.get t.cells ch in
            (* Parallel-axis shift of the child's quadrupole. *)
            Array.blit
              (Array.mapi (fun i v -> q.(i) +. v) quads.(ch))
              0 q 0 6;
            quad_add q cc.mass (Vec3.sub cc.com c.com)
          end)
        children);
    ()
  in
  go t.root;
  quads

let quad t i =
  if Array.length t.quads = 0 then t.quads <- compute_quads t;
  t.quads.(i)

let bodies t = t.bodies
let root t = t.root
let ncells t = Dynarray.length t.cells
let leaf_cap t = t.leaf_cap
let center t i = (Dynarray.get t.cells i).center
let half t i = (Dynarray.get t.cells i).half
let mass t i = (Dynarray.get t.cells i).mass
let com t i = (Dynarray.get t.cells i).com

let kind t i =
  match (Dynarray.get t.cells i).node with
  | L (ids, _) -> Leaf (Array.of_list (List.rev ids))
  | I children -> Internal children

let nbodies t i =
  let rec count ci =
    match (Dynarray.get t.cells ci).node with
    | L (_, n) -> n
    | I children ->
      Array.fold_left (fun acc ch -> if ch >= 0 then acc + count ch else acc) 0 children
  in
  count i

let depth t =
  let rec go ci =
    match (Dynarray.get t.cells ci).node with
    | L _ -> 1
    | I children ->
      1
      + Array.fold_left
          (fun acc ch -> if ch >= 0 then max acc (go ch) else acc)
          0 children
  in
  go t.root

let dfs_body_order t =
  let out = Dynarray.create () in
  let rec go ci =
    match (Dynarray.get t.cells ci).node with
    | L (ids, _) -> List.iter (fun b -> ignore (Dynarray.add out b)) (List.rev ids)
    | I children -> Array.iter (fun ch -> if ch >= 0 then go ch) children
  in
  go t.root;
  Array.init (Dynarray.length out) (Dynarray.get out)

let iter_cells_postorder t f =
  let rec go ci =
    (match (Dynarray.get t.cells ci).node with
    | L _ -> ()
    | I children -> Array.iter (fun ch -> if ch >= 0 then go ch) children);
    f ci
  in
  go t.root

open Dpa_heap

type t = {
  heaps : Heap.cluster;
  root : Gptr.t;
  owner_bodies : int array array;
  cell_ptrs : Gptr.t array;
}

let kind_leaf = 0.
let kind_internal = 1.

let distribute ?weights tree ~nnodes =
  let bodies = Octree.bodies tree in
  let order = Octree.dfs_body_order tree in
  let nbodies = Array.length order in
  let rank = Array.make nbodies 0 in
  Array.iteri (fun r bid -> rank.(bid) <- r) order;
  let ranges =
    match weights with
    | None ->
      Array.init nnodes (Distribution.block_range ~nitems:nbodies ~nnodes)
    | Some w ->
      if Array.length w <> nbodies then
        invalid_arg "Bh_global.distribute: weights length mismatch";
      (* Weights arrive indexed by body id; the partition walks tree order. *)
      Distribution.weighted_ranges
        ~weights:(Array.map (fun bid -> w.(bid)) order)
        ~nnodes
  in
  let rank_owner = Distribution.owner_of_ranges ranges in
  let owner_bodies =
    Array.map
      (fun (first, count) -> Array.init count (fun i -> order.(first + i)))
      ranges
  in
  let heaps = Heap.cluster ~nnodes in
  let cell_ptrs = Array.make (Octree.ncells tree) Gptr.nil in
  (* First rank of any body in each subtree determines the owner. *)
  let first_rank = Array.make (Octree.ncells tree) max_int in
  Octree.iter_cells_postorder tree (fun ci ->
      match Octree.kind tree ci with
      | Octree.Leaf ids ->
        Array.iter (fun bid -> first_rank.(ci) <- min first_rank.(ci) rank.(bid)) ids
      | Octree.Internal children ->
        Array.iter
          (fun ch -> if ch >= 0 then first_rank.(ci) <- min first_rank.(ci) first_rank.(ch))
          children);
  Octree.iter_cells_postorder tree (fun ci ->
      let owner =
        if first_rank.(ci) = max_int then 0 else rank_owner.(first_rank.(ci))
      in
      let com = Octree.com tree ci in
      let head =
        [|
          (match Octree.kind tree ci with
          | Octree.Leaf _ -> kind_leaf
          | Octree.Internal _ -> kind_internal);
          com.Vec3.x;
          com.Vec3.y;
          com.Vec3.z;
          Octree.mass tree ci;
          Octree.half tree ci;
        |]
      in
      let floats, ptrs =
        match Octree.kind tree ci with
        | Octree.Leaf ids ->
          let n = Array.length ids in
          let fl = Array.make (7 + (5 * n)) 0. in
          Array.blit head 0 fl 0 6;
          fl.(6) <- float_of_int n;
          Array.iteri
            (fun k bid ->
              let b = bodies.(bid) in
              let base = 7 + (5 * k) in
              fl.(base) <- float_of_int bid;
              fl.(base + 1) <- b.Body.pos.Vec3.x;
              fl.(base + 2) <- b.Body.pos.Vec3.y;
              fl.(base + 3) <- b.Body.pos.Vec3.z;
              fl.(base + 4) <- b.Body.mass)
            ids;
          (fl, [||])
        | Octree.Internal children ->
          let fl = Array.make 7 0. in
          Array.blit head 0 fl 0 6;
          fl.(6) <- float_of_int (Octree.nbodies tree ci);
          let ps =
            Array.map (fun ch -> if ch >= 0 then cell_ptrs.(ch) else Gptr.nil) children
          in
          (fl, ps)
      in
      cell_ptrs.(ci) <- Heap.alloc heaps.(owner) ~floats ~ptrs);
  {
    heaps;
    root = cell_ptrs.(Octree.root tree);
    owner_bodies;
    cell_ptrs;
  }

module View = struct
  let is_leaf (v : Obj_repr.t) = v.Obj_repr.floats.(0) = kind_leaf
  let com (v : Obj_repr.t) =
    let f = v.Obj_repr.floats in
    Vec3.make f.(1) f.(2) f.(3)

  let mass (v : Obj_repr.t) = v.Obj_repr.floats.(4)
  let half (v : Obj_repr.t) = v.Obj_repr.floats.(5)
  let nbodies (v : Obj_repr.t) = int_of_float v.Obj_repr.floats.(6)

  let body (v : Obj_repr.t) k =
    let f = v.Obj_repr.floats in
    let base = 7 + (5 * k) in
    ( int_of_float f.(base),
      Vec3.make f.(base + 1) f.(base + 2) f.(base + 3),
      f.(base + 4) )

  let children (v : Obj_repr.t) = v.Obj_repr.ptrs
end

open Dpa_heap

type t = {
  heaps : Heap.cluster;
  root : Gptr.t;
  owner_bodies : int array array;
  cell_ptrs : Gptr.t array;
}

let kind_leaf = 0.
let kind_internal = 1.

let distribute ?weights tree ~nnodes =
  let bodies = Octree.bodies tree in
  let order = Octree.dfs_body_order tree in
  let nbodies = Array.length order in
  let rank = Array.make nbodies 0 in
  Array.iteri (fun r bid -> rank.(bid) <- r) order;
  let ranges =
    match weights with
    | None ->
      Array.init nnodes (Distribution.block_range ~nitems:nbodies ~nnodes)
    | Some w ->
      if Array.length w <> nbodies then
        invalid_arg "Bh_global.distribute: weights length mismatch";
      (* Weights arrive indexed by body id; the partition walks tree order. *)
      Distribution.weighted_ranges
        ~weights:(Array.map (fun bid -> w.(bid)) order)
        ~nnodes
  in
  let rank_owner = Distribution.owner_of_ranges ranges in
  let owner_bodies =
    Array.map
      (fun (first, count) -> Array.init count (fun i -> order.(first + i)))
      ranges
  in
  let heaps = Heap.cluster ~nnodes in
  let cell_ptrs = Array.make (Octree.ncells tree) Gptr.nil in
  (* First rank of any body in each subtree determines the owner. *)
  let first_rank = Array.make (Octree.ncells tree) max_int in
  Octree.iter_cells_postorder tree (fun ci ->
      match Octree.kind tree ci with
      | Octree.Leaf ids ->
        Array.iter (fun bid -> first_rank.(ci) <- min first_rank.(ci) rank.(bid)) ids
      | Octree.Internal children ->
        Array.iter
          (fun ch -> if ch >= 0 then first_rank.(ci) <- min first_rank.(ci) first_rank.(ch))
          children);
  (* Cells are written straight into the owner's pools ([alloc_raw] +
     in-place stores): no staging arrays, so the per-step rebuild at
     million-body scale allocates nothing per cell beyond pool growth. *)
  Octree.iter_cells_postorder tree (fun ci ->
      let owner =
        if first_rank.(ci) = max_int then 0 else rank_owner.(first_rank.(ci))
      in
      let h = heaps.(owner) in
      let com = Octree.com tree ci in
      let p =
        match Octree.kind tree ci with
        | Octree.Leaf ids ->
          let n = Array.length ids in
          let p = Heap.alloc_raw h ~nfloats:(7 + (5 * n)) ~nptrs:0 in
          Heap.set_float h p 0 kind_leaf;
          Heap.set_float h p 6 (float_of_int n);
          Array.iteri
            (fun k bid ->
              let b = bodies.(bid) in
              let base = 7 + (5 * k) in
              Heap.set_float h p base (float_of_int bid);
              Heap.set_float h p (base + 1) b.Body.pos.Vec3.x;
              Heap.set_float h p (base + 2) b.Body.pos.Vec3.y;
              Heap.set_float h p (base + 3) b.Body.pos.Vec3.z;
              Heap.set_float h p (base + 4) b.Body.mass)
            ids;
          p
        | Octree.Internal children ->
          let p = Heap.alloc_raw h ~nfloats:7 ~nptrs:(Array.length children) in
          Heap.set_float h p 0 kind_internal;
          Heap.set_float h p 6 (float_of_int (Octree.nbodies tree ci));
          Array.iteri
            (fun i ch ->
              if ch >= 0 then Heap.set_ptr h p i cell_ptrs.(ch))
            children;
          p
      in
      Heap.set_float h p 1 com.Vec3.x;
      Heap.set_float h p 2 com.Vec3.y;
      Heap.set_float h p 3 com.Vec3.z;
      Heap.set_float h p 4 (Octree.mass tree ci);
      Heap.set_float h p 5 (Octree.half tree ci);
      cell_ptrs.(ci) <- p);
  {
    heaps;
    root = cell_ptrs.(Octree.root tree);
    owner_bodies;
    cell_ptrs;
  }

module View = struct
  let is_leaf h (v : Heap.view) = Heap.view_float h v 0 = kind_leaf

  let com h (v : Heap.view) =
    Vec3.make (Heap.view_float h v 1) (Heap.view_float h v 2)
      (Heap.view_float h v 3)

  let mass h (v : Heap.view) = Heap.view_float h v 4
  let half h (v : Heap.view) = Heap.view_float h v 5
  let nbodies h (v : Heap.view) = int_of_float (Heap.view_float h v 6)

  let body h (v : Heap.view) k =
    let base = 7 + (5 * k) in
    ( int_of_float (Heap.view_float h v base),
      Vec3.make
        (Heap.view_float h v (base + 1))
        (Heap.view_float h v (base + 2))
        (Heap.view_float h v (base + 3)),
      Heap.view_float h v (base + 4) )

  let children h (v : Heap.view) =
    Array.init (Heap.view_nptrs h v) (fun i -> Heap.view_ptr h v i)
end

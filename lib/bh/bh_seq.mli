(** Sequential Barnes-Hut force computation: the reference implementation
    and the source of the interaction counts used to calibrate the machine
    model. *)

type counts = {
  cell_visits : int;  (** cells examined (opened or not) *)
  body_cell : int;  (** far-field body–cell interactions *)
  body_body : int;  (** near-field body–body interactions *)
}

val compute_forces :
  ?theta:float -> ?eps:float -> ?use_quad:bool -> Octree.t -> counts
(** Fill [body.acc] for every body by traversing the tree. [theta] defaults
    to 1.0 (the SPLASH-2 timing setting), [eps] to 0.05. [use_quad] adds
    the cells' quadrupole moments to far-field interactions (the SPLASH-2
    accuracy refinement; default off, matching the distributed layout). *)

val force_on :
  ?theta:float -> ?eps:float -> ?use_quad:bool -> Octree.t -> Body.t -> Vec3.t
(** Acceleration on one body, without mutating it. *)

val zero_counts : counts
val add_counts : counts -> counts -> counts

val per_body_work :
  ?theta:float ->
  ?visit_w:int ->
  ?body_cell_w:int ->
  ?body_body_w:int ->
  Octree.t ->
  int array
(** Per-body traversal work estimate (weighted interaction counts, no force
    arithmetic) — the weights the costzones partitioning uses. Default
    weights approximate the cost ratios of {!Bh_force.default_params}. *)

val visit_trace : ?theta:float -> Octree.t -> Body.t -> (int -> unit) -> unit
(** Feed the sequence of cell indices the body's traversal touches to the
    callback — the access trace used by the cache-locality study. *)

(** A point mass. Positions and velocities evolve across time steps; the
    acceleration field is (re)filled by each force-computation phase. *)

type t = {
  id : int;
  mass : float;
  mutable pos : Vec3.t;
  mutable vel : Vec3.t;
  mutable acc : Vec3.t;
}

val make : id:int -> mass:float -> pos:Vec3.t -> vel:Vec3.t -> t

val advance : t array -> dt:float -> unit
(** Leapfrog step using the accelerations currently stored in [acc]. *)

val kinetic_energy : t array -> float
val total_momentum : t array -> Vec3.t

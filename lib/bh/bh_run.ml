open Dpa_sim

type phase_result = {
  breakdown : Breakdown.t;
  accs : Vec3.t array;
  dpa_stats : Dpa.Dpa_stats.t option;
  cache_stats : Dpa_baselines.Caching.stats option;
}

module Force_dpa = Bh_force.Make (Dpa.Runtime)
module Force_caching = Bh_force.Make (Dpa_baselines.Caching)

let force_phase ?work ~engine ~tree ~bodies ~params variant =
  let n = Array.length bodies in
  (* Flat (x, y, z)-interleaved accumulators keep the interaction loop
     allocation-free; the Vec3 array the callers consume is materialized
     once, at this edge. *)
  let accs = Array.make (3 * n) 0. in
  let to_vec3 () =
    Array.init n (fun i ->
        Vec3.make accs.(3 * i) accs.((3 * i) + 1) accs.((3 * i) + 2))
  in
  let heaps = tree.Bh_global.heaps in
  match variant with
  | Dpa_baselines.Variant.Dpa config ->
    let items = Force_dpa.items ?work ~params ~tree ~bodies ~accs in
    let breakdown, stats =
      Dpa.Runtime.run_phase_labeled ~label:"bh-force" ~engine ~heaps ~config
        ~items
    in
    { breakdown; accs = to_vec3 (); dpa_stats = Some stats; cache_stats = None }
  | Dpa_baselines.Variant.Prefetch { strip_size } ->
    let items = Force_dpa.items ?work ~params ~tree ~bodies ~accs in
    let breakdown, stats =
      Dpa.Runtime.run_phase_labeled ~label:"bh-force-prefetch" ~engine ~heaps
        ~config:(Dpa.Config.pipeline_only ~strip_size ())
        ~items
    in
    { breakdown; accs = to_vec3 (); dpa_stats = Some stats; cache_stats = None }
  | Dpa_baselines.Variant.Caching { capacity } ->
    let items = Force_caching.items ?work ~params ~tree ~bodies ~accs in
    let breakdown, stats =
      Dpa_baselines.Caching.run_phase ~engine ~heaps ~capacity ~items ()
    in
    { breakdown; accs = to_vec3 (); dpa_stats = None; cache_stats = Some stats }
  | Dpa_baselines.Variant.Blocking ->
    let items = Force_caching.items ?work ~params ~tree ~bodies ~accs in
    let breakdown, stats =
      Dpa_baselines.Blocking.run_phase ~engine ~heaps ~items
    in
    { breakdown; accs = to_vec3 (); dpa_stats = None; cache_stats = Some stats }

type sim_result = {
  total : Breakdown.t;
  steps : Breakdown.t list;
  bodies : Body.t array;
  last : phase_result;
  seq_counts : Bh_seq.counts;
}

let sequential_ns ~(params : Bh_force.params) (c : Bh_seq.counts) =
  (c.Bh_seq.cell_visits * params.Bh_force.visit_ns)
  + (c.Bh_seq.body_cell * params.Bh_force.body_cell_ns)
  + (c.Bh_seq.body_body * params.Bh_force.body_body_ns)

let simulate ?machine ?(params = Bh_force.default_params) ?(leaf_cap = 8)
    ?(dt = 0.025) ?(seed = 17) ?(partition = `Block) ?(repartition = false)
    ~nnodes ~nbodies ~nsteps variant =
  if nsteps <= 0 then invalid_arg "Bh_run.simulate: nsteps must be positive";
  let machine =
    match machine with Some m -> m | None -> Machine.t3d ~nodes:nnodes
  in
  let engine = Engine.create machine in
  let bodies = Plummer.generate ~n:nbodies ~seed in
  let steps = ref [] in
  let last = ref None in
  let seq_counts = ref Bh_seq.zero_counts in
  (* Morton repartitioning: record the simulated ns each body's traversal
     charges, and cut the next step's ownership along Morton order by that
     measured work instead of this step's estimate. The weights are a pure
     function of the (deterministically rebuilt) tree, so the schedule —
     and with grid-exact force sums, every result bit — replays under any
     partition or fault history. *)
  let work = if repartition then Some (Array.make nbodies 0) else None in
  let prev_work = ref None in
  for step = 1 to nsteps do
    let octree = Octree.build ~leaf_cap bodies in
    if step = 1 then begin
      (* Counting traversal for the speedup denominator; accelerations are
         recomputed by the distributed phase below. *)
      let counts = Bh_seq.compute_forces ~theta:params.Bh_force.theta
          ~eps:params.Bh_force.eps octree
      in
      seq_counts := counts
    end;
    let weights =
      match !prev_work with
      | Some w -> Some w  (* measured, from the previous step's phase *)
      | None -> (
        match partition with
        | `Block -> None
        | `Costzones ->
          Some (Bh_seq.per_body_work ~theta:params.Bh_force.theta octree))
    in
    (match work with
    | Some w -> Array.fill w 0 (Array.length w) 0
    | None -> ());
    let tree = Bh_global.distribute ?weights octree ~nnodes in
    let result = force_phase ?work ~engine ~tree ~bodies ~params variant in
    (match work with
    | Some w -> prev_work := Some (Array.copy w)
    | None -> ());
    steps := result.breakdown :: !steps;
    last := Some result;
    Array.iteri (fun bid acc -> bodies.(bid).Body.acc <- acc) result.accs;
    Body.advance bodies ~dt
  done;
  let steps = List.rev !steps in
  let total =
    List.fold_left Breakdown.add (Breakdown.zero ~procs:nnodes) steps
  in
  let last = Option.get !last in
  { total; steps; bodies; last; seq_counts = !seq_counts }

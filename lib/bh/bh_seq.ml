type counts = { cell_visits : int; body_cell : int; body_body : int }

let zero_counts = { cell_visits = 0; body_cell = 0; body_body = 0 }

let add_counts a b =
  {
    cell_visits = a.cell_visits + b.cell_visits;
    body_cell = a.body_cell + b.body_cell;
    body_body = a.body_body + b.body_body;
  }

(* The traversal mirrors, interaction for interaction, the distributed
   traversal in [Bh_force]: leaves and internal cells both pass the
   acceptance test; accepted cells contribute through their center of mass,
   opened leaves contribute body-by-body (skipping the subject itself).

   The monopole arithmetic is written out on scalars, in exactly the
   operation order of [Kernels.accel]/[Vec3.add], so the traversal stays
   allocation-free (a [Vec3.t] per interaction would dominate the whole
   step's allocation at large N) while producing bit-identical
   accelerations. *)
let force_on_counting ?(theta = 1.0) ?(eps = 0.05) ?(use_quad = false) tree
    (b : Body.t) counts =
  let bodies = Octree.bodies tree in
  let px = b.Body.pos.Vec3.x
  and py = b.Body.pos.Vec3.y
  and pz = b.Body.pos.Vec3.z in
  (* A float array, not three [float ref]s: a [float ref] is the generic
     ref cell, so every [:=] allocates a fresh box; float-array stores are
     unboxed. *)
  let acc = Array.make 3 0. in
  let visits = ref 0 and bc = ref 0 and bb = ref 0 in
  (* The monopole interaction is spelled out (twice) rather than shared
     through a helper: float arguments crossing a non-inlined call are
     boxed, which is precisely the allocation this loop must avoid. *)
  let rec visit ci =
    incr visits;
    let com = Octree.com tree ci and half = Octree.half tree ci in
    let dx = px -. com.Vec3.x
    and dy = py -. com.Vec3.y
    and dz = pz -. com.Vec3.z in
    let d = sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz)) in
    if not (2. *. half >= theta *. d) then begin
      incr bc;
      if use_quad then begin
        let c =
          Kernels.accel_with_quad ~eps ~pos:b.Body.pos ~src_pos:com
            ~src_mass:(Octree.mass tree ci) ~quad:(Octree.quad tree ci)
        in
        acc.(0) <- acc.(0) +. c.Vec3.x;
        acc.(1) <- acc.(1) +. c.Vec3.y;
        acc.(2) <- acc.(2) +. c.Vec3.z
      end
      else begin
        let rx = com.Vec3.x -. px
        and ry = com.Vec3.y -. py
        and rz = com.Vec3.z -. pz in
        let d2 = (rx *. rx) +. (ry *. ry) +. (rz *. rz) in
        if d2 = 0. then begin
          (* [Kernels.accel] returns [Vec3.zero] here; adding it still
             normalizes a negative zero in the accumulator. *)
          acc.(0) <- acc.(0) +. 0.;
          acc.(1) <- acc.(1) +. 0.;
          acc.(2) <- acc.(2) +. 0.
        end
        else begin
          let d2 = d2 +. (eps *. eps) in
          let inv = 1. /. (d2 *. sqrt d2) in
          let s = Octree.mass tree ci *. inv in
          acc.(0) <- acc.(0) +. (s *. rx);
          acc.(1) <- acc.(1) +. (s *. ry);
          acc.(2) <- acc.(2) +. (s *. rz)
        end
      end
    end
    else
      match Octree.kind tree ci with
      | Octree.Leaf ids ->
        for i = 0 to Array.length ids - 1 do
          let bid = ids.(i) in
          if bid <> b.Body.id then begin
            incr bb;
            let s = bodies.(bid) in
            let rx = s.Body.pos.Vec3.x -. px
            and ry = s.Body.pos.Vec3.y -. py
            and rz = s.Body.pos.Vec3.z -. pz in
            let d2 = (rx *. rx) +. (ry *. ry) +. (rz *. rz) in
            if d2 = 0. then begin
              acc.(0) <- acc.(0) +. 0.;
              acc.(1) <- acc.(1) +. 0.;
              acc.(2) <- acc.(2) +. 0.
            end
            else begin
              let d2 = d2 +. (eps *. eps) in
              let inv = 1. /. (d2 *. sqrt d2) in
              let s = s.Body.mass *. inv in
              acc.(0) <- acc.(0) +. (s *. rx);
              acc.(1) <- acc.(1) +. (s *. ry);
              acc.(2) <- acc.(2) +. (s *. rz)
            end
          end
        done
      | Octree.Internal children ->
        for i = 0 to Array.length children - 1 do
          if children.(i) >= 0 then visit children.(i)
        done
  in
  visit (Octree.root tree);
  counts :=
    add_counts !counts
      { cell_visits = !visits; body_cell = !bc; body_body = !bb };
  Vec3.make acc.(0) acc.(1) acc.(2)

let force_on ?theta ?eps ?use_quad tree b =
  let c = ref zero_counts in
  force_on_counting ?theta ?eps ?use_quad tree b c

let compute_forces ?theta ?eps ?use_quad tree =
  let counts = ref zero_counts in
  Array.iter
    (fun b -> b.Body.acc <- force_on_counting ?theta ?eps ?use_quad tree b counts)
    (Octree.bodies tree);
  !counts

let per_body_work ?(theta = 1.0) ?(visit_w = 1) ?(body_cell_w = 10)
    ?(body_body_w = 8) tree =
  let bodies = Octree.bodies tree in
  Array.map
    (fun (b : Body.t) ->
      let work = ref 0 in
      let rec visit ci =
        work := !work + visit_w;
        let com = Octree.com tree ci and half = Octree.half tree ci in
        if not (Kernels.opened ~theta ~pos:b.Body.pos ~com ~half) then
          work := !work + body_cell_w
        else
          match Octree.kind tree ci with
          | Octree.Leaf ids ->
            Array.iter
              (fun bid -> if bid <> b.Body.id then work := !work + body_body_w)
              ids
          | Octree.Internal children ->
            Array.iter (fun ch -> if ch >= 0 then visit ch) children
      in
      visit (Octree.root tree);
      !work)
    bodies

let visit_trace ?(theta = 1.0) tree b f =
  let rec visit ci =
    f ci;
    let com = Octree.com tree ci and half = Octree.half tree ci in
    if Kernels.opened ~theta ~pos:b.Body.pos ~com ~half then
      match Octree.kind tree ci with
      | Octree.Leaf _ -> ()
      | Octree.Internal children ->
        Array.iter (fun ch -> if ch >= 0 then visit ch) children
  in
  visit (Octree.root tree)

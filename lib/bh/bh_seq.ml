type counts = { cell_visits : int; body_cell : int; body_body : int }

let zero_counts = { cell_visits = 0; body_cell = 0; body_body = 0 }

let add_counts a b =
  {
    cell_visits = a.cell_visits + b.cell_visits;
    body_cell = a.body_cell + b.body_cell;
    body_body = a.body_body + b.body_body;
  }

(* The traversal mirrors, interaction for interaction, the distributed
   traversal in [Bh_force]: leaves and internal cells both pass the
   acceptance test; accepted cells contribute through their center of mass,
   opened leaves contribute body-by-body (skipping the subject itself). *)
let force_on_counting ?(theta = 1.0) ?(eps = 0.05) ?(use_quad = false) tree
    (b : Body.t) counts =
  let bodies = Octree.bodies tree in
  let acc = ref Vec3.zero in
  let visits = ref 0 and bc = ref 0 and bb = ref 0 in
  let rec visit ci =
    incr visits;
    let com = Octree.com tree ci and half = Octree.half tree ci in
    if not (Kernels.opened ~theta ~pos:b.Body.pos ~com ~half) then begin
      incr bc;
      let contribution =
        if use_quad then
          Kernels.accel_with_quad ~eps ~pos:b.Body.pos ~src_pos:com
            ~src_mass:(Octree.mass tree ci) ~quad:(Octree.quad tree ci)
        else
          Kernels.accel ~eps ~pos:b.Body.pos ~src_pos:com
            ~src_mass:(Octree.mass tree ci)
      in
      acc := Vec3.add !acc contribution
    end
    else
      match Octree.kind tree ci with
      | Octree.Leaf ids ->
        Array.iter
          (fun bid ->
            if bid <> b.Body.id then begin
              incr bb;
              let s = bodies.(bid) in
              acc :=
                Vec3.add !acc
                  (Kernels.accel ~eps ~pos:b.Body.pos ~src_pos:s.Body.pos
                     ~src_mass:s.Body.mass)
            end)
          ids
      | Octree.Internal children ->
        Array.iter (fun ch -> if ch >= 0 then visit ch) children
  in
  visit (Octree.root tree);
  counts :=
    add_counts !counts
      { cell_visits = !visits; body_cell = !bc; body_body = !bb };
  !acc

let force_on ?theta ?eps ?use_quad tree b =
  let c = ref zero_counts in
  force_on_counting ?theta ?eps ?use_quad tree b c

let compute_forces ?theta ?eps ?use_quad tree =
  let counts = ref zero_counts in
  Array.iter
    (fun b -> b.Body.acc <- force_on_counting ?theta ?eps ?use_quad tree b counts)
    (Octree.bodies tree);
  !counts

let per_body_work ?(theta = 1.0) ?(visit_w = 1) ?(body_cell_w = 10)
    ?(body_body_w = 8) tree =
  let bodies = Octree.bodies tree in
  Array.map
    (fun (b : Body.t) ->
      let work = ref 0 in
      let rec visit ci =
        work := !work + visit_w;
        let com = Octree.com tree ci and half = Octree.half tree ci in
        if not (Kernels.opened ~theta ~pos:b.Body.pos ~com ~half) then
          work := !work + body_cell_w
        else
          match Octree.kind tree ci with
          | Octree.Leaf ids ->
            Array.iter
              (fun bid -> if bid <> b.Body.id then work := !work + body_body_w)
              ids
          | Octree.Internal children ->
            Array.iter (fun ch -> if ch >= 0 then visit ch) children
      in
      visit (Octree.root tree);
      !work)
    bodies

let visit_trace ?(theta = 1.0) tree b f =
  let rec visit ci =
    f ci;
    let com = Octree.com tree ci and half = Octree.half tree ci in
    if Kernels.opened ~theta ~pos:b.Body.pos ~com ~half then
      match Octree.kind tree ci with
      | Octree.Leaf _ -> ()
      | Octree.Internal children ->
        Array.iter (fun ch -> if ch >= 0 then visit ch) children
  in
  visit (Octree.root tree)

(** The Barnes-Hut force-computation phase, written once against the
    {!Dpa.Access.S} interface — the code the paper's compiler would emit:
    each work item is one body's traversal, decomposed into non-blocking
    threads at global-pointer dereferences (child-cell reads). *)

type params = {
  theta : float;  (** opening angle; 1.0 in the paper's timing runs *)
  eps : float;  (** Plummer softening *)
  visit_ns : int;  (** simulated cost of examining a cell *)
  body_cell_ns : int;  (** cost of one far-field interaction *)
  body_body_ns : int;  (** cost of one near-field interaction *)
}

val default_params : params
(** Calibrated so the sequential 16,384-body SPLASH-2 run lands near the
    paper's 97.84 s / 4 steps (see DESIGN.md §6). *)

module Make (A : Dpa.Access.S) : sig
  val items :
    ?work:int array ->
    params:params ->
    tree:Bh_global.t ->
    bodies:Body.t array ->
    accs:float array ->
    int ->
    (A.ctx -> unit) array
  (** [items ... node] is the array of per-body work items owned by [node].
      Item for body [b] traverses the distributed tree from the root and
      accumulates the acceleration into [accs.(3b .. 3b+2)] — a flat
      (x, y, z)-interleaved array, so the inner interaction loop allocates
      nothing (see PERFORMANCE.md); {!Bh_run.force_phase} converts to
      {!Vec3.t} at the phase edge.

      [work] (indexed by body id) additionally records the simulated
      nanoseconds each body's traversal charged — the measured per-body
      weights Morton repartitioning feeds to the next step's
      {!Bh_global.distribute}. The traversal is a pure function of the tree
      geometry, so the recorded weights do not depend on the partition or
      on any injected fault schedule. *)
end

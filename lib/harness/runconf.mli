(** Experiment scales. [small] keeps every experiment at a size that runs
    in seconds (CI, `dune exec bench/main.exe`); [full] is the paper's
    configuration (16,384-body Barnes-Hut over 4 steps, 32,768-particle
    29-term FMM, up to 64 nodes) and takes minutes of host time. *)

type t = {
  name : string;
  bh_bodies : int;
  bh_steps : int;
  fmm_particles : int;
  fmm_p : int;  (** expansion order *)
  procs : int list;
  breakdown_procs : int;  (** node count for the breakdown figures *)
  bh_strip : int;
  fmm_strip : int;  (** the paper uses 300 for FMM's breakdown figure *)
  strip_auto : bool;
      (** replace the static strips with the adaptive controller
          ({!Dpa.Config.dpa_auto}, [--strip auto]); off in both presets *)
  cache_capacity : int;  (** software-caching baseline cache size *)
  repartition : bool;
      (** re-cut Barnes-Hut ownership between steps by each body's measured
          traversal work ({!Dpa_bh.Bh_run.simulate}'s [repartition];
          [--repartition]); off in both presets *)
  route_all : bool;
      (** route every remote accumulate destination through the binomial
          reduction tree ({!Dpa.Config.All_dsts}; [--agg-route]); off in
          both presets *)
}

val small : t
val full : t
val of_name : string -> t
(** "small" or "full". *)

(** The numbers reported in the paper's evaluation (§5), as recoverable from
    the available text. Used by EXPERIMENTS.md and by `dpa_bench` to print
    paper-vs-measured columns. [None] marks entries that are in the paper's
    tables but not legible in the text we have. *)

val bh_seq_s : float
(** Sequential Barnes-Hut, 16,384 particles, 4 steps: 97.84 s. *)

val fmm_seq_s : float
(** Sequential FMM, 32,768 particles, 29 terms, 1 step: 14.46 s. *)

val procs : int list
(** 1, 2, 4, …, 64. *)

val bh_dpa50_s : int -> float option
(** Barnes-Hut execution time of DPA (strip 50) on [p] processors. *)

val bh_caching_s : int -> float option
val fmm_dpa50_s : int -> float option
val fmm_caching_s : int -> float option

val bh_speedup_64 : float
(** "over 42" on 64 nodes. *)

val fmm_speedup_64 : float
(** "54-fold" on 64 nodes. *)

val bh_input : int * int
(** (particles, steps) = (16384, 4). *)

val fmm_input : int * int
(** (particles, terms) = (32768, 29). *)

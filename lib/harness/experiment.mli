(** Runners for every experiment in DESIGN.md §7 (one per table/figure of
    the paper, plus two ablations). Each returns structured data; the
    [print_*] functions render the paper-style artifact. *)

type timing = {
  procs : int;
  dpa_s : float;
  caching_s : float;
  seq_s : float;  (** modelled sequential time: the speedup denominator *)
  paper_dpa_s : float option;
  paper_caching_s : float option;
}

val bh_times : Runconf.t -> timing list
(** T2: Barnes-Hut, DPA(strip) vs software caching across processor counts. *)

val fmm_times : Runconf.t -> timing list
(** T3: FMM. *)

val print_times : title:string -> timing list -> unit

type breakdown_bar = {
  variant : string;
  breakdown : Dpa_sim.Breakdown.t;
  speedup : float;
}

val bh_breakdown : Runconf.t -> breakdown_bar list
(** F1: Blocking / Caching / pipeline / pipeline+agg / full DPA on the
    breakdown node count. *)

val fmm_breakdown : Runconf.t -> breakdown_bar list
(** F2 (the paper's FMM figure uses strip 300). *)

val print_breakdown : title:string -> breakdown_bar list -> unit

type strip_point = {
  strip : int;
  bh_s : float;
  fmm_s : float;
  bh_outstanding : int;
  bh_align_peak : int;
  bh_max_batch : int;
}

val strip_sweep : ?strips:int list -> Runconf.t -> strip_point list
(** F3: strip-size sensitivity on the breakdown node count. *)

val print_strip_sweep : strip_point list -> unit

type speedup_row = {
  procs : int;
  bh_speedup : float;
  fmm_speedup : float;
}

val speedups : bh:timing list -> fmm:timing list -> speedup_row list
(** F4, derived from T2/T3 data. *)

val print_speedups : speedup_row list -> unit

type stats_row = {
  name : string;
  static_sites : int;  (** static thread creation sites *)
  dynamic_threads : int;  (** thread records created at run time *)
  max_outstanding : int;
  align_peak : int;
  max_batch : int;
  request_msgs : int;
}

val thread_stats : Runconf.t -> stats_row list
(** T1: static/dynamic thread statistics for BH, FMM and the compiler
    examples. *)

val print_thread_stats : stats_row list -> unit

type agg_point = { agg : int; time_s : float; msgs : int; max_batch : int }

val agg_sweep : ?aggs:int list -> Runconf.t -> agg_point list
(** A1: aggregation-bound ablation on Barnes-Hut. *)

val print_agg_sweep : agg_point list -> unit

type cache_point = {
  capacity : int;
  time_s : float;
  hits : int;
  misses : int;
  evictions : int;
}

val cache_sweep : ?capacities:int list -> Runconf.t -> cache_point list
(** A2: caching-baseline cache-size ablation on Barnes-Hut. *)

val print_cache_sweep : dpa_time_s:float -> cache_point list -> unit

type dist_point = {
  dist_name : string;
  dist_time_s : float;
  dist_idle_frac : float;
  dist_msgs : int;
}

val distribution_sweep : Runconf.t -> dist_point list
(** A3: FMM under uniform vs clustered particle distributions — the load
    imbalance a Morton block partition suffers on non-uniform inputs. *)

val print_distribution_sweep : dist_point list -> unit

type partition_point = {
  part_name : string;
  part_time_s : float;
  part_idle_frac : float;
}

val partition_sweep : Runconf.t -> partition_point list
(** A4: Barnes-Hut under equal-count blocks vs cost-weighted "costzones"
    partitioning, on the breakdown node count. *)

val print_partition_sweep : partition_point list -> unit

type em3d_point = {
  em3d_variant : string;
  em3d_time_s : float;
  em3d_msgs : int;
  em3d_checksum : float;
}

val em3d_sweep : Runconf.t -> em3d_point list
(** A5: the EM3D irregular-graph kernel under DPA / caching / blocking.
    All three must report the same checksum. *)

val print_em3d_sweep : em3d_point list -> unit

type latency_point = {
  lat_scale : float;  (** multiplier on wire latency and message overheads *)
  lat_dpa_s : float;
  lat_blocking_s : float;
}

val latency_sweep : ?scales:float list -> Runconf.t -> latency_point list
(** A6: machine-latency sensitivity on Barnes-Hut — DPA's advantage over
    blocking must grow with latency (the "robust memory performance"
    claim). *)

val print_latency_sweep : latency_point list -> unit

type upward_point = {
  up_variant : string;
  up_time_s : float;
  up_msgs : int;
  up_combined : int;
}

val upward_sweep : Runconf.t -> upward_point list
(** A7: the parallel FMM upward pass (remote reductions) under DPA,
    pipelining (no combining) and the baselines. Runs on an odd node count
    so Morton blocks split some sibling groups (with power-of-two counts on
    a complete quadtree every parent is co-located and no M2M is remote). *)

val print_upward_sweep : upward_point list -> unit

type afmm_point = {
  af_variant : string;
  af_time_s : float;
  af_msgs : int;
}

val afmm_sweep : Runconf.t -> afmm_point list
(** A8: the *adaptive* FMM (the SPLASH-2 formulation) on a clustered input
    under the runtimes, plus the complete-tree FMM on the same input for
    contrast. *)

val print_afmm_sweep : afmm_point list -> unit

type cache_locality_point = {
  cl_lines : int;
  cl_random_miss : float;  (** miss rate, random body order *)
  cl_tree_miss : float;  (** miss rate, tree (Morton) body order *)
}

val cache_locality : ?lines:int list -> Runconf.t -> cache_locality_point list
(** A9: the single-node cache-locality effect of iteration reordering (§6's
    connection to Philbin et al.): the Barnes-Hut cell-access trace through
    a hardware cache model, with bodies visited in random vs tree order
    (tree order is what strip-mining over the aligned traversals yields). *)

val print_cache_locality : cache_locality_point list -> unit

type hotspot_point = {
  hs_config : string;
  hs_time_s : float;
  hs_msgs : int;
}

val hotspot : Runconf.t -> hotspot_point list
(** A10: a hot-spot workload (every node reads objects owned by node 0)
    with contention-free vs ingress-serialized links, under full DPA and
    pipelining-only. Aggregation's value grows when the hot node's link
    serializes messages. *)

val print_hotspot : hotspot_point list -> unit

type chaos_point = {
  ch_spec : string;
  ch_time_s : float;
  ch_goodput : float;
      (** fraction of sent bytes that were not protocol overhead
          (retransmissions and acks) *)
  ch_retransmits : int;  (** transport-level timeout re-sends *)
  ch_rt_retries : int;  (** runtime-level end-to-end request re-issues *)
  ch_drops : int;  (** messages eaten by the plan (drops + outage drops) *)
  ch_dups_suppressed : int;  (** duplicate copies discarded by dedup *)
  ch_forces_ok : bool;
      (** accelerations bit-identical to the fault-free reference run *)
}

val default_chaos_specs : string list

val chaos_sweep :
  ?specs:string list -> ?fault_seed:int -> Runconf.t -> chaos_point list
(** A11: the BH force phase under a sweep of fault plans (specs in
    {!Dpa_sim.Fault.spec_of_string} syntax, or ["off"]), on the breakdown
    node count. Tables goodput and time-to-completion against fault rate
    and certifies that every faulted run computes bit-identical forces —
    the reliable-delivery protocol's headline correctness claim. *)

val print_chaos_sweep : procs:int -> chaos_point list -> unit

type adaptive_strip_point = {
  as_mode : string;  (** static strip size, or ["auto"] *)
  as_time_s : float;
  as_final_strip : int;  (** strip size in force when the phase ended *)
  as_grows : int;
  as_shrinks : int;
  as_peak_d : int;
  as_max_out : int;
}

val adaptive_strip_sweep :
  ?strips:int list -> Runconf.t -> adaptive_strip_point list
(** A12a: the fault-free BH force phase on the breakdown node count, once
    per static strip size and once under {!Dpa.Config.dpa_auto} — does
    the controller land near the best static setting without being told
    it? *)

val print_adaptive_strip_sweep : procs:int -> adaptive_strip_point list -> unit

type adaptive_rto_point = {
  rp_mode : string;  (** ["constant"] or ["adaptive"] *)
  rp_time_s : float;
  rp_retransmits : int;  (** transport-level timeout re-sends *)
  rp_rt_retries : int;  (** runtime-level end-to-end request re-issues *)
  rp_forces_ok : bool;
      (** accelerations bit-identical to the fault-free reference run *)
}

val adaptive_rto_sweep :
  ?spec:string -> ?fault_seed:int -> Runconf.t -> adaptive_rto_point list
(** A12b: the BH force phase under one fault plan (default ["heavy"]),
    with the end-to-end timeout wheel on its constant worst-case base vs
    the transport's round-trip estimator
    ({!Dpa_sim.Machine.adaptive_rto}). Correctness is unchanged either
    way — the columns show how many spurious re-issues the estimator
    avoids. *)

val print_adaptive_rto_sweep :
  procs:int -> spec:string -> adaptive_rto_point list -> unit

type crash_cell = {
  cc_schedule : string;  (** schedule label (["off"], ["crash"], ...) *)
  cc_time_s : float;
  cc_retransmits : int;  (** transport-level timeout re-sends *)
  cc_fenced : int;  (** stale-incarnation deliveries rejected *)
  cc_crashes : int;  (** crash-restarts executed *)
  cc_refetches : int;  (** orphaned requests re-issued at restarts *)
  cc_ok : bool;
      (** results bit-identical to the fault-free reference run *)
}

type crash_row = {
  cw_workload : string;
  cw_cells : crash_cell list;
}

val crash_matrix : ?fault_seed:int -> Runconf.t -> crash_row list
(** A13: the cross-workload crash matrix — the BH force phase, the FMM
    upward-pass reduction and the compiler-driven EM3D kernel, each under
    a fault-free reference, a drop+dup+delay schedule, a crash-restart
    schedule (one crash per node, derived from the workload's own
    fault-free duration so every crash lands mid-phase), and a combined
    heavy+crash schedule. Certifies that every schedule reproduces the
    reference result bit for bit: reads re-fetch through the alignment
    path after a restart, updates are journaled exactly-once, and the
    reductions are grid-snapped so arrival order cannot perturb them (see
    DESIGN.md §13). *)

val print_crash_matrix : crash_row list -> unit

type integrity_cell = {
  ic_schedule : string;  (** schedule label (["off"], ["corrupt"], ...) *)
  ic_time_s : float;
  ic_retransmits : int;  (** transport-level timeout re-sends *)
  ic_corrupt : int;
      (** checksum-failed copies fenced (counted and dropped) at the NIC *)
  ic_crashes : int;  (** crash-restarts executed *)
  ic_wal_truncated : int;
      (** damaged WAL tail records cut by restart integrity scans *)
  ic_wal_repaired : int;
      (** truncated tails restored from the doublewrite slot *)
  ic_ok : bool;
      (** results bit-identical to the fault-free reference run *)
}

type integrity_row = {
  iw_workload : string;
  iw_cells : integrity_cell list;
}

val integrity_matrix : ?fault_seed:int -> Runconf.t -> integrity_row list
(** A14: the cross-workload end-to-end integrity matrix — the same three
    workloads as {!crash_matrix}, each under a fault-free reference, a
    wire-corruption schedule ([corrupt=0.05]: every copy's CRC-32 frame
    risks a seeded bit-flip, fenced at the NIC and recovered by
    retransmission), a torn-write schedule ([torn-wal=1] on a derived
    crash schedule: every crash damages a durable-log tail, which the
    restart scan truncates and repairs from the doublewrite slot), and
    all of it stacked on the heavy preset. Certifies that every schedule
    reproduces the reference result bit for bit, and that the fault
    classes actually executed (the corrupt / truncated columns are the
    smoke target's witness — see DESIGN.md §13). *)

val print_integrity_matrix : integrity_row list -> unit

type optimality_cell = {
  oc_config : string;
      (** workload configuration (["flat"] / ["routed"], ["static"] /
          ["repartitioned"]) *)
  oc_schedule : string;  (** fault schedule (["off"], ["heavy"], ...) *)
  oc_time_s : float;
  oc_msgs : int;
      (** aggregated messages: update messages for the fan-in workload,
          step-2 request messages for Barnes-Hut *)
  oc_actual : int;  (** measured phase communication volume, bytes *)
  oc_bound : int;
      (** the phase's communication-optimality bound: every remote object
          footprint and update entry once (DESIGN.md §14) *)
  oc_reissues : int;
      (** end-to-end batch re-issues executed by the custody protocol
          (straight-line replays after crash wipes or timeouts); the
          route-crash-smoke gate asserts these are non-zero on routed
          crash cells *)
  oc_ok : bool;
      (** results bit-identical to the flat/static fault-free reference *)
}

type optimality_row = {
  ow_workload : string;
  ow_cells : optimality_cell list;
}

val oc_ratio : optimality_cell -> float
(** [oc_actual / oc_bound]; [nan] when the bound is zero. *)

val optimality_matrix : ?fault_seed:int -> Runconf.t -> optimality_row list
(** A15: the communication-optimality matrix behind the tentpole
    optimizations. A fan-in reduction (every counter owned by node 0) run
    flat and with tree-routed aggregation ({!Dpa.Config.All_dsts}), and a
    two-step Barnes-Hut run statically partitioned vs Morton-repartitioned
    from measured per-body work — each under fault-free, heavy, and
    crash-bearing schedules (the routed fan-in adds dedicated crash and
    heavy+crash cells exercising the origin-custody recovery path). Every
    cell carries the measured volume, the optimality bound, their ratio,
    the custody re-issue count, and a bit-identity check against the
    flat/static fault-free reference: both optimizations must strictly
    lower the measured ratio while changing no result bit, and the
    route-crash-smoke target additionally requires a non-zero re-issue
    total on the routed crash cells (see DESIGN.md §15). *)

val optimality_headline : optimality_row -> (optimality_cell * optimality_cell) option
(** The (baseline, optimized) fault-free cell pair the row's headline
    ratio improvement is read from; [None] if the row lacks either. *)

val print_optimality_matrix : optimality_row list -> unit
(** Prints the per-workload tables plus the machine-checkable
    ["a15 summary:"] line the optimality-smoke target greps. *)

val optimality_json : optimality_row list -> Dpa_obs.Json.t
(** The matrix as JSON (the [BENCH_comm_optimality.json] artifact). *)

type scale_gate_row = {
  sg_nodes : int;
  sg_bodies : int;
  sg_steps : int;
  sg_wall_s : float;
  sg_words : float;  (** allocated words per body-step, flat heap *)
  sg_boxed_words : float;  (** same metric, boxed seed (embedded constant) *)
  sg_majors : int;
}

type scale_row = {
  sc_nodes : int;
  sc_bodies : int;
  sc_wall_s : float;
  sc_words_per_body : float;
  sc_majors : int;
  sc_bytes_moved : int;  (** total bytes injected on the simulated wire *)
}

val scale_gate_threshold : float
(** The committed reduction floor (5x) BENCH_scale.json is gated on. *)

val sg_reduction : scale_gate_row -> float
(** [sg_boxed_words / sg_words]. *)

val scale_gate : Runconf.t -> scale_gate_row list
(** A16 part 1: full [Bh_run.simulate] on the three configurations the
    boxed baseline was measured on, reporting allocated words per
    body-step against the embedded pre-refactor constants
    (docs/PERFORMANCE.md). *)

val scale_sweep : Runconf.t -> scale_row list
(** A16 part 2: one distributed Barnes-Hut force phase per row at
    growing scale — up to a million bodies on 256 nodes at [--scale
    full] — reporting wall time, allocated words per body, major
    collections and bytes moved on the simulated wire. *)

val print_scale_sweep : scale_gate_row list * scale_row list -> unit
(** Prints both tables plus the machine-checkable ["a16 summary:"] line
    the scale-smoke target greps. *)

val scale_json : scale_gate_row list * scale_row list -> Dpa_obs.Json.t
(** The sweep as JSON (the [BENCH_scale.json] artifact). *)

type t = {
  name : string;
  bh_bodies : int;
  bh_steps : int;
  fmm_particles : int;
  fmm_p : int;
  procs : int list;
  breakdown_procs : int;
  bh_strip : int;
  fmm_strip : int;
  strip_auto : bool;
  cache_capacity : int;
  repartition : bool;
  route_all : bool;
}

let small =
  {
    name = "small";
    bh_bodies = 2048;
    bh_steps = 1;
    fmm_particles = 2048;
    fmm_p = 13;
    procs = [ 1; 2; 4; 8; 16 ];
    breakdown_procs = 8;
    bh_strip = 50;
    fmm_strip = 50;
    strip_auto = false;
    cache_capacity = 2048;
    repartition = false;
    route_all = false;
  }

let full =
  {
    name = "full";
    bh_bodies = 16384;
    bh_steps = 4;
    fmm_particles = 32768;
    fmm_p = 29;
    procs = [ 1; 2; 4; 8; 16; 32; 64 ];
    breakdown_procs = 16;
    bh_strip = 50;
    fmm_strip = 300;
    strip_auto = false;
    cache_capacity = 16384;
    repartition = false;
    route_all = false;
  }

let of_name = function
  | "small" -> small
  | "full" -> full
  | s -> invalid_arg ("Runconf.of_name: unknown scale " ^ s)

type bar = {
  label : string;
  local : float;
  comm : float;
  idle : float;
  elapsed_s : float;
  speedup : float option;
}

let of_breakdown ~label ?speedup b =
  {
    label;
    local = Dpa_sim.Breakdown.local_frac b;
    comm = Dpa_sim.Breakdown.comm_frac b;
    idle = Dpa_sim.Breakdown.idle_frac b;
    elapsed_s = Dpa_sim.Breakdown.elapsed_s b;
    speedup;
  }

let render ?(width = 50) bars =
  let buf = Buffer.create 256 in
  let lw =
    List.fold_left (fun acc b -> max acc (String.length b.label)) 0 bars
  in
  (* Bars are scaled by elapsed time relative to the slowest, so bar length
     is comparable across variants, as in the paper's figures. *)
  let tmax =
    List.fold_left (fun acc b -> Float.max acc b.elapsed_s) 1e-30 bars
  in
  List.iter
    (fun b ->
      let scale = b.elapsed_s /. tmax in
      let total = int_of_float (Float.round (float_of_int width *. scale)) in
      let seg f = int_of_float (Float.round (float_of_int total *. f)) in
      let nl = seg b.local in
      let nc = seg b.comm in
      let ni = max 0 (total - nl - nc) in
      Buffer.add_string buf
        (Printf.sprintf "%-*s |%s%s%s%s %.4fs" lw b.label
           (String.make nl '#') (String.make nc '+') (String.make ni '.')
           (String.make (max 0 (width - nl - nc - ni)) ' ')
           b.elapsed_s);
      (match b.speedup with
      | Some s -> Buffer.add_string buf (Printf.sprintf "  (speedup %.1f)" s)
      | None -> ());
      Buffer.add_char buf '\n')
    bars;
  Buffer.add_string buf
    (Printf.sprintf "%-*s  # local   + communication overhead   . idle\n" lw "");
  Buffer.contents buf

let print ?width bars = print_string (render ?width bars)

type t = { header : string list; mutable rows : string list list }

let make ~header = { header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table.add_row: wrong number of columns";
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let buf = Buffer.create 256 in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let emit row =
    List.iteri
      (fun c cell ->
        Buffer.add_string buf (pad cell (List.nth widths c));
        if c < ncols - 1 then Buffer.add_string buf "  ")
      row;
    Buffer.add_char buf '\n'
  in
  emit t.header;
  Buffer.add_string buf
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

let print t = print_string (render t)

let sec s = Printf.sprintf "%.2f" s
let sec_ns ns = sec (float_of_int ns *. 1e-9)
let speedup s = Printf.sprintf "%.1f" s
let opt f = function Some x -> f x | None -> "-"

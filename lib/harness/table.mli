(** Plain-text tables in the style of the paper's time tables. *)

type t

val make : header:string list -> t
val add_row : t -> string list -> unit
val render : t -> string
val print : t -> unit

val sec : float -> string
(** Seconds with paper-style precision ("118.02", "2.63"). *)

val sec_ns : int -> string
val speedup : float -> string
val opt : ('a -> string) -> 'a option -> string
(** "-" for [None]. *)

let bh_seq_s = 97.84
let fmm_seq_s = 14.46
let procs = [ 1; 2; 4; 8; 16; 32; 64 ]

let find tbl p = List.assoc_opt p tbl

(* From the table fragment in §5: "DPA (50) 118.02 61.23 33.05 17.15 8.59
   4.48 2.63 / Caching 115.15 65.77 38.02 20.21 10.46 5.41 2.90". *)
let bh_dpa50 =
  [ (1, 118.02); (2, 61.23); (4, 33.05); (8, 17.15); (16, 8.59); (32, 4.48); (64, 2.63) ]

let bh_caching =
  [ (1, 115.15); (2, 65.77); (4, 38.02); (8, 20.21); (16, 10.46); (32, 5.41); (64, 2.90) ]

(* The FMM row is cut off in the available text after "7.39 3.80 1.91";
   the 64-node entry is implied by the quoted 54-fold speedup over the
   14.46 s sequential time. *)
let fmm_dpa50 = [ (2, 7.39); (4, 3.80); (8, 1.91); (64, 14.46 /. 54.) ]
let fmm_caching = []

let bh_dpa50_s p = find bh_dpa50 p
let bh_caching_s p = find bh_caching p
let fmm_dpa50_s p = find fmm_dpa50 p
let fmm_caching_s p = find fmm_caching p
let bh_speedup_64 = 42.
let fmm_speedup_64 = 54.
let bh_input = (16384, 4)
let fmm_input = (32768, 29)

open Dpa_sim

(* The DPA variant an experiment should run: the scale's static strip, or
   the adaptive controller seeded with it when [--strip auto] set
   [Runconf.strip_auto]. *)
let dpa_variant (conf : Runconf.t) ~strip =
  let route =
    if conf.Runconf.route_all then Dpa.Config.All_dsts else Dpa.Config.Off
  in
  if conf.Runconf.strip_auto then
    Dpa_baselines.Variant.Dpa (Dpa.Config.dpa_auto ~strip_size:strip ~route ())
  else Dpa_baselines.Variant.Dpa (Dpa.Config.dpa ~strip_size:strip ~route ())

(* ------------------------------------------------------------------ T2/T3 *)

type timing = {
  procs : int;
  dpa_s : float;
  caching_s : float;
  seq_s : float;
  paper_dpa_s : float option;
  paper_caching_s : float option;
}

let bh_run (conf : Runconf.t) ~procs variant =
  Dpa_bh.Bh_run.simulate ~repartition:conf.Runconf.repartition ~nnodes:procs
    ~nbodies:conf.Runconf.bh_bodies ~nsteps:conf.Runconf.bh_steps variant

let bh_seq_s (conf : Runconf.t) (r : Dpa_bh.Bh_run.sim_result) =
  float_of_int
    (conf.Runconf.bh_steps
    * Dpa_bh.Bh_run.sequential_ns ~params:Dpa_bh.Bh_force.default_params
        r.Dpa_bh.Bh_run.seq_counts)
  *. 1e-9

let bh_times (conf : Runconf.t) =
  List.map
    (fun procs ->
      let dpa =
        bh_run conf ~procs
          (dpa_variant conf ~strip:conf.Runconf.bh_strip)
      in
      let caching =
        bh_run conf ~procs
          (Dpa_baselines.Variant.Caching
             { capacity = conf.Runconf.cache_capacity })
      in
      {
        procs;
        dpa_s = Breakdown.elapsed_s dpa.Dpa_bh.Bh_run.total;
        caching_s = Breakdown.elapsed_s caching.Dpa_bh.Bh_run.total;
        seq_s = bh_seq_s conf dpa;
        paper_dpa_s =
          (if conf.Runconf.name = "full" then Paper.bh_dpa50_s procs else None);
        paper_caching_s =
          (if conf.Runconf.name = "full" then Paper.bh_caching_s procs else None);
      })
    conf.Runconf.procs

let fmm_params (conf : Runconf.t) =
  { Dpa_fmm.Fmm_force.default_params with Dpa_fmm.Fmm_force.p = conf.Runconf.fmm_p }

let fmm_run (conf : Runconf.t) ~procs variant =
  Dpa_fmm.Fmm_run.run ~params:(fmm_params conf) ~nnodes:procs
    ~nparticles:conf.Runconf.fmm_particles variant

let fmm_seq_s (conf : Runconf.t) (r : Dpa_fmm.Fmm_run.run_result) =
  float_of_int
    (Dpa_fmm.Fmm_run.sequential_ns ~params:(fmm_params conf)
       r.Dpa_fmm.Fmm_run.seq_counts)
  *. 1e-9

let fmm_times (conf : Runconf.t) =
  List.map
    (fun procs ->
      let dpa =
        fmm_run conf ~procs
          (dpa_variant conf ~strip:conf.Runconf.bh_strip)
      in
      let caching =
        fmm_run conf ~procs
          (Dpa_baselines.Variant.Caching
             { capacity = conf.Runconf.cache_capacity })
      in
      {
        procs;
        dpa_s =
          Breakdown.elapsed_s dpa.Dpa_fmm.Fmm_run.phase.Dpa_fmm.Fmm_run.breakdown;
        caching_s =
          Breakdown.elapsed_s
            caching.Dpa_fmm.Fmm_run.phase.Dpa_fmm.Fmm_run.breakdown;
        seq_s = fmm_seq_s conf dpa;
        paper_dpa_s =
          (if conf.Runconf.name = "full" then Paper.fmm_dpa50_s procs else None);
        paper_caching_s =
          (if conf.Runconf.name = "full" then Paper.fmm_caching_s procs
           else None);
      })
    conf.Runconf.procs

let print_times ~title rows =
  Printf.printf "%s\n" title;
  let t =
    Table.make
      ~header:
        [
          "PROCS"; "DPA(s)"; "Caching(s)"; "DPA speedup"; "Caching speedup";
          "paper DPA"; "paper Caching";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int r.procs;
          Table.sec r.dpa_s;
          Table.sec r.caching_s;
          Table.speedup (r.seq_s /. r.dpa_s);
          Table.speedup (r.seq_s /. r.caching_s);
          Table.opt Table.sec r.paper_dpa_s;
          Table.opt Table.sec r.paper_caching_s;
        ])
    rows;
  Table.print t;
  print_newline ()

(* ------------------------------------------------------------------ F1/F2 *)

type breakdown_bar = {
  variant : string;
  breakdown : Breakdown.t;
  speedup : float;
}

let breakdown_variants (conf : Runconf.t) ~strip =
  let dpa_label =
    if conf.Runconf.strip_auto then "DPA(auto)"
    else Printf.sprintf "DPA(%d)" strip
  in
  [
    ("Blocking (base)", Dpa_baselines.Variant.Blocking);
    ("Caching", Dpa_baselines.Variant.Caching { capacity = 0 } (* set below *));
    ( "Pipeline",
      Dpa_baselines.Variant.Dpa (Dpa.Config.pipeline_only ~strip_size:strip ()) );
    ( "Pipeline+agg",
      Dpa_baselines.Variant.Dpa
        (Dpa.Config.pipeline_aggregate ~strip_size:strip ()) );
    (dpa_label, dpa_variant conf ~strip);
  ]

let patch_cache conf variant =
  match variant with
  | Dpa_baselines.Variant.Caching _ ->
    Dpa_baselines.Variant.Caching { capacity = conf.Runconf.cache_capacity }
  | v -> v

let bh_breakdown (conf : Runconf.t) =
  let procs = conf.Runconf.breakdown_procs in
  List.map
    (fun (name, variant) ->
      let r = bh_run conf ~procs (patch_cache conf variant) in
      {
        variant = name;
        breakdown = r.Dpa_bh.Bh_run.total;
        speedup = bh_seq_s conf r /. Breakdown.elapsed_s r.Dpa_bh.Bh_run.total;
      })
    (breakdown_variants conf ~strip:conf.Runconf.bh_strip)

let fmm_breakdown (conf : Runconf.t) =
  let procs = conf.Runconf.breakdown_procs in
  List.map
    (fun (name, variant) ->
      let r = fmm_run conf ~procs (patch_cache conf variant) in
      let b = r.Dpa_fmm.Fmm_run.phase.Dpa_fmm.Fmm_run.breakdown in
      {
        variant = name;
        breakdown = b;
        speedup = fmm_seq_s conf r /. Breakdown.elapsed_s b;
      })
    (breakdown_variants conf ~strip:conf.Runconf.fmm_strip)

let print_breakdown ~title bars =
  Printf.printf "%s\n" title;
  Barchart.print
    (List.map
       (fun b ->
         Barchart.of_breakdown ~label:b.variant ~speedup:b.speedup b.breakdown)
       bars);
  print_newline ()

(* --------------------------------------------------------------------- F3 *)

type strip_point = {
  strip : int;
  bh_s : float;
  fmm_s : float;
  bh_outstanding : int;
  bh_align_peak : int;
  bh_max_batch : int;
}

let default_strips = [ 10; 25; 50; 100; 200; 300; 500; 1000 ]

let strip_sweep ?(strips = default_strips) (conf : Runconf.t) =
  let procs = conf.Runconf.breakdown_procs in
  List.map
    (fun strip ->
      let bh =
        bh_run conf ~procs (Dpa_baselines.Variant.dpa ~strip_size:strip ())
      in
      let fmm =
        fmm_run conf ~procs (Dpa_baselines.Variant.dpa ~strip_size:strip ())
      in
      let stats = Option.get bh.Dpa_bh.Bh_run.last.Dpa_bh.Bh_run.dpa_stats in
      {
        strip;
        bh_s = Breakdown.elapsed_s bh.Dpa_bh.Bh_run.total;
        fmm_s =
          Breakdown.elapsed_s
            fmm.Dpa_fmm.Fmm_run.phase.Dpa_fmm.Fmm_run.breakdown;
        bh_outstanding = stats.Dpa.Dpa_stats.max_outstanding;
        bh_align_peak = stats.Dpa.Dpa_stats.align_peak;
        bh_max_batch = stats.Dpa.Dpa_stats.max_batch;
      })
    strips

let print_strip_sweep points =
  print_endline "F3: strip-size sensitivity (DPA, breakdown node count)";
  let t =
    Table.make
      ~header:
        [
          "STRIP"; "BH(s)"; "FMM(s)"; "BH max outstanding"; "BH peak D";
          "BH max batch";
        ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          string_of_int p.strip;
          Table.sec p.bh_s;
          Table.sec p.fmm_s;
          string_of_int p.bh_outstanding;
          string_of_int p.bh_align_peak;
          string_of_int p.bh_max_batch;
        ])
    points;
  Table.print t;
  print_newline ()

(* --------------------------------------------------------------------- F4 *)

type speedup_row = { procs : int; bh_speedup : float; fmm_speedup : float }

let speedups ~bh ~fmm =
  List.map
    (fun (b : timing) ->
      let f = List.find (fun (f : timing) -> f.procs = b.procs) fmm in
      {
        procs = b.procs;
        bh_speedup = b.seq_s /. b.dpa_s;
        fmm_speedup = f.seq_s /. f.dpa_s;
      })
    bh

let print_speedups rows =
  print_endline "F4: DPA speedups over modelled sequential time";
  let t = Table.make ~header:[ "PROCS"; "BH speedup"; "FMM speedup" ] in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int r.procs;
          Table.speedup r.bh_speedup;
          Table.speedup r.fmm_speedup;
        ])
    rows;
  Table.print t;
  print_newline ()

(* --------------------------------------------------------------------- T1 *)

type stats_row = {
  name : string;
  static_sites : int;
  dynamic_threads : int;
  max_outstanding : int;
  align_peak : int;
  max_batch : int;
  request_msgs : int;
}

(* Static thread-creation sites in the hand-partitioned phases: the root
   read and the child-cell read for Barnes-Hut; the V-list multipole read
   and the U-list particle read for FMM. These constants mirror what
   Partition.analyze reports for the equivalent IR programs. *)
let bh_static_sites = 2
let fmm_static_sites = 2

let of_dpa_stats ~name ~static_sites (s : Dpa.Dpa_stats.t) =
  {
    name;
    static_sites;
    dynamic_threads = s.Dpa.Dpa_stats.spawns + s.Dpa.Dpa_stats.merge_hits;
    max_outstanding = s.Dpa.Dpa_stats.max_outstanding;
    align_peak = s.Dpa.Dpa_stats.align_peak;
    max_batch = s.Dpa.Dpa_stats.max_batch;
    request_msgs = s.Dpa.Dpa_stats.request_msgs;
  }

let thread_stats (conf : Runconf.t) =
  let procs = conf.Runconf.breakdown_procs in
  let bh =
    bh_run conf ~procs (dpa_variant conf ~strip:conf.Runconf.bh_strip)
  in
  let fmm =
    fmm_run conf ~procs
      (dpa_variant conf ~strip:conf.Runconf.fmm_strip)
  in
  let compiler_rows =
    List.map
      (fun (name, program, entry) ->
        let info =
          Dpa_compiler.Partition.analyze program
            (Dpa_compiler.Ast.func program entry)
        in
        {
          name;
          static_sites = List.length info.Dpa_compiler.Partition.spawn_sites;
          dynamic_threads = 0;
          max_outstanding = 0;
          align_peak = 0;
          max_batch = 0;
          request_msgs = 0;
        })
      [
        ("list_sum (IR)", Dpa_compiler.Programs.list_sum, "sum_list");
        ("tree_sum (IR)", Dpa_compiler.Programs.tree_sum, "sum_tree");
        ("pair_sum (IR)", Dpa_compiler.Programs.pair_sum, "sum_pair");
      ]
  in
  of_dpa_stats ~name:"Barnes-Hut" ~static_sites:bh_static_sites
    (Option.get bh.Dpa_bh.Bh_run.last.Dpa_bh.Bh_run.dpa_stats)
  :: of_dpa_stats ~name:"FMM" ~static_sites:fmm_static_sites
       (Option.get fmm.Dpa_fmm.Fmm_run.phase.Dpa_fmm.Fmm_run.dpa_stats)
  :: compiler_rows

let print_thread_stats rows =
  print_endline "T1: static and dynamic thread statistics (DPA)";
  let t =
    Table.make
      ~header:
        [
          "PROGRAM"; "STATIC SITES"; "DYN THREADS"; "MAX OUTSTANDING";
          "PEAK D"; "MAX BATCH"; "REQ MSGS";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.name;
          string_of_int r.static_sites;
          string_of_int r.dynamic_threads;
          string_of_int r.max_outstanding;
          string_of_int r.align_peak;
          string_of_int r.max_batch;
          string_of_int r.request_msgs;
        ])
    rows;
  Table.print t;
  print_newline ()

(* --------------------------------------------------------------------- A1 *)

type agg_point = { agg : int; time_s : float; msgs : int; max_batch : int }

let agg_sweep ?(aggs = [ 1; 4; 16; 64; 256 ]) (conf : Runconf.t) =
  let procs = conf.Runconf.breakdown_procs in
  List.map
    (fun agg ->
      let r =
        bh_run conf ~procs
          (Dpa_baselines.Variant.Dpa
             (Dpa.Config.dpa ~strip_size:conf.Runconf.bh_strip ~agg_max:agg ()))
      in
      let stats = Option.get r.Dpa_bh.Bh_run.last.Dpa_bh.Bh_run.dpa_stats in
      {
        agg;
        time_s = Breakdown.elapsed_s r.Dpa_bh.Bh_run.total;
        msgs = r.Dpa_bh.Bh_run.total.Breakdown.msgs;
        max_batch = stats.Dpa.Dpa_stats.max_batch;
      })
    aggs

let print_agg_sweep points =
  print_endline "A1: aggregation-bound ablation (Barnes-Hut, DPA)";
  let t = Table.make ~header:[ "AGG MAX"; "TIME(s)"; "MESSAGES"; "MAX BATCH" ] in
  List.iter
    (fun p ->
      Table.add_row t
        [
          string_of_int p.agg;
          Table.sec p.time_s;
          string_of_int p.msgs;
          string_of_int p.max_batch;
        ])
    points;
  Table.print t;
  print_newline ()

(* --------------------------------------------------------------------- A2 *)

type cache_point = {
  capacity : int;
  time_s : float;
  hits : int;
  misses : int;
  evictions : int;
}

let cache_sweep ?(capacities = [ 64; 256; 1024; 4096; 16384 ]) (conf : Runconf.t) =
  let procs = conf.Runconf.breakdown_procs in
  List.map
    (fun capacity ->
      let r = bh_run conf ~procs (Dpa_baselines.Variant.Caching { capacity }) in
      let stats = Option.get r.Dpa_bh.Bh_run.last.Dpa_bh.Bh_run.cache_stats in
      {
        capacity;
        time_s = Breakdown.elapsed_s r.Dpa_bh.Bh_run.total;
        hits = stats.Dpa_baselines.Caching.hits;
        misses = stats.Dpa_baselines.Caching.misses;
        evictions = stats.Dpa_baselines.Caching.evictions;
      })
    capacities

let print_cache_sweep ~dpa_time_s points =
  print_endline "A2: software-caching cache-size ablation (Barnes-Hut)";
  let t =
    Table.make ~header:[ "CAPACITY"; "TIME(s)"; "HITS"; "MISSES"; "EVICTIONS" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          string_of_int p.capacity;
          Table.sec p.time_s;
          string_of_int p.hits;
          string_of_int p.misses;
          string_of_int p.evictions;
        ])
    points;
  Table.print t;
  Printf.printf "(DPA reference time: %s s)\n\n" (Table.sec dpa_time_s)

(* --------------------------------------------------------------------- A3 *)

type dist_point = {
  dist_name : string;
  dist_time_s : float;
  dist_idle_frac : float;
  dist_msgs : int;
}

let distribution_sweep (conf : Runconf.t) =
  let procs = conf.Runconf.breakdown_procs in
  List.map
    (fun (dist_name, distribution) ->
      let r =
        Dpa_fmm.Fmm_run.run ~params:(fmm_params conf) ~nnodes:procs
          ~nparticles:conf.Runconf.fmm_particles ~distribution
          (dpa_variant conf ~strip:conf.Runconf.fmm_strip)
      in
      let b = r.Dpa_fmm.Fmm_run.phase.Dpa_fmm.Fmm_run.breakdown in
      {
        dist_name;
        dist_time_s = Breakdown.elapsed_s b;
        dist_idle_frac = Breakdown.idle_frac b;
        dist_msgs = b.Breakdown.msgs;
      })
    [ ("uniform", `Uniform); ("clustered(8)", `Clustered 8) ]

let print_distribution_sweep points =
  print_endline "A3: FMM input-distribution ablation (DPA)";
  let t = Table.make ~header:[ "DISTRIBUTION"; "TIME(s)"; "IDLE %"; "MESSAGES" ] in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.dist_name;
          Table.sec p.dist_time_s;
          Printf.sprintf "%.0f" (100. *. p.dist_idle_frac);
          string_of_int p.dist_msgs;
        ])
    points;
  Table.print t;
  print_newline ()

(* --------------------------------------------------------------------- A4 *)

type partition_point = {
  part_name : string;
  part_time_s : float;
  part_idle_frac : float;
}

let partition_sweep (conf : Runconf.t) =
  let procs = conf.Runconf.breakdown_procs in
  List.map
    (fun (part_name, partition) ->
      let r =
        Dpa_bh.Bh_run.simulate ~nnodes:procs ~nbodies:conf.Runconf.bh_bodies
          ~nsteps:conf.Runconf.bh_steps ~partition
          (dpa_variant conf ~strip:conf.Runconf.bh_strip)
      in
      {
        part_name;
        part_time_s = Breakdown.elapsed_s r.Dpa_bh.Bh_run.total;
        part_idle_frac = Breakdown.idle_frac r.Dpa_bh.Bh_run.total;
      })
    [ ("equal-count blocks", `Block); ("costzones", `Costzones) ]

let print_partition_sweep points =
  print_endline "A4: Barnes-Hut partitioning ablation (DPA)";
  let t = Table.make ~header:[ "PARTITION"; "TIME(s)"; "IDLE %" ] in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.part_name;
          Table.sec p.part_time_s;
          Printf.sprintf "%.0f" (100. *. p.part_idle_frac);
        ])
    points;
  Table.print t;
  print_newline ()

(* --------------------------------------------------------------------- A5 *)

type em3d_point = {
  em3d_variant : string;
  em3d_time_s : float;
  em3d_msgs : int;
  em3d_checksum : float;
}

let em3d_sweep (conf : Runconf.t) =
  let procs = conf.Runconf.breakdown_procs in
  let per_node = max 8 (conf.Runconf.bh_bodies / procs / 4) in
  let run name f =
    (* The original EM3D defaults: degree 20, 10-40% remote dependencies. *)
    let g =
      Dpa_compiler.Em3d.build ~nnodes:procs ~e_per_node:per_node
        ~h_per_node:per_node ~degree:20 ~remote_frac:0.25 ~seed:29
    in
    let sum = ref 0. in
    let b = f g (fun v -> sum := !sum +. v) in
    {
      em3d_variant = name;
      em3d_time_s = Breakdown.elapsed_s b;
      em3d_msgs = b.Breakdown.msgs;
      em3d_checksum = !sum;
    }
  in
  [
    run "DPA(50)" (fun g accum ->
        let engine = Engine.create (Machine.t3d ~nodes:procs) in
        fst
          (Dpa.Runtime.run_phase_labeled ~label:"em3d" ~engine
             ~heaps:g.Dpa_compiler.Em3d.heaps
             ~config:(Dpa.Config.dpa ~strip_size:conf.Runconf.bh_strip ())
             ~items:(Dpa_compiler.Em3d.items (module Dpa.Runtime) g ~accum)));
    run "Caching" (fun g accum ->
        let engine = Engine.create (Machine.t3d ~nodes:procs) in
        fst
          (Dpa_baselines.Caching.run_phase ~engine
             ~heaps:g.Dpa_compiler.Em3d.heaps
             ~capacity:conf.Runconf.cache_capacity
             ~items:
               (Dpa_compiler.Em3d.items (module Dpa_baselines.Caching) g ~accum)
             ()));
    run "Blocking" (fun g accum ->
        let engine = Engine.create (Machine.t3d ~nodes:procs) in
        fst
          (Dpa_baselines.Blocking.run_phase ~engine
             ~heaps:g.Dpa_compiler.Em3d.heaps
             ~items:
               (Dpa_compiler.Em3d.items
                  (module Dpa_baselines.Blocking)
                  g ~accum)));
  ]

let print_em3d_sweep points =
  print_endline "A5: EM3D irregular-graph kernel (degree 20, 25% remote)";
  let t = Table.make ~header:[ "RUNTIME"; "TIME(s)"; "MESSAGES"; "CHECKSUM" ] in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.em3d_variant;
          Table.sec p.em3d_time_s;
          string_of_int p.em3d_msgs;
          Printf.sprintf "%.6f" p.em3d_checksum;
        ])
    points;
  Table.print t;
  print_newline ()

(* --------------------------------------------------------------------- A6 *)

type latency_point = {
  lat_scale : float;
  lat_dpa_s : float;
  lat_blocking_s : float;
}

let latency_sweep ?(scales = [ 0.5; 1.; 2.; 4.; 8. ]) (conf : Runconf.t) =
  let procs = conf.Runconf.breakdown_procs in
  List.map
    (fun scale ->
      let base = Machine.t3d ~nodes:procs in
      let machine =
        Machine.make ~nodes:procs
          ~send_overhead_ns:
            (int_of_float (float_of_int base.Machine.send_overhead_ns *. scale))
          ~recv_overhead_ns:
            (int_of_float (float_of_int base.Machine.recv_overhead_ns *. scale))
          ~wire_latency_ns:
            (int_of_float (float_of_int base.Machine.wire_latency_ns *. scale))
          ()
      in
      let time variant =
        let r =
          Dpa_bh.Bh_run.simulate ~machine ~nnodes:procs
            ~nbodies:conf.Runconf.bh_bodies ~nsteps:1 variant
        in
        Breakdown.elapsed_s r.Dpa_bh.Bh_run.total
      in
      {
        lat_scale = scale;
        lat_dpa_s =
          time (dpa_variant conf ~strip:conf.Runconf.bh_strip);
        lat_blocking_s = time Dpa_baselines.Variant.Blocking;
      })
    scales

let print_latency_sweep points =
  print_endline "A6: network-latency sensitivity (Barnes-Hut, 1 step)";
  let t =
    Table.make ~header:[ "LATENCY x"; "DPA(s)"; "Blocking(s)"; "Blocking/DPA" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          Printf.sprintf "%.1f" p.lat_scale;
          Table.sec p.lat_dpa_s;
          Table.sec p.lat_blocking_s;
          Printf.sprintf "%.1f" (p.lat_blocking_s /. p.lat_dpa_s);
        ])
    points;
  Table.print t;
  print_newline ()

(* --------------------------------------------------------------------- A7 *)

type upward_point = {
  up_variant : string;
  up_time_s : float;
  up_msgs : int;
  up_combined : int;
}

let upward_sweep (conf : Runconf.t) =
  (* An odd node count: power-of-two Morton blocks never split sibling
     groups on a complete quadtree, which would make every M2M local. *)
  let procs = max 3 (conf.Runconf.breakdown_procs - 1) in
  let params = fmm_params conf in
  let parts =
    Dpa_fmm.Particle2d.uniform ~n:conf.Runconf.fmm_particles ~seed:23
  in
  let tree = Dpa_fmm.Quadtree.build parts in
  List.map
    (fun (name, variant) ->
      let global =
        Dpa_fmm.Fmm_global.distribute_empty ~p:params.Dpa_fmm.Fmm_force.p tree
          ~nnodes:procs
      in
      let engine = Engine.create (Machine.t3d ~nodes:procs) in
      let r = Dpa_fmm.Fmm_upward.run ~engine ~global ~params variant in
      {
        up_variant = name;
        up_time_s = Breakdown.elapsed_s r.Dpa_fmm.Fmm_upward.breakdown;
        up_msgs = r.Dpa_fmm.Fmm_upward.breakdown.Breakdown.msgs;
        up_combined =
          (match r.Dpa_fmm.Fmm_upward.dpa_stats with
          | Some s -> s.Dpa.Dpa_stats.updates_combined
          | None -> 0);
      })
    [
      ("DPA (combining)", dpa_variant conf ~strip:conf.Runconf.fmm_strip);
      ( "Pipeline (no combine)",
        Dpa_baselines.Variant.Prefetch { strip_size = conf.Runconf.fmm_strip } );
      ("Caching (put/update)", Dpa_baselines.Variant.Caching { capacity = conf.Runconf.cache_capacity });
      ("Blocking", Dpa_baselines.Variant.Blocking);
    ]

let print_upward_sweep points =
  print_endline
    "A7: parallel FMM upward pass via remote reductions (P2M + per-level M2M)";
  let t =
    Table.make ~header:[ "RUNTIME"; "TIME(s)"; "MESSAGES"; "UPDATES COMBINED" ]
  in
  List.iter
    (fun pnt ->
      Table.add_row t
        [
          pnt.up_variant;
          Table.sec pnt.up_time_s;
          string_of_int pnt.up_msgs;
          string_of_int pnt.up_combined;
        ])
    points;
  Table.print t;
  print_newline ()

(* --------------------------------------------------------------------- A8 *)

type afmm_point = {
  af_variant : string;
  af_time_s : float;
  af_msgs : int;
}

let afmm_sweep (conf : Runconf.t) =
  let procs = conf.Runconf.breakdown_procs in
  let params = fmm_params conf in
  let n = conf.Runconf.fmm_particles in
  let adaptive variant name =
    let b, _, _ =
      Dpa_fmm.Afmm_force.run ~params ~nnodes:procs ~nparticles:n
        ~distribution:(`Clustered 8) ~seed:23 variant
    in
    { af_variant = name; af_time_s = Breakdown.elapsed_s b; af_msgs = b.Breakdown.msgs }
  in
  let uniform =
    let r =
      Dpa_fmm.Fmm_run.run ~params ~nnodes:procs ~nparticles:n
        ~distribution:(`Clustered 8) ~seed:23
        (dpa_variant conf ~strip:conf.Runconf.fmm_strip)
    in
    let b = r.Dpa_fmm.Fmm_run.phase.Dpa_fmm.Fmm_run.breakdown in
    {
      af_variant = "complete tree + DPA";
      af_time_s = Breakdown.elapsed_s b;
      af_msgs = b.Breakdown.msgs;
    }
  in
  [
    adaptive
      (dpa_variant conf ~strip:conf.Runconf.fmm_strip)
      "adaptive + DPA";
    adaptive
      (Dpa_baselines.Variant.Caching { capacity = conf.Runconf.cache_capacity })
      "adaptive + Caching";
    adaptive Dpa_baselines.Variant.Blocking "adaptive + Blocking";
    uniform;
  ]

let print_afmm_sweep points =
  print_endline "A8: adaptive FMM on a clustered input (8 Gaussian clusters)";
  let t = Table.make ~header:[ "CONFIGURATION"; "TIME(s)"; "MESSAGES" ] in
  List.iter
    (fun p ->
      Table.add_row t
        [ p.af_variant; Table.sec p.af_time_s; string_of_int p.af_msgs ])
    points;
  Table.print t;
  print_newline ()

(* --------------------------------------------------------------------- A9 *)

type cache_locality_point = {
  cl_lines : int;
  cl_random_miss : float;
  cl_tree_miss : float;
}

let cache_locality ?(lines = [ 128; 512; 2048 ]) (conf : Runconf.t) =
  let bodies = Dpa_bh.Plummer.generate ~n:conf.Runconf.bh_bodies ~seed:17 in
  let tree = Dpa_bh.Octree.build bodies in
  let tree_order = Dpa_bh.Octree.dfs_body_order tree in
  let random_order =
    (* Deterministic shuffle. *)
    let rng = Dpa_util.Rng.create ~seed:99 in
    let a = Array.copy tree_order in
    for i = Array.length a - 1 downto 1 do
      let j = Dpa_util.Rng.int rng (i + 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    a
  in
  List.map
    (fun nlines ->
      let miss order =
        let c = Dcache.create ~lines:nlines () in
        Array.iter
          (fun bid ->
            Dpa_bh.Bh_seq.visit_trace tree bodies.(bid) (fun ci ->
                ignore (Dcache.access c ci)))
          order;
        Dcache.miss_rate c
      in
      {
        cl_lines = nlines;
        cl_random_miss = miss random_order;
        cl_tree_miss = miss tree_order;
      })
    lines

let print_cache_locality points =
  print_endline
    "A9: single-node cache locality of iteration order (BH cell accesses)";
  let t =
    Table.make
      ~header:[ "CACHE LINES"; "RANDOM ORDER MISS%"; "TREE ORDER MISS%" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          string_of_int p.cl_lines;
          Printf.sprintf "%.2f" (100. *. p.cl_random_miss);
          Printf.sprintf "%.2f" (100. *. p.cl_tree_miss);
        ])
    points;
  Table.print t;
  print_newline ()

(* -------------------------------------------------------------------- A10 *)

type hotspot_point = {
  hs_config : string;
  hs_time_s : float;
  hs_msgs : int;
}

let hotspot (conf : Runconf.t) =
  let procs = conf.Runconf.breakdown_procs in
  let nobjs = 256 and items = 64 and reads = 8 in
  let run ~ingress ~config name =
    let machine = Machine.make ~ingress_serialized:ingress ~nodes:procs () in
    let engine = Engine.create machine in
    let heaps = Dpa_heap.Heap.cluster ~nnodes:procs in
    let ptrs =
      Array.init nobjs (fun _ ->
          Dpa_heap.Heap.alloc heaps.(0) ~floats:(Array.make 128 1.) ~ptrs:[||])
    in
    let items_of node =
      if node = 0 then [||]
      else
        Array.init items (fun item ->
            fun ctx ->
              for r = 0 to reads - 1 do
                let h = (node * 7919) + (item * 104729) + (r * 1299721) in
                Dpa.Runtime.read ctx ptrs.(h mod nobjs) (fun ctx _ ->
                    Dpa.Runtime.charge ctx 2_000)
              done)
    in
    let b, _ =
      Dpa.Runtime.run_phase_labeled ~label:"hotspot" ~engine ~heaps ~config
        ~items:items_of
    in
    {
      hs_config = name;
      hs_time_s = Breakdown.elapsed_s b;
      hs_msgs = b.Breakdown.msgs;
    }
  in
  [
    run ~ingress:false ~config:(Dpa.Config.dpa ()) "DPA, contention-free";
    run ~ingress:true ~config:(Dpa.Config.dpa ()) "DPA, serialized ingress";
    run ~ingress:false
      ~config:(Dpa.Config.pipeline_only ())
      "Pipeline, contention-free";
    run ~ingress:true
      ~config:(Dpa.Config.pipeline_only ())
      "Pipeline, serialized ingress";
  ]

let print_hotspot points =
  print_endline
    "A10: hot spot (all nodes read node 0) with/without link serialization";
  let t = Table.make ~header:[ "CONFIGURATION"; "TIME(s)"; "MESSAGES" ] in
  List.iter
    (fun p ->
      Table.add_row t
        [ p.hs_config; Table.sec p.hs_time_s; string_of_int p.hs_msgs ])
    points;
  Table.print t;
  print_newline ()

(* -------------------------------------------------------------------- A11 *)

type chaos_point = {
  ch_spec : string;
  ch_time_s : float;
  ch_goodput : float;
  ch_retransmits : int;
  ch_rt_retries : int;
  ch_drops : int;
  ch_dups_suppressed : int;
  ch_forces_ok : bool;
}

let default_chaos_specs =
  [ "off"; "drop=0.01"; "drop=0.05"; "drop=0.10"; "heavy" ]

(* Drive one BH force phase by hand (as the timeline command does) so the
   engine — and with it the transport counters and the fault plan — stays
   in reach after the phase completes. The headline check rides in the last
   column: every faulted run must produce bit-identical accelerations to
   the fault-free reference. *)
let chaos_sweep ?(specs = default_chaos_specs) ?(fault_seed = 0x5EED)
    (conf : Runconf.t) =
  let procs = conf.Runconf.breakdown_procs in
  let params = Dpa_bh.Bh_force.default_params in
  let run faults =
    let bodies = Dpa_bh.Plummer.generate ~n:conf.Runconf.bh_bodies ~seed:17 in
    let octree = Dpa_bh.Octree.build bodies in
    let tree = Dpa_bh.Bh_global.distribute octree ~nnodes:procs in
    let machine = Machine.make ~nodes:procs ?faults ~fault_seed () in
    let saved = Dpa_obs.Sink.global () in
    (* If the enclosing run streams events ([--events]), make everything
       emitted so far durable before handing control to a fault-injected
       engine: a crash mid-sweep must not lose already-captured lines.
       The sweep's own events go to a private sink and are never
       streamed. *)
    (match saved with
    | Some s -> Dpa_obs.Sink.flush_writer s
    | None -> ());
    let sink = Dpa_obs.Sink.create () in
    Dpa_obs.Sink.set_global (Some sink);
    let engine = Engine.create machine in
    Dpa_obs.Sink.set_global saved;
    (* The sweep owns its fault plans: a process-global [--faults] default
       must not leak into the reference (or the "off" row) via
       [Engine.create]'s fallback. *)
    if faults = None then Engine.set_fault engine None;
    let r =
      Dpa_bh.Bh_run.force_phase ~engine ~tree ~bodies ~params
        (dpa_variant conf ~strip:conf.Runconf.bh_strip)
    in
    (r, engine, sink)
  in
  let reference, _, _ = run None in
  List.map
    (fun spec_str ->
      let faults =
        if spec_str = "off" then None
        else
          match Fault.spec_of_string spec_str with
          | Ok s -> Some s
          | Error msg -> invalid_arg ("chaos_sweep: " ^ msg)
      in
      let r, engine, sink = run faults in
      let m = Engine.machine engine in
      let bytes_sent =
        Array.fold_left
          (fun acc (n : Node.t) -> acc + n.Node.bytes_sent)
          0 (Engine.nodes engine)
      in
      let retransmit_bytes, retransmits, acks, dups =
        match Dpa_msg.Am.stats engine with
        | None -> (0, 0, 0, 0)
        | Some s ->
          ( s.Dpa_msg.Am.retransmit_bytes,
            s.Dpa_msg.Am.retransmits,
            s.Dpa_msg.Am.acks,
            s.Dpa_msg.Am.dups_suppressed )
      in
      let reg = Dpa_obs.Sink.metrics sink in
      let counter name =
        Dpa_obs.Metrics.counter_value (Dpa_obs.Metrics.counter reg name)
      in
      let overhead =
        retransmit_bytes + (acks * m.Machine.msg_header_bytes)
      in
      {
        ch_spec = spec_str;
        ch_time_s = Breakdown.elapsed_s r.Dpa_bh.Bh_run.breakdown;
        ch_goodput =
          (if bytes_sent = 0 then 1.
           else float_of_int (bytes_sent - overhead) /. float_of_int bytes_sent);
        ch_retransmits = retransmits;
        ch_rt_retries = counter "retries.bh-force";
        ch_drops = counter "fault.drops" + counter "fault.outage_drops";
        ch_dups_suppressed = dups;
        ch_forces_ok = r.Dpa_bh.Bh_run.accs = reference.Dpa_bh.Bh_run.accs;
      })
    specs

let print_chaos_sweep ~procs points =
  Printf.printf
    "A11: chaos sweep — BH force phase under injected faults (%d nodes)\n"
    procs;
  let t =
    Table.make
      ~header:
        [
          "FAULTS"; "TIME(s)"; "GOODPUT%"; "RETRANS"; "RT RETRIES"; "DROPS";
          "DUPS SUPPR"; "FORCES";
        ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.ch_spec;
          Table.sec p.ch_time_s;
          Printf.sprintf "%.1f" (100. *. p.ch_goodput);
          string_of_int p.ch_retransmits;
          string_of_int p.ch_rt_retries;
          string_of_int p.ch_drops;
          string_of_int p.ch_dups_suppressed;
          (if p.ch_forces_ok then "bit-identical" else "DIVERGED");
        ])
    points;
  Table.print t;
  print_newline ()

(* -------------------------------------------------------------------- A12 *)

type adaptive_strip_point = {
  as_mode : string;
  as_time_s : float;
  as_final_strip : int;
  as_grows : int;
  as_shrinks : int;
  as_peak_d : int;
  as_max_out : int;
}

(* Fault-free BH force phase per strip mode; all the columns come from the
   phase's [Dpa_stats], so no sink is needed. *)
let adaptive_strip_sweep ?(strips = [ 10; 25; 50; 100; 300 ])
    (conf : Runconf.t) =
  let procs = conf.Runconf.breakdown_procs in
  let params = Dpa_bh.Bh_force.default_params in
  let point name variant =
    let bodies = Dpa_bh.Plummer.generate ~n:conf.Runconf.bh_bodies ~seed:17 in
    let octree = Dpa_bh.Octree.build bodies in
    let tree = Dpa_bh.Bh_global.distribute octree ~nnodes:procs in
    let machine = Machine.make ~nodes:procs () in
    let engine = Engine.create machine in
    Engine.set_fault engine None;
    let r = Dpa_bh.Bh_run.force_phase ~engine ~tree ~bodies ~params variant in
    let s =
      match r.Dpa_bh.Bh_run.dpa_stats with
      | Some s -> s
      | None -> assert false
    in
    {
      as_mode = name;
      as_time_s = Breakdown.elapsed_s r.Dpa_bh.Bh_run.breakdown;
      as_final_strip = s.Dpa.Dpa_stats.strip_size_final;
      as_grows = s.Dpa.Dpa_stats.strip_grows;
      as_shrinks = s.Dpa.Dpa_stats.strip_shrinks;
      as_peak_d = s.Dpa.Dpa_stats.align_peak;
      as_max_out = s.Dpa.Dpa_stats.max_outstanding;
    }
  in
  List.map
    (fun strip ->
      point (string_of_int strip)
        (Dpa_baselines.Variant.dpa ~strip_size:strip ()))
    strips
  @ [ point "auto" (Dpa_baselines.Variant.Dpa (Dpa.Config.dpa_auto ())) ]

let print_adaptive_strip_sweep ~procs points =
  Printf.printf
    "A12a: static vs adaptive strip size — BH force phase (%d nodes)\n" procs;
  let t =
    Table.make
      ~header:
        [
          "STRIP"; "TIME(s)"; "FINAL"; "GROWS"; "SHRINKS"; "PEAK D"; "MAX OUT";
        ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.as_mode;
          Table.sec p.as_time_s;
          string_of_int p.as_final_strip;
          string_of_int p.as_grows;
          string_of_int p.as_shrinks;
          string_of_int p.as_peak_d;
          string_of_int p.as_max_out;
        ])
    points;
  Table.print t;
  print_newline ()

type adaptive_rto_point = {
  rp_mode : string;
  rp_time_s : float;
  rp_retransmits : int;
  rp_rt_retries : int;
  rp_forces_ok : bool;
}

(* Same phase, same fault plan and seed, with only the timeout policy
   varied. The interesting column is RT RETRIES: the constant wheel base
   undershoots an injected NIC outage and re-issues requests the
   transport was already recovering; the estimator learns outage-scale
   round trips and backs the wheel off, while forces stay bit-identical
   to the fault-free reference either way. *)
let adaptive_rto_sweep ?(spec = "heavy") ?(fault_seed = 0x5EED)
    (conf : Runconf.t) =
  let procs = conf.Runconf.breakdown_procs in
  let params = Dpa_bh.Bh_force.default_params in
  let run ~adaptive faults =
    let bodies = Dpa_bh.Plummer.generate ~n:conf.Runconf.bh_bodies ~seed:17 in
    let octree = Dpa_bh.Octree.build bodies in
    let tree = Dpa_bh.Bh_global.distribute octree ~nnodes:procs in
    let machine =
      Machine.make ~nodes:procs ?faults ~fault_seed ~adaptive_rto:adaptive ()
    in
    let engine = Engine.create machine in
    if faults = None then Engine.set_fault engine None;
    let r =
      Dpa_bh.Bh_run.force_phase ~engine ~tree ~bodies ~params
        (dpa_variant conf ~strip:conf.Runconf.bh_strip)
    in
    (r, engine)
  in
  let reference, _ = run ~adaptive:false None in
  let faults =
    match Fault.spec_of_string spec with
    | Ok s -> s
    | Error msg -> invalid_arg ("adaptive_rto_sweep: " ^ msg)
  in
  List.map
    (fun (name, adaptive) ->
      let r, engine = run ~adaptive (Some faults) in
      let retransmits =
        match Dpa_msg.Am.stats engine with
        | None -> 0
        | Some s -> s.Dpa_msg.Am.retransmits
      in
      let s =
        match r.Dpa_bh.Bh_run.dpa_stats with
        | Some s -> s
        | None -> assert false
      in
      {
        rp_mode = name;
        rp_time_s = Breakdown.elapsed_s r.Dpa_bh.Bh_run.breakdown;
        rp_retransmits = retransmits;
        rp_rt_retries = s.Dpa.Dpa_stats.rt_retries;
        rp_forces_ok = r.Dpa_bh.Bh_run.accs = reference.Dpa_bh.Bh_run.accs;
      })
    [ ("constant", false); ("adaptive", true) ]

let print_adaptive_rto_sweep ~procs ~spec points =
  Printf.printf
    "A12b: constant vs adaptive retransmission timeout — BH force phase \
     under %s faults (%d nodes)\n"
    spec procs;
  let t =
    Table.make ~header:[ "RTO"; "TIME(s)"; "RETRANS"; "RT RETRIES"; "FORCES" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.rp_mode;
          Table.sec p.rp_time_s;
          string_of_int p.rp_retransmits;
          string_of_int p.rp_rt_retries;
          (if p.rp_forces_ok then "bit-identical" else "DIVERGED");
        ])
    points;
  Table.print t;
  print_newline ()

(* -------------------------------------------------------------------- A13 *)

type crash_cell = {
  cc_schedule : string;
  cc_time_s : float;
  cc_retransmits : int;
  cc_fenced : int;
  cc_crashes : int;
  cc_refetches : int;
  cc_ok : bool;
}

type crash_row = {
  cw_workload : string;
  cw_cells : crash_cell list;
}

module Em3d_interp = Dpa_compiler.Interp.Make (Dpa.Runtime)

(* The EM3D checksum is a global reduction whose terms arrive in wake
   order; snapping every term onto a fixed grid makes the sum exact (and
   therefore order-independent) — see {!Dpa_compiler.Interp.Make.compile}.
   Per-item values are O(10) and there are O(10^3) of them, so the running
   sum stays far inside the 2^(53-36) exactness bound. *)
let em3d_accum_grid = Dpa_util.Det.grid ~bits:36

(* Shared chaos-matrix workload runners (A13 crash matrix, A14 integrity
   matrix). Each runs one phase under an optional fault plan and returns
   the phase result (the bit-identity witness), the engine (transport
   counters), the elapsed sim seconds and the merged runtime stats.
   Workload phase lengths differ by an order of magnitude, so matrix
   cells that need a crash schedule derive it from the workload's own
   fault-free duration (see [crash_matrix]). *)
let chaos_workloads ~fault_seed (conf : Runconf.t) =
  let procs = conf.Runconf.breakdown_procs in
  let mk_engine ~nodes faults =
    let machine = Machine.make ~nodes ?faults ~fault_seed () in
    let engine = Engine.create machine in
    (* As in [chaos_sweep]: a process-global [--faults] default must not
       leak into the reference run via [Engine.create]'s fallback. *)
    if faults = None then Engine.set_fault engine None;
    engine
  in
  let bh faults =
    let bodies = Dpa_bh.Plummer.generate ~n:conf.Runconf.bh_bodies ~seed:17 in
    let octree = Dpa_bh.Octree.build bodies in
    let tree = Dpa_bh.Bh_global.distribute octree ~nnodes:procs in
    let engine = mk_engine ~nodes:procs faults in
    let r =
      Dpa_bh.Bh_run.force_phase ~engine ~tree ~bodies
        ~params:Dpa_bh.Bh_force.default_params
        (dpa_variant conf ~strip:conf.Runconf.bh_strip)
    in
    let s =
      match r.Dpa_bh.Bh_run.dpa_stats with Some s -> s | None -> assert false
    in
    ( `Bh r.Dpa_bh.Bh_run.accs,
      engine,
      Breakdown.elapsed_s r.Dpa_bh.Bh_run.breakdown,
      s )
  in
  let fmm faults =
    (* Odd node count for the same reason as [upward_sweep]: power-of-two
       Morton blocks keep every M2M local on a complete quadtree. *)
    let nodes = max 3 (procs - 1) in
    let params = fmm_params conf in
    let parts =
      Dpa_fmm.Particle2d.uniform ~n:conf.Runconf.fmm_particles ~seed:23
    in
    let tree = Dpa_fmm.Quadtree.build parts in
    let global =
      Dpa_fmm.Fmm_global.distribute_empty ~p:params.Dpa_fmm.Fmm_force.p tree
        ~nnodes:nodes
    in
    let engine = mk_engine ~nodes faults in
    let r =
      Dpa_fmm.Fmm_upward.run ~engine ~global ~params
        (dpa_variant conf ~strip:conf.Runconf.fmm_strip)
    in
    let s =
      match r.Dpa_fmm.Fmm_upward.dpa_stats with
      | Some s -> s
      | None -> assert false
    in
    let multipoles =
      (* Cells above level 2 have no multipole object (no well-separated
         interactions exist for them): their pointer slot is nil. *)
      Array.map
        (fun ptr ->
          if Dpa_heap.Gptr.is_nil ptr then [||]
          else
            Array.copy
              (Dpa_heap.Heap.deref global.Dpa_fmm.Fmm_global.heaps ptr)
                .Dpa_heap.Obj_repr.floats)
        global.Dpa_fmm.Fmm_global.mp_ptrs
    in
    ( `Fmm multipoles,
      engine,
      Breakdown.elapsed_s r.Dpa_fmm.Fmm_upward.breakdown,
      s )
  in
  let em3d faults =
    let per_node = max 8 (conf.Runconf.bh_bodies / procs / 4) in
    let g =
      Dpa_compiler.Em3d.build ~nnodes:procs ~e_per_node:per_node
        ~h_per_node:per_node ~degree:20 ~remote_frac:0.25 ~seed:29
    in
    (* A fresh compile per run: the compiled program owns the checksum
       accumulator, and reuse would sum across runs. *)
    let c =
      Em3d_interp.compile ~accum_grid:em3d_accum_grid
        (Dpa_compiler.Em3d.update_program ~degree:20)
    in
    let engine = mk_engine ~nodes:procs faults in
    let per = Array.length g.Dpa_compiler.Em3d.e_nodes / procs in
    let items node =
      Array.init per (fun i ->
          Em3d_interp.item c ~entry:"update_node"
            ~args:
              [
                Dpa_compiler.Value.Ptr
                  g.Dpa_compiler.Em3d.e_nodes.((node * per) + i);
              ])
    in
    let b, s =
      Dpa.Runtime.run_phase_labeled ~label:"em3d-ir" ~engine
        ~heaps:g.Dpa_compiler.Em3d.heaps
        ~config:(Dpa.Config.dpa ~strip_size:conf.Runconf.bh_strip ())
        ~items
    in
    (`Em3d (Em3d_interp.accumulator c "sum"), engine, Breakdown.elapsed_s b, s)
  in
  [
    (Printf.sprintf "BH force (%d nodes)" procs, bh);
    (Printf.sprintf "FMM upward (%d nodes)" (max 3 (procs - 1)), fmm);
    (Printf.sprintf "EM3D via compiler IR (%d nodes)" procs, em3d);
  ]

(* Cross-workload crash matrix: one crash per node, drawn inside the
   first half of the reference duration, with a restart delay of an
   eighth of it — long enough that peers retransmit into the fence,
   short enough that the phase completes. The last column is the point
   of the table: results must be bit-identical to the fault-free
   reference under every schedule, including the ones that lose whole
   nodes mid-phase. *)
let crash_matrix ?(fault_seed = 0xC4A5) (conf : Runconf.t) =
  let cells run =
    let ref_res, ref_engine, ref_time, ref_stats = run None in
    let am_counters engine =
      match Dpa_msg.Am.stats engine with
      | None -> (0, 0)
      | Some s -> (s.Dpa_msg.Am.retransmits, s.Dpa_msg.Am.fenced)
    in
    let mk label (engine, time_s, (stats : Dpa.Dpa_stats.t)) ~ok =
      let retransmits, fenced = am_counters engine in
      {
        cc_schedule = label;
        cc_time_s = time_s;
        cc_retransmits = retransmits;
        cc_fenced = fenced;
        cc_crashes = stats.Dpa.Dpa_stats.crashes;
        cc_refetches = stats.Dpa.Dpa_stats.crash_refetches;
        cc_ok = ok;
      }
    in
    let elapsed = Engine.elapsed ref_engine in
    let crash_knobs =
      Printf.sprintf "crashes=1,crash-ns=%d,horizon-ns=%d"
        (max 1_000 (elapsed / 8))
        (max 1_000 (elapsed / 2))
    in
    let faulted label spec_str =
      let faults =
        match Fault.spec_of_string spec_str with
        | Ok s -> s
        | Error msg -> invalid_arg ("crash_matrix: " ^ msg)
      in
      let res, engine, time_s, stats = run (Some faults) in
      mk label (engine, time_s, stats) ~ok:(res = ref_res)
    in
    [
      mk "off" (ref_engine, ref_time, ref_stats) ~ok:true;
      faulted "drop+dup+delay" "drop=0.05,dup=0.02,delay=0.10";
      faulted "crash" crash_knobs;
      faulted "heavy+crash"
        (Printf.sprintf "heavy,outage-ns=%d,%s"
           (max 1_000 (elapsed / 8))
           crash_knobs);
    ]
  in
  List.map
    (fun (label, run) -> { cw_workload = label; cw_cells = cells run })
    (chaos_workloads ~fault_seed conf)

let print_crash_matrix rows =
  print_endline
    "A13: crash-restart chaos matrix — every schedule must reproduce the \
     fault-free result bit for bit";
  List.iter
    (fun row ->
      Printf.printf "%s\n" row.cw_workload;
      let t =
        Table.make
          ~header:
            [
              "SCHEDULE"; "TIME(s)"; "RETRANS"; "FENCED"; "CRASHES";
              "REFETCHED"; "RESULT";
            ]
      in
      List.iter
        (fun c ->
          Table.add_row t
            [
              c.cc_schedule;
              Table.sec c.cc_time_s;
              string_of_int c.cc_retransmits;
              string_of_int c.cc_fenced;
              string_of_int c.cc_crashes;
              string_of_int c.cc_refetches;
              (if c.cc_ok then "bit-identical" else "DIVERGED");
            ])
        row.cw_cells;
      Table.print t;
      print_newline ())
    rows;
  (* A machine-checkable summary line: the chaos-smoke target asserts that
     crashes actually happened and nothing diverged. *)
  let total f = List.fold_left (fun a r -> List.fold_left f a r.cw_cells) 0 rows in
  Printf.printf "a13 summary: %d crash-restarts executed, %d schedule(s) diverged\n\n"
    (total (fun a c -> a + c.cc_crashes))
    (total (fun a c -> a + if c.cc_ok then 0 else 1))

(* -------------------------------------------------------------------- A14 *)

type integrity_cell = {
  ic_schedule : string;
  ic_time_s : float;
  ic_retransmits : int;
  ic_corrupt : int;
  ic_crashes : int;
  ic_wal_truncated : int;
  ic_wal_repaired : int;
  ic_ok : bool;
}

type integrity_row = {
  iw_workload : string;
  iw_cells : integrity_cell list;
}

(* Cross-workload integrity matrix: the corruption and torn-write fault
   classes, alone and stacked on the heavy preset plus a crash schedule
   derived from the reference duration (the [crash_matrix] recipe). A
   corrupted copy is fenced at the NIC by its checksum and recovered by
   retransmission; a torn WAL tail is truncated by the restart scan and
   repaired from the doublewrite slot — so the last column must read
   bit-identical in every cell, with the CORRUPT / WAL TRUNC / REPAIR
   columns proving the fault classes actually executed. *)
let integrity_matrix ?(fault_seed = 0x14C5) (conf : Runconf.t) =
  (* A fourth, accumulate-heavy workload: the shared trio barely exercises
     the durable logs (BH and EM3D accumulate host-side; FMM's remote M2M
     contributions cluster at the top of the upward pass, after the crash
     windows), so torn-write tears would land on empty WALs and absorb
     harmlessly. Here every node streams remote accumulates from its very
     first strip, so a mid-phase crash tears real Batch/Applied records —
     the WAL TRUNC and REPAIR columns of this row witness the recovery
     path end to end. *)
  let accum_reduce =
    let procs = conf.Runconf.breakdown_procs in
    let run faults =
      let heaps = Dpa_heap.Heap.cluster ~nnodes:procs in
      let counters =
        Array.init (2 * procs) (fun i ->
            Dpa_heap.Heap.alloc
              heaps.(i mod procs)
              ~floats:(Array.make 2 0.) ~ptrs:[||])
      in
      let nctr = Array.length counters in
      let items node =
        Array.init 64 (fun i ->
            fun ctx ->
              Dpa.Runtime.charge ctx 2_000;
              Dpa.Runtime.accumulate ctx
                counters.((node + (3 * i)) mod nctr)
                ~idx:(i mod 2)
                (float_of_int ((node * 64) + i + 1)))
      in
      let machine = Machine.make ~nodes:procs ?faults ~fault_seed () in
      let engine = Engine.create machine in
      if faults = None then Engine.set_fault engine None;
      let b, s =
        Dpa.Runtime.run_phase_labeled ~label:"accum-reduce" ~engine ~heaps
          ~config:(Dpa.Config.dpa ~strip_size:8 ())
          ~items
      in
      let vals =
        Array.map
          (fun p ->
            Array.copy (Dpa_heap.Heap.deref heaps p).Dpa_heap.Obj_repr.floats)
          counters
      in
      (`Accum vals, engine, Breakdown.elapsed_s b, s)
    in
    (Printf.sprintf "Accumulate reduction (%d nodes)" procs, run)
  in
  let cells run =
    let ref_res, ref_engine, ref_time, ref_stats = run None in
    let am_counters engine =
      match Dpa_msg.Am.stats engine with
      | None -> (0, 0)
      | Some s -> (s.Dpa_msg.Am.retransmits, s.Dpa_msg.Am.corrupt_dropped)
    in
    let mk label (engine, time_s, (stats : Dpa.Dpa_stats.t)) ~ok =
      let retransmits, corrupt = am_counters engine in
      {
        ic_schedule = label;
        ic_time_s = time_s;
        ic_retransmits = retransmits;
        ic_corrupt = corrupt;
        ic_crashes = stats.Dpa.Dpa_stats.crashes;
        ic_wal_truncated = stats.Dpa.Dpa_stats.wal_truncated;
        ic_wal_repaired = stats.Dpa.Dpa_stats.wal_repaired;
        ic_ok = ok;
      }
    in
    let elapsed = Engine.elapsed ref_engine in
    let crash_knobs =
      Printf.sprintf "crashes=1,crash-ns=%d,horizon-ns=%d"
        (max 1_000 (elapsed / 8))
        (max 1_000 (elapsed / 2))
    in
    let faulted label spec_str =
      let faults =
        match Fault.spec_of_string spec_str with
        | Ok s -> s
        | Error msg -> invalid_arg ("integrity_matrix: " ^ msg)
      in
      let res, engine, time_s, stats = run (Some faults) in
      mk label (engine, time_s, stats) ~ok:(res = ref_res)
    in
    [
      mk "off" (ref_engine, ref_time, ref_stats) ~ok:true;
      faulted "corrupt" "corrupt=0.05";
      faulted "torn-wal" (Printf.sprintf "torn-wal=1,%s" crash_knobs);
      faulted "heavy+corrupt+crash"
        (Printf.sprintf "heavy,corrupt=0.02,torn-wal=1,%s" crash_knobs);
    ]
  in
  List.map
    (fun (label, run) -> { iw_workload = label; iw_cells = cells run })
    (chaos_workloads ~fault_seed conf @ [ accum_reduce ])

let print_integrity_matrix rows =
  print_endline
    "A14: end-to-end integrity matrix — corruption is fenced by checksums, \
     torn WAL tails repair from the doublewrite slot";
  List.iter
    (fun row ->
      Printf.printf "%s\n" row.iw_workload;
      let t =
        Table.make
          ~header:
            [
              "SCHEDULE"; "TIME(s)"; "RETRANS"; "CORRUPT"; "CRASHES";
              "WAL TRUNC"; "REPAIR"; "RESULT";
            ]
      in
      List.iter
        (fun c ->
          Table.add_row t
            [
              c.ic_schedule;
              Table.sec c.ic_time_s;
              string_of_int c.ic_retransmits;
              string_of_int c.ic_corrupt;
              string_of_int c.ic_crashes;
              string_of_int c.ic_wal_truncated;
              string_of_int c.ic_wal_repaired;
              (if c.ic_ok then "bit-identical" else "DIVERGED");
            ])
        row.iw_cells;
      Table.print t;
      print_newline ())
    rows;
  (* A machine-checkable summary line: the integrity-smoke target asserts
     that corruptions actually executed and nothing diverged. *)
  let total f =
    List.fold_left (fun a r -> List.fold_left f a r.iw_cells) 0 rows
  in
  Printf.printf
    "a14 summary: %d corruptions dropped, %d wal records truncated, %d \
     schedule(s) diverged\n\n"
    (total (fun a c -> a + c.ic_corrupt))
    (total (fun a c -> a + c.ic_wal_truncated))
    (total (fun a c -> a + if c.ic_ok then 0 else 1))

(* -------------------------------------------------------------------- A15 *)

type optimality_cell = {
  oc_config : string;
  oc_schedule : string;
  oc_time_s : float;
  oc_msgs : int;
  oc_actual : int;
  oc_bound : int;
  oc_reissues : int;  (* end-to-end batch re-issues executed under custody *)
  oc_ok : bool;
}

type optimality_row = {
  ow_workload : string;
  ow_cells : optimality_cell list;
}

let oc_ratio c =
  if c.oc_bound = 0 then Float.nan
  else float_of_int c.oc_actual /. float_of_int c.oc_bound

(* Every a15 run gets a private sink carrying a causal log, so the
   per-phase optimality meters ([opt_actual] / [opt_bound]) attached to the
   analyzed phase windows stay in reach after the run — without touching an
   enclosing [--events] stream. The matrix owns its fault plans: a
   process-global [--faults] default must not leak into the reference
   cells via [Engine.create]'s fallback. *)
let causal_engine ~procs ~fault_seed faults =
  let machine = Machine.make ~nodes:procs ?faults ~fault_seed () in
  let engine = Engine.create machine in
  let sink = Dpa_obs.Sink.create () in
  let c = Dpa_obs.Causal.create () in
  Dpa_obs.Sink.set_causal sink (Some c);
  Engine.set_sink engine (Some sink);
  if faults = None then Engine.set_fault engine None;
  (engine, c)

(* The opt meters of the phases named [label], in execution order. *)
let opt_instances c label =
  List.filter_map
    (fun (i : Dpa_obs.Causal.instance) ->
      if i.Dpa_obs.Causal.i_label = label then
        Some (i.Dpa_obs.Causal.i_opt_actual, i.Dpa_obs.Causal.i_opt_bound)
      else None)
    (Dpa_obs.Causal.results c)

(* Communication-optimality matrix. Two workloads whose measured gap the
   tentpole optimizations close:

   - a fan-in reduction (every counter owned by node 0, many strips per
     node) run flat and with tree-routed aggregation: the phase-long hold
     collapses the per-strip re-sends of the same few entries and the
     binomial tree combines them en route, so the measured volume drops
     toward the bound while the grid-exact sums stay bit-identical;

   - a two-step Barnes-Hut run, statically partitioned vs Morton
     repartitioned from measured per-body work: the work-balanced cut
     aligns ownership with the evolved tree, shrinking the remote volume
     of the second step's gather relative to its footprint bound.

   The fan-in row also runs the routed configuration under crash-restart
   schedules: parked relay batches are volatile, but every routed batch
   stays under its origin's custody (WAL + end-to-end ack from the final
   owner) until applied, so a crash only costs a straight-line re-issue
   that the owner journal dedups — the REISSUES column counts those, and
   the route-crash-smoke gate asserts they actually happened. One node of
   the fan-in (node 4, the binomial-tree relay for origins 5 and 6)
   computes 8x longer than the rest so routed batches reliably sit parked
   at a live relay inside the crash horizon. *)
let optimality_matrix ?(fault_seed = 0x0A15) (conf : Runconf.t) =
  let heavy =
    match Fault.spec_of_string "heavy" with
    | Ok s -> s
    | Error msg -> invalid_arg ("optimality_matrix: " ^ msg)
  in
  let fanin =
    let procs = conf.Runconf.breakdown_procs in
    let run ~route faults =
      let heaps = Dpa_heap.Heap.cluster ~nnodes:procs in
      let counters =
        Array.init 4 (fun _ ->
            Dpa_heap.Heap.alloc heaps.(0) ~floats:(Array.make 2 0.) ~ptrs:[||])
      in
      let items node =
        Array.init 32 (fun i ->
            fun ctx ->
              Dpa.Runtime.charge ctx (if node = 4 then 16_000 else 2_000);
              Dpa.Runtime.accumulate ctx
                counters.((node + i) mod 4)
                ~idx:(i mod 2)
                (float_of_int ((node * 32) + i + 1)))
      in
      let engine, c = causal_engine ~procs ~fault_seed faults in
      let b, s =
        Dpa.Runtime.run_phase_labeled ~label:"fanin-reduce" ~engine ~heaps
          ~config:(Dpa.Config.dpa ~strip_size:4 ~route ())
          ~items
      in
      let vals =
        Array.map
          (fun p ->
            Array.copy (Dpa_heap.Heap.deref heaps p).Dpa_heap.Obj_repr.floats)
          counters
      in
      let actual, bound =
        match opt_instances c "fanin-reduce" with
        | [ ab ] -> ab
        | l -> invalid_arg (Printf.sprintf "a15: %d fanin phases" (List.length l))
      in
      ( vals,
        Breakdown.elapsed_s b,
        s.Dpa.Dpa_stats.update_msgs,
        (actual, bound),
        s.Dpa.Dpa_stats.routed_reissues + s.Dpa.Dpa_stats.upd_reissues,
        engine )
    in
    let reference, _, _, _, _, ref_engine = run ~route:Dpa.Config.Off None in
    let elapsed = Engine.elapsed ref_engine in
    let crash_knobs =
      Printf.sprintf "crashes=1,crash-ns=%d,horizon-ns=%d"
        (max 1_000 (elapsed / 8))
        (max 1_000 (elapsed / 2))
    in
    let crash_of str =
      match Fault.spec_of_string str with
      | Ok s -> s
      | Error msg -> invalid_arg ("optimality_matrix: " ^ msg)
    in
    let crash = crash_of crash_knobs in
    let heavy_crash = crash_of ("heavy," ^ crash_knobs) in
    let cell config route schedule faults =
      let vals, time_s, msgs, (actual, bound), reissues, _ =
        run ~route faults
      in
      {
        oc_config = config;
        oc_schedule = schedule;
        oc_time_s = time_s;
        oc_msgs = msgs;
        oc_actual = actual;
        oc_bound = bound;
        oc_reissues = reissues;
        oc_ok = vals = reference;
      }
    in
    {
      ow_workload =
        Printf.sprintf "Fan-in reduction (%d nodes, all counters on node 0)"
          procs;
      ow_cells =
        [
          cell "flat" Dpa.Config.Off "off" None;
          cell "flat" Dpa.Config.Off "heavy" (Some heavy);
          cell "routed" Dpa.Config.All_dsts "off" None;
          cell "routed" Dpa.Config.All_dsts "heavy" (Some heavy);
          cell "routed" Dpa.Config.All_dsts "crash" (Some crash);
          cell "routed" Dpa.Config.All_dsts "heavy+crash" (Some heavy_crash);
        ];
    }
  in
  let bh =
    let procs = conf.Runconf.breakdown_procs in
    let params = Dpa_bh.Bh_force.default_params in
    let nbodies = conf.Runconf.bh_bodies in
    (* Two steps driven by hand (the [chaos_sweep] recipe) so the engine
       and the causal log stay in reach: step 1 always uses the static
       block partition; step 2 is the one repartitioning re-cuts. *)
    let run ~repartition faults =
      let bodies = Dpa_bh.Plummer.generate ~n:nbodies ~seed:17 in
      let engine, c = causal_engine ~procs ~fault_seed faults in
      let work = if repartition then Some (Array.make nbodies 0) else None in
      let prev = ref None in
      let time_s = ref 0. in
      let msgs = ref 0 in
      let reissues = ref 0 in
      for _step = 1 to 2 do
        let octree = Dpa_bh.Octree.build bodies in
        (match work with
        | Some w -> Array.fill w 0 (Array.length w) 0
        | None -> ());
        let tree =
          Dpa_bh.Bh_global.distribute ?weights:!prev octree ~nnodes:procs
        in
        let r =
          Dpa_bh.Bh_run.force_phase ?work ~engine ~tree ~bodies ~params
            (dpa_variant conf ~strip:conf.Runconf.bh_strip)
        in
        (match work with
        | Some w -> prev := Some (Array.copy w)
        | None -> ());
        time_s := !time_s +. Breakdown.elapsed_s r.Dpa_bh.Bh_run.breakdown;
        (match r.Dpa_bh.Bh_run.dpa_stats with
        | Some s ->
          msgs := s.Dpa.Dpa_stats.request_msgs;
          reissues :=
            !reissues + s.Dpa.Dpa_stats.upd_reissues
            + s.Dpa.Dpa_stats.routed_reissues
        | None -> ());
        Array.iteri
          (fun bid acc -> bodies.(bid).Dpa_bh.Body.acc <- acc)
          r.Dpa_bh.Bh_run.accs;
        Dpa_bh.Body.advance bodies ~dt:0.025
      done;
      let step2 =
        match opt_instances c "bh-force" with
        | [ _; ab ] -> ab
        | l -> invalid_arg (Printf.sprintf "a15: %d bh phases" (List.length l))
      in
      (bodies, !time_s, !msgs, step2, !reissues, engine)
    in
    let reference, _, _, _, _, ref_engine = run ~repartition:false None in
    let elapsed = Engine.elapsed ref_engine in
    let crash =
      match
        Fault.spec_of_string
          (Printf.sprintf "heavy,crashes=1,crash-ns=%d,horizon-ns=%d"
             (max 1_000 (elapsed / 8))
             (max 1_000 (elapsed / 2)))
      with
      | Ok s -> s
      | Error msg -> invalid_arg ("optimality_matrix: " ^ msg)
    in
    let cell config repartition schedule faults =
      let bodies, time_s, msgs, (actual, bound), reissues, _ =
        run ~repartition faults
      in
      {
        oc_config = config;
        oc_schedule = schedule;
        oc_time_s = time_s;
        oc_msgs = msgs;
        oc_actual = actual;
        oc_bound = bound;
        oc_reissues = reissues;
        oc_ok = bodies = reference;
      }
    in
    {
      ow_workload =
        Printf.sprintf "BH step 2 of 2 (%d bodies, %d nodes)" nbodies procs;
      ow_cells =
        [
          cell "static" false "off" None;
          cell "static" false "heavy" (Some heavy);
          cell "static" false "heavy+crash" (Some crash);
          cell "repartitioned" true "off" None;
          cell "repartitioned" true "heavy" (Some heavy);
          cell "repartitioned" true "heavy+crash" (Some crash);
        ];
    }
  in
  [ fanin; bh ]

(* The flat/static "off" cell and the routed/repartitioned "off" cell of a
   row — the pair the headline ratio improvement is read from. *)
let optimality_headline row =
  let off config =
    List.find_opt
      (fun c -> c.oc_config = config && c.oc_schedule = "off")
      row.ow_cells
  in
  match row.ow_cells with
  | [] -> None
  | first :: _ -> (
    match (off first.oc_config, off "routed", off "repartitioned") with
    | Some base, Some opt, None | Some base, None, Some opt -> Some (base, opt)
    | _ -> None)

let print_optimality_matrix rows =
  print_endline
    "A15: communication-optimality matrix — tree-routed aggregation and \
     Morton repartitioning vs the flat/static baseline";
  List.iter
    (fun row ->
      Printf.printf "%s\n" row.ow_workload;
      let t =
        Table.make
          ~header:
            [
              "CONFIG"; "SCHEDULE"; "TIME(s)"; "MSGS"; "ACTUAL(B)";
              "BOUND(B)"; "RATIO"; "REISSUES"; "RESULT";
            ]
      in
      List.iter
        (fun c ->
          Table.add_row t
            [
              c.oc_config;
              c.oc_schedule;
              Table.sec c.oc_time_s;
              string_of_int c.oc_msgs;
              string_of_int c.oc_actual;
              string_of_int c.oc_bound;
              Printf.sprintf "%.3f" (oc_ratio c);
              string_of_int c.oc_reissues;
              (if c.oc_ok then "bit-identical" else "DIVERGED");
            ])
        row.ow_cells;
      Table.print t;
      print_newline ())
    rows;
  (* A machine-checkable summary line: the optimality-smoke target asserts
     that both optimizations strictly improved the measured ratio and that
     nothing diverged. *)
  let pairs = List.filter_map optimality_headline rows in
  let improved =
    pairs <> [] && List.for_all (fun (b, o) -> oc_ratio o < oc_ratio b) pairs
  in
  let diverged =
    List.fold_left
      (fun a r ->
        List.fold_left (fun a c -> a + if c.oc_ok then 0 else 1) a r.ow_cells)
      0 rows
  in
  (* Custody check for the route-crash-smoke gate: re-issues executed by
     routed cells running under a crash schedule. Zero here means the
     crash windows never actually tested the recovery path. *)
  let route_crash_reissues =
    List.fold_left
      (fun a r ->
        List.fold_left
          (fun a c ->
            if
              c.oc_config = "routed"
              && String.length c.oc_schedule >= 5
              && String.sub c.oc_schedule (String.length c.oc_schedule - 5) 5
                 = "crash"
            then a + c.oc_reissues
            else a)
          a r.ow_cells)
      0 rows
  in
  Printf.printf
    "a15 summary: %s, improved=%s, %d route-crash re-issue(s), %d cell(s) \
     diverged\n\n"
    (String.concat ", "
       (List.map
          (fun (b, o) ->
            Printf.sprintf "%s %.3f -> %s %.3f" b.oc_config (oc_ratio b)
              o.oc_config (oc_ratio o))
          pairs))
    (if improved then "yes" else "no")
    route_crash_reissues diverged

let optimality_json rows =
  Dpa_obs.Json.Obj
    [
      ( "rows",
        Dpa_obs.Json.List
          (List.map
             (fun row ->
               Dpa_obs.Json.Obj
                 [
                   ("workload", Dpa_obs.Json.Str row.ow_workload);
                   ( "cells",
                     Dpa_obs.Json.List
                       (List.map
                          (fun c ->
                            Dpa_obs.Json.Obj
                              [
                                ("config", Dpa_obs.Json.Str c.oc_config);
                                ("schedule", Dpa_obs.Json.Str c.oc_schedule);
                                ("time_s", Dpa_obs.Json.Float c.oc_time_s);
                                ("msgs", Dpa_obs.Json.Int c.oc_msgs);
                                ("opt_actual", Dpa_obs.Json.Int c.oc_actual);
                                ("opt_bound", Dpa_obs.Json.Int c.oc_bound);
                                ("ratio", Dpa_obs.Json.Float (oc_ratio c));
                                ("reissues", Dpa_obs.Json.Int c.oc_reissues);
                                ("bit_identical", Dpa_obs.Json.Bool c.oc_ok);
                              ])
                          row.ow_cells) );
                 ])
             rows) );
    ]

(* ------------------------------------------------------------------- A16 *)

(* Allocation baseline of the boxed per-object heap (the representation
   the flat struct-of-arrays heap replaced), measured pre-refactor with
   the same probe on the same configurations: total allocated words of a
   full [Bh_run.simulate], divided by bodies x steps. The committed
   BENCH_scale.json gates the flat heap's reduction against these
   constants (docs/PERFORMANCE.md). *)
let scale_boxed_baseline = [ (8, 2000, 3, 18065.8); (16, 8000, 2, 26539.1); (32, 20000, 1, 35366.4) ]

let scale_gate_threshold = 5.0

type scale_gate_row = {
  sg_nodes : int;
  sg_bodies : int;
  sg_steps : int;
  sg_wall_s : float;
  sg_words : float;
  sg_boxed_words : float;
  sg_majors : int;
}

let sg_reduction r = r.sg_boxed_words /. r.sg_words

type scale_row = {
  sc_nodes : int;
  sc_bodies : int;
  sc_wall_s : float;
  sc_words_per_body : float;
  sc_majors : int;
  sc_bytes_moved : int;
}

(* Wall seconds, allocated words and major collections around [f ()]. *)
let scale_measure f =
  Gc.compact ();
  let s0 = Gc.quick_stat () in
  let w0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let wall = Unix.gettimeofday () -. t0 in
  let w1 = Gc.allocated_bytes () in
  let s1 = Gc.quick_stat () in
  (r, wall, (w1 -. w0) /. 8., s1.Gc.major_collections - s0.Gc.major_collections)

let scale_gate (conf : Runconf.t) =
  List.map
    (fun (nnodes, nbodies, nsteps, boxed) ->
      let _, wall, words, majors =
        scale_measure (fun () ->
            Dpa_bh.Bh_run.simulate ~nnodes ~nbodies ~nsteps
              (dpa_variant conf ~strip:conf.Runconf.bh_strip))
      in
      {
        sg_nodes = nnodes;
        sg_bodies = nbodies;
        sg_steps = nsteps;
        sg_wall_s = wall;
        sg_words = words /. float_of_int (nbodies * nsteps);
        sg_boxed_words = boxed;
        sg_majors = majors;
      })
    scale_boxed_baseline

(* The big-end rows run one distributed force phase (no sequential
   counting pass, no integration): what the flat heap must sustain is the
   strip-mined traversal itself at million-body scale. *)
let scale_points (conf : Runconf.t) =
  if conf.Runconf.name = "full" then
    [ (64, 100_000); (128, 300_000); (256, 1_000_000) ]
  else [ (16, 20_000) ]

let scale_sweep (conf : Runconf.t) =
  List.map
    (fun (nnodes, nbodies) ->
      let bodies = Dpa_bh.Plummer.generate ~n:nbodies ~seed:17 in
      let octree = Dpa_bh.Octree.build ~leaf_cap:8 bodies in
      let tree = Dpa_bh.Bh_global.distribute octree ~nnodes in
      let engine = Engine.create (Machine.t3d ~nodes:nnodes) in
      let _, wall, words, majors =
        scale_measure (fun () ->
            Dpa_bh.Bh_run.force_phase ~engine ~tree ~bodies
              ~params:Dpa_bh.Bh_force.default_params
              (dpa_variant conf ~strip:conf.Runconf.bh_strip))
      in
      let bytes_moved =
        Array.fold_left
          (fun acc (n : Node.t) -> acc + n.Node.bytes_sent)
          0 (Engine.nodes engine)
      in
      {
        sc_nodes = nnodes;
        sc_bodies = nbodies;
        sc_wall_s = wall;
        sc_words_per_body = words /. float_of_int nbodies;
        sc_majors = majors;
        sc_bytes_moved = bytes_moved;
      })
    (scale_points conf)

let print_scale_sweep (gate, rows) =
  print_endline
    "A16: flat-heap allocation gate — full BH simulate vs the boxed-heap \
     baseline (allocated words per body-step)";
  print_endline
    "NODES  BODIES  STEPS  WALL(s)  WORDS/BODY-STEP  BOXED     REDUCTION  MAJOR-GCS";
  print_endline
    "-----  ------  -----  -------  ---------------  --------  ---------  ---------";
  List.iter
    (fun r ->
      Printf.printf "%-5d  %-6d  %-5d  %-7.2f  %-15.1f  %-8.1f  %-9s  %d\n"
        r.sg_nodes r.sg_bodies r.sg_steps r.sg_wall_s r.sg_words
        r.sg_boxed_words
        (Printf.sprintf "%.2fx" (sg_reduction r))
        r.sg_majors)
    gate;
  print_newline ();
  print_endline
    "A16: scale sweep — one distributed BH force phase per row (flat heap)";
  print_endline
    "NODES  BODIES   WALL(s)  WORDS/BODY  MAJOR-GCS  BYTES-MOVED";
  print_endline
    "-----  -------  -------  ----------  ---------  -----------";
  List.iter
    (fun r ->
      Printf.printf "%-5d  %-7d  %-7.2f  %-10.1f  %-9d  %d\n" r.sc_nodes
        r.sc_bodies r.sc_wall_s r.sc_words_per_body r.sc_majors
        r.sc_bytes_moved)
    rows;
  print_newline ();
  let worst =
    List.fold_left (fun acc r -> min acc (sg_reduction r)) infinity gate
  in
  let top =
    List.fold_left (fun acc r -> max acc r.sc_bodies) 0 rows
  in
  Printf.printf
    "a16 summary: gate=%s min_reduction=%.2fx (threshold %.1fx); largest \
     sweep %d bodies\n"
    (if worst >= scale_gate_threshold then "ok" else "FAILED")
    worst scale_gate_threshold top

let scale_json (gate, rows) =
  Dpa_obs.Json.Obj
    [
      ("bench", Dpa_obs.Json.Str "scale");
      ("gate_threshold_x", Dpa_obs.Json.Float scale_gate_threshold);
      ( "gate",
        Dpa_obs.Json.List
          (List.map
             (fun r ->
               Dpa_obs.Json.Obj
                 [
                   ("nodes", Dpa_obs.Json.Int r.sg_nodes);
                   ("bodies", Dpa_obs.Json.Int r.sg_bodies);
                   ("steps", Dpa_obs.Json.Int r.sg_steps);
                   ("wall_s", Dpa_obs.Json.Float r.sg_wall_s);
                   ("words_per_body_step", Dpa_obs.Json.Float r.sg_words);
                   ( "boxed_words_per_body_step",
                     Dpa_obs.Json.Float r.sg_boxed_words );
                   ("reduction_x", Dpa_obs.Json.Float (sg_reduction r));
                   ("major_collections", Dpa_obs.Json.Int r.sg_majors);
                 ])
             gate) );
      ( "scale",
        Dpa_obs.Json.List
          (List.map
             (fun r ->
               Dpa_obs.Json.Obj
                 [
                   ("nodes", Dpa_obs.Json.Int r.sc_nodes);
                   ("bodies", Dpa_obs.Json.Int r.sc_bodies);
                   ("wall_s", Dpa_obs.Json.Float r.sc_wall_s);
                   ("words_per_body", Dpa_obs.Json.Float r.sc_words_per_body);
                   ("major_collections", Dpa_obs.Json.Int r.sc_majors);
                   ("bytes_moved", Dpa_obs.Json.Int r.sc_bytes_moved);
                 ])
             rows) );
    ]

(** ASCII stacked bars for the paper's breakdown figures: each bar shows
    local computation ('#'), communication overhead ('+') and idle time
    ('.') as fractions of total node-time, with the elapsed time and
    speedup printed alongside. *)

type bar = {
  label : string;
  local : float;  (** fractions, summing to <= 1 *)
  comm : float;
  idle : float;
  elapsed_s : float;
  speedup : float option;
}

val of_breakdown :
  label:string ->
  ?speedup:float ->
  Dpa_sim.Breakdown.t ->
  bar

val render : ?width:int -> bar list -> string
val print : ?width:int -> bar list -> unit

type t = Num of float | Bool of bool | Ptr of Dpa_heap.Gptr.t

exception Eval_error of string

let num = function
  | Num f -> f
  | Bool _ -> raise (Eval_error "expected a number, got a boolean")
  | Ptr _ -> raise (Eval_error "expected a number, got a pointer")

let truthy = function
  | Bool b -> b
  | Num f -> f <> 0.
  | Ptr _ -> raise (Eval_error "a pointer is not a condition")

let ptr = function
  | Ptr p -> p
  | Num _ | Bool _ -> raise (Eval_error "expected a pointer")

let pp ppf = function
  | Num f -> Format.fprintf ppf "%g" f
  | Bool b -> Format.fprintf ppf "%b" b
  | Ptr p -> Format.fprintf ppf "%s" (Dpa_heap.Gptr.show p)

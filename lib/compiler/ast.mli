(** A small IR for ICC++-style concurrent pointer programs: enough to
    express the paper's examples (list and tree traversals over global
    pointer-based data structures inside [conc] loops) and to demonstrate
    the thread-partitioning algorithm of §4.

    Programs are first-order: a set of functions, calls have no return
    value, and results flow through named global accumulators (commutative
    reductions, which is what [conc] iterations are allowed to share).
    Pointer variables carry coarse alias classes; dereferences of
    global-class pointers are the "touch" points where the partitioner
    splits threads. *)

type alias_class = Local | Global of int

type binop = Add | Sub | Mul | Div | Lt | Le | Eq | And | Or

type unop = Neg | Not

type expr =
  | Num of float
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Is_nil of expr

type stmt =
  | Let of string * expr  (** bind or update a numeric/boolean local *)
  | Load_field of string * string * int
      (** [Load_field (dst, p, i)]: [dst = p->floats\[i\]] — a touch of [p] *)
  | Load_ptr of string * string * int
      (** [Load_ptr (dst, p, i)]: [dst = p->ptrs\[i\]] — a touch of [p];
          [dst] joins [p]'s alias class *)
  | Accum of string * expr  (** global accumulator += value *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list  (** body must be touch-free *)
  | Call of string * expr list  (** possibly recursive; pointer args allowed *)
  | Conc of stmt list
      (** block-level concurrency annotation (ICC++ [conc]): the statements
          may interleave; execution joins before the block completes *)

type param = { pname : string; pclass : alias_class option }
(** [pclass = None] for numeric parameters. *)

type func = { fname : string; params : param list; body : stmt list }

type program = { funcs : func list }

exception Illegal of string

val func : program -> string -> func
(** Look up a function. Raises {!Illegal} if absent. *)

val validate : program -> unit
(** Check the static restrictions: known call targets with matching arity,
    touch-free [While] bodies, and touches only on pointer-class variables.
    Raises {!Illegal} otherwise. *)

val illegal : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Illegal} with a formatted message. *)

val has_touch : stmt list -> bool
(** Does the block dereference any pointer (or call, conservatively)? *)

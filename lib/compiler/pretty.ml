open Format

let binop = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Eq -> "=="
  | Ast.And -> "&&"
  | Ast.Or -> "||"

let rec pp_expr ppf = function
  | Ast.Num f -> fprintf ppf "%g" f
  | Ast.Var v -> pp_print_string ppf v
  | Ast.Binop (op, a, b) ->
    fprintf ppf "(%a %s %a)" pp_expr a (binop op) pp_expr b
  | Ast.Unop (Ast.Neg, e) -> fprintf ppf "(-%a)" pp_expr e
  | Ast.Unop (Ast.Not, e) -> fprintf ppf "(!%a)" pp_expr e
  | Ast.Is_nil e -> fprintf ppf "is_nil(%a)" pp_expr e

let rec pp_stmt ppf = function
  | Ast.Let (v, e) -> fprintf ppf "%s = %a;" v pp_expr e
  | Ast.Load_field (d, p, i) -> fprintf ppf "%s = %s->f[%d];" d p i
  | Ast.Load_ptr (d, p, i) -> fprintf ppf "%s = %s->ptr[%d];" d p i
  | Ast.Accum (a, e) -> fprintf ppf "%s += %a;" a pp_expr e
  | Ast.If (e, a, []) ->
    fprintf ppf "@[<v 2>if %a {@ %a@]@ }" pp_expr e pp_block a
  | Ast.If (e, a, b) ->
    fprintf ppf "@[<v 2>if %a {@ %a@]@ @[<v 2>} else {@ %a@]@ }" pp_expr e
      pp_block a pp_block b
  | Ast.While (e, b) ->
    fprintf ppf "@[<v 2>while %a {@ %a@]@ }" pp_expr e pp_block b
  | Ast.Conc b ->
    fprintf ppf "@[<v 2>conc {@ %a@]@ }" pp_block b
  | Ast.Call (f, args) ->
    fprintf ppf "%s(%a);" f
      (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") pp_expr)
      args

and pp_block ppf stmts =
  pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf "@ ") pp_stmt ppf stmts

let pp_param ppf prm =
  match prm.Ast.pclass with
  | None -> fprintf ppf "%s: num" prm.Ast.pname
  | Some Ast.Local -> fprintf ppf "%s: local ptr" prm.Ast.pname
  | Some (Ast.Global c) -> fprintf ppf "%s: global ptr<%d>" prm.Ast.pname c

let pp_func ppf f =
  fprintf ppf "@[<v 2>func %s(%a) {@ %a@]@ }" f.Ast.fname
    (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") pp_param)
    f.Ast.params pp_block f.Ast.body

let pp_program ppf p =
  pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf "@ @ ") pp_func ppf
    p.Ast.funcs

let pp_info ppf (i : Partition.info) =
  fprintf ppf "@[<v 2>%s: %d static thread(s)@ " i.Partition.fname
    i.Partition.static_threads;
  fprintf ppf "entry thread";
  List.iter
    (fun s ->
      fprintf ppf "@ spawn on %s" s.Partition.label;
      match s.Partition.hoisted with
      | [] -> ()
      | hs -> fprintf ppf " (hoisting %s)" (String.concat ", " hs))
    i.Partition.spawn_sites;
  fprintf ppf "@]"

(** Coarse-grained alias analysis over the mini IR.

    Each pointer variable belongs to one alias class, seeded by parameter
    annotations and propagated through [Load_ptr] (a pointer loaded out of a
    structure belongs to the structure's class — the "connection" style of
    coarse aliasing the paper assumes is practical to obtain). Numeric
    variables have no class. *)

type env = (string, Ast.alias_class) Hashtbl.t

val infer : Ast.program -> Ast.func -> env
(** Pointer classes of every pointer variable of [f]. Raises
    {!Ast.Illegal} on class conflicts, touches of numeric variables, or
    pointer arguments whose class does not match the callee's parameter. *)

val check : Ast.program -> unit
(** {!Ast.validate} plus {!infer} on every function. *)

val class_of : env -> string -> Ast.alias_class option

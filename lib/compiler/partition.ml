type spawn_site = {
  label : string;
  cls : Ast.alias_class;
  hoisted : string list;
}

type info = {
  fname : string;
  static_threads : int;
  spawn_sites : spawn_site list;
}

module Sset = Set.Make (String)

let analyze p f =
  let classes = Alias.infer p f in
  let sites = ref [] in
  (* [defined]: pointer variables in scope; [avail]: pointers whose objects
     are fetched in the current thread region. *)
  let touch defined avail v =
    match Hashtbl.find_opt classes v with
    | None -> Ast.illegal "%s: %s is not a pointer" f.Ast.fname v
    | Some Ast.Local -> avail (* local data: no thread, direct access *)
    | Some (Ast.Global _ as cls) ->
      if Sset.mem v avail then avail
      else begin
        let hoisted =
          Sset.elements
            (Sset.filter
               (fun w ->
                 w <> v
                 && (not (Sset.mem w avail))
                 && Hashtbl.find_opt classes w = Some cls)
               defined)
        in
        sites := { label = v; cls; hoisted } :: !sites;
        Sset.union avail (Sset.add v (Sset.of_list hoisted))
      end
  in
  let rec stmts defined avail ss =
    List.fold_left
      (fun (defined, avail) s -> stmt defined avail s)
      (defined, avail) ss
  and stmt defined avail = function
    | Ast.Let _ | Ast.Accum _ -> (defined, avail)
    | Ast.Load_field (_, p', _) -> (defined, touch defined avail p')
    | Ast.Load_ptr (dst, p', _) ->
      let avail = touch defined avail p' in
      (* dst is rebound: its old object (if any) is stale. *)
      (Sset.add dst defined, Sset.remove dst avail)
    | Ast.If (_, a, b) ->
      let _, av_a = stmts defined avail a in
      let _, av_b = stmts defined avail b in
      (defined, Sset.inter av_a av_b)
    | Ast.While (_, b) ->
      let _, _ = stmts defined avail b in
      (defined, avail)
    | Ast.Call _ -> (defined, avail)
    | Ast.Conc b ->
      let avails = List.map (fun s -> snd (stmt defined avail s)) b in
      (defined, List.fold_left Sset.inter avail avails)
  in
  let defined0 =
    List.fold_left
      (fun acc prm ->
        if prm.Ast.pclass <> None then Sset.add prm.Ast.pname acc else acc)
      Sset.empty f.Ast.params
  in
  let _ = stmts defined0 Sset.empty f.Ast.body in
  let sites = List.rev !sites in
  { fname = f.Ast.fname; static_threads = 1 + List.length sites; spawn_sites = sites }

let analyze_program p = List.map (analyze p) p.Ast.funcs

let total_static_threads p =
  List.fold_left (fun acc i -> acc + i.static_threads) 0 (analyze_program p)

(** Printers for programs and partition results. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_func : Format.formatter -> Ast.func -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val pp_info : Format.formatter -> Partition.info -> unit

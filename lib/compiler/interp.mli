(** CPS interpreter: executes a validated program against any runtime's
    access interface, realizing at run time the thread structure that
    {!Partition} describes statically. A dereference of an unfetched
    global-class pointer suspends into [A.read] (together with its hoisted
    same-class companions, issued as one batch so they share the runtime's
    aggregation); everything else runs inline in the current thread.

    Fetched objects are cached per activation ("availability"), so repeated
    accesses through the same pointer in one activation cost nothing extra
    — the access-hoisting effect. *)

module Make (A : Dpa.Access.S) : sig
  type compiled

  val compile :
    ?stmt_cost_ns:int -> ?accum_grid:float -> Ast.program -> compiled
  (** Validates (structure and alias classes) and compiles. [stmt_cost_ns]
      (default 40) is the simulated cost charged per executed statement.
      [accum_grid] (default: none, i.e. exact addition in program order)
      snaps every value added to a global accumulator onto the given grid
      (see {!Dpa_util.Det}): as long as the running sum stays within the
      grid's exactness bound, the final accumulator value becomes
      independent of the order work items complete in — the property the
      chaos sweeps assert when faults reshuffle message arrivals. *)

  val item :
    compiled -> entry:string -> args:Value.t list -> A.ctx -> unit
  (** A work item: one call of [entry] with [args]. Pointer arguments must
      be passed as [Value.Ptr]. *)

  val accumulator : compiled -> string -> float
  (** Current value of a global accumulator (0 if never touched). *)

  val accumulators : compiled -> (string * float) list
  val reset : compiled -> unit
end

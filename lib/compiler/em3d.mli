(** EM3D: the classic irregular bipartite-graph kernel (electromagnetic
    wave propagation on an unstructured mesh, from the Split-C/TAM
    benchmark suites contemporary with the paper). E-nodes update from
    H-nodes and vice versa:

      e.value -= sum_k coeff_k * h_k.value

    Each update iteration is a [conc] loop whose iterations chase a node's
    dependency list through the global heap — reads of remote neighbor
    values are exactly the pattern DPA aggregates.

    Graph objects: a node is [{f=[value; coeff_0..coeff_{d-1}];
    ptrs=[neighbor_0..neighbor_{d-1}]}]. The IR program [update_node] walks
    one node's neighbors; its spawn structure has one labeled site (the
    neighbor read). *)

open Dpa_heap

type t = {
  heaps : Heap.cluster;
  e_nodes : Gptr.t array;  (** owned in blocks across nodes *)
  h_nodes : Gptr.t array;
  degree : int;
}

val build :
  nnodes:int ->
  e_per_node:int ->
  h_per_node:int ->
  degree:int ->
  remote_frac:float ->
  seed:int ->
  t
(** Bipartite graph: each E-node depends on [degree] H-nodes (and
    symmetrically in structure, though only E-updates are run here);
    a dependency is remote with probability [remote_frac], matching the
    original benchmark's [-p] parameter. Deterministic. *)

val update_program : degree:int -> Ast.program
(** The IR program for one node update (loop unrolled to [degree], since
    [While] bodies must be touch-free — the compiler's documented
    restriction). Accumulates the checksum of updated values in ["sum"]. *)

val reference_update : t -> float
(** Run one E-update sequentially against the heap (no simulation) and
    return the checksum the distributed run must reproduce. The heap is not
    mutated (the kernel is a gather). *)

val items :
  (module Dpa.Access.S with type ctx = 'c) ->
  t ->
  accum:(float -> unit) ->
  int ->
  ('c -> unit) array
(** Hand-partitioned items (one per owned E-node) for any runtime,
    equivalent to running [update_program] but without interpreter
    overhead; used by the experiment harness. *)

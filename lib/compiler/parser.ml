exception Parse_error of string

(* --- lexer -------------------------------------------------------------- *)

type token =
  | IDENT of string
  | NUM of float
  | KW of string  (* func if else while conc is_nil num local global ptr *)
  | SYM of string  (* punctuation and operators *)
  | EOF

let keywords =
  [ "func"; "if"; "else"; "while"; "conc"; "is_nil"; "num"; "local"; "global"; "ptr" ]

type lexer = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  mutable tok : token;
  mutable tok_line : int;
  mutable tok_col : int;
}

let error lx fmt =
  Printf.ksprintf
    (fun s ->
      raise (Parse_error (Printf.sprintf "line %d, col %d: %s" lx.tok_line lx.tok_col s)))
    fmt

let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance_char lx =
  (match peek_char lx with
  | Some '\n' ->
    lx.line <- lx.line + 1;
    lx.col <- 1
  | Some _ -> lx.col <- lx.col + 1
  | None -> ());
  lx.pos <- lx.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance_char lx;
    skip_ws lx
  | Some '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
    while peek_char lx <> None && peek_char lx <> Some '\n' do
      advance_char lx
    done;
    skip_ws lx
  | _ -> ()

let two_char_syms = [ "->"; "+="; "<="; ">="; "=="; "&&"; "||" ]

let lex_token lx =
  skip_ws lx;
  lx.tok_line <- lx.line;
  lx.tok_col <- lx.col;
  match peek_char lx with
  | None -> EOF
  | Some c when is_ident_start c ->
    let start = lx.pos in
    while (match peek_char lx with Some c -> is_ident_char c | None -> false) do
      advance_char lx
    done;
    let s = String.sub lx.src start (lx.pos - start) in
    if List.mem s keywords then KW s else IDENT s
  | Some c when is_digit c ->
    let start = lx.pos in
    while
      match peek_char lx with
      | Some c -> is_digit c || c = '.' || c = 'e' || c = 'E' || c = '-' && lx.pos > start && (lx.src.[lx.pos - 1] = 'e' || lx.src.[lx.pos - 1] = 'E')
      | None -> false
    do
      advance_char lx
    done;
    let s = String.sub lx.src start (lx.pos - start) in
    (try NUM (float_of_string s) with Failure _ -> error lx "bad number %S" s)
  | Some _ ->
    let two =
      if lx.pos + 1 < String.length lx.src then
        Some (String.sub lx.src lx.pos 2)
      else None
    in
    (match two with
    | Some t when List.mem t two_char_syms ->
      advance_char lx;
      advance_char lx;
      SYM t
    | _ ->
      let c = lx.src.[lx.pos] in
      advance_char lx;
      SYM (String.make 1 c))

let next lx = lx.tok <- lex_token lx

let make_lexer src =
  let lx =
    { src; pos = 0; line = 1; col = 1; tok = EOF; tok_line = 1; tok_col = 1 }
  in
  next lx;
  lx

let show_token = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | NUM f -> Printf.sprintf "number %g" f
  | KW s -> Printf.sprintf "keyword %S" s
  | SYM s -> Printf.sprintf "%S" s
  | EOF -> "end of input"

let expect_sym lx s =
  match lx.tok with
  | SYM t when t = s -> next lx
  | t -> error lx "expected %S, found %s" s (show_token t)

let expect_kw lx s =
  match lx.tok with
  | KW t when t = s -> next lx
  | t -> error lx "expected %S, found %s" s (show_token t)

let expect_ident lx =
  match lx.tok with
  | IDENT s ->
    next lx;
    s
  | t -> error lx "expected an identifier, found %s" (show_token t)

let expect_int lx =
  match lx.tok with
  | NUM f when Float.is_integer f ->
    next lx;
    int_of_float f
  | t -> error lx "expected an integer, found %s" (show_token t)

(* --- expressions --------------------------------------------------------- *)

let rec parse_or lx =
  let a = parse_and lx in
  match lx.tok with
  | SYM "||" ->
    next lx;
    Ast.Binop (Ast.Or, a, parse_or lx)
  | _ -> a

and parse_and lx =
  let a = parse_cmp lx in
  match lx.tok with
  | SYM "&&" ->
    next lx;
    Ast.Binop (Ast.And, a, parse_and lx)
  | _ -> a

and parse_cmp lx =
  let a = parse_add lx in
  match lx.tok with
  | SYM "<" ->
    next lx;
    Ast.Binop (Ast.Lt, a, parse_add lx)
  | SYM "<=" ->
    next lx;
    Ast.Binop (Ast.Le, a, parse_add lx)
  | SYM "==" ->
    next lx;
    Ast.Binop (Ast.Eq, a, parse_add lx)
  | _ -> a

and parse_add lx =
  let rec go a =
    match lx.tok with
    | SYM "+" ->
      next lx;
      go (Ast.Binop (Ast.Add, a, parse_mul lx))
    | SYM "-" ->
      next lx;
      go (Ast.Binop (Ast.Sub, a, parse_mul lx))
    | _ -> a
  in
  go (parse_mul lx)

and parse_mul lx =
  let rec go a =
    match lx.tok with
    | SYM "*" ->
      next lx;
      go (Ast.Binop (Ast.Mul, a, parse_unary lx))
    | SYM "/" ->
      next lx;
      go (Ast.Binop (Ast.Div, a, parse_unary lx))
    | _ -> a
  in
  go (parse_unary lx)

and parse_unary lx =
  match lx.tok with
  | SYM "-" ->
    next lx;
    Ast.Unop (Ast.Neg, parse_unary lx)
  | SYM "!" ->
    next lx;
    Ast.Unop (Ast.Not, parse_unary lx)
  | _ -> parse_primary lx

and parse_primary lx =
  match lx.tok with
  | NUM f ->
    next lx;
    Ast.Num f
  | IDENT v ->
    next lx;
    Ast.Var v
  | KW "is_nil" ->
    next lx;
    expect_sym lx "(";
    let e = parse_or lx in
    expect_sym lx ")";
    Ast.Is_nil e
  | SYM "(" ->
    next lx;
    let e = parse_or lx in
    expect_sym lx ")";
    e
  | t -> error lx "expected an expression, found %s" (show_token t)

(* --- statements ---------------------------------------------------------- *)

let rec parse_block lx =
  expect_sym lx "{";
  let rec go acc =
    match lx.tok with
    | SYM "}" ->
      next lx;
      List.rev acc
    | EOF -> error lx "unterminated block"
    | _ -> go (parse_stmt lx :: acc)
  in
  go []

and parse_stmt lx =
  match lx.tok with
  | KW "if" ->
    next lx;
    let cond = parse_or lx in
    let then_b = parse_block lx in
    let else_b =
      match lx.tok with
      | KW "else" ->
        next lx;
        parse_block lx
      | _ -> []
    in
    Ast.If (cond, then_b, else_b)
  | KW "while" ->
    next lx;
    let cond = parse_or lx in
    Ast.While (cond, parse_block lx)
  | KW "conc" ->
    next lx;
    Ast.Conc (parse_block lx)
  | IDENT name -> (
    next lx;
    match lx.tok with
    | SYM "+=" ->
      next lx;
      let e = parse_or lx in
      expect_sym lx ";";
      Ast.Accum (name, e)
    | SYM "(" ->
      next lx;
      let rec args acc =
        match lx.tok with
        | SYM ")" ->
          next lx;
          List.rev acc
        | _ ->
          let e = parse_or lx in
          (match lx.tok with
          | SYM "," ->
            next lx;
            args (e :: acc)
          | SYM ")" ->
            next lx;
            List.rev (e :: acc)
          | t -> error lx "expected ',' or ')', found %s" (show_token t))
      in
      let a = args [] in
      expect_sym lx ";";
      Ast.Call (name, a)
    | SYM "=" -> (
      next lx;
      (* Either a load through a pointer or a plain expression. *)
      match lx.tok with
      | IDENT p ->
        next lx;
        (match lx.tok with
        | SYM "->" -> (
          next lx;
          match lx.tok with
          | IDENT "f" ->
            next lx;
            expect_sym lx "[";
            let i = expect_int lx in
            expect_sym lx "]";
            expect_sym lx ";";
            Ast.Load_field (name, p, i)
          | KW "ptr" ->
            next lx;
            expect_sym lx "[";
            let i = expect_int lx in
            expect_sym lx "]";
            expect_sym lx ";";
            Ast.Load_ptr (name, p, i)
          | t -> error lx "expected 'f' or 'ptr' after '->', found %s" (show_token t))
        | _ ->
          (* Re-parse as an expression that started with the variable. *)
          let e = continue_expr lx (Ast.Var p) in
          expect_sym lx ";";
          Ast.Let (name, e))
      | _ ->
        let e = parse_or lx in
        expect_sym lx ";";
        Ast.Let (name, e))
    | t -> error lx "expected '=', '+=' or '(', found %s" (show_token t))
  | t -> error lx "expected a statement, found %s" (show_token t)

(* Continue an expression whose first primary (a variable) was already
   consumed: climb back through the precedence levels. *)
and continue_expr lx seed =
  let mul =
    let rec go a =
      match lx.tok with
      | SYM "*" ->
        next lx;
        go (Ast.Binop (Ast.Mul, a, parse_unary lx))
      | SYM "/" ->
        next lx;
        go (Ast.Binop (Ast.Div, a, parse_unary lx))
      | _ -> a
    in
    go seed
  in
  let add =
    let rec go a =
      match lx.tok with
      | SYM "+" ->
        next lx;
        go (Ast.Binop (Ast.Add, a, parse_mul lx))
      | SYM "-" ->
        next lx;
        go (Ast.Binop (Ast.Sub, a, parse_mul lx))
      | _ -> a
    in
    go mul
  in
  let cmp =
    match lx.tok with
    | SYM "<" ->
      next lx;
      Ast.Binop (Ast.Lt, add, parse_add lx)
    | SYM "<=" ->
      next lx;
      Ast.Binop (Ast.Le, add, parse_add lx)
    | SYM "==" ->
      next lx;
      Ast.Binop (Ast.Eq, add, parse_add lx)
    | _ -> add
  in
  let conj =
    match lx.tok with
    | SYM "&&" ->
      next lx;
      Ast.Binop (Ast.And, cmp, parse_and lx)
    | _ -> cmp
  in
  match lx.tok with
  | SYM "||" ->
    next lx;
    Ast.Binop (Ast.Or, conj, parse_or lx)
  | _ -> conj

(* --- functions and programs --------------------------------------------- *)

let parse_param lx =
  let name = expect_ident lx in
  expect_sym lx ":";
  match lx.tok with
  | KW "num" ->
    next lx;
    { Ast.pname = name; pclass = None }
  | KW "local" ->
    next lx;
    expect_kw lx "ptr";
    { Ast.pname = name; pclass = Some Ast.Local }
  | KW "global" ->
    next lx;
    expect_kw lx "ptr";
    expect_sym lx "<";
    let c = expect_int lx in
    expect_sym lx ">";
    { Ast.pname = name; pclass = Some (Ast.Global c) }
  | t -> error lx "expected a parameter type, found %s" (show_token t)

let parse_func lx =
  expect_kw lx "func";
  let name = expect_ident lx in
  expect_sym lx "(";
  let rec params acc =
    match lx.tok with
    | SYM ")" ->
      next lx;
      List.rev acc
    | _ ->
      let p = parse_param lx in
      (match lx.tok with
      | SYM "," ->
        next lx;
        params (p :: acc)
      | SYM ")" ->
        next lx;
        List.rev (p :: acc)
      | t -> error lx "expected ',' or ')', found %s" (show_token t))
  in
  let ps = params [] in
  let body = parse_block lx in
  { Ast.fname = name; params = ps; body }

let program src =
  let lx = make_lexer src in
  let rec go acc =
    match lx.tok with
    | EOF -> List.rev acc
    | KW "func" -> go (parse_func lx :: acc)
    | t -> error lx "expected 'func', found %s" (show_token t)
  in
  let p = { Ast.funcs = go [] } in
  Alias.check p;
  p

let expr src =
  let lx = make_lexer src in
  let e = parse_or lx in
  (match lx.tok with
  | EOF -> ()
  | t -> error lx "trailing input: %s" (show_token t));
  e

(** Canonical example programs (the paper's §3.4 flavor) and builders for
    the distributed structures they traverse. *)

open Dpa_heap

val list_sum : Ast.program
(** [sum_list(p)]: walk a singly linked list of cells
    [{f=\[value\]; ptrs=\[next\]}], accumulating [sum]. *)

val tree_sum : Ast.program
(** [sum_tree(t)]: walk a binary tree of cells
    [{f=\[value\]; ptrs=\[left; right\]}], accumulating [sum]. *)

val pair_sum : Ast.program
(** [sum_pair(a, b)]: reads fields of two same-class pointers — the minimal
    access-hoisting example (both fetched at one alignment point). *)

val build_list :
  Heap.cluster -> length:int -> value:(int -> float) -> owner:(int -> int) ->
  Gptr.t
(** Linked list, element [i] on node [owner i]; returns the head (element
    0). The list ends with a nil next pointer. *)

val build_tree :
  Heap.cluster -> depth:int -> value:(int -> float) -> owner:(int -> int) ->
  Gptr.t
(** Complete binary tree with [2^depth - 1] cells, heap-indexed 1..;
    cell [i] lives on node [owner i]. Returns the root. *)

(** Parser for the mini IR's concrete syntax — the inverse of {!Pretty}.

    {v
    func sum_list(p: global ptr<0>) {
      if is_nil(p) {
      } else {
        v = p->f[0];
        sum += v;
        q = p->ptr[0];
        sum_list(q);
      }
    }
    v}

    Statements: [x = expr;], [x = p->f[i];], [x = p->ptr[i];],
    [acc += expr;], [if e { } else { }], [while e { }], [conc { }],
    [f(args);]. Parameter types: [num], [local ptr], [global ptr<class>].
    Expressions use the usual precedence ([||] < [&&] < comparisons <
    [+ -] < [* /] < unary), plus [is_nil(e)]. Comments run from [//] to end
    of line. *)

exception Parse_error of string
(** Carries a message with line/column. *)

val program : string -> Ast.program
(** Parse and {!Alias.check} a whole program. *)

val expr : string -> Ast.expr
(** Parse a single expression (for tests and tooling). *)

open Dpa_heap
open Dpa_util

type t = {
  heaps : Heap.cluster;
  e_nodes : Gptr.t array;
  h_nodes : Gptr.t array;
  degree : int;
}

let build ~nnodes ~e_per_node ~h_per_node ~degree ~remote_frac ~seed =
  if degree <= 0 then invalid_arg "Em3d.build: degree must be positive";
  if remote_frac < 0. || remote_frac > 1. then
    invalid_arg "Em3d.build: remote_frac must be in [0,1]";
  let rng = Rng.create ~seed in
  let heaps = Heap.cluster ~nnodes in
  (* Allocate H-nodes first so E-node dependency pointers can be filled at
     allocation time (the graph is bipartite, so no cycles to tie). *)
  let h_nodes =
    Array.init (nnodes * h_per_node) (fun i ->
        let owner = i / h_per_node in
        Heap.alloc heaps.(owner)
          ~floats:[| Rng.uniform rng |]
          ~ptrs:[||])
  in
  let pick_neighbor ~my_node =
    let owner =
      if nnodes > 1 && Rng.uniform rng < remote_frac then begin
        (* A remote owner, uniform over the others. *)
        let o = Rng.int rng (nnodes - 1) in
        if o >= my_node then o + 1 else o
      end
      else my_node
    in
    h_nodes.((owner * h_per_node) + Rng.int rng h_per_node)
  in
  let e_nodes =
    Array.init (nnodes * e_per_node) (fun i ->
        let owner = i / e_per_node in
        let floats = Array.make (1 + degree) 0. in
        floats.(0) <- Rng.uniform rng;
        for k = 1 to degree do
          floats.(k) <- Rng.uniform rng -. 0.5
        done;
        let ptrs = Array.init degree (fun _ -> pick_neighbor ~my_node:owner) in
        Heap.alloc heaps.(owner) ~floats ~ptrs)
  in
  { heaps; e_nodes; h_nodes; degree }

let update_program ~degree =
  (* new_value = value - sum_k coeff_k * neighbor_k.value; the loop over
     neighbors is unrolled (While bodies must be touch-free). *)
  let body =
    [ Ast.Load_field ("v", "n", 0) ]
    @ List.concat
        (List.init degree (fun k ->
             [
               Ast.Load_ptr ("dep", "n", k);
               Ast.Load_field ("dv", "dep", 0);
               Ast.Load_field ("c", "n", k + 1);
               Ast.Let
                 ( "v",
                   Ast.Binop
                     ( Ast.Sub,
                       Ast.Var "v",
                       Ast.Binop (Ast.Mul, Ast.Var "c", Ast.Var "dv") ) );
             ]))
    @ [ Ast.Accum ("sum", Ast.Var "v") ]
  in
  {
    Ast.funcs =
      [
        {
          Ast.fname = "update_node";
          params = [ { Ast.pname = "n"; pclass = Some (Ast.Global 0) } ];
          body;
        };
      ];
  }

let node_update heaps degree ptr =
  let view = Heap.deref heaps ptr in
  let f = view.Obj_repr.floats in
  let v = ref f.(0) in
  for k = 0 to degree - 1 do
    let dep = Heap.deref heaps view.Obj_repr.ptrs.(k) in
    v := !v -. (f.(k + 1) *. dep.Obj_repr.floats.(0))
  done;
  !v

let reference_update t =
  Array.fold_left
    (fun acc ptr -> acc +. node_update t.heaps t.degree ptr)
    0. t.e_nodes

let items (type c) (module A : Dpa.Access.S with type ctx = c) t ~accum node =
  let degree = t.degree in
  let nnodes = Array.length t.heaps in
  let per_node = Array.length t.e_nodes / nnodes in
  Array.init per_node (fun i ->
      let ptr = t.e_nodes.((node * per_node) + i) in
      fun (ctx : c) ->
        A.read ctx ptr (fun ctx view ->
            let heaps = A.heaps ctx in
            let v = ref (Heap.view_float heaps view 0) in
            let remaining = ref degree in
            for k = 0 to Heap.view_nptrs heaps view - 1 do
              let dep = Heap.view_ptr heaps view k in
              A.read ctx dep (fun ctx dview ->
                  A.charge ctx 150;
                  let heaps = A.heaps ctx in
                  v :=
                    !v
                    -. (Heap.view_float heaps view (k + 1)
                       *. Heap.view_float heaps dview 0);
                  decr remaining;
                  if !remaining = 0 then accum !v)
            done))

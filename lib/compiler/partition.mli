(** The thread-partitioning analysis of the paper's §4.

    Walking each function body in order, a dereference of a global-class
    pointer whose object has not yet been fetched ends the current thread:
    a new non-blocking thread starts, labeled with that pointer, and all
    other in-scope pointers of the same alias class are hoisted into the
    same alignment point (fetched together). Dereferences of already
    available pointers, and everything that only depends on local data,
    stay in the current thread (the transitive expansion that keeps threads
    non-blocking). [If] branches are analyzed independently; availability
    after the [If] is the intersection of the branches'. *)

type spawn_site = {
  label : string;  (** the pointer variable the thread waits on *)
  cls : Ast.alias_class;
  hoisted : string list;  (** same-class pointers fetched together *)
}

type info = {
  fname : string;
  static_threads : int;  (** 1 (entry) + number of spawn sites *)
  spawn_sites : spawn_site list;  (** in program order *)
}

val analyze : Ast.program -> Ast.func -> info
val analyze_program : Ast.program -> info list
val total_static_threads : Ast.program -> int

open Dpa_heap

module Make (A : Dpa.Access.S) = struct
  type compiled = {
    program : Ast.program;
    classes : (string, Alias.env) Hashtbl.t;  (* per function *)
    accums : (string, float ref) Hashtbl.t;
    stmt_cost_ns : int;
    accum_grid : float option;
  }

  let compile ?(stmt_cost_ns = 40) ?accum_grid program =
    Alias.check program;
    let classes = Hashtbl.create 8 in
    List.iter
      (fun f -> Hashtbl.replace classes f.Ast.fname (Alias.infer program f))
      program.Ast.funcs;
    { program; classes; accums = Hashtbl.create 8; stmt_cost_ns; accum_grid }

  let accumulator c name =
    match Hashtbl.find_opt c.accums name with Some r -> !r | None -> 0.

  let accumulators c =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) c.accums []
    |> List.sort compare

  let reset c = Hashtbl.reset c.accums

  let bump c name v =
    let v =
      match c.accum_grid with
      | None -> v
      | Some grid -> Dpa_util.Det.quantize ~grid v
    in
    match Hashtbl.find_opt c.accums name with
    | Some r -> r := !r +. v
    | None -> Hashtbl.replace c.accums name (ref v)

  (* One activation of a function: values and fetched objects. *)
  type act = {
    values : (string, Value.t) Hashtbl.t;
    views : (string, Heap.view) Hashtbl.t;
    classes : Alias.env;
  }

  let lookup act v =
    match Hashtbl.find_opt act.values v with
    | Some x -> x
    | None -> raise (Value.Eval_error ("unbound variable " ^ v))

  let rec eval act = function
    | Ast.Num f -> Value.Num f
    | Ast.Var v -> lookup act v
    | Ast.Unop (Ast.Neg, e) -> Value.Num (-.Value.num (eval act e))
    | Ast.Unop (Ast.Not, e) -> Value.Bool (not (Value.truthy (eval act e)))
    | Ast.Is_nil e -> Value.Bool (Gptr.is_nil (Value.ptr (eval act e)))
    | Ast.Binop (op, a, b) -> (
      let va = eval act a in
      match op with
      | Ast.And -> Value.Bool (Value.truthy va && Value.truthy (eval act b))
      | Ast.Or -> Value.Bool (Value.truthy va || Value.truthy (eval act b))
      | _ -> (
        let x = Value.num va and y = Value.num (eval act b) in
        match op with
        | Ast.Add -> Value.Num (x +. y)
        | Ast.Sub -> Value.Num (x -. y)
        | Ast.Mul -> Value.Num (x *. y)
        | Ast.Div -> Value.Num (x /. y)
        | Ast.Lt -> Value.Bool (x < y)
        | Ast.Le -> Value.Bool (x <= y)
        | Ast.Eq -> Value.Bool (x = y)
        | Ast.And | Ast.Or -> assert false))

  (* Fetch a batch of pointers and continue once all views are in. Reads
     are issued together, so they land in the same aggregation window. *)
  let read_batch ctx ptrs k =
    match ptrs with
    | [] -> k ctx
    | _ ->
      let remaining = ref (List.length ptrs) in
      let last_ctx = ref ctx in
      List.iter
        (fun (p, store) ->
          A.read ctx p (fun ctx view ->
              store view;
              last_ctx := ctx;
              decr remaining;
              if !remaining = 0 then k !last_ctx))
        ptrs

  (* The alignment point: make [v]'s object available, hoisting every
     in-scope, same-class, unfetched, non-nil pointer into the same batch. *)
  let acquire act ctx v k =
    if Hashtbl.mem act.views v then k ctx
    else begin
      let cls = Hashtbl.find_opt act.classes v in
      let companions =
        match cls with
        | Some (Ast.Global _ as g) ->
          Hashtbl.fold
            (fun w wc acc ->
              if
                w <> v && wc = g
                && (not (Hashtbl.mem act.views w))
                && match Hashtbl.find_opt act.values w with
                   | Some (Value.Ptr p) -> not (Gptr.is_nil p)
                   | _ -> false
              then w :: acc
              else acc)
            act.classes []
          |> List.sort compare
        | _ -> []
      in
      let batch =
        List.map
          (fun w ->
            (Value.ptr (lookup act w), fun view -> Hashtbl.replace act.views w view))
          (v :: companions)
      in
      read_batch ctx batch k
    end

  let rec exec c act ctx stmts (k : A.ctx -> unit) =
    match stmts with
    | [] -> k ctx
    | s :: rest ->
      A.charge ctx c.stmt_cost_ns;
      let continue ctx = exec c act ctx rest k in
      (match s with
      | Ast.Let (v, e) ->
        Hashtbl.replace act.values v (eval act e);
        continue ctx
      | Ast.Accum (name, e) ->
        bump c name (Value.num (eval act e));
        continue ctx
      | Ast.Load_field (dst, p, i) ->
        acquire act ctx p (fun ctx ->
            let view = Hashtbl.find act.views p in
            let heaps = A.heaps ctx in
            if i < 0 || i >= Heap.view_nfloats heaps view then
              raise (Value.Eval_error "float field out of range");
            Hashtbl.replace act.values dst
              (Value.Num (Heap.view_float heaps view i));
            continue ctx)
      | Ast.Load_ptr (dst, p, i) ->
        acquire act ctx p (fun ctx ->
            let view = Hashtbl.find act.views p in
            let heaps = A.heaps ctx in
            if i < 0 || i >= Heap.view_nptrs heaps view then
              raise (Value.Eval_error "pointer field out of range");
            Hashtbl.replace act.values dst
              (Value.Ptr (Heap.view_ptr heaps view i));
            Hashtbl.remove act.views dst;
            continue ctx)
      | Ast.If (e, a, b) ->
        if Value.truthy (eval act e) then exec c act ctx a continue
        else exec c act ctx b continue
      | Ast.While (e, body) ->
        let rec loop ctx =
          A.charge ctx c.stmt_cost_ns;
          if Value.truthy (eval act e) then exec c act ctx body loop
          else continue ctx
        in
        loop ctx
      | Ast.Call (g, args) ->
        let vals = List.map (eval act) args in
        call c ctx g vals continue
      | Ast.Conc body ->
        (match body with
        | [] -> continue ctx
        | _ ->
          let remaining = ref (List.length body) in
          let join ctx =
            decr remaining;
            if !remaining = 0 then continue ctx
          in
          List.iter (fun s -> exec c act ctx [ s ] join) body))

  and call c ctx fname args k =
    let f = Ast.func c.program fname in
    let act =
      {
        values = Hashtbl.create 8;
        views = Hashtbl.create 4;
        classes = Hashtbl.find c.classes fname;
      }
    in
    (try
       List.iter2
         (fun prm v -> Hashtbl.replace act.values prm.Ast.pname v)
         f.Ast.params args
     with Invalid_argument _ ->
       raise (Value.Eval_error ("arity mismatch calling " ^ fname)));
    exec c act ctx f.Ast.body k

  let item c ~entry ~args ctx = call c ctx entry args (fun _ctx -> ())
end

open Dpa_heap

let gp = Some (Ast.Global 0)

let list_sum =
  {
    Ast.funcs =
      [
        {
          Ast.fname = "sum_list";
          params = [ { Ast.pname = "p"; pclass = gp } ];
          body =
            [
              Ast.If
                ( Ast.Is_nil (Ast.Var "p"),
                  [],
                  [
                    Ast.Load_field ("v", "p", 0);
                    Ast.Accum ("sum", Ast.Var "v");
                    Ast.Load_ptr ("q", "p", 0);
                    Ast.Call ("sum_list", [ Ast.Var "q" ]);
                  ] );
            ];
        };
      ];
  }

let tree_sum =
  {
    Ast.funcs =
      [
        {
          Ast.fname = "sum_tree";
          params = [ { Ast.pname = "t"; pclass = gp } ];
          body =
            [
              Ast.If
                ( Ast.Is_nil (Ast.Var "t"),
                  [],
                  [
                    Ast.Load_field ("v", "t", 0);
                    Ast.Accum ("sum", Ast.Var "v");
                    Ast.Load_ptr ("l", "t", 0);
                    Ast.Load_ptr ("r", "t", 1);
                    Ast.Conc
                      [
                        Ast.Call ("sum_tree", [ Ast.Var "l" ]);
                        Ast.Call ("sum_tree", [ Ast.Var "r" ]);
                      ];
                  ] );
            ];
        };
      ];
  }

let pair_sum =
  {
    Ast.funcs =
      [
        {
          Ast.fname = "sum_pair";
          params =
            [
              { Ast.pname = "a"; pclass = gp };
              { Ast.pname = "b"; pclass = gp };
            ];
          body =
            [
              Ast.Load_field ("x", "a", 0);
              Ast.Load_field ("y", "b", 0);
              Ast.Accum ("sum", Ast.Binop (Ast.Add, Ast.Var "x", Ast.Var "y"));
            ];
        };
      ];
  }

let build_list heaps ~length ~value ~owner =
  let next = ref Gptr.nil in
  for i = length - 1 downto 0 do
    next :=
      Heap.alloc heaps.(owner i) ~floats:[| value i |] ~ptrs:[| !next |]
  done;
  !next

let build_tree heaps ~depth ~value ~owner =
  if depth <= 0 then invalid_arg "Programs.build_tree: depth must be positive";
  let rec alloc i level =
    if level >= depth then Gptr.nil
    else
      let l = alloc ((2 * i) + 1) (level + 1) in
      let r = alloc ((2 * i) + 2) (level + 1) in
      Heap.alloc heaps.(owner i) ~floats:[| value i |] ~ptrs:[| l; r |]
  in
  alloc 0 0

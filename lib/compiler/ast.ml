type alias_class = Local | Global of int

type binop = Add | Sub | Mul | Div | Lt | Le | Eq | And | Or

type unop = Neg | Not

type expr =
  | Num of float
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Is_nil of expr

type stmt =
  | Let of string * expr
  | Load_field of string * string * int
  | Load_ptr of string * string * int
  | Accum of string * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Call of string * expr list
  | Conc of stmt list

type param = { pname : string; pclass : alias_class option }

type func = { fname : string; params : param list; body : stmt list }

type program = { funcs : func list }

exception Illegal of string

let illegal fmt = Printf.ksprintf (fun s -> raise (Illegal s)) fmt

let func p name =
  match List.find_opt (fun f -> f.fname = name) p.funcs with
  | Some f -> f
  | None -> illegal "unknown function %s" name

let rec has_touch stmts =
  List.exists
    (function
      | Load_field _ | Load_ptr _ -> true
      | If (_, a, b) -> has_touch a || has_touch b
      | While (_, b) -> has_touch b
      | Conc b -> has_touch b
      | Call _ ->
        (* Conservatively a touch: the callee may dereference. The paper's
           function promotion treats calls as alignment points too. *)
        true
      | Let _ | Accum _ -> false)
    stmts

let validate p =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun f ->
      if Hashtbl.mem seen f.fname then illegal "duplicate function %s" f.fname;
      Hashtbl.replace seen f.fname ())
    p.funcs;
  let rec check_stmts f stmts =
    List.iter
      (fun s ->
        match s with
        | Let _ | Load_field _ | Load_ptr _ | Accum _ -> ()
        | If (_, a, b) ->
          check_stmts f a;
          check_stmts f b
        | While (_, body) ->
          if has_touch body then
            illegal "%s: While body contains a touch; use a recursive function"
              f.fname;
          check_stmts f body
        | Call (g, args) ->
          let callee = func p g in
          if List.length args <> List.length callee.params then
            illegal "%s: call to %s with wrong arity" f.fname g
        | Conc b -> check_stmts f b)
      stmts
  in
  List.iter (fun f -> check_stmts f f.body) p.funcs

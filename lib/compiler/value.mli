(** Runtime values of the mini IR. *)

type t = Num of float | Bool of bool | Ptr of Dpa_heap.Gptr.t

exception Eval_error of string

val num : t -> float
val truthy : t -> bool
val ptr : t -> Dpa_heap.Gptr.t
val pp : Format.formatter -> t -> unit

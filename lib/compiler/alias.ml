type env = (string, Ast.alias_class) Hashtbl.t

let class_of env v = Hashtbl.find_opt env v

let set env f v cls =
  match Hashtbl.find_opt env v with
  | None -> Hashtbl.replace env v cls
  | Some c when c = cls -> ()
  | Some _ ->
    Ast.illegal "%s: variable %s assigned conflicting alias classes"
      f.Ast.fname v

let ptr_class env f v =
  match Hashtbl.find_opt env v with
  | Some c -> c
  | None -> Ast.illegal "%s: %s dereferenced but is not a pointer" f.Ast.fname v

let infer p f =
  let env : env = Hashtbl.create 8 in
  List.iter
    (fun prm ->
      match prm.Ast.pclass with
      | Some c -> Hashtbl.replace env prm.Ast.pname c
      | None -> ())
    f.Ast.params;
  let rec stmts ss = List.iter stmt ss
  and stmt = function
    | Ast.Let (v, _) ->
      if Hashtbl.mem env v then
        Ast.illegal "%s: %s used as both pointer and number" f.Ast.fname v
    | Ast.Load_field (_, ptr, _) -> ignore (ptr_class env f ptr)
    | Ast.Load_ptr (dst, ptr, _) ->
      let c = ptr_class env f ptr in
      set env f dst c
    | Ast.Accum _ -> ()
    | Ast.If (_, a, b) ->
      stmts a;
      stmts b
    | Ast.While (_, b) -> stmts b
    | Ast.Conc b -> stmts b
    | Ast.Call (g, args) ->
      let callee = Ast.func p g in
      List.iter2
        (fun arg prm ->
          match (arg, prm.Ast.pclass) with
          | Ast.Var v, Some want when Hashtbl.mem env v ->
            if ptr_class env f v <> want then
              Ast.illegal "%s: pointer argument %s has wrong class for %s"
                f.Ast.fname v g
          | Ast.Var _, Some _ ->
            Ast.illegal
              "%s: call to %s passes a non-pointer where a pointer is expected"
              f.Ast.fname g
          | _, Some _ ->
            Ast.illegal "%s: pointer arguments to %s must be variables"
              f.Ast.fname g
          | _, None -> ())
        args callee.Ast.params
  in
  stmts f.Ast.body;
  env

let check p =
  Ast.validate p;
  List.iter (fun f -> ignore (infer p f)) p.Ast.funcs

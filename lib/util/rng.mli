(** Deterministic pseudo-random number generator (splitmix64).

    Every experiment in this repository must be reproducible bit-for-bit, so
    all stochastic inputs (particle positions, masses, velocities) are drawn
    from this generator rather than [Stdlib.Random]. *)

type t

val create : seed:int -> t
(** [create ~seed] makes an independent stream. Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives a new independent stream from [t], advancing [t]. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

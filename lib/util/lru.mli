(** LRU cache, parameterized by a hashtable implementation for its keys.
    Used by the software-caching baseline runtime. A capacity of 0 gives a
    cache that never holds anything: every lookup misses, and every
    {!Make.add} counts as an immediate eviction (admit-then-evict), so the
    eviction counter stays consistent with the positive-capacity
    accounting ([evictions = insertions - entries retained]). *)

module Make (H : Hashtbl.S) : sig
  type 'a t

  val create : capacity:int -> 'a t
  val capacity : 'a t -> int
  val size : 'a t -> int

  val find : 'a t -> H.key -> 'a option
  (** [find t k] returns the cached value and marks it most-recently used. *)

  val add : 'a t -> H.key -> 'a -> unit
  (** Insert as most-recently used, evicting the least-recently-used entry
      if the cache is full. Replaces any existing binding for the key. *)

  val mem : 'a t -> H.key -> bool
  val evictions : 'a t -> int
  val clear : 'a t -> unit
end

(** CRC-32 (IEEE 802.3), the checksum behind the integrity fault classes.

    Both the wire framing ({!Dpa_msg.Wire}) and the write-ahead log
    ({!Dpa.Wal}) fence their payloads with this digest. CRC-32 detects
    {e every} single-bit error regardless of message length (the generator
    polynomial has more than one term), which is exactly the guarantee the
    deterministic corruption fault class needs: an injected bit-flip is
    never silently accepted. *)

val digest : Bytes.t -> int
(** Digest of the whole buffer, as a non-negative 32-bit value. *)

val digest_sub : Bytes.t -> pos:int -> len:int -> int
(** Digest of [len] bytes starting at [pos]. [Invalid_argument] when the
    range falls outside the buffer. *)

let grid ~bits = Float.ldexp 1. bits
let quantize ~grid v = Float.round (v *. grid) /. grid

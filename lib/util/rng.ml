type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_state s = Int64.add s golden

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- next_state t.state;
  mix t.state

let split t =
  let seed = int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the conversion to a 63-bit int stays non-negative. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let uniform t =
  (* 53 random bits into [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits *. 0x1p-53

let float t bound = uniform t *. bound

let gaussian t =
  let rec draw () =
    let u = uniform t in
    if u > 0. then u else draw ()
  in
  let u1 = draw () in
  let u2 = uniform t in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

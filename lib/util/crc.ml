(* Table-driven CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
   The minimum Hamming distance of this code is >= 2 at any length, so a
   single flipped bit anywhere in the covered range always changes the
   digest — the property the integrity layer's detection guarantee rests
   on (and that test/test_integrity.ml checks exhaustively). *)

let poly = 0xEDB88320

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then poly lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc b =
  let t = Lazy.force table in
  t.((crc lxor b) land 0xFF) lxor (crc lsr 8)

let digest_sub bytes ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length bytes then
    invalid_arg "Crc.digest_sub: range out of bounds";
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    crc := update !crc (Char.code (Bytes.unsafe_get bytes i))
  done;
  !crc lxor 0xFFFFFFFF

let digest bytes = digest_sub bytes ~pos:0 ~len:(Bytes.length bytes)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length t = t.len

let grow t x =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let ndata = Array.make ncap x in
  Array.blit t.data 0 ndata 0 t.len;
  t.data <- ndata

let add t x =
  if t.len = Array.length t.data then grow t x;
  let i = t.len in
  t.data.(i) <- x;
  t.len <- t.len + 1;
  i

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Dynarray: index out of bounds"

let get t i = check t i; t.data.(i)

let set t i x = check t i; t.data.(i) <- x

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let clear t =
  t.data <- [||];
  t.len <- 0

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (t.data.(i) :: acc) in
  loop (t.len - 1) []

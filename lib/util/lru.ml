module Make (H : Hashtbl.S) = struct
  type 'a entry = {
    key : H.key;
    mutable value : 'a;
    mutable prev : 'a entry option;  (* toward most-recently used *)
    mutable next : 'a entry option;  (* toward least-recently used *)
  }

  type 'a t = {
    capacity : int;
    table : 'a entry H.t;
    mutable head : 'a entry option;  (* most-recently used *)
    mutable tail : 'a entry option;  (* least-recently used *)
    mutable evictions : int;
  }

  let create ~capacity =
    if capacity < 0 then invalid_arg "Lru.create: negative capacity";
    {
      capacity;
      table = H.create (max 16 capacity);
      head = None;
      tail = None;
      evictions = 0;
    }

  let capacity t = t.capacity
  let size t = H.length t.table

  let unlink t e =
    (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
    (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
    e.prev <- None;
    e.next <- None

  let push_front t e =
    e.next <- t.head;
    e.prev <- None;
    (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
    t.head <- Some e

  let touch t e =
    match t.head with
    | Some h when h == e -> ()
    | _ ->
      unlink t e;
      push_front t e

  let find t k =
    match H.find_opt t.table k with
    | None -> None
    | Some e ->
      touch t e;
      Some e.value

  let mem t k = H.mem t.table k

  let evict_lru t =
    match t.tail with
    | None -> ()
    | Some e ->
      unlink t e;
      H.remove t.table e.key;
      t.evictions <- t.evictions + 1

  let add t k v =
    (* Capacity 0: the entry is admitted and immediately evicted — nothing
       is linked into the list or the table (head/tail stay [None], [size]
       stays 0), but the eviction IS counted, so [evictions] still equals
       insertions minus retained entries. (It used to be a silent no-op,
       which left eviction accounting inconsistent with every positive
       capacity.) *)
    if t.capacity = 0 then t.evictions <- t.evictions + 1
    else
      match H.find_opt t.table k with
      | Some e ->
        e.value <- v;
        touch t e
      | None ->
        if H.length t.table >= t.capacity then evict_lru t;
        let e = { key = k; value = v; prev = None; next = None } in
        H.replace t.table k e;
        push_front t e

  let evictions t = t.evictions

  let clear t =
    H.reset t.table;
    t.head <- None;
    t.tail <- None
end

(** Growable arrays (OCaml 5.1 predates [Stdlib.Dynarray]). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val add : 'a t -> 'a -> int
(** [add t x] appends [x] and returns its index. *)

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val clear : 'a t -> unit
val to_list : 'a t -> 'a list

(** Fixed-point snapping for order-independent floating-point reductions.

    Summing doubles is not associative, so any reduction whose operand
    order depends on message timing (remote accumulates, force sums,
    global checksums) produces timing-dependent low bits — fatal for the
    chaos sweeps, which assert results bit-identical under arbitrary fault
    schedules. The cure is to snap every contribution to a power-of-two
    grid before adding it: sums of grid multiples are exact in a double as
    long as the running total stays below 2^(52 - bits), and exact
    addition is order-independent.

    Pick [bits] so that the largest partial sum is safely below
    [2^(52 - bits)] while the snap error [2^-(bits+1)] per term stays far
    inside the workload's accuracy tolerance. BH forces use 42 bits
    (sums < 2^10); the FMM upward pass and the EM3D chaos checksum use 36
    (sums < 2^16). *)

val grid : bits:int -> float
(** [grid ~bits] is [2^bits], computed exactly via [ldexp]. *)

val quantize : grid:float -> float -> float
(** [quantize ~grid v] rounds [v] to the nearest multiple of [1/grid]
    (round-half-away-from-zero, matching [Float.round]). *)

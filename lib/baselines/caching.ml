open Dpa_sim
open Dpa_heap
module Lru = Dpa_util.Lru.Make (Gptr.Tbl)

type ctx = {
  engine : Engine.t;
  machine : Machine.t;
  heaps : Heap.cluster;
  heap : Heap.t;
  node : Node.t;
  cache : unit Lru.t;
      (* views alias the owner store ({!Heap.view}), so the cache tracks
         membership + recency only; the handle itself is the payload *)
  hash : bool;
  work : (Gptr.t * k) Stack.t;  (* LIFO: depth-first, program order *)
  mutable items : (ctx -> unit) array;
  mutable next_item : int;
  mutable waiting : bool;  (* a miss is in flight; nothing else may run *)
  mutable scheduled : bool;
  mutable finished : bool;
  mutable hits : int;
  mutable misses : int;
  mutable local : int;
  mutable peak_cached : int;
  mutable retries : int;  (* end-to-end fetch re-issues under faults *)
}

and k = ctx -> Heap.view -> unit

type stats = {
  hits : int;
  misses : int;
  local : int;
  evictions : int;
  peak_cached : int;
  retries : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "@[cache: %d hits, %d misses, %d local, %d evictions, peak %d objects, \
     %d retries@]"
    s.hits s.misses s.local s.evictions s.peak_cached s.retries

let node_id ctx = ctx.node.Node.id
let heaps ctx = ctx.heaps
let charge ctx ns = Node.charge_local ctx.node ns

(* Reads are deferred onto the work stack; the step loop resolves them one
   at a time. This realizes blocking semantics: at most one outstanding
   remote operation per node, in depth-first program order. *)
let read ctx ptr k =
  if Gptr.is_nil ptr then invalid_arg "Caching.read: nil pointer";
  Stack.push (ptr, k) ctx.work

let accumulate ctx ptr ~idx value =
  if Gptr.is_nil ptr then invalid_arg "Caching.accumulate: nil pointer";
  let m = ctx.machine in
  if Gptr.node ptr = ctx.node.Node.id then begin
    Node.charge_local ctx.node m.Machine.update_apply_ns;
    Heap.bump_float ctx.heap ptr ~idx value
  end
  else begin
    (* One put-style message per update: no combining, no aggregation, but
       also no blocking (puts complete asynchronously). *)
    let bytes = Dpa_msg.Am.update_bytes m ~nupdates:1 in
    Dpa_msg.Am.send ctx.engine ~src:ctx.node ~dst:(Gptr.node ptr) ~bytes
      (fun owner ->
        Node.charge_comm owner m.Machine.update_apply_ns;
        Heap.bump_float ctx.heaps.(Gptr.node ptr) ptr ~idx value)
  end

let rec ensure_scheduled ctx =
  if not ctx.scheduled then begin
    ctx.scheduled <- true;
    Engine.post_now ctx.engine ~node:ctx.node (fun () ->
        ctx.scheduled <- false;
        step ctx)
  end

and step ctx =
  if ctx.waiting then ()
  else begin
    let quantum = ctx.machine.Machine.poll_quantum_ns in
    let start = ctx.node.Node.clock in
    let rec loop () =
      if ctx.waiting then ()
      else if ctx.node.Node.clock - start >= quantum then ensure_scheduled ctx
      else
        match Stack.pop_opt ctx.work with
        | Some (ptr, k) -> resolve ctx ptr k; loop ()
        | None ->
          if ctx.next_item < Array.length ctx.items then begin
            let item = ctx.items.(ctx.next_item) in
            ctx.next_item <- ctx.next_item + 1;
            item ctx;
            loop ()
          end
          else ctx.finished <- true
    in
    loop ()
  end

and resolve ctx ptr k =
  (* Olden-style caching sends every global access through the software
     test-and-hash, local data included — the hashing overhead the paper
     credits DPA with minimizing. *)
  if ctx.hash then Node.charge_comm ctx.node ctx.machine.Machine.hash_probe_ns;
  if Gptr.node ptr = ctx.node.Node.id then begin
    ctx.local <- ctx.local + 1;
    k ctx ptr
  end
  else begin
    match Lru.find ctx.cache ptr with
    | Some () ->
      ctx.hits <- ctx.hits + 1;
      k ctx ptr
    | None ->
      ctx.misses <- ctx.misses + 1;
      ctx.waiting <- true;
      fetch ctx ptr k
  end

(* The blocking fetch. Under a fault plan it grows the same two defence
   layers the DPA runtime has: the transport retransmits each message until
   acked, and an end-to-end timer re-issues the whole fetch with capped
   exponential backoff in case the owner is wedged. The [completed] latch
   makes the continuation idempotent — a duplicate reply from a spurious
   retry must not unblock the node twice or re-run [k]. *)
and fetch ctx ptr k =
  let m = ctx.machine in
  let bytes = Dpa_msg.Am.request_bytes m ~nreqs:1 in
  let rel = Engine.fault ctx.engine <> None in
  let completed = ref false in
  let rto0 =
    8
    * ((2 * (m.Machine.send_overhead_ns + m.Machine.recv_overhead_ns))
      + Machine.transfer_ns m ~bytes
      + Machine.transfer_ns m ~bytes:m.Machine.msg_header_bytes
      + (4 * m.Machine.poll_quantum_ns))
  in
  let rec attempt ~rto =
    Dpa_msg.Am.send ctx.engine ~src:ctx.node ~dst:(Gptr.node ptr) ~bytes
      (fun owner ->
        Node.charge_comm owner
          (m.Machine.request_service_ns + m.Machine.request_service_per_obj_ns);
        let payload = Heap.obj_bytes ctx.heaps.(Gptr.node ptr) ptr in
        let reply = Dpa_msg.Am.reply_bytes m ~payload ~nreqs:1 in
        Dpa_msg.Am.send ctx.engine ~src:owner ~dst:ctx.node.Node.id
          ~bytes:reply (fun _self ->
            if not !completed then begin
              completed := true;
              Lru.add ctx.cache ptr ();
              let n = Lru.size ctx.cache in
              if n > ctx.peak_cached then ctx.peak_cached <- n;
              ctx.waiting <- false;
              k ctx ptr;
              ensure_scheduled ctx
            end));
    if rel then begin
      let deadline = ctx.node.Node.clock + rto in
      Engine.post_soft ctx.engine ~time:deadline ~node:(node_id ctx) (fun () ->
          if not !completed then begin
            Node.wait_until ctx.node deadline;
            ctx.retries <- ctx.retries + 1;
            (match Engine.sink ctx.engine with
            | None -> ()
            | Some sink ->
              Dpa_obs.Metrics.add
                (Dpa_obs.Metrics.counter (Dpa_obs.Sink.metrics sink)
                   "retries.cache")
                1;
              Dpa_obs.Sink.instant sink ~cat:"runtime" ~name:"retry"
                ~node:(node_id ctx) ~ts:ctx.node.Node.clock);
            attempt ~rto:(min (2 * rto) (1024 * rto0))
          end)
    end
  in
  attempt ~rto:rto0

let make_ctx ~engine ~heaps ~capacity ~hash ~items node =
  {
    engine;
    machine = Engine.machine engine;
    heaps;
    heap = heaps.(node.Node.id);
    node;
    cache = Lru.create ~capacity;
    hash;
    work = Stack.create ();
    items;
    next_item = 0;
    waiting = false;
    scheduled = false;
    finished = false;
    hits = 0;
    misses = 0;
    local = 0;
    peak_cached = 0;
    retries = 0;
  }

let run_phase ~engine ~heaps ~capacity ?(hash = true) ~items () =
  let nodes = Engine.nodes engine in
  Engine.barrier engine;
  Array.iter Node.reset_breakdown nodes;
  let start = Engine.elapsed engine in
  let ctxs =
    Array.map
      (fun node ->
        make_ctx ~engine ~heaps ~capacity ~hash ~items:(items node.Node.id) node)
      nodes
  in
  Array.iter ensure_scheduled ctxs;
  Engine.run engine;
  Array.iter
    (fun ctx ->
      if not (ctx.finished && Stack.is_empty ctx.work && not ctx.waiting) then
        failwith
          (Printf.sprintf
             "Caching.run_phase: node %d did not quiesce (finished=%b, \
              work=%d, waiting=%b)"
             ctx.node.Node.id ctx.finished (Stack.length ctx.work) ctx.waiting))
    ctxs;
  (* Same phase-barrier hygiene as [Dpa.Runtime]: with the transport
     quiescent the receiver dedup tables are reclaimable. *)
  if Engine.fault engine <> None && Dpa_msg.Am.in_flight engine = 0 then
    ignore (Dpa_msg.Am.prune_seen engine);
  Engine.barrier engine;
  let elapsed_ns = Engine.elapsed engine - start in
  let breakdown = Breakdown.of_nodes ~elapsed_ns nodes in
  let stats =
    Array.fold_left
      (fun acc (c : ctx) ->
        {
          hits = acc.hits + c.hits;
          misses = acc.misses + c.misses;
          local = acc.local + c.local;
          evictions = acc.evictions + Lru.evictions c.cache;
          peak_cached = max acc.peak_cached c.peak_cached;
          retries = acc.retries + c.retries;
        })
      {
        hits = 0;
        misses = 0;
        local = 0;
        evictions = 0;
        peak_cached = 0;
        retries = 0;
      }
      ctxs
  in
  (breakdown, stats)

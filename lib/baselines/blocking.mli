(** Naive blocking-remote-read runtime: every remote dereference pays a full
    round trip and the processor waits. The "Base" of the breakdown
    figures. Implemented as {!Caching} with a zero-capacity cache and no
    hashing cost. *)

type ctx = Caching.ctx

include Dpa.Access.S with type ctx := ctx

val run_phase :
  engine:Dpa_sim.Engine.t ->
  heaps:Dpa_heap.Heap.cluster ->
  items:(int -> (ctx -> unit) array) ->
  Dpa_sim.Breakdown.t * Caching.stats

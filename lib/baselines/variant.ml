type t =
  | Dpa of Dpa.Config.t
  | Caching of { capacity : int }
  | Blocking
  | Prefetch of { strip_size : int }

let dpa ?strip_size ?agg_max () = Dpa (Dpa.Config.dpa ?strip_size ?agg_max ())

let name = function
  | Dpa c -> c.Dpa.Config.name
  | Caching { capacity } -> Printf.sprintf "Caching(%d)" capacity
  | Blocking -> "Blocking"
  | Prefetch { strip_size } -> Printf.sprintf "Prefetch(%d)" strip_size

let pp ppf t = Format.pp_print_string ppf (name t)

(** Names for the runtime under test — used by the applications and the
    experiment harness to dispatch a phase onto DPA or one of the
    baselines. *)

type t =
  | Dpa of Dpa.Config.t  (** the full runtime, any configuration *)
  | Caching of { capacity : int }  (** software caching (blocking, LRU) *)
  | Blocking  (** naive blocking remote reads *)
  | Prefetch of { strip_size : int }  (** pipelining only *)

val dpa : ?strip_size:int -> ?agg_max:int -> unit -> t
val name : t -> string
val pp : Format.formatter -> t -> unit

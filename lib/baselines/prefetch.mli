(** Greedy prefetching runtime (related-work point, cf. Luk & Mowry):
    non-blocking reads pipeline the network but nothing is aggregated and
    nothing is reused. This is exactly the DPA machinery with the alignment
    buffer and aggregation disabled, so it shares {!Dpa.Runtime}. *)

type ctx = Dpa.Runtime.ctx

include Dpa.Access.S with type ctx := ctx

val run_phase :
  engine:Dpa_sim.Engine.t ->
  heaps:Dpa_heap.Heap.cluster ->
  ?strip_size:int ->
  items:(int -> (ctx -> unit) array) ->
  unit ->
  Dpa_sim.Breakdown.t * Dpa.Dpa_stats.t

(** Software-caching baseline (Olden-style), the scheme DPA is compared
    against in the paper's tables.

    Execution is *blocking*: items run strictly one after another on each
    node, and every remote read goes through a hash-keyed LRU cache of
    remote objects. A hit costs a hash probe; a miss costs a probe plus a
    full request/reply round trip during which the node sits idle. There is
    no overlap, no aggregation, and no reordering.

    With [capacity = 0] and [hash:false] this degenerates to the naive
    blocking-remote-read runtime ({!Blocking}). *)

type ctx

include Dpa.Access.S with type ctx := ctx

type stats = {
  hits : int;
  misses : int;
  local : int;
  evictions : int;
  peak_cached : int;
  retries : int;  (** end-to-end fetch re-issues under an active fault plan *)
}

val pp_stats : Format.formatter -> stats -> unit

val run_phase :
  engine:Dpa_sim.Engine.t ->
  heaps:Dpa_heap.Heap.cluster ->
  capacity:int ->
  ?hash:bool ->
  items:(int -> (ctx -> unit) array) ->
  unit ->
  Dpa_sim.Breakdown.t * stats
(** [capacity] is the per-node cache size in objects. [hash] (default
    [true]) charges the hash-probe cost on every remote access. *)

type ctx = Caching.ctx

let node_id = Caching.node_id
let heaps = Caching.heaps
let charge = Caching.charge
let read = Caching.read
let accumulate = Caching.accumulate

let run_phase ~engine ~heaps ~items =
  Caching.run_phase ~engine ~heaps ~capacity:0 ~hash:false ~items ()

type ctx = Dpa.Runtime.ctx

let node_id = Dpa.Runtime.node_id
let heaps = Dpa.Runtime.heaps
let charge = Dpa.Runtime.charge
let read = Dpa.Runtime.read
let accumulate = Dpa.Runtime.accumulate

let run_phase ~engine ~heaps ?(strip_size = 50) ~items () =
  Dpa.Runtime.run_phase_labeled ~label:"prefetch" ~engine ~heaps
    ~config:(Dpa.Config.pipeline_only ~strip_size ())
    ~items

(* CI validator for the observability artifacts (see `make obs-smoke` and
   `make critpath-smoke`): checks that a streamed --events JSONL file is
   well-formed and time-ordered, that its causal annotations form a valid
   happens-before relation (every parent arg resolves to an emitted
   span_id with an earlier-or-equal open timestamp; dangling references
   fail), that the --profile per-node skew, communication-optimality and
   integrity (corrupt-dropped / WAL truncated / WAL repaired) tables are
   internally consistent, and (with --critpath) that a
   --critical-path report's invariants hold: segments sum exactly to the
   path, 0 <= max span <= path <= wall, and actual bytes >= bound >= 0.

   Usage: obs_check [--min-lines N] [--critpath FILE] EVENTS.jsonl PROFILE.txt *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("obs_check: " ^ s); exit 1) fmt

let read_lines path =
  let ic = try open_in path with Sys_error e -> fail "%s" e in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

(* ---- events.jsonl ----------------------------------------------------- *)

let str_field name j =
  match Dpa_obs.Json.member name j with
  | Some (Dpa_obs.Json.Str s) -> s
  | _ -> fail "event missing string field %S" name

let int_field name j =
  match Dpa_obs.Json.member name j with
  | Some (Dpa_obs.Json.Int i) -> i
  | _ -> fail "event missing int field %S" name

(* Every line must parse with the in-repo JSON parser and carry the JSONL
   event shape. Timestamps must be non-decreasing, except where a fresh
   engine's clocks restart at zero: the stream is flushed (sorted) at
   every barrier, so a legitimate reset always lands on the new engine's
   opening cat="sim"/name="barrier" instant — a decrease anywhere else is
   an ordering bug. *)
let check_events path =
  let lines = read_lines path in
  let prev_ts = ref min_int in
  (* Causal annotations: span_id args define ids (with the event's open
     timestamp), parent args reference them. Ids are process-unique (the
     allocator is never reset), and parents never cross engines, so the
     resolution pass can run over the whole file at once. *)
  let defs : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  let refs = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let j =
        match Dpa_obs.Json.parse line with
        | Ok j -> j
        | Error e -> fail "%s:%d: parse error: %s" path lineno e
      in
      let kind = str_field "kind" j in
      if kind <> "span" && kind <> "instant" && kind <> "counter" then
        fail "%s:%d: unknown kind %S" path lineno kind;
      let cat = str_field "cat" j
      and name = str_field "name" j
      and ts = int_field "ts" j in
      ignore (int_field "node" j);
      ignore (int_field "dur" j);
      (match Dpa_obs.Json.member "args" j with
      | Some (Dpa_obs.Json.Obj fields) ->
        (match List.assoc_opt "span_id" fields with
        | Some (Dpa_obs.Json.Int id) ->
          if Hashtbl.mem defs id then
            fail "%s:%d: span_id %d defined twice" path lineno id;
          Hashtbl.replace defs id ts
        | _ -> ());
        (match List.assoc_opt "parent" fields with
        | Some (Dpa_obs.Json.Int p) -> refs := (p, ts, lineno) :: !refs
        | _ -> ())
      | _ -> fail "%s:%d: missing args object" path lineno);
      if ts < !prev_ts
         && not (kind = "instant" && cat = "sim" && name = "barrier")
      then
        fail "%s:%d: ts went backwards (%d after %d) on %s %s/%s" path lineno
          ts !prev_ts kind cat name;
      prev_ts := ts)
    lines;
  let dangling = ref 0 in
  List.iter
    (fun (p, ts, lineno) ->
      match Hashtbl.find_opt defs p with
      | None ->
        incr dangling;
        (* Report the first few individually, then just the count. *)
        if !dangling <= 3 then
          Printf.eprintf "obs_check: %s:%d: parent %d matches no span_id\n"
            path lineno p
      | Some pts ->
        if pts > ts then
          fail "%s:%d: parent %d opens at %d, after its child's ts %d" path
            lineno p pts ts)
    !refs;
  if !dangling > 0 then
    fail "%s: %d dangling causal parent reference(s)" path !dangling;
  (List.length lines, Hashtbl.length defs, List.length !refs)

(* ---- profile text ----------------------------------------------------- *)

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

type global_row = { g_runs : int; g_nodes : int; g_mean : float; g_strips : int }

type skew_acc = {
  mutable s_rows : int;  (* rows with a numeric wall column *)
  mutable s_wall : float;
  mutable s_strips : int;  (* all rows, strip-only ones included *)
}

type summary = { m_wall : float; m_spans : int }

let int_tok name t =
  match int_of_string_opt t with
  | Some i -> i
  | None -> fail "profile: bad %s field %S" name t

let float_tok name t =
  match float_of_string_opt t with
  | Some f -> f
  | None -> fail "profile: bad %s field %S" name t

type opt_acc = {
  mutable o_rows : int;
  mutable o_actual : int;
  mutable o_bound : int;
}

type integ_acc = {
  mutable i_rows : int;
  mutable i_corrupt : int;
  mutable i_trunc : int;
  mutable i_repair : int;
}

let check_profile path =
  let lines = read_lines path in
  let globals : (string, global_row) Hashtbl.t = Hashtbl.create 8 in
  let skews : (string, skew_acc) Hashtbl.t = Hashtbl.create 8 in
  let summaries : (string, summary) Hashtbl.t = Hashtbl.create 8 in
  let opts : (string, opt_acc) Hashtbl.t = Hashtbl.create 8 in
  let opt_summaries : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
  let integs : (string, integ_acc) Hashtbl.t = Hashtbl.create 8 in
  let integ_summaries : (string, int * int * int) Hashtbl.t =
    Hashtbl.create 8
  in
  let skew name =
    match Hashtbl.find_opt skews name with
    | Some a -> a
    | None ->
      let a = { s_rows = 0; s_wall = 0.; s_strips = 0 } in
      Hashtbl.add skews name a;
      a
  in
  let opt name =
    match Hashtbl.find_opt opts name with
    | Some a -> a
    | None ->
      let a = { o_rows = 0; o_actual = 0; o_bound = 0 } in
      Hashtbl.add opts name a;
      a
  in
  let integ name =
    match Hashtbl.find_opt integs name with
    | Some a -> a
    | None ->
      let a = { i_rows = 0; i_corrupt = 0; i_trunc = 0; i_repair = 0 } in
      Hashtbl.add integs name a;
      a
  in
  let section = ref `None in
  List.iter
    (fun line ->
      if line = "Per-phase profile (sim time)" then section := `Global
      else if line = "Per-node skew" then section := `Skew
      else if line = "Per-phase communication optimality" then section := `Opt
      else if line = "Per-phase integrity" then section := `Integ
      else if String.length line = 0 || line.[0] <> ' ' then section := `None
      else
        match (!section, tokens line) with
        | `Global, [ "phase"; "runs"; "nodes"; "mean"; "wall"; "ms"; "strips" ]
          ->
          ()
        | `Global, [ name; runs; nodes; mean; strips ] ->
          if runs <> "-" then
            Hashtbl.replace globals name
              {
                g_runs = int_tok "runs" runs;
                g_nodes = int_tok "nodes" nodes;
                g_mean = float_tok "mean" mean;
                g_strips = int_tok "strips" strips;
              }
        | `Skew, "phase" :: "node" :: _ -> ()
        | `Skew, name :: "=" :: "wall" :: wall :: "ms" :: "over" :: spans :: _
          ->
          Hashtbl.replace summaries name
            {
              m_wall = float_tok "summary wall" wall;
              m_spans = int_tok "summary spans" spans;
            }
        | `Skew, [ name; _node; wall; _busy; strips; _bytes ] ->
          let a = skew name in
          a.s_strips <- a.s_strips + int_tok "strips" strips;
          if wall <> "-" then begin
            a.s_rows <- a.s_rows + 1;
            a.s_wall <- a.s_wall +. float_tok "wall" wall
          end
        | `Opt, [ "phase"; "node"; "actual"; "B"; "bound"; "B"; "ratio" ] -> ()
        | `Opt, name :: "=" :: "actual" :: actual :: "B," :: "bound" :: bound
                :: "B," :: _ ->
          Hashtbl.replace opt_summaries name
            (int_tok "opt actual" actual, int_tok "opt bound" bound)
        | `Opt, [ name; _node; actual; bound; _ratio ] ->
          let a = opt name in
          let av = int_tok "opt actual" actual
          and bv = int_tok "opt bound" bound in
          if bv < 0 || av < bv then
            fail
              "%s: phase %S: optimality row has actual %d < bound %d (or a \
               negative bound)"
              path name av bv;
          a.o_rows <- a.o_rows + 1;
          a.o_actual <- a.o_actual + av;
          a.o_bound <- a.o_bound + bv
        | ( `Integ,
            [ "phase"; "node"; "corrupt"; "wal"; "trunc"; "wal"; "repair" ] )
          ->
          ()
        | ( `Integ,
            [
              name; "="; c; "corrupt"; "dropped,"; t; "wal"; "truncated,"; r;
              "repaired";
            ] ) ->
          Hashtbl.replace integ_summaries name
            ( int_tok "integrity corrupt" c,
              int_tok "integrity truncated" t,
              int_tok "integrity repaired" r )
        | `Integ, [ name; _node; corrupt; trunc; repair ] ->
          let a = integ name in
          let cv = int_tok "integrity corrupt" corrupt
          and tv = int_tok "integrity trunc" trunc
          and rv = int_tok "integrity repair" repair in
          (* No truncated >= repaired cross-check: a truncation tear that
             cuts exactly at a record boundary leaves nothing to truncate
             yet still repairs the lost record from the doublewrite slot. *)
          if cv < 0 || tv < 0 || rv < 0 then
            fail "%s: phase %S: negative integrity counter" path name;
          a.i_rows <- a.i_rows + 1;
          a.i_corrupt <- a.i_corrupt + cv;
          a.i_trunc <- a.i_trunc + tv;
          a.i_repair <- a.i_repair + rv
        | _ -> ())
    lines;
  Hashtbl.iter
    (fun name (s_actual, s_bound) ->
      match Hashtbl.find_opt opts name with
      | None ->
        fail "%s: phase %S: optimality summary without any rows" path name
      | Some a ->
        if a.o_actual <> s_actual || a.o_bound <> s_bound then
          fail
            "%s: phase %S: optimality rows sum to %d/%d B, summary says %d/%d"
            path name a.o_actual a.o_bound s_actual s_bound)
    opt_summaries;
  Hashtbl.iter
    (fun name (s_corrupt, s_trunc, s_repair) ->
      match Hashtbl.find_opt integs name with
      | None ->
        fail "%s: phase %S: integrity summary without any rows" path name
      | Some a ->
        if
          a.i_corrupt <> s_corrupt || a.i_trunc <> s_trunc
          || a.i_repair <> s_repair
        then
          fail
            "%s: phase %S: integrity rows sum to %d/%d/%d, summary says \
             %d/%d/%d"
            path name a.i_corrupt a.i_trunc a.i_repair s_corrupt s_trunc
            s_repair)
    integ_summaries;
  Hashtbl.iter
    (fun name (_ : integ_acc) ->
      if not (Hashtbl.mem integ_summaries name) then
        fail "%s: phase %S: integrity rows without a summary line" path name)
    integs;
  if Hashtbl.length globals = 0 then
    fail "%s: no per-phase profile rows found" path;
  Hashtbl.iter
    (fun name (g : global_row) ->
      let a =
        match Hashtbl.find_opt skews name with
        | Some a -> a
        | None -> fail "%s: phase %S has no per-node skew rows" path name
      in
      let m =
        match Hashtbl.find_opt summaries name with
        | Some m -> m
        | None -> fail "%s: phase %S has no skew summary line" path name
      in
      if a.s_rows <> g.g_nodes then
        fail "%s: phase %S: %d skew rows but %d nodes in the global row" path
          name a.s_rows g.g_nodes;
      if a.s_strips <> g.g_strips then
        fail "%s: phase %S: skew strips sum to %d, global row says %d" path
          name a.s_strips g.g_strips;
      (* Each row is printed to 1 us; allow the accumulated rounding. *)
      let tol = (0.0005 *. float_of_int a.s_rows) +. 0.002 in
      if Float.abs (a.s_wall -. m.m_wall) > tol then
        fail "%s: phase %S: skew wall sums to %.3f, summary says %.3f" path
          name a.s_wall m.m_wall;
      if m.m_spans = 0 then fail "%s: phase %S: summary has 0 spans" path name;
      if Float.abs ((m.m_wall /. float_of_int m.m_spans) -. g.g_mean) > 0.005
      then
        fail
          "%s: phase %S: global mean %.3f disagrees with wall/spans = %.3f"
          path name g.g_mean
          (m.m_wall /. float_of_int m.m_spans))
    globals;
  Hashtbl.length globals

(* ---- critical-path report --------------------------------------------- *)

let json_int path name j =
  match Dpa_obs.Json.member name j with
  | Some (Dpa_obs.Json.Int i) -> i
  | _ -> fail "%s: missing int field %S" path name

(* The report's defining invariants, checked per phase instance: the
   decomposition is exact (buckets sum to the path length with no
   remainder), the path is bounded by the phase wall and bounds the
   longest single span, and the communication accounting never reports
   moving fewer bytes than its own lower bound. *)
let check_critpath path =
  let j =
    match Dpa_obs.Json.parse (String.concat "\n" (read_lines path)) with
    | Ok j -> j
    | Error e -> fail "%s: parse error: %s" path e
  in
  let phases =
    match Dpa_obs.Json.member "phases" j with
    | Some (Dpa_obs.Json.List l) -> l
    | _ -> fail "%s: missing phases list" path
  in
  if phases = [] then fail "%s: no analyzed phases in the report" path;
  if json_int path "nphases" j <> List.length phases then
    fail "%s: nphases disagrees with the phases list" path;
  List.iteri
    (fun i p ->
      let ctxt = Printf.sprintf "%s: phase %d" path i in
      let wall = json_int ctxt "wall_ns" p
      and path_ns = json_int ctxt "path_ns" p
      and max_span = json_int ctxt "max_span_ns" p
      and actual = json_int ctxt "opt_actual_bytes" p
      and bound = json_int ctxt "opt_bound_bytes" p in
      let segs =
        match Dpa_obs.Json.member "segments" p with
        | Some (Dpa_obs.Json.Obj fields) ->
          List.map
            (fun (k, v) ->
              match v with
              | Dpa_obs.Json.Int n -> (k, n)
              | _ -> fail "%s: segment %S is not an int" ctxt k)
            fields
        | _ -> fail "%s: missing segments object" ctxt
      in
      List.iter
        (fun (k, v) -> if v < 0 then fail "%s: segment %S is negative" ctxt k)
        segs;
      let segsum = List.fold_left (fun a (_, v) -> a + v) 0 segs in
      if segsum <> path_ns then
        fail "%s: segments sum to %d ns, path_ns is %d" ctxt segsum path_ns;
      if not (0 <= max_span && max_span <= path_ns && path_ns <= wall) then
        fail "%s: expected 0 <= max_span (%d) <= path (%d) <= wall (%d)" ctxt
          max_span path_ns wall;
      if bound < 0 || actual < bound then
        fail "%s: expected actual (%d) >= bound (%d) >= 0" ctxt actual bound)
    phases;
  List.length phases

let () =
  let min_lines = ref 1 in
  let critpath = ref None in
  let positional = ref [] in
  let rec parse = function
    | "--min-lines" :: n :: rest ->
      (match int_of_string_opt n with
      | Some i -> min_lines := i
      | None -> fail "--min-lines expects an integer, got %S" n);
      parse rest
    | "--critpath" :: p :: rest ->
      critpath := Some p;
      parse rest
    | arg :: rest ->
      positional := arg :: !positional;
      parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let events_path, profile_path =
    match List.rev !positional with
    | [ e; p ] -> (e, p)
    | _ ->
      fail
        "usage: obs_check [--min-lines N] [--critpath FILE] EVENTS.jsonl \
         PROFILE.txt"
  in
  let nlines, ndefs, nrefs = check_events events_path in
  if nlines < !min_lines then
    fail "%s: only %d event lines, expected at least %d" events_path nlines
      !min_lines;
  let nphases = check_profile profile_path in
  let extra =
    match !critpath with
    | None -> ""
    | Some p ->
      (* A critical-path report implies causal tracing was on, so the
         event stream must actually carry the annotations it validates. *)
      if ndefs = 0 || nrefs = 0 then
        fail "%s: --critpath given but no causal span_id/parent args in %s" p
          events_path;
      Printf.sprintf ", %d critical-path phase(s)" (check_critpath p)
  in
  Printf.printf
    "obs_check: OK (%d event lines, %d causal spans, %d causal refs, %d \
     profiled phase(s)%s)\n"
    nlines ndefs nrefs nphases extra

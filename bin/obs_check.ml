(* CI validator for the observability artifacts (see `make obs-smoke`):
   checks that a streamed --events JSONL file is well-formed and
   time-ordered, and that the --profile per-node skew tables are
   internally consistent with the global per-phase rows.

   Usage: obs_check [--min-lines N] EVENTS.jsonl PROFILE.txt *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("obs_check: " ^ s); exit 1) fmt

let read_lines path =
  let ic = try open_in path with Sys_error e -> fail "%s" e in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

(* ---- events.jsonl ----------------------------------------------------- *)

let str_field name j =
  match Dpa_obs.Json.member name j with
  | Some (Dpa_obs.Json.Str s) -> s
  | _ -> fail "event missing string field %S" name

let int_field name j =
  match Dpa_obs.Json.member name j with
  | Some (Dpa_obs.Json.Int i) -> i
  | _ -> fail "event missing int field %S" name

(* Every line must parse with the in-repo JSON parser and carry the JSONL
   event shape. Timestamps must be non-decreasing, except where a fresh
   engine's clocks restart at zero: the stream is flushed (sorted) at
   every barrier, so a legitimate reset always lands on the new engine's
   opening cat="sim"/name="barrier" instant — a decrease anywhere else is
   an ordering bug. *)
let check_events path =
  let lines = read_lines path in
  let prev_ts = ref min_int in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let j =
        match Dpa_obs.Json.parse line with
        | Ok j -> j
        | Error e -> fail "%s:%d: parse error: %s" path lineno e
      in
      let kind = str_field "kind" j in
      if kind <> "span" && kind <> "instant" && kind <> "counter" then
        fail "%s:%d: unknown kind %S" path lineno kind;
      let cat = str_field "cat" j
      and name = str_field "name" j
      and ts = int_field "ts" j in
      ignore (int_field "node" j);
      ignore (int_field "dur" j);
      (match Dpa_obs.Json.member "args" j with
      | Some (Dpa_obs.Json.Obj _) -> ()
      | _ -> fail "%s:%d: missing args object" path lineno);
      if ts < !prev_ts
         && not (kind = "instant" && cat = "sim" && name = "barrier")
      then
        fail "%s:%d: ts went backwards (%d after %d) on %s %s/%s" path lineno
          ts !prev_ts kind cat name;
      prev_ts := ts)
    lines;
  List.length lines

(* ---- profile text ----------------------------------------------------- *)

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

type global_row = { g_runs : int; g_nodes : int; g_mean : float; g_strips : int }

type skew_acc = {
  mutable s_rows : int;  (* rows with a numeric wall column *)
  mutable s_wall : float;
  mutable s_strips : int;  (* all rows, strip-only ones included *)
}

type summary = { m_wall : float; m_spans : int }

let int_tok name t =
  match int_of_string_opt t with
  | Some i -> i
  | None -> fail "profile: bad %s field %S" name t

let float_tok name t =
  match float_of_string_opt t with
  | Some f -> f
  | None -> fail "profile: bad %s field %S" name t

let check_profile path =
  let lines = read_lines path in
  let globals : (string, global_row) Hashtbl.t = Hashtbl.create 8 in
  let skews : (string, skew_acc) Hashtbl.t = Hashtbl.create 8 in
  let summaries : (string, summary) Hashtbl.t = Hashtbl.create 8 in
  let skew name =
    match Hashtbl.find_opt skews name with
    | Some a -> a
    | None ->
      let a = { s_rows = 0; s_wall = 0.; s_strips = 0 } in
      Hashtbl.add skews name a;
      a
  in
  let section = ref `None in
  List.iter
    (fun line ->
      if line = "Per-phase profile (sim time)" then section := `Global
      else if line = "Per-node skew" then section := `Skew
      else if String.length line = 0 || line.[0] <> ' ' then section := `None
      else
        match (!section, tokens line) with
        | `Global, [ "phase"; "runs"; "nodes"; "mean"; "wall"; "ms"; "strips" ]
          ->
          ()
        | `Global, [ name; runs; nodes; mean; strips ] ->
          if runs <> "-" then
            Hashtbl.replace globals name
              {
                g_runs = int_tok "runs" runs;
                g_nodes = int_tok "nodes" nodes;
                g_mean = float_tok "mean" mean;
                g_strips = int_tok "strips" strips;
              }
        | `Skew, "phase" :: "node" :: _ -> ()
        | `Skew, name :: "=" :: "wall" :: wall :: "ms" :: "over" :: spans :: _
          ->
          Hashtbl.replace summaries name
            {
              m_wall = float_tok "summary wall" wall;
              m_spans = int_tok "summary spans" spans;
            }
        | `Skew, [ name; _node; wall; _busy; strips; _bytes ] ->
          let a = skew name in
          a.s_strips <- a.s_strips + int_tok "strips" strips;
          if wall <> "-" then begin
            a.s_rows <- a.s_rows + 1;
            a.s_wall <- a.s_wall +. float_tok "wall" wall
          end
        | _ -> ())
    lines;
  if Hashtbl.length globals = 0 then
    fail "%s: no per-phase profile rows found" path;
  Hashtbl.iter
    (fun name (g : global_row) ->
      let a =
        match Hashtbl.find_opt skews name with
        | Some a -> a
        | None -> fail "%s: phase %S has no per-node skew rows" path name
      in
      let m =
        match Hashtbl.find_opt summaries name with
        | Some m -> m
        | None -> fail "%s: phase %S has no skew summary line" path name
      in
      if a.s_rows <> g.g_nodes then
        fail "%s: phase %S: %d skew rows but %d nodes in the global row" path
          name a.s_rows g.g_nodes;
      if a.s_strips <> g.g_strips then
        fail "%s: phase %S: skew strips sum to %d, global row says %d" path
          name a.s_strips g.g_strips;
      (* Each row is printed to 1 us; allow the accumulated rounding. *)
      let tol = (0.0005 *. float_of_int a.s_rows) +. 0.002 in
      if Float.abs (a.s_wall -. m.m_wall) > tol then
        fail "%s: phase %S: skew wall sums to %.3f, summary says %.3f" path
          name a.s_wall m.m_wall;
      if m.m_spans = 0 then fail "%s: phase %S: summary has 0 spans" path name;
      if Float.abs ((m.m_wall /. float_of_int m.m_spans) -. g.g_mean) > 0.005
      then
        fail
          "%s: phase %S: global mean %.3f disagrees with wall/spans = %.3f"
          path name g.g_mean
          (m.m_wall /. float_of_int m.m_spans))
    globals;
  Hashtbl.length globals

let () =
  let min_lines = ref 1 in
  let positional = ref [] in
  let rec parse = function
    | "--min-lines" :: n :: rest ->
      (match int_of_string_opt n with
      | Some i -> min_lines := i
      | None -> fail "--min-lines expects an integer, got %S" n);
      parse rest
    | arg :: rest ->
      positional := arg :: !positional;
      parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let events_path, profile_path =
    match List.rev !positional with
    | [ e; p ] -> (e, p)
    | _ -> fail "usage: obs_check [--min-lines N] EVENTS.jsonl PROFILE.txt"
  in
  let nlines = check_events events_path in
  if nlines < !min_lines then
    fail "%s: only %d event lines, expected at least %d" events_path nlines
      !min_lines;
  let nphases = check_profile profile_path in
  Printf.printf "obs_check: OK (%d event lines, %d profiled phase(s))\n" nlines
    nphases

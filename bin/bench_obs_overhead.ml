(* Observability-overhead microbenchmark (see `make bench-obs-overhead`):
   host wall-clock time of the t2 (BH force-phase times) and f1 (BH
   breakdown) workloads at small scale in three configurations —
   observability off, --events streaming only, and causal tracing +
   critical-path analysis on top of streaming. The committed
   BENCH_obs_overhead.json documents the cost of each tier on the
   reference machine; the "off" tier is the bit-identical zero-cost
   baseline (every hook is a match on an absent sink).

   Usage: bench_obs_overhead [OUT.json] *)

open Dpa_harness

let conf = { Runconf.small with Runconf.bh_bodies = 512 }

let reps = 3

let wall f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* Minimum over [reps] runs: host-load noise only ever adds time. *)
let best f =
  let rec go n acc = if n = 0 then acc else go (n - 1) (min acc (wall f)) in
  go (reps - 1) (wall f)

let workloads =
  [
    ("t2", fun () -> ignore (Experiment.bh_times conf));
    ("f1", fun () -> ignore (Experiment.bh_breakdown conf));
  ]

(* Each tier installs (or not) a process-global sink around the workload,
   exactly as dpa_bench's --events / --critical-path plumbing does; the
   streamed file goes to a scratch path so disk content doesn't accrue. *)
let with_sink ~causal f () =
  let path = Filename.temp_file "dpa_bench_obs" ".jsonl" in
  let oc = open_out path in
  let sink = Dpa_obs.Sink.create () in
  if causal then Dpa_obs.Sink.set_causal sink (Some (Dpa_obs.Causal.create ()));
  Dpa_obs.Sink.attach_writer sink (Dpa_obs.Export.jsonl_writer oc);
  Dpa_obs.Sink.set_global (Some sink);
  Fun.protect
    ~finally:(fun () ->
      Dpa_obs.Sink.close_writer sink;
      Dpa_obs.Sink.set_global None;
      Sys.remove path)
    f

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_obs_overhead.json" in
  let rows =
    List.map
      (fun (name, f) ->
        let off = best f in
        let events = best (with_sink ~causal:false f) in
        let causal = best (with_sink ~causal:true f) in
        Printf.printf
          "%s: off %.3fs, events %.3fs (%.2fx), causal+critpath %.3fs (%.2fx)\n%!"
          name off events (events /. off) causal (causal /. off);
        ( name,
          Dpa_obs.Json.Obj
            [
              ("off_s", Dpa_obs.Json.Float off);
              ("events_s", Dpa_obs.Json.Float events);
              ("causal_critpath_s", Dpa_obs.Json.Float causal);
              ("events_overhead", Dpa_obs.Json.Float (events /. off));
              ("causal_critpath_overhead", Dpa_obs.Json.Float (causal /. off));
            ] ))
      workloads
  in
  let doc =
    Dpa_obs.Json.Obj
      [
        ("benchmark", Dpa_obs.Json.Str "observability overhead");
        ("scale", Dpa_obs.Json.Str conf.Runconf.name);
        ("bh_bodies", Dpa_obs.Json.Int conf.Runconf.bh_bodies);
        ("reps", Dpa_obs.Json.Int reps);
        ( "note",
          Dpa_obs.Json.Str
            "host wall seconds, min over reps; overhead = tier / off" );
        ("workloads", Dpa_obs.Json.Obj rows);
      ]
  in
  let oc = open_out out in
  output_string oc (Dpa_obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out

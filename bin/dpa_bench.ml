(* Command-line driver: regenerate each table/figure of the paper
   (see DESIGN.md §7 for the experiment index). *)

open Cmdliner
open Dpa_harness

(* Observability flags shared by every subcommand.  When any is given, a
   global sink is installed for the duration of the run (picked up by
   [Dpa_sim.Engine.create]) and the requested exports are written
   afterwards. *)
type obs_opts = {
  trace : string option;
  metrics : string option;
  events : string option;
  critpath : string option;
  profile : bool;
  cats : string list option;
  spans_only : bool;
  sample_ns : int;
  ring : int;
}

let obs_term =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON file (open with Perfetto or \
             chrome://tracing; one track per simulated node).")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write a JSON metrics dump (counters, gauges, per-phase \
             histograms with p50/p90/p99, Dpa_stats).")
  in
  let events =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:
            "Stream the raw event stream as JSON lines (one event per line). \
             Events are written as the run emits them — flushed at every \
             phase barrier and on teardown, so a crashed run keeps \
             everything flushed before the crash and the file is not \
             bounded by the in-memory ring.")
  in
  let critpath =
    Arg.(
      value
      & opt (some string) None
      & info [ "critical-path" ] ~docv:"FILE"
          ~doc:
            "Enable causal tracing and write a per-phase critical-path JSON \
             report: the longest happens-before chain through each labeled \
             phase, decomposed into compute / alignment-wait / wire / \
             owner-queue / retransmit / refetch time, plus the phase's \
             communication-optimality ratio. Also stamps span_id/parent \
             args on emitted events and flow pairs on message flights (see \
             docs/OBSERVABILITY.md).")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:"Print a human-readable per-phase profile after the run.")
  in
  let cats =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "trace-cats" ] ~docv:"CAT,CAT,..."
          ~doc:
            "Keep only spans and instants of the listed categories (phase, \
             strip, runtime, ctrl, msg, sim, fault). Sampled counter tracks \
             are always kept — their $(b,counter) category is synthetic, so \
             listing it is never necessary. Default: all.")
  in
  let spans_only =
    Arg.(
      value & flag
      & info [ "spans-only" ]
          ~doc:
            "Record spans only: instants and counter samples are dropped at \
             emission. Keeps chaos-run traces tractable.")
  in
  let sample_ns =
    Arg.(
      value & opt int 0
      & info [ "sample-ns" ] ~docv:"NS"
          ~doc:
            "Emit fixed-rate per-node counter tracks (outstanding threads, \
             D-buffer occupancy) every $(docv) of sim-time. 0 disables.")
  in
  let ring =
    Arg.(
      value
      & opt int Dpa_obs.Sink.default_capacity
      & info [ "ring" ] ~docv:"N"
          ~doc:
            "Capacity of the in-memory instant/counter ring (the flight \
             recorder). With $(b,--events) the ring only bounds the \
             in-memory snapshot, not the streamed file.")
  in
  let combine trace metrics events critpath profile cats spans_only sample_ns
      ring =
    {
      trace;
      metrics;
      events;
      critpath;
      profile;
      cats;
      spans_only;
      sample_ns;
      ring;
    }
  in
  Term.(
    const combine $ trace $ metrics $ events $ critpath $ profile $ cats
    $ spans_only $ sample_ns $ ring)

let with_obs obs f conf =
  (if obs.ring <= 0 then begin
     prerr_endline "dpa_bench: --ring must be positive";
     exit 1
   end);
  if
    obs.trace = None && obs.metrics = None && obs.events = None
    && obs.critpath = None && not obs.profile
  then f conf
  else begin
    (* Open every output file before the (possibly long) run so a bad path
       fails immediately rather than after the experiment finishes. *)
    let open_or_die path =
      try (path, open_out path)
      with Sys_error e ->
        prerr_endline ("dpa_bench: " ^ e);
        exit 1
    in
    let trace_out = Option.map open_or_die obs.trace in
    let metrics_out = Option.map open_or_die obs.metrics in
    let events_out = Option.map open_or_die obs.events in
    let critpath_out = Option.map open_or_die obs.critpath in
    let sink = Dpa_obs.Sink.create ~capacity:obs.ring () in
    if obs.critpath <> None then
      Dpa_obs.Sink.set_causal sink (Some (Dpa_obs.Causal.create ()));
    Dpa_obs.Sink.set_categories sink obs.cats;
    Dpa_obs.Sink.set_spans_only sink obs.spans_only;
    (if obs.sample_ns < 0 then begin
       prerr_endline "dpa_bench: --sample-ns must be non-negative";
       exit 1
     end);
    Dpa_obs.Sink.set_sample_period sink obs.sample_ns;
    (* [--events] streams: every event goes to the file as the run emits
       it (flushed at phase barriers), so the ring capacity no longer
       bounds the log and a mid-run crash keeps everything flushed. *)
    (match events_out with
    | Some (_, oc) -> Dpa_obs.Sink.attach_writer sink (Dpa_obs.Export.jsonl_writer oc)
    | None -> ());
    Dpa_obs.Sink.set_global (Some sink);
    Fun.protect
      ~finally:(fun () ->
        (* Runs even when [f] raises: the stream stays durable up to the
           last event emitted before the failure. *)
        Dpa_obs.Sink.close_writer sink;
        Dpa_obs.Sink.set_global None)
      (fun () -> f conf);
    let finish what render = function
      | None -> ()
      | Some (path, oc) ->
        output_string oc (render ());
        close_out oc;
        Printf.printf "wrote %s to %s\n" what path
    in
    finish "Chrome trace" (fun () -> Dpa_obs.Export.chrome_trace sink) trace_out;
    finish "metrics"
      (fun () -> Dpa_obs.Json.to_string (Dpa_obs.Export.metrics_json sink))
      metrics_out;
    (match events_out with
    | None -> ()
    | Some (path, _) ->
      (* Already streamed and closed by the [Fun.protect] finaliser. *)
      Printf.printf "wrote event log to %s (%d events)\n" path
        (Dpa_obs.Sink.streamed sink));
    (match (critpath_out, Dpa_obs.Sink.causal sink) with
    | Some (path, oc), Some c ->
      let report = Dpa_obs.Critpath.report_json c in
      output_string oc (Dpa_obs.Json.to_string report);
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote critical-path report to %s (%d phases)\n" path
        (List.length (Dpa_obs.Causal.results c))
    | _ -> ());
    if obs.profile then print_string (Dpa_obs.Export.profile sink);
    let nfiltered = Dpa_obs.Sink.filtered sink in
    if nfiltered > 0 then
      Printf.printf "(%d events filtered by --trace-cats/--spans-only)\n"
        nfiltered
  end

(* Fault-injection flags shared by every subcommand: install a process-wide
   fault plan (picked up, like the sink, by [Dpa_sim.Engine.create]) for
   the duration of the run. *)
type fault_opts = { fault_spec : string option; fault_seed : int }

let fault_term =
  let spec =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Inject deterministic network faults: a preset ($(b,none), \
             $(b,light), $(b,heavy)) or a comma list of knobs \
             (drop=P, dup=P, delay=P, jitter=NS, outages=N, outage=NS, \
             crashes=N, crash=NS, horizon=NS, slow-node=ID, \
             slow-factor=F, corrupt=P, torn-wal=P). A preset may lead the \
             list and the knobs override it, e.g. $(b,heavy,crashes=1). \
             Enables the reliable-delivery protocol (acks, dedup, \
             retransmission); $(b,crashes) additionally fail-stops each \
             node N times inside the horizon, wiping its volatile state \
             for crash=NS before it restarts and re-fetches; \
             $(b,corrupt) flips a bit in that fraction of wire copies \
             (fenced by the frame checksum at the NIC); $(b,torn-wal) \
             makes each crash damage the victim's durable-log tails with \
             that probability, repaired at restart from the doublewrite \
             slot (see docs/FAULTS.md).")
  in
  let seed =
    Arg.(
      value & opt int 0x5EED
      & info [ "fault-seed" ] ~docv:"N"
          ~doc:
            "Seed for the fault plan's RNG streams; the same seed replays \
             the same drops, duplicates and outages.")
  in
  Term.(const (fun fault_spec fault_seed -> { fault_spec; fault_seed }) $ spec $ seed)

let with_faults fo f conf =
  match fo.fault_spec with
  | None -> f conf
  | Some s -> (
    match Dpa_sim.Fault.spec_of_string s with
    | Error msg ->
      prerr_endline ("dpa_bench: --faults: " ^ msg);
      exit 1
    | Ok spec ->
      Dpa_sim.Fault.set_global ~seed:fo.fault_seed (Some spec);
      Fun.protect
        ~finally:(fun () -> Dpa_sim.Fault.set_global None)
        (fun () -> f conf))

let conf_term =
  let scale =
    Arg.(
      value
      & opt (enum [ ("small", `Small); ("full", `Full) ]) `Small
      & info [ "scale" ] ~docv:"SCALE"
          ~doc:"Experiment scale: $(b,small) (seconds) or $(b,full) (the \
                paper's configuration; minutes of host time).")
  in
  let procs =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "procs" ] ~docv:"P,P,..." ~doc:"Override the processor counts.")
  in
  let bodies =
    Arg.(
      value
      & opt (some int) None
      & info [ "bodies" ] ~docv:"N" ~doc:"Override the Barnes-Hut body count.")
  in
  let particles =
    Arg.(
      value
      & opt (some int) None
      & info [ "particles" ] ~docv:"N" ~doc:"Override the FMM particle count.")
  in
  let strip =
    Arg.(
      value
      & opt (some string) None
      & info [ "strip" ] ~docv:"N|auto"
          ~doc:
            "Override the strip size: a static count, or $(b,auto) for the \
             adaptive controller (each strip boundary doubles or halves the \
             next strip from alignment-buffer occupancy and idle fraction; \
             see the $(b,a12) experiment).")
  in
  let rto =
    Arg.(
      value
      & opt (enum [ ("const", false); ("adaptive", true) ]) true
      & info [ "rto" ] ~docv:"POLICY"
          ~doc:
            "Retransmission-timeout policy under $(b,--faults): \
             $(b,adaptive) (the default; Jacobson-Karels round-trip \
             estimation) or $(b,const) (the constant worst-case formula).")
  in
  let repartition =
    Arg.(
      value & flag
      & info [ "repartition" ]
          ~doc:
            "Barnes-Hut: re-cut ownership along Morton order between steps \
             by each body's measured traversal work instead of keeping the \
             step-1 partition. Bit-identical forces, different schedule \
             (see the $(b,a15) experiment).")
  in
  let agg_route =
    Arg.(
      value & flag
      & info [ "agg-route" ]
          ~doc:
            "Route remote accumulates through the binomial reduction tree, \
             combining en route, instead of sending every node's batches \
             straight to the owner. Bit-identical results (the update \
             grids are fixed-point) under every fault schedule, \
             $(b,crashes=) plans included: routed batches stay under \
             origin custody until the owner's end-to-end ack (see the \
             $(b,a15) experiment).")
  in
  let combine scale procs bodies particles strip rto repartition agg_route =
    Dpa_sim.Machine.set_default_adaptive_rto rto;
    let c = match scale with `Small -> Runconf.small | `Full -> Runconf.full in
    let c = match procs with Some p -> { c with Runconf.procs = p } | None -> c in
    let c =
      match bodies with Some n -> { c with Runconf.bh_bodies = n } | None -> c
    in
    let c =
      match strip with
      | None -> c
      | Some "auto" -> { c with Runconf.strip_auto = true }
      | Some s -> (
        match int_of_string_opt s with
        | Some n when n > 0 ->
          { c with Runconf.bh_strip = n; Runconf.fmm_strip = n }
        | _ ->
          prerr_endline
            "dpa_bench: --strip expects a positive integer or 'auto'";
          exit 1)
    in
    let c =
      match particles with
      | Some n -> { c with Runconf.fmm_particles = n }
      | None -> c
    in
    { c with Runconf.repartition; Runconf.route_all = agg_route }
  in
  Term.(
    const combine $ scale $ procs $ bodies $ particles $ strip $ rto
    $ repartition $ agg_route)

let run_t1 conf = Experiment.print_thread_stats (Experiment.thread_stats conf)

let run_t2 conf =
  Experiment.print_times
    ~title:
      (Printf.sprintf
         "T2: Barnes-Hut force-phase times (%d bodies, %d step(s), strip %d)"
         conf.Runconf.bh_bodies conf.Runconf.bh_steps conf.Runconf.bh_strip)
    (Experiment.bh_times conf)

let run_t3 conf =
  Experiment.print_times
    ~title:
      (Printf.sprintf "T3: FMM force-phase times (%d particles, p=%d)"
         conf.Runconf.fmm_particles conf.Runconf.fmm_p)
    (Experiment.fmm_times conf)

let run_f1 conf =
  Experiment.print_breakdown
    ~title:
      (Printf.sprintf "F1: Barnes-Hut breakdown on %d nodes"
         conf.Runconf.breakdown_procs)
    (Experiment.bh_breakdown conf)

let run_f2 conf =
  Experiment.print_breakdown
    ~title:
      (Printf.sprintf "F2: FMM breakdown on %d nodes (strip %d)"
         conf.Runconf.breakdown_procs conf.Runconf.fmm_strip)
    (Experiment.fmm_breakdown conf)

let run_f3 conf = Experiment.print_strip_sweep (Experiment.strip_sweep conf)

let run_f4 conf =
  let bh = Experiment.bh_times conf and fmm = Experiment.fmm_times conf in
  Experiment.print_speedups (Experiment.speedups ~bh ~fmm)

let run_a1 conf = Experiment.print_agg_sweep (Experiment.agg_sweep conf)

let run_a2 conf =
  let dpa =
    List.find
      (fun (t : Experiment.timing) -> t.Experiment.procs = conf.Runconf.breakdown_procs)
      (Experiment.bh_times
         { conf with Runconf.procs = [ conf.Runconf.breakdown_procs ] })
  in
  Experiment.print_cache_sweep ~dpa_time_s:dpa.Experiment.dpa_s
    (Experiment.cache_sweep conf)

let run_a3 conf =
  Experiment.print_distribution_sweep (Experiment.distribution_sweep conf)

let run_a4 conf =
  Experiment.print_partition_sweep (Experiment.partition_sweep conf)

let run_a5 conf = Experiment.print_em3d_sweep (Experiment.em3d_sweep conf)

let run_a6 conf =
  Experiment.print_latency_sweep (Experiment.latency_sweep conf)

let run_a7 conf =
  Experiment.print_upward_sweep (Experiment.upward_sweep conf)

let run_a8 conf = Experiment.print_afmm_sweep (Experiment.afmm_sweep conf)

let run_a9 conf =
  Experiment.print_cache_locality (Experiment.cache_locality conf)

let run_a10 conf = Experiment.print_hotspot (Experiment.hotspot conf)

let run_a11 conf =
  Experiment.print_chaos_sweep ~procs:conf.Runconf.breakdown_procs
    (Experiment.chaos_sweep conf)

let run_a12 conf =
  Experiment.print_adaptive_strip_sweep ~procs:conf.Runconf.breakdown_procs
    (Experiment.adaptive_strip_sweep conf);
  Experiment.print_adaptive_rto_sweep ~procs:conf.Runconf.breakdown_procs
    ~spec:"heavy"
    (Experiment.adaptive_rto_sweep conf)

let run_a13 conf = Experiment.print_crash_matrix (Experiment.crash_matrix conf)

let run_a14 conf =
  Experiment.print_integrity_matrix (Experiment.integrity_matrix conf)

let run_a15 ?(json = None) conf =
  (* Open the output before the run so a bad path fails immediately. *)
  let json_out =
    Option.map
      (fun path ->
        try (path, open_out path)
        with Sys_error e ->
          prerr_endline ("dpa_bench: " ^ e);
          exit 1)
      json
  in
  let rows = Experiment.optimality_matrix conf in
  Experiment.print_optimality_matrix rows;
  match json_out with
  | None -> ()
  | Some (path, oc) ->
    output_string oc (Dpa_obs.Json.to_string (Experiment.optimality_json rows));
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote optimality matrix to %s\n" path

let run_a16 ?(json = None) conf =
  (* Open the output before the run so a bad path fails immediately. *)
  let json_out =
    Option.map
      (fun path ->
        try (path, open_out path)
        with Sys_error e ->
          prerr_endline ("dpa_bench: " ^ e);
          exit 1)
      json
  in
  let rows = (Experiment.scale_gate conf, Experiment.scale_sweep conf) in
  Experiment.print_scale_sweep rows;
  match json_out with
  | None -> ()
  | Some (path, oc) ->
    output_string oc (Dpa_obs.Json.to_string (Experiment.scale_json rows));
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote scale sweep to %s\n" path

let run_timeline ?(csv = None) conf =
  let nnodes = conf.Runconf.breakdown_procs in
  let show variant =
    let bodies = Dpa_bh.Plummer.generate ~n:conf.Runconf.bh_bodies ~seed:17 in
    let octree = Dpa_bh.Octree.build bodies in
    let tree = Dpa_bh.Bh_global.distribute octree ~nnodes in
    let engine = Dpa_sim.Engine.create (Dpa_sim.Machine.t3d ~nodes:nnodes) in
    let trace = Dpa_sim.Trace.attach engine in
    ignore
      (Dpa_bh.Bh_run.force_phase ~engine ~tree ~bodies
         ~params:Dpa_bh.Bh_force.default_params variant);
    Dpa_sim.Trace.detach trace;
    Printf.printf "%s\n%s\n"
      (Dpa_baselines.Variant.name variant)
      (Dpa_sim.Trace.timeline trace);
    trace
  in
  let t_dpa =
    show (Dpa_baselines.Variant.dpa ~strip_size:conf.Runconf.bh_strip ())
  in
  let (_ : Dpa_sim.Trace.t) = show Dpa_baselines.Variant.Blocking in
  match csv with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Dpa_sim.Trace.to_csv t_dpa);
    close_out oc;
    Printf.printf "wrote DPA trace to %s\n" path

let run_calibrate conf =
  Printf.printf "Machine model calibration (%s scale)\n" conf.Runconf.name;
  let bodies = Dpa_bh.Plummer.generate ~n:conf.Runconf.bh_bodies ~seed:17 in
  let tree = Dpa_bh.Octree.build bodies in
  let counts = Dpa_bh.Bh_seq.compute_forces ~theta:1.0 tree in
  let ns =
    conf.Runconf.bh_steps
    * Dpa_bh.Bh_run.sequential_ns ~params:Dpa_bh.Bh_force.default_params counts
  in
  Printf.printf
    "BH  %d bodies x %d step(s): %d visits, %d body-cell, %d body-body -> \
     modelled sequential %.2f s (paper: %.2f s at 16384x4)\n"
    conf.Runconf.bh_bodies conf.Runconf.bh_steps
    (conf.Runconf.bh_steps * counts.Dpa_bh.Bh_seq.cell_visits)
    (conf.Runconf.bh_steps * counts.Dpa_bh.Bh_seq.body_cell)
    (conf.Runconf.bh_steps * counts.Dpa_bh.Bh_seq.body_body)
    (float_of_int ns *. 1e-9) Paper.bh_seq_s;
  let parts = Dpa_fmm.Particle2d.uniform ~n:conf.Runconf.fmm_particles ~seed:23 in
  let qtree = Dpa_fmm.Quadtree.build parts in
  let fcounts = Dpa_fmm.Fmm_run.structural_counts qtree in
  let params =
    { Dpa_fmm.Fmm_force.default_params with Dpa_fmm.Fmm_force.p = conf.Runconf.fmm_p }
  in
  let fns = Dpa_fmm.Fmm_run.sequential_ns ~params fcounts in
  Printf.printf
    "FMM %d particles p=%d depth=%d: %d M2L, %d evals, %d p2p -> modelled \
     sequential %.2f s (paper: %.2f s at 32768 p=29)\n"
    conf.Runconf.fmm_particles conf.Runconf.fmm_p
    (Dpa_fmm.Quadtree.depth qtree) fcounts.Dpa_fmm.Fmm_seq.m2l
    fcounts.Dpa_fmm.Fmm_seq.evals fcounts.Dpa_fmm.Fmm_seq.p2p
    (float_of_int fns *. 1e-9) Paper.fmm_seq_s

let run_all conf =
  run_calibrate conf;
  print_newline ();
  run_t1 conf;
  run_t2 conf;
  run_t3 conf;
  run_f1 conf;
  run_f2 conf;
  run_f3 conf;
  run_f4 conf;
  run_a1 conf;
  run_a2 conf;
  run_a3 conf;
  run_a4 conf;
  run_a5 conf;
  run_a6 conf;
  run_a7 conf;
  run_a8 conf;
  run_a9 conf;
  run_a10 conf;
  run_a11 conf;
  run_a12 conf;
  run_a13 conf;
  run_a14 conf;
  run_a15 conf;
  run_a16 conf

let cmd name doc f =
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const (fun fo obs conf -> with_faults fo (with_obs obs f) conf)
      $ fault_term $ obs_term $ conf_term)

let () =
  let default =
    Term.(
      const (fun fo obs conf -> with_faults fo (with_obs obs run_all) conf)
      $ fault_term $ obs_term $ conf_term)
  in
  let info =
    Cmd.info "dpa_bench" ~version:"1.0"
      ~doc:
        "Reproduce the evaluation of 'Dynamic Pointer Alignment' (PPoPP \
         1997) on the simulated machine."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            cmd "t1" "Static/dynamic thread statistics table" run_t1;
            cmd "t2" "Barnes-Hut execution-time table" run_t2;
            cmd "t3" "FMM execution-time table" run_t3;
            cmd "f1" "Barnes-Hut breakdown figure" run_f1;
            cmd "f2" "FMM breakdown figure" run_f2;
            cmd "f3" "Strip-size sensitivity figure" run_f3;
            cmd "f4" "Speedup curves" run_f4;
            cmd "a1" "Aggregation-bound ablation" run_a1;
            cmd "a2" "Caching cache-size ablation" run_a2;
            cmd "a3" "FMM input-distribution ablation" run_a3;
            cmd "a4" "Barnes-Hut partitioning ablation" run_a4;
            cmd "a5" "EM3D irregular-graph kernel" run_a5;
            cmd "a6" "Network-latency sensitivity" run_a6;
            cmd "a7" "Parallel FMM upward pass (reductions)" run_a7;
            cmd "a8" "Adaptive FMM on clustered input" run_a8;
            cmd "a9" "Cache locality of iteration order" run_a9;
            cmd "a10" "Hot-spot with link serialization" run_a10;
            cmd "a11" "Chaos sweep: faults vs goodput and correctness" run_a11;
            cmd "a12" "Adaptive strip size and adaptive RTO vs static" run_a12;
            cmd "a13" "Crash-restart chaos matrix across workloads" run_a13;
            cmd "a14"
              "End-to-end integrity matrix: wire corruption and torn WAL \
               writes across workloads"
              run_a14;
            (let json =
               Arg.(
                 value
                 & opt (some string) None
                 & info [ "json" ] ~docv:"FILE"
                     ~doc:"Also write the matrix as JSON.")
             in
             Cmd.v
               (Cmd.info "a15"
                  ~doc:
                    "Communication-optimality matrix: tree-routed \
                     aggregation and Morton repartitioning vs the \
                     flat/static baseline")
               Term.(
                 const (fun json fo obs conf ->
                     with_faults fo (with_obs obs (run_a15 ~json)) conf)
                 $ json $ fault_term $ obs_term $ conf_term));
            (let json =
               Arg.(
                 value
                 & opt (some string) None
                 & info [ "json" ] ~docv:"FILE"
                     ~doc:"Also write the sweep as JSON (BENCH_scale.json).")
             in
             Cmd.v
               (Cmd.info "a16"
                  ~doc:
                    "Flat-heap scale sweep: the allocation gate against the \
                     boxed-heap baseline, then distributed BH force phases \
                     up to a million bodies on 256 nodes (--scale full)")
               Term.(
                 const (fun json fo obs conf ->
                     with_faults fo (with_obs obs (run_a16 ~json)) conf)
                 $ json $ fault_term $ obs_term $ conf_term));
            (let csv =
               Arg.(
                 value
                 & opt (some string) None
                 & info [ "csv" ] ~docv:"FILE"
                     ~doc:"Also write the DPA run's raw trace as CSV.")
             in
             Cmd.v
               (Cmd.info "timeline"
                  ~doc:"Per-node utilization timelines (Barnes-Hut)")
               Term.(
                 const (fun csv fo obs conf ->
                     with_faults fo (with_obs obs (run_timeline ~csv)) conf)
                 $ csv $ fault_term $ obs_term $ conf_term));
            cmd "calibrate" "Compare modelled sequential times to the paper"
              run_calibrate;
            cmd "all" "Run every experiment" run_all;
          ]))

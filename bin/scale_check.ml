(* CI validator for the BENCH_scale.json artifact (see `make scale-smoke`):
   checks that the a16 sweep's JSON is structurally sound — every gate row
   carries the measured and baseline words-per-body-step, its reduction
   factor is arithmetically consistent and clears the committed threshold,
   and every scale row reports non-negative wall/allocation/GC/wire
   numbers — and then asserts the flat heap's hot-path contract directly:
   a strip-mined phase of local reads must not allocate per read
   (docs/PERFORMANCE.md).

   Usage: scale_check BENCH_scale.json *)

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("scale_check: " ^ s);
      exit 1)
    fmt

let member name j =
  match Dpa_obs.Json.member name j with
  | Some v -> v
  | None -> fail "missing field %S" name

let num name j =
  match member name j with
  | Dpa_obs.Json.Float f -> f
  | Dpa_obs.Json.Int i -> float_of_int i
  | _ -> fail "field %S is not a number" name

let int_f name j =
  match member name j with
  | Dpa_obs.Json.Int i -> i
  | _ -> fail "field %S is not an int" name

let list_f name j =
  match member name j with
  | Dpa_obs.Json.List l -> l
  | _ -> fail "field %S is not a list" name

(* ---- BENCH_scale.json structure --------------------------------------- *)

let check_json path =
  let ic = try open_in path with Sys_error e -> fail "%s" e in
  let n = in_channel_length ic in
  let raw = really_input_string ic n in
  close_in ic;
  let j =
    match Dpa_obs.Json.parse raw with
    | Ok j -> j
    | Error e -> fail "%s: parse error: %s" path e
  in
  (match member "bench" j with
  | Dpa_obs.Json.Str "scale" -> ()
  | _ -> fail "%S is not a scale sweep" path);
  let threshold = num "gate_threshold_x" j in
  if threshold < 1. then fail "gate threshold %.2f < 1" threshold;
  let gate = list_f "gate" j in
  if gate = [] then fail "empty gate table";
  List.iteri
    (fun i row ->
      let ctx s = Printf.sprintf "gate[%d].%s" i s in
      if int_f "nodes" row <= 0 then fail "%s <= 0" (ctx "nodes");
      if int_f "bodies" row <= 0 then fail "%s <= 0" (ctx "bodies");
      if int_f "steps" row <= 0 then fail "%s <= 0" (ctx "steps");
      if num "wall_s" row < 0. then fail "%s < 0" (ctx "wall_s");
      if int_f "major_collections" row < 0 then
        fail "%s < 0" (ctx "major_collections");
      let words = num "words_per_body_step" row in
      let boxed = num "boxed_words_per_body_step" row in
      let red = num "reduction_x" row in
      if words <= 0. then fail "%s <= 0" (ctx "words_per_body_step");
      if boxed <= 0. then fail "%s <= 0" (ctx "boxed_words_per_body_step");
      if Float.abs (red -. (boxed /. words)) > 1e-6 *. red then
        fail "gate[%d]: reduction_x %.4f inconsistent with %.1f/%.1f" i red
          boxed words;
      if red < threshold then
        fail "gate[%d]: reduction %.2fx below the %.1fx threshold" i red
          threshold)
    gate;
  let scale = list_f "scale" j in
  if scale = [] then fail "empty scale table";
  List.iteri
    (fun i row ->
      let ctx s = Printf.sprintf "scale[%d].%s" i s in
      if int_f "nodes" row <= 0 then fail "%s <= 0" (ctx "nodes");
      if int_f "bodies" row <= 0 then fail "%s <= 0" (ctx "bodies");
      if num "wall_s" row < 0. then fail "%s < 0" (ctx "wall_s");
      if num "words_per_body" row < 0. then fail "%s < 0" (ctx "words_per_body");
      if int_f "major_collections" row < 0 then
        fail "%s < 0" (ctx "major_collections");
      if int_f "bytes_moved" row < 0 then fail "%s < 0" (ctx "bytes_moved"))
    scale;
  Printf.printf
    "scale_check: %s structurally sound (%d gate rows >= %.1fx, %d scale \
     rows)\n"
    path (List.length gate) threshold (List.length scale)

(* ---- hot-path allocation contract -------------------------------------- *)

(* A phase of purely local reads exercises the strip hot path — spawn,
   ready-ring dispatch, continuation — with no wire traffic. On the flat
   heap the data path allocates nothing per read (the boxed heap paid a
   record copy-out each time, >= 10 words); what remains is the
   discrete-event simulator posting one event record per poll quantum,
   a couple of words amortized over the handful of dispatches each
   quantum admits. The bound leaves room for that and nothing more. *)
let check_hot_path () =
  let nnodes = 1 and nobjs = 4096 in
  let heaps = Dpa_heap.Heap.cluster ~nnodes in
  let ptrs =
    Array.init nobjs (fun slot ->
        Dpa_heap.Heap.alloc heaps.(0)
          ~floats:[| float_of_int slot |]
          ~ptrs:[||])
  in
  let nitems = 512 and reads = 64 in
  (* The harness must not allocate per read either: the accumulator is a
     float array (a [float ref] boxes on every [:=]) and the continuation
     closure is hoisted out of the read loop. *)
  let acc = Array.make 1 0. in
  let k ctx view =
    Dpa.Runtime.charge ctx 100;
    acc.(0) <-
      acc.(0) +. Dpa_heap.Heap.view_float (Dpa.Runtime.heaps ctx) view 0
  in
  let run () =
    let engine = Dpa_sim.Engine.create (Dpa_sim.Machine.t3d ~nodes:nnodes) in
    let items _node =
      Array.init nitems (fun item ->
          fun ctx ->
            for r = 0 to reads - 1 do
              let h = (item * 104729) + (r * 1299721) in
              Dpa.Runtime.read ctx ptrs.(h mod nobjs) k
            done)
    in
    ignore
      (Dpa.Runtime.run_phase ~engine ~heaps
         ~config:(Dpa.Config.dpa ~strip_size:16 ())
         ~items);
    acc.(0)
  in
  ignore (run ());
  (* warm: module init, first-phase growth *)
  let w0 = Gc.allocated_bytes () in
  let s = run () in
  let w1 = Gc.allocated_bytes () in
  ignore (Sys.opaque_identity s);
  let total_reads = nitems * reads in
  let per_read = (w1 -. w0) /. 8. /. float_of_int total_reads in
  let bound = 4.0 in
  if per_read > bound then
    fail
      "strip hot path allocates %.2f words per local read (bound %.1f): the \
       allocation-free contract is broken"
      per_read bound;
  Printf.printf
    "scale_check: strip hot path allocates %.2f words per local read (bound \
     %.1f) over %d reads\n"
    per_read bound total_reads

let () =
  (match Sys.argv with
  | [| _; path |] -> check_json path
  | _ -> fail "usage: scale_check BENCH_scale.json");
  check_hot_path ()

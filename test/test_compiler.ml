open Dpa_compiler
open Dpa_sim

let test_validate_catches_bad_arity () =
  let p =
    {
      Ast.funcs =
        [
          {
            Ast.fname = "f";
            params = [ { Ast.pname = "x"; pclass = None } ];
            body = [ Ast.Call ("f", []) ];
          };
        ];
    }
  in
  (match Ast.validate p with
  | () -> Alcotest.fail "expected Illegal"
  | exception Ast.Illegal _ -> ())

let test_validate_catches_touch_in_while () =
  let p =
    {
      Ast.funcs =
        [
          {
            Ast.fname = "f";
            params = [ { Ast.pname = "p"; pclass = Some (Ast.Global 0) } ];
            body =
              [ Ast.While (Ast.Num 1., [ Ast.Load_field ("v", "p", 0) ]) ];
          };
        ];
    }
  in
  (match Ast.validate p with
  | () -> Alcotest.fail "expected Illegal"
  | exception Ast.Illegal _ -> ())

let test_alias_propagates_through_load_ptr () =
  let f = Ast.func Programs.list_sum "sum_list" in
  let env = Alias.infer Programs.list_sum f in
  Alcotest.(check bool) "q has p's class" true
    (Alias.class_of env "q" = Some (Ast.Global 0))

let test_alias_rejects_numeric_deref () =
  let p =
    {
      Ast.funcs =
        [
          {
            Ast.fname = "f";
            params = [ { Ast.pname = "x"; pclass = None } ];
            body = [ Ast.Load_field ("v", "x", 0) ];
          };
        ];
    }
  in
  (match Alias.check p with
  | () -> Alcotest.fail "expected Illegal"
  | exception Ast.Illegal _ -> ())

let test_partition_list_sum () =
  let info = Partition.analyze Programs.list_sum (Ast.func Programs.list_sum "sum_list") in
  (* One spawn site: the first touch of p. The Load_ptr of p reuses the
     fetched object — transitive expansion keeps it in the same thread. *)
  Alcotest.(check int) "static threads" 2 info.Partition.static_threads;
  match info.Partition.spawn_sites with
  | [ s ] ->
    Alcotest.(check string) "label" "p" s.Partition.label;
    Alcotest.(check (list string)) "no hoist partners" [] s.Partition.hoisted
  | _ -> Alcotest.fail "expected one spawn site"

let test_partition_pair_sum_hoists () =
  let info = Partition.analyze Programs.pair_sum (Ast.func Programs.pair_sum "sum_pair") in
  Alcotest.(check int) "static threads" 2 info.Partition.static_threads;
  match info.Partition.spawn_sites with
  | [ s ] ->
    Alcotest.(check string) "label" "a" s.Partition.label;
    Alcotest.(check (list string)) "b hoisted" [ "b" ] s.Partition.hoisted
  | _ -> Alcotest.fail "expected one spawn site (b folded into a's alignment)"

let test_partition_tree_sum () =
  let info = Partition.analyze Programs.tree_sum (Ast.func Programs.tree_sum "sum_tree") in
  (* All four accesses to t (one field, two pointer loads) are one thread. *)
  Alcotest.(check int) "static threads" 2 info.Partition.static_threads

let machine nodes = Machine.t3d ~nodes

module I_dpa = Interp.Make (Dpa.Runtime)
module I_caching = Interp.Make (Dpa_baselines.Caching)

let run_list_sum_dpa ~nnodes ~len =
  let heaps = Dpa_heap.Heap.cluster ~nnodes in
  let head =
    Programs.build_list heaps ~length:len
      ~value:(fun i -> float_of_int (i + 1))
      ~owner:(fun i -> i mod nnodes)
  in
  let c = I_dpa.compile Programs.list_sum in
  let engine = Engine.create (machine nnodes) in
  let items node =
    if node = 0 then
      [| I_dpa.item c ~entry:"sum_list" ~args:[ Value.Ptr head ] |]
    else [||]
  in
  let breakdown, stats =
    Dpa.Runtime.run_phase ~engine ~heaps ~config:(Dpa.Config.dpa ()) ~items
  in
  (I_dpa.accumulator c "sum", breakdown, stats)

let test_interp_list_sum () =
  let len = 40 in
  let sum, _, _ = run_list_sum_dpa ~nnodes:3 ~len in
  Alcotest.(check (float 1e-9)) "sum 1..40" (float_of_int (len * (len + 1) / 2)) sum

let test_interp_list_sum_single_node () =
  let sum, _, stats = run_list_sum_dpa ~nnodes:1 ~len:25 in
  Alcotest.(check (float 1e-9)) "sum" 325. sum;
  Alcotest.(check int) "no fetches" 0 stats.Dpa.Dpa_stats.spawns

let test_interp_tree_sum_all_runtimes () =
  let depth = 6 in
  let ncells = (1 lsl depth) - 1 in
  let expected =
    (* value i = i+1 for i in 0..ncells-1 *)
    float_of_int (ncells * (ncells + 1) / 2)
  in
  let run_dpa () =
    let heaps = Dpa_heap.Heap.cluster ~nnodes:4 in
    let root =
      Programs.build_tree heaps ~depth
        ~value:(fun i -> float_of_int (i + 1))
        ~owner:(fun i -> i mod 4)
    in
    let c = I_dpa.compile Programs.tree_sum in
    let engine = Engine.create (machine 4) in
    let items node =
      if node = 0 then
        [| I_dpa.item c ~entry:"sum_tree" ~args:[ Value.Ptr root ] |]
      else [||]
    in
    ignore (Dpa.Runtime.run_phase ~engine ~heaps ~config:(Dpa.Config.dpa ()) ~items);
    I_dpa.accumulator c "sum"
  in
  let run_caching () =
    let heaps = Dpa_heap.Heap.cluster ~nnodes:4 in
    let root =
      Programs.build_tree heaps ~depth
        ~value:(fun i -> float_of_int (i + 1))
        ~owner:(fun i -> i mod 4)
    in
    let c = I_caching.compile Programs.tree_sum in
    let engine = Engine.create (machine 4) in
    let items node =
      if node = 0 then
        [| I_caching.item c ~entry:"sum_tree" ~args:[ Value.Ptr root ] |]
      else [||]
    in
    ignore
      (Dpa_baselines.Caching.run_phase ~engine ~heaps ~capacity:64 ~items ());
    I_caching.accumulator c "sum"
  in
  Alcotest.(check (float 1e-9)) "dpa" expected (run_dpa ());
  Alcotest.(check (float 1e-9)) "caching" expected (run_caching ())

let test_interp_pair_sum_hoist_batches () =
  (* Both pointers live on node 1; hoisting must fetch them in one request
     message. *)
  let heaps = Dpa_heap.Heap.cluster ~nnodes:2 in
  let a = Dpa_heap.Heap.alloc heaps.(1) ~floats:[| 3. |] ~ptrs:[||] in
  let b = Dpa_heap.Heap.alloc heaps.(1) ~floats:[| 4. |] ~ptrs:[||] in
  let c = I_dpa.compile Programs.pair_sum in
  let engine = Engine.create (machine 2) in
  let items node =
    if node = 0 then
      [| I_dpa.item c ~entry:"sum_pair" ~args:[ Value.Ptr a; Value.Ptr b ] |]
    else [||]
  in
  let _, stats =
    Dpa.Runtime.run_phase ~engine ~heaps ~config:(Dpa.Config.dpa ()) ~items
  in
  Alcotest.(check (float 1e-9)) "sum" 7. (I_dpa.accumulator c "sum");
  Alcotest.(check int) "one aggregated message" 1
    stats.Dpa.Dpa_stats.request_msgs;
  Alcotest.(check int) "two objects in it" 2 stats.Dpa.Dpa_stats.requests

let test_interp_while_loop () =
  let p =
    {
      Ast.funcs =
        [
          {
            Ast.fname = "count";
            params = [ { Ast.pname = "n"; pclass = None } ];
            body =
              [
                Ast.Let ("i", Ast.Num 0.);
                Ast.While
                  ( Ast.Binop (Ast.Lt, Ast.Var "i", Ast.Var "n"),
                    [
                      Ast.Accum ("total", Ast.Var "i");
                      Ast.Let ("i", Ast.Binop (Ast.Add, Ast.Var "i", Ast.Num 1.));
                    ] );
              ];
          };
        ];
    }
  in
  let heaps = Dpa_heap.Heap.cluster ~nnodes:1 in
  let c = I_dpa.compile p in
  let engine = Engine.create (machine 1) in
  let items _ = [| I_dpa.item c ~entry:"count" ~args:[ Value.Num 10. ] |] in
  ignore (Dpa.Runtime.run_phase ~engine ~heaps ~config:(Dpa.Config.dpa ()) ~items);
  Alcotest.(check (float 1e-9)) "sum 0..9" 45. (I_dpa.accumulator c "total")

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_pretty_roundtrip_smoke () =
  let s = Format.asprintf "%a" Pretty.pp_program Programs.tree_sum in
  Alcotest.(check bool) "mentions function" true (contains s "sum_tree");
  let info =
    Partition.analyze Programs.pair_sum (Ast.func Programs.pair_sum "sum_pair")
  in
  let s = Format.asprintf "%a" Pretty.pp_info info in
  Alcotest.(check bool) "mentions hoist" true (contains s "hoisting b")

let suites =
  [
    ( "compiler.validate",
      [
        Alcotest.test_case "bad arity" `Quick test_validate_catches_bad_arity;
        Alcotest.test_case "touch in while" `Quick
          test_validate_catches_touch_in_while;
      ] );
    ( "compiler.alias",
      [
        Alcotest.test_case "propagation" `Quick
          test_alias_propagates_through_load_ptr;
        Alcotest.test_case "numeric deref rejected" `Quick
          test_alias_rejects_numeric_deref;
      ] );
    ( "compiler.partition",
      [
        Alcotest.test_case "list_sum" `Quick test_partition_list_sum;
        Alcotest.test_case "pair_sum hoists" `Quick
          test_partition_pair_sum_hoists;
        Alcotest.test_case "tree_sum" `Quick test_partition_tree_sum;
      ] );
    ( "compiler.interp",
      [
        Alcotest.test_case "list sum (dpa)" `Quick test_interp_list_sum;
        Alcotest.test_case "list sum single node" `Quick
          test_interp_list_sum_single_node;
        Alcotest.test_case "tree sum all runtimes" `Quick
          test_interp_tree_sum_all_runtimes;
        Alcotest.test_case "pair hoist batches" `Quick
          test_interp_pair_sum_hoist_batches;
        Alcotest.test_case "while loop" `Quick test_interp_while_loop;
        Alcotest.test_case "pretty smoke" `Quick test_pretty_roundtrip_smoke;
      ] );
  ]

(* --- conc blocks -------------------------------------------------------- *)

let gp = Some (Ast.Global 0)

let test_conc_join () =
  (* A conc block joins before the following statement runs. *)
  let p =
    {
      Ast.funcs =
        [
          {
            Ast.fname = "pair";
            params = [ { Ast.pname = "a"; pclass = gp }; { Ast.pname = "b"; pclass = gp } ];
            body =
              [
                Ast.Conc
                  [ Ast.Load_field ("x", "a", 0); Ast.Load_field ("y", "b", 0) ];
                Ast.Accum ("sum", Ast.Binop (Ast.Add, Ast.Var "x", Ast.Var "y"));
              ];
          };
        ];
    }
  in
  let heaps = Dpa_heap.Heap.cluster ~nnodes:3 in
  let a = Dpa_heap.Heap.alloc heaps.(1) ~floats:[| 5. |] ~ptrs:[||] in
  let b = Dpa_heap.Heap.alloc heaps.(2) ~floats:[| 6. |] ~ptrs:[||] in
  let c = I_dpa.compile p in
  let engine = Engine.create (machine 3) in
  let items node =
    if node = 0 then
      [| I_dpa.item c ~entry:"pair" ~args:[ Value.Ptr a; Value.Ptr b ] |]
    else [||]
  in
  ignore (Dpa.Runtime.run_phase ~engine ~heaps ~config:(Dpa.Config.dpa ()) ~items);
  Alcotest.(check (float 1e-9)) "joined before accum" 11.
    (I_dpa.accumulator c "sum")

let test_conc_tree_spawns_concurrently () =
  (* With conc recursion the two subtrees are outstanding at once. *)
  let heaps = Dpa_heap.Heap.cluster ~nnodes:2 in
  let root =
    Programs.build_tree heaps ~depth:8
      ~value:(fun _ -> 1.)
      ~owner:(fun i -> i mod 2)
  in
  let c = I_dpa.compile Programs.tree_sum in
  let engine = Engine.create (machine 2) in
  let items node =
    if node = 0 then [| I_dpa.item c ~entry:"sum_tree" ~args:[ Value.Ptr root ] |]
    else [||]
  in
  let _, stats =
    Dpa.Runtime.run_phase ~engine ~heaps ~config:(Dpa.Config.dpa ()) ~items
  in
  Alcotest.(check (float 1e-9)) "count" 255. (I_dpa.accumulator c "sum");
  Alcotest.(check bool) "concurrency materialized" true
    (stats.Dpa.Dpa_stats.max_outstanding > 1)

let test_conc_partition_intersection () =
  (* Availability after a conc block is the intersection of its branches:
     a touch in only one arm does not make the pointer available after. *)
  let p =
    {
      Ast.funcs =
        [
          {
            Ast.fname = "f";
            params = [ { Ast.pname = "a"; pclass = gp } ];
            body =
              [
                Ast.Conc [ Ast.Load_field ("x", "a", 0); Ast.Let ("y", Ast.Num 1.) ];
                Ast.Load_field ("z", "a", 0);
              ];
          };
        ];
    }
  in
  let info = Partition.analyze p (Ast.func p "f") in
  (* Two spawn sites: inside the conc arm, and again after the block. *)
  Alcotest.(check int) "spawn sites" 2
    (List.length info.Partition.spawn_sites)

let test_pretty_prints_conc () =
  let s = Format.asprintf "%a" Pretty.pp_program Programs.tree_sum in
  Alcotest.(check bool) "conc keyword" true (contains s "conc {")

let conc_suites =
  [
    ( "compiler.conc",
      [
        Alcotest.test_case "join before continuation" `Quick test_conc_join;
        Alcotest.test_case "tree spawns concurrently" `Quick
          test_conc_tree_spawns_concurrently;
        Alcotest.test_case "partition intersection" `Quick
          test_conc_partition_intersection;
        Alcotest.test_case "pretty prints conc" `Quick test_pretty_prints_conc;
      ] );
  ]

let suites = suites @ conc_suites

(* Hoisting is per alias class: pointers of different classes must get
   separate alignment points even when both are in scope. *)
let test_distinct_classes_not_hoisted () =
  let p =
    {
      Ast.funcs =
        [
          {
            Ast.fname = "g";
            params =
              [
                { Ast.pname = "a"; pclass = Some (Ast.Global 0) };
                { Ast.pname = "b"; pclass = Some (Ast.Global 1) };
              ];
            body =
              [
                Ast.Load_field ("x", "a", 0);
                Ast.Load_field ("y", "b", 0);
                Ast.Accum ("s", Ast.Binop (Ast.Add, Ast.Var "x", Ast.Var "y"));
              ];
          };
        ];
    }
  in
  let info = Partition.analyze p (Ast.func p "g") in
  Alcotest.(check int) "two spawn sites" 2
    (List.length info.Partition.spawn_sites);
  List.iter
    (fun s ->
      Alcotest.(check (list string)) "nothing hoisted" [] s.Partition.hoisted)
    info.Partition.spawn_sites

let suites =
  suites
  @ [
      ( "compiler.classes",
        [
          Alcotest.test_case "distinct classes not hoisted" `Quick
            test_distinct_classes_not_hoisted;
        ] );
    ]

open Dpa_fmm

let c re im = { Complex.re; im }
let capprox ?(tol = 1e-9) a b = Complex.norm (Complex.sub a b) <= tol

let test_binomial () =
  Alcotest.(check (float 0.)) "C(5,2)" 10. (Expansion.binomial 5 2);
  Alcotest.(check (float 0.)) "C(0,0)" 1. (Expansion.binomial 0 0);
  Alcotest.(check (float 0.)) "C(3,5)" 0. (Expansion.binomial 3 5);
  Alcotest.(check (float 0.)) "C(20,10)" 184756. (Expansion.binomial 20 10)

(* A couple of well-separated charge/evaluation configurations. *)
let sources = [ (0.7, c 0.1 0.05); (0.3, c 0.05 (-0.08)) ]
let src_center = Complex.zero
let eval_points = [ c 2.0 1.0; c (-1.5) 2.2; c 3.0 (-0.4) ]

let check_phi name got want =
  (* Compare Re(phi) (branch-cut free) and phi'. *)
  let gp, gd = got and wp, wd = want in
  Alcotest.(check (float 1e-8))
    (name ^ " Re phi") wp.Complex.re gp.Complex.re;
  Alcotest.(check bool) (name ^ " phi'") true (capprox ~tol:1e-8 gd wd)

let test_p2m_eval () =
  let a = Expansion.p2m ~p:20 ~center:src_center sources in
  List.iter
    (fun z ->
      check_phi "multipole"
        (Expansion.eval_multipole a ~center:src_center z)
        (Expansion.direct sources z))
    eval_points

let test_m2m () =
  let a = Expansion.p2m ~p:20 ~center:src_center sources in
  let c' = c 0.2 (-0.1) in
  let b = Expansion.m2m a ~from_center:src_center ~to_center:c' in
  List.iter
    (fun z ->
      check_phi "shifted multipole"
        (Expansion.eval_multipole b ~center:c' z)
        (Expansion.direct sources z))
    eval_points

let test_m2l () =
  let a = Expansion.p2m ~p:25 ~center:src_center sources in
  let lc = c 2.0 1.5 in
  let b = Expansion.m2l a ~from_center:src_center ~to_center:lc in
  (* Evaluate near the local center. *)
  List.iter
    (fun z ->
      check_phi "local"
        (Expansion.eval_local b ~center:lc z)
        (Expansion.direct sources z))
    [ c 2.1 1.4; c 1.9 1.6; lc ]

let test_l2l () =
  let a = Expansion.p2m ~p:25 ~center:src_center sources in
  let lc = c 2.0 1.5 in
  let b = Expansion.m2l a ~from_center:src_center ~to_center:lc in
  let lc' = c 2.15 1.45 in
  let b' = Expansion.l2l b ~from_center:lc ~to_center:lc' in
  List.iter
    (fun z ->
      check_phi "shifted local"
        (Expansion.eval_local b' ~center:lc' z)
        (Expansion.eval_local b ~center:lc z))
    [ c 2.1 1.5; c 2.2 1.4 ]

let qcheck_m2l_converges =
  QCheck.Test.make ~name:"m2l error shrinks with order" ~count:30
    QCheck.(pair (float_range 0.2 0.45) (float_range 0.2 0.45))
    (fun (sx, sy) ->
      let srcs = [ (1.0, c sx sy); (0.5, c (-.sx) (0.3 *. sy)) ] in
      let lc = c 3.0 0.5 in
      let z = c 3.1 0.6 in
      let err p =
        let a = Expansion.p2m ~p ~center:Complex.zero srcs in
        let b = Expansion.m2l a ~from_center:Complex.zero ~to_center:lc in
        let _, gd = Expansion.eval_local b ~center:lc z in
        let _, wd = Expansion.direct srcs z in
        Complex.norm (Complex.sub gd wd)
      in
      err 20 <= err 5 +. 1e-12)

let test_quadtree_indexing () =
  let parts = Particle2d.uniform ~n:100 ~seed:3 in
  let t = Quadtree.build ~depth:4 parts in
  Alcotest.(check int) "depth" 4 (Quadtree.depth t);
  Alcotest.(check int) "ncells" (1 + 4 + 16 + 64 + 256) (Quadtree.ncells t);
  Alcotest.(check int) "nleaves" 256 (Quadtree.nleaves t);
  let i = Quadtree.index t ~level:3 ~ix:5 ~iy:2 in
  Alcotest.(check int) "level" 3 (Quadtree.level_of t i);
  Alcotest.(check (pair int int)) "coords" (5, 2) (Quadtree.coords_of t i);
  let p = Quadtree.parent t i in
  Alcotest.(check (pair int int)) "parent coords" (2, 1) (Quadtree.coords_of t p);
  Alcotest.(check int) "ancestor" p (Quadtree.ancestor t i ~level:2)

let test_quadtree_particles_assigned () =
  let parts = Particle2d.uniform ~n:500 ~seed:5 in
  let t = Quadtree.build parts in
  let total =
    Array.fold_left
      (fun acc leaf -> acc + Array.length (Quadtree.leaf_particles t leaf))
      0 (Quadtree.leaves_in_morton_order t)
  in
  Alcotest.(check int) "all particles in leaves" 500 total;
  Array.iter
    (fun p ->
      let leaf = Quadtree.leaf_of_particle t p.Particle2d.id in
      let members = Quadtree.leaf_particles t leaf in
      if not (Array.exists (fun x -> x = p.Particle2d.id) members) then
        Alcotest.fail "particle not in its leaf")
    parts

let test_quadtree_particle_in_cell_bounds () =
  let parts = Particle2d.uniform ~n:300 ~seed:9 in
  let t = Quadtree.build parts in
  Array.iter
    (fun p ->
      let leaf = Quadtree.leaf_of_particle t p.Particle2d.id in
      let ctr = Quadtree.center t leaf and w = Quadtree.width t leaf in
      let dz = Complex.sub p.Particle2d.z ctr in
      Alcotest.(check bool) "inside" true
        (Float.abs dz.Complex.re <= (w /. 2.) +. 1e-12
        && Float.abs dz.Complex.im <= (w /. 2.) +. 1e-12))
    parts

let test_v_list_well_separated () =
  let parts = Particle2d.uniform ~n:64 ~seed:11 in
  let t = Quadtree.build ~depth:4 parts in
  for level = 2 to 4 do
    let side = 1 lsl level in
    for iy = 0 to side - 1 do
      for ix = 0 to side - 1 do
        let ci = Quadtree.index t ~level ~ix ~iy in
        Array.iter
          (fun v ->
            let jx, jy = Quadtree.coords_of t v in
            Alcotest.(check bool) "separated" true
              (max (abs (jx - ix)) (abs (jy - iy)) >= 2);
            Alcotest.(check int) "same level" level (Quadtree.level_of t v);
            (* parent is a neighbor of our parent *)
            let pix, piy = Quadtree.coords_of t (Quadtree.parent t ci) in
            let pjx, pjy = Quadtree.coords_of t (Quadtree.parent t v) in
            Alcotest.(check bool) "parents adjacent" true
              (max (abs (pjx - pix)) (abs (pjy - piy)) <= 1))
          (Quadtree.v_list t ci)
      done
    done
  done

(* The fundamental FMM partition property: for any leaf, the union of the
   ancestors' V lists plus the leaf's U list covers every leaf of the
   domain exactly once (each leaf is either in U, or has exactly one
   ancestor inside exactly one covering V cell). *)
let test_far_near_coverage () =
  let parts = Particle2d.uniform ~n:64 ~seed:13 in
  let t = Quadtree.build ~depth:4 parts in
  let depth = Quadtree.depth t in
  let leaves = Quadtree.leaves_in_morton_order t in
  Array.iter
    (fun leaf ->
      let cover = Hashtbl.create 64 in
      for level = 2 to depth do
        let a = Quadtree.ancestor t leaf ~level in
        Array.iter
          (fun v ->
            Array.iter
              (fun other ->
                let seen = Option.value ~default:0 (Hashtbl.find_opt cover other) in
                Hashtbl.replace cover other (seen + 1))
              (Array.of_list
                 (List.filter
                    (fun l -> Quadtree.ancestor t l ~level:(Quadtree.level_of t v) = v)
                    (Array.to_list leaves))))
          (Quadtree.v_list t a)
      done;
      Array.iter
        (fun u ->
          let seen = Option.value ~default:0 (Hashtbl.find_opt cover u) in
          Hashtbl.replace cover u (seen + 1))
        (Quadtree.u_list t leaf);
      Array.iter
        (fun other ->
          match Hashtbl.find_opt cover other with
          | Some 1 -> ()
          | Some k -> Alcotest.failf "leaf covered %d times" k
          | None -> Alcotest.fail "leaf not covered")
        leaves)
    (Array.sub leaves 0 16)

let test_morton () =
  Alcotest.(check int) "morton(0,0)" 0 (Quadtree.morton ~ix:0 ~iy:0);
  Alcotest.(check int) "morton(1,0)" 1 (Quadtree.morton ~ix:1 ~iy:0);
  Alcotest.(check int) "morton(0,1)" 2 (Quadtree.morton ~ix:0 ~iy:1);
  Alcotest.(check int) "morton(3,5)" 39 (Quadtree.morton ~ix:3 ~iy:5)

let test_fmm_accuracy_vs_direct () =
  let parts = Particle2d.uniform ~n:400 ~seed:17 in
  let tree = Quadtree.build ~target_occupancy:6 parts in
  let approx, _ = Fmm_seq.compute ~p:13 tree in
  let exact = Fmm_direct.compute parts in
  let err = Fmm_direct.max_field_error approx ~reference:exact in
  Alcotest.(check bool) (Printf.sprintf "field error %.2e < 2e-3" err) true
    (err < 2e-3);
  (* Potentials too (up to the softening-free exact comparison). *)
  let worst = ref 0. in
  Array.iteri
    (fun i p ->
      worst := max !worst (Float.abs (p -. exact.Fmm_seq.potential.(i))))
    approx.Fmm_seq.potential;
  Alcotest.(check bool) (Printf.sprintf "potential error %.2e" !worst) true
    (!worst < 2e-3)

let test_fmm_higher_order_more_accurate () =
  let parts = Particle2d.uniform ~n:200 ~seed:19 in
  let tree = Quadtree.build parts in
  let exact = Fmm_direct.compute parts in
  let err p =
    let r, _ = Fmm_seq.compute ~p tree in
    Fmm_direct.max_field_error r ~reference:exact
  in
  Alcotest.(check bool) "p=20 beats p=5" true (err 20 < err 5)

let run_force variant ~nnodes ~nparticles =
  let r = Fmm_run.run ~nnodes ~nparticles variant in
  r

let test_distributed_matches_seq variant name () =
  let r = run_force variant ~nnodes:4 ~nparticles:300 in
  let seq, _ = Fmm_seq.compute ~p:Fmm_force.default_params.Fmm_force.p r.Fmm_run.tree in
  let got = r.Fmm_run.phase.Fmm_run.result in
  Array.iteri
    (fun i want ->
      if Float.abs (want -. got.Fmm_seq.potential.(i)) > 1e-9 then
        Alcotest.failf "%s: potential %d differs (%g vs %g)" name i want
          got.Fmm_seq.potential.(i))
    seq.Fmm_seq.potential;
  Array.iteri
    (fun i want ->
      if not (capprox ~tol:1e-9 want got.Fmm_seq.field.(i)) then
        Alcotest.failf "%s: field %d differs" name i)
    seq.Fmm_seq.field

let test_fmm_dpa_beats_blocking () =
  let t variant =
    (run_force variant ~nnodes:4 ~nparticles:600).Fmm_run.phase.Fmm_run
      .breakdown.Dpa_sim.Breakdown.elapsed_ns
  in
  Alcotest.(check bool) "dpa faster" true
    (t (Dpa_baselines.Variant.dpa ()) < t Dpa_baselines.Variant.Blocking)

let test_structural_counts_match () =
  let parts = Particle2d.uniform ~n:300 ~seed:29 in
  let tree = Quadtree.build parts in
  let _, counted = Fmm_seq.compute ~p:8 tree in
  let structural = Fmm_run.structural_counts tree in
  Alcotest.(check int) "m2l" counted.Fmm_seq.m2l structural.Fmm_seq.m2l;
  Alcotest.(check int) "evals" counted.Fmm_seq.evals structural.Fmm_seq.evals;
  (* p2p: Fmm_seq counts all source entries including self-pairs skipped by
     distance inside [direct]; structural_counts does the same. *)
  Alcotest.(check int) "p2p" counted.Fmm_seq.p2p structural.Fmm_seq.p2p

let suites =
  [
    ( "fmm.expansion",
      [
        Alcotest.test_case "binomials" `Quick test_binomial;
        Alcotest.test_case "p2m/eval" `Quick test_p2m_eval;
        Alcotest.test_case "m2m" `Quick test_m2m;
        Alcotest.test_case "m2l" `Quick test_m2l;
        Alcotest.test_case "l2l" `Quick test_l2l;
        QCheck_alcotest.to_alcotest qcheck_m2l_converges;
      ] );
    ( "fmm.quadtree",
      [
        Alcotest.test_case "indexing" `Quick test_quadtree_indexing;
        Alcotest.test_case "particles assigned" `Quick
          test_quadtree_particles_assigned;
        Alcotest.test_case "particles in bounds" `Quick
          test_quadtree_particle_in_cell_bounds;
        Alcotest.test_case "v-list separation" `Quick test_v_list_well_separated;
        Alcotest.test_case "far/near coverage" `Quick test_far_near_coverage;
        Alcotest.test_case "morton" `Quick test_morton;
      ] );
    ( "fmm.accuracy",
      [
        Alcotest.test_case "vs direct" `Quick test_fmm_accuracy_vs_direct;
        Alcotest.test_case "order improves accuracy" `Quick
          test_fmm_higher_order_more_accurate;
      ] );
    ( "fmm.force",
      [
        Alcotest.test_case "dpa matches sequential" `Quick
          (test_distributed_matches_seq (Dpa_baselines.Variant.dpa ()) "dpa");
        Alcotest.test_case "caching matches sequential" `Quick
          (test_distributed_matches_seq
             (Dpa_baselines.Variant.Caching { capacity = 256 })
             "caching");
        Alcotest.test_case "blocking matches sequential" `Quick
          (test_distributed_matches_seq Dpa_baselines.Variant.Blocking
             "blocking");
        Alcotest.test_case "dpa beats blocking" `Quick test_fmm_dpa_beats_blocking;
        Alcotest.test_case "structural counts" `Quick
          test_structural_counts_match;
      ] );
  ]

open Dpa_bh

let vec3 = Alcotest.testable Vec3.pp (Vec3.approx_equal ~tol:1e-12)

let test_vec3_ops () =
  let a = Vec3.make 1. 2. 3. and b = Vec3.make 4. (-5.) 6. in
  Alcotest.check vec3 "add" (Vec3.make 5. (-3.) 9.) (Vec3.add a b);
  Alcotest.check vec3 "sub" (Vec3.make (-3.) 7. (-3.)) (Vec3.sub a b);
  Alcotest.(check (float 1e-12)) "dot" 12. (Vec3.dot a b);
  Alcotest.(check (float 1e-12)) "norm" (sqrt 14.) (Vec3.norm a);
  Alcotest.check vec3 "axpy" (Vec3.make 6. (-1.) 12.) (Vec3.axpy 2. a b)

let test_plummer_deterministic () =
  let a = Plummer.generate ~n:64 ~seed:3 and b = Plummer.generate ~n:64 ~seed:3 in
  Array.iteri
    (fun i x ->
      Alcotest.check vec3 "same pos" x.Body.pos b.(i).Body.pos;
      Alcotest.check vec3 "same vel" x.Body.vel b.(i).Body.vel)
    a

let test_plummer_com_frame () =
  let bodies = Plummer.generate ~n:500 ~seed:5 in
  let p = Body.total_momentum bodies in
  Alcotest.(check bool) "momentum ~ 0" true (Vec3.norm p < 1e-10);
  let total_mass = Array.fold_left (fun a b -> a +. b.Body.mass) 0. bodies in
  Alcotest.(check (float 1e-9)) "unit mass" 1.0 total_mass

let test_octree_contains_all_bodies () =
  let bodies = Plummer.generate ~n:300 ~seed:7 in
  let tree = Octree.build bodies in
  Alcotest.(check int) "root holds all" 300 (Octree.nbodies tree (Octree.root tree));
  let order = Octree.dfs_body_order tree in
  Alcotest.(check int) "order covers all" 300 (Array.length order);
  let sorted = Array.copy order in
  Array.sort compare sorted;
  Array.iteri (fun i v -> Alcotest.(check int) "is a permutation" i v) sorted

let test_octree_leaf_cap () =
  let bodies = Plummer.generate ~n:200 ~seed:11 in
  let cap = 4 in
  let tree = Octree.build ~leaf_cap:cap bodies in
  for ci = 0 to Octree.ncells tree - 1 do
    match Octree.kind tree ci with
    | Octree.Leaf ids ->
      if Array.length ids > cap then Alcotest.fail "leaf over capacity"
    | Octree.Internal _ -> ()
  done

let test_octree_mass_conservation () =
  let bodies = Plummer.generate ~n:128 ~seed:13 in
  let tree = Octree.build bodies in
  Alcotest.(check (float 1e-9)) "root mass" 1.0 (Octree.mass tree (Octree.root tree))

let test_octree_com () =
  let bodies = Plummer.generate ~n:128 ~seed:13 in
  let tree = Octree.build bodies in
  let want = ref Vec3.zero in
  Array.iter (fun b -> want := Vec3.axpy b.Body.mass b.Body.pos !want) bodies;
  let want = Vec3.scale (1. /. Octree.mass tree (Octree.root tree)) !want in
  Alcotest.(check bool) "root com" true
    (Vec3.approx_equal ~tol:1e-9 want (Octree.com tree (Octree.root tree)))

let qcheck_octree_bodies_in_bounds =
  QCheck.Test.make ~name:"octree cubes contain their bodies" ~count:30
    QCheck.(int_range 2 100)
    (fun n ->
      let bodies = Plummer.uniform_cube ~n ~seed:n in
      let tree = Octree.build ~leaf_cap:2 bodies in
      let ok = ref true in
      for ci = 0 to Octree.ncells tree - 1 do
        match Octree.kind tree ci with
        | Octree.Leaf ids ->
          let c = Octree.center tree ci and h = Octree.half tree ci in
          Array.iter
            (fun bid ->
              let p = bodies.(bid).Body.pos in
              let inside =
                Float.abs (p.Vec3.x -. c.Vec3.x) <= h +. 1e-9
                && Float.abs (p.Vec3.y -. c.Vec3.y) <= h +. 1e-9
                && Float.abs (p.Vec3.z -. c.Vec3.z) <= h +. 1e-9
              in
              if not inside then ok := false)
            ids
        | Octree.Internal _ -> ()
      done;
      !ok)

let test_bh_accuracy_vs_direct () =
  let bodies = Plummer.generate ~n:256 ~seed:19 in
  let tree = Octree.build bodies in
  ignore (Bh_seq.compute_forces ~theta:0.5 tree);
  let approx = Array.map (fun b -> b.Body.acc) bodies in
  Bh_direct.compute_forces bodies;
  let exact = Array.map (fun b -> b.Body.acc) bodies in
  let worst = ref 0. in
  Array.iteri
    (fun i a ->
      let n = Vec3.norm exact.(i) in
      if n > 0. then worst := max !worst (Vec3.dist a exact.(i) /. n))
    approx;
  Alcotest.(check bool)
    (Printf.sprintf "theta=0.5 error %.4f < 0.02" !worst)
    true (!worst < 0.02)

let test_bh_theta_zero_is_direct () =
  (* theta = 0 opens every cell: identical interactions to direct sum. *)
  let bodies = Plummer.generate ~n:64 ~seed:23 in
  let tree = Octree.build ~leaf_cap:1 bodies in
  ignore (Bh_seq.compute_forces ~theta:0. tree);
  let approx = Array.map (fun b -> b.Body.acc) bodies in
  Bh_direct.compute_forces bodies;
  Array.iteri
    (fun i a ->
      Alcotest.(check bool) "matches direct" true
        (Vec3.approx_equal ~tol:1e-9 a bodies.(i).Body.acc))
    approx

let test_quadrupole_of_symmetric_pair () =
  (* Two unit masses at (+-1, 0, 0): com at origin; Q = diag(2m, -m, -m)
     with m summed over both bodies: xx = 2*(3*1-1)=4, yy = zz = -2. *)
  let bodies =
    [|
      Body.make ~id:0 ~mass:1. ~pos:(Vec3.make 1. 0. 0.) ~vel:Vec3.zero;
      Body.make ~id:1 ~mass:1. ~pos:(Vec3.make (-1.) 0. 0.) ~vel:Vec3.zero;
    |]
  in
  let tree = Octree.build ~leaf_cap:2 bodies in
  let q = Octree.quad tree (Octree.root tree) in
  Alcotest.(check (float 1e-12)) "xx" 4. q.(0);
  Alcotest.(check (float 1e-12)) "yy" (-2.) q.(3);
  Alcotest.(check (float 1e-12)) "zz" (-2.) q.(5);
  Alcotest.(check (float 1e-12)) "xy" 0. q.(1);
  (* Traceless. *)
  Alcotest.(check (float 1e-12)) "trace" 0. (q.(0) +. q.(3) +. q.(5))

let test_quad_shift_consistent () =
  (* The parallel-axis accumulation must equal a direct computation about
     the root's center of mass. *)
  let bodies = Plummer.generate ~n:200 ~seed:41 in
  let tree = Octree.build ~leaf_cap:4 bodies in
  let root = Octree.root tree in
  let com = Octree.com tree root in
  let want = Array.make 6 0. in
  Array.iter
    (fun b ->
      let d = Vec3.sub b.Body.pos com in
      let d2 = Vec3.norm2 d in
      want.(0) <- want.(0) +. (b.Body.mass *. ((3. *. d.Vec3.x *. d.Vec3.x) -. d2));
      want.(1) <- want.(1) +. (b.Body.mass *. 3. *. d.Vec3.x *. d.Vec3.y);
      want.(2) <- want.(2) +. (b.Body.mass *. 3. *. d.Vec3.x *. d.Vec3.z);
      want.(3) <- want.(3) +. (b.Body.mass *. ((3. *. d.Vec3.y *. d.Vec3.y) -. d2));
      want.(4) <- want.(4) +. (b.Body.mass *. 3. *. d.Vec3.y *. d.Vec3.z);
      want.(5) <- want.(5) +. (b.Body.mass *. ((3. *. d.Vec3.z *. d.Vec3.z) -. d2)))
    bodies;
  let got = Octree.quad tree root in
  Array.iteri
    (fun i w ->
      if Float.abs (w -. got.(i)) > 1e-9 then
        Alcotest.failf "component %d: %g vs %g" i got.(i) w)
    want

let test_quadrupole_improves_accuracy () =
  let bodies = Plummer.generate ~n:300 ~seed:43 in
  let tree = Octree.build bodies in
  Bh_direct.compute_forces ~eps:0.05 bodies;
  let exact = Array.map (fun b -> b.Body.acc) bodies in
  let err use_quad =
    let worst = ref 0. in
    Array.iteri
      (fun i b ->
        let a = Bh_seq.force_on ~theta:1.0 ~use_quad tree b in
        let n = Vec3.norm exact.(i) in
        if n > 0. then worst := Float.max !worst (Vec3.dist a exact.(i) /. n))
      bodies;
    !worst
  in
  let mono = err false and quad = err true in
  Alcotest.(check bool)
    (Printf.sprintf "quad %.4f < mono %.4f" quad mono)
    true (quad < mono)

let test_distribute_preserves_tree () =
  let bodies = Plummer.generate ~n:200 ~seed:29 in
  let octree = Octree.build bodies in
  let nnodes = 4 in
  let g = Bh_global.distribute octree ~nnodes in
  (* Every body appears exactly once across owner lists. *)
  let seen = Array.make 200 0 in
  Array.iter
    (Array.iter (fun bid -> seen.(bid) <- seen.(bid) + 1))
    g.Bh_global.owner_bodies;
  Array.iter (fun c -> Alcotest.(check int) "owned once" 1 c) seen;
  (* Heap objects mirror the octree cells. *)
  Alcotest.(check int) "all cells allocated" (Octree.ncells octree)
    (Dpa_heap.Heap.total_objects g.Bh_global.heaps);
  let heaps = g.Bh_global.heaps in
  let root_view = g.Bh_global.root in
  Alcotest.(check (float 1e-12))
    "root mass" 1.0
    (Bh_global.View.mass heaps root_view);
  Alcotest.(check bool)
    "root internal" false
    (Bh_global.View.is_leaf heaps root_view)

let run_force variant ~nnodes ~nbodies =
  let bodies = Plummer.generate ~n:nbodies ~seed:31 in
  let octree = Octree.build bodies in
  let tree = Bh_global.distribute octree ~nnodes in
  let engine = Dpa_sim.Engine.create (Dpa_sim.Machine.t3d ~nodes:nnodes) in
  let r =
    Bh_run.force_phase ~engine ~tree ~bodies ~params:Bh_force.default_params
      variant
  in
  (bodies, octree, r)

let seq_reference octree =
  let p = Bh_force.default_params in
  Array.map
    (fun b -> Bh_seq.force_on ~theta:p.Bh_force.theta ~eps:p.Bh_force.eps octree b)
    (Octree.bodies octree)

let check_matches_seq name (bodies, octree, (r : Bh_run.phase_result)) =
  let reference = seq_reference octree in
  Array.iteri
    (fun i want ->
      if not (Vec3.approx_equal ~tol:1e-9 want r.Bh_run.accs.(i)) then
        Alcotest.failf "%s: body %d differs from sequential" name i)
    reference;
  ignore bodies

let test_force_dpa_matches_seq () =
  check_matches_seq "dpa"
    (run_force (Dpa_baselines.Variant.dpa ()) ~nnodes:4 ~nbodies:300)

let test_force_caching_matches_seq () =
  check_matches_seq "caching"
    (run_force (Dpa_baselines.Variant.Caching { capacity = 128 }) ~nnodes:4
       ~nbodies:300)

let test_force_blocking_matches_seq () =
  check_matches_seq "blocking"
    (run_force Dpa_baselines.Variant.Blocking ~nnodes:3 ~nbodies:200)

let test_force_prefetch_matches_seq () =
  check_matches_seq "prefetch"
    (run_force (Dpa_baselines.Variant.Prefetch { strip_size = 20 }) ~nnodes:3
       ~nbodies:200)

let test_force_single_node_matches_seq () =
  check_matches_seq "dpa single node"
    (run_force (Dpa_baselines.Variant.dpa ()) ~nnodes:1 ~nbodies:200)

let test_dpa_beats_blocking_bh () =
  let _, _, dpa = run_force (Dpa_baselines.Variant.dpa ()) ~nnodes:4 ~nbodies:400 in
  let _, _, blk = run_force Dpa_baselines.Variant.Blocking ~nnodes:4 ~nbodies:400 in
  Alcotest.(check bool) "dpa faster" true
    (dpa.Bh_run.breakdown.Dpa_sim.Breakdown.elapsed_ns
    < blk.Bh_run.breakdown.Dpa_sim.Breakdown.elapsed_ns)

let test_simulate_multi_step () =
  let r =
    Bh_run.simulate ~nnodes:2 ~nbodies:100 ~nsteps:3
      (Dpa_baselines.Variant.dpa ())
  in
  Alcotest.(check int) "three steps" 3 (List.length r.Bh_run.steps);
  Alcotest.(check bool) "time accumulated" true
    (r.Bh_run.total.Dpa_sim.Breakdown.elapsed_ns > 0);
  (* Bodies moved. *)
  let init = Plummer.generate ~n:100 ~seed:17 in
  let moved = ref false in
  Array.iteri
    (fun i b ->
      if not (Vec3.approx_equal b.Body.pos init.(i).Body.pos) then moved := true)
    r.Bh_run.bodies;
  Alcotest.(check bool) "bodies moved" true !moved

(* --- Morton repartitioning determinism ----------------------------------- *)

(* Repartitioning only moves ownership cuts along Morton order; the force
   sums are grid-exact, so the trajectory must be bit-identical to the
   statically partitioned run, with or without faults, and a seeded fault
   cocktail must replay itself exactly. *)
let repartition_bodies ?faults ?(fault_seed = 7) ~repartition () =
  let machine = Dpa_sim.Machine.make ~nodes:4 ?faults ~fault_seed () in
  (Bh_run.simulate ~machine ~nnodes:4 ~nbodies:120 ~nsteps:3 ~repartition
     (Dpa_baselines.Variant.dpa ~strip_size:10 ()))
    .Bh_run.bodies

let test_repartition_forces_bit_identical () =
  let static = repartition_bodies ~repartition:false () in
  let dynamic = repartition_bodies ~repartition:true () in
  Alcotest.(check bool) "repartitioned trajectory bit-identical to static"
    true (static = dynamic)

let test_repartition_deterministic_under_faults () =
  let reference = repartition_bodies ~repartition:true () in
  let heavy =
    repartition_bodies ~faults:Dpa_sim.Fault.heavy ~repartition:true ()
  in
  Alcotest.(check bool) "heavy faults leave the trajectory untouched" true
    (reference = heavy);
  let crashy =
    {
      Dpa_sim.Fault.heavy with
      Dpa_sim.Fault.crashes = 1;
      crash_ns = 20_000;
      outage_horizon_ns = 200_000;
    }
  in
  let crashed = repartition_bodies ~faults:crashy ~repartition:true () in
  let crashed2 = repartition_bodies ~faults:crashy ~repartition:true () in
  Alcotest.(check bool) "crash-restarts leave the trajectory untouched" true
    (reference = crashed);
  Alcotest.(check bool) "crash schedule replays bit-identically" true
    (crashed = crashed2)

let test_simulate_runtimes_agree_over_steps () =
  let final variant =
    (Bh_run.simulate ~nnodes:3 ~nbodies:80 ~nsteps:2 variant).Bh_run.bodies
  in
  let a = final (Dpa_baselines.Variant.dpa ()) in
  let b = final Dpa_baselines.Variant.Blocking in
  Array.iteri
    (fun i x ->
      Alcotest.(check bool) "same trajectory" true
        (Vec3.approx_equal ~tol:1e-7 x.Body.pos b.(i).Body.pos))
    a

let suites =
  [
    ( "bh.vec3",
      [ Alcotest.test_case "ops" `Quick test_vec3_ops ] );
    ( "bh.plummer",
      [
        Alcotest.test_case "deterministic" `Quick test_plummer_deterministic;
        Alcotest.test_case "com frame" `Quick test_plummer_com_frame;
      ] );
    ( "bh.octree",
      [
        Alcotest.test_case "contains all bodies" `Quick
          test_octree_contains_all_bodies;
        Alcotest.test_case "leaf capacity" `Quick test_octree_leaf_cap;
        Alcotest.test_case "mass conservation" `Quick
          test_octree_mass_conservation;
        Alcotest.test_case "center of mass" `Quick test_octree_com;
        QCheck_alcotest.to_alcotest qcheck_octree_bodies_in_bounds;
      ] );
    ( "bh.accuracy",
      [
        Alcotest.test_case "vs direct (theta=0.5)" `Quick
          test_bh_accuracy_vs_direct;
        Alcotest.test_case "theta=0 equals direct" `Quick
          test_bh_theta_zero_is_direct;
      ] );
    ( "bh.quadrupole",
      [
        Alcotest.test_case "symmetric pair" `Quick
          test_quadrupole_of_symmetric_pair;
        Alcotest.test_case "shift consistent" `Quick test_quad_shift_consistent;
        Alcotest.test_case "improves accuracy" `Quick
          test_quadrupole_improves_accuracy;
      ] );
    ( "bh.distribute",
      [ Alcotest.test_case "preserves tree" `Quick test_distribute_preserves_tree ] );
    ( "bh.force",
      [
        Alcotest.test_case "dpa matches sequential" `Quick
          test_force_dpa_matches_seq;
        Alcotest.test_case "caching matches sequential" `Quick
          test_force_caching_matches_seq;
        Alcotest.test_case "blocking matches sequential" `Quick
          test_force_blocking_matches_seq;
        Alcotest.test_case "prefetch matches sequential" `Quick
          test_force_prefetch_matches_seq;
        Alcotest.test_case "single node matches sequential" `Quick
          test_force_single_node_matches_seq;
        Alcotest.test_case "dpa beats blocking" `Quick test_dpa_beats_blocking_bh;
      ] );
    ( "bh.simulate",
      [
        Alcotest.test_case "multi step" `Quick test_simulate_multi_step;
        Alcotest.test_case "runtimes agree over steps" `Quick
          test_simulate_runtimes_agree_over_steps;
        Alcotest.test_case "repartition bit-identical to static" `Quick
          test_repartition_forces_bit_identical;
        Alcotest.test_case "repartition deterministic under faults" `Quick
          test_repartition_deterministic_under_faults;
      ] );
  ]

(* Behavioural tests of the DPA scheduler: the properties the paper's
   optimizations rest on, observed through the simulator. *)

open Dpa_sim
open Dpa_heap

let machine ?poll_quantum_ns nodes =
  match poll_quantum_ns with
  | None -> Machine.t3d ~nodes
  | Some q -> Machine.make ~poll_quantum_ns:q ~nodes ()

(* Tiling: all threads waiting on one pointer run consecutively when its
   reply arrives. *)
let test_waiters_run_consecutively () =
  let nnodes = 2 in
  let heaps = Heap.cluster ~nnodes in
  let a = Heap.alloc heaps.(1) ~floats:[| 1. |] ~ptrs:[||] in
  let b = Heap.alloc heaps.(1) ~floats:[| 2. |] ~ptrs:[||] in
  let engine = Engine.create (machine nnodes) in
  let order = ref [] in
  let items node =
    if node <> 0 then [||]
    else
      (* Interleave reads of a and b; same-pointer threads must still be
         woken back-to-back. *)
      Array.init 6 (fun i ->
          fun ctx ->
            let p, tag = if i land 1 = 0 then (a, "a") else (b, "b") in
            Dpa.Runtime.read ctx p (fun _ctx _view ->
                order := tag :: !order))
  in
  ignore
    (Dpa.Runtime.run_phase ~engine ~heaps ~config:(Dpa.Config.dpa ()) ~items);
  let order = List.rev !order in
  (* Six continuations; the three 'a's are adjacent and the three 'b's are
     adjacent (both pointers travel in one reply; delivery wakes each
     pointer's waiters as one block). *)
  Alcotest.(check int) "all ran" 6 (List.length order);
  let rec runs = function
    | [] -> 0
    | [ _ ] -> 1
    | x :: (y :: _ as rest) -> (if x = y then 0 else 1) + runs rest
  in
  Alcotest.(check int) "two blocks" 2 (runs order)

(* Pipelining: with more work than latency, the network time hides — idle
   stays near zero; with a single dependent chain it cannot. *)
let test_overlap_hides_latency () =
  let nnodes = 2 in
  let heaps = Heap.cluster ~nnodes in
  let ptrs =
    Array.init 64 (fun i ->
        Heap.alloc heaps.(1) ~floats:[| float_of_int i |] ~ptrs:[||])
  in
  let engine = Engine.create (machine nnodes) in
  let items node =
    if node <> 0 then [||]
    else
      Array.map
        (fun p ->
          fun ctx ->
            Dpa.Runtime.read ctx p (fun ctx _ ->
                Dpa.Runtime.charge ctx 50_000))
        ptrs
  in
  ignore
    (Dpa.Runtime.run_phase ~engine ~heaps
       ~config:(Dpa.Config.dpa ~strip_size:64 ~agg_max:8 ())
       ~items);
  (* With 50 us of work per reply, communication overlaps computation: the
     *requester's* idle time must be a small fraction of its clock (the
     owner node has no work of its own and legitimately idles). *)
  let requester = Engine.node engine 0 in
  let idle_frac =
    float_of_int requester.Node.idle_ns /. float_of_int requester.Node.clock
  in
  Alcotest.(check bool)
    (Printf.sprintf "requester idle fraction %.3f < 0.1" idle_frac)
    true (idle_frac < 0.1)

(* The poll quantum bounds how long a node computing locally can delay an
   incoming request. *)
let test_poll_quantum_bounds_service_delay () =
  let nnodes = 2 in
  let run quantum =
    let heaps = Heap.cluster ~nnodes in
    (* Node 1 has lots of local work; node 0 needs one object from node 1. *)
    let local1 =
      Array.init 64 (fun i ->
          Heap.alloc heaps.(1) ~floats:[| float_of_int i |] ~ptrs:[||])
    in
    let remote = Heap.alloc heaps.(1) ~floats:[| 9. |] ~ptrs:[||] in
    let engine = Engine.create (machine ~poll_quantum_ns:quantum nnodes) in
    let got_at = ref 0 in
    let items node =
      if node = 1 then
        Array.map
          (fun p ->
            fun ctx ->
              Dpa.Runtime.read ctx p (fun ctx _ ->
                  Dpa.Runtime.charge ctx 100_000))
          local1
      else
        [|
          (fun ctx ->
            Dpa.Runtime.read ctx remote (fun ctx _ ->
                got_at := (Engine.node engine (Dpa.Runtime.node_id ctx)).Node.clock));
        |]
    in
    ignore
      (Dpa.Runtime.run_phase ~engine ~heaps ~config:(Dpa.Config.dpa ()) ~items);
    !got_at
  in
  let fine = run 20_000 and coarse = run 2_000_000 in
  Alcotest.(check bool)
    (Printf.sprintf "finer polling serves sooner (%d < %d)" fine coarse)
    true (fine < coarse)

(* Owner-side request service consumes owner CPU (comm overhead). *)
let test_service_steals_owner_cpu () =
  let nnodes = 2 in
  let heaps = Heap.cluster ~nnodes in
  let ptrs =
    Array.init 32 (fun i ->
        Heap.alloc heaps.(1) ~floats:[| float_of_int i |] ~ptrs:[||])
  in
  let engine = Engine.create (machine nnodes) in
  let items node =
    if node <> 0 then [||]
    else
      Array.map (fun p -> fun ctx -> Dpa.Runtime.read ctx p (fun _ _ -> ())) ptrs
  in
  ignore (Dpa.Runtime.run_phase ~engine ~heaps ~config:(Dpa.Config.dpa ()) ~items);
  let owner = Engine.node engine 1 in
  Alcotest.(check bool) "owner charged comm time" true (owner.Node.comm_ns > 0);
  Alcotest.(check int) "owner did no local work" 0 owner.Node.local_ns

(* Reading a heap slot that does not exist must surface, not hang. *)
let test_dangling_pointer_fails () =
  let nnodes = 1 in
  let heaps = Heap.cluster ~nnodes in
  let engine = Engine.create (machine nnodes) in
  let dangling = Gptr.make ~node:0 ~slot:99 in
  let raised = ref false in
  (try
     ignore
       (Dpa.Runtime.run_phase ~engine ~heaps ~config:(Dpa.Config.dpa ())
          ~items:(fun _ ->
            [| (fun ctx -> Dpa.Runtime.read ctx dangling (fun _ _ -> ())) |]))
   with Invalid_argument _ -> raised := true);
  Alcotest.(check bool) "dangling read raises" true !raised

(* The caching baseline resolves reads in depth-first program order. *)
let test_caching_dfs_order () =
  let nnodes = 1 in
  let heaps = Heap.cluster ~nnodes in
  let leaf v = Heap.alloc heaps.(0) ~floats:[| v |] ~ptrs:[||] in
  let l1 = leaf 1. and l2 = leaf 2. in
  let parent = Heap.alloc heaps.(0) ~floats:[| 0. |] ~ptrs:[| l1; l2 |] in
  let engine = Engine.create (machine nnodes) in
  let order = ref [] in
  let items _ =
    [|
      (fun ctx ->
        Dpa_baselines.Blocking.read ctx parent (fun ctx view ->
            let heaps = Dpa_baselines.Blocking.heaps ctx in
            for i = 0 to Heap.view_nptrs heaps view - 1 do
              let child = Heap.view_ptr heaps view i in
              Dpa_baselines.Blocking.read ctx child (fun ctx v ->
                  order :=
                    Heap.view_float (Dpa_baselines.Blocking.heaps ctx) v 0
                    :: !order)
            done));
    |]
  in
  ignore (Dpa_baselines.Blocking.run_phase ~engine ~heaps ~items);
  (* LIFO stack: children pushed 1 then 2, resolved 2 then 1. *)
  Alcotest.(check (list (float 0.))) "dfs order" [ 1.; 2. ] !order

(* Determinism of a full multi-node application phase. *)
let test_bh_phase_deterministic () =
  let run () =
    let r =
      Dpa_bh.Bh_run.simulate ~nnodes:4 ~nbodies:300 ~nsteps:1
        (Dpa_baselines.Variant.dpa ())
    in
    r.Dpa_bh.Bh_run.total.Breakdown.elapsed_ns
  in
  Alcotest.(check int) "identical elapsed" (run ()) (run ())

(* Strip size one serializes items: max outstanding <= reads per item. *)
let test_strip_one_limits_outstanding () =
  let nnodes = 2 in
  let heaps = Heap.cluster ~nnodes in
  let ptrs =
    Array.init 16 (fun i ->
        Heap.alloc heaps.(1) ~floats:[| float_of_int i |] ~ptrs:[||])
  in
  let engine = Engine.create (machine nnodes) in
  let items node =
    if node <> 0 then [||]
    else
      Array.init 8 (fun i ->
          fun ctx ->
            Dpa.Runtime.read ctx ptrs.(2 * i) (fun _ _ -> ());
            Dpa.Runtime.read ctx ptrs.((2 * i) + 1) (fun _ _ -> ()))
  in
  let _, stats =
    Dpa.Runtime.run_phase ~engine ~heaps
      ~config:(Dpa.Config.dpa ~strip_size:1 ())
      ~items
  in
  Alcotest.(check bool) "outstanding bounded by item" true
    (stats.Dpa.Dpa_stats.max_outstanding <= 2)

let suites =
  [
    ( "core.behavior",
      [
        Alcotest.test_case "waiters run consecutively (tiling)" `Quick
          test_waiters_run_consecutively;
        Alcotest.test_case "overlap hides latency (pipelining)" `Quick
          test_overlap_hides_latency;
        Alcotest.test_case "poll quantum bounds service delay" `Quick
          test_poll_quantum_bounds_service_delay;
        Alcotest.test_case "service steals owner cpu" `Quick
          test_service_steals_owner_cpu;
        Alcotest.test_case "dangling pointer fails" `Quick
          test_dangling_pointer_fails;
        Alcotest.test_case "caching resolves depth-first" `Quick
          test_caching_dfs_order;
        Alcotest.test_case "bh phase deterministic" `Quick
          test_bh_phase_deterministic;
        Alcotest.test_case "strip one limits outstanding" `Quick
          test_strip_one_limits_outstanding;
      ] );
  ]

open Dpa_sim

let machine =
  Machine.make ~send_overhead_ns:1000 ~recv_overhead_ns:1000
    ~wire_latency_ns:1000 ~ns_per_byte:10. ~nodes:4 ()

let test_am_delivery_time () =
  let engine = Engine.create machine in
  let src = Engine.node engine 0 in
  let arrived = ref (-1) in
  Dpa_msg.Am.send engine ~src ~dst:1 ~bytes:100 (fun d ->
      arrived := d.Node.clock);
  Engine.run engine;
  (* send overhead 1000 -> injection at 1000; transfer = 1000 + 100*10 = 2000;
     arrival 3000; recv overhead 1000 -> handler sees clock 4000. *)
  Alcotest.(check int) "handler clock" 4000 !arrived;
  Alcotest.(check int) "src comm" 1000 src.Node.comm_ns;
  Alcotest.(check int) "src msgs" 1 src.Node.msgs_sent;
  Alcotest.(check int) "dst msgs" 1 (Engine.node engine 1).Node.msgs_recv

let test_am_rejects_small () =
  let engine = Engine.create machine in
  Alcotest.check_raises "too small"
    (Invalid_argument "Am.send: message smaller than header") (fun () ->
      Dpa_msg.Am.send engine ~src:(Engine.node engine 0) ~dst:1 ~bytes:2
        (fun _ -> ()))

let test_message_sizes () =
  Alcotest.(check int) "request"
    (machine.Machine.msg_header_bytes + (3 * machine.Machine.req_entry_bytes))
    (Dpa_msg.Am.request_bytes machine ~nreqs:3);
  Alcotest.(check bool) "reply bigger than payload" true
    (Dpa_msg.Am.reply_bytes machine ~payload:100 ~nreqs:2 > 100)

let test_aggregator_batches () =
  let flushed = ref [] in
  let agg =
    Dpa_msg.Aggregator.create ~ndest:3 ~max_batch:2 ~flush:(fun ~dst reqs ->
        flushed := (dst, reqs) :: !flushed)
  in
  Dpa_msg.Aggregator.add agg ~dst:1 "a";
  Alcotest.(check int) "buffered" 1 (Dpa_msg.Aggregator.pending agg);
  Dpa_msg.Aggregator.add agg ~dst:1 "b" (* hits max_batch -> eager flush *);
  Alcotest.(check int) "drained" 0 (Dpa_msg.Aggregator.pending agg);
  Dpa_msg.Aggregator.add agg ~dst:2 "c";
  Dpa_msg.Aggregator.flush_all agg;
  Alcotest.(check (list (pair int (list string))))
    "batches in order"
    [ (1, [ "a"; "b" ]); (2, [ "c" ]) ]
    (List.rev !flushed);
  Alcotest.(check int) "flushes" 2 (Dpa_msg.Aggregator.flushes agg);
  Alcotest.(check int) "max batch" 2 (Dpa_msg.Aggregator.max_batch_seen agg)

let test_aggregator_pending_for () =
  let agg =
    Dpa_msg.Aggregator.create ~ndest:3 ~max_batch:10 ~flush:(fun ~dst:_ _ -> ())
  in
  Dpa_msg.Aggregator.add agg ~dst:1 "a";
  Dpa_msg.Aggregator.add agg ~dst:1 "b";
  Dpa_msg.Aggregator.add agg ~dst:2 "c";
  Alcotest.(check int) "dst 0" 0 (Dpa_msg.Aggregator.pending_for agg ~dst:0);
  Alcotest.(check int) "dst 1" 2 (Dpa_msg.Aggregator.pending_for agg ~dst:1);
  Alcotest.(check int) "dst 2" 1 (Dpa_msg.Aggregator.pending_for agg ~dst:2);
  Alcotest.(check int) "sums to pending"
    (Dpa_msg.Aggregator.pending agg)
    (Dpa_msg.Aggregator.pending_for agg ~dst:0
    + Dpa_msg.Aggregator.pending_for agg ~dst:1
    + Dpa_msg.Aggregator.pending_for agg ~dst:2);
  Dpa_msg.Aggregator.flush_all agg;
  Alcotest.(check int) "drained" 0 (Dpa_msg.Aggregator.pending_for agg ~dst:1);
  Alcotest.check_raises "bad destination"
    (Invalid_argument "Aggregator.pending_for: bad destination") (fun () ->
      ignore (Dpa_msg.Aggregator.pending_for agg ~dst:3))

(* Model-based property: drive the aggregator with a random interleaving of
   [add], [add_all] (the routed mode's bulk re-injection of en-route
   merged batches) and [flush_all], and mirror it with an obviously-correct
   model in which every bulk entry arrives one by one. Flush count,
   largest batch, per-destination pending counts and the FIFO order of
   everything flushed must all agree with the model — in particular,
   [flushes]/[max_batch_seen] must count en-route merged entries exactly
   like directly-added ones. *)
let qcheck_aggregator_model =
  let ndest = 3 in
  let op =
    QCheck.(
      map
        (fun (kind, dst, x) ->
          match kind mod 10 with
          | 0 | 5 -> `Flush_all
          | 1 | 6 -> `Add_all (dst, List.init ((x mod 4) + 1) (fun i -> x + i))
          | _ -> `Add (dst, x))
        (triple small_nat (int_range 0 (ndest - 1)) small_nat))
  in
  QCheck.Test.make
    ~name:"aggregator flushes/max_batch_seen/pending_for match a model"
    ~count:300
    QCheck.(pair (int_range 1 6) (small_list op))
    (fun (max_batch, ops) ->
      let out = ref [] in
      let agg =
        Dpa_msg.Aggregator.create ~ndest ~max_batch ~flush:(fun ~dst reqs ->
            out := (dst, reqs) :: !out)
      in
      (* The model: per-destination FIFOs plus the expected flush log. *)
      let model = Array.make ndest [] in
      let model_out = ref [] and model_flushes = ref 0 and model_maxb = ref 0 in
      let model_flush dst =
        if model.(dst) <> [] then begin
          let batch = List.rev model.(dst) in
          model_out := (dst, batch) :: !model_out;
          incr model_flushes;
          model_maxb := max !model_maxb (List.length batch);
          model.(dst) <- []
        end
      in
      let model_add dst x =
        model.(dst) <- x :: model.(dst);
        if List.length model.(dst) = max_batch then model_flush dst
      in
      List.iter
        (function
          | `Add (dst, x) ->
            Dpa_msg.Aggregator.add agg ~dst x;
            model_add dst x
          | `Add_all (dst, xs) ->
            Dpa_msg.Aggregator.add_all agg ~dst xs;
            List.iter (model_add dst) xs
          | `Flush_all ->
            Dpa_msg.Aggregator.flush_all agg;
            for dst = 0 to ndest - 1 do
              model_flush dst
            done)
        ops;
      List.rev !out = List.rev !model_out
      && Dpa_msg.Aggregator.flushes agg = !model_flushes
      && Dpa_msg.Aggregator.max_batch_seen agg = !model_maxb
      && List.for_all
           (fun dst ->
             Dpa_msg.Aggregator.pending_for agg ~dst
             = List.length model.(dst))
           [ 0; 1; 2 ])

let qcheck_aggregator_no_loss =
  QCheck.Test.make
    ~name:"aggregator neither drops nor duplicates nor reorders" ~count:300
    QCheck.(pair (int_range 1 10) (small_list (pair (int_range 0 4) small_nat)))
    (fun (max_batch, adds) ->
      let out = Array.make 5 [] in
      let agg =
        Dpa_msg.Aggregator.create ~ndest:5 ~max_batch ~flush:(fun ~dst reqs ->
            out.(dst) <- out.(dst) @ reqs)
      in
      List.iter (fun (dst, x) -> Dpa_msg.Aggregator.add agg ~dst x) adds;
      Dpa_msg.Aggregator.flush_all agg;
      Dpa_msg.Aggregator.pending agg = 0
      && List.for_all
           (fun dst ->
             out.(dst)
             = List.filter_map
                 (fun (d, x) -> if d = dst then Some x else None)
                 adds)
           [ 0; 1; 2; 3; 4 ])

let qcheck_aggregator_batch_bound =
  QCheck.Test.make ~name:"aggregator batches never exceed max_batch" ~count:200
    QCheck.(pair (int_range 1 7) (small_list (int_range 0 2)))
    (fun (max_batch, dsts) ->
      let ok = ref true in
      let agg =
        Dpa_msg.Aggregator.create ~ndest:3 ~max_batch ~flush:(fun ~dst:_ reqs ->
            if List.length reqs > max_batch then ok := false)
      in
      List.iter (fun dst -> Dpa_msg.Aggregator.add agg ~dst ()) dsts;
      Dpa_msg.Aggregator.flush_all agg;
      !ok)

(* --- reduction-tree routing -------------------------------------------- *)

let test_route_shape () =
  (* Tree rooted at 0 over 8 nodes: rank = node id, parent clears the
     lowest set bit. *)
  let hop src = Dpa_msg.Route.next_hop ~nnodes:8 ~src ~dst:0 in
  Alcotest.(check int) "1 -> 0" 0 (hop 1);
  Alcotest.(check int) "2 -> 0" 0 (hop 2);
  Alcotest.(check int) "3 -> 2" 2 (hop 3);
  Alcotest.(check int) "5 -> 4" 4 (hop 5);
  Alcotest.(check int) "6 -> 4" 4 (hop 6);
  Alcotest.(check int) "7 -> 6" 6 (hop 7);
  (* Rotated root: the shape is translation-invariant. *)
  Alcotest.(check int) "root 3: 4 -> 3" 3
    (Dpa_msg.Route.next_hop ~nnodes:8 ~src:4 ~dst:3);
  Alcotest.check_raises "src = dst has no parent"
    (Invalid_argument "Route.next_hop: src is the destination") (fun () ->
      ignore (Dpa_msg.Route.next_hop ~nnodes:8 ~src:3 ~dst:3))

let qcheck_route_converges =
  QCheck.Test.make
    ~name:"route: every path reaches the root within ceil(log2 n) hops"
    ~count:500
    QCheck.(
      triple (int_range 1 65) (int_range 0 1000) (int_range 0 1000))
    (fun (nnodes, s, d) ->
      let src = s mod nnodes and dst = d mod nnodes in
      let log2ceil =
        let k = ref 0 in
        while 1 lsl !k < nnodes do
          incr k
        done;
        !k
      in
      let rec walk node steps =
        if node = dst then steps
        else walk (Dpa_msg.Route.next_hop ~nnodes ~src:node ~dst) (steps + 1)
      in
      let steps = if src = dst then 0 else walk src 0 in
      steps <= log2ceil
      && steps = Dpa_msg.Route.hops ~nnodes ~src ~dst
      (* Ranks strictly decrease toward the root, so routing can never
         cycle. *)
      && (src = dst
         || Dpa_msg.Route.rank ~nnodes
              ~src:(Dpa_msg.Route.next_hop ~nnodes ~src ~dst)
              ~dst
            < Dpa_msg.Route.rank ~nnodes ~src ~dst))

let test_am_ingress_serialization () =
  (* Two 1000-byte messages sent back-to-back to the same destination: with
     serialized links the second arrives a full serialization time after
     the first; contention-free they overlap. *)
  let arrivals serialized =
    let m =
      Machine.make ~send_overhead_ns:0 ~recv_overhead_ns:0
        ~wire_latency_ns:1000 ~ns_per_byte:10. ~ingress_serialized:serialized
        ~nodes:3 ()
    in
    let engine = Engine.create m in
    let out = ref [] in
    (* Distinct senders so sender-side egress doesn't serialize them. *)
    Dpa_msg.Am.send engine ~src:(Engine.node engine 0) ~dst:2 ~bytes:1000
      (fun d -> out := d.Node.clock :: !out);
    Dpa_msg.Am.send engine ~src:(Engine.node engine 1) ~dst:2 ~bytes:1000
      (fun d -> out := d.Node.clock :: !out);
    Engine.run engine;
    List.sort compare !out
  in
  (match arrivals false with
  | [ a; b ] ->
    Alcotest.(check int) "contention-free: together" a b;
    Alcotest.(check int) "at latency+transfer" 11000 a
  | _ -> Alcotest.fail "expected two arrivals");
  match arrivals true with
  | [ a; b ] ->
    Alcotest.(check int) "first at egress+wire+ingress" 21000 a;
    Alcotest.(check int) "second queued behind first" 31000 b
  | _ -> Alcotest.fail "expected two arrivals"

let suites =
  [
    ( "msg.am",
      [
        Alcotest.test_case "delivery time" `Quick test_am_delivery_time;
        Alcotest.test_case "rejects small" `Quick test_am_rejects_small;
        Alcotest.test_case "message sizes" `Quick test_message_sizes;
        Alcotest.test_case "ingress serialization" `Quick
          test_am_ingress_serialization;
      ] );
    ( "msg.aggregator",
      [
        Alcotest.test_case "batches" `Quick test_aggregator_batches;
        Alcotest.test_case "pending_for" `Quick test_aggregator_pending_for;
        QCheck_alcotest.to_alcotest qcheck_aggregator_model;
        QCheck_alcotest.to_alcotest qcheck_aggregator_no_loss;
        QCheck_alcotest.to_alcotest qcheck_aggregator_batch_bound;
      ] );
    ( "msg.route",
      [
        Alcotest.test_case "binomial shape" `Quick test_route_shape;
        QCheck_alcotest.to_alcotest qcheck_route_converges;
      ] );
  ]

(* Tests of the remote-reduction extension: the update buffer, the
   [accumulate] operation under every runtime, and the parallel FMM upward
   pass built on it. *)

open Dpa_sim
open Dpa_heap

let machine nodes = Machine.t3d ~nodes

(* --- update buffer ------------------------------------------------------ *)

let p ~node ~slot = Gptr.make ~node ~slot

let test_update_buffer_combines () =
  let out = ref [] in
  let b =
    Dpa.Update_buffer.create ~ndest:2 ~combine:true ~max_batch:100
      ~flush:(fun ~dst batch -> out := (dst, batch) :: !out)
      ()
  in
  Dpa.Update_buffer.add b ~dst:1 (p ~node:1 ~slot:0) ~idx:3 1.0;
  Dpa.Update_buffer.add b ~dst:1 (p ~node:1 ~slot:0) ~idx:3 2.0;
  Dpa.Update_buffer.add b ~dst:1 (p ~node:1 ~slot:0) ~idx:4 5.0;
  Alcotest.(check int) "two distinct slots" 2 (Dpa.Update_buffer.pending b);
  Alcotest.(check int) "one combined" 1 (Dpa.Update_buffer.combined b);
  Dpa.Update_buffer.flush_all b;
  (match !out with
  | [ (1, batch) ] ->
    let find idx =
      (List.find (fun e -> e.Dpa.Update_buffer.idx = idx) batch)
        .Dpa.Update_buffer.value
    in
    Alcotest.(check (float 1e-12)) "combined sum" 3.0 (find 3);
    Alcotest.(check (float 1e-12)) "other slot" 5.0 (find 4)
  | _ -> Alcotest.fail "expected one flush to dst 1");
  Alcotest.(check int) "entries counted" 2 (Dpa.Update_buffer.sent_entries b)

let test_update_buffer_no_combine () =
  let batches = ref 0 and entries = ref 0 in
  let b =
    Dpa.Update_buffer.create ~ndest:1 ~combine:false ~max_batch:100
      ~flush:(fun ~dst:_ batch ->
        incr batches;
        entries := !entries + List.length batch)
      ()
  in
  (* Same slot twice: without combining both updates must survive (the
     buffer flushes eagerly on the collision). *)
  Dpa.Update_buffer.add b ~dst:0 (p ~node:0 ~slot:0) ~idx:0 1.0;
  Dpa.Update_buffer.add b ~dst:0 (p ~node:0 ~slot:0) ~idx:0 2.0;
  Dpa.Update_buffer.flush_all b;
  Alcotest.(check int) "no loss" 2 !entries;
  Alcotest.(check int) "no combining" 0 (Dpa.Update_buffer.combined b)

let test_update_buffer_eager_flush () =
  let batches = ref [] in
  let b =
    Dpa.Update_buffer.create ~ndest:1 ~combine:true ~max_batch:3
      ~flush:(fun ~dst:_ batch -> batches := List.length batch :: !batches)
      ()
  in
  for slot = 0 to 6 do
    Dpa.Update_buffer.add b ~dst:0 (p ~node:0 ~slot) ~idx:0 1.0
  done;
  Dpa.Update_buffer.flush_all b;
  Alcotest.(check (list int)) "batch sizes" [ 1; 3; 3 ] !batches

let test_update_buffer_hold_and_flush_if () =
  let out = ref [] in
  let b =
    Dpa.Update_buffer.create
      ~hold:(fun dst -> dst = 1)
      ~ndest:2 ~combine:true ~max_batch:2
      ~flush:(fun ~dst batch -> out := (dst, List.length batch) :: !out)
      ()
  in
  (* dst 1 is held: crossing max_batch must not flush eagerly. *)
  for slot = 0 to 4 do
    Dpa.Update_buffer.add b ~dst:1 (p ~node:1 ~slot) ~idx:0 1.0
  done;
  Alcotest.(check (list (pair int int))) "held across max_batch" [] !out;
  (* dst 0 still flushes eagerly at the bound. *)
  for slot = 0 to 2 do
    Dpa.Update_buffer.add b ~dst:0 (p ~node:0 ~slot) ~idx:0 1.0
  done;
  Alcotest.(check (list (pair int int))) "unheld eager" [ (0, 2) ] !out;
  (* The strip-boundary flush skips destinations its predicate rejects. *)
  Dpa.Update_buffer.flush_if b (fun d -> d <> 1);
  Alcotest.(check (list (pair int int)))
    "flush_if skips held"
    [ (0, 1); (0, 2) ]
    !out;
  Dpa.Update_buffer.flush_all b;
  Alcotest.(check (list (pair int int)))
    "flush_all drains held"
    [ (1, 5); (0, 1); (0, 2) ]
    !out

let test_update_buffer_held_collision () =
  (* Regression: the non-combining aliased-key collision path used to call
     [flush_dst] unconditionally, bypassing the [hold] predicate — a held
     (routed) destination could be flushed mid-strip, breaking the
     phase-long merge window. Held buckets must keep aliased keys as
     distinct coexisting entries until the explicit [flush_all]. *)
  let out = ref [] in
  let b =
    Dpa.Update_buffer.create
      ~hold:(fun dst -> dst = 1)
      ~ndest:2 ~combine:false ~max_batch:100
      ~flush:(fun ~dst batch ->
        out :=
          (dst, List.map (fun e -> e.Dpa.Update_buffer.value) batch) :: !out)
      ()
  in
  Dpa.Update_buffer.add b ~dst:1 (p ~node:1 ~slot:0) ~idx:0 1.0;
  Dpa.Update_buffer.add b ~dst:1 (p ~node:1 ~slot:0) ~idx:0 2.0;
  Dpa.Update_buffer.add b ~dst:1 (p ~node:1 ~slot:0) ~idx:0 4.0;
  Alcotest.(check (list (pair int (list (float 0.)))))
    "held bucket never flushes on collision" [] !out;
  Alcotest.(check int) "all aliases pending" 3 (Dpa.Update_buffer.pending b);
  (* An unheld destination keeps the eager collision flush. *)
  Dpa.Update_buffer.add b ~dst:0 (p ~node:0 ~slot:0) ~idx:0 8.0;
  Dpa.Update_buffer.add b ~dst:0 (p ~node:0 ~slot:0) ~idx:0 16.0;
  Alcotest.(check (list (pair int (list (float 0.)))))
    "unheld collision flushes eagerly"
    [ (0, [ 8.0 ]) ]
    !out;
  Dpa.Update_buffer.flush_all b;
  Alcotest.(check (list (pair int (list (float 0.)))))
    "every aliased entry survives to the final flush"
    [ (1, [ 1.0; 2.0; 4.0 ]); (0, [ 16.0 ]); (0, [ 8.0 ]) ]
    !out;
  Alcotest.(check int) "nothing lost" 5 (Dpa.Update_buffer.sent_entries b)

let test_update_buffer_clear () =
  let flushed = ref 0 in
  let b =
    Dpa.Update_buffer.create ~ndest:2 ~combine:true ~max_batch:100
      ~flush:(fun ~dst:_ batch -> flushed := !flushed + List.length batch)
      ()
  in
  Dpa.Update_buffer.add b ~dst:0 (p ~node:0 ~slot:0) ~idx:0 1.0;
  Dpa.Update_buffer.add b ~dst:1 (p ~node:1 ~slot:0) ~idx:0 2.0;
  Dpa.Update_buffer.add b ~dst:1 (p ~node:1 ~slot:1) ~idx:0 3.0;
  Alcotest.(check int) "wiped count" 3 (Dpa.Update_buffer.clear b);
  Alcotest.(check int) "nothing pending" 0 (Dpa.Update_buffer.pending b);
  Dpa.Update_buffer.flush_all b;
  Alcotest.(check int) "nothing reaches the flush" 0 !flushed;
  (* The buffer stays usable after a wipe. *)
  Dpa.Update_buffer.add b ~dst:0 (p ~node:0 ~slot:2) ~idx:0 5.0;
  Dpa.Update_buffer.flush_all b;
  Alcotest.(check int) "fresh entries still flush" 1 !flushed

let test_update_buffer_add_entries () =
  let out = ref [] in
  let b =
    Dpa.Update_buffer.create ~ndest:1 ~combine:true ~max_batch:100
      ~flush:(fun ~dst batch -> out := (dst, batch) :: !out)
      ()
  in
  Dpa.Update_buffer.add b ~dst:0 (p ~node:0 ~slot:0) ~idx:0 1.0;
  Dpa.Update_buffer.add_entries b ~dst:0
    [
      { Dpa.Update_buffer.ptr = p ~node:0 ~slot:0; idx = 0; value = 2.0 };
      { Dpa.Update_buffer.ptr = p ~node:0 ~slot:1; idx = 0; value = 3.0 };
    ];
  Alcotest.(check int) "bulk entries combine" 1 (Dpa.Update_buffer.combined b);
  Alcotest.(check int) "two slots pending" 2 (Dpa.Update_buffer.pending b);
  Dpa.Update_buffer.flush_all b;
  match !out with
  | [ (0, [ a; c ]) ] ->
    Alcotest.(check (float 1e-12)) "merged slot" 3.0 a.Dpa.Update_buffer.value;
    Alcotest.(check (float 1e-12)) "fresh slot" 3.0 c.Dpa.Update_buffer.value
  | _ -> Alcotest.fail "expected one two-entry flush"

let qcheck_update_buffer_sum_preserved =
  QCheck.Test.make ~name:"update buffer preserves per-slot totals" ~count:200
    QCheck.(
      small_list (triple (int_range 0 3) (int_range 0 2) (float_range (-5.) 5.)))
    (fun adds ->
      let applied = Hashtbl.create 16 in
      let b =
        Dpa.Update_buffer.create ~ndest:4 ~combine:true ~max_batch:4
          ~flush:(fun ~dst batch ->
            List.iter
              (fun e ->
                let key = (dst, e.Dpa.Update_buffer.ptr, e.Dpa.Update_buffer.idx) in
                let cur = Option.value ~default:0. (Hashtbl.find_opt applied key) in
                Hashtbl.replace applied key (cur +. e.Dpa.Update_buffer.value))
              batch)
          ()
      in
      List.iter
        (fun (slot, idx, v) ->
          Dpa.Update_buffer.add b ~dst:(slot mod 4) (p ~node:0 ~slot) ~idx v)
        adds;
      Dpa.Update_buffer.flush_all b;
      let want = Hashtbl.create 16 in
      List.iter
        (fun (slot, idx, v) ->
          let key = (slot mod 4, p ~node:0 ~slot, idx) in
          let cur = Option.value ~default:0. (Hashtbl.find_opt want key) in
          Hashtbl.replace want key (cur +. v))
        adds;
      Hashtbl.fold
        (fun key v ok ->
          ok
          && Float.abs (v -. Option.value ~default:nan (Hashtbl.find_opt applied key))
             < 1e-9)
        want true)

(* --- accumulate through the runtimes ------------------------------------ *)

let accumulate_phase (type c) (module A : Dpa.Access.S with type ctx = c)
    run_phase =
  let nnodes = 3 in
  let heaps = Heap.cluster ~nnodes in
  (* One counter object per node; every node bumps every counter 5 times. *)
  let counters =
    Array.init nnodes (fun node ->
        Heap.alloc heaps.(node) ~floats:[| 0.; 0. |] ~ptrs:[||])
  in
  let items node =
    Array.init 5 (fun i ->
        fun (ctx : c) ->
          Array.iter
            (fun c ->
              A.accumulate ctx c ~idx:0 1.0;
              A.accumulate ctx c ~idx:1 (float_of_int (node + i)))
            counters)
  in
  run_phase heaps items;
  (heaps, counters)

let check_counters name (heaps, counters) =
  Array.iter
    (fun c ->
      let v = Heap.deref heaps c in
      Alcotest.(check (float 1e-9))
        (name ^ " count") 15.0 v.Obj_repr.floats.(0);
      (* sum over node in 0..2, i in 0..4 of (node+i) = 3*10 + 5*3 = 45 *)
      Alcotest.(check (float 1e-9)) (name ^ " sum") 45.0 v.Obj_repr.floats.(1))
    counters

let test_accumulate_dpa () =
  check_counters "dpa"
    (accumulate_phase
       (module Dpa.Runtime)
       (fun heaps items ->
         let engine = Engine.create (machine 3) in
         ignore
           (Dpa.Runtime.run_phase ~engine ~heaps ~config:(Dpa.Config.dpa ())
              ~items)))

let test_accumulate_dpa_no_combine () =
  check_counters "pipeline"
    (accumulate_phase
       (module Dpa.Runtime)
       (fun heaps items ->
         let engine = Engine.create (machine 3) in
         ignore
           (Dpa.Runtime.run_phase ~engine ~heaps
              ~config:(Dpa.Config.pipeline_only ())
              ~items)))

let test_accumulate_caching () =
  check_counters "caching"
    (accumulate_phase
       (module Dpa_baselines.Caching)
       (fun heaps items ->
         let engine = Engine.create (machine 3) in
         ignore
           (Dpa_baselines.Caching.run_phase ~engine ~heaps ~capacity:16 ~items
              ())))

let test_accumulate_blocking () =
  check_counters "blocking"
    (accumulate_phase
       (module Dpa_baselines.Blocking)
       (fun heaps items ->
         let engine = Engine.create (machine 3) in
         ignore (Dpa_baselines.Blocking.run_phase ~engine ~heaps ~items)))

let test_dpa_combining_reduces_messages () =
  let run config =
    let nnodes = 2 in
    let heaps = Heap.cluster ~nnodes in
    let counter = Heap.alloc heaps.(1) ~floats:[| 0. |] ~ptrs:[||] in
    let engine = Engine.create (machine nnodes) in
    let items node =
      if node <> 0 then [||]
      else
        Array.init 32 (fun _ ->
            fun ctx -> Dpa.Runtime.accumulate ctx counter ~idx:0 1.0)
    in
    let _, stats = Dpa.Runtime.run_phase ~engine ~heaps ~config ~items in
    Alcotest.(check (float 1e-9)) "applied" 32.
      (Heap.deref heaps counter).Obj_repr.floats.(0);
    stats
  in
  let combined = run (Dpa.Config.dpa ~strip_size:32 ()) in
  let plain = run (Dpa.Config.pipeline_only ~strip_size:32 ()) in
  Alcotest.(check bool) "combining collapses updates" true
    (combined.Dpa.Dpa_stats.update_msgs < plain.Dpa.Dpa_stats.update_msgs);
  Alcotest.(check bool) "combines counted" true
    (combined.Dpa.Dpa_stats.updates_combined > 0)

(* --- routed aggregation -------------------------------------------------- *)

(* Fan-in workload: every node bumps the same four counters, all owned by
   node 0, across many strips. Flat aggregation re-sends the counters at
   every strip boundary; the phase-long hold window plus en-route combining
   of the binomial reduction tree collapses that to one merged message per
   tree edge. Integer-valued floats keep every sum exact, so flat and
   routed runs must agree bit for bit. *)
let run_fanin ?faults ?(fault_seed = 0x5EED) ~route () =
  let nnodes = 8 in
  let heaps = Heap.cluster ~nnodes in
  let counters =
    Array.init 4 (fun _ ->
        Heap.alloc heaps.(0) ~floats:[| 0.; 0. |] ~ptrs:[||])
  in
  let items node =
    Array.init 32 (fun i ->
        fun ctx ->
          Dpa.Runtime.charge ctx 1_000;
          let c = counters.(i mod 4) in
          Dpa.Runtime.accumulate ctx c ~idx:0 1.0;
          Dpa.Runtime.accumulate ctx c ~idx:1 (float_of_int ((node * 32) + i)))
  in
  let engine =
    Engine.create (Machine.make ~nodes:nnodes ?faults ~fault_seed ())
  in
  let _, stats =
    Dpa.Runtime.run_phase ~engine ~heaps
      ~config:(Dpa.Config.dpa ~strip_size:4 ~route ())
      ~items
  in
  let vals =
    Array.map
      (fun c -> Array.copy (Heap.deref heaps c).Obj_repr.floats)
      counters
  in
  (vals, stats)

let test_routed_bit_identical_and_fewer_messages () =
  let flat, flat_stats = run_fanin ~route:Dpa.Config.Off () in
  let routed, routed_stats = run_fanin ~route:Dpa.Config.All_dsts () in
  let hot, hot_stats = run_fanin ~route:(Dpa.Config.Hot [ 0 ]) () in
  Alcotest.(check bool) "All_dsts bit-identical to flat" true (flat = routed);
  Alcotest.(check bool) "Hot bit-identical to flat" true (flat = hot);
  (* 7 senders x 8 strips flat vs one held-and-merged message per tree
     edge: the routed phase must move strictly fewer update messages. *)
  Alcotest.(check bool) "tree routing collapses update messages" true
    (routed_stats.Dpa.Dpa_stats.update_msgs
    < flat_stats.Dpa.Dpa_stats.update_msgs);
  Alcotest.(check bool) "hot routing matches all-dsts here" true
    (hot_stats.Dpa.Dpa_stats.update_msgs
    = routed_stats.Dpa.Dpa_stats.update_msgs)

let test_routed_under_faults_exact_and_replayable () =
  (* drop/dup/delay (no crashes): link-level reliability covers the
     intermediate hops, the WAL protocol the final ones — the reduction
     stays exact, and the seeded schedule replays bit-identically. *)
  let reference, _ = run_fanin ~route:Dpa.Config.All_dsts () in
  let faulted, stats =
    run_fanin ~faults:Fault.heavy ~fault_seed:41 ~route:Dpa.Config.All_dsts ()
  in
  Alcotest.(check bool) "routed reduction exact under heavy faults" true
    (reference = faulted);
  let faulted2, stats2 =
    run_fanin ~faults:Fault.heavy ~fault_seed:41 ~route:Dpa.Config.All_dsts ()
  in
  Alcotest.(check bool) "routed fault schedule replays" true
    (faulted = faulted2 && stats = stats2)

let test_routed_survives_crash_plans () =
  (* Routed aggregation used to reject crash fault plans at phase start
     (relay buffers are volatile); the origin-anchored end-to-end ack now
     keeps every routed batch under its origin's custody until the final
     owner acknowledges it, so the combination runs — and stays exact.
     Deeper crash schedules (relay wipes, origin crashes, ack loss) are
     exercised in test_route_crash.ml. *)
  let crashy = { Fault.none with Fault.crashes = 1; crash_ns = 10_000 } in
  let reference, _ = run_fanin ~route:Dpa.Config.Off () in
  let routed, _ = run_fanin ~faults:crashy ~route:Dpa.Config.All_dsts () in
  Alcotest.(check bool) "routed under a crash plan is exact" true
    (reference = routed);
  (* Flat mode under the same plan still runs (crash recovery owns it). *)
  ignore (run_fanin ~faults:crashy ~route:Dpa.Config.Off ())

let test_route_config_validation () =
  (try
     ignore (Dpa.Config.dpa ~route:(Dpa.Config.Hot []) ());
     Alcotest.fail "expected empty Hot rejection"
   with Invalid_argument _ -> ());
  (try
     ignore (Dpa.Config.dpa ~route:(Dpa.Config.Hot [ -1 ]) ());
     Alcotest.fail "expected negative Hot rejection"
   with Invalid_argument _ -> ());
  try
    ignore (run_fanin ~route:(Dpa.Config.Hot [ 99 ]) ());
    Alcotest.fail "expected out-of-range Hot rejection"
  with Invalid_argument _ -> ()

(* --- parallel FMM upward pass ------------------------------------------- *)

let upward_setup ~nparticles =
  let parts = Dpa_fmm.Particle2d.uniform ~n:nparticles ~seed:31 in
  let tree = Dpa_fmm.Quadtree.build ~target_occupancy:6 parts in
  let params =
    { Dpa_fmm.Fmm_force.default_params with Dpa_fmm.Fmm_force.p = 8 }
  in
  (tree, params)

let expansions_match tree global reference =
  let ok = ref true in
  for ci = 0 to Dpa_fmm.Quadtree.ncells tree - 1 do
    if Dpa_fmm.Quadtree.level_of tree ci >= 2 then begin
      let got =
        Dpa_fmm.Fmm_global.View.expansion global.Dpa_fmm.Fmm_global.heaps
          global.Dpa_fmm.Fmm_global.mp_ptrs.(ci)
      in
      Array.iteri
        (fun k c ->
          if Complex.norm (Complex.sub c reference.(ci).(k)) > 1e-9 then
            ok := false)
        got
    end
  done;
  !ok

let run_upward variant =
  (* 3 nodes: block cuts fall inside Morton sibling groups, so some
     parents are remote from their children and updates cross the wire. *)
  let nnodes = 3 in
  let tree, params = upward_setup ~nparticles:500 in
  let global =
    Dpa_fmm.Fmm_global.distribute_empty ~p:params.Dpa_fmm.Fmm_force.p tree
      ~nnodes
  in
  let engine = Engine.create (machine nnodes) in
  let r = Dpa_fmm.Fmm_upward.run ~engine ~global ~params variant in
  let reference = Dpa_fmm.Fmm_seq.upward ~p:params.Dpa_fmm.Fmm_force.p tree in
  (tree, global, r, reference)

let test_upward_dpa_matches_seq () =
  let tree, global, _, reference = run_upward (Dpa_baselines.Variant.dpa ()) in
  Alcotest.(check bool) "multipoles equal sequential" true
    (expansions_match tree global reference)

let test_upward_caching_matches_seq () =
  let tree, global, _, reference =
    run_upward (Dpa_baselines.Variant.Caching { capacity = 64 })
  in
  Alcotest.(check bool) "multipoles equal sequential" true
    (expansions_match tree global reference)

let test_upward_then_force_pipeline () =
  (* Full pipeline: empty distribution, parallel upward, then the force
     phase — results must match the all-sequential-upward path. *)
  let nnodes = 4 in
  let tree, params = upward_setup ~nparticles:300 in
  let global =
    Dpa_fmm.Fmm_global.distribute_empty ~p:params.Dpa_fmm.Fmm_force.p tree
      ~nnodes
  in
  let engine = Engine.create (machine nnodes) in
  ignore
    (Dpa_fmm.Fmm_upward.run ~engine ~global ~params
       (Dpa_baselines.Variant.dpa ()));
  let phase =
    Dpa_fmm.Fmm_run.force_phase ~engine ~global ~params
      (Dpa_baselines.Variant.dpa ())
  in
  let seq, _ = Dpa_fmm.Fmm_seq.compute ~p:params.Dpa_fmm.Fmm_force.p tree in
  Array.iteri
    (fun i want ->
      if
        Float.abs
          (want -. phase.Dpa_fmm.Fmm_run.result.Dpa_fmm.Fmm_seq.potential.(i))
        > 1e-8
      then Alcotest.failf "potential %d differs" i)
    seq.Dpa_fmm.Fmm_seq.potential

let test_upward_routed_bit_identical () =
  (* The M2M fan-in through the binomial tree must reproduce the flat
     phase's expansions bit for bit — the per-coefficient grids make the
     merge order irrelevant. *)
  let expansions route =
    let nnodes = 4 in
    let tree, params = upward_setup ~nparticles:500 in
    let global =
      Dpa_fmm.Fmm_global.distribute_empty ~p:params.Dpa_fmm.Fmm_force.p tree
        ~nnodes
    in
    let engine = Engine.create (machine nnodes) in
    ignore
      (Dpa_fmm.Fmm_upward.run ?route ~engine ~global ~params
         (Dpa_baselines.Variant.dpa ()));
    Array.map
      (fun p ->
        if Gptr.is_nil p then [||]
        else
          Array.copy
            (Heap.deref global.Dpa_fmm.Fmm_global.heaps p).Obj_repr.floats)
      global.Dpa_fmm.Fmm_global.mp_ptrs
  in
  let flat = expansions None in
  let routed = expansions (Some Dpa.Config.All_dsts) in
  Alcotest.(check bool) "routed M2M expansions bit-identical" true
    (flat = routed)

let test_upward_combining_saves_messages () =
  let run variant =
    let _, _, (r : Dpa_fmm.Fmm_upward.result), _ = run_upward variant in
    r
  in
  let dpa = run (Dpa_baselines.Variant.dpa ()) in
  let caching = run (Dpa_baselines.Variant.Caching { capacity = 64 }) in
  (match dpa.Dpa_fmm.Fmm_upward.dpa_stats with
  | Some s ->
    Alcotest.(check bool) "remote updates exist" true
      (s.Dpa.Dpa_stats.update_msgs > 0)
  | None -> Alcotest.fail "expected dpa stats");
  Alcotest.(check bool) "combining+aggregation beats singles" true
    (dpa.Dpa_fmm.Fmm_upward.breakdown.Breakdown.msgs
    < caching.Dpa_fmm.Fmm_upward.breakdown.Breakdown.msgs)

let suites =
  [
    ( "core.update_buffer",
      [
        Alcotest.test_case "combines" `Quick test_update_buffer_combines;
        Alcotest.test_case "no-combine keeps all" `Quick
          test_update_buffer_no_combine;
        Alcotest.test_case "eager flush" `Quick test_update_buffer_eager_flush;
        Alcotest.test_case "hold and flush_if" `Quick
          test_update_buffer_hold_and_flush_if;
        Alcotest.test_case "held bucket survives key collisions" `Quick
          test_update_buffer_held_collision;
        Alcotest.test_case "clear wipes without flushing" `Quick
          test_update_buffer_clear;
        Alcotest.test_case "add_entries" `Quick test_update_buffer_add_entries;
        QCheck_alcotest.to_alcotest qcheck_update_buffer_sum_preserved;
      ] );
    ( "core.routed_aggregation",
      [
        Alcotest.test_case "bit-identical, fewer messages" `Quick
          test_routed_bit_identical_and_fewer_messages;
        Alcotest.test_case "exact and replayable under faults" `Quick
          test_routed_under_faults_exact_and_replayable;
        Alcotest.test_case "survives crash plans" `Quick
          test_routed_survives_crash_plans;
        Alcotest.test_case "config validation" `Quick
          test_route_config_validation;
      ] );
    ( "core.accumulate",
      [
        Alcotest.test_case "dpa" `Quick test_accumulate_dpa;
        Alcotest.test_case "dpa no combine" `Quick test_accumulate_dpa_no_combine;
        Alcotest.test_case "caching" `Quick test_accumulate_caching;
        Alcotest.test_case "blocking" `Quick test_accumulate_blocking;
        Alcotest.test_case "combining reduces messages" `Quick
          test_dpa_combining_reduces_messages;
      ] );
    ( "fmm.upward",
      [
        Alcotest.test_case "dpa matches sequential" `Quick
          test_upward_dpa_matches_seq;
        Alcotest.test_case "caching matches sequential" `Quick
          test_upward_caching_matches_seq;
        Alcotest.test_case "upward then force pipeline" `Quick
          test_upward_then_force_pipeline;
        Alcotest.test_case "combining saves messages" `Quick
          test_upward_combining_saves_messages;
        Alcotest.test_case "routed upward bit-identical" `Quick
          test_upward_routed_bit_identical;
      ] );
  ]

open Dpa_harness

(* A deliberately tiny configuration so every experiment runner finishes in
   well under a second. *)
let tiny =
  {
    Runconf.small with
    Runconf.name = "tiny";
    bh_bodies = 256;
    bh_steps = 1;
    fmm_particles = 256;
    fmm_p = 6;
    procs = [ 1; 4 ];
    breakdown_procs = 4;
    cache_capacity = 512;
  }

let test_table_render () =
  let t = Table.make ~header:[ "A"; "LONG HEADER" ] in
  Table.add_row t [ "1"; "x" ];
  Table.add_row t [ "22"; "yy" ];
  let s = Table.render t in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: sep :: _ ->
    Alcotest.(check bool) "aligned" true
      (String.length header = String.length sep)
  | _ -> Alcotest.fail "too few lines");
  Alcotest.(check bool) "contains row" true
    (List.exists (fun l -> l = "22  yy         ") lines)

let test_table_bad_row () =
  let t = Table.make ~header:[ "A" ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.add_row: wrong number of columns") (fun () ->
      Table.add_row t [ "1"; "2" ])

let test_table_formats () =
  Alcotest.(check string) "sec" "118.02" (Table.sec 118.019);
  Alcotest.(check string) "speedup" "42.4" (Table.speedup 42.42);
  Alcotest.(check string) "opt none" "-" (Table.opt Table.sec None)

let test_barchart_render () =
  let machine = Dpa_sim.Machine.t3d ~nodes:1 in
  let n = Dpa_sim.Node.create ~machine ~id:0 in
  Dpa_sim.Node.charge_local n 600;
  Dpa_sim.Node.charge_comm n 200;
  Dpa_sim.Node.wait_until n 1000;
  let b = Dpa_sim.Breakdown.of_nodes ~elapsed_ns:1000 [| n |] in
  let s =
    Barchart.render ~width:10
      [ Barchart.of_breakdown ~label:"x" ~speedup:2.0 b ]
  in
  Alcotest.(check bool) "has local" true (String.contains s '#');
  Alcotest.(check bool) "has comm" true (String.contains s '+');
  Alcotest.(check bool) "has idle" true (String.contains s '.')

let test_runconf_names () =
  Alcotest.(check string) "small" "small" Runconf.small.Runconf.name;
  Alcotest.(check string) "full" "full" Runconf.full.Runconf.name;
  Alcotest.(check bool) "full is paper input" true
    (Runconf.full.Runconf.bh_bodies = fst Paper.bh_input
    && Runconf.full.Runconf.fmm_p = snd Paper.fmm_input);
  (match Runconf.of_name "nope" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument")

let test_paper_numbers () =
  Alcotest.(check (option (float 1e-9))) "bh dpa 64" (Some 2.63)
    (Paper.bh_dpa50_s 64);
  Alcotest.(check (option (float 1e-9))) "bh caching 1" (Some 115.15)
    (Paper.bh_caching_s 1);
  Alcotest.(check (option (float 1e-9))) "unknown" None (Paper.fmm_caching_s 16)

let test_bh_times_monotone () =
  let rows = Experiment.bh_times tiny in
  Alcotest.(check int) "rows" 2 (List.length rows);
  let t1 = List.nth rows 0 and t4 = List.nth rows 1 in
  Alcotest.(check bool) "more procs is faster (dpa)" true
    (t4.Experiment.dpa_s < t1.Experiment.dpa_s);
  Alcotest.(check bool) "seq consistent" true
    (Float.abs (t1.Experiment.seq_s -. t4.Experiment.seq_s) < 1e-9)

let test_fmm_times_monotone () =
  let rows = Experiment.fmm_times tiny in
  let t1 = List.nth rows 0 and t4 = List.nth rows 1 in
  Alcotest.(check bool) "more procs is faster (dpa)" true
    (t4.Experiment.dpa_s < t1.Experiment.dpa_s)

let test_breakdown_ordering () =
  let bars = Experiment.bh_breakdown tiny in
  Alcotest.(check int) "five variants" 5 (List.length bars);
  let time name =
    let b = List.find (fun b -> b.Experiment.variant = name) bars in
    Dpa_sim.Breakdown.elapsed_s b.Experiment.breakdown
  in
  (* The paper's headline ordering. *)
  Alcotest.(check bool) "dpa beats blocking" true
    (time "DPA(50)" < time "Blocking (base)");
  Alcotest.(check bool) "aggregation helps pipelining" true
    (time "Pipeline+agg" <= time "Pipeline")

let test_strip_sweep_bounds () =
  let points = Experiment.strip_sweep ~strips:[ 4; 64 ] tiny in
  let p4 = List.nth points 0 and p64 = List.nth points 1 in
  Alcotest.(check bool) "outstanding grows with strip" true
    (p4.Experiment.bh_outstanding <= p64.Experiment.bh_outstanding)

let test_speedups_match_times () =
  let bh = Experiment.bh_times tiny and fmm = Experiment.fmm_times tiny in
  let rows = Experiment.speedups ~bh ~fmm in
  List.iter2
    (fun (r : Experiment.speedup_row) (t : Experiment.timing) ->
      Alcotest.(check (float 1e-9)) "bh speedup" (t.Experiment.seq_s /. t.Experiment.dpa_s)
        r.Experiment.bh_speedup)
    rows bh

let test_thread_stats_rows () =
  let rows = Experiment.thread_stats tiny in
  Alcotest.(check int) "five programs" 5 (List.length rows);
  let bh = List.hd rows in
  Alcotest.(check string) "first is BH" "Barnes-Hut" bh.Experiment.name;
  Alcotest.(check bool) "dynamic threads counted" true
    (bh.Experiment.dynamic_threads > 0);
  let ir =
    List.find (fun r -> r.Experiment.name = "pair_sum (IR)") rows
  in
  Alcotest.(check int) "pair_sum static sites" 1 ir.Experiment.static_sites

let test_agg_sweep_msgs_decrease () =
  let points = Experiment.agg_sweep ~aggs:[ 1; 64 ] tiny in
  let p1 = List.nth points 0 and p64 = List.nth points 1 in
  Alcotest.(check bool) "fewer messages with aggregation" true
    (p64.Experiment.msgs < p1.Experiment.msgs)

let test_cache_sweep_hits_increase () =
  let points = Experiment.cache_sweep ~capacities:[ 4; 4096 ] tiny in
  let small = List.nth points 0 and big = List.nth points 1 in
  Alcotest.(check bool) "bigger cache, more hits" true
    (big.Experiment.hits >= small.Experiment.hits);
  Alcotest.(check bool) "bigger cache, fewer misses" true
    (big.Experiment.misses <= small.Experiment.misses);
  Alcotest.(check bool) "bigger cache not slower" true
    (big.Experiment.time_s <= small.Experiment.time_s +. 1e-9)

let test_distribution_sweep () =
  let points = Experiment.distribution_sweep tiny in
  Alcotest.(check int) "two distributions" 2 (List.length points);
  let uniform = List.nth points 0 and clustered = List.nth points 1 in
  Alcotest.(check string) "uniform first" "uniform" uniform.Experiment.dist_name;
  Alcotest.(check bool) "clustered idles more (imbalance)" true
    (clustered.Experiment.dist_idle_frac >= uniform.Experiment.dist_idle_frac)

let test_partition_sweep () =
  let points = Experiment.partition_sweep tiny in
  Alcotest.(check int) "two partitions" 2 (List.length points);
  let block = List.nth points 0 and cz = List.nth points 1 in
  Alcotest.(check string) "block first" "equal-count blocks"
    block.Experiment.part_name;
  (* Costzones balances work: it must not be meaningfully slower. *)
  Alcotest.(check bool) "costzones competitive" true
    (cz.Experiment.part_time_s <= block.Experiment.part_time_s *. 1.05)

let test_em3d_sweep () =
  let points = Experiment.em3d_sweep tiny in
  Alcotest.(check int) "three runtimes" 3 (List.length points);
  let sums = List.map (fun p -> p.Experiment.em3d_checksum) points in
  List.iter
    (fun s ->
      Alcotest.(check bool) "checksums agree" true
        (Float.abs (s -. List.hd sums) < 1e-9))
    sums

let test_latency_sweep_dpa_robust () =
  let points = Experiment.latency_sweep ~scales:[ 1.; 8. ] tiny in
  let low = List.nth points 0 and high = List.nth points 1 in
  let gap p = p.Experiment.lat_blocking_s /. p.Experiment.lat_dpa_s in
  Alcotest.(check bool) "dpa advantage grows with latency" true
    (gap high > gap low)

let test_upward_sweep () =
  let points = Experiment.upward_sweep tiny in
  Alcotest.(check int) "four runtimes" 4 (List.length points);
  let dpa = List.hd points in
  let blocking = List.nth points 3 in
  Alcotest.(check bool) "combining uses fewer messages" true
    (dpa.Experiment.up_msgs <= blocking.Experiment.up_msgs)

let test_afmm_sweep () =
  let points = Experiment.afmm_sweep tiny in
  Alcotest.(check int) "four rows" 4 (List.length points);
  let t name =
    (List.find (fun p -> p.Experiment.af_variant = name) points)
      .Experiment.af_time_s
  in
  Alcotest.(check bool) "adaptive dpa beats adaptive blocking" true
    (t "adaptive + DPA" <= t "adaptive + Blocking")

let test_hotspot () =
  let points = Experiment.hotspot tiny in
  Alcotest.(check int) "four configs" 4 (List.length points);
  let t name =
    (List.find (fun p -> p.Experiment.hs_config = name) points)
      .Experiment.hs_time_s
  in
  Alcotest.(check bool) "serialization hurts pipeline more than dpa" true
    (t "DPA, serialized ingress" <= t "Pipeline, serialized ingress" +. 1e-9)

let suites =
  [
    ( "harness.table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "bad row" `Quick test_table_bad_row;
        Alcotest.test_case "formats" `Quick test_table_formats;
      ] );
    ( "harness.barchart",
      [ Alcotest.test_case "render" `Quick test_barchart_render ] );
    ( "harness.runconf",
      [ Alcotest.test_case "presets" `Quick test_runconf_names ] );
    ( "harness.paper",
      [ Alcotest.test_case "recorded numbers" `Quick test_paper_numbers ] );
    ( "harness.experiment",
      [
        Alcotest.test_case "bh times monotone" `Quick test_bh_times_monotone;
        Alcotest.test_case "fmm times monotone" `Quick test_fmm_times_monotone;
        Alcotest.test_case "breakdown ordering" `Quick test_breakdown_ordering;
        Alcotest.test_case "strip sweep bounds" `Quick test_strip_sweep_bounds;
        Alcotest.test_case "speedups match times" `Quick
          test_speedups_match_times;
        Alcotest.test_case "thread stats rows" `Quick test_thread_stats_rows;
        Alcotest.test_case "agg sweep" `Quick test_agg_sweep_msgs_decrease;
        Alcotest.test_case "cache sweep" `Quick test_cache_sweep_hits_increase;
        Alcotest.test_case "distribution sweep" `Quick test_distribution_sweep;
        Alcotest.test_case "partition sweep" `Quick test_partition_sweep;
        Alcotest.test_case "em3d sweep" `Quick test_em3d_sweep;
        Alcotest.test_case "latency sweep" `Quick test_latency_sweep_dpa_robust;
        Alcotest.test_case "upward sweep" `Quick test_upward_sweep;
        Alcotest.test_case "afmm sweep" `Quick test_afmm_sweep;
        Alcotest.test_case "hotspot" `Quick test_hotspot;
      ] );
  ]

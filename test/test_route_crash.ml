(* Route × crash chaos tests: tree-routed aggregation under crash-restart
   fault plans, covered by the origin-anchored end-to-end ack. Every routed
   batch stays in its origin's [out_updates] (WAL-journaled) until the
   final owner's application-level ack arrives; relay hops are best-effort
   combiners whose crashes only cost a straight-line re-issue, which the
   owner's applied-batch journal dedups. The fixed-point accumulation
   grids make every recovered merge bit-identical to the fault-free run —
   which is exactly what these tests assert. *)

open Dpa_sim
open Dpa_heap

let nnodes = 8

(* The fan-in workload of test_reduction.ml: every node bumps four
   counters owned by node 0 across many strips. [charge] sets per-node
   compute cost — skewing it makes a relay hop finish late, so routed
   batches from fast origins park there long enough for a crash window
   to land on top of them. *)
let run_fanin ?faults ?(fault_seed = 0x5EED) ?(route = Dpa.Config.All_dsts)
    ?(charge = fun _node -> 1_000) () =
  let heaps = Heap.cluster ~nnodes in
  let counters =
    Array.init 4 (fun _ -> Heap.alloc heaps.(0) ~floats:[| 0.; 0. |] ~ptrs:[||])
  in
  let items node =
    Array.init 32 (fun i ->
        fun ctx ->
          Dpa.Runtime.charge ctx (charge node);
          let c = counters.(i mod 4) in
          Dpa.Runtime.accumulate ctx c ~idx:0 1.0;
          Dpa.Runtime.accumulate ctx c ~idx:1 (float_of_int ((node * 32) + i)))
  in
  let engine =
    Engine.create (Machine.make ~nodes:nnodes ?faults ~fault_seed ())
  in
  let breakdown, stats =
    Dpa.Runtime.run_phase ~engine ~heaps
      ~config:(Dpa.Config.dpa ~strip_size:4 ~route ())
      ~items
  in
  let vals =
    Array.map
      (fun c -> Array.copy (Heap.deref heaps c).Obj_repr.floats)
      counters
  in
  (vals, stats, breakdown.Breakdown.elapsed_ns)

let reference = lazy (let v, _, e = run_fanin ?faults:None () in (v, e))

(* Crash knobs scaled to the phase: windows drawn inside the first half of
   the fault-free elapsed time, down for an eighth of it — mid-phase
   crashes that land while batches are parked at relays. *)
let crash_spec ?(base = Fault.none) ~elapsed ~crashes () =
  {
    base with
    Fault.crashes;
    crash_ns = max 1_000 (elapsed / 8);
    outage_horizon_ns = max 1_000 (elapsed / 2);
  }

let test_relay_crash_exact_with_reissues () =
  (* Node 4 is the binomial-tree relay for origins 5 and 6 (dst 0: rank =
     src, next hop clears the lowest set bit). Making its compute 16×
     heavier parks their routed batches at node 4 for most of the phase,
     so the crash windows reliably wipe live relay state. *)
  let charge node = if node = 4 then 16_000 else 1_000 in
  let reference, _, elapsed = run_fanin ~charge () in
  let spec = crash_spec ~elapsed ~crashes:1 () in
  let wiped = ref 0 and reissued = ref 0 and crashed = ref 0 in
  for seed = 1 to 24 do
    let vals, stats, _ = run_fanin ~faults:spec ~fault_seed:seed ~charge () in
    if vals <> reference then
      Alcotest.failf "routed+crash diverged from fault-free run at seed %d"
        seed;
    wiped := !wiped + stats.Dpa.Dpa_stats.relay_wiped;
    reissued :=
      !reissued + stats.Dpa.Dpa_stats.routed_reissues
      + stats.Dpa.Dpa_stats.upd_reissues;
    crashed := !crashed + stats.Dpa.Dpa_stats.crashes
  done;
  (* The sweep must actually exercise the recovery machinery, not just
     schedule crashes past the phase end. *)
  Alcotest.(check bool) "some crashes landed mid-phase" true (!crashed > 0);
  Alcotest.(check bool) "a crash wiped parked relay entries" true (!wiped > 0);
  Alcotest.(check bool) "origins re-issued straight-line" true (!reissued > 0)

let test_origin_crash_with_held_batches () =
  (* Two crash windows per node: origins crash too, losing their in-memory
     [out_updates] image mid-custody. The restart walk rebuilds it from
     the checksum-scanned WAL and re-sends every surviving batch; the
     owner's journal dedups whichever copy (tree or straight-line) arrives
     second. *)
  let reference, elapsed = Lazy.force reference in
  let spec = crash_spec ~elapsed ~crashes:2 () in
  let crashed = ref 0 in
  for seed = 1 to 16 do
    let vals, stats, _ = run_fanin ~faults:spec ~fault_seed:seed () in
    if vals <> reference then
      Alcotest.failf "origin-crash schedule diverged at seed %d" seed;
    crashed := !crashed + stats.Dpa.Dpa_stats.crashes
  done;
  Alcotest.(check bool) "crashes landed mid-phase" true (!crashed > 0)

let test_ack_loss_and_straightline_dedup () =
  (* Heavy message faults on top of crashes: 10% of all copies drop —
     app-level acks included — so lost acks force duplicate straight-line
     replays that the owner's journal must absorb without double-applying
     against the copies that survived the tree. *)
  let reference, elapsed = Lazy.force reference in
  let spec = crash_spec ~base:Fault.heavy ~elapsed ~crashes:1 () in
  for seed = 1 to 8 do
    let vals, _, _ = run_fanin ~faults:spec ~fault_seed:seed () in
    if vals <> reference then
      Alcotest.failf "heavy+crash routed schedule diverged at seed %d" seed
  done

let test_replay_determinism () =
  let _, elapsed = Lazy.force reference in
  let spec = crash_spec ~base:Fault.heavy ~elapsed ~crashes:1 () in
  let v1, s1, e1 = run_fanin ~faults:spec ~fault_seed:7 () in
  let v2, s2, e2 = run_fanin ~faults:spec ~fault_seed:7 () in
  Alcotest.(check bool) "values replay bit-for-bit" true (v1 = v2);
  Alcotest.(check bool) "stats replay exactly" true (s1 = s2);
  Alcotest.(check int) "elapsed replays exactly" e1 e2

let qcheck_routed_crash_exact =
  QCheck.Test.make ~name:"routed sums under random crash plans = fault-free"
    ~count:30
    QCheck.(
      quad (int_range 1 10_000) (int_range 0 2) (float_range 0. 0.15)
        (float_range 0. 0.1))
    (fun (seed, crashes, drop, dup) ->
      let reference, elapsed = Lazy.force reference in
      let spec =
        {
          (crash_spec ~elapsed ~crashes ()) with
          Fault.drop;
          dup;
          delay = 0.05;
          jitter_ns = 10_000;
        }
      in
      let vals, _, _ = run_fanin ~faults:spec ~fault_seed:seed () in
      vals = reference)

let suites =
  [
    ( "core.route_crash",
      [
        Alcotest.test_case "relay-hop crash: exact, with re-issues" `Quick
          test_relay_crash_exact_with_reissues;
        Alcotest.test_case "origin crash with held batches" `Quick
          test_origin_crash_with_held_batches;
        Alcotest.test_case "ack loss + straight-line replay dedup" `Quick
          test_ack_loss_and_straightline_dedup;
        Alcotest.test_case "fixed-seed replay determinism" `Quick
          test_replay_determinism;
        QCheck_alcotest.to_alcotest qcheck_routed_crash_exact;
      ] );
  ]

open Dpa_sim

let test_hit_after_access () =
  let c = Dcache.create ~lines:16 () in
  Alcotest.(check bool) "cold miss" false (Dcache.access c 7);
  Alcotest.(check bool) "hit" true (Dcache.access c 7);
  Alcotest.(check int) "hits" 1 (Dcache.hits c);
  Alcotest.(check int) "misses" 1 (Dcache.misses c)

let test_lru_within_set () =
  (* Direct-mapped 1-way, 1 set: every distinct key evicts. *)
  let c = Dcache.create ~assoc:1 ~lines:1 () in
  ignore (Dcache.access c 1);
  ignore (Dcache.access c 2);
  Alcotest.(check bool) "1 evicted" false (Dcache.access c 1)

let test_assoc_retains () =
  (* Fully-associative 4-way, 1 set: 4 keys fit. *)
  let c = Dcache.create ~assoc:4 ~lines:4 () in
  for k = 0 to 3 do
    ignore (Dcache.access c k)
  done;
  for k = 0 to 3 do
    if not (Dcache.access c k) then Alcotest.failf "key %d evicted" k
  done

let test_miss_rate_and_reset () =
  let c = Dcache.create ~lines:8 () in
  ignore (Dcache.access c 0);
  ignore (Dcache.access c 0);
  Alcotest.(check (float 1e-9)) "rate" 0.5 (Dcache.miss_rate c);
  Dcache.reset c;
  Alcotest.(check int) "reset" 0 (Dcache.hits c + Dcache.misses c);
  Alcotest.(check bool) "cold again" false (Dcache.access c 0)

let qcheck_working_set_fits =
  QCheck.Test.make ~name:"a working set smaller than the cache never misses twice"
    ~count:100
    QCheck.(pair (int_range 1 8) (small_list (int_range 0 7)))
    (fun (assoc, keys) ->
      (* Fully associative (1 set) with >= 8 ways holds keys 0..7. *)
      let c = Dcache.create ~assoc:(max 8 assoc) ~lines:(max 8 assoc) () in
      List.iter (fun k -> ignore (Dcache.access c k)) keys;
      let distinct = List.sort_uniq compare keys in
      Dcache.misses c = List.length distinct)

let test_cache_locality_experiment () =
  let tiny =
    { Dpa_harness.Runconf.small with Dpa_harness.Runconf.bh_bodies = 512 }
  in
  let points = Dpa_harness.Experiment.cache_locality ~lines:[ 256 ] tiny in
  match points with
  | [ p ] ->
    Alcotest.(check bool) "tree order no worse than random" true
      (p.Dpa_harness.Experiment.cl_tree_miss
      <= p.Dpa_harness.Experiment.cl_random_miss +. 1e-9)
  | _ -> Alcotest.fail "expected one point"

let suites =
  [
    ( "sim.dcache",
      [
        Alcotest.test_case "hit after access" `Quick test_hit_after_access;
        Alcotest.test_case "lru within set" `Quick test_lru_within_set;
        Alcotest.test_case "associativity retains" `Quick test_assoc_retains;
        Alcotest.test_case "miss rate / reset" `Quick test_miss_rate_and_reset;
        QCheck_alcotest.to_alcotest qcheck_working_set_fits;
        Alcotest.test_case "locality experiment" `Quick
          test_cache_locality_experiment;
      ] );
  ]

(* Constructor and argument validation across the libraries: bad inputs
   must fail loudly, not corrupt a simulation. *)

open Dpa_sim

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_machine_validation () =
  expect_invalid "zero nodes" (fun () -> Machine.make ~nodes:0 ())

let test_engine_validation () =
  let engine = Engine.create (Machine.t3d ~nodes:2) in
  expect_invalid "bad node" (fun () ->
      Engine.post engine ~time:0 ~node:5 (fun () -> ()));
  expect_invalid "negative time" (fun () ->
      Engine.post engine ~time:(-1) ~node:0 (fun () -> ()));
  Engine.post engine ~time:0 ~node:0 (fun () -> ());
  expect_invalid "barrier with pending events" (fun () -> Engine.barrier engine)

let test_config_validation () =
  expect_invalid "zero strip" (fun () -> Dpa.Config.dpa ~strip_size:0 ());
  expect_invalid "zero agg" (fun () -> Dpa.Config.dpa ~agg_max:0 ())

let test_heap_validation () =
  expect_invalid "zero cluster" (fun () -> Dpa_heap.Heap.cluster ~nnodes:0);
  expect_invalid "bad gptr" (fun () -> Dpa_heap.Gptr.make ~node:(-1) ~slot:0)

let test_aggregator_validation () =
  expect_invalid "zero dest" (fun () ->
      Dpa_msg.Aggregator.create ~ndest:0 ~max_batch:1 ~flush:(fun ~dst:_ _ -> ()));
  expect_invalid "zero batch" (fun () ->
      Dpa_msg.Aggregator.create ~ndest:1 ~max_batch:0 ~flush:(fun ~dst:_ _ -> ()))

let test_update_buffer_validation () =
  expect_invalid "zero dest" (fun () ->
      Dpa.Update_buffer.create ~ndest:0 ~combine:true ~max_batch:1
        ~flush:(fun ~dst:_ _ -> ())
        ())

let test_dcache_validation () =
  expect_invalid "zero lines" (fun () -> Dcache.create ~lines:0 ());
  expect_invalid "zero assoc" (fun () -> Dcache.create ~assoc:0 ~lines:4 ());
  let c = Dcache.create ~lines:4 () in
  expect_invalid "negative key" (fun () -> Dcache.access c (-1))

let test_app_validation () =
  expect_invalid "no bodies" (fun () -> Dpa_bh.Octree.build [||]);
  expect_invalid "bad leaf cap" (fun () ->
      Dpa_bh.Octree.build ~leaf_cap:0 (Dpa_bh.Plummer.generate ~n:4 ~seed:1));
  expect_invalid "no particles" (fun () -> Dpa_fmm.Quadtree.build [||]);
  expect_invalid "shallow depth" (fun () ->
      Dpa_fmm.Quadtree.build ~depth:1 (Dpa_fmm.Particle2d.uniform ~n:4 ~seed:1));
  expect_invalid "zero steps" (fun () ->
      Dpa_bh.Bh_run.simulate ~nnodes:1 ~nbodies:4 ~nsteps:0
        Dpa_baselines.Variant.Blocking);
  expect_invalid "bad remote frac" (fun () ->
      Dpa_compiler.Em3d.build ~nnodes:1 ~e_per_node:1 ~h_per_node:1 ~degree:1
        ~remote_frac:1.5 ~seed:1)

let test_expansion_validation () =
  expect_invalid "coincident m2l" (fun () ->
      Dpa_fmm.Expansion.m2l
        (Dpa_fmm.Expansion.zero ~p:3)
        ~from_center:Complex.zero ~to_center:Complex.zero);
  expect_invalid "mismatched add" (fun () ->
      Dpa_fmm.Expansion.add_inplace
        (Dpa_fmm.Expansion.zero ~p:2)
        (Dpa_fmm.Expansion.zero ~p:3));
  expect_invalid "huge binomial" (fun () -> Dpa_fmm.Expansion.binomial 1000 2)

let test_variant_names () =
  Alcotest.(check string) "dpa" "DPA(50)"
    (Dpa_baselines.Variant.name (Dpa_baselines.Variant.dpa ()));
  Alcotest.(check string) "caching" "Caching(32)"
    (Dpa_baselines.Variant.name (Dpa_baselines.Variant.Caching { capacity = 32 }));
  Alcotest.(check string) "blocking" "Blocking"
    (Dpa_baselines.Variant.name Dpa_baselines.Variant.Blocking)

let test_t3d_defaults () =
  let m = Machine.t3d ~nodes:4 in
  Alcotest.(check bool) "contention-free by default" false
    m.Machine.ingress_serialized;
  Alcotest.(check int) "nodes" 4 m.Machine.nodes

let suites =
  [
    ( "validation",
      [
        Alcotest.test_case "machine" `Quick test_machine_validation;
        Alcotest.test_case "engine" `Quick test_engine_validation;
        Alcotest.test_case "config" `Quick test_config_validation;
        Alcotest.test_case "heap" `Quick test_heap_validation;
        Alcotest.test_case "aggregator" `Quick test_aggregator_validation;
        Alcotest.test_case "update buffer" `Quick test_update_buffer_validation;
        Alcotest.test_case "dcache" `Quick test_dcache_validation;
        Alcotest.test_case "applications" `Quick test_app_validation;
        Alcotest.test_case "expansion" `Quick test_expansion_validation;
        Alcotest.test_case "variant names" `Quick test_variant_names;
        Alcotest.test_case "t3d defaults" `Quick test_t3d_defaults;
      ] );
  ]

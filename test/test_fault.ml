(* Fault injection and the reliable-delivery protocol: spec parsing, plan
   determinism, exactly-once semantics of the Am layer under hostile
   networks, and randomized end-to-end properties — a faulted phase must
   compute exactly the fault-free results, and a fixed fault seed must
   replay the exact same chaos run. *)

open Dpa_sim

(* --- spec parsing ------------------------------------------------------- *)

let test_spec_presets () =
  (match Fault.spec_of_string "none" with
  | Ok s -> Alcotest.(check bool) "none" true (s = Fault.none)
  | Error e -> Alcotest.fail e);
  (match Fault.spec_of_string "light" with
  | Ok s ->
    Alcotest.(check (float 0.)) "light drop" 0.01 s.Fault.drop;
    Alcotest.(check (float 0.)) "light dup" 0.005 s.Fault.dup
  | Error e -> Alcotest.fail e);
  match Fault.spec_of_string "heavy" with
  | Ok s ->
    Alcotest.(check (float 0.)) "heavy drop" 0.10 s.Fault.drop;
    Alcotest.(check int) "heavy outages" 1 s.Fault.outages
  | Error e -> Alcotest.fail e

let test_spec_key_values () =
  match
    Fault.spec_of_string
      "drop=0.05,dup=0.01,delay=0.2,jitter=77,outages=2,outage-ns=123,horizon-ns=456,crashes=2,crash-ns=99,slow-node=1,slow-factor=2.5,corrupt=0.03,torn-wal=1"
  with
  | Error e -> Alcotest.fail e
  | Ok s ->
    Alcotest.(check (float 0.)) "drop" 0.05 s.Fault.drop;
    Alcotest.(check (float 0.)) "dup" 0.01 s.Fault.dup;
    Alcotest.(check (float 0.)) "delay" 0.2 s.Fault.delay;
    Alcotest.(check int) "jitter" 77 s.Fault.jitter_ns;
    Alcotest.(check int) "outages" 2 s.Fault.outages;
    Alcotest.(check int) "outage-ns" 123 s.Fault.outage_ns;
    Alcotest.(check int) "horizon-ns" 456 s.Fault.outage_horizon_ns;
    Alcotest.(check int) "crashes" 2 s.Fault.crashes;
    Alcotest.(check int) "crash-ns" 99 s.Fault.crash_ns;
    Alcotest.(check int) "slow-node" 1 s.Fault.slow_node;
    Alcotest.(check (float 0.)) "slow-factor" 2.5 s.Fault.slow_factor;
    Alcotest.(check (float 0.)) "corrupt" 0.03 s.Fault.corrupt;
    Alcotest.(check (float 0.)) "torn-wal" 1. s.Fault.torn_wal

let test_spec_preset_override () =
  match Fault.spec_of_string "heavy,crashes=1,crash-ns=777" with
  | Error e -> Alcotest.fail e
  | Ok s ->
    Alcotest.(check (float 0.)) "heavy drop kept" 0.10 s.Fault.drop;
    Alcotest.(check int) "heavy outages kept" 1 s.Fault.outages;
    Alcotest.(check int) "crashes overridden" 1 s.Fault.crashes;
    Alcotest.(check int) "crash-ns overridden" 777 s.Fault.crash_ns

let test_spec_errors () =
  let rejects str =
    match Fault.spec_of_string str with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted bad spec %S" str
  in
  rejects "drop=1.5";
  rejects "drop=-0.1";
  rejects "wat=1";
  rejects "drop";
  rejects "drop=abc";
  rejects "jitter=abc";
  rejects "crashes=-1";
  rejects "crash-ns=-5";
  rejects "slow-factor=0.5";
  rejects "corrupt=1";  (* per-copy probability: must stay below 1 *)
  rejects "corrupt=-0.1";
  rejects "torn-wal=1.5";  (* 1 is legal (deterministic tear), above is not *)
  rejects "torn-wal=-1"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_spec_errors_enumerate_keys () =
  (* A typo'd spec is a CLI dead end: the error must teach the valid
     vocabulary, not just reject. *)
  let error_of str =
    match Fault.spec_of_string str with
    | Error e -> e
    | Ok _ -> Alcotest.failf "accepted bad spec %S" str
  in
  let lists_keys e =
    contains e "valid keys:" && contains e "crashes" && contains e "crash-ns"
    && contains e "drop" && contains e "horizon-ns" && contains e "corrupt"
    && contains e "torn-wal"
  in
  Alcotest.(check bool)
    "unknown knob enumerates keys" true
    (lists_keys (error_of "wat=1"));
  Alcotest.(check bool)
    "missing '=' enumerates keys" true
    (lists_keys (error_of "light,drop"));
  let preset_err = error_of "wibble,drop=0.1" in
  Alcotest.(check bool)
    "unknown preset names presets and keys" true
    (contains preset_err "presets: none, light, heavy"
    && lists_keys preset_err)

let test_spec_roundtrip () =
  List.iter
    (fun spec ->
      match Fault.spec_of_string (Fault.spec_to_string spec) with
      | Ok s -> Alcotest.(check bool) "roundtrip" true (s = spec)
      | Error e -> Alcotest.fail e)
    [
      Fault.light;
      Fault.heavy;
      { Fault.light with Fault.slow_node = 2; slow_factor = 3. };
      { Fault.heavy with Fault.crashes = 2; crash_ns = 123_456 };
      { Fault.none with Fault.crashes = 1 };
      { Fault.none with Fault.corrupt = 0.25 };
      { Fault.heavy with Fault.crashes = 1; corrupt = 0.1; torn_wal = 1. };
    ];
  Alcotest.(check string)
    "pp none" "none"
    (Format.asprintf "%a" Fault.pp_spec Fault.none)

let full_spec_gen =
  QCheck.Gen.(
    let* drop = float_range 0. 0.5 in
    let* dup = float_range 0. 0.3 in
    let* delay = float_range 0. 0.5 in
    let* jitter_ns = int_range 1 100_000 in
    let* outages = int_range 0 3 in
    let* outage_ns = int_range 1 1_000_000 in
    let* horizon = int_range 1 10_000_000 in
    let* crashes = int_range 0 3 in
    let* crash_ns = int_range 1 1_000_000 in
    let* slow_node = int_range (-1) 3 in
    let* slow_factor = float_range 1. 5. in
    let* corrupt = float_range 0. 0.5 in
    let* torn_wal = float_range 0. 1. in
    return
      {
        Fault.drop;
        dup;
        delay;
        jitter_ns;
        outages;
        outage_ns;
        outage_horizon_ns = horizon;
        crashes;
        crash_ns;
        slow_node;
        slow_factor;
        corrupt;
        torn_wal;
      })

let qcheck_spec_pp_parse_roundtrip =
  (* [pp_spec] output must re-parse, and printing the re-parse must be a
     fixed point — the property that makes the printed form a faithful
     CLI-ready name for any plan (fields elided as defaults come back as
     defaults). *)
  QCheck.Test.make ~name:"pp/parse round-trips every spec" ~count:200
    (QCheck.make full_spec_gen) (fun spec ->
      let printed = Format.asprintf "%a" Fault.pp_spec spec in
      match Fault.spec_of_string printed with
      | Error _ -> false
      | Ok re -> Format.asprintf "%a" Fault.pp_spec re = printed)

(* --- plan determinism --------------------------------------------------- *)

let test_plan_determinism () =
  let spec = { Fault.heavy with Fault.outages = 3 } in
  let a = Fault.make ~seed:99 spec ~nodes:4 in
  let b = Fault.make ~seed:99 spec ~nodes:4 in
  for node = 0 to 3 do
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "windows of node %d equal" node)
      (Fault.outage_windows a ~node)
      (Fault.outage_windows b ~node)
  done;
  let verdicts t =
    List.init 200 (fun i ->
        Fault.judge t ~now:(i * 1000)
          ~arrival:((i * 1000) + 500)
          ~src:(i mod 4)
          ~dst:((i + 1) mod 4)
          ~transfer_ns:300)
  in
  Alcotest.(check bool) "same seed, same verdicts" true (verdicts a = verdicts b);
  let c = Fault.make ~seed:100 spec ~nodes:4 in
  Alcotest.(check bool)
    "different seed, different verdicts" true
    (verdicts a <> verdicts c)

let test_plan_validation () =
  Alcotest.check_raises "drop out of range"
    (Invalid_argument "Fault: drop must be in [0,1), got 1") (fun () ->
      ignore (Fault.make { Fault.none with Fault.drop = 1.0 } ~nodes:2));
  Alcotest.check_raises "nodes must be positive"
    (Invalid_argument "Fault.make: nodes must be positive") (fun () ->
      ignore (Fault.make Fault.none ~nodes:0))

(* --- reliable delivery over a faulty engine ------------------------------ *)

let test_exactly_once () =
  let spec =
    {
      Fault.none with
      Fault.drop = 0.35;
      dup = 0.25;
      delay = 0.3;
      jitter_ns = 20_000;
    }
  in
  let engine =
    Engine.create (Machine.make ~nodes:3 ~faults:spec ~fault_seed:42 ())
  in
  let m = Engine.machine engine in
  let n = 60 in
  let count = Array.make n 0 in
  for i = 0 to n - 1 do
    let src = Engine.node engine (i mod 2) in
    Dpa_msg.Am.send engine ~src ~dst:2
      ~bytes:(m.Machine.msg_header_bytes + 32) (fun _ ->
        count.(i) <- count.(i) + 1)
  done;
  Engine.run engine;
  Array.iteri
    (fun i c ->
      Alcotest.(check int) (Printf.sprintf "handler %d runs once" i) 1 c)
    count;
  Alcotest.(check int) "no in-flight envelopes" 0
    (Dpa_msg.Am.in_flight engine);
  match Dpa_msg.Am.stats engine with
  | None -> Alcotest.fail "reliable state missing"
  | Some s ->
    Alcotest.(check bool) "losses forced retransmits" true
      (s.Dpa_msg.Am.retransmits > 0);
    Alcotest.(check bool) "duplicates were suppressed" true
      (s.Dpa_msg.Am.dups_suppressed > 0);
    Alcotest.(check bool) "acks flowed" true (s.Dpa_msg.Am.acks >= n)

let test_none_plan_protocol_overhead_only () =
  (* Installing [Fault.none] turns the protocol on with a perfect network:
     every envelope is acked on the first attempt and nothing retransmits. *)
  let engine =
    Engine.create (Machine.make ~nodes:2 ~faults:Fault.none ~fault_seed:1 ())
  in
  let m = Engine.machine engine in
  let delivered = ref 0 in
  for _ = 1 to 10 do
    let src = Engine.node engine 0 in
    Dpa_msg.Am.send engine ~src ~dst:1
      ~bytes:(m.Machine.msg_header_bytes + 16) (fun _ -> incr delivered)
  done;
  Engine.run engine;
  Alcotest.(check int) "all delivered" 10 !delivered;
  match Dpa_msg.Am.stats engine with
  | None -> Alcotest.fail "reliable state missing"
  | Some s ->
    Alcotest.(check int) "no retransmits" 0 s.Dpa_msg.Am.retransmits;
    Alcotest.(check int) "no dups" 0 s.Dpa_msg.Am.dups_suppressed;
    Alcotest.(check int) "one ack per message" 10 s.Dpa_msg.Am.acks;
    Alcotest.(check int) "drained" 0 s.Dpa_msg.Am.in_flight

let test_no_plan_no_protocol () =
  let engine = Engine.create (Machine.make ~nodes:2 ()) in
  let m = Engine.machine engine in
  let delivered = ref 0 in
  Dpa_msg.Am.send engine
    ~src:(Engine.node engine 0)
    ~dst:1
    ~bytes:(m.Machine.msg_header_bytes + 16)
    (fun _ -> incr delivered);
  Engine.run engine;
  Alcotest.(check int) "delivered" 1 !delivered;
  Alcotest.(check bool) "no protocol state allocated" true
    (Dpa_msg.Am.stats engine = None)

let test_outage_recovery () =
  let spec =
    {
      Fault.none with
      Fault.outages = 1;
      outage_ns = 50_000;
      outage_horizon_ns = 200_000;
    }
  in
  let engine =
    Engine.create (Machine.make ~nodes:2 ~faults:spec ~fault_seed:7 ())
  in
  let plan = Option.get (Engine.fault engine) in
  let start, _ = List.hd (Fault.outage_windows plan ~node:0) in
  let m = Engine.machine engine in
  let delivered = ref 0 in
  (* Fire the send at the very start of node 0's NIC outage: the first
     transmission is guaranteed lost, so delivery proves the retransmission
     path outlives the window. *)
  Engine.post engine ~time:start ~node:0 (fun () ->
      Dpa_msg.Am.send engine
        ~src:(Engine.node engine 0)
        ~dst:1
        ~bytes:(m.Machine.msg_header_bytes + 64)
        (fun _ -> incr delivered));
  Engine.run engine;
  Alcotest.(check int) "delivered once" 1 !delivered;
  Alcotest.(check bool) "outage claimed a transmission" true
    (Fault.outage_drops plan > 0);
  Alcotest.(check int) "drained" 0 (Dpa_msg.Am.in_flight engine)

(* --- randomized end-to-end properties ------------------------------------ *)

let fault_spec_gen =
  QCheck.Gen.(
    let* drop = float_range 0. 0.3 in
    let* dup = float_range 0. 0.25 in
    let* delay = float_range 0. 0.3 in
    let* jitter_ns = int_range 1 30_000 in
    let* outages = int_range 0 2 in
    return
      {
        Fault.none with
        Fault.drop;
        dup;
        delay;
        jitter_ns;
        outages;
        outage_ns = 100_000;
        outage_horizon_ns = 2_000_000;
      })

(* Run one DPA phase (the same random workloads test_properties.ml uses) on
   a machine with an optional fault plan. The heap values are integer-valued
   floats, so the per-node sums are exact and order-independent — equality
   with the fault-free run means no wake was lost, duplicated or misrouted. *)
let run_dpa ?faults ?(fault_seed = 0x5EED) spec =
  let nnodes, _, nitems, _ = spec in
  let heaps, item_reads = Test_properties.build_phase spec in
  let sums = Array.make nnodes 0. in
  let items node =
    Array.init nitems (fun item ->
        fun ctx ->
          List.iter
            (fun p ->
              Dpa.Runtime.read ctx p (fun ctx view ->
                  Dpa.Runtime.charge ctx 100;
                  sums.(Dpa.Runtime.node_id ctx) <-
                    sums.(Dpa.Runtime.node_id ctx)
                    +. Dpa_heap.Heap.view_float (Dpa.Runtime.heaps ctx) view 0))
            (item_reads node item))
  in
  let engine =
    Engine.create (Machine.make ~nodes:nnodes ?faults ~fault_seed ())
  in
  let _, stats =
    Dpa.Runtime.run_phase ~engine ~heaps
      ~config:(Dpa.Config.dpa ~strip_size:3 ~agg_max:4 ())
      ~items
  in
  (sums, stats, Engine.elapsed engine, Dpa_msg.Am.stats engine)

let chaos_phase_gen =
  QCheck.Gen.(pair Test_properties.phase_gen (pair fault_spec_gen (int_range 0 1000)))

let qcheck_faults_preserve_sums =
  QCheck.Test.make ~name:"DPA phase under faults computes fault-free sums"
    ~count:30 (QCheck.make chaos_phase_gen)
    (fun (phase, (spec, seed)) ->
      let reference, _, _, _ = run_dpa phase in
      let sums, stats, _, am = run_dpa ~faults:spec ~fault_seed:seed phase in
      let nnodes, _, nitems, _ = phase in
      (* Every read is accounted for exactly once: inline, alignment-buffer
         hit, merge onto an outstanding fetch, or a fresh thread. Retries
         re-issue messages, never reads. *)
      let accounted =
        stats.Dpa.Dpa_stats.inline_local + stats.Dpa.Dpa_stats.align_hits
        + stats.Dpa.Dpa_stats.merge_hits + stats.Dpa.Dpa_stats.spawns
      in
      reference = sums
      && accounted = nnodes * nitems * 3
      (* A phase with no remote reads never sends, so the protocol state
         may legitimately be absent. *)
      && match am with Some s -> s.Dpa_msg.Am.in_flight = 0 | None -> true)

let qcheck_chaos_deterministic =
  QCheck.Test.make ~name:"same fault seed replays the identical chaos run"
    ~count:20 (QCheck.make chaos_phase_gen)
    (fun (phase, (spec, seed)) ->
      let s1, st1, e1, am1 = run_dpa ~faults:spec ~fault_seed:seed phase in
      let s2, st2, e2, am2 = run_dpa ~faults:spec ~fault_seed:seed phase in
      s1 = s2 && st1 = st2 && e1 = e2 && am1 = am2)

let qcheck_caching_survives_faults =
  QCheck.Test.make
    ~name:"caching baseline under faults computes fault-free sums" ~count:20
    (QCheck.make chaos_phase_gen)
    (fun (phase, (spec, seed)) ->
      let run ?faults ?(fault_seed = 0x5EED) () =
        Test_properties.run_variant
          (module Dpa_baselines.Caching)
          (fun heaps items ->
            let nnodes, _, _, _ = phase in
            let engine =
              Engine.create (Machine.make ~nodes:nnodes ?faults ~fault_seed ())
            in
            ignore
              (Dpa_baselines.Caching.run_phase ~engine ~heaps ~capacity:7
                 ~items ()))
          phase
      in
      run () = run ~faults:spec ~fault_seed:seed ())

(* --- crash-restart ------------------------------------------------------- *)

(* Derive a crash plan from a reference run's duration, the way the a13
   matrix does: one crash per node inside the first half of the phase,
   with a restart delay of an eighth of it. *)
let crash_spec ?(crashes = 1) ~elapsed () =
  {
    Fault.none with
    Fault.crashes;
    crash_ns = max 1_000 (elapsed / 8);
    outage_horizon_ns = max 1_000 (elapsed / 2);
  }

let test_incarnation_fencing () =
  (* An envelope is stamped with the destination's incarnation at wire-out.
     Crash the destination before the copy lands: the delivery must be
     fenced (no handler, no ack), and only the retransmission — stamped
     with the new incarnation — may run the handler. *)
  let engine =
    Engine.create (Machine.make ~nodes:2 ~faults:Fault.none ~fault_seed:3 ())
  in
  let m = Engine.machine engine in
  let delivered = ref 0 in
  Dpa_msg.Am.send engine
    ~src:(Engine.node engine 0)
    ~dst:1
    ~bytes:(m.Machine.msg_header_bytes + 32)
    (fun _ -> incr delivered);
  let dst = Engine.node engine 1 in
  dst.Node.incarnation <- dst.Node.incarnation + 1;
  ignore (Dpa_msg.Am.on_crash engine ~node:1);
  Engine.run engine;
  Alcotest.(check int) "handler ran exactly once" 1 !delivered;
  match Dpa_msg.Am.stats engine with
  | None -> Alcotest.fail "protocol state missing"
  | Some s ->
    Alcotest.(check bool) "stale copy fenced" true (s.Dpa_msg.Am.fenced >= 1);
    Alcotest.(check bool) "fence forced a retransmit" true
      (s.Dpa_msg.Am.retransmits >= 1);
    Alcotest.(check int) "drained" 0 s.Dpa_msg.Am.in_flight

let test_am_on_crash_wipes_sender_state () =
  (* A crashed node's own outstanding envelopes are volatile state: the
     sender forgets them (no more retransmissions, no ack bookkeeping),
     so the conversation ends even if the copy already on the wire is
     lost. The runtime re-issues whatever it still needs after restart;
     envelopes from other senders are untouched. *)
  let engine =
    Engine.create (Machine.make ~nodes:3 ~faults:Fault.none ~fault_seed:5 ())
  in
  let m = Engine.machine engine in
  let from0 = ref 0 and from2 = ref 0 in
  Dpa_msg.Am.send engine
    ~src:(Engine.node engine 0)
    ~dst:1
    ~bytes:(m.Machine.msg_header_bytes + 8)
    (fun _ -> incr from0);
  Dpa_msg.Am.send engine
    ~src:(Engine.node engine 2)
    ~dst:1
    ~bytes:(m.Machine.msg_header_bytes + 8)
    (fun _ -> incr from2);
  let wiped = Dpa_msg.Am.on_crash engine ~node:0 in
  Alcotest.(check int) "node 0's envelope wiped" 1 wiped;
  Engine.run engine;
  (* The first copy was already in flight when the crash hit — the
     network, not the sender, holds it — so it still delivers once. *)
  Alcotest.(check int) "in-flight copy still delivers once" 1 !from0;
  Alcotest.(check int) "other sender unaffected" 1 !from2;
  match Dpa_msg.Am.stats engine with
  | None -> Alcotest.fail "protocol state missing"
  | Some s ->
    Alcotest.(check int) "crash_wiped counted" 1 s.Dpa_msg.Am.crash_wiped;
    Alcotest.(check int) "wiped envelope is no longer in flight" 0
      s.Dpa_msg.Am.in_flight;
    Alcotest.(check int) "no retransmissions for the wiped envelope" 0
      s.Dpa_msg.Am.retransmits

(* A deterministic phase with plenty of remote reads, so a mid-phase crash
   is guaranteed to orphan some outstanding requests. *)
let crash_read_phase =
  (4, 8, 10, List.init 30 (fun i -> ((i * 7) mod 4, (i * 3) mod 8)))

let test_crash_restart_refetch () =
  let reference, _, elapsed, _ = run_dpa crash_read_phase in
  let sums, stats, _, am =
    run_dpa ~faults:(crash_spec ~elapsed ()) ~fault_seed:11 crash_read_phase
  in
  Alcotest.(check bool) "sums bit-identical across crashes" true
    (reference = sums);
  Alcotest.(check int) "every node crashed once" 4 stats.Dpa.Dpa_stats.crashes;
  (* The alignment buffer and pointer-map conversations died with the
     crash; the restart walk re-fetched what was still owed. *)
  Alcotest.(check bool) "orphaned requests were re-fetched" true
    (stats.Dpa.Dpa_stats.crash_refetches > 0);
  match am with
  | None -> Alcotest.fail "protocol state missing"
  | Some s ->
    Alcotest.(check int) "quiescent: no in-flight envelopes" 0
      s.Dpa_msg.Am.in_flight

let test_update_exactly_once_across_crash () =
  (* Remote accumulates with integer increments: the owner-side journal
     must apply each batch exactly once even when crashes wipe unsent
     batches, in-flight envelopes, or the application-level acks. *)
  let run ?faults ?(fault_seed = 0x5EED) () =
    let nnodes = 4 in
    let heaps = Dpa_heap.Heap.cluster ~nnodes in
    let counters =
      Array.init 6 (fun _ ->
          Dpa_heap.Heap.alloc heaps.(0) ~floats:(Array.make 2 0.) ~ptrs:[||])
    in
    let items node =
      if node = 0 then [||]
      else
        Array.init 12 (fun i ->
            fun ctx ->
              Dpa.Runtime.charge ctx 500;
              Dpa.Runtime.accumulate ctx
                counters.((node + i) mod 6)
                ~idx:(i mod 2) 1.)
    in
    let engine =
      Engine.create (Machine.make ~nodes:nnodes ?faults ~fault_seed ())
    in
    let _, stats =
      Dpa.Runtime.run_phase ~engine ~heaps
        ~config:(Dpa.Config.dpa ~strip_size:4 ())
        ~items
    in
    let vals =
      Array.map
        (fun p ->
          Array.copy (Dpa_heap.Heap.deref heaps p).Dpa_heap.Obj_repr.floats)
        counters
    in
    (vals, stats, Engine.elapsed engine, Dpa_msg.Am.stats engine)
  in
  let reference, _, elapsed, _ = run () in
  let vals, stats, _, am =
    run ~faults:(crash_spec ~elapsed ()) ~fault_seed:13 ()
  in
  Alcotest.(check bool) "counters bit-identical across crashes" true
    (reference = vals);
  Alcotest.(check int) "every node crashed once" 4 stats.Dpa.Dpa_stats.crashes;
  match am with
  | None -> Alcotest.fail "protocol state missing"
  | Some s ->
    Alcotest.(check int) "quiescent: no in-flight envelopes" 0
      s.Dpa_msg.Am.in_flight

let crash_chaos_gen =
  QCheck.Gen.(
    pair Test_properties.phase_gen (pair (int_range 1 2) (int_range 0 1000)))

let qcheck_crashes_preserve_sums =
  QCheck.Test.make
    ~name:"DPA phase under crash-restart computes fault-free sums" ~count:20
    (QCheck.make crash_chaos_gen)
    (fun (phase, (crashes, seed)) ->
      let reference, _, elapsed, _ = run_dpa phase in
      let sums, _, _, am =
        run_dpa ~faults:(crash_spec ~crashes ~elapsed ()) ~fault_seed:seed
          phase
      in
      reference = sums
      && match am with Some s -> s.Dpa_msg.Am.in_flight = 0 | None -> true)

(* --- sink knobs and the periodic sampler --------------------------------- *)

let test_sink_category_filter () =
  let s = Dpa_obs.Sink.create () in
  Dpa_obs.Sink.set_categories s (Some [ "phase"; "fault" ]);
  Dpa_obs.Sink.span s ~cat:"phase" ~name:"p" ~node:0 ~ts:0 ~dur:10;
  Dpa_obs.Sink.span s ~cat:"strip" ~name:"s" ~node:0 ~ts:0 ~dur:5;
  Dpa_obs.Sink.instant s ~cat:"fault" ~name:"drop" ~node:0 ~ts:1;
  Dpa_obs.Sink.instant s ~cat:"msg" ~name:"m" ~node:0 ~ts:2;
  Alcotest.(check int) "kept" 2 (List.length (Dpa_obs.Sink.events s));
  Alcotest.(check int) "filtered" 2 (Dpa_obs.Sink.filtered s);
  Alcotest.(check int) "spans" 1 (Dpa_obs.Sink.nspans s)

let test_sink_spans_only () =
  let s = Dpa_obs.Sink.create () in
  Dpa_obs.Sink.set_spans_only s true;
  Dpa_obs.Sink.span s ~cat:"phase" ~name:"p" ~node:0 ~ts:0 ~dur:10;
  Dpa_obs.Sink.instant s ~cat:"fault" ~name:"drop" ~node:0 ~ts:1;
  Dpa_obs.Sink.counter s ~name:"c" ~node:0 ~ts:2 5;
  Alcotest.(check int) "kept" 1 (List.length (Dpa_obs.Sink.events s));
  Alcotest.(check int) "filtered" 2 (Dpa_obs.Sink.filtered s)

let sampler_phase =
  (3, 5, 4, List.init 12 (fun i -> (i mod 3, i * 2 mod 5)))

let test_engine_sampler () =
  let bare_sums, _, bare_elapsed, _ = run_dpa sampler_phase in
  let sink = Dpa_obs.Sink.create () in
  Dpa_obs.Sink.set_sample_period sink 20_000;
  let saved = Dpa_obs.Sink.global () in
  Dpa_obs.Sink.set_global (Some sink);
  let sums, _, elapsed, _ =
    Fun.protect
      ~finally:(fun () -> Dpa_obs.Sink.set_global saved)
      (fun () -> run_dpa sampler_phase)
  in
  Alcotest.(check bool) "sums unchanged by sampling" true (bare_sums = sums);
  Alcotest.(check int) "timing bit-identical with sampler on" bare_elapsed
    elapsed;
  let track name =
    List.length
      (List.filter
         (fun (e : Dpa_obs.Sink.event) ->
           e.Dpa_obs.Sink.kind = Dpa_obs.Sink.Counter
           && e.Dpa_obs.Sink.name = name)
         (Dpa_obs.Sink.events sink))
  in
  Alcotest.(check bool) "dbuf track sampled" true (track "dbuf" > 0);
  Alcotest.(check bool) "outstanding track sampled" true
    (track "outstanding" > 0)

let suites =
  [
    ( "fault",
      [
        Alcotest.test_case "spec presets" `Quick test_spec_presets;
        Alcotest.test_case "spec key=value parsing" `Quick test_spec_key_values;
        Alcotest.test_case "spec rejects bad input" `Quick test_spec_errors;
        Alcotest.test_case "spec round-trips" `Quick test_spec_roundtrip;
        Alcotest.test_case "plan is deterministic" `Quick test_plan_determinism;
        Alcotest.test_case "plan validation" `Quick test_plan_validation;
        Alcotest.test_case "preset prefix with knob overrides" `Quick
          test_spec_preset_override;
        Alcotest.test_case "errors enumerate valid keys" `Quick
          test_spec_errors_enumerate_keys;
        QCheck_alcotest.to_alcotest qcheck_spec_pp_parse_roundtrip;
      ] );
    ( "reliable delivery",
      [
        Alcotest.test_case "exactly-once under drop+dup+delay" `Quick
          test_exactly_once;
        Alcotest.test_case "none plan: protocol overhead only" `Quick
          test_none_plan_protocol_overhead_only;
        Alcotest.test_case "no plan: no protocol state" `Quick
          test_no_plan_no_protocol;
        Alcotest.test_case "recovers from a NIC outage" `Quick
          test_outage_recovery;
        QCheck_alcotest.to_alcotest qcheck_faults_preserve_sums;
        QCheck_alcotest.to_alcotest qcheck_chaos_deterministic;
        QCheck_alcotest.to_alcotest qcheck_caching_survives_faults;
      ] );
    ( "crash-restart",
      [
        Alcotest.test_case "incarnation fencing rejects stale copies" `Quick
          test_incarnation_fencing;
        Alcotest.test_case "crash wipes the crashed sender's envelopes" `Quick
          test_am_on_crash_wipes_sender_state;
        Alcotest.test_case "restart re-fetches orphaned reads" `Quick
          test_crash_restart_refetch;
        Alcotest.test_case "updates apply exactly once across crashes" `Quick
          test_update_exactly_once_across_crash;
        QCheck_alcotest.to_alcotest qcheck_crashes_preserve_sums;
      ] );
    ( "chaos observability",
      [
        Alcotest.test_case "sink category filter" `Quick
          test_sink_category_filter;
        Alcotest.test_case "sink spans-only filter" `Quick test_sink_spans_only;
        Alcotest.test_case "periodic sampler is free" `Quick
          test_engine_sampler;
      ] );
  ]

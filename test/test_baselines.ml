open Dpa_sim

let machine nodes = Machine.t3d ~nodes

let run_caching ?(nnodes = 4) ?(nobjs = 32) ?(nitems = 20) ?(reads = 8)
    ?(capacity = 64) () =
  let w = Workload.make ~nnodes ~nobjs in
  let engine = Engine.create (machine nnodes) in
  let sums = Array.make nnodes 0. in
  let items =
    Workload.items
      (module Dpa_baselines.Caching)
      w ~nitems ~reads ~work_ns:200 sums
  in
  let breakdown, stats =
    Dpa_baselines.Caching.run_phase ~engine ~heaps:w.Workload.heaps ~capacity
      ~items ()
  in
  (w, sums, breakdown, stats)

let run_blocking ?(nnodes = 4) ?(nobjs = 32) ?(nitems = 20) ?(reads = 8) () =
  let w = Workload.make ~nnodes ~nobjs in
  let engine = Engine.create (machine nnodes) in
  let sums = Array.make nnodes 0. in
  let items =
    Workload.items
      (module Dpa_baselines.Blocking)
      w ~nitems ~reads ~work_ns:200 sums
  in
  let breakdown, stats =
    Dpa_baselines.Blocking.run_phase ~engine ~heaps:w.Workload.heaps ~items
  in
  (w, sums, breakdown, stats)

let check_sums w sums ~nitems ~reads =
  Array.iteri
    (fun node got ->
      let want = Workload.expected_sum w ~node ~nitems ~reads in
      Alcotest.(check (float 1e-6)) (Printf.sprintf "node %d" node) want got)
    sums

let test_caching_correct () =
  let w, sums, _, _ = run_caching () in
  check_sums w sums ~nitems:20 ~reads:8

let test_blocking_correct () =
  let w, sums, _, _ = run_blocking () in
  check_sums w sums ~nitems:20 ~reads:8

let test_caching_hits () =
  let _, _, _, stats = run_caching ~capacity:1024 () in
  Alcotest.(check bool) "some hits" true (stats.Dpa_baselines.Caching.hits > 0)

let test_blocking_never_hits () =
  let _, _, _, stats = run_blocking () in
  Alcotest.(check int) "no hits" 0 stats.Dpa_baselines.Caching.hits;
  Alcotest.(check int) "no cached objects" 0
    stats.Dpa_baselines.Caching.peak_cached

let test_caching_capacity_bound () =
  let cap = 8 in
  let _, _, _, stats = run_caching ~capacity:cap () in
  Alcotest.(check bool) "peak within capacity" true
    (stats.Dpa_baselines.Caching.peak_cached <= cap)

let test_read_accounting () =
  let nnodes = 4 and nitems = 20 and reads = 8 in
  let _, _, _, stats = run_caching ~nnodes ~nitems ~reads () in
  let s = stats in
  Alcotest.(check int) "reads partitioned" (nnodes * nitems * reads)
    (s.Dpa_baselines.Caching.hits + s.Dpa_baselines.Caching.misses
   + s.Dpa_baselines.Caching.local)

let test_runtimes_agree () =
  (* DPA, caching and blocking must compute identical results. *)
  let nnodes = 3 and nobjs = 16 and nitems = 15 and reads = 6 in
  let dpa_sums =
    let w = Workload.make ~nnodes ~nobjs in
    let engine = Engine.create (machine nnodes) in
    let sums = Array.make nnodes 0. in
    let items =
      Workload.items (module Dpa.Runtime) w ~nitems ~reads ~work_ns:100 sums
    in
    ignore
      (Dpa.Runtime.run_phase ~engine ~heaps:w.Workload.heaps
         ~config:(Dpa.Config.dpa ()) ~items);
    sums
  in
  let caching_sums =
    let w = Workload.make ~nnodes ~nobjs in
    let engine = Engine.create (machine nnodes) in
    let sums = Array.make nnodes 0. in
    let items =
      Workload.items
        (module Dpa_baselines.Caching)
        w ~nitems ~reads ~work_ns:100 sums
    in
    ignore
      (Dpa_baselines.Caching.run_phase ~engine ~heaps:w.Workload.heaps
         ~capacity:32 ~items ());
    sums
  in
  Array.iteri
    (fun i a ->
      Alcotest.(check (float 1e-9)) (Printf.sprintf "node %d" i) a
        caching_sums.(i))
    dpa_sums

let test_dpa_beats_blocking () =
  (* The headline property: with remote traffic, DPA's overlap+aggregation
     must beat blocking round trips. *)
  let nnodes = 4 and nitems = 40 and reads = 8 in
  let dpa_time =
    let w = Workload.make ~nnodes ~nobjs:32 in
    let engine = Engine.create (machine nnodes) in
    let sums = Array.make nnodes 0. in
    let items =
      Workload.items (module Dpa.Runtime) w ~nitems ~reads ~work_ns:200 sums
    in
    let b, _ =
      Dpa.Runtime.run_phase ~engine ~heaps:w.Workload.heaps
        ~config:(Dpa.Config.dpa ()) ~items
    in
    b.Breakdown.elapsed_ns
  in
  let blocking_time =
    let _, _, b, _ = run_blocking ~nnodes ~nitems ~reads () in
    b.Breakdown.elapsed_ns
  in
  Alcotest.(check bool)
    (Printf.sprintf "dpa %d < blocking %d" dpa_time blocking_time)
    true
    (dpa_time < blocking_time)

let test_prefetch_correct () =
  let nnodes = 3 in
  let w = Workload.make ~nnodes ~nobjs:16 in
  let engine = Engine.create (machine nnodes) in
  let sums = Array.make nnodes 0. in
  let items =
    Workload.items
      (module Dpa_baselines.Prefetch)
      w ~nitems:10 ~reads:5 ~work_ns:100 sums
  in
  ignore
    (Dpa_baselines.Prefetch.run_phase ~engine ~heaps:w.Workload.heaps ~items ());
  check_sums w sums ~nitems:10 ~reads:5

let suites =
  [
    ( "baselines",
      [
        Alcotest.test_case "caching correct" `Quick test_caching_correct;
        Alcotest.test_case "blocking correct" `Quick test_blocking_correct;
        Alcotest.test_case "caching hits" `Quick test_caching_hits;
        Alcotest.test_case "blocking never hits" `Quick test_blocking_never_hits;
        Alcotest.test_case "capacity bound" `Quick test_caching_capacity_bound;
        Alcotest.test_case "read accounting" `Quick test_read_accounting;
        Alcotest.test_case "runtimes agree" `Quick test_runtimes_agree;
        Alcotest.test_case "dpa beats blocking" `Quick test_dpa_beats_blocking;
        Alcotest.test_case "prefetch correct" `Quick test_prefetch_correct;
      ] );
  ]

open Dpa_sim

let machine nodes = Machine.t3d ~nodes

let run_dpa ?(nnodes = 4) ?(nobjs = 32) ?(nitems = 20) ?(reads = 8)
    ?(config = Dpa.Config.dpa ()) () =
  let w = Workload.make ~nnodes ~nobjs in
  let engine = Engine.create (machine nnodes) in
  let sums = Array.make nnodes 0. in
  let items =
    Workload.items (module Dpa.Runtime) w ~nitems ~reads ~work_ns:200 sums
  in
  let breakdown, stats =
    Dpa.Runtime.run_phase ~engine ~heaps:w.Workload.heaps ~config ~items
  in
  (w, sums, breakdown, stats)

let check_sums w sums ~nitems ~reads =
  Array.iteri
    (fun node got ->
      let want = Workload.expected_sum w ~node ~nitems ~reads in
      Alcotest.(check (float 1e-6)) (Printf.sprintf "node %d sum" node) want got)
    sums

let test_dpa_correct_sums () =
  let w, sums, _, _ = run_dpa () in
  check_sums w sums ~nitems:20 ~reads:8

let test_dpa_correct_sums_one_node () =
  let w, sums, _, stats = run_dpa ~nnodes:1 () in
  check_sums w sums ~nitems:20 ~reads:8;
  Alcotest.(check int) "all reads local" (20 * 8)
    stats.Dpa.Dpa_stats.inline_local;
  Alcotest.(check int) "no messages" 0 stats.Dpa.Dpa_stats.request_msgs

let test_dpa_read_accounting () =
  let nitems = 20 and reads = 8 and nnodes = 4 in
  let _, _, _, stats = run_dpa ~nnodes ~nitems ~reads () in
  Alcotest.(check int) "every read accounted" (nnodes * nitems * reads)
    (Dpa.Dpa_stats.total_reads stats)

let test_dpa_strip_count () =
  let _, _, _, stats =
    run_dpa ~nitems:20 ~config:(Dpa.Config.dpa ~strip_size:7 ()) ()
  in
  (* ceil(20/7) = 3 strips per node, 4 nodes *)
  Alcotest.(check int) "strips" 12 stats.Dpa.Dpa_stats.strips

let test_dpa_reuse_reduces_fetches () =
  let _, _, _, full = run_dpa ~config:(Dpa.Config.dpa ~strip_size:50 ()) () in
  let _, _, _, noreuse =
    run_dpa ~config:(Dpa.Config.pipeline_aggregate ~strip_size:50 ()) ()
  in
  Alcotest.(check bool) "reuse fetches fewer objects" true
    (full.Dpa.Dpa_stats.spawns < noreuse.Dpa.Dpa_stats.spawns);
  Alcotest.(check bool) "reuse has hits" true
    (full.Dpa.Dpa_stats.align_hits + full.Dpa.Dpa_stats.merge_hits > 0);
  Alcotest.(check int) "no reuse has no hits" 0
    (noreuse.Dpa.Dpa_stats.align_hits + noreuse.Dpa.Dpa_stats.merge_hits)

let test_dpa_aggregation_reduces_messages () =
  let _, _, _, agg =
    run_dpa ~config:(Dpa.Config.pipeline_aggregate ~agg_max:64 ()) ()
  in
  let _, _, _, noagg = run_dpa ~config:(Dpa.Config.pipeline_only ()) () in
  Alcotest.(check bool) "fewer messages with aggregation" true
    (agg.Dpa.Dpa_stats.request_msgs < noagg.Dpa.Dpa_stats.request_msgs);
  Alcotest.(check int) "pipeline-only batches are singletons" 1
    noagg.Dpa.Dpa_stats.max_batch

let test_dpa_outstanding_bounded_by_strip () =
  let strip = 5 and reads = 8 in
  let _, _, _, stats =
    run_dpa ~config:(Dpa.Config.dpa ~strip_size:strip ()) ~reads ()
  in
  Alcotest.(check bool) "outstanding <= strip * reads" true
    (stats.Dpa.Dpa_stats.max_outstanding <= strip * reads)

let test_dpa_deterministic () =
  let _, _, b1, _ = run_dpa () in
  let _, _, b2, _ = run_dpa () in
  Alcotest.(check int) "same elapsed" b1.Breakdown.elapsed_ns
    b2.Breakdown.elapsed_ns;
  Alcotest.(check int) "same msgs" b1.Breakdown.msgs b2.Breakdown.msgs

let test_dpa_strip_size_one_works () =
  let w, sums, _, _ = run_dpa ~config:(Dpa.Config.dpa ~strip_size:1 ()) () in
  check_sums w sums ~nitems:20 ~reads:8

let test_dpa_empty_items () =
  let w = Workload.make ~nnodes:3 ~nobjs:4 in
  let engine = Engine.create (machine 3) in
  let breakdown, stats =
    Dpa.Runtime.run_phase ~engine ~heaps:w.Workload.heaps
      ~config:(Dpa.Config.dpa ())
      ~items:(fun _ -> [||])
  in
  Alcotest.(check int) "no elapsed" 0 breakdown.Breakdown.elapsed_ns;
  Alcotest.(check int) "no reads" 0 (Dpa.Dpa_stats.total_reads stats)

let test_dpa_rejects_nil () =
  let w = Workload.make ~nnodes:2 ~nobjs:2 in
  let engine = Engine.create (machine 2) in
  let raised = ref false in
  (try
     ignore
       (Dpa.Runtime.run_phase ~engine ~heaps:w.Workload.heaps
          ~config:(Dpa.Config.dpa ())
          ~items:(fun node ->
            if node = 0 then
              [| (fun ctx -> Dpa.Runtime.read ctx Dpa_heap.Gptr.nil (fun _ _ -> ())) |]
            else [||]))
   with Invalid_argument _ -> raised := true);
  Alcotest.(check bool) "nil read rejected" true !raised

let test_pointer_map_reuse_merges () =
  let m = Dpa.Pointer_map.create () in
  let p = Dpa_heap.Gptr.make ~node:0 ~slot:0 in
  (match Dpa.Pointer_map.register m ~reuse:true p "a" with
  | `New_request _ -> ()
  | `Merged -> Alcotest.fail "first should request");
  (match Dpa.Pointer_map.register m ~reuse:true p "b" with
  | `Merged -> ()
  | `New_request _ -> Alcotest.fail "second should merge");
  Alcotest.(check int) "one token" 1 (Dpa.Pointer_map.outstanding m);
  Alcotest.(check int) "two waiters" 2 (Dpa.Pointer_map.waiters m)

let test_pointer_map_take_order () =
  let m = Dpa.Pointer_map.create () in
  let p = Dpa_heap.Gptr.make ~node:0 ~slot:1 in
  let token =
    match Dpa.Pointer_map.register m ~reuse:true p "a" with
    | `New_request t -> t
    | `Merged -> Alcotest.fail "unexpected merge"
  in
  ignore (Dpa.Pointer_map.register m ~reuse:true p "b");
  ignore (Dpa.Pointer_map.register m ~reuse:true p "c");
  let ptr, ks = Dpa.Pointer_map.take m token in
  Alcotest.(check bool) "ptr matches" true (Dpa_heap.Gptr.equal p ptr);
  Alcotest.(check (list string)) "registration order" [ "a"; "b"; "c" ] ks;
  Alcotest.(check bool) "empty after take" true (Dpa.Pointer_map.is_empty m);
  (* A new registration after take must issue a fresh request. *)
  match Dpa.Pointer_map.register m ~reuse:true p "d" with
  | `New_request _ -> ()
  | `Merged -> Alcotest.fail "should re-request after take"

let test_pointer_map_no_reuse_never_merges () =
  let m = Dpa.Pointer_map.create () in
  let p = Dpa_heap.Gptr.make ~node:0 ~slot:2 in
  for _ = 1 to 5 do
    match Dpa.Pointer_map.register m ~reuse:false p () with
    | `New_request _ -> ()
    | `Merged -> Alcotest.fail "must not merge without reuse"
  done;
  Alcotest.(check int) "five tokens" 5 (Dpa.Pointer_map.outstanding m)

let qcheck_pointer_map_one_request_per_pointer =
  QCheck.Test.make ~name:"M has at most one outstanding token per pointer"
    ~count:200
    QCheck.(small_list (pair (int_range 0 3) (int_range 0 5)))
    (fun regs ->
      let m = Dpa.Pointer_map.create () in
      let requests = Hashtbl.create 16 in
      List.iter
        (fun (node, slot) ->
          let p = Dpa_heap.Gptr.make ~node ~slot in
          match Dpa.Pointer_map.register m ~reuse:true p () with
          | `New_request _ ->
            if Hashtbl.mem requests (node, slot) then
              failwith "duplicate request"
            else Hashtbl.replace requests (node, slot) ()
          | `Merged ->
            if not (Hashtbl.mem requests (node, slot)) then
              failwith "merged without request"
        )
        regs;
      true)

let test_align_buffer_strip_clear () =
  let d = Dpa.Align_buffer.create () in
  let p = Dpa_heap.Gptr.make ~node:0 ~slot:0 in
  Dpa.Align_buffer.add d p;
  Alcotest.(check bool) "present" true (Dpa.Align_buffer.mem d p);
  Dpa.Align_buffer.clear d;
  Alcotest.(check bool) "cleared" false (Dpa.Align_buffer.mem d p);
  Alcotest.(check int) "peak survives clear" 1 (Dpa.Align_buffer.peak d)

let suites =
  [
    ( "core.pointer_map",
      [
        Alcotest.test_case "reuse merges" `Quick test_pointer_map_reuse_merges;
        Alcotest.test_case "take order" `Quick test_pointer_map_take_order;
        Alcotest.test_case "no-reuse never merges" `Quick
          test_pointer_map_no_reuse_never_merges;
        QCheck_alcotest.to_alcotest qcheck_pointer_map_one_request_per_pointer;
      ] );
    ( "core.align_buffer",
      [ Alcotest.test_case "strip clear" `Quick test_align_buffer_strip_clear ] );
    ( "core.runtime",
      [
        Alcotest.test_case "correct sums" `Quick test_dpa_correct_sums;
        Alcotest.test_case "one node all local" `Quick
          test_dpa_correct_sums_one_node;
        Alcotest.test_case "read accounting" `Quick test_dpa_read_accounting;
        Alcotest.test_case "strip count" `Quick test_dpa_strip_count;
        Alcotest.test_case "reuse reduces fetches" `Quick
          test_dpa_reuse_reduces_fetches;
        Alcotest.test_case "aggregation reduces messages" `Quick
          test_dpa_aggregation_reduces_messages;
        Alcotest.test_case "outstanding bounded by strip" `Quick
          test_dpa_outstanding_bounded_by_strip;
        Alcotest.test_case "deterministic" `Quick test_dpa_deterministic;
        Alcotest.test_case "strip size one" `Quick test_dpa_strip_size_one_works;
        Alcotest.test_case "empty items" `Quick test_dpa_empty_items;
        Alcotest.test_case "rejects nil" `Quick test_dpa_rejects_nil;
      ] );
  ]

open Dpa_heap

let test_gptr_nil () =
  Alcotest.(check bool) "nil is nil" true (Gptr.is_nil Gptr.nil);
  Alcotest.(check bool) "made is not nil" false
    (Gptr.is_nil (Gptr.make ~node:0 ~slot:0))

let test_gptr_equal_hash () =
  let a = Gptr.make ~node:1 ~slot:2 and b = Gptr.make ~node:1 ~slot:2 in
  Alcotest.(check bool) "equal" true (Gptr.equal a b);
  Alcotest.(check int) "hash equal" (Gptr.hash a) (Gptr.hash b)

let test_obj_bytes () =
  let o = Obj_repr.make ~floats:[| 1.; 2.; 3. |] ~ptrs:[| Gptr.nil |] in
  Alcotest.(check int) "bytes" (8 + 24 + 8) (Obj_repr.bytes o)

let test_obj_copy_independent () =
  let o = Obj_repr.make ~floats:[| 1. |] ~ptrs:[||] in
  let c = Obj_repr.copy o in
  c.Obj_repr.floats.(0) <- 9.;
  Alcotest.(check (float 0.)) "original unchanged" 1. o.Obj_repr.floats.(0)

let test_heap_alloc_get () =
  let cluster = Heap.cluster ~nnodes:3 in
  let p = Heap.alloc cluster.(1) ~floats:[| 4.2 |] ~ptrs:[||] in
  Alcotest.(check int) "owner" 1 p.Gptr.node;
  let o = Heap.get cluster.(1) p in
  Alcotest.(check (float 0.)) "payload" 4.2 o.Obj_repr.floats.(0);
  let o' = Heap.deref cluster p in
  Alcotest.(check (float 0.)) "deref" 4.2 o'.Obj_repr.floats.(0)

let test_heap_wrong_node () =
  let cluster = Heap.cluster ~nnodes:2 in
  let p = Heap.alloc cluster.(0) ~floats:[||] ~ptrs:[||] in
  Alcotest.check_raises "wrong owner"
    (Invalid_argument "Heap.get: pointer owned by another node") (fun () ->
      ignore (Heap.get cluster.(1) p))

let test_heap_nil_deref () =
  let cluster = Heap.cluster ~nnodes:1 in
  Alcotest.check_raises "nil" (Invalid_argument "Heap.deref: nil pointer")
    (fun () -> ignore (Heap.deref cluster Gptr.nil))

let qcheck_heap_roundtrip =
  QCheck.Test.make ~name:"heap alloc/deref round trip" ~count:100
    QCheck.(small_list (small_list float))
    (fun payloads ->
      let cluster = Heap.cluster ~nnodes:4 in
      let ptrs =
        List.mapi
          (fun i fs ->
            let node = i mod 4 in
            (Heap.alloc cluster.(node) ~floats:(Array.of_list fs) ~ptrs:[||], fs))
          payloads
      in
      List.for_all
        (fun (p, fs) ->
          Array.to_list (Heap.deref cluster p).Obj_repr.floats = fs)
        ptrs)

let test_block_distribution_partition () =
  let nitems = 17 and nnodes = 5 in
  (* Ranges partition the items and owners are consistent. *)
  let seen = Array.make nitems 0 in
  for node = 0 to nnodes - 1 do
    let first, count = Distribution.block_range ~nitems ~nnodes node in
    for i = first to first + count - 1 do
      seen.(i) <- seen.(i) + 1;
      Alcotest.(check int) "owner matches range" node
        (Distribution.block_owner ~nitems ~nnodes i)
    done
  done;
  Array.iter (fun c -> Alcotest.(check int) "covered once" 1 c) seen

let qcheck_block_distribution =
  QCheck.Test.make ~name:"block distribution partitions items" ~count:200
    QCheck.(pair (int_range 0 200) (int_range 1 17))
    (fun (nitems, nnodes) ->
      let total = ref 0 in
      for node = 0 to nnodes - 1 do
        let _, count = Distribution.block_range ~nitems ~nnodes node in
        total := !total + count
      done;
      !total = nitems)

let test_weighted_ranges_balance () =
  let weights = Array.init 100 (fun i -> if i < 10 then 91 else 1) in
  (* Total = 910 + 90 = 1000; 4 nodes want ~250 each. *)
  let ranges = Dpa_heap.Distribution.weighted_ranges ~weights ~nnodes:4 in
  let covered = Array.make 100 0 in
  Array.iter
    (fun (first, count) ->
      for i = first to first + count - 1 do
        covered.(i) <- covered.(i) + 1
      done)
    ranges;
  Array.iter (fun c -> Alcotest.(check int) "partition" 1 c) covered;
  let node_weight (first, count) =
    let s = ref 0 in
    for i = first to first + count - 1 do
      s := !s + weights.(i)
    done;
    !s
  in
  let w0 = node_weight ranges.(0) in
  (* The heavy prefix must not all land on node 0. *)
  Alcotest.(check bool) "node 0 near fair share" true (w0 <= 400)

let node_weight weights (first, count) =
  let s = ref 0 in
  for i = first to first + count - 1 do
    s := !s + weights.(i)
  done;
  !s

(* One dominant weight must not starve the nodes after it: the old prefix
   rule gave [5;1;1;1;1;1] on 3 nodes the loads [5;1;4] (every prefix
   target already exceeded, so the middle node took one forced item and
   the tail absorbed the leftovers). The suffix-target rule re-splits the
   remainder evenly. *)
let test_weighted_ranges_dominant () =
  let weights = [| 5; 1; 1; 1; 1; 1 |] in
  let ranges = Dpa_heap.Distribution.weighted_ranges ~weights ~nnodes:3 in
  Alcotest.(check (list int))
    "loads"
    [ 5; 3; 2 ]
    (Array.to_list (Array.map (node_weight weights) ranges))

let test_weighted_ranges_all_zero () =
  let weights = Array.make 5 0 in
  let ranges = Dpa_heap.Distribution.weighted_ranges ~weights ~nnodes:2 in
  Alcotest.(check (list int))
    "counts" [ 3; 2 ]
    (Array.to_list (Array.map snd ranges))

let test_weighted_ranges_fewer_items () =
  let ranges =
    Dpa_heap.Distribution.weighted_ranges ~weights:[| 7; 7 |] ~nnodes:4
  in
  Alcotest.(check (list (pair int int)))
    "two singletons then empties"
    [ (0, 1); (1, 1); (2, 0); (2, 0) ]
    (Array.to_list ranges)

let qcheck_weighted_ranges_no_empty =
  QCheck.Test.make
    ~name:"weighted ranges: no empty range while items remain, imbalance bounded"
    ~count:500
    QCheck.(
      pair (int_range 1 9) (list_of_size (Gen.int_range 0 40) (int_range 0 20)))
    (fun (nnodes, ws) ->
      let weights = Array.of_list ws in
      let n = Array.length weights in
      let ranges = Dpa_heap.Distribution.weighted_ranges ~weights ~nnodes in
      let nonempty =
        Array.fold_left (fun acc (_, c) -> acc + if c > 0 then 1 else 0) 0 ranges
      in
      let total = Array.fold_left ( + ) 0 weights in
      let max_w = Array.fold_left max 0 weights in
      let max_load =
        Array.fold_left (fun acc r -> max acc (node_weight weights r)) 0 ranges
      in
      nonempty = min n nnodes
      && max_load <= (total / nnodes) + max_w + 1)

let qcheck_weighted_ranges_partition =
  QCheck.Test.make ~name:"weighted ranges always partition the items"
    ~count:300
    QCheck.(pair (int_range 1 9) (list_of_size (Gen.int_range 0 40) (int_range 0 20)))
    (fun (nnodes, ws) ->
      let weights = Array.of_list ws in
      let ranges = Dpa_heap.Distribution.weighted_ranges ~weights ~nnodes in
      let owner = Dpa_heap.Distribution.owner_of_ranges ranges in
      Array.length owner = Array.length weights
      && Array.length ranges = nnodes
      && fst (Array.fold_left
                (fun (ok, expected) (first, count) ->
                  (ok && first = expected && count >= 0, expected + count))
                (true, 0) ranges)
      && Array.fold_left (fun acc (_, c) -> acc + c) 0 ranges
         = Array.length weights)

let suites =
  [
    ( "heap.gptr",
      [
        Alcotest.test_case "nil" `Quick test_gptr_nil;
        Alcotest.test_case "equal/hash" `Quick test_gptr_equal_hash;
      ] );
    ( "heap.obj",
      [
        Alcotest.test_case "bytes" `Quick test_obj_bytes;
        Alcotest.test_case "copy independent" `Quick test_obj_copy_independent;
      ] );
    ( "heap.heap",
      [
        Alcotest.test_case "alloc/get" `Quick test_heap_alloc_get;
        Alcotest.test_case "wrong node" `Quick test_heap_wrong_node;
        Alcotest.test_case "nil deref" `Quick test_heap_nil_deref;
        QCheck_alcotest.to_alcotest qcheck_heap_roundtrip;
      ] );
    ( "heap.distribution",
      [
        Alcotest.test_case "partition" `Quick test_block_distribution_partition;
        Alcotest.test_case "weighted balance" `Quick test_weighted_ranges_balance;
        Alcotest.test_case "weighted dominant" `Quick
          test_weighted_ranges_dominant;
        Alcotest.test_case "weighted all-zero" `Quick
          test_weighted_ranges_all_zero;
        Alcotest.test_case "weighted fewer items" `Quick
          test_weighted_ranges_fewer_items;
        QCheck_alcotest.to_alcotest qcheck_block_distribution;
        QCheck_alcotest.to_alcotest qcheck_weighted_ranges_partition;
        QCheck_alcotest.to_alcotest qcheck_weighted_ranges_no_empty;
      ] );
  ]

open Dpa_heap

let test_gptr_nil () =
  Alcotest.(check bool) "nil is nil" true (Gptr.is_nil Gptr.nil);
  Alcotest.(check bool) "made is not nil" false
    (Gptr.is_nil (Gptr.make ~node:0 ~slot:0))

let test_gptr_equal_hash () =
  let a = Gptr.make ~node:1 ~slot:2 and b = Gptr.make ~node:1 ~slot:2 in
  Alcotest.(check bool) "equal" true (Gptr.equal a b);
  Alcotest.(check int) "hash equal" (Gptr.hash a) (Gptr.hash b)

let test_obj_bytes () =
  let o = Obj_repr.make ~floats:[| 1.; 2.; 3. |] ~ptrs:[| Gptr.nil |] in
  Alcotest.(check int) "bytes" (8 + 24 + 8) (Obj_repr.bytes o)

let test_obj_copy_independent () =
  let o = Obj_repr.make ~floats:[| 1. |] ~ptrs:[||] in
  let c = Obj_repr.copy o in
  c.Obj_repr.floats.(0) <- 9.;
  Alcotest.(check (float 0.)) "original unchanged" 1. o.Obj_repr.floats.(0)

let test_heap_alloc_get () =
  let cluster = Heap.cluster ~nnodes:3 in
  let p = Heap.alloc cluster.(1) ~floats:[| 4.2 |] ~ptrs:[||] in
  Alcotest.(check int) "owner" 1 (Gptr.node p);
  let o = Heap.get cluster.(1) p in
  Alcotest.(check (float 0.)) "payload" 4.2 o.Obj_repr.floats.(0);
  let o' = Heap.deref cluster p in
  Alcotest.(check (float 0.)) "deref" 4.2 o'.Obj_repr.floats.(0)

let test_heap_wrong_node () =
  let cluster = Heap.cluster ~nnodes:2 in
  let p = Heap.alloc cluster.(0) ~floats:[||] ~ptrs:[||] in
  Alcotest.check_raises "wrong owner"
    (Invalid_argument "Heap.get: pointer owned by another node") (fun () ->
      ignore (Heap.get cluster.(1) p))

let test_heap_nil_deref () =
  let cluster = Heap.cluster ~nnodes:1 in
  Alcotest.check_raises "nil" (Invalid_argument "Heap.deref: nil pointer")
    (fun () -> ignore (Heap.deref cluster Gptr.nil))

let qcheck_heap_roundtrip =
  QCheck.Test.make ~name:"heap alloc/deref round trip" ~count:100
    QCheck.(small_list (small_list float))
    (fun payloads ->
      let cluster = Heap.cluster ~nnodes:4 in
      let ptrs =
        List.mapi
          (fun i fs ->
            let node = i mod 4 in
            (Heap.alloc cluster.(node) ~floats:(Array.of_list fs) ~ptrs:[||], fs))
          payloads
      in
      List.for_all
        (fun (p, fs) ->
          Array.to_list (Heap.deref cluster p).Obj_repr.floats = fs)
        ptrs)

(* ---- flat heap vs. boxed reference model ------------------------------ *)

(* The flat struct-of-arrays store must be observationally equal to the
   boxed heap it replaced. The reference model here IS the old
   representation — one [Obj_repr.t] record per object — and a random
   program of allocations and field mutations is interpreted against
   both; every object must then read back field-for-field identical
   through [deref], [get] and the in-place view accessors, and the
   cluster accounting ([total_objects]/[total_bytes]) must agree with
   the sum over the model's records. *)

type heap_op =
  | Op_alloc of int * float list * int  (* node, float fields, nptrs *)
  | Op_bump of int * int * float  (* object, field, delta *)
  | Op_set_float of int * int * float
  | Op_set_ptr of int * int * int  (* object, ptr slot, target object *)

let pp_heap_op = function
  | Op_alloc (n, fs, np) ->
    Printf.sprintf "alloc node:%d floats:%d ptrs:%d" n (List.length fs) np
  | Op_bump (i, f, v) -> Printf.sprintf "bump #%d.%d += %g" i f v
  | Op_set_float (i, f, v) -> Printf.sprintf "set #%d.%d <- %g" i f v
  | Op_set_ptr (i, p, t) -> Printf.sprintf "setp #%d.%d <- #%d" i p t

let gen_heap_op =
  QCheck.Gen.(
    frequency
      [
        ( 3,
          map3
            (fun node fs nptrs -> Op_alloc (node, fs, nptrs))
            (int_range 0 2)
            (list_size (int_range 0 5) (float_bound_exclusive 100.))
            (int_range 0 3) );
        ( 2,
          map3 (fun i f v -> Op_bump (i, f, v)) nat nat
            (float_bound_exclusive 10.) );
        ( 2,
          map3 (fun i f v -> Op_set_float (i, f, v)) nat nat
            (float_bound_exclusive 10.) );
        (2, map3 (fun i p t -> Op_set_ptr (i, p, t)) nat nat nat);
      ])

let arb_heap_program =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_heap_op ops))
    QCheck.Gen.(list_size (int_range 0 40) gen_heap_op)

let run_heap_program ops =
  let nnodes = 3 in
  let cluster = Heap.cluster ~nnodes in
  (* [objs] aligns the flat heap's handles with the boxed model's records:
     entry i is (handle on the flat heap, reference Obj_repr). *)
  let objs = ref [||] in
  let count () = Array.length !objs in
  let interpret = function
    | Op_alloc (node, fs, nptrs) ->
      let floats = Array.of_list fs in
      let ptrs =
        Array.init nptrs (fun j ->
            if count () = 0 then Gptr.nil
            else fst !objs.(((j * 31) + nptrs) mod count ()))
      in
      let p = Heap.alloc cluster.(node) ~floats ~ptrs in
      let model = Obj_repr.make ~floats:(Array.copy floats) ~ptrs:(Array.copy ptrs) in
      objs := Array.append !objs [| (p, model) |]
    | Op_bump (i, f, v) ->
      if count () > 0 then begin
        let p, model = !objs.(i mod count ()) in
        let nf = Array.length model.Obj_repr.floats in
        if nf > 0 then begin
          let f = f mod nf in
          Heap.bump_float cluster.(Gptr.node p) p ~idx:f v;
          model.Obj_repr.floats.(f) <- model.Obj_repr.floats.(f) +. v
        end
      end
    | Op_set_float (i, f, v) ->
      if count () > 0 then begin
        let p, model = !objs.(i mod count ()) in
        let nf = Array.length model.Obj_repr.floats in
        if nf > 0 then begin
          let f = f mod nf in
          Heap.set_float cluster.(Gptr.node p) p f v;
          model.Obj_repr.floats.(f) <- v
        end
      end
    | Op_set_ptr (i, s, t) ->
      if count () > 0 then begin
        let p, model = !objs.(i mod count ()) in
        let np = Array.length model.Obj_repr.ptrs in
        if np > 0 then begin
          let s = s mod np in
          let target = fst !objs.(t mod count ()) in
          Heap.set_ptr cluster.(Gptr.node p) p s target;
          model.Obj_repr.ptrs.(s) <- target
        end
      end
  in
  List.iter interpret ops;
  (cluster, !objs)

let obj_equal cluster p (model : Obj_repr.t) =
  let o = Heap.deref cluster p in
  let g = Heap.get cluster.(Gptr.node p) p in
  o.Obj_repr.floats = model.Obj_repr.floats
  && g.Obj_repr.floats = model.Obj_repr.floats
  && Array.length o.Obj_repr.ptrs = Array.length model.Obj_repr.ptrs
  && Array.for_all2 Gptr.equal o.Obj_repr.ptrs model.Obj_repr.ptrs
  && Heap.view_nfloats cluster p = Array.length model.Obj_repr.floats
  && Heap.view_nptrs cluster p = Array.length model.Obj_repr.ptrs
  && Array.for_all2
       (fun i f -> Heap.view_float cluster p i = f)
       (Array.init (Array.length model.Obj_repr.floats) Fun.id)
       model.Obj_repr.floats
  && Array.for_all2
       (fun i q -> Gptr.equal (Heap.view_ptr cluster p i) q)
       (Array.init (Array.length model.Obj_repr.ptrs) Fun.id)
       model.Obj_repr.ptrs
  && Heap.obj_bytes cluster.(Gptr.node p) p = Obj_repr.bytes model
  && Heap.view_bytes cluster p = Obj_repr.bytes model

let qcheck_heap_vs_boxed_model =
  QCheck.Test.make ~name:"flat heap = boxed reference model" ~count:300
    arb_heap_program (fun ops ->
      let cluster, objs = run_heap_program ops in
      Array.for_all (fun (p, model) -> obj_equal cluster p model) objs
      && Heap.total_objects cluster = Array.length objs
      && Heap.total_bytes cluster
         = Array.fold_left
             (fun acc (_, m) -> acc + Obj_repr.bytes m)
             0 objs)

(* ---- boundaries -------------------------------------------------------- *)

(* Enough objects of mixed shapes to force every pool (object table,
   float pool, pointer pool) through several doubling cycles; each
   object must survive the copies its pool makes while growing. *)
let test_pool_growth () =
  let cluster = Heap.cluster ~nnodes:1 in
  let t = cluster.(0) in
  let n = 10_000 in
  let ptrs =
    Array.init n (fun i ->
        Heap.alloc t
          ~floats:(Array.init (i mod 4) (fun j -> float_of_int ((i * 10) + j)))
          ~ptrs:(if i mod 3 = 0 then [| Gptr.nil |] else [||]))
  in
  Alcotest.(check int) "size" n (Heap.size t);
  Array.iteri
    (fun i p ->
      if Heap.nfloats t p <> i mod 4 then
        Alcotest.failf "object %d: nfloats %d" i (Heap.nfloats t p);
      for j = 0 to (i mod 4) - 1 do
        if Heap.get_float t p j <> float_of_int ((i * 10) + j) then
          Alcotest.failf "object %d: field %d corrupted by pool growth" i j
      done)
    ptrs

let test_zero_field_objects () =
  let cluster = Heap.cluster ~nnodes:1 in
  let t = cluster.(0) in
  let p = Heap.alloc t ~floats:[||] ~ptrs:[||] in
  let q = Heap.alloc t ~floats:[| 7. |] ~ptrs:[||] in
  Alcotest.(check int) "nfloats" 0 (Heap.nfloats t p);
  Alcotest.(check int) "nptrs" 0 (Heap.nptrs t p);
  let o = Heap.deref cluster p in
  Alcotest.(check int) "deref floats" 0 (Array.length o.Obj_repr.floats);
  Alcotest.(check int) "deref ptrs" 0 (Array.length o.Obj_repr.ptrs);
  (* A zero-field object must not alias its successor's fields. *)
  Alcotest.(check (float 0.)) "neighbour intact" 7. (Heap.get_float t q 0);
  Alcotest.(check int)
    "bytes = header only"
    (Obj_repr.bytes (Obj_repr.make ~floats:[||] ~ptrs:[||]))
    (Heap.obj_bytes t p)

(* [Heap.alloc] copies the caller's arrays into the pools (the .mli says
   so; the boxed heap used to adopt them instead). Mutating the arrays
   after the call must leave the heap untouched, and vice versa. *)
let test_alloc_copies_arrays () =
  let cluster = Heap.cluster ~nnodes:1 in
  let t = cluster.(0) in
  let floats = [| 1.; 2. |] in
  let inner = Heap.alloc t ~floats:[||] ~ptrs:[||] in
  let ptrs = [| inner |] in
  let p = Heap.alloc t ~floats ~ptrs in
  floats.(0) <- 99.;
  ptrs.(0) <- Gptr.nil;
  Alcotest.(check (float 0.))
    "heap float unaffected by caller mutation" 1. (Heap.get_float t p 0);
  Alcotest.(check bool)
    "heap ptr unaffected by caller mutation" true
    (Gptr.equal inner (Heap.get_ptr t p 0));
  Heap.set_float t p 1 42.;
  Alcotest.(check (float 0.)) "caller array unaffected by heap" 2. floats.(1)

let test_block_distribution_partition () =
  let nitems = 17 and nnodes = 5 in
  (* Ranges partition the items and owners are consistent. *)
  let seen = Array.make nitems 0 in
  for node = 0 to nnodes - 1 do
    let first, count = Distribution.block_range ~nitems ~nnodes node in
    for i = first to first + count - 1 do
      seen.(i) <- seen.(i) + 1;
      Alcotest.(check int) "owner matches range" node
        (Distribution.block_owner ~nitems ~nnodes i)
    done
  done;
  Array.iter (fun c -> Alcotest.(check int) "covered once" 1 c) seen

let qcheck_block_distribution =
  QCheck.Test.make ~name:"block distribution partitions items" ~count:200
    QCheck.(pair (int_range 0 200) (int_range 1 17))
    (fun (nitems, nnodes) ->
      let total = ref 0 in
      for node = 0 to nnodes - 1 do
        let _, count = Distribution.block_range ~nitems ~nnodes node in
        total := !total + count
      done;
      !total = nitems)

let test_weighted_ranges_balance () =
  let weights = Array.init 100 (fun i -> if i < 10 then 91 else 1) in
  (* Total = 910 + 90 = 1000; 4 nodes want ~250 each. *)
  let ranges = Dpa_heap.Distribution.weighted_ranges ~weights ~nnodes:4 in
  let covered = Array.make 100 0 in
  Array.iter
    (fun (first, count) ->
      for i = first to first + count - 1 do
        covered.(i) <- covered.(i) + 1
      done)
    ranges;
  Array.iter (fun c -> Alcotest.(check int) "partition" 1 c) covered;
  let node_weight (first, count) =
    let s = ref 0 in
    for i = first to first + count - 1 do
      s := !s + weights.(i)
    done;
    !s
  in
  let w0 = node_weight ranges.(0) in
  (* The heavy prefix must not all land on node 0. *)
  Alcotest.(check bool) "node 0 near fair share" true (w0 <= 400)

let node_weight weights (first, count) =
  let s = ref 0 in
  for i = first to first + count - 1 do
    s := !s + weights.(i)
  done;
  !s

(* One dominant weight must not starve the nodes after it: the old prefix
   rule gave [5;1;1;1;1;1] on 3 nodes the loads [5;1;4] (every prefix
   target already exceeded, so the middle node took one forced item and
   the tail absorbed the leftovers). The suffix-target rule re-splits the
   remainder evenly. *)
let test_weighted_ranges_dominant () =
  let weights = [| 5; 1; 1; 1; 1; 1 |] in
  let ranges = Dpa_heap.Distribution.weighted_ranges ~weights ~nnodes:3 in
  Alcotest.(check (list int))
    "loads"
    [ 5; 3; 2 ]
    (Array.to_list (Array.map (node_weight weights) ranges))

let test_weighted_ranges_all_zero () =
  let weights = Array.make 5 0 in
  let ranges = Dpa_heap.Distribution.weighted_ranges ~weights ~nnodes:2 in
  Alcotest.(check (list int))
    "counts" [ 3; 2 ]
    (Array.to_list (Array.map snd ranges))

let test_weighted_ranges_fewer_items () =
  let ranges =
    Dpa_heap.Distribution.weighted_ranges ~weights:[| 7; 7 |] ~nnodes:4
  in
  Alcotest.(check (list (pair int int)))
    "two singletons then empties"
    [ (0, 1); (1, 1); (2, 0); (2, 0) ]
    (Array.to_list ranges)

let qcheck_weighted_ranges_no_empty =
  QCheck.Test.make
    ~name:"weighted ranges: no empty range while items remain, imbalance bounded"
    ~count:500
    QCheck.(
      pair (int_range 1 9) (list_of_size (Gen.int_range 0 40) (int_range 0 20)))
    (fun (nnodes, ws) ->
      let weights = Array.of_list ws in
      let n = Array.length weights in
      let ranges = Dpa_heap.Distribution.weighted_ranges ~weights ~nnodes in
      let nonempty =
        Array.fold_left (fun acc (_, c) -> acc + if c > 0 then 1 else 0) 0 ranges
      in
      let total = Array.fold_left ( + ) 0 weights in
      let max_w = Array.fold_left max 0 weights in
      let max_load =
        Array.fold_left (fun acc r -> max acc (node_weight weights r)) 0 ranges
      in
      nonempty = min n nnodes
      && max_load <= (total / nnodes) + max_w + 1)

let qcheck_weighted_ranges_partition =
  QCheck.Test.make ~name:"weighted ranges always partition the items"
    ~count:300
    QCheck.(pair (int_range 1 9) (list_of_size (Gen.int_range 0 40) (int_range 0 20)))
    (fun (nnodes, ws) ->
      let weights = Array.of_list ws in
      let ranges = Dpa_heap.Distribution.weighted_ranges ~weights ~nnodes in
      let owner = Dpa_heap.Distribution.owner_of_ranges ranges in
      Array.length owner = Array.length weights
      && Array.length ranges = nnodes
      && fst (Array.fold_left
                (fun (ok, expected) (first, count) ->
                  (ok && first = expected && count >= 0, expected + count))
                (true, 0) ranges)
      && Array.fold_left (fun acc (_, c) -> acc + c) 0 ranges
         = Array.length weights)

let suites =
  [
    ( "heap.gptr",
      [
        Alcotest.test_case "nil" `Quick test_gptr_nil;
        Alcotest.test_case "equal/hash" `Quick test_gptr_equal_hash;
      ] );
    ( "heap.obj",
      [
        Alcotest.test_case "bytes" `Quick test_obj_bytes;
        Alcotest.test_case "copy independent" `Quick test_obj_copy_independent;
      ] );
    ( "heap.heap",
      [
        Alcotest.test_case "alloc/get" `Quick test_heap_alloc_get;
        Alcotest.test_case "wrong node" `Quick test_heap_wrong_node;
        Alcotest.test_case "nil deref" `Quick test_heap_nil_deref;
        QCheck_alcotest.to_alcotest qcheck_heap_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_heap_vs_boxed_model;
        Alcotest.test_case "pool growth" `Quick test_pool_growth;
        Alcotest.test_case "zero-field objects" `Quick test_zero_field_objects;
        Alcotest.test_case "alloc copies arrays" `Quick
          test_alloc_copies_arrays;
      ] );
    ( "heap.distribution",
      [
        Alcotest.test_case "partition" `Quick test_block_distribution_partition;
        Alcotest.test_case "weighted balance" `Quick test_weighted_ranges_balance;
        Alcotest.test_case "weighted dominant" `Quick
          test_weighted_ranges_dominant;
        Alcotest.test_case "weighted all-zero" `Quick
          test_weighted_ranges_all_zero;
        Alcotest.test_case "weighted fewer items" `Quick
          test_weighted_ranges_fewer_items;
        QCheck_alcotest.to_alcotest qcheck_block_distribution;
        QCheck_alcotest.to_alcotest qcheck_weighted_ranges_partition;
        QCheck_alcotest.to_alcotest qcheck_weighted_ranges_no_empty;
      ] );
  ]

open Dpa_fmm

let capprox ?(tol = 1e-9) a b = Complex.norm (Complex.sub a b) <= tol

let test_build_counts () =
  let parts = Particle2d.clustered ~n:400 ~seed:3 ~clusters:4 in
  let t = Aquadtree.build ~leaf_cap:10 parts in
  Alcotest.(check int) "root holds all" 400 (Aquadtree.nparticles t (Aquadtree.root t));
  let total =
    Array.fold_left
      (fun acc leaf ->
        match Aquadtree.kind t leaf with
        | Aquadtree.Leaf ids -> acc + Array.length ids
        | Aquadtree.Internal _ -> acc)
      0 (Aquadtree.leaves_in_dfs_order t)
  in
  Alcotest.(check int) "leaves hold all" 400 total

let test_adaptive_refines_clusters () =
  (* A clustered input must produce a deeper tree than a uniform one. *)
  let uni = Aquadtree.build (Particle2d.uniform ~n:1000 ~seed:7) in
  let clu =
    Aquadtree.build (Particle2d.clustered ~n:1000 ~seed:7 ~clusters:2)
  in
  Alcotest.(check bool)
    (Printf.sprintf "clustered deeper (%d > %d)" (Aquadtree.depth clu)
       (Aquadtree.depth uni))
    true
    (Aquadtree.depth clu > Aquadtree.depth uni)

let test_leaf_cap_respected () =
  let parts = Particle2d.uniform ~n:500 ~seed:9 in
  let t = Aquadtree.build ~leaf_cap:5 parts in
  Array.iter
    (fun leaf ->
      match Aquadtree.kind t leaf with
      | Aquadtree.Leaf ids ->
        if Array.length ids > 5 then Alcotest.fail "leaf over capacity"
      | Aquadtree.Internal _ -> ())
    (Aquadtree.leaves_in_dfs_order t)

(* The fundamental decomposition property: for every leaf, the dual walk
   covers every particle of the system exactly once (as a multipole member
   or a direct source). *)
let test_walk_coverage () =
  let parts = Particle2d.clustered ~n:200 ~seed:11 ~clusters:3 in
  let t = Aquadtree.build ~leaf_cap:6 parts in
  Array.iter
    (fun leaf ->
      let covered = Array.make 200 0 in
      let rec mark ci by =
        match Aquadtree.kind t ci with
        | Aquadtree.Leaf ids -> Array.iter (fun pid -> covered.(pid) <- covered.(pid) + by) ids
        | Aquadtree.Internal children ->
          Array.iter (fun ch -> if ch >= 0 then mark ch by) children
      in
      let rec walk ci =
        if Aquadtree.well_separated t ~leaf ci then mark ci 1
        else
          match Aquadtree.kind t ci with
          | Aquadtree.Leaf ids ->
            Array.iter (fun pid -> covered.(pid) <- covered.(pid) + 1) ids
          | Aquadtree.Internal children ->
            Array.iter (fun ch -> if ch >= 0 then walk ch) children
      in
      walk (Aquadtree.root t);
      Array.iteri
        (fun pid c ->
          if c <> 1 then
            Alcotest.failf "leaf %d covers particle %d %d times" leaf pid c)
        covered)
    (Aquadtree.leaves_in_dfs_order t)

let test_afmm_accuracy_uniform () =
  let parts = Particle2d.uniform ~n:400 ~seed:13 in
  let t = Aquadtree.build parts in
  let approx, counts = Afmm_seq.compute ~p:13 t in
  let exact = Fmm_direct.compute parts in
  let err = Fmm_direct.max_field_error approx ~reference:exact in
  Alcotest.(check bool) (Printf.sprintf "err %.2e < 5e-3" err) true (err < 5e-3);
  Alcotest.(check bool) "fewer p2p than direct" true
    (counts.Afmm_seq.p2p < 400 * 400)

let test_afmm_accuracy_clustered () =
  let parts = Particle2d.clustered ~n:400 ~seed:17 ~clusters:3 in
  let t = Aquadtree.build parts in
  let approx, _ = Afmm_seq.compute ~p:13 t in
  let exact = Fmm_direct.compute parts in
  let err = Fmm_direct.max_field_error approx ~reference:exact in
  Alcotest.(check bool) (Printf.sprintf "err %.2e < 5e-3" err) true (err < 5e-3)

let test_afmm_order_improves () =
  let parts = Particle2d.uniform ~n:200 ~seed:19 in
  let t = Aquadtree.build parts in
  let exact = Fmm_direct.compute parts in
  let err p =
    let r, _ = Afmm_seq.compute ~p t in
    Fmm_direct.max_field_error r ~reference:exact
  in
  Alcotest.(check bool) "p=20 beats p=6" true (err 20 < err 6)

let run_distributed variant ~nparticles ~distribution =
  Afmm_force.run ~nnodes:4 ~nparticles ~distribution ~seed:23 variant

let test_distributed_matches_seq variant name () =
  let _, got, tree =
    run_distributed variant ~nparticles:300 ~distribution:(`Clustered 3)
  in
  let want, _ = Afmm_seq.compute ~p:Fmm_force.default_params.Fmm_force.p tree in
  Array.iteri
    (fun i w ->
      if Float.abs (w -. got.Fmm_seq.potential.(i)) > 1e-9 then
        Alcotest.failf "%s: potential %d" name i)
    want.Fmm_seq.potential;
  Array.iteri
    (fun i w ->
      if not (capprox ~tol:1e-9 w got.Fmm_seq.field.(i)) then
        Alcotest.failf "%s: field %d" name i)
    want.Fmm_seq.field

let test_afmm_dpa_beats_blocking () =
  let t variant =
    let b, _, _ =
      run_distributed variant ~nparticles:600 ~distribution:`Uniform
    in
    b.Dpa_sim.Breakdown.elapsed_ns
  in
  Alcotest.(check bool) "dpa faster" true
    (t (Dpa_baselines.Variant.dpa ()) < t Dpa_baselines.Variant.Blocking)

let test_adaptive_beats_uniform_on_clusters () =
  (* The adaptive tree's p2p work on a clustered input must be far below
     the complete tree's (whose fixed-depth leaves overflow). *)
  let parts = Particle2d.clustered ~n:2000 ~seed:29 ~clusters:2 in
  let at = Aquadtree.build ~leaf_cap:8 parts in
  let _, ac = Afmm_seq.compute ~p:8 at in
  let ut = Quadtree.build ~target_occupancy:8 parts in
  let uc = Dpa_fmm.Fmm_run.structural_counts ut in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive p2p %d << uniform p2p %d" ac.Afmm_seq.p2p
       uc.Fmm_seq.p2p)
    true
    (ac.Afmm_seq.p2p * 4 < uc.Fmm_seq.p2p)

let suites =
  [
    ( "afmm.tree",
      [
        Alcotest.test_case "build counts" `Quick test_build_counts;
        Alcotest.test_case "refines clusters" `Quick
          test_adaptive_refines_clusters;
        Alcotest.test_case "leaf cap" `Quick test_leaf_cap_respected;
        Alcotest.test_case "walk coverage" `Quick test_walk_coverage;
      ] );
    ( "afmm.accuracy",
      [
        Alcotest.test_case "uniform vs direct" `Quick test_afmm_accuracy_uniform;
        Alcotest.test_case "clustered vs direct" `Quick
          test_afmm_accuracy_clustered;
        Alcotest.test_case "order improves" `Quick test_afmm_order_improves;
      ] );
    ( "afmm.force",
      [
        Alcotest.test_case "dpa matches sequential" `Quick
          (test_distributed_matches_seq (Dpa_baselines.Variant.dpa ()) "dpa");
        Alcotest.test_case "caching matches sequential" `Quick
          (test_distributed_matches_seq
             (Dpa_baselines.Variant.Caching { capacity = 512 })
             "caching");
        Alcotest.test_case "blocking matches sequential" `Quick
          (test_distributed_matches_seq Dpa_baselines.Variant.Blocking
             "blocking");
        Alcotest.test_case "dpa beats blocking" `Quick
          test_afmm_dpa_beats_blocking;
        Alcotest.test_case "adaptive beats uniform on clusters" `Quick
          test_adaptive_beats_uniform_on_clusters;
      ] );
  ]

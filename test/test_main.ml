let () =
  Alcotest.run "dpa"
    (Test_util.suites @ Test_sim.suites @ Test_heap.suites @ Test_msg.suites
   @ Test_runtime.suites @ Test_baselines.suites @ Test_bh.suites @ Test_fmm.suites @ Test_compiler.suites @ Test_harness.suites @ Test_runtime_behavior.suites @ Test_properties.suites @ Test_em3d.suites @ Test_reduction.suites @ Test_afmm.suites @ Test_parser.suites @ Test_trace.suites @ Test_dcache.suites @ Test_validation.suites @ Test_obs.suites @ Test_fault.suites @ Test_adaptive.suites
   @ Test_critpath.suites @ Test_integrity.suites @ Test_route_crash.suites)

(* Shared synthetic workload for runtime tests: a cluster of heaps holding
   value objects, and per-node work items that read pseudo-random (but
   deterministic) sequences of global pointers and sum the values they
   find. Every runtime must produce the same sums. *)

open Dpa_heap

type t = {
  heaps : Heap.cluster;
  ptrs : Gptr.t array array;  (* ptrs.(node).(slot) *)
  nnodes : int;
  nobjs : int;
}

let value ~node ~slot = float_of_int ((node * 1000) + slot)

let make ~nnodes ~nobjs =
  let heaps = Heap.cluster ~nnodes in
  let ptrs =
    Array.init nnodes (fun node ->
        Array.init nobjs (fun slot ->
            Heap.alloc heaps.(node)
              ~floats:[| value ~node ~slot |]
              ~ptrs:[||]))
  in
  { heaps; ptrs; nnodes; nobjs }

(* The pointer sequence of item [i] on [node]: deterministic hashing. *)
let item_ptrs t ~node ~item ~reads =
  Array.init reads (fun r ->
      let h = ((node * 7919) + (item * 104729) + (r * 1299721)) land max_int in
      let target = h mod t.nnodes in
      let slot = (h / 31) mod t.nobjs in
      t.ptrs.(target).(slot))

let expected_sum t ~node ~nitems ~reads =
  let sum = ref 0. in
  for item = 0 to nitems - 1 do
    Array.iter
      (fun (p : Gptr.t) ->
        sum := !sum +. value ~node:(Gptr.node p) ~slot:(Gptr.slot p))
      (item_ptrs t ~node ~item ~reads)
  done;
  !sum

(* Build per-node items against any runtime's access operations. [sums] is
   filled in as items complete. *)
let items (type c) (module A : Dpa.Access.S with type ctx = c) t ~nitems ~reads
    ~work_ns (sums : float array) =
  fun node ->
  Array.init nitems (fun item ->
      let ps = item_ptrs t ~node ~item ~reads in
      fun (ctx : c) ->
        Array.iter
          (fun p ->
            A.read ctx p (fun ctx view ->
                A.charge ctx work_ns;
                sums.(A.node_id ctx) <-
                  sums.(A.node_id ctx)
                  +. Heap.view_float (A.heaps ctx) view 0))
          ps)

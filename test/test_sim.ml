open Dpa_sim

let test_event_queue_order () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:30 "c";
  Event_queue.add q ~time:10 "a";
  Event_queue.add q ~time:20 "b";
  Alcotest.(check (option (pair int string))) "a" (Some (10, "a")) (Event_queue.pop q);
  Alcotest.(check (option (pair int string))) "b" (Some (20, "b")) (Event_queue.pop q);
  Alcotest.(check (option (pair int string))) "c" (Some (30, "c")) (Event_queue.pop q);
  Alcotest.(check (option (pair int string))) "empty" None (Event_queue.pop q)

let test_event_queue_fifo_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.add q ~time:5 i
  done;
  for i = 0 to 9 do
    match Event_queue.pop q with
    | Some (5, x) -> Alcotest.(check int) "fifo" i x
    | _ -> Alcotest.fail "bad pop"
  done

let qcheck_event_queue_sorted =
  QCheck.Test.make ~name:"event queue pops sorted by time" ~count:300
    QCheck.(small_list small_nat)
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.add q ~time:t ()) times;
      let rec drain acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, ()) -> drain (t :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare times)

let test_node_accounting () =
  let machine = Machine.t3d ~nodes:1 in
  let n = Node.create ~machine ~id:0 in
  Node.charge_local n 100;
  Node.charge_comm n 50;
  Node.wait_until n 200;
  Alcotest.(check int) "clock" 200 n.Node.clock;
  Alcotest.(check int) "local" 100 n.Node.local_ns;
  Alcotest.(check int) "comm" 50 n.Node.comm_ns;
  Alcotest.(check int) "idle" 50 n.Node.idle_ns;
  Node.wait_until n 100;
  Alcotest.(check int) "wait into past is a no-op" 200 n.Node.clock

let test_engine_runs_in_order () =
  let engine = Engine.create (Machine.t3d ~nodes:2) in
  let log = ref [] in
  Engine.post engine ~time:20 ~node:1 (fun () -> log := "b" :: !log);
  Engine.post engine ~time:10 ~node:0 (fun () -> log := "a" :: !log);
  Engine.run engine;
  Alcotest.(check (list string)) "order" [ "a"; "b" ] (List.rev !log);
  Alcotest.(check int) "events" 2 (Engine.events_processed engine)

let test_engine_busy_node_serializes () =
  let engine = Engine.create (Machine.t3d ~nodes:1) in
  let times = ref [] in
  Engine.post engine ~time:0 ~node:0 (fun () ->
      Node.charge_local (Engine.node engine 0) 1000);
  (* Arrives at t=500 but the node is busy until t=1000. *)
  Engine.post engine ~time:500 ~node:0 (fun () ->
      times := (Engine.node engine 0).Node.clock :: !times);
  Engine.run engine;
  Alcotest.(check (list int)) "handled at 1000" [ 1000 ] !times;
  Alcotest.(check int) "no idle" 0 (Engine.node engine 0).Node.idle_ns

let test_engine_idle_gap () =
  let engine = Engine.create (Machine.t3d ~nodes:1) in
  Engine.post engine ~time:700 ~node:0 (fun () -> ());
  Engine.run engine;
  Alcotest.(check int) "idle accounted" 700 (Engine.node engine 0).Node.idle_ns

let test_engine_barrier () =
  let engine = Engine.create (Machine.t3d ~nodes:3) in
  Engine.post engine ~time:100 ~node:1 (fun () ->
      Node.charge_local (Engine.node engine 1) 400);
  Engine.run engine;
  Engine.barrier engine;
  Array.iter
    (fun n -> Alcotest.(check int) "clocks equal" 500 n.Node.clock)
    (Engine.nodes engine);
  Alcotest.(check int) "elapsed" 500 (Engine.elapsed engine)

let test_machine_transfer () =
  let m = Machine.make ~wire_latency_ns:1000 ~ns_per_byte:10. ~nodes:2 () in
  Alcotest.(check int) "latency+bytes" (1000 + 100) (Machine.transfer_ns m ~bytes:10)

let test_breakdown_fractions () =
  let machine = Machine.t3d ~nodes:2 in
  let nodes = [| Node.create ~machine ~id:0; Node.create ~machine ~id:1 |] in
  Node.charge_local nodes.(0) 300;
  Node.charge_comm nodes.(1) 100;
  Node.wait_until nodes.(1) 300;
  let b = Breakdown.of_nodes ~elapsed_ns:300 nodes in
  Alcotest.(check int) "local" 300 b.Breakdown.local_ns;
  Alcotest.(check int) "comm" 100 b.Breakdown.comm_ns;
  Alcotest.(check int) "idle" 200 b.Breakdown.idle_ns;
  Alcotest.(check (float 1e-9)) "fractions sum to 1" 1.0
    (Breakdown.local_frac b +. Breakdown.comm_frac b +. Breakdown.idle_frac b)

let suites =
  [
    ( "sim.event_queue",
      [
        Alcotest.test_case "ordering" `Quick test_event_queue_order;
        Alcotest.test_case "fifo ties" `Quick test_event_queue_fifo_ties;
        QCheck_alcotest.to_alcotest qcheck_event_queue_sorted;
      ] );
    ( "sim.node",
      [ Alcotest.test_case "accounting" `Quick test_node_accounting ] );
    ( "sim.engine",
      [
        Alcotest.test_case "runs in order" `Quick test_engine_runs_in_order;
        Alcotest.test_case "busy node serializes" `Quick
          test_engine_busy_node_serializes;
        Alcotest.test_case "idle gap" `Quick test_engine_idle_gap;
        Alcotest.test_case "barrier" `Quick test_engine_barrier;
      ] );
    ( "sim.machine",
      [ Alcotest.test_case "transfer time" `Quick test_machine_transfer ] );
    ( "sim.breakdown",
      [ Alcotest.test_case "fractions" `Quick test_breakdown_fractions ] );
  ]

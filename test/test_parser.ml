open Dpa_compiler

let pretty p = Format.asprintf "%a" Pretty.pp_program p
let pretty_expr e = Format.asprintf "%a" Pretty.pp_expr e

let test_parse_list_sum_source () =
  let p =
    Parser.program
      {|
      // the paper's list traversal
      func sum_list(p: global ptr<0>) {
        if is_nil(p) {
        } else {
          v = p->f[0];
          sum += v;
          q = p->ptr[0];
          sum_list(q);
        }
      }
      |}
  in
  (match p.Ast.funcs with
  | [ f ] ->
    Alcotest.(check string) "name" "sum_list" f.Ast.fname;
    Alcotest.(check int) "static threads" 2
      (Partition.analyze p f).Partition.static_threads
  | _ -> Alcotest.fail "expected one function");
  (* Identical partition to the programmatic version. *)
  Alcotest.(check int) "same threads as builder"
    (Partition.total_static_threads Programs.list_sum)
    (Partition.total_static_threads p)

let test_parse_expr_precedence () =
  let e = Parser.expr "1 + 2 * 3 < 4 && is_nil(x) || !y" in
  (* (((1 + (2*3)) < 4) && is_nil(x)) || (!y) *)
  match e with
  | Ast.Binop
      ( Ast.Or,
        Ast.Binop
          ( Ast.And,
            Ast.Binop (Ast.Lt, Ast.Binop (Ast.Add, Ast.Num 1., Ast.Binop (Ast.Mul, Ast.Num 2., Ast.Num 3.)), Ast.Num 4.),
            Ast.Is_nil (Ast.Var "x") ),
        Ast.Unop (Ast.Not, Ast.Var "y") ) ->
    ()
  | _ -> Alcotest.failf "wrong parse: %s" (pretty_expr e)

let test_parse_errors () =
  let bad_cases =
    [
      "func f( { }";
      "func f() { x = ; }";
      "func f() { if x { }";
      "func f() { y 3; }";
      "func f(p: ptr) { }";
      "not a program";
    ]
  in
  List.iter
    (fun src ->
      match Parser.program src with
      | _ -> Alcotest.failf "expected a parse error for %S" src
      | exception Parser.Parse_error _ -> ()
      | exception Ast.Illegal _ -> ())
    bad_cases

let test_parse_error_position () =
  (match Parser.program "func f() {\n  x = ;\n}" with
  | _ -> Alcotest.fail "expected error"
  | exception Parser.Parse_error msg ->
    Alcotest.(check bool) ("mentions line 2: " ^ msg) true
      (String.length msg >= 6 && String.sub msg 0 6 = "line 2"))

let test_roundtrip_examples () =
  List.iter
    (fun (name, p) ->
      let s = pretty p in
      let p' = Parser.program s in
      Alcotest.(check string) (name ^ " fixpoint") s (pretty p'))
    [
      ("list_sum", Programs.list_sum);
      ("tree_sum", Programs.tree_sum);
      ("pair_sum", Programs.pair_sum);
      ("em3d", Em3d.update_program ~degree:3);
    ]

let test_parsed_program_runs () =
  let src =
    {|
    func count(n: num) {
      i = 0;
      while i < n {
        total += i * 2;
        i = i + 1;
      }
    }
    |}
  in
  let p = Parser.program src in
  let module I = Interp.Make (Dpa.Runtime) in
  let c = I.compile p in
  let heaps = Dpa_heap.Heap.cluster ~nnodes:1 in
  let engine = Dpa_sim.Engine.create (Dpa_sim.Machine.t3d ~nodes:1) in
  ignore
    (Dpa.Runtime.run_phase ~engine ~heaps ~config:(Dpa.Config.dpa ())
       ~items:(fun _ -> [| I.item c ~entry:"count" ~args:[ Value.Num 5. ] |]));
  Alcotest.(check (float 1e-9)) "0+2+4+6+8" 20. (I.accumulator c "total")

(* Random well-formed programs: printer -> parser -> printer fix point. *)
let num_expr_gen =
  QCheck.Gen.(
    sized_size (int_range 0 4) (fix (fun self n ->
        if n = 0 then
          oneof
            [
              map (fun i -> Ast.Num (float_of_int i)) (int_range 0 99);
              oneofl [ Ast.Var "x"; Ast.Var "y" ];
            ]
        else
          oneof
            [
              map (fun i -> Ast.Num (float_of_int i)) (int_range 0 99);
              oneofl [ Ast.Var "x"; Ast.Var "y" ];
              map3
                (fun op a b -> Ast.Binop (op, a, b))
                (oneofl
                   Ast.[ Add; Sub; Mul; Div; Lt; Le; Eq; And; Or ])
                (self (n / 2)) (self (n / 2));
              map (fun e -> Ast.Unop (Ast.Neg, e)) (self (n - 1));
              map (fun e -> Ast.Unop (Ast.Not, e)) (self (n - 1));
            ])))

let stmt_gen =
  QCheck.Gen.(
    sized_size (int_range 1 4) (fix (fun self n ->
        let block k = list_size (int_range 0 3) (self k) in
        if n = 0 then
          oneof
            [
              map (fun e -> Ast.Let ("x", e)) num_expr_gen;
              map (fun e -> Ast.Let ("y", e)) num_expr_gen;
              map (fun e -> Ast.Accum ("acc", e)) num_expr_gen;
              map (fun i -> Ast.Load_field ("x", "p", i)) (int_range 0 3);
              map (fun i -> Ast.Load_ptr ("q", "p", i)) (int_range 0 1);
              return (Ast.Call ("f", [ Ast.Var "x"; Ast.Var "p" ]));
            ]
        else
          oneof
            [
              map (fun e -> Ast.Let ("x", e)) num_expr_gen;
              map3
                (fun e a b -> Ast.If (e, a, b))
                num_expr_gen (block (n - 1)) (block (n - 1));
              map (fun b -> Ast.Conc b) (block (n - 1));
              map2
                (fun e b -> Ast.While (e, b))
                num_expr_gen
                (list_size (int_range 0 2)
                   (oneof
                      [
                        map (fun e -> Ast.Let ("y", e)) num_expr_gen;
                        map (fun e -> Ast.Accum ("acc", e)) num_expr_gen;
                      ]));
            ])))

let program_gen =
  QCheck.Gen.(
    map
      (fun body ->
        {
          Ast.funcs =
            [
              {
                Ast.fname = "f";
                params =
                  [
                    { Ast.pname = "x"; pclass = None };
                    { Ast.pname = "p"; pclass = Some (Ast.Global 0) };
                  ];
                body;
              };
            ];
        })
      (list_size (int_range 1 6) stmt_gen))

let qcheck_roundtrip =
  QCheck.Test.make ~name:"pretty -> parse -> pretty is a fix point" ~count:300
    (QCheck.make program_gen) (fun p ->
      match Ast.validate p with
      | exception Ast.Illegal _ -> QCheck.assume_fail ()
      | () -> (
        let s = pretty p in
        match Parser.program s with
        | p' -> pretty p' = s
        | exception Parser.Parse_error msg ->
          QCheck.Test.fail_reportf "parse error on:\n%s\n%s" s msg
        | exception Ast.Illegal msg ->
          QCheck.Test.fail_reportf "illegal on:\n%s\n%s" s msg))

let suites =
  [
    ( "compiler.parser",
      [
        Alcotest.test_case "list_sum source" `Quick test_parse_list_sum_source;
        Alcotest.test_case "precedence" `Quick test_parse_expr_precedence;
        Alcotest.test_case "errors" `Quick test_parse_errors;
        Alcotest.test_case "error position" `Quick test_parse_error_position;
        Alcotest.test_case "round trips" `Quick test_roundtrip_examples;
        Alcotest.test_case "parsed program runs" `Quick test_parsed_program_runs;
        QCheck_alcotest.to_alcotest qcheck_roundtrip;
      ] );
  ]

(* Tests of the observability layer (lib/obs): JSON round-tripping, the
   metrics registry, the event sink's flight-recorder ring, the exporters,
   and the end-to-end wiring through a real DPA phase — including that an
   observed run produces exactly the same simulated times and statistics as
   an unobserved one. *)

module Json = Dpa_obs.Json
module Metrics = Dpa_obs.Metrics
module Sink = Dpa_obs.Sink
module Export = Dpa_obs.Export

(* --- Json ------------------------------------------------------------- *)

let parse_ok s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S: %s" s e

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("int", Json.Int (-42));
        ("float", Json.Float 2.5);
        ("str", Json.Str "a\"b\\c\nd\te\r\x01f");
        ("nested", Json.Obj [ ("empty_list", Json.List []); ("e", Json.Obj []) ]);
      ]
  in
  Alcotest.(check bool) "roundtrip" true (parse_ok (Json.to_string v) = v)

let test_json_numbers_and_unicode () =
  Alcotest.(check bool) "int" true (parse_ok "-12" = Json.Int (-12));
  Alcotest.(check bool) "float" true (parse_ok "3.5" = Json.Float 3.5);
  Alcotest.(check bool) "exponent" true (parse_ok "1e3" = Json.Float 1000.);
  Alcotest.(check bool) "escape" true (parse_ok {|"é"|} = Json.Str "\xc3\xa9");
  Alcotest.(check bool) "surrogate pair" true
    (parse_ok {|"😀"|} = Json.Str "\xf0\x9f\x98\x80");
  (* Non-finite floats must not produce invalid JSON. *)
  Alcotest.(check string) "nan renders null" "null" (Json.to_string (Json.Float nan))

let test_json_rejects () =
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" s
    | Error _ -> ()
  in
  bad "";
  bad "tru";
  bad "{}x";
  bad "[1,]";
  bad "{\"a\":}";
  bad "\"unterminated";
  bad "01"

(* Satellite to the causal-tracing PR: escaping is byte-exact for every
   string, control characters (emitted as \u00XX) included — event names
   and phase labels flow into JSONL unfiltered, so the encoder must
   round-trip arbitrary bytes. *)
let qcheck_json_string_roundtrip =
  QCheck.Test.make ~count:500 ~name:"json: escape/parse round-trips any string"
    QCheck.(string_gen_of_size Gen.small_nat (Gen.char_range '\x00' '\xff'))
    (fun s ->
      match Json.parse (Json.to_string (Json.Str s)) with
      | Ok (Json.Str s') when s' = s -> true
      | Ok v ->
        QCheck.Test.fail_reportf "round-trip of %S gave %s" s (Json.to_string v)
      | Error e -> QCheck.Test.fail_reportf "round-trip of %S failed: %s" s e)

let test_json_member () =
  let v = Json.Obj [ ("a", Json.Int 1) ] in
  Alcotest.(check bool) "hit" true (Json.member "a" v = Some (Json.Int 1));
  Alcotest.(check bool) "miss" true (Json.member "b" v = None);
  Alcotest.(check bool) "non-object" true (Json.member "a" (Json.Int 3) = None)

(* --- Metrics ----------------------------------------------------------- *)

let test_metrics_counter_gauge () =
  let r = Metrics.create () in
  let c = Metrics.counter r "c" in
  Metrics.incr c;
  Metrics.add (Metrics.counter r "c") 9 (* same name -> same instrument *);
  Alcotest.(check int) "counter" 10 (Metrics.counter_value c);
  let g = Metrics.gauge r "g" in
  Metrics.set_gauge g 7;
  Metrics.set_gauge g 3;
  Alcotest.(check int) "gauge last" 3 (Metrics.gauge_value g);
  Alcotest.(check int) "gauge max" 7 (Metrics.gauge_max g);
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics.gauge: \"c\" is registered as another kind")
    (fun () -> ignore (Metrics.gauge r "c"))

let test_metrics_histogram () =
  let r = Metrics.create () in
  let h = Metrics.histogram r "h" in
  for v = 1 to 100 do
    Metrics.observe h v
  done;
  let s = Metrics.summary h in
  Alcotest.(check int) "count" 100 s.Metrics.count;
  Alcotest.(check int) "sum" 5050 s.Metrics.sum;
  Alcotest.(check int) "min" 1 s.Metrics.min;
  Alcotest.(check int) "max" 100 s.Metrics.max;
  (* Uniform 1..100: the p50 rank falls in the [32,64) bucket, p99 in
     [64,128) clamped to the observed max. *)
  Alcotest.(check bool) "p50 bracket" true (s.Metrics.p50 >= 32. && s.Metrics.p50 <= 64.);
  Alcotest.(check bool) "p90 bracket" true (s.Metrics.p90 >= 64. && s.Metrics.p90 <= 100.);
  Alcotest.(check bool) "p99 bracket" true (s.Metrics.p99 >= 64. && s.Metrics.p99 <= 100.);
  Alcotest.(check bool) "monotone" true
    (s.Metrics.p50 <= s.Metrics.p90 && s.Metrics.p90 <= s.Metrics.p99)

let test_metrics_histogram_edges () =
  let r = Metrics.create () in
  let h = Metrics.histogram r "h" in
  let s = Metrics.summary h in
  Alcotest.(check int) "empty count" 0 s.Metrics.count;
  Alcotest.(check (float 0.)) "empty p99" 0. s.Metrics.p99;
  Metrics.observe h 7;
  Alcotest.(check (float 0.)) "single value p50 exact" 7. (Metrics.percentile h 0.5);
  Alcotest.(check (float 0.)) "single value p99 exact" 7. (Metrics.percentile h 0.99);
  Metrics.observe h (-5) (* clamped to 0 *);
  Alcotest.(check int) "negative clamped" 0 (Metrics.summary h).Metrics.min

let test_metrics_json_shape () =
  let r = Metrics.create () in
  Metrics.add (Metrics.counter r "c") 4;
  Metrics.observe (Metrics.histogram r "h") 10;
  let j = Metrics.to_json r in
  (* The export must survive its own parser. *)
  Alcotest.(check bool) "self-parse" true (parse_ok (Json.to_string j) = j);
  let h =
    match Json.member "histograms" j with
    | Some hs -> Option.get (Json.member "h" hs)
    | None -> Alcotest.fail "no histograms"
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " present") true (Json.member k h <> None))
    [ "count"; "sum"; "min"; "max"; "p50"; "p90"; "p99"; "buckets" ]

(* --- Sink -------------------------------------------------------------- *)

let test_sink_ring_overwrites () =
  let s = Sink.create ~capacity:4 () in
  for i = 1 to 10 do
    Sink.instant s ~cat:"t" ~name:"i" ~node:0 ~ts:i
  done;
  for i = 1 to 3 do
    Sink.span s ~cat:"t" ~name:"s" ~node:0 ~ts:i ~dur:1
  done;
  Alcotest.(check int) "dropped" 6 (Sink.dropped s);
  Alcotest.(check int) "emitted" 13 (Sink.emitted s);
  Alcotest.(check int) "spans unbounded" 3 (Sink.nspans s);
  let evs = Sink.events s in
  Alcotest.(check int) "live events" 7 (List.length evs);
  (* The ring keeps the newest instants and the listing is time-sorted. *)
  let ts = List.map (fun (e : Sink.event) -> e.Sink.ts) evs in
  Alcotest.(check bool) "sorted" true (List.sort compare ts = ts);
  Alcotest.(check bool) "oldest instants gone" true
    (List.for_all
       (fun (e : Sink.event) -> e.Sink.kind = Sink.Span || e.Sink.ts > 6)
       evs)

let test_sink_ring_wrap_boundaries () =
  (* Exercise the wrap arithmetic at the exact boundaries: full to the
     brim, one past, and an exact multiple of the capacity. *)
  let instant_ts s =
    List.filter_map
      (fun (e : Sink.event) ->
        if e.Sink.kind = Sink.Instant then Some e.Sink.ts else None)
      (Sink.events s)
  in
  let s = Sink.create ~capacity:4 () in
  for i = 1 to 4 do
    Sink.instant s ~cat:"t" ~name:"i" ~node:0 ~ts:i
  done;
  Alcotest.(check (list int)) "written = capacity" [ 1; 2; 3; 4 ] (instant_ts s);
  Alcotest.(check int) "no drops at exactly full" 0 (Sink.dropped s);
  Sink.instant s ~cat:"t" ~name:"i" ~node:0 ~ts:5;
  Alcotest.(check (list int)) "capacity + 1 evicts oldest" [ 2; 3; 4; 5 ]
    (instant_ts s);
  Alcotest.(check int) "one drop" 1 (Sink.dropped s);
  for i = 6 to 8 do
    Sink.instant s ~cat:"t" ~name:"i" ~node:0 ~ts:i
  done;
  Alcotest.(check (list int)) "exact multiple of capacity" [ 5; 6; 7; 8 ]
    (instant_ts s);
  Alcotest.(check int) "drops = written - capacity" 4 (Sink.dropped s);
  Alcotest.(check int) "emitted counts overwritten" 8 (Sink.emitted s)

let test_events_stable_merge () =
  (* Spans are recorded at close, so the merged listing must order by ts
     with emission order (seq) as the tie-break — not by kind or by the
     order the two backing stores happen to be concatenated in. *)
  let s = Sink.create () in
  Sink.instant s ~cat:"t" ~name:"i1" ~node:0 ~ts:5;
  Sink.instant s ~cat:"t" ~name:"i2" ~node:0 ~ts:5;
  Sink.span s ~cat:"t" ~name:"late-close" ~node:0 ~ts:5 ~dur:1;
  Sink.span s ~cat:"t" ~name:"early" ~node:0 ~ts:2 ~dur:1;
  let evs = Sink.events s in
  Alcotest.(check (list string)) "ts order, seq tie-break"
    [ "early"; "i1"; "i2"; "late-close" ]
    (List.map (fun (e : Sink.event) -> e.Sink.name) evs);
  let sorted_pairs =
    let pairs = List.map (fun (e : Sink.event) -> (e.Sink.ts, e.Sink.seq)) evs in
    List.sort compare pairs = pairs
  in
  Alcotest.(check bool) "(ts, seq) nondecreasing" true sorted_pairs

let collecting_writer () =
  let evs = ref [] and flushes = ref 0 and closes = ref 0 in
  let w =
    {
      Sink.write = (fun ev -> evs := ev :: !evs);
      Sink.flush = (fun () -> incr flushes);
      Sink.close = (fun () -> incr closes);
    }
  in
  (w, evs, flushes, closes)

let test_streaming_writer () =
  let s = Sink.create ~capacity:4 () in
  let w, evs, flushes, closes = collecting_writer () in
  Sink.attach_writer s w;
  let w2, _, _, _ = collecting_writer () in
  Alcotest.check_raises "second attach rejected"
    (Invalid_argument "Sink.attach_writer: a writer is already attached")
    (fun () -> Sink.attach_writer s w2);
  (* Out-of-order emission within a flush segment is sorted at flush. *)
  Sink.instant s ~cat:"t" ~name:"i" ~node:0 ~ts:3;
  Sink.instant s ~cat:"t" ~name:"i" ~node:0 ~ts:1;
  Sink.instant s ~cat:"t" ~name:"i" ~node:0 ~ts:2;
  Sink.flush_writer s;
  Alcotest.(check (list int)) "segment sorted" [ 1; 2; 3 ]
    (List.rev_map (fun (e : Sink.event) -> e.Sink.ts) !evs);
  Alcotest.(check int) "flushed once" 1 !flushes;
  (* Overflow the 4-entry ring: the writer already captured every event,
     so nothing counts as dropped. *)
  for i = 4 to 13 do
    Sink.instant s ~cat:"t" ~name:"i" ~node:0 ~ts:i
  done;
  Sink.close_writer s;
  Alcotest.(check int) "zero drops with writer attached" 0 (Sink.dropped s);
  Alcotest.(check int) "streamed everything" 13 (Sink.streamed s);
  Alcotest.(check int) "streamed past ring capacity" 13 (List.length !evs);
  Alcotest.(check int) "closed" 1 !closes;
  Sink.close_writer s (* idempotent *);
  Alcotest.(check int) "close is idempotent" 1 !closes;
  (* ...but overwrites after detach are real losses again. *)
  for i = 14 to 18 do
    Sink.instant s ~cat:"t" ~name:"i" ~node:0 ~ts:i
  done;
  Alcotest.(check int) "drops resume without writer" 5 (Sink.dropped s)

let test_sink_meta () =
  let s = Sink.create () in
  Sink.set_meta s "b" (Json.Int 1);
  Sink.set_meta s "a" (Json.Int 2);
  Sink.set_meta s "b" (Json.Int 3);
  Alcotest.(check bool) "sorted + overwritten" true
    (Sink.meta s = [ ("a", Json.Int 2); ("b", Json.Int 3) ])

let test_global_sink_pickup () =
  let s = Sink.create () in
  Sink.set_global (Some s);
  Fun.protect
    ~finally:(fun () -> Sink.set_global None)
    (fun () ->
      let engine = Dpa_sim.Engine.create (Dpa_sim.Machine.t3d ~nodes:2) in
      Alcotest.(check bool) "adopted" true
        (match Dpa_sim.Engine.sink engine with Some s' -> s' == s | None -> false));
  let engine = Dpa_sim.Engine.create (Dpa_sim.Machine.t3d ~nodes:2) in
  Alcotest.(check bool) "cleared" true (Dpa_sim.Engine.sink engine = None)

(* --- end to end through a real phase ----------------------------------- *)

let run_bh ~sink () =
  let bodies = Dpa_bh.Plummer.generate ~n:200 ~seed:17 in
  let octree = Dpa_bh.Octree.build bodies in
  let tree = Dpa_bh.Bh_global.distribute octree ~nnodes:3 in
  let engine = Dpa_sim.Engine.create (Dpa_sim.Machine.t3d ~nodes:3) in
  Dpa_sim.Engine.set_sink engine sink;
  Dpa_bh.Bh_run.force_phase ~engine ~tree ~bodies
    ~params:Dpa_bh.Bh_force.default_params
    (Dpa_baselines.Variant.dpa ~strip_size:16 ())

let observed_bh =
  (* One observed run shared by the export tests below. *)
  lazy
    (let sink = Sink.create () in
     let r = run_bh ~sink:(Some sink) () in
     (sink, r))

let test_chrome_trace_valid () =
  let sink, _ = Lazy.force observed_bh in
  let j = parse_ok (Export.chrome_trace sink) in
  let events =
    match Json.member "traceEvents" j with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents list"
  in
  Alcotest.(check bool) "nonempty" true (events <> []);
  (* At least one complete phase span per node. *)
  List.iter
    (fun node ->
      Alcotest.(check bool)
        (Printf.sprintf "phase span on node %d" node)
        true
        (List.exists
           (fun e ->
             Json.member "ph" e = Some (Json.Str "X")
             && Json.member "cat" e = Some (Json.Str "phase")
             && Json.member "name" e = Some (Json.Str "bh-force")
             && Json.member "tid" e = Some (Json.Int node))
           events))
    [ 0; 1; 2 ]

let test_metrics_export_valid () =
  let sink, r = Lazy.force observed_bh in
  let j = parse_ok (Json.to_string (Export.metrics_json sink)) in
  let histos =
    match Json.member "metrics" j with
    | Some m -> Option.get (Json.member "histograms" m)
    | None -> Alcotest.fail "no metrics"
  in
  List.iter
    (fun name ->
      match Json.member name histos with
      | Some h ->
        List.iter
          (fun k ->
            Alcotest.(check bool)
              (name ^ "." ^ k ^ " present")
              true
              (Json.member k h <> None))
          [ "p50"; "p90"; "p99" ]
      | None -> Alcotest.failf "histogram %s missing" name)
    [ "agg_batch.bh-force"; "wait_ns.bh-force"; "outstanding.bh-force" ];
  (* The attached Dpa_stats document matches the run's own statistics. *)
  let stats = Option.get r.Dpa_bh.Bh_run.dpa_stats in
  match Json.member "stats" j with
  | Some s ->
    Alcotest.(check bool) "dpa_stats attached" true
      (Json.member "dpa_stats.bh-force" s = Some (Dpa.Dpa_stats.to_json stats))
  | None -> Alcotest.fail "no stats"

let test_jsonl_and_profile () =
  let sink, _ = Lazy.force observed_bh in
  let lines =
    Export.jsonl sink |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check bool) "has lines" true (lines <> []);
  List.iter (fun l -> ignore (parse_ok l)) lines;
  let profile = Export.profile sink in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in profile") true
        (contains profile needle))
    [ "bh-force"; "wait_ns" ]

let test_jsonl_roundtrip_kinds () =
  (* Every event kind, with every arg type, must survive the in-repo
     parser — the same check `make obs-smoke` runs on a streamed file. *)
  let s = Sink.create () in
  Sink.span s ~cat:"phase" ~name:"sp" ~node:1 ~ts:5 ~dur:7
    ~args:[ ("i", Sink.Int (-3)); ("f", Sink.Float 2.5); ("s", Sink.Str "x\"y") ];
  Sink.instant s ~cat:"fault" ~name:"drop" ~node:0 ~ts:9
    ~args:[ ("sev", Sink.Str "hi") ];
  Sink.counter s ~name:"occ" ~node:2 ~ts:11 42;
  let evs = Sink.events s in
  Alcotest.(check int) "all three kinds" 3 (List.length evs);
  List.iter
    (fun (ev : Sink.event) ->
      let j = parse_ok (Export.jsonl_line ev) in
      let kind =
        match ev.Sink.kind with
        | Sink.Span -> "span"
        | Sink.Instant -> "instant"
        | Sink.Counter -> "counter"
      in
      Alcotest.(check bool) (kind ^ " kind") true
        (Json.member "kind" j = Some (Json.Str kind));
      Alcotest.(check bool) (kind ^ " name") true
        (Json.member "name" j = Some (Json.Str ev.Sink.name));
      Alcotest.(check bool) (kind ^ " node") true
        (Json.member "node" j = Some (Json.Int ev.Sink.node));
      Alcotest.(check bool) (kind ^ " ts") true
        (Json.member "ts" j = Some (Json.Int ev.Sink.ts));
      Alcotest.(check bool) (kind ^ " dur") true
        (Json.member "dur" j = Some (Json.Int ev.Sink.dur));
      let args = Option.get (Json.member "args" j) in
      List.iter
        (fun (k, v) ->
          let expected =
            match v with
            | Sink.Int i -> Json.Int i
            | Sink.Float f -> Json.Float f
            | Sink.Str str -> Json.Str str
          in
          Alcotest.(check bool) (kind ^ " arg " ^ k) true
            (Json.member k args = Some expected))
        ev.Sink.args)
    evs

(* Tokenized rows of a profile whose first column is [name]. *)
let profile_rows profile name =
  String.split_on_char '\n' profile
  |> List.filter_map (fun l ->
         match String.split_on_char ' ' l |> List.filter (fun s -> s <> "") with
         | n :: rest when n = name -> Some rest
         | _ -> None)

let phase_span ?(busy = 0) ?(bytes = 0) s ~node ~dur =
  Sink.span s ~cat:"phase" ~name:"p" ~node ~ts:0 ~dur
    ~args:[ ("busy_ns", Sink.Int busy); ("bytes", Sink.Int bytes) ]

let test_profile_mean_uneven_nodes () =
  (* Node 0 ran the phase twice, node 1 once: 3+5+4 = 12 ms over 3 spans
     is a 4.000 ms mean. The old spans/nnodes*nnodes denominator (with
     integer-division runs) divided 12 by 2 and printed 6.000. *)
  let s = Sink.create () in
  phase_span s ~node:0 ~dur:3_000_000 ~busy:2_000_000 ~bytes:10;
  phase_span s ~node:0 ~dur:5_000_000 ~busy:4_000_000 ~bytes:20;
  phase_span s ~node:1 ~dur:4_000_000 ~busy:2_000_000 ~bytes:30;
  let rows = profile_rows (Export.profile s) "p" in
  (match List.find_opt (fun r -> List.length r = 4) rows with
  | Some [ runs; nodes; mean; strips ] ->
    Alcotest.(check string) "runs" "1" runs;
    Alcotest.(check string) "nodes" "2" nodes;
    Alcotest.(check string) "mean = total/spans" "4.000" mean;
    Alcotest.(check string) "strips" "0" strips
  | _ -> Alcotest.fail "no global profile row for phase p");
  (* The skew summary carries the real total and busy spread. *)
  match List.find_opt (fun r -> List.nth_opt r 0 = Some "=") rows with
  | Some ("=" :: "wall" :: wall :: "ms" :: "over" :: spans :: rest) ->
    Alcotest.(check string) "summary wall" "12.000" wall;
    Alcotest.(check string) "summary spans" "3" spans;
    let rest = String.concat " " rest in
    Alcotest.(check bool) "busy min/mean/max" true
      (contains rest "2.000/4.000/6.000");
    Alcotest.(check bool) "imbalance" true (contains rest "1.50x")
  | _ -> Alcotest.fail "no skew summary line for phase p"

let test_profile_strip_only_rows () =
  (* Strip spans whose phase label never produced a phase-category span
     (e.g. --trace-cats strip) must render as strip-only rows, not the old
     ghost "runs=0 nodes=0 mean=0.000" ones. *)
  let s = Sink.create () in
  Sink.span s ~cat:"strip" ~name:"strip" ~node:2 ~ts:0 ~dur:5
    ~args:[ ("phase", Sink.Str "ghost") ];
  Sink.span s ~cat:"strip" ~name:"strip" ~node:2 ~ts:5 ~dur:5
    ~args:[ ("phase", Sink.Str "ghost") ];
  let profile = Export.profile s in
  let rows = profile_rows profile "ghost" in
  Alcotest.(check bool) "global row is strip-only" true
    (List.mem [ "-"; "-"; "-"; "2" ] rows);
  Alcotest.(check bool) "skew row is strip-only" true
    (List.mem [ "2"; "-"; "-"; "2"; "-" ] rows);
  Alcotest.(check bool) "no summary for a phase with no spans" true
    (not (List.exists (fun r -> List.nth_opt r 0 = Some "=") rows))

let test_writer_matches_snapshot_export () =
  (* With no ring overflow, streaming a real phase (flushes at the
     engine's barriers plus the final close) must produce exactly the
     lines the one-shot snapshot exporter renders at the end. *)
  let sink = Sink.create () in
  let buf = Buffer.create 65536 in
  Sink.attach_writer sink
    {
      Sink.write =
        (fun ev ->
          Buffer.add_string buf (Export.jsonl_line ev);
          Buffer.add_char buf '\n');
      Sink.flush = (fun () -> ());
      Sink.close = (fun () -> ());
    };
  let (_ : Dpa_bh.Bh_run.phase_result) = run_bh ~sink:(Some sink) () in
  Sink.close_writer sink;
  Alcotest.(check int) "no drops" 0 (Sink.dropped sink);
  Alcotest.(check int) "streamed everything emitted" (Sink.emitted sink)
    (Sink.streamed sink);
  Alcotest.(check bool) "nonempty" true (Sink.streamed sink > 0);
  Alcotest.(check bool) "stream equals snapshot export" true
    (Buffer.contents buf = Export.jsonl sink)

let test_observing_is_transparent () =
  let off = run_bh ~sink:None () in
  let _, on_ = Lazy.force observed_bh in
  Alcotest.(check bool) "breakdown identical" true
    (off.Dpa_bh.Bh_run.breakdown = on_.Dpa_bh.Bh_run.breakdown);
  Alcotest.(check bool) "stats identical" true
    (off.Dpa_bh.Bh_run.dpa_stats = on_.Dpa_bh.Bh_run.dpa_stats);
  Alcotest.(check bool) "forces identical" true
    (off.Dpa_bh.Bh_run.accs = on_.Dpa_bh.Bh_run.accs)

(* --- Dpa_stats --------------------------------------------------------- *)

let test_stats_merge_edges () =
  let z = Dpa.Dpa_stats.merge [] in
  Alcotest.(check bool) "empty merge is zero" true (z = Dpa.Dpa_stats.create ());
  let a = Dpa.Dpa_stats.create () and b = Dpa.Dpa_stats.create () in
  a.Dpa.Dpa_stats.spawns <- 3;
  a.Dpa.Dpa_stats.max_outstanding <- 10;
  a.Dpa.Dpa_stats.max_batch <- 2;
  a.Dpa.Dpa_stats.align_peak <- 5;
  b.Dpa.Dpa_stats.spawns <- 4;
  b.Dpa.Dpa_stats.max_outstanding <- 7;
  b.Dpa.Dpa_stats.max_batch <- 9;
  b.Dpa.Dpa_stats.align_peak <- 1;
  let m = Dpa.Dpa_stats.merge [ a; b ] in
  Alcotest.(check int) "sums add" 7 m.Dpa.Dpa_stats.spawns;
  Alcotest.(check int) "max_outstanding takes max" 10
    m.Dpa.Dpa_stats.max_outstanding;
  Alcotest.(check int) "max_batch takes max" 9 m.Dpa.Dpa_stats.max_batch;
  Alcotest.(check int) "align_peak takes max" 5 m.Dpa.Dpa_stats.align_peak;
  (* Merging one element is the identity. *)
  Alcotest.(check bool) "singleton identity" true (Dpa.Dpa_stats.merge [ a ] = a)

let test_stats_to_json () =
  let a = Dpa.Dpa_stats.create () in
  a.Dpa.Dpa_stats.spawns <- 2;
  a.Dpa.Dpa_stats.inline_local <- 5;
  a.Dpa.Dpa_stats.align_hits <- 1;
  a.Dpa.Dpa_stats.merge_hits <- 3;
  let j = Dpa.Dpa_stats.to_json a in
  Alcotest.(check bool) "spawns" true (Json.member "spawns" j = Some (Json.Int 2));
  Alcotest.(check bool) "derived total" true
    (Json.member "total_reads" j = Some (Json.Int 11));
  Alcotest.(check bool) "self-parse" true (parse_ok (Json.to_string j) = j)

let suites =
  [
    ( "obs.json",
      [
        Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "numbers and unicode" `Quick
          test_json_numbers_and_unicode;
        Alcotest.test_case "rejects malformed" `Quick test_json_rejects;
        Alcotest.test_case "member" `Quick test_json_member;
        QCheck_alcotest.to_alcotest qcheck_json_string_roundtrip;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "counter and gauge" `Quick test_metrics_counter_gauge;
        Alcotest.test_case "histogram percentiles" `Quick test_metrics_histogram;
        Alcotest.test_case "histogram edges" `Quick test_metrics_histogram_edges;
        Alcotest.test_case "json shape" `Quick test_metrics_json_shape;
      ] );
    ( "obs.sink",
      [
        Alcotest.test_case "ring overwrites oldest" `Quick
          test_sink_ring_overwrites;
        Alcotest.test_case "ring wrap boundaries" `Quick
          test_sink_ring_wrap_boundaries;
        Alcotest.test_case "events merge is (ts, seq)-stable" `Quick
          test_events_stable_merge;
        Alcotest.test_case "streaming writer" `Quick test_streaming_writer;
        Alcotest.test_case "meta" `Quick test_sink_meta;
        Alcotest.test_case "global pickup by Engine.create" `Quick
          test_global_sink_pickup;
      ] );
    ( "obs.export",
      [
        Alcotest.test_case "chrome trace valid" `Quick test_chrome_trace_valid;
        Alcotest.test_case "metrics export valid" `Quick
          test_metrics_export_valid;
        Alcotest.test_case "jsonl and profile" `Quick test_jsonl_and_profile;
        Alcotest.test_case "jsonl round-trips every kind" `Quick
          test_jsonl_roundtrip_kinds;
        Alcotest.test_case "profile mean with uneven nodes" `Quick
          test_profile_mean_uneven_nodes;
        Alcotest.test_case "profile strip-only rows" `Quick
          test_profile_strip_only_rows;
        Alcotest.test_case "writer matches snapshot export" `Quick
          test_writer_matches_snapshot_export;
        Alcotest.test_case "observing is transparent" `Quick
          test_observing_is_transparent;
      ] );
    ( "core.stats",
      [
        Alcotest.test_case "merge edge cases" `Quick test_stats_merge_edges;
        Alcotest.test_case "to_json" `Quick test_stats_to_json;
      ] );
  ]

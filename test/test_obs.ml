(* Tests of the observability layer (lib/obs): JSON round-tripping, the
   metrics registry, the event sink's flight-recorder ring, the exporters,
   and the end-to-end wiring through a real DPA phase — including that an
   observed run produces exactly the same simulated times and statistics as
   an unobserved one. *)

module Json = Dpa_obs.Json
module Metrics = Dpa_obs.Metrics
module Sink = Dpa_obs.Sink
module Export = Dpa_obs.Export

(* --- Json ------------------------------------------------------------- *)

let parse_ok s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S: %s" s e

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("int", Json.Int (-42));
        ("float", Json.Float 2.5);
        ("str", Json.Str "a\"b\\c\nd\te\r\x01f");
        ("nested", Json.Obj [ ("empty_list", Json.List []); ("e", Json.Obj []) ]);
      ]
  in
  Alcotest.(check bool) "roundtrip" true (parse_ok (Json.to_string v) = v)

let test_json_numbers_and_unicode () =
  Alcotest.(check bool) "int" true (parse_ok "-12" = Json.Int (-12));
  Alcotest.(check bool) "float" true (parse_ok "3.5" = Json.Float 3.5);
  Alcotest.(check bool) "exponent" true (parse_ok "1e3" = Json.Float 1000.);
  Alcotest.(check bool) "escape" true (parse_ok {|"é"|} = Json.Str "\xc3\xa9");
  Alcotest.(check bool) "surrogate pair" true
    (parse_ok {|"😀"|} = Json.Str "\xf0\x9f\x98\x80");
  (* Non-finite floats must not produce invalid JSON. *)
  Alcotest.(check string) "nan renders null" "null" (Json.to_string (Json.Float nan))

let test_json_rejects () =
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" s
    | Error _ -> ()
  in
  bad "";
  bad "tru";
  bad "{}x";
  bad "[1,]";
  bad "{\"a\":}";
  bad "\"unterminated";
  bad "01"

let test_json_member () =
  let v = Json.Obj [ ("a", Json.Int 1) ] in
  Alcotest.(check bool) "hit" true (Json.member "a" v = Some (Json.Int 1));
  Alcotest.(check bool) "miss" true (Json.member "b" v = None);
  Alcotest.(check bool) "non-object" true (Json.member "a" (Json.Int 3) = None)

(* --- Metrics ----------------------------------------------------------- *)

let test_metrics_counter_gauge () =
  let r = Metrics.create () in
  let c = Metrics.counter r "c" in
  Metrics.incr c;
  Metrics.add (Metrics.counter r "c") 9 (* same name -> same instrument *);
  Alcotest.(check int) "counter" 10 (Metrics.counter_value c);
  let g = Metrics.gauge r "g" in
  Metrics.set_gauge g 7;
  Metrics.set_gauge g 3;
  Alcotest.(check int) "gauge last" 3 (Metrics.gauge_value g);
  Alcotest.(check int) "gauge max" 7 (Metrics.gauge_max g);
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics.gauge: \"c\" is registered as another kind")
    (fun () -> ignore (Metrics.gauge r "c"))

let test_metrics_histogram () =
  let r = Metrics.create () in
  let h = Metrics.histogram r "h" in
  for v = 1 to 100 do
    Metrics.observe h v
  done;
  let s = Metrics.summary h in
  Alcotest.(check int) "count" 100 s.Metrics.count;
  Alcotest.(check int) "sum" 5050 s.Metrics.sum;
  Alcotest.(check int) "min" 1 s.Metrics.min;
  Alcotest.(check int) "max" 100 s.Metrics.max;
  (* Uniform 1..100: the p50 rank falls in the [32,64) bucket, p99 in
     [64,128) clamped to the observed max. *)
  Alcotest.(check bool) "p50 bracket" true (s.Metrics.p50 >= 32. && s.Metrics.p50 <= 64.);
  Alcotest.(check bool) "p90 bracket" true (s.Metrics.p90 >= 64. && s.Metrics.p90 <= 100.);
  Alcotest.(check bool) "p99 bracket" true (s.Metrics.p99 >= 64. && s.Metrics.p99 <= 100.);
  Alcotest.(check bool) "monotone" true
    (s.Metrics.p50 <= s.Metrics.p90 && s.Metrics.p90 <= s.Metrics.p99)

let test_metrics_histogram_edges () =
  let r = Metrics.create () in
  let h = Metrics.histogram r "h" in
  let s = Metrics.summary h in
  Alcotest.(check int) "empty count" 0 s.Metrics.count;
  Alcotest.(check (float 0.)) "empty p99" 0. s.Metrics.p99;
  Metrics.observe h 7;
  Alcotest.(check (float 0.)) "single value p50 exact" 7. (Metrics.percentile h 0.5);
  Alcotest.(check (float 0.)) "single value p99 exact" 7. (Metrics.percentile h 0.99);
  Metrics.observe h (-5) (* clamped to 0 *);
  Alcotest.(check int) "negative clamped" 0 (Metrics.summary h).Metrics.min

let test_metrics_json_shape () =
  let r = Metrics.create () in
  Metrics.add (Metrics.counter r "c") 4;
  Metrics.observe (Metrics.histogram r "h") 10;
  let j = Metrics.to_json r in
  (* The export must survive its own parser. *)
  Alcotest.(check bool) "self-parse" true (parse_ok (Json.to_string j) = j);
  let h =
    match Json.member "histograms" j with
    | Some hs -> Option.get (Json.member "h" hs)
    | None -> Alcotest.fail "no histograms"
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " present") true (Json.member k h <> None))
    [ "count"; "sum"; "min"; "max"; "p50"; "p90"; "p99"; "buckets" ]

(* --- Sink -------------------------------------------------------------- *)

let test_sink_ring_overwrites () =
  let s = Sink.create ~capacity:4 () in
  for i = 1 to 10 do
    Sink.instant s ~cat:"t" ~name:"i" ~node:0 ~ts:i
  done;
  for i = 1 to 3 do
    Sink.span s ~cat:"t" ~name:"s" ~node:0 ~ts:i ~dur:1
  done;
  Alcotest.(check int) "dropped" 6 (Sink.dropped s);
  Alcotest.(check int) "emitted" 13 (Sink.emitted s);
  Alcotest.(check int) "spans unbounded" 3 (Sink.nspans s);
  let evs = Sink.events s in
  Alcotest.(check int) "live events" 7 (List.length evs);
  (* The ring keeps the newest instants and the listing is time-sorted. *)
  let ts = List.map (fun (e : Sink.event) -> e.Sink.ts) evs in
  Alcotest.(check bool) "sorted" true (List.sort compare ts = ts);
  Alcotest.(check bool) "oldest instants gone" true
    (List.for_all
       (fun (e : Sink.event) -> e.Sink.kind = Sink.Span || e.Sink.ts > 6)
       evs)

let test_sink_meta () =
  let s = Sink.create () in
  Sink.set_meta s "b" (Json.Int 1);
  Sink.set_meta s "a" (Json.Int 2);
  Sink.set_meta s "b" (Json.Int 3);
  Alcotest.(check bool) "sorted + overwritten" true
    (Sink.meta s = [ ("a", Json.Int 2); ("b", Json.Int 3) ])

let test_global_sink_pickup () =
  let s = Sink.create () in
  Sink.set_global (Some s);
  Fun.protect
    ~finally:(fun () -> Sink.set_global None)
    (fun () ->
      let engine = Dpa_sim.Engine.create (Dpa_sim.Machine.t3d ~nodes:2) in
      Alcotest.(check bool) "adopted" true
        (match Dpa_sim.Engine.sink engine with Some s' -> s' == s | None -> false));
  let engine = Dpa_sim.Engine.create (Dpa_sim.Machine.t3d ~nodes:2) in
  Alcotest.(check bool) "cleared" true (Dpa_sim.Engine.sink engine = None)

(* --- end to end through a real phase ----------------------------------- *)

let run_bh ~sink () =
  let bodies = Dpa_bh.Plummer.generate ~n:200 ~seed:17 in
  let octree = Dpa_bh.Octree.build bodies in
  let tree = Dpa_bh.Bh_global.distribute octree ~nnodes:3 in
  let engine = Dpa_sim.Engine.create (Dpa_sim.Machine.t3d ~nodes:3) in
  Dpa_sim.Engine.set_sink engine sink;
  Dpa_bh.Bh_run.force_phase ~engine ~tree ~bodies
    ~params:Dpa_bh.Bh_force.default_params
    (Dpa_baselines.Variant.dpa ~strip_size:16 ())

let observed_bh =
  (* One observed run shared by the export tests below. *)
  lazy
    (let sink = Sink.create () in
     let r = run_bh ~sink:(Some sink) () in
     (sink, r))

let test_chrome_trace_valid () =
  let sink, _ = Lazy.force observed_bh in
  let j = parse_ok (Export.chrome_trace sink) in
  let events =
    match Json.member "traceEvents" j with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents list"
  in
  Alcotest.(check bool) "nonempty" true (events <> []);
  (* At least one complete phase span per node. *)
  List.iter
    (fun node ->
      Alcotest.(check bool)
        (Printf.sprintf "phase span on node %d" node)
        true
        (List.exists
           (fun e ->
             Json.member "ph" e = Some (Json.Str "X")
             && Json.member "cat" e = Some (Json.Str "phase")
             && Json.member "name" e = Some (Json.Str "bh-force")
             && Json.member "tid" e = Some (Json.Int node))
           events))
    [ 0; 1; 2 ]

let test_metrics_export_valid () =
  let sink, r = Lazy.force observed_bh in
  let j = parse_ok (Json.to_string (Export.metrics_json sink)) in
  let histos =
    match Json.member "metrics" j with
    | Some m -> Option.get (Json.member "histograms" m)
    | None -> Alcotest.fail "no metrics"
  in
  List.iter
    (fun name ->
      match Json.member name histos with
      | Some h ->
        List.iter
          (fun k ->
            Alcotest.(check bool)
              (name ^ "." ^ k ^ " present")
              true
              (Json.member k h <> None))
          [ "p50"; "p90"; "p99" ]
      | None -> Alcotest.failf "histogram %s missing" name)
    [ "agg_batch.bh-force"; "wait_ns.bh-force"; "outstanding.bh-force" ];
  (* The attached Dpa_stats document matches the run's own statistics. *)
  let stats = Option.get r.Dpa_bh.Bh_run.dpa_stats in
  match Json.member "stats" j with
  | Some s ->
    Alcotest.(check bool) "dpa_stats attached" true
      (Json.member "dpa_stats.bh-force" s = Some (Dpa.Dpa_stats.to_json stats))
  | None -> Alcotest.fail "no stats"

let test_jsonl_and_profile () =
  let sink, _ = Lazy.force observed_bh in
  let lines =
    Export.jsonl sink |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check bool) "has lines" true (lines <> []);
  List.iter (fun l -> ignore (parse_ok l)) lines;
  let profile = Export.profile sink in
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in profile") true
        (contains profile needle))
    [ "bh-force"; "wait_ns" ]

let test_observing_is_transparent () =
  let off = run_bh ~sink:None () in
  let _, on_ = Lazy.force observed_bh in
  Alcotest.(check bool) "breakdown identical" true
    (off.Dpa_bh.Bh_run.breakdown = on_.Dpa_bh.Bh_run.breakdown);
  Alcotest.(check bool) "stats identical" true
    (off.Dpa_bh.Bh_run.dpa_stats = on_.Dpa_bh.Bh_run.dpa_stats);
  Alcotest.(check bool) "forces identical" true
    (off.Dpa_bh.Bh_run.accs = on_.Dpa_bh.Bh_run.accs)

(* --- Dpa_stats --------------------------------------------------------- *)

let test_stats_merge_edges () =
  let z = Dpa.Dpa_stats.merge [] in
  Alcotest.(check bool) "empty merge is zero" true (z = Dpa.Dpa_stats.create ());
  let a = Dpa.Dpa_stats.create () and b = Dpa.Dpa_stats.create () in
  a.Dpa.Dpa_stats.spawns <- 3;
  a.Dpa.Dpa_stats.max_outstanding <- 10;
  a.Dpa.Dpa_stats.max_batch <- 2;
  a.Dpa.Dpa_stats.align_peak <- 5;
  b.Dpa.Dpa_stats.spawns <- 4;
  b.Dpa.Dpa_stats.max_outstanding <- 7;
  b.Dpa.Dpa_stats.max_batch <- 9;
  b.Dpa.Dpa_stats.align_peak <- 1;
  let m = Dpa.Dpa_stats.merge [ a; b ] in
  Alcotest.(check int) "sums add" 7 m.Dpa.Dpa_stats.spawns;
  Alcotest.(check int) "max_outstanding takes max" 10
    m.Dpa.Dpa_stats.max_outstanding;
  Alcotest.(check int) "max_batch takes max" 9 m.Dpa.Dpa_stats.max_batch;
  Alcotest.(check int) "align_peak takes max" 5 m.Dpa.Dpa_stats.align_peak;
  (* Merging one element is the identity. *)
  Alcotest.(check bool) "singleton identity" true (Dpa.Dpa_stats.merge [ a ] = a)

let test_stats_to_json () =
  let a = Dpa.Dpa_stats.create () in
  a.Dpa.Dpa_stats.spawns <- 2;
  a.Dpa.Dpa_stats.inline_local <- 5;
  a.Dpa.Dpa_stats.align_hits <- 1;
  a.Dpa.Dpa_stats.merge_hits <- 3;
  let j = Dpa.Dpa_stats.to_json a in
  Alcotest.(check bool) "spawns" true (Json.member "spawns" j = Some (Json.Int 2));
  Alcotest.(check bool) "derived total" true
    (Json.member "total_reads" j = Some (Json.Int 11));
  Alcotest.(check bool) "self-parse" true (parse_ok (Json.to_string j) = j)

let suites =
  [
    ( "obs.json",
      [
        Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "numbers and unicode" `Quick
          test_json_numbers_and_unicode;
        Alcotest.test_case "rejects malformed" `Quick test_json_rejects;
        Alcotest.test_case "member" `Quick test_json_member;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "counter and gauge" `Quick test_metrics_counter_gauge;
        Alcotest.test_case "histogram percentiles" `Quick test_metrics_histogram;
        Alcotest.test_case "histogram edges" `Quick test_metrics_histogram_edges;
        Alcotest.test_case "json shape" `Quick test_metrics_json_shape;
      ] );
    ( "obs.sink",
      [
        Alcotest.test_case "ring overwrites oldest" `Quick
          test_sink_ring_overwrites;
        Alcotest.test_case "meta" `Quick test_sink_meta;
        Alcotest.test_case "global pickup by Engine.create" `Quick
          test_global_sink_pickup;
      ] );
    ( "obs.export",
      [
        Alcotest.test_case "chrome trace valid" `Quick test_chrome_trace_valid;
        Alcotest.test_case "metrics export valid" `Quick
          test_metrics_export_valid;
        Alcotest.test_case "jsonl and profile" `Quick test_jsonl_and_profile;
        Alcotest.test_case "observing is transparent" `Quick
          test_observing_is_transparent;
      ] );
    ( "core.stats",
      [
        Alcotest.test_case "merge edge cases" `Quick test_stats_merge_edges;
        Alcotest.test_case "to_json" `Quick test_stats_to_json;
      ] );
  ]

open Dpa_sim

let test_totals_match_node_counters () =
  let engine = Engine.create (Machine.t3d ~nodes:2) in
  let trace = Trace.attach engine in
  Engine.post engine ~time:0 ~node:0 (fun () ->
      let n = Engine.node engine 0 in
      Node.charge_local n 500;
      Node.charge_comm n 200);
  Engine.post engine ~time:1000 ~node:0 (fun () -> ());
  Engine.run engine;
  Trace.detach trace;
  let n = Engine.node engine 0 in
  let local, comm, idle = Trace.totals trace 0 in
  Alcotest.(check int) "local" n.Node.local_ns local;
  Alcotest.(check int) "comm" n.Node.comm_ns comm;
  Alcotest.(check int) "idle" n.Node.idle_ns idle;
  Alcotest.(check int) "idle gap recorded" 300 idle

let test_detach_stops_recording () =
  let engine = Engine.create (Machine.t3d ~nodes:1) in
  let trace = Trace.attach engine in
  Node.charge_local (Engine.node engine 0) 100;
  Trace.detach trace;
  let before = Trace.nsegments trace in
  Node.charge_local (Engine.node engine 0) 100;
  Alcotest.(check int) "no new segments" before (Trace.nsegments trace)

let test_double_attach_rejected () =
  let engine = Engine.create (Machine.t3d ~nodes:2) in
  let trace = Trace.attach engine in
  Alcotest.check_raises "second attach"
    (Invalid_argument "Trace.attach: a trace is already attached (detach it first)")
    (fun () -> ignore (Trace.attach engine));
  (* The original observer keeps working... *)
  Node.charge_local (Engine.node engine 0) 100;
  Alcotest.(check int) "still recording" 1 (Trace.nsegments trace);
  (* ...and detaching makes attach legal again. *)
  Trace.detach trace;
  let trace2 = Trace.attach engine in
  Node.charge_local (Engine.node engine 0) 100;
  Alcotest.(check int) "fresh trace records" 1 (Trace.nsegments trace2)

let test_timeline_renders () =
  let engine = Engine.create (Machine.t3d ~nodes:2) in
  let trace = Trace.attach engine in
  Node.charge_local (Engine.node engine 0) 1000;
  Node.charge_comm (Engine.node engine 1) 400;
  Node.wait_until (Engine.node engine 1) 1000;
  Trace.detach trace;
  let s = Trace.timeline ~width:20 trace in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "three lines plus legend" true (List.length lines >= 3);
  Alcotest.(check bool) "node 0 computes" true
    (String.contains (List.nth lines 0) '#');
  Alcotest.(check bool) "node 1 communicates" true
    (String.contains (List.nth lines 1) '+');
  Alcotest.(check bool) "node 1 idles" true
    (String.contains (List.nth lines 1) '.')

let test_csv_format () =
  let engine = Engine.create (Machine.t3d ~nodes:1) in
  let trace = Trace.attach engine in
  Node.charge_local (Engine.node engine 0) 7;
  Trace.detach trace;
  let csv = Trace.to_csv trace in
  Alcotest.(check bool) "header" true
    (String.length csv > 26 && String.sub csv 0 26 = "node,kind,start_ns,dur_ns\n");
  Alcotest.(check bool) "row" true
    (String.split_on_char '\n' csv |> List.exists (fun l -> l = "0,local,0,7"))

let test_trace_full_phase_consistency () =
  (* Trace a real BH phase: recorded totals must equal the breakdown. *)
  let bodies = Dpa_bh.Plummer.generate ~n:200 ~seed:17 in
  let octree = Dpa_bh.Octree.build bodies in
  let tree = Dpa_bh.Bh_global.distribute octree ~nnodes:3 in
  let engine = Engine.create (Machine.t3d ~nodes:3) in
  let trace = Trace.attach engine in
  let r =
    Dpa_bh.Bh_run.force_phase ~engine ~tree ~bodies
      ~params:Dpa_bh.Bh_force.default_params
      (Dpa_baselines.Variant.dpa ())
  in
  Trace.detach trace;
  let local = ref 0 and comm = ref 0 and idle = ref 0 in
  for node = 0 to 2 do
    let l, c, i = Trace.totals trace node in
    local := !local + l;
    comm := !comm + c;
    idle := !idle + i
  done;
  let b = r.Dpa_bh.Bh_run.breakdown in
  Alcotest.(check int) "local" b.Breakdown.local_ns !local;
  Alcotest.(check int) "comm" b.Breakdown.comm_ns !comm;
  Alcotest.(check int) "idle" b.Breakdown.idle_ns !idle

let suites =
  [
    ( "sim.trace",
      [
        Alcotest.test_case "totals match counters" `Quick
          test_totals_match_node_counters;
        Alcotest.test_case "detach stops recording" `Quick
          test_detach_stops_recording;
        Alcotest.test_case "double attach rejected" `Quick
          test_double_attach_rejected;
        Alcotest.test_case "timeline renders" `Quick test_timeline_renders;
        Alcotest.test_case "csv format" `Quick test_csv_format;
        Alcotest.test_case "full phase consistency" `Quick
          test_trace_full_phase_consistency;
      ] );
  ]

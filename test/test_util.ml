open Dpa_util

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_distinct_seeds () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different" true (Rng.int64 a <> Rng.int64 b)

let test_rng_uniform_range () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let u = Rng.uniform r in
    if u < 0. || u >= 1. then Alcotest.fail "uniform out of range"
  done

let test_rng_int_range () =
  let r = Rng.create ~seed:9 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.fail "int out of range"
  done

let test_rng_gaussian_moments () =
  let r = Rng.create ~seed:11 in
  let n = 20_000 in
  let sum = ref 0. and sumsq = ref 0. in
  for _ = 1 to n do
    let g = Rng.gaussian r in
    sum := !sum +. g;
    sumsq := !sumsq +. (g *. g)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "variance near 1" true (Float.abs (var -. 1.) < 0.05)

let test_rng_split_independent () =
  let a = Rng.create ~seed:5 in
  let b = Rng.split a in
  let x = Rng.int64 a and y = Rng.int64 b in
  Alcotest.(check bool) "streams differ" true (x <> y)

let test_dynarray_basic () =
  let d = Dynarray.create () in
  Alcotest.(check int) "empty" 0 (Dynarray.length d);
  for i = 0 to 99 do
    let idx = Dynarray.add d (i * i) in
    Alcotest.(check int) "index" i idx
  done;
  Alcotest.(check int) "length" 100 (Dynarray.length d);
  Alcotest.(check int) "get" 49 (Dynarray.get d 7);
  Dynarray.set d 7 (-1);
  Alcotest.(check int) "set" (-1) (Dynarray.get d 7)

let test_dynarray_bounds () =
  let d = Dynarray.create () in
  ignore (Dynarray.add d 1);
  Alcotest.check_raises "oob" (Invalid_argument "Dynarray: index out of bounds")
    (fun () -> ignore (Dynarray.get d 1))

let test_dynarray_iter_order () =
  let d = Dynarray.create () in
  for i = 0 to 9 do
    ignore (Dynarray.add d i)
  done;
  let acc = ref [] in
  Dynarray.iter (fun x -> acc := x :: !acc) d;
  Alcotest.(check (list int)) "order" [ 9; 8; 7; 6; 5; 4; 3; 2; 1; 0 ] !acc

module Itbl = Hashtbl.Make (Int)
module L = Lru.Make (Itbl)

let test_lru_hit_miss () =
  let c = L.create ~capacity:2 in
  L.add c 1 "a";
  L.add c 2 "b";
  Alcotest.(check (option string)) "hit 1" (Some "a") (L.find c 1);
  L.add c 3 "c" (* evicts 2: 1 was just touched *);
  Alcotest.(check (option string)) "2 evicted" None (L.find c 2);
  Alcotest.(check (option string)) "1 kept" (Some "a") (L.find c 1);
  Alcotest.(check (option string)) "3 kept" (Some "c") (L.find c 3);
  Alcotest.(check int) "one eviction" 1 (L.evictions c)

let test_lru_zero_capacity () =
  let c = L.create ~capacity:0 in
  L.add c 1 "a";
  Alcotest.(check (option string)) "never stores" None (L.find c 1);
  Alcotest.(check int) "size 0" 0 (L.size c);
  (* Admit-then-evict: every insertion counts one eviction, so the
     eviction accounting agrees with positive capacities
     (evictions = insertions - retained, retained = 0 here). *)
  Alcotest.(check int) "eviction counted" 1 (L.evictions c);
  L.add c 1 "b";
  L.add c 2 "c";
  Alcotest.(check int) "every add evicts" 3 (L.evictions c);
  Alcotest.(check bool) "mem misses" false (L.mem c 1);
  L.clear c;
  Alcotest.(check int) "size 0 after clear" 0 (L.size c);
  Alcotest.(check int) "evictions survive clear" 3 (L.evictions c)

let test_lru_zero_capacity_consistent_qcheck =
  QCheck.Test.make
    ~name:"lru capacity 0: structure stays empty, every add counts an eviction"
    ~count:200
    QCheck.(small_list (pair (int_range 0 10) (int_range 0 3)))
    (fun ops ->
      let c = L.create ~capacity:0 in
      let adds = ref 0 in
      List.iter
        (fun (k, op) ->
          match op with
          | 0 ->
            L.add c k k;
            incr adds
          | 1 -> assert (L.find c k = None)
          | 2 -> assert (not (L.mem c k))
          | _ -> L.clear c)
        ops;
      L.size c = 0 && L.evictions c = !adds)

let test_lru_replace () =
  let c = L.create ~capacity:2 in
  L.add c 1 "a";
  L.add c 1 "b";
  Alcotest.(check (option string)) "replaced" (Some "b") (L.find c 1);
  Alcotest.(check int) "size 1" 1 (L.size c)

let test_lru_eviction_order_qcheck =
  QCheck.Test.make ~name:"lru keeps the most recent [capacity] distinct keys"
    ~count:200
    QCheck.(pair (int_range 1 8) (small_list (int_range 0 20)))
    (fun (cap, keys) ->
      let c = L.create ~capacity:cap in
      List.iter (fun k -> L.add c k k) keys;
      (* Reference: last [cap] distinct keys by most-recent insertion. *)
      let expected =
        List.fold_left
          (fun acc k -> k :: List.filter (fun x -> x <> k) acc)
          [] keys
        |> fun l -> List.filteri (fun i _ -> i < cap) l
      in
      List.for_all (fun k -> L.mem c k) expected
      && L.size c = List.length expected)

let suites =
  [
    ( "util.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "distinct seeds" `Quick test_rng_distinct_seeds;
        Alcotest.test_case "uniform in range" `Quick test_rng_uniform_range;
        Alcotest.test_case "int in range" `Quick test_rng_int_range;
        Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
      ] );
    ( "util.dynarray",
      [
        Alcotest.test_case "basic" `Quick test_dynarray_basic;
        Alcotest.test_case "bounds" `Quick test_dynarray_bounds;
        Alcotest.test_case "iter order" `Quick test_dynarray_iter_order;
      ] );
    ( "util.lru",
      [
        Alcotest.test_case "hit/miss/evict" `Quick test_lru_hit_miss;
        Alcotest.test_case "zero capacity" `Quick test_lru_zero_capacity;
        Alcotest.test_case "replace" `Quick test_lru_replace;
        QCheck_alcotest.to_alcotest test_lru_eviction_order_qcheck;
        QCheck_alcotest.to_alcotest test_lru_zero_capacity_consistent_qcheck;
      ] );
  ]

(* Cross-cutting property tests: randomized workloads through the whole
   stack, and numerical properties of the FMM operators. *)

open Dpa_sim

(* --- randomized runtime equivalence ------------------------------------ *)

(* A random phase description: nodes, objects, and per-node item read
   scatters. Every runtime must compute the same per-node sums. *)
let phase_gen =
  QCheck.Gen.(
    let* nnodes = int_range 1 5 in
    let* nobjs = int_range 1 20 in
    let* nitems = int_range 0 12 in
    let* reads =
      list_size (return (nitems * 3)) (pair (int_range 0 (nnodes - 1)) (int_range 0 (nobjs - 1)))
    in
    return (nnodes, nobjs, nitems, reads))

let build_phase (nnodes, nobjs, nitems, reads) =
  let heaps = Dpa_heap.Heap.cluster ~nnodes in
  let ptrs =
    Array.init nnodes (fun node ->
        Array.init nobjs (fun slot ->
            Dpa_heap.Heap.alloc heaps.(node)
              ~floats:[| float_of_int ((node * 100) + slot) |]
              ~ptrs:[||]))
  in
  let reads = Array.of_list reads in
  let item_reads node item =
    (* Three reads per item, drawn from the random scatter. *)
    List.init 3 (fun r ->
        if Array.length reads = 0 then ptrs.(0).(0)
        else
          let n, s = reads.(((node * nitems) + item + r) mod Array.length reads) in
          ptrs.(n).(s))
  in
  (heaps, item_reads)

let run_variant (type c) (module A : Dpa.Access.S with type ctx = c)
    run_phase (nnodes, nobjs, nitems, reads) =
  let heaps, item_reads = build_phase (nnodes, nobjs, nitems, reads) in
  let sums = Array.make nnodes 0. in
  let items node =
    Array.init nitems (fun item ->
        fun (ctx : c) ->
          List.iter
            (fun p ->
              A.read ctx p (fun ctx view ->
                  A.charge ctx 100;
                  sums.(A.node_id ctx) <-
                    sums.(A.node_id ctx)
                    +. Dpa_heap.Heap.view_float (A.heaps ctx) view 0))
            (item_reads node item))
  in
  run_phase heaps items;
  sums

let qcheck_runtimes_equivalent =
  QCheck.Test.make ~name:"all runtimes compute identical sums (random phases)"
    ~count:60 (QCheck.make phase_gen) (fun spec ->
      let nnodes, _, _, _ = spec in
      let dpa =
        run_variant
          (module Dpa.Runtime)
          (fun heaps items ->
            let engine = Engine.create (Machine.t3d ~nodes:nnodes) in
            ignore
              (Dpa.Runtime.run_phase ~engine ~heaps
                 ~config:(Dpa.Config.dpa ~strip_size:3 ~agg_max:4 ())
                 ~items))
          spec
      in
      let pipeline =
        run_variant
          (module Dpa.Runtime)
          (fun heaps items ->
            let engine = Engine.create (Machine.t3d ~nodes:nnodes) in
            ignore
              (Dpa.Runtime.run_phase ~engine ~heaps
                 ~config:(Dpa.Config.pipeline_only ~strip_size:2 ())
                 ~items))
          spec
      in
      let caching =
        run_variant
          (module Dpa_baselines.Caching)
          (fun heaps items ->
            let engine = Engine.create (Machine.t3d ~nodes:nnodes) in
            ignore
              (Dpa_baselines.Caching.run_phase ~engine ~heaps ~capacity:7
                 ~items ()))
          spec
      in
      let blocking =
        run_variant
          (module Dpa_baselines.Blocking)
          (fun heaps items ->
            let engine = Engine.create (Machine.t3d ~nodes:nnodes) in
            ignore (Dpa_baselines.Blocking.run_phase ~engine ~heaps ~items))
          spec
      in
      dpa = pipeline && dpa = caching && dpa = blocking)

(* --- engine stress ------------------------------------------------------ *)

let qcheck_engine_clocks_monotone =
  QCheck.Test.make ~name:"node clocks never run backwards" ~count:100
    QCheck.(
      pair (int_range 1 4)
        (small_list (pair (int_range 0 3) (int_range 0 10_000))))
    (fun (nnodes, posts) ->
      let engine = Engine.create (Machine.t3d ~nodes:nnodes) in
      let ok = ref true in
      let last = Array.make nnodes 0 in
      List.iter
        (fun (node, time) ->
          let node = node mod nnodes in
          Engine.post engine ~time ~node (fun () ->
              let n = Engine.node engine node in
              if n.Node.clock < last.(node) then ok := false;
              last.(node) <- n.Node.clock;
              Node.charge_local n 37))
        posts;
      Engine.run engine;
      !ok && Engine.events_processed engine = List.length posts)

let qcheck_engine_conservation =
  QCheck.Test.make ~name:"clock equals local+comm+idle" ~count:100
    QCheck.(small_list (pair (int_range 0 2) (int_range 0 5_000)))
    (fun posts ->
      let engine = Engine.create (Machine.t3d ~nodes:3) in
      List.iter
        (fun (node, time) ->
          Engine.post engine ~time ~node (fun () ->
              let n = Engine.node engine node in
              Node.charge_local n 11;
              Node.charge_comm n 7))
        posts;
      Engine.run engine;
      Array.for_all
        (fun n ->
          n.Node.clock = n.Node.local_ns + n.Node.comm_ns + n.Node.idle_ns)
        (Engine.nodes engine))

(* --- FMM operator properties ------------------------------------------- *)

let charge_gen =
  QCheck.Gen.(
    list_size (int_range 1 5)
      (pair (float_range 0.1 1.0)
         (map2
            (fun re im -> { Complex.re; im })
            (float_range (-0.4) 0.4) (float_range (-0.4) 0.4))))

let qcheck_multipole_matches_direct =
  QCheck.Test.make ~name:"multipole evaluation matches direct (far field)"
    ~count:100 (QCheck.make charge_gen) (fun charges ->
      let a = Dpa_fmm.Expansion.p2m ~p:24 ~center:Complex.zero charges in
      let z = { Complex.re = 4.0; im = -2.5 } in
      let _, got = Dpa_fmm.Expansion.eval_multipole a ~center:Complex.zero z in
      let _, want = Dpa_fmm.Expansion.direct charges z in
      Complex.norm (Complex.sub got want) < 1e-7)

let qcheck_m2m_preserves_field =
  QCheck.Test.make ~name:"m2m shift preserves the far field" ~count:100
    (QCheck.make charge_gen) (fun charges ->
      let a = Dpa_fmm.Expansion.p2m ~p:24 ~center:Complex.zero charges in
      let c' = { Complex.re = 0.3; im = -0.2 } in
      let b = Dpa_fmm.Expansion.m2m a ~from_center:Complex.zero ~to_center:c' in
      let z = { Complex.re = 5.0; im = 3.0 } in
      let _, va = Dpa_fmm.Expansion.eval_multipole a ~center:Complex.zero z in
      let _, vb = Dpa_fmm.Expansion.eval_multipole b ~center:c' z in
      Complex.norm (Complex.sub va vb) < 1e-7)

let qcheck_l2l_exact =
  QCheck.Test.make ~name:"l2l shift is exact for polynomials" ~count:100
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 8) (float_range (-1.) 1.)))
    (fun coeffs ->
      (* A local expansion IS a polynomial; shifting its center must not
         change its values anywhere. *)
      let b = Array.of_list (List.map (fun re -> { Complex.re; im = 0. }) coeffs) in
      let c = { Complex.re = 0.6; im = -0.3 } in
      let b' = Dpa_fmm.Expansion.l2l b ~from_center:Complex.zero ~to_center:c in
      let z = { Complex.re = 0.9; im = 0.4 } in
      let va, da = Dpa_fmm.Expansion.eval_local b ~center:Complex.zero z in
      let vb, db = Dpa_fmm.Expansion.eval_local b' ~center:c z in
      Complex.norm (Complex.sub va vb) < 1e-9
      && Complex.norm (Complex.sub da db) < 1e-9)

(* --- BH physics properties ---------------------------------------------- *)

let qcheck_forces_antisymmetric_two_bodies =
  QCheck.Test.make ~name:"two-body forces are antisymmetric" ~count:100
    QCheck.(
      pair
        (triple (float_range (-1.) 1.) (float_range (-1.) 1.) (float_range 0.1 2.))
        (triple (float_range 2. 3.) (float_range (-1.) 1.) (float_range 0.1 2.)))
    (fun ((x1, y1, m1), (x2, y2, m2)) ->
      let b1 =
        Dpa_bh.Body.make ~id:0 ~mass:m1 ~pos:(Dpa_bh.Vec3.make x1 y1 0.)
          ~vel:Dpa_bh.Vec3.zero
      in
      let b2 =
        Dpa_bh.Body.make ~id:1 ~mass:m2 ~pos:(Dpa_bh.Vec3.make x2 y2 0.)
          ~vel:Dpa_bh.Vec3.zero
      in
      Dpa_bh.Bh_direct.compute_forces ~eps:0. [| b1; b2 |];
      (* m1*a1 = -m2*a2 *)
      Dpa_bh.Vec3.approx_equal ~tol:1e-9
        (Dpa_bh.Vec3.scale m1 b1.Dpa_bh.Body.acc)
        (Dpa_bh.Vec3.scale (-.m2) b2.Dpa_bh.Body.acc))

let test_bh_momentum_conserved () =
  (* Direct forces conserve momentum over a leapfrog step. *)
  let bodies = Dpa_bh.Plummer.generate ~n:100 ~seed:3 in
  Dpa_bh.Bh_direct.compute_forces bodies;
  Dpa_bh.Body.advance bodies ~dt:0.01;
  let p = Dpa_bh.Body.total_momentum bodies in
  Alcotest.(check bool) "momentum ~ 0" true (Dpa_bh.Vec3.norm p < 1e-10)

let suites =
  [
    ( "properties",
      [
        QCheck_alcotest.to_alcotest qcheck_runtimes_equivalent;
        QCheck_alcotest.to_alcotest qcheck_engine_clocks_monotone;
        QCheck_alcotest.to_alcotest qcheck_engine_conservation;
        QCheck_alcotest.to_alcotest qcheck_multipole_matches_direct;
        QCheck_alcotest.to_alcotest qcheck_m2m_preserves_field;
        QCheck_alcotest.to_alcotest qcheck_l2l_exact;
        QCheck_alcotest.to_alcotest qcheck_forces_antisymmetric_two_bodies;
        Alcotest.test_case "momentum conserved" `Quick
          test_bh_momentum_conserved;
      ] );
  ]

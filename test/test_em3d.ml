open Dpa_compiler
open Dpa_sim

let build ?(nnodes = 4) ?(e_per_node = 16) ?(degree = 5) () =
  Em3d.build ~nnodes ~e_per_node ~h_per_node:16 ~degree ~remote_frac:0.4
    ~seed:11

let test_build_shapes () =
  let g = build () in
  Alcotest.(check int) "e nodes" 64 (Array.length g.Em3d.e_nodes);
  Alcotest.(check int) "h nodes" 64 (Array.length g.Em3d.h_nodes);
  (* Every E-node has [degree] non-nil dependencies and degree+1 floats. *)
  Array.iter
    (fun p ->
      let v = Dpa_heap.Heap.deref g.Em3d.heaps p in
      Alcotest.(check int) "ptrs" 5 (Array.length v.Dpa_heap.Obj_repr.ptrs);
      Alcotest.(check int) "floats" 6 (Array.length v.Dpa_heap.Obj_repr.floats);
      Array.iter
        (fun d ->
          Alcotest.(check bool) "non-nil" false (Dpa_heap.Gptr.is_nil d))
        v.Dpa_heap.Obj_repr.ptrs)
    g.Em3d.e_nodes

let test_build_deterministic () =
  let a = build () and b = build () in
  Alcotest.(check (float 1e-12)) "same checksum" (Em3d.reference_update a)
    (Em3d.reference_update b)

let test_remote_frac_zero_is_local () =
  let g =
    Em3d.build ~nnodes:4 ~e_per_node:8 ~h_per_node:8 ~degree:3 ~remote_frac:0.
      ~seed:5
  in
  Array.iteri
    (fun i p ->
      let owner = i / 8 in
      let v = Dpa_heap.Heap.deref g.Em3d.heaps p in
      Array.iter
        (fun (d : Dpa_heap.Gptr.t) ->
          Alcotest.(check int) "dependency is local" owner (Dpa_heap.Gptr.node d))
        v.Dpa_heap.Obj_repr.ptrs)
    g.Em3d.e_nodes

let run_hand variant =
  let g = build () in
  let want = Em3d.reference_update g in
  let sum = ref 0. in
  let accum v = sum := !sum +. v in
  let engine = Engine.create (Machine.t3d ~nodes:4) in
  (match variant with
  | `Dpa ->
    ignore
      (Dpa.Runtime.run_phase ~engine ~heaps:g.Em3d.heaps
         ~config:(Dpa.Config.dpa ~strip_size:8 ())
         ~items:(Em3d.items (module Dpa.Runtime) g ~accum))
  | `Caching ->
    ignore
      (Dpa_baselines.Caching.run_phase ~engine ~heaps:g.Em3d.heaps
         ~capacity:64
         ~items:(Em3d.items (module Dpa_baselines.Caching) g ~accum)
         ())
  | `Blocking ->
    ignore
      (Dpa_baselines.Blocking.run_phase ~engine ~heaps:g.Em3d.heaps
         ~items:(Em3d.items (module Dpa_baselines.Blocking) g ~accum)));
  (want, !sum)

let check_close name (want, got) =
  if Float.abs (want -. got) > 1e-9 *. Float.max 1. (Float.abs want) then
    Alcotest.failf "%s: checksum %.12f vs reference %.12f" name got want

let test_hand_items_match_reference () =
  check_close "dpa" (run_hand `Dpa);
  check_close "caching" (run_hand `Caching);
  check_close "blocking" (run_hand `Blocking)

let test_ir_program_partition () =
  let p = Em3d.update_program ~degree:3 in
  Alias.check p;
  let info = Partition.analyze p (Ast.func p "update_node") in
  (* One alignment point on n; each neighbor pointer (same alias class,
     loaded after n's fetch) needs its own — but consecutive neighbors are
     distinct variables rebound each round, so each Load_field on dep
     spawns. 1 (n) + 3 (deps). *)
  Alcotest.(check int) "spawn sites" 4
    (List.length info.Partition.spawn_sites)

module I = Interp.Make (Dpa.Runtime)

let test_ir_program_matches_reference () =
  let g = build ~degree:4 () in
  let want = Em3d.reference_update g in
  let prog = Em3d.update_program ~degree:4 in
  let c = I.compile prog in
  let engine = Engine.create (Machine.t3d ~nodes:4) in
  let per_node = Array.length g.Em3d.e_nodes / 4 in
  let items node =
    Array.init per_node (fun i ->
        I.item c ~entry:"update_node"
          ~args:[ Value.Ptr g.Em3d.e_nodes.((node * per_node) + i) ])
  in
  ignore
    (Dpa.Runtime.run_phase ~engine ~heaps:g.Em3d.heaps
       ~config:(Dpa.Config.dpa ()) ~items);
  let got = I.accumulator c "sum" in
  if Float.abs (want -. got) > 1e-9 then
    Alcotest.failf "IR checksum %.12f vs reference %.12f" got want

let test_dpa_beats_blocking_em3d () =
  let time variant =
    let g = build ~e_per_node:32 () in
    let engine = Engine.create (Machine.t3d ~nodes:4) in
    let accum _ = () in
    let b =
      match variant with
      | `Dpa ->
        fst
          (Dpa.Runtime.run_phase ~engine ~heaps:g.Em3d.heaps
             ~config:(Dpa.Config.dpa ~strip_size:16 ())
             ~items:(Em3d.items (module Dpa.Runtime) g ~accum))
      | `Blocking ->
        fst
          (Dpa_baselines.Blocking.run_phase ~engine ~heaps:g.Em3d.heaps
             ~items:(Em3d.items (module Dpa_baselines.Blocking) g ~accum))
    in
    b.Breakdown.elapsed_ns
  in
  Alcotest.(check bool) "dpa faster" true (time `Dpa < time `Blocking)

let suites =
  [
    ( "em3d",
      [
        Alcotest.test_case "build shapes" `Quick test_build_shapes;
        Alcotest.test_case "deterministic" `Quick test_build_deterministic;
        Alcotest.test_case "remote_frac 0 is local" `Quick
          test_remote_frac_zero_is_local;
        Alcotest.test_case "hand items match reference" `Quick
          test_hand_items_match_reference;
        Alcotest.test_case "IR partition" `Quick test_ir_program_partition;
        Alcotest.test_case "IR matches reference" `Quick
          test_ir_program_matches_reference;
        Alcotest.test_case "dpa beats blocking" `Quick
          test_dpa_beats_blocking_em3d;
      ] );
  ]
